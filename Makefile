# Convenience targets for the iCache reproduction. Everything is plain
# stdlib Go; the Makefile only wraps the commands the README documents.

GO ?= go

.PHONY: all build vet test test-short bench experiments experiments-quick fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# One testing.B benchmark per paper table/figure (quick scale).
bench:
	$(GO) test -bench . -benchmem

# Regenerate the full evaluation at paper scale (~4 minutes).
experiments:
	$(GO) run ./cmd/icache-bench -exp all

experiments-quick:
	$(GO) run ./cmd/icache-bench -exp all -quick

# Short fuzz passes over the wire-facing decoders.
fuzz:
	$(GO) test -fuzz FuzzServerDispatch -fuzztime 30s ./internal/rpc/
	$(GO) test -fuzz FuzzReadFrame -fuzztime 15s ./internal/wire/
	$(GO) test -fuzz FuzzReader -fuzztime 15s ./internal/wire/

clean:
	$(GO) clean -testcache

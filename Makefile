# Convenience targets for the iCache reproduction. Everything is plain
# stdlib Go; the Makefile only wraps the commands the README documents.

GO ?= go

.PHONY: all build vet lint test test-short test-race chaos bench bench-serving bench-obs bench-peer bench-dir bench-loadgen bench-overload bench-prefetch loadgen-smoke obs-smoke overload-smoke prefetch-smoke experiments experiments-quick fuzz fuzz-short clean

all: build lint test test-race chaos fuzz-short obs-smoke overload-smoke loadgen-smoke prefetch-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Lint gate: gofmt must produce no diffs (the target fails listing the
# offending files) and go vet must be clean. Subsumes `vet` in `make all`.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Full suite under the race detector (the chaos tests double as lock
# coverage for every networked component, and the concurrent-clients
# suites in internal/rpc exercise the sharded store / singleflight /
# prefetch-pool interleavings).
test-race:
	$(GO) test -race ./...

# Chaos suites only, three times with rotating seeds: -count defeats the
# test cache, and the suites' internal seed tables ([1, 42, 1337], the
# trial indices, and the injector seeds) cover distinct schedules per run.
# internal/dkv carries the partitioned-directory half: three real replica
# processes over TCP with one killed mid-epoch.
chaos:
	$(GO) test -count=3 -run 'Chaos' ./internal/icache/ ./internal/rpc/ ./internal/dkv/
	$(GO) test -count=3 -race -run 'Chaos' ./internal/icache/ ./internal/rpc/ ./internal/dkv/

# One testing.B benchmark per paper table/figure (quick scale).
bench:
	$(GO) test -bench . -benchmem

# Serving-path throughput + allocation benchmarks (the PR 2 sharded-lock /
# miss-coalescing / buffer-pool work), archived as JSON. -count=5 gives
# five raw measurements per benchmark; icache-benchjson keeps them all.
bench-serving:
	$(GO) test -run NONE -bench 'ServeConcurrent|ServeHotSet' -benchmem -count=5 ./internal/rpc/ > /tmp/bench_serving.txt
	$(GO) test -run NONE -bench . -benchmem -count=5 ./internal/wire/ >> /tmp/bench_serving.txt
	$(GO) run ./cmd/icache-benchjson -label after -update BENCH_serving.json < /tmp/bench_serving.txt

# Observability smoke: the exposition goldens (Prometheus text + pinned
# JSON bytes + the byte-pinned /debug/timeline document), the
# histogram/quantile property tests, the trace-envelope rejection tables,
# the two-node cross-node hop-chain round trips (including the chaos
# variant with injected peer faults), the decision-ledger conservation
# identities, the journal/timeline concurrency suite, and the icache-top
# scrape/render path against a fake two-node cluster. Fast enough to gate
# `make all` on; -count=1 defeats the test cache so the goldens are
# re-checked every run.
obs-smoke:
	$(GO) test -count=1 ./internal/obs/ ./internal/trace/ ./internal/top/
	$(GO) test -count=1 -run 'TestMetricsJSONBytesUnchanged|TestPrometheusExposition|TestTraced|TestSlowRequest|TestObs|TestDebugObs|TestDecisionLedger|TestJournalRecords|TestTimelinePoint' ./internal/rpc/
	$(GO) test -count=1 -run 'TestDirTraced|TestDirEnvelope|TestDirObs' ./internal/dkv/

# Batched remote data plane benchmark (the PR 5 scatter-gather work): two
# cache nodes over loopback, eight miss-heavy clients hammering a hot set
# the OTHER node owns. Compares serial (per-sample directory lookup +
# PeerGet round trip) against batched (one directory multi-lookup + one
# opPeerGetBatch per mini-batch, pipelined over the multiplexed peer
# connection). The batched samples/sec should beat serial by >= 3x.
bench-peer:
	$(GO) test -run NONE -bench 'PeerHotSet' -benchmem -count=5 ./internal/rpc/ > /tmp/bench_peer.txt
	$(GO) run ./cmd/icache-benchjson -label after -update BENCH_peer.json < /tmp/bench_peer.txt

# Partitioned-directory scaling benchmark (the PR 6 sharding work): a
# simulated 100-node cluster drives closed-loop LookupBatch traffic through
# a real ShardedDir whose replicas are virtual-time FIFO resources, at 1, 2
# and 4 shards. Lookup throughput (simlookups/sec) should scale
# near-linearly: >= 1.7x at 2 shards and >= 3x at 4 vs. 1.
bench-dir:
	$(GO) test -run NONE -bench 'DirSharded' -count=5 ./internal/dkv/ > /tmp/bench_dir.txt
	$(GO) run ./cmd/icache-benchjson -label after -update BENCH_dir.json < /tmp/bench_dir.txt

# Open-loop load-harness gate (the PR 7 zero-copy hit path): an 8-client
# hot-set saturation storm through internal/loadgen, archived as JSON and
# then compared against the archived PR 5 baseline — the target FAILS when
# samples/sec falls more than 10% below the baseline or allocs/op rises,
# so the zero-copy win is a standing regression gate, not a one-off
# measurement.
bench-loadgen:
	$(GO) test -run NONE -bench 'Loadgen$$' -benchmem -count=3 ./internal/loadgen/ > /tmp/bench_loadgen.txt
	$(GO) run ./cmd/icache-benchjson -label after -update BENCH_loadgen.json < /tmp/bench_loadgen.txt
	$(GO) run ./cmd/icache-benchjson -check BENCH_loadgen.json

# Overload-control gate (the PR 8 admission/deadline/breaker work): a
# slot-limited server with a latency-charging backend takes a 2x open-loop
# storm through internal/loadgen. The headline samples/sec is GOODPUT —
# on-time completions only — archived as JSON and compared against the
# archived baseline, so the target FAILS when goodput under overload falls
# more than 10% or allocs/op rises. The benchmark itself additionally
# fails on queue collapse (storm goodput under 80% of the measured
# capacity knee) or on a request-conservation leak.
bench-overload:
	$(GO) test -run NONE -bench 'LoadgenOverload' -benchmem -count=3 ./internal/loadgen/ > /tmp/bench_overload.txt
	$(GO) run ./cmd/icache-benchjson -label after -update BENCH_overload.json < /tmp/bench_overload.txt
	$(GO) run ./cmd/icache-benchjson -check BENCH_overload.json

# Overload-control smoke: the admission gate / circuit breaker / deadline
# unit surface plus the end-to-end shed and goodput classification paths.
# Fast enough to gate `make all` on; -count=1 defeats the test cache.
overload-smoke:
	$(GO) test -count=1 ./internal/overload/
	$(GO) test -count=1 -run 'TestAdmissionShed|TestDeadline|TestRunOverloadClassification|TestRunGoodputTracksDeadline' ./internal/rpc/ ./internal/loadgen/

# Two-second self-contained loadgen smoke (boots its own server, drives a
# short saturation run, fails on any request error): gates `make all` so
# the harness binary itself cannot rot.
loadgen-smoke:
	$(GO) run ./cmd/icache-loadgen -smoke

# Clairvoyant-prefetch gate (the planned cross-epoch pre-placement work):
# the same epoch-boundary workload runs reactive and clairvoyant; the
# benchmark FAILS unless warm-epoch cold misses drop >= 10x and the
# prefetch in-time ratio reaches 0.9. The clairvoyant run's samples/sec,
# cold-miss count and in-time ratio are archived as JSON and compared
# against the archived baseline (-check fails the build on a >10%
# throughput regression or an allocs/op rise).
bench-prefetch:
	$(GO) test -run NONE -bench 'PrefetchEpochs' -benchmem -count=3 ./internal/loadgen/ > /tmp/bench_prefetch.txt
	$(GO) run ./cmd/icache-benchjson -label after -update BENCH_prefetch.json < /tmp/bench_prefetch.txt
	$(GO) run ./cmd/icache-benchjson -check BENCH_prefetch.json

# Sub-second self-contained clairvoyant smoke (boots an in-process planning
# server, pushes each epoch's schedule ahead of its accesses, asserts later
# epochs run nearly cold-miss-free and the prefetch-outcome ledger stays
# exactly conserved): gates `make all` so the planner cannot rot.
prefetch-smoke:
	$(GO) run ./cmd/icache-loadgen -prefetch-smoke

# Observability overhead benchmark (off vs histograms-armed vs every
# request traced vs fully armed with journal+timeline, on the 8-client
# miss-heavy workload), archived as JSON.
bench-obs:
	$(GO) test -run NONE -bench 'ObsOverhead' -benchmem -count=5 ./internal/rpc/ > /tmp/bench_obs.txt
	$(GO) run ./cmd/icache-benchjson -label after -update BENCH_obs.json < /tmp/bench_obs.txt

# Regenerate the full evaluation at paper scale (~4 minutes).
experiments:
	$(GO) run ./cmd/icache-bench -exp all

experiments-quick:
	$(GO) run ./cmd/icache-bench -exp all -quick

# Short fuzz passes over the wire-facing decoders (with exploration).
fuzz:
	$(GO) test -fuzz FuzzServerDispatch -fuzztime 30s ./internal/rpc/
	$(GO) test -fuzz FuzzDirDispatch -fuzztime 30s ./internal/dkv/
	$(GO) test -fuzz FuzzReadFrame -fuzztime 15s ./internal/wire/
	$(GO) test -fuzz FuzzReader -fuzztime 15s ./internal/wire/
	$(GO) test -fuzz FuzzVec -fuzztime 15s ./internal/wire/

# Seed-corpus-only fuzz pass: runs every fuzz target's checked-in seeds as
# plain tests (no exploration), fast enough to gate `make all` on. Covers
# the cache-service dispatcher (including the batched-peer-read, mux
# envelope, and stray directory-replica opcodes), the directory dispatcher
# (including the membership, multi-lookup, ring-view-exchange and shard
# hand-off opcodes), and the wire framing.
fuzz-short:
	$(GO) test -run 'FuzzServerDispatch' -count=1 ./internal/rpc/
	$(GO) test -run 'FuzzDirDispatch' -count=1 ./internal/dkv/
	$(GO) test -run 'FuzzReadFrame|FuzzReader|FuzzVec' -count=1 ./internal/wire/

clean:
	$(GO) clean -testcache

// Package metrics holds the counters and small statistics helpers shared by
// the cache implementations, the training simulator, and the experiment
// harness. Keeping them in one place lets every scheme report hit ratios and
// I/O breakdowns in exactly the way the paper's figures do.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// CacheStats counts cache-level events. The paper's "cache hit ratio"
// figures count substitution-served requests as hits (that is explicitly why
// enabling the L-cache raises the hit ratio from 25% to 37% in Fig. 11), so
// HitRatio includes Substitutions.
type CacheStats struct {
	Hits          int64 // requests served from cached copies of the requested sample
	Misses        int64 // requests that went to backend storage
	Substitutions int64 // requests served by a different cached sample
	Degraded      int64 // requests that fell back to backend storage because a fault broke the preferred path
	Inserts       int64 // samples admitted into the cache
	Evictions     int64 // samples evicted to make room
	Rejections    int64 // fetched samples the policy declined to admit
}

// Add accumulates o into s.
func (s *CacheStats) Add(o CacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Substitutions += o.Substitutions
	s.Degraded += o.Degraded
	s.Inserts += o.Inserts
	s.Evictions += o.Evictions
	s.Rejections += o.Rejections
}

// Requests reports the total number of sample requests seen. Every request
// is counted exactly once, in exactly one of the four outcome classes —
// the conservation invariant the chaos suite asserts:
//
//	Hits + Misses + Substitutions + Degraded == Requests()
func (s CacheStats) Requests() int64 { return s.Hits + s.Misses + s.Substitutions + s.Degraded }

// HitRatio reports the fraction of requests served from memory (true hits
// plus substitution hits). Degraded requests were served from the backend,
// so they dilute the ratio just like misses. Zero requests yields 0.
func (s CacheStats) HitRatio() float64 {
	req := s.Requests()
	if req == 0 {
		return 0
	}
	return float64(s.Hits+s.Substitutions) / float64(req)
}

func (s CacheStats) String() string {
	return fmt.Sprintf("hits=%d misses=%d subs=%d degraded=%d hitRatio=%.3f inserts=%d evictions=%d",
		s.Hits, s.Misses, s.Substitutions, s.Degraded, s.HitRatio(), s.Inserts, s.Evictions)
}

// ResilienceStats counts the fault-handling events of a distributed cache:
// how often the directory or a peer failed, how many requests degraded to
// backend reads, and the local-only mode churn. They are observability
// counters, not part of the request-conservation invariant (one request may
// produce several resilience events, or none).
type ResilienceStats struct {
	DirFailures      int64 // directory operations that returned errors
	PeerFailures     int64 // remote-cache reads that failed
	DegradedReads    int64 // requests that fell back to the backend after a fault
	LocalOnly        int64 // transitions into local-only (directory-down) mode
	LocalOnlySkips   int64 // directory operations skipped while local-only
	DeferredReleases int64 // ownership releases queued while the directory was down
	ReplayedReleases int64 // deferred releases replayed after the directory healed
	DroppedReleases  int64 // deferred releases dropped at the queue cap (the scrubber repairs the stale entries later)
	Retries          int64 // network operations that needed at least one retry
	Redials          int64 // connections re-established after a transport failure
}

// Add accumulates o into r.
func (r *ResilienceStats) Add(o ResilienceStats) {
	r.DirFailures += o.DirFailures
	r.PeerFailures += o.PeerFailures
	r.DegradedReads += o.DegradedReads
	r.LocalOnly += o.LocalOnly
	r.LocalOnlySkips += o.LocalOnlySkips
	r.DeferredReleases += o.DeferredReleases
	r.ReplayedReleases += o.ReplayedReleases
	r.DroppedReleases += o.DroppedReleases
	r.Retries += o.Retries
	r.Redials += o.Redials
}

// Faults reports the total number of observed failures (directory + peer).
func (r ResilienceStats) Faults() int64 { return r.DirFailures + r.PeerFailures }

func (r ResilienceStats) String() string {
	return fmt.Sprintf("dirFail=%d peerFail=%d degraded=%d localOnly=%d skips=%d deferredRel=%d replayedRel=%d droppedRel=%d retries=%d redials=%d",
		r.DirFailures, r.PeerFailures, r.DegradedReads, r.LocalOnly,
		r.LocalOnlySkips, r.DeferredReleases, r.ReplayedReleases, r.DroppedReleases, r.Retries, r.Redials)
}

// MembershipStats counts node-lifecycle events across the distributed
// cache: lease churn on the directory side (registrations, heartbeats,
// state transitions, reclaimed/purged entries) and reconciliation work on
// the node side (anti-entropy scrub sweeps, rejoin claim replay). Like
// ResilienceStats they are observability counters, not part of the
// request-conservation invariant.
type MembershipStats struct {
	// Directory-side lease counters.
	Registers        int64 // lease grants (first registrations and re-registrations)
	Heartbeats       int64 // successful lease renewals
	HeartbeatRejects int64 // heartbeats arriving at/after lease expiry (node must re-register)
	Suspects         int64 // observed Live → Suspect transitions
	Deaths           int64 // observed → Dead transitions
	Revivals         int64 // registrations that revived a Suspect/Dead node
	Reclaims         int64 // claims that took over a Dead node's entry (first claimer wins)
	Purged           int64 // Dead-owned entries garbage-collected (on lookup or by PurgeDead)

	// Node-side reconciliation counters.
	ScrubSweeps    int64 // anti-entropy sweeps completed
	ScrubReleased  int64 // orphaned directory entries released (registered but not cached)
	ScrubReclaimed int64 // cached-but-unregistered samples re-claimed
	ScrubDropped   int64 // local copies dropped because another node owns the sample
	ReplayedClaims int64 // ownership claims replayed from a checkpoint on rejoin
	ReplayDenied   int64 // replayed claims denied (the survivor won; local copy dropped)
}

// Add accumulates o into m.
func (m *MembershipStats) Add(o MembershipStats) {
	m.Registers += o.Registers
	m.Heartbeats += o.Heartbeats
	m.HeartbeatRejects += o.HeartbeatRejects
	m.Suspects += o.Suspects
	m.Deaths += o.Deaths
	m.Revivals += o.Revivals
	m.Reclaims += o.Reclaims
	m.Purged += o.Purged
	m.ScrubSweeps += o.ScrubSweeps
	m.ScrubReleased += o.ScrubReleased
	m.ScrubReclaimed += o.ScrubReclaimed
	m.ScrubDropped += o.ScrubDropped
	m.ReplayedClaims += o.ReplayedClaims
	m.ReplayDenied += o.ReplayDenied
}

func (m MembershipStats) String() string {
	return fmt.Sprintf("reg=%d hb=%d hbRej=%d suspect=%d dead=%d revive=%d reclaim=%d purged=%d scrub{sweeps=%d released=%d reclaimed=%d dropped=%d} replay{claims=%d denied=%d}",
		m.Registers, m.Heartbeats, m.HeartbeatRejects, m.Suspects, m.Deaths, m.Revivals,
		m.Reclaims, m.Purged, m.ScrubSweeps, m.ScrubReleased, m.ScrubReclaimed, m.ScrubDropped,
		m.ReplayedClaims, m.ReplayDenied)
}

// ServingStats counts concurrent-serving-path events on the network
// server: miss coalescing, prefetch-pool activity, and encode/frame buffer
// pooling. Like ResilienceStats they are observability counters, not part
// of the request-conservation invariant.
type ServingStats struct {
	CoalescedMisses    int64 // miss fetches that joined an in-flight fetch for the same sample
	PrefetchQueued     int64 // loader-delivered samples accepted by the prefetch pool
	PrefetchCompleted  int64 // prefetches that finished (bytes stored or already present)
	PrefetchDropped    int64 // deliveries discarded because the prefetch queue was full
	PrefetchFailed     int64 // prefetch fetches that errored (sample stays lazy)
	PrefetchQueueDepth int64 // gauge: current prefetch backlog
	PrefetchWorkers    int64 // gauge: configured pool size (the Fig. 15 knob)
	BufferGets         int64 // pooled-buffer checkouts on the wire path
	BufferAllocs       int64 // checkouts that had to allocate (pool miss)
	BufferDiscards     int64 // buffer returns dropped at the pooled-capacity cap
	VecGets            int64 // pooled vectored-frame checkouts on the wire path
	VecAllocs          int64 // vectored-frame checkouts that had to allocate
	VecDiscards        int64 // vectored-frame returns dropped at the pooled-capacity cap
	PeerBatchRPCs      int64 // scatter-gather opPeerGetBatch round trips issued
	PeerBatchSamples   int64 // samples carried by those batched peer RPCs
	MuxInflight        int64 // gauge: multiplexed request frames currently being served

	// Slab payload-store counters (the zero-copy hit path): slab arena
	// lifecycle plus the byte gauges an operator sizes DRAM with.
	SlabAllocs   int64 // arena slabs carved from the heap
	SlabRecycled int64 // drained slabs returned to the free list
	SlabAdopted  int64 // payload buffers adopted zero-copy as dedicated slabs
	SlabFreed    int64 // slabs released to the garbage collector
	SlabBytes    int64 // gauge: bytes currently held by slabs (arena + adopted)
	PayloadBytes int64 // gauge: bytes of live (resident) payloads
	PayloadPins  int64 // payload reads pinned zero-copy from the store
}

// Add accumulates o's counters into s. Gauges (queue depth, worker count)
// are overwritten with o's values, matching "latest observation wins".
func (s *ServingStats) Add(o ServingStats) {
	s.CoalescedMisses += o.CoalescedMisses
	s.PrefetchQueued += o.PrefetchQueued
	s.PrefetchCompleted += o.PrefetchCompleted
	s.PrefetchDropped += o.PrefetchDropped
	s.PrefetchFailed += o.PrefetchFailed
	s.PrefetchQueueDepth = o.PrefetchQueueDepth
	s.PrefetchWorkers = o.PrefetchWorkers
	s.BufferGets += o.BufferGets
	s.BufferAllocs += o.BufferAllocs
	s.BufferDiscards += o.BufferDiscards
	s.VecGets += o.VecGets
	s.VecAllocs += o.VecAllocs
	s.VecDiscards += o.VecDiscards
	s.PeerBatchRPCs += o.PeerBatchRPCs
	s.PeerBatchSamples += o.PeerBatchSamples
	s.MuxInflight = o.MuxInflight
	s.SlabAllocs += o.SlabAllocs
	s.SlabRecycled += o.SlabRecycled
	s.SlabAdopted += o.SlabAdopted
	s.SlabFreed += o.SlabFreed
	s.SlabBytes = o.SlabBytes
	s.PayloadBytes = o.PayloadBytes
	s.PayloadPins += o.PayloadPins
}

// PeerBatchFill reports the average number of samples per batched peer RPC
// (0 when no batched RPCs were issued) — the scatter-gather amortization
// factor: higher means fewer round trips per mini-batch.
func (s ServingStats) PeerBatchFill() float64 {
	if s.PeerBatchRPCs == 0 {
		return 0
	}
	return float64(s.PeerBatchSamples) / float64(s.PeerBatchRPCs)
}

// BufferReuseRate reports the fraction of pooled-buffer checkouts served
// without allocating (0 when no checkouts happened).
func (s ServingStats) BufferReuseRate() float64 {
	if s.BufferGets == 0 {
		return 0
	}
	return 1 - float64(s.BufferAllocs)/float64(s.BufferGets)
}

func (s ServingStats) String() string {
	return fmt.Sprintf("coalesced=%d prefetch{queued=%d done=%d dropped=%d failed=%d depth=%d workers=%d} bufReuse=%.3f peerBatch{rpcs=%d samples=%d fill=%.1f} muxInflight=%d",
		s.CoalescedMisses, s.PrefetchQueued, s.PrefetchCompleted, s.PrefetchDropped,
		s.PrefetchFailed, s.PrefetchQueueDepth, s.PrefetchWorkers, s.BufferReuseRate(),
		s.PeerBatchRPCs, s.PeerBatchSamples, s.PeerBatchFill(), s.MuxInflight)
}

// OverloadStats counts overload-control events on the network server: the
// admission gate's decisions, server-side deadline drops, and the per-peer
// circuit breakers' lifecycle (aggregated across peers). Unlike the other
// observability families, Shed and Expired join the serving layer's
// request-conservation arithmetic: every offered request is either served
// (and lands in CacheStats), shed, or expired — exactly once.
type OverloadStats struct {
	GateState string // gauge: "normal" | "brownout" | "shed" ("" = gate disabled)
	Inflight  int64  // gauge: requests currently holding an admission slot
	Admitted  int64  // requests the gate let through
	Shed      int64  // requests rejected with a retry-after hint
	Expired   int64  // requests dropped server-side with their deadline budget spent
	Brownouts int64  // entries into the Brownout state (transitions, not requests)
	Sheds     int64  // entries into the Shed state (transitions, not requests)

	BreakersOpen      int64 // gauge: peer breakers currently open or half-open
	BreakerTrips      int64 // closed-to-open transitions across all peers
	BreakerFastFails  int64 // calls rejected by an open breaker without touching the network
	BreakerProbes     int64 // half-open probe calls issued
	BreakerRecoveries int64 // breakers re-closed by a successful probe
}

// Add accumulates o's counters into s; gauges take o's values ("latest
// observation wins", matching ServingStats.Add).
func (s *OverloadStats) Add(o OverloadStats) {
	s.GateState = o.GateState
	s.Inflight = o.Inflight
	s.Admitted += o.Admitted
	s.Shed += o.Shed
	s.Expired += o.Expired
	s.Brownouts += o.Brownouts
	s.Sheds += o.Sheds
	s.BreakersOpen = o.BreakersOpen
	s.BreakerTrips += o.BreakerTrips
	s.BreakerFastFails += o.BreakerFastFails
	s.BreakerProbes += o.BreakerProbes
	s.BreakerRecoveries += o.BreakerRecoveries
}

func (s OverloadStats) String() string {
	return fmt.Sprintf("gate=%s inflight=%d admitted=%d shed=%d expired=%d brownouts=%d sheds=%d breakers{open=%d trips=%d fastFails=%d probes=%d recoveries=%d}",
		s.GateState, s.Inflight, s.Admitted, s.Shed, s.Expired, s.Brownouts, s.Sheds,
		s.BreakersOpen, s.BreakerTrips, s.BreakerFastFails, s.BreakerProbes, s.BreakerRecoveries)
}

// EpochStats describes one simulated training epoch of one job.
type EpochStats struct {
	Epoch int
	// Duration is wall time of the epoch (virtual).
	Duration time.Duration
	// IOStall is time the GPU spent waiting for data — the paper's "I/O
	// time" / data-stall metric.
	IOStall time.Duration
	// Compute is time the GPU spent computing.
	Compute time.Duration
	// FetchBusy is cumulative time workers spent fetching (can exceed
	// Duration because workers run in parallel).
	FetchBusy time.Duration
	// SamplesFetched and SamplesTrained count the epoch's data volume.
	SamplesFetched int
	SamplesTrained int
	// Cache is the epoch's cache-event delta.
	Cache CacheStats
	// Top1 and Top5 are the model's accuracy at the end of this epoch.
	Top1, Top5 float64
}

// RunStats aggregates a whole training run.
type RunStats struct {
	Scheme string
	Epochs []EpochStats
}

// AvgEpochTime is the paper's headline metric: total training time divided
// by the number of epochs.
func (r RunStats) AvgEpochTime() time.Duration {
	if len(r.Epochs) == 0 {
		return 0
	}
	var total time.Duration
	for _, e := range r.Epochs {
		total += e.Duration
	}
	return total / time.Duration(len(r.Epochs))
}

// AvgIOStall averages per-epoch GPU stall time.
func (r RunStats) AvgIOStall() time.Duration {
	if len(r.Epochs) == 0 {
		return 0
	}
	var total time.Duration
	for _, e := range r.Epochs {
		total += e.IOStall
	}
	return total / time.Duration(len(r.Epochs))
}

// TotalCache sums cache stats over all epochs.
func (r RunStats) TotalCache() CacheStats {
	var c CacheStats
	for _, e := range r.Epochs {
		c.Add(e.Cache)
	}
	return c
}

// FinalTop1 returns the last epoch's Top-1 accuracy (0 if no epochs).
func (r RunStats) FinalTop1() float64 {
	if len(r.Epochs) == 0 {
		return 0
	}
	return r.Epochs[len(r.Epochs)-1].Top1
}

// FinalTop5 returns the last epoch's Top-5 accuracy (0 if no epochs).
func (r RunStats) FinalTop5() float64 {
	if len(r.Epochs) == 0 {
		return 0
	}
	return r.Epochs[len(r.Epochs)-1].Top5
}

// Speedup reports how much faster r is than baseline on average epoch time.
// Zero-denominator edges are defined rather than left to float division:
// two zero-time runs are equally fast (1); a zero-time r against a real
// baseline is infinitely faster (+Inf); a zero-time baseline against a real
// r is a 0× "speedup".
func Speedup(baseline, r RunStats) float64 {
	b, v := baseline.AvgEpochTime(), r.AvgEpochTime()
	if v == 0 {
		if b == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return float64(b) / float64(v)
}

// Series is a float series with summary helpers, used by the experiment
// harness when printing figure data.
type Series []float64

// Mean returns the arithmetic mean (0 for an empty series).
func (s Series) Mean() float64 {
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}

// Min returns the smallest element (0 for an empty series).
func (s Series) Min() float64 {
	if len(s) == 0 {
		return 0
	}
	m := s[0]
	for _, v := range s[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest element (0 for an empty series).
func (s Series) Max() float64 {
	if len(s) == 0 {
		return 0
	}
	m := s[0]
	for _, v := range s[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) by linear
// interpolation between closest order statistics on a sorted copy (the
// "inclusive" / numpy-default method: fractional rank p/100·(n−1)). This is
// the same convention obs.HistSnapshot.Quantile uses inside a histogram
// bucket, so the two estimators agree to within one bucket's width on the
// same data — a consistency the cross-package test in internal/obs pins.
// Out-of-range p clamps; an empty series reports 0; NaN p is treated as 0.
func (s Series) Percentile(p float64) float64 {
	if len(s) == 0 {
		return 0
	}
	if p < 0 || math.IsNaN(p) {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append(Series(nil), s...)
	sort.Float64s(sorted)
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if hi >= len(sorted) {
		hi = len(sorted) - 1
	}
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo] + frac*(sorted[hi]-sorted[lo])
}

// SnapshotUnder copies *v while holding mu — the one way every stats
// struct in the repo is snapshotted for reading. Counter owners mutate
// their struct under a lock; readers that copy it without that lock race
// with Add (the PR-3 listener-field pattern). Routing reads through this
// helper makes the copy-under-lock discipline greppable and impossible to
// get subtly wrong at each call site.
func SnapshotUnder[T any](mu sync.Locker, v *T) T {
	mu.Lock()
	defer mu.Unlock()
	return *v
}

package metrics

// DecisionStats is the decision-level introspection ledger: every removal,
// admission, prefetch and substitution carries a reason code, so operators
// can answer "why did hit ratio dip in epoch 7?" from counters instead of a
// debugger. The family is exposed on the Prometheus surface and typed
// accessors only — the JSON /metrics document stays byte-pinned (the same
// contract OverloadStats follows).
//
// Two conservation identities hold at epoch boundaries (pinned by
// TestDecisionLedgerConservation):
//
//	EvictCapacity + EvictDeadOwner + EvictScrub + EvictCheckpointDenied == EvictTotal
//	PrefetchInTime + PrefetchLate + PrefetchWasted + PrefetchDropped   == PrefetchIssued
//
// The prefetch identity only balances at epoch boundaries because samples
// prefetched but not yet touched are still pending; the epoch sweep
// reclassifies the remainder as wasted (the selection that wanted them is
// over).
type DecisionStats struct {
	// Eviction reasons. Capacity is the policy's own insert-pressure
	// evictions (the paper's H/L replacement); the others are directed
	// drops: dead-owner (the directory credits the sample to another node),
	// scrub (anti-entropy sweep repair), checkpoint-denied (a restored
	// resident whose ownership replay was denied after rejoin).
	EvictCapacity         int64
	EvictDeadOwner        int64
	EvictScrub            int64
	EvictCheckpointDenied int64
	// EvictTotal is counted independently at the removal core, so the sum
	// identity is a real wiring check, not an arithmetic tautology.
	EvictTotal int64

	// Admission provenance: what motivated each payload-store insert.
	// AdmitPeer stays zero while the no-duplication invariant holds
	// (peer-fetched bytes are forwarded, never re-admitted locally); the
	// counter exists to make a future violation visible.
	AdmitFetch     int64
	AdmitPrefetch  int64
	AdmitRehydrate int64
	AdmitPeer      int64

	// Prefetch outcome ledger. Issued counts every id offered to the pool;
	// in-time means the prefetched payload served a request before anything
	// else happened to it, late means the foreground beat the worker to the
	// fetch, wasted means it was evicted (or the epoch ended) untouched,
	// dropped folds queue-full, paused and failed fetches together.
	PrefetchIssued  int64
	PrefetchInTime  int64
	PrefetchLate    int64
	PrefetchWasted  int64
	PrefetchDropped int64

	// Substitution quality: exact means the same-region L-cache walk found
	// a loaded neighbour (the paper's intended substitution), fallback
	// means the cross-region H-resident fallback fired instead.
	SubExact    int64
	SubFallback int64

	// Per-epoch residency composition, snapshotted at the last epoch
	// boundary: how many H- and L-samples (and bytes) were resident the
	// moment the epoch turned. Gauges, not counters.
	Epoch       int64
	EpochHCount int64
	EpochLCount int64
	EpochHBytes int64
	EpochLBytes int64
}

// PrefetchTimeliness reports the fraction of completed prefetches that
// arrived in time to serve a request: in-time / (in-time + late + wasted).
// Zero when no prefetch has resolved yet.
func (d DecisionStats) PrefetchTimeliness() float64 {
	resolved := d.PrefetchInTime + d.PrefetchLate + d.PrefetchWasted
	if resolved == 0 {
		return 0
	}
	return float64(d.PrefetchInTime) / float64(resolved)
}

package metrics

import (
	"math"
	"testing"
	"time"
)

func TestCacheStatsHitRatio(t *testing.T) {
	var s CacheStats
	if s.HitRatio() != 0 {
		t.Fatal("empty stats hit ratio != 0")
	}
	s = CacheStats{Hits: 20, Misses: 70, Substitutions: 10}
	if got := s.HitRatio(); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("HitRatio = %g, want 0.3 (substitutions count as hits)", got)
	}
	if s.Requests() != 100 {
		t.Fatalf("Requests = %d, want 100", s.Requests())
	}
	// Degraded requests were served from the backend: they join the request
	// total (conservation) and dilute the hit ratio exactly like misses.
	s = CacheStats{Hits: 20, Misses: 50, Substitutions: 10, Degraded: 20}
	if s.Requests() != 100 {
		t.Fatalf("Requests with Degraded = %d, want 100", s.Requests())
	}
	if got := s.HitRatio(); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("HitRatio with Degraded = %g, want 0.3", got)
	}
}

func TestCacheStatsAdd(t *testing.T) {
	a := CacheStats{Hits: 1, Misses: 2, Substitutions: 3, Degraded: 7, Inserts: 4, Evictions: 5, Rejections: 6}
	b := a
	a.Add(b)
	if a.Hits != 2 || a.Misses != 4 || a.Substitutions != 6 || a.Degraded != 14 || a.Inserts != 8 || a.Evictions != 10 || a.Rejections != 12 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestResilienceStats(t *testing.T) {
	a := ResilienceStats{DirFailures: 1, PeerFailures: 2, DegradedReads: 3, LocalOnly: 4,
		LocalOnlySkips: 5, DeferredReleases: 6, ReplayedReleases: 7, Retries: 8, Redials: 9}
	b := a
	a.Add(b)
	want := ResilienceStats{DirFailures: 2, PeerFailures: 4, DegradedReads: 6, LocalOnly: 8,
		LocalOnlySkips: 10, DeferredReleases: 12, ReplayedReleases: 14, Retries: 16, Redials: 18}
	if a != want {
		t.Fatalf("Add wrong: %+v", a)
	}
	if a.Faults() != 6 {
		t.Fatalf("Faults = %d, want 6", a.Faults())
	}
	if a.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestCacheStatsString(t *testing.T) {
	s := CacheStats{Hits: 1, Misses: 1}
	if got := s.String(); got == "" {
		t.Fatal("empty String()")
	}
}

func TestRunStatsAverages(t *testing.T) {
	r := RunStats{Scheme: "x", Epochs: []EpochStats{
		{Duration: 10 * time.Second, IOStall: 4 * time.Second, Top1: 0.8, Top5: 0.95},
		{Duration: 20 * time.Second, IOStall: 6 * time.Second, Top1: 0.9, Top5: 0.99},
	}}
	if got := r.AvgEpochTime(); got != 15*time.Second {
		t.Fatalf("AvgEpochTime = %v, want 15s", got)
	}
	if got := r.AvgIOStall(); got != 5*time.Second {
		t.Fatalf("AvgIOStall = %v, want 5s", got)
	}
	if r.FinalTop1() != 0.9 || r.FinalTop5() != 0.99 {
		t.Fatalf("final accuracy = %g/%g", r.FinalTop1(), r.FinalTop5())
	}
}

func TestRunStatsEmpty(t *testing.T) {
	var r RunStats
	if r.AvgEpochTime() != 0 || r.AvgIOStall() != 0 || r.FinalTop1() != 0 || r.FinalTop5() != 0 {
		t.Fatal("empty RunStats not all-zero")
	}
}

func TestRunStatsTotalCache(t *testing.T) {
	r := RunStats{Epochs: []EpochStats{
		{Cache: CacheStats{Hits: 1}},
		{Cache: CacheStats{Hits: 2, Misses: 3}},
	}}
	c := r.TotalCache()
	if c.Hits != 3 || c.Misses != 3 {
		t.Fatalf("TotalCache = %+v", c)
	}
}

func TestSpeedup(t *testing.T) {
	base := RunStats{Epochs: []EpochStats{{Duration: 20 * time.Second}}}
	fast := RunStats{Epochs: []EpochStats{{Duration: 10 * time.Second}}}
	if got := Speedup(base, fast); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Speedup = %g, want 2", got)
	}
	if !math.IsInf(Speedup(base, RunStats{}), 1) {
		t.Fatal("zero-time run should give +Inf speedup")
	}
}

func TestSeriesSummaries(t *testing.T) {
	s := Series{3, 1, 2}
	if s.Mean() != 2 || s.Min() != 1 || s.Max() != 3 {
		t.Fatalf("mean/min/max = %g/%g/%g", s.Mean(), s.Min(), s.Max())
	}
	var empty Series
	if empty.Mean() != 0 || empty.Min() != 0 || empty.Max() != 0 || empty.Percentile(50) != 0 {
		t.Fatal("empty series summaries not zero")
	}
}

func TestSeriesPercentile(t *testing.T) {
	s := Series{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := s.Percentile(50); got != 5 {
		t.Fatalf("P50 = %g, want 5", got)
	}
	if got := s.Percentile(100); got != 10 {
		t.Fatalf("P100 = %g, want 10", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("P0 = %g, want 1", got)
	}
	if got := s.Percentile(-5); got != 1 {
		t.Fatalf("P(-5) = %g, want clamp to 1", got)
	}
	if got := s.Percentile(200); got != 10 {
		t.Fatalf("P200 = %g, want clamp to 10", got)
	}
	// Percentile must not reorder the caller's slice.
	if s[0] != 1 || s[9] != 10 {
		t.Fatal("Percentile mutated input")
	}
}

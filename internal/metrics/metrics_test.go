package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCacheStatsHitRatio(t *testing.T) {
	var s CacheStats
	if s.HitRatio() != 0 {
		t.Fatal("empty stats hit ratio != 0")
	}
	s = CacheStats{Hits: 20, Misses: 70, Substitutions: 10}
	if got := s.HitRatio(); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("HitRatio = %g, want 0.3 (substitutions count as hits)", got)
	}
	if s.Requests() != 100 {
		t.Fatalf("Requests = %d, want 100", s.Requests())
	}
	// Degraded requests were served from the backend: they join the request
	// total (conservation) and dilute the hit ratio exactly like misses.
	s = CacheStats{Hits: 20, Misses: 50, Substitutions: 10, Degraded: 20}
	if s.Requests() != 100 {
		t.Fatalf("Requests with Degraded = %d, want 100", s.Requests())
	}
	if got := s.HitRatio(); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("HitRatio with Degraded = %g, want 0.3", got)
	}
}

func TestCacheStatsAdd(t *testing.T) {
	a := CacheStats{Hits: 1, Misses: 2, Substitutions: 3, Degraded: 7, Inserts: 4, Evictions: 5, Rejections: 6}
	b := a
	a.Add(b)
	if a.Hits != 2 || a.Misses != 4 || a.Substitutions != 6 || a.Degraded != 14 || a.Inserts != 8 || a.Evictions != 10 || a.Rejections != 12 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestResilienceStats(t *testing.T) {
	a := ResilienceStats{DirFailures: 1, PeerFailures: 2, DegradedReads: 3, LocalOnly: 4,
		LocalOnlySkips: 5, DeferredReleases: 6, ReplayedReleases: 7, Retries: 8, Redials: 9}
	b := a
	a.Add(b)
	want := ResilienceStats{DirFailures: 2, PeerFailures: 4, DegradedReads: 6, LocalOnly: 8,
		LocalOnlySkips: 10, DeferredReleases: 12, ReplayedReleases: 14, Retries: 16, Redials: 18}
	if a != want {
		t.Fatalf("Add wrong: %+v", a)
	}
	if a.Faults() != 6 {
		t.Fatalf("Faults = %d, want 6", a.Faults())
	}
	if a.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestCacheStatsString(t *testing.T) {
	s := CacheStats{Hits: 1, Misses: 1}
	if got := s.String(); got == "" {
		t.Fatal("empty String()")
	}
}

func TestRunStatsAverages(t *testing.T) {
	r := RunStats{Scheme: "x", Epochs: []EpochStats{
		{Duration: 10 * time.Second, IOStall: 4 * time.Second, Top1: 0.8, Top5: 0.95},
		{Duration: 20 * time.Second, IOStall: 6 * time.Second, Top1: 0.9, Top5: 0.99},
	}}
	if got := r.AvgEpochTime(); got != 15*time.Second {
		t.Fatalf("AvgEpochTime = %v, want 15s", got)
	}
	if got := r.AvgIOStall(); got != 5*time.Second {
		t.Fatalf("AvgIOStall = %v, want 5s", got)
	}
	if r.FinalTop1() != 0.9 || r.FinalTop5() != 0.99 {
		t.Fatalf("final accuracy = %g/%g", r.FinalTop1(), r.FinalTop5())
	}
}

func TestRunStatsEmpty(t *testing.T) {
	var r RunStats
	if r.AvgEpochTime() != 0 || r.AvgIOStall() != 0 || r.FinalTop1() != 0 || r.FinalTop5() != 0 {
		t.Fatal("empty RunStats not all-zero")
	}
}

func TestRunStatsTotalCache(t *testing.T) {
	r := RunStats{Epochs: []EpochStats{
		{Cache: CacheStats{Hits: 1}},
		{Cache: CacheStats{Hits: 2, Misses: 3}},
	}}
	c := r.TotalCache()
	if c.Hits != 3 || c.Misses != 3 {
		t.Fatalf("TotalCache = %+v", c)
	}
}

func TestSpeedup(t *testing.T) {
	base := RunStats{Epochs: []EpochStats{{Duration: 20 * time.Second}}}
	fast := RunStats{Epochs: []EpochStats{{Duration: 10 * time.Second}}}
	if got := Speedup(base, fast); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Speedup = %g, want 2", got)
	}
	if !math.IsInf(Speedup(base, RunStats{}), 1) {
		t.Fatal("zero-time run should give +Inf speedup")
	}
}

// TestRatioGuards table-tests every ratio-style metric against
// zero-denominator / empty-input edges: no NaN, no surprise Inf.
func TestRatioGuards(t *testing.T) {
	t.Run("Speedup", func(t *testing.T) {
		real := RunStats{Epochs: []EpochStats{{Duration: time.Second}}}
		cases := []struct {
			name    string
			b, r    RunStats
			want    float64
			wantInf bool
		}{
			{name: "both-empty", b: RunStats{}, r: RunStats{}, want: 1},
			{name: "zero-baseline", b: RunStats{}, r: real, want: 0},
			{name: "zero-run", b: real, r: RunStats{}, wantInf: true},
			{name: "both-real", b: real, r: real, want: 1},
		}
		for _, c := range cases {
			got := Speedup(c.b, c.r)
			if math.IsNaN(got) {
				t.Errorf("%s: Speedup is NaN", c.name)
			}
			if c.wantInf && !math.IsInf(got, 1) {
				t.Errorf("%s: Speedup = %g, want +Inf", c.name, got)
			}
			if !c.wantInf && got != c.want {
				t.Errorf("%s: Speedup = %g, want %g", c.name, got, c.want)
			}
		}
	})
	t.Run("HitRatio", func(t *testing.T) {
		cases := []struct {
			name string
			s    CacheStats
			want float64
		}{
			{name: "zero", s: CacheStats{}, want: 0},
			{name: "all-hits", s: CacheStats{Hits: 4}, want: 1},
			{name: "mixed", s: CacheStats{Hits: 1, Substitutions: 1, Misses: 1, Degraded: 1}, want: 0.5},
		}
		for _, c := range cases {
			if got := c.s.HitRatio(); got != c.want || math.IsNaN(got) {
				t.Errorf("%s: HitRatio = %g, want %g", c.name, got, c.want)
			}
		}
	})
	t.Run("BufferReuseRate", func(t *testing.T) {
		cases := []struct {
			name string
			s    ServingStats
			want float64
		}{
			{name: "zero", s: ServingStats{}, want: 0},
			{name: "all-allocs", s: ServingStats{BufferGets: 3, BufferAllocs: 3}, want: 0},
			{name: "half", s: ServingStats{BufferGets: 4, BufferAllocs: 2}, want: 0.5},
		}
		for _, c := range cases {
			if got := c.s.BufferReuseRate(); got != c.want || math.IsNaN(got) {
				t.Errorf("%s: BufferReuseRate = %g, want %g", c.name, got, c.want)
			}
		}
	})
	t.Run("Percentile", func(t *testing.T) {
		var empty Series
		for _, p := range []float64{-10, 0, 50, 100, 200, math.NaN()} {
			if got := empty.Percentile(p); got != 0 {
				t.Errorf("empty.Percentile(%g) = %g, want 0", p, got)
			}
		}
		one := Series{7}
		for _, p := range []float64{0, 33, 100, math.NaN()} {
			if got := one.Percentile(p); got != 7 {
				t.Errorf("one.Percentile(%g) = %g, want 7", p, got)
			}
		}
	})
}

func TestSnapshotUnder(t *testing.T) {
	var mu sync.Mutex
	src := CacheStats{Hits: 2, Misses: 1}
	got := SnapshotUnder(&mu, &src)
	if got != src {
		t.Fatalf("SnapshotUnder = %+v, want %+v", got, src)
	}
	// The helper must have released the lock.
	if !mu.TryLock() {
		t.Fatal("SnapshotUnder left the lock held")
	}
	mu.Unlock()
}

func TestSeriesSummaries(t *testing.T) {
	s := Series{3, 1, 2}
	if s.Mean() != 2 || s.Min() != 1 || s.Max() != 3 {
		t.Fatalf("mean/min/max = %g/%g/%g", s.Mean(), s.Min(), s.Max())
	}
	var empty Series
	if empty.Mean() != 0 || empty.Min() != 0 || empty.Max() != 0 || empty.Percentile(50) != 0 {
		t.Fatal("empty series summaries not zero")
	}
}

func TestSeriesPercentile(t *testing.T) {
	s := Series{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	// Linear interpolation between closest ranks: rank 0.5*(10-1) = 4.5
	// lands midway between the 5th and 6th order statistics.
	if got := s.Percentile(50); got != 5.5 {
		t.Fatalf("P50 = %g, want 5.5", got)
	}
	if got := s.Percentile(100); got != 10 {
		t.Fatalf("P100 = %g, want 10", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("P0 = %g, want 1", got)
	}
	if got := s.Percentile(-5); got != 1 {
		t.Fatalf("P(-5) = %g, want clamp to 1", got)
	}
	if got := s.Percentile(200); got != 10 {
		t.Fatalf("P200 = %g, want clamp to 10", got)
	}
	// Percentile must not reorder the caller's slice.
	if s[0] != 1 || s[9] != 10 {
		t.Fatal("Percentile mutated input")
	}
}

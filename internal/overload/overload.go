// Package overload implements the serving-path overload controls shared by
// the cache server (internal/rpc) and the directory service (internal/dkv):
//
//   - Gate: a queue-delay-driven admission controller in the CoDel spirit.
//     Requests pay an inflight check on arrival; the standing queue delay
//     (the windowed MINIMUM of admission waits, so a transient burst does
//     not trip it) drives a three-state ladder: Normal -> Brownout (shut
//     off optional work: substitution scans, prefetching) -> Shed (reject
//     excess with a retry-after hint, keeping only a token-bucket floor of
//     traffic flowing so recovery can be observed).
//
//   - Breaker: a per-peer circuit breaker (Closed -> Open on consecutive
//     failures -> HalfOpen granting exactly one probe). Peers that time out
//     or shed repeatedly fail fast to the backend fallback instead of
//     stalling every scatter-gather batch on a dead TCP connection.
//
// Both take explicit time.Time arguments so tests drive them on a virtual
// clock; nothing in this package reads the wall clock or sleeps.
package overload

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// State is the admission ladder position.
type State int32

const (
	// Normal admits everything under the inflight cap.
	Normal State = iota
	// Brownout admits everything but signals the server to drop optional
	// work (substitution scans, prefetch) — load is building.
	Brownout
	// Shed rejects excess requests with a retry-after hint, admitting only
	// the token-bucket floor (plus inflight headroom) so the standing delay
	// can still be measured for recovery.
	Shed
)

func (s State) String() string {
	switch s {
	case Normal:
		return "normal"
	case Brownout:
		return "brownout"
	case Shed:
		return "shed"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// GateConfig parameterizes a Gate. Zero values select the documented
// defaults; a zero TargetDelay disables the delay ladder (the inflight cap
// still applies).
type GateConfig struct {
	// MaxInflight caps concurrently admitted requests; arrivals beyond it
	// are shed immediately. <= 0 means unlimited.
	MaxInflight int
	// TargetDelay is the acceptable standing queue delay. When the windowed
	// minimum admission wait exceeds it, the gate walks the ladder.
	TargetDelay time.Duration
	// Window is how long each delay-observation window lasts. Default 100ms.
	Window time.Duration
	// ShedWindows is how many consecutive over-target windows escalate
	// Brownout to Shed. Default 3 (the first over-target window already
	// enters Brownout).
	ShedWindows int
	// FloorRate is the admissions/sec token-bucket floor kept flowing during
	// Shed. Default 100.
	FloorRate float64
	// FloorBurst is the token bucket depth. Default 16.
	FloorBurst float64
	// RetryAfter is the backoff hint attached to shed responses. Default 5ms.
	RetryAfter time.Duration
}

func (c GateConfig) withDefaults() GateConfig {
	if c.Window <= 0 {
		c.Window = 100 * time.Millisecond
	}
	if c.ShedWindows <= 0 {
		c.ShedWindows = 3
	}
	if c.FloorRate <= 0 {
		c.FloorRate = 100
	}
	if c.FloorBurst <= 0 {
		c.FloorBurst = 16
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 5 * time.Millisecond
	}
	return c
}

// GateStats is a point-in-time counter snapshot of one Gate.
type GateStats struct {
	State    State
	Inflight int64
	Admitted int64
	Shed     int64
	// Brownouts and Sheds count ladder ENTRIES (state transitions), not
	// rejected requests.
	Brownouts int64
	Sheds     int64
}

// Gate is the admission controller. The hot path (Admit/Done) is one atomic
// add-then-check when the ladder is Normal; the mutex only guards window
// rolls and the Shed-state token bucket.
type Gate struct {
	cfg GateConfig

	inflight int64 // atomic
	state    int32 // atomic State, so brownout hooks read it lock-free
	admitted int64 // atomic
	shed     int64 // atomic

	mu          sync.Mutex
	windowEnd   time.Time
	minWait     time.Duration // windowed minimum admission wait
	haveWait    bool
	overWindows int     // consecutive windows with minWait > TargetDelay
	tokens      float64 // Shed-state floor bucket
	tokensAt    time.Time
	brownouts   int64
	sheds       int64

	// onState, when set, is called on every ladder transition with the gate
	// mutex held — it must be fast and must not call back into the Gate.
	onState func(old, new State)
}

// NewGate builds a Gate. cfg zero values take the package defaults.
func NewGate(cfg GateConfig) *Gate {
	return &Gate{cfg: cfg.withDefaults()}
}

// OnStateChange registers the ladder-transition hook (the rpc server uses
// it to pause prefetching and disable substitution scans in Brownout).
// Must be called before the gate serves traffic.
func (g *Gate) OnStateChange(fn func(old, new State)) { g.onState = fn }

// State reports the current ladder position (lock-free).
func (g *Gate) State() State { return State(atomic.LoadInt32(&g.state)) }

// Admit decides one arrival. ok=true means the caller owns one inflight
// slot and must call Done when the request finishes (on every path). On
// ok=false the request must be rejected with the returned retry-after hint.
func (g *Gate) Admit(now time.Time) (ok bool, retryAfter time.Duration) {
	if n := int64(g.cfg.MaxInflight); n > 0 {
		if atomic.AddInt64(&g.inflight, 1) > n {
			atomic.AddInt64(&g.inflight, -1)
			atomic.AddInt64(&g.shed, 1)
			return false, g.cfg.RetryAfter
		}
	} else {
		atomic.AddInt64(&g.inflight, 1)
	}
	if g.cfg.TargetDelay > 0 {
		g.mu.Lock()
		g.rollLocked(now)
		if State(atomic.LoadInt32(&g.state)) == Shed && !g.takeTokenLocked(now) {
			g.mu.Unlock()
			atomic.AddInt64(&g.inflight, -1)
			atomic.AddInt64(&g.shed, 1)
			return false, g.cfg.RetryAfter
		}
		g.mu.Unlock()
	}
	atomic.AddInt64(&g.admitted, 1)
	return true, 0
}

// Done releases the inflight slot taken by a successful Admit.
func (g *Gate) Done() { atomic.AddInt64(&g.inflight, -1) }

// Observe records how long an admitted request waited between arrival and
// the start of service (the mux inflight-semaphore wait, or zero on the
// unqueued paths). The windowed minimum of these waits is the standing
// queue delay that drives the ladder.
func (g *Gate) Observe(now time.Time, wait time.Duration) {
	if g.cfg.TargetDelay <= 0 {
		return
	}
	g.mu.Lock()
	g.rollLocked(now)
	if !g.haveWait || wait < g.minWait {
		g.minWait, g.haveWait = wait, true
	}
	g.mu.Unlock()
}

// rollLocked closes out any elapsed window(s) and walks the ladder. A
// window with no observations counts as under target (an idle server has
// no standing queue), so the gate decays back to Normal on its own.
func (g *Gate) rollLocked(now time.Time) {
	if g.windowEnd.IsZero() {
		g.windowEnd = now.Add(g.cfg.Window)
		return
	}
	if now.Before(g.windowEnd) {
		return
	}
	over := g.haveWait && g.minWait > g.cfg.TargetDelay
	if over {
		g.overWindows++
	} else {
		g.overWindows = 0
	}
	g.minWait, g.haveWait = 0, false
	g.windowEnd = g.windowEnd.Add(g.cfg.Window)
	if !now.Before(g.windowEnd) {
		// At least one whole window elapsed with no observations at all:
		// the server sat idle, so there is no standing queue left.
		g.overWindows = 0
		g.windowEnd = now.Add(g.cfg.Window)
	}
	next := Normal
	switch {
	case g.overWindows >= g.cfg.ShedWindows:
		next = Shed
	case g.overWindows >= 1:
		next = Brownout
	}
	g.setStateLocked(now, next)
}

func (g *Gate) setStateLocked(now time.Time, next State) {
	prev := State(atomic.LoadInt32(&g.state))
	if prev == next {
		return
	}
	atomic.StoreInt32(&g.state, int32(next))
	switch next {
	case Brownout:
		g.brownouts++
	case Shed:
		g.sheds++
		// Prime the floor bucket so shedding starts with a small burst of
		// admissions rather than a hard zero.
		g.tokens, g.tokensAt = g.cfg.FloorBurst, now
	}
	if g.onState != nil {
		g.onState(prev, next)
	}
}

// takeTokenLocked replenishes and draws one floor token.
func (g *Gate) takeTokenLocked(now time.Time) bool {
	if g.tokensAt.IsZero() {
		g.tokensAt = now
	}
	g.tokens += now.Sub(g.tokensAt).Seconds() * g.cfg.FloorRate
	g.tokensAt = now
	if g.tokens > g.cfg.FloorBurst {
		g.tokens = g.cfg.FloorBurst
	}
	if g.tokens < 1 {
		return false
	}
	g.tokens--
	return true
}

// RetryAfter reports the configured backoff hint.
func (g *Gate) RetryAfter() time.Duration { return g.cfg.RetryAfter }

// Stats snapshots the gate counters.
func (g *Gate) Stats() GateStats {
	g.mu.Lock()
	brownouts, sheds := g.brownouts, g.sheds
	g.mu.Unlock()
	return GateStats{
		State:     g.State(),
		Inflight:  atomic.LoadInt64(&g.inflight),
		Admitted:  atomic.LoadInt64(&g.admitted),
		Shed:      atomic.LoadInt64(&g.shed),
		Brownouts: brownouts,
		Sheds:     sheds,
	}
}

// BreakerState is the circuit position.
type BreakerState int32

const (
	// BreakerClosed passes traffic and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen fails fast until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets exactly one probe through; its outcome decides
	// between re-opening and closing.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("breaker(%d)", int32(s))
	}
}

// BreakerConfig parameterizes a Breaker. Zero values take the defaults.
type BreakerConfig struct {
	// Threshold is how many CONSECUTIVE failures trip Closed -> Open.
	// Default 5.
	Threshold int
	// Cooldown is how long Open fails fast before allowing the half-open
	// probe. Default 1s.
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	return c
}

// BreakerStats is a point-in-time snapshot of one Breaker.
type BreakerStats struct {
	State      BreakerState
	Trips      int64
	FastFails  int64
	Probes     int64
	Recoveries int64
}

// Breaker is one peer's circuit breaker. The rpc layer owns one per peer
// NodeID (surviving client redials, so a flapping connection cannot reset
// the failure count) and one per directory replica.
type Breaker struct {
	mu       sync.Mutex
	cfg      BreakerConfig
	state    BreakerState
	fails    int
	openedAt time.Time
	probing  bool // a half-open probe is in flight

	trips      int64
	fastFails  int64
	probes     int64
	recoveries int64

	onState func(old, next BreakerState)
}

// NewBreaker builds a Breaker. cfg zero values take the defaults.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// OnStateChange registers fn to run on every circuit transition (trip,
// half-open probe grant, recovery). Single slot — the last registration
// wins. fn runs with the breaker mutex held, so it must be fast and must
// not call back into the breaker; the rpc layer uses it to journal trips
// and recoveries.
func (b *Breaker) OnStateChange(fn func(old, next BreakerState)) {
	b.mu.Lock()
	b.onState = fn
	b.mu.Unlock()
}

// transitionLocked moves the circuit to next and fires the state hook
// (mu held).
func (b *Breaker) transitionLocked(next BreakerState) {
	if b.state == next {
		return
	}
	old := b.state
	b.state = next
	if b.onState != nil {
		b.onState(old, next)
	}
}

// Allow reports whether a call may proceed now. In HalfOpen exactly one
// caller is granted the probe; concurrent callers fail fast until the
// probe's Report lands.
func (b *Breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Sub(b.openedAt) < b.cfg.Cooldown {
			b.fastFails++
			return false
		}
		b.transitionLocked(BreakerHalfOpen)
		b.probing = true
		b.probes++
		return true
	default: // BreakerHalfOpen
		if b.probing {
			b.fastFails++
			return false
		}
		b.probing = true
		b.probes++
		return true
	}
}

// Report records the outcome of a call previously admitted by Allow.
func (b *Breaker) Report(now time.Time, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		if b.state != BreakerClosed {
			b.recoveries++
		}
		b.transitionLocked(BreakerClosed)
		b.fails = 0
		b.probing = false
		return
	}
	switch b.state {
	case BreakerHalfOpen:
		// The probe failed: back to Open for another cooldown.
		b.transitionLocked(BreakerOpen)
		b.openedAt = now
		b.probing = false
	case BreakerClosed:
		b.fails++
		if b.fails >= b.cfg.Threshold {
			b.transitionLocked(BreakerOpen)
			b.openedAt = now
			b.trips++
		}
	}
}

// State reports the circuit position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Stats snapshots the breaker counters.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		State:      b.state,
		Trips:      b.trips,
		FastFails:  b.fastFails,
		Probes:     b.probes,
		Recoveries: b.recoveries,
	}
}

// RetryAfterError is the typed rejection a shed server returns: the caller
// should back off for After before retrying. Both rpc.Client and
// dkv.DirClient surface it so load generators can separate shed traffic
// from transport failures.
type RetryAfterError struct {
	After time.Duration
}

func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("overload: shed, retry after %v", e.After)
}

// ErrExpired is returned (and sent as statusExpired on the wire) when a
// request's deadline budget ran out before the work was done.
var ErrExpired = errors.New("overload: deadline budget expired")

// ErrBreakerOpen is the fast-fail a tripped circuit returns without
// touching the network. It is wrapped retry.Permanent by the callers so
// the retry loop does not burn the remaining budget re-asking an open
// circuit.
var ErrBreakerOpen = errors.New("overload: circuit breaker open")

// IsOverload reports whether err is one of this package's typed rejections
// (shed, expired, or breaker-open) rather than a transport failure.
func IsOverload(err error) bool {
	var ra *RetryAfterError
	return errors.As(err, &ra) || errors.Is(err, ErrExpired) || errors.Is(err, ErrBreakerOpen)
}

package overload

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// clk is a tiny deterministic clock for driving the explicit-now APIs.
type clk struct{ t time.Time }

func newClk() *clk { return &clk{t: time.Unix(1000, 0)} }

func (c *clk) now() time.Time                    { return c.t }
func (c *clk) advance(d time.Duration) time.Time { c.t = c.t.Add(d); return c.t }

func TestGateInflightCap(t *testing.T) {
	c := newClk()
	g := NewGate(GateConfig{MaxInflight: 2})
	ok1, _ := g.Admit(c.now())
	ok2, _ := g.Admit(c.now())
	if !ok1 || !ok2 {
		t.Fatalf("first two admits should pass: %v %v", ok1, ok2)
	}
	ok3, after := g.Admit(c.now())
	if ok3 {
		t.Fatalf("third admit should shed at MaxInflight=2")
	}
	if after <= 0 {
		t.Fatalf("shed must carry a retry-after hint, got %v", after)
	}
	g.Done()
	if ok, _ := g.Admit(c.now()); !ok {
		t.Fatalf("admit should pass again after Done")
	}
	st := g.Stats()
	if st.Shed != 1 || st.Admitted != 3 {
		t.Fatalf("stats = %+v, want Shed=1 Admitted=3", st)
	}
}

// TestGateLadder drives the Normal -> Brownout -> Shed -> Normal ladder on
// a virtual clock: over-target standing delay escalates one window at a
// time, and clean (or idle) windows decay straight back to Normal.
func TestGateLadder(t *testing.T) {
	c := newClk()
	g := NewGate(GateConfig{
		TargetDelay: time.Millisecond,
		Window:      10 * time.Millisecond,
		ShedWindows: 3,
		FloorRate:   1, // ~0 floor so Shed visibly rejects
		FloorBurst:  1,
	})
	var transitions []State
	g.OnStateChange(func(_, next State) { transitions = append(transitions, next) })

	overWindow := func() {
		// Two observations; the MIN is over target, so the whole window is.
		g.Observe(c.now(), 5*time.Millisecond)
		g.Observe(c.now(), 3*time.Millisecond)
		c.advance(11 * time.Millisecond)
		g.Observe(c.now(), 5*time.Millisecond) // rolls the window
	}

	if g.State() != Normal {
		t.Fatalf("fresh gate should be Normal, got %v", g.State())
	}
	overWindow()
	if g.State() != Brownout {
		t.Fatalf("one over-target window should brown out, got %v", g.State())
	}
	overWindow()
	if g.State() != Brownout {
		t.Fatalf("two over-target windows stay Brownout, got %v", g.State())
	}
	overWindow()
	if g.State() != Shed {
		t.Fatalf("three over-target windows should shed, got %v", g.State())
	}

	// In Shed the floor bucket admits its burst then rejects.
	admitted, shed := 0, 0
	for i := 0; i < 10; i++ {
		if ok, _ := g.Admit(c.now()); ok {
			admitted++
			g.Done()
		} else {
			shed++
		}
	}
	if admitted == 0 || shed == 0 {
		t.Fatalf("Shed should admit the floor and reject the rest: admitted=%d shed=%d", admitted, shed)
	}

	// A clean window (min wait under target) recovers to Normal.
	g.Observe(c.now(), 0)
	c.advance(11 * time.Millisecond)
	g.Observe(c.now(), 0)
	if g.State() != Normal {
		t.Fatalf("clean window should recover to Normal, got %v", g.State())
	}

	want := []State{Brownout, Shed, Normal}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
	st := g.Stats()
	if st.Brownouts != 1 || st.Sheds != 1 {
		t.Fatalf("stats = %+v, want Brownouts=1 Sheds=1", st)
	}
}

// TestGateIdleDecay: a gate left in Brownout with no traffic must decay to
// Normal via the lazy window roll in Admit (no background goroutine).
func TestGateIdleDecay(t *testing.T) {
	c := newClk()
	g := NewGate(GateConfig{TargetDelay: time.Millisecond, Window: 10 * time.Millisecond})
	g.Observe(c.now(), 5*time.Millisecond)
	c.advance(11 * time.Millisecond)
	g.Observe(c.now(), 5*time.Millisecond)
	if g.State() != Brownout {
		t.Fatalf("setup: want Brownout, got %v", g.State())
	}
	c.advance(50 * time.Millisecond) // idle: no observations at all
	if ok, _ := g.Admit(c.now()); !ok {
		t.Fatalf("idle admit should pass")
	}
	g.Done()
	if g.State() != Normal {
		t.Fatalf("idle window should decay to Normal, got %v", g.State())
	}
}

func TestBreakerTripAndRecover(t *testing.T) {
	c := newClk()
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Second})
	for i := 0; i < 3; i++ {
		if !b.Allow(c.now()) {
			t.Fatalf("closed breaker must allow (failure %d)", i)
		}
		b.Report(c.now(), false)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("3 consecutive failures should open, got %v", b.State())
	}
	if b.Allow(c.now()) {
		t.Fatalf("open breaker must fail fast inside cooldown")
	}
	c.advance(1100 * time.Millisecond)
	if !b.Allow(c.now()) {
		t.Fatalf("cooldown elapsed: half-open must grant the probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("want HalfOpen during probe, got %v", b.State())
	}
	// Probe fails: back to Open for another full cooldown.
	b.Report(c.now(), false)
	if b.State() != BreakerOpen {
		t.Fatalf("failed probe should re-open, got %v", b.State())
	}
	c.advance(1100 * time.Millisecond)
	if !b.Allow(c.now()) {
		t.Fatalf("second probe should be granted")
	}
	b.Report(c.now(), true)
	if b.State() != BreakerClosed {
		t.Fatalf("successful probe should close, got %v", b.State())
	}
	st := b.Stats()
	if st.Trips != 1 || st.Probes != 2 || st.Recoveries != 1 {
		t.Fatalf("stats = %+v, want Trips=1 Probes=2 Recoveries=1", st)
	}
}

// TestBreakerSuccessResetsFailureCount: non-consecutive failures never trip.
func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	c := newClk()
	b := NewBreaker(BreakerConfig{Threshold: 2})
	for i := 0; i < 10; i++ {
		if !b.Allow(c.now()) {
			t.Fatalf("iteration %d: breaker tripped on non-consecutive failures", i)
		}
		b.Report(c.now(), false)
		b.Allow(c.now())
		b.Report(c.now(), true)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("want Closed, got %v", b.State())
	}
}

// TestBreakerHalfOpenSingleProbe: 16 concurrent callers hitting a breaker
// whose cooldown just elapsed must elect exactly ONE prober; the other 15
// fail fast. (The satellite's required concurrency shape.)
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	c := newClk()
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Millisecond})
	b.Allow(c.now())
	b.Report(c.now(), false) // trip
	probeAt := c.advance(2 * time.Millisecond)

	const callers = 16
	var allowed int64
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(callers)
	for i := 0; i < callers; i++ {
		go func() {
			defer done.Done()
			start.Wait()
			if b.Allow(probeAt) {
				atomic.AddInt64(&allowed, 1)
			}
		}()
	}
	start.Done()
	done.Wait()
	if allowed != 1 {
		t.Fatalf("half-open granted %d probes, want exactly 1", allowed)
	}
	st := b.Stats()
	if st.Probes != 1 || st.FastFails != callers-1 {
		t.Fatalf("stats = %+v, want Probes=1 FastFails=%d", st, callers-1)
	}
	// The elected probe succeeds; everyone flows again.
	b.Report(probeAt, true)
	if !b.Allow(probeAt) || b.State() != BreakerClosed {
		t.Fatalf("after successful probe breaker should be closed and allowing")
	}
}

func TestIsOverload(t *testing.T) {
	if !IsOverload(&RetryAfterError{After: time.Millisecond}) {
		t.Fatalf("RetryAfterError should classify as overload")
	}
	if !IsOverload(ErrExpired) || !IsOverload(ErrBreakerOpen) {
		t.Fatalf("sentinels should classify as overload")
	}
	if IsOverload(nil) {
		t.Fatalf("nil is not overload")
	}
}

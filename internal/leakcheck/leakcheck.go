// Package leakcheck is the goroutine-leak guard used by the chaos suites:
// a test snapshots the goroutine count up front and verifies, with a grace
// period for runtime bookkeeping and connection teardown, that the count
// returns to the baseline before the test ends. A resilient client that
// leaks a redial loop, or a server that loses track of a faulted
// connection, fails here even when every functional assertion passes.
package leakcheck

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// TB is the subset of testing.TB the checker needs; declared locally so
// non-test binaries importing sibling packages never link "testing".
type TB interface {
	Helper()
	Errorf(format string, args ...interface{})
	Cleanup(func())
}

// Check snapshots the current goroutine count and registers a cleanup that
// fails the test if, after waiting up to two seconds, more goroutines are
// still alive than at the snapshot. Call it first thing in the test:
//
//	func TestChaos(t *testing.T) {
//		leakcheck.Check(t)
//		...
//	}
func Check(tb TB) {
	tb.Helper()
	base := runtime.NumGoroutine()
	tb.Cleanup(func() {
		if leaked, n := wait(base, 2*time.Second); leaked {
			tb.Errorf("leakcheck: %d goroutines at exit, %d at start; stacks:\n%s",
				n, base, interestingStacks())
		}
	})
}

// wait polls until the goroutine count drops to the baseline or the grace
// period expires. Returns (leaked, finalCount).
func wait(base int, grace time.Duration) (bool, int) {
	deadline := time.Now().Add(grace)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return false, n
		}
		if time.Now().After(deadline) {
			return true, n
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// interestingStacks dumps all goroutine stacks, filtering runtime/testing
// scaffolding so the report points at the leak.
func interestingStacks() string {
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	var keep []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if strings.Contains(g, "testing.") || strings.Contains(g, "runtime.goexit") && strings.Count(g, "\n") <= 3 {
			continue
		}
		keep = append(keep, g)
	}
	if len(keep) == 0 {
		return "(only runtime/testing goroutines)"
	}
	return fmt.Sprintf("%s", strings.Join(keep, "\n\n"))
}

package sampling_test

import (
	"fmt"
	"math/rand"

	"icache/internal/dataset"
	"icache/internal/sampling"
)

// I/O-oriented importance sampling in one screen: track losses, then let
// the sampler decide — before the epoch — which subset to fetch and train.
func ExampleIISSchedule() {
	tracker, _ := sampling.NewTracker(1000, 2.3, 0.3)
	// Pretend one epoch of losses: samples 0..99 are hard, the rest easy.
	for id := 0; id < 1000; id++ {
		loss := 0.1
		if id < 100 {
			loss = 2.0
		}
		tracker.Observe(dataset.SampleID(id), loss)
	}

	rng := rand.New(rand.NewSource(1))
	sched, hlist := sampling.IISSchedule(tracker, sampling.DefaultIIS(), rng)

	hard := 0
	for _, id := range sched.Fetch {
		if id < 100 {
			hard++
		}
	}
	fmt.Printf("H-list size: %d\n", hlist.Len())
	fmt.Printf("fetches %d of 1000 samples; %d of the 100 hard ones selected\n",
		len(sched.Fetch), hard)
	fmt.Printf("hard sample 5 on H-list: %v\n", hlist.Contains(5))
	// Output:
	// H-list size: 200
	// fetches 704 of 1000 samples; 95 of the 100 hard ones selected
	// hard sample 5 on H-list: true
}

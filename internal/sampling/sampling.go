// Package sampling implements the importance-sampling machinery of the
// paper: the loss-based importance tracker ([18] in the paper — a sample's
// importance is its historical training loss), the H-list exchanged between
// client and cache server, and the three epoch samplers the evaluation
// compares:
//
//   - Uniform: every sample, random order, exactly once (the Default baseline).
//   - CIS (computing-oriented IS): every sample is still *fetched*, but only
//     an importance-biased subset is *computed* — this is what all prior IS
//     work does and why it cannot help I/O-bound training (§II-B).
//   - IIS (I/O-oriented IS, the paper's idea): the subset to train is chosen
//     *before* the epoch from historical importance, so unselected samples
//     are never fetched at all.
package sampling

import (
	"fmt"
	"math/rand"
	"sort"

	"icache/internal/dataset"
)

// Tracker maintains per-sample importance values derived from observed
// training losses. Following the loss-based algorithm the paper adopts,
// the importance value is an exponential moving average of the sample's
// loss; samples not trained in an epoch keep their stale value, exactly as
// §III-A specifies ("Otherwise, its importance value will be unchanged").
type Tracker struct {
	iv    []float64
	decay float64 // weight kept from the previous value on each observation
}

// NewTracker creates a tracker for n samples. Every sample starts at
// initIV; a high initial value means untrained samples look important, so
// they all get fetched and measured early — the behaviour loss-based IS
// needs for a sound warm-up. decay in [0,1) controls smoothing: 0 keeps
// just the latest loss.
func NewTracker(n int, initIV, decay float64) (*Tracker, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sampling: tracker size %d, want > 0", n)
	}
	if decay < 0 || decay >= 1 {
		return nil, fmt.Errorf("sampling: decay %g, want [0,1)", decay)
	}
	t := &Tracker{iv: make([]float64, n), decay: decay}
	for i := range t.iv {
		t.iv[i] = initIV
	}
	return t, nil
}

// Len reports the number of tracked samples.
func (t *Tracker) Len() int { return len(t.iv) }

// Observe folds a freshly measured loss into the sample's importance value.
func (t *Tracker) Observe(id dataset.SampleID, loss float64) {
	t.iv[id] = t.decay*t.iv[id] + (1-t.decay)*loss
}

// Value returns the current importance value of a sample.
func (t *Tracker) Value(id dataset.SampleID) float64 { return t.iv[id] }

// Values returns a copy of all importance values indexed by sample ID.
func (t *Tracker) Values() []float64 {
	return append([]float64(nil), t.iv...)
}

// Percentiles returns each sample's relative importance value (RIV): its
// percentile position in [0,1] within the whole training set, the quantity
// the multi-job module aggregates across jobs (§III-D). Ties share the rank
// of their first occurrence, and ranks are normalized by n-1 so the largest
// value maps to 1.
func (t *Tracker) Percentiles() []float64 {
	n := len(t.iv)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return t.iv[idx[a]] < t.iv[idx[b]] })
	out := make([]float64, n)
	if n == 1 {
		out[0] = 1
		return out
	}
	for rank, i := range idx {
		r := rank
		// Give equal values equal percentiles.
		if r > 0 && t.iv[i] == t.iv[idx[r-1]] {
			out[i] = out[idx[r-1]]
			continue
		}
		out[i] = float64(r) / float64(n-1)
	}
	return out
}

// Item is one H-list element: the <ID, IV> vector of §III-A.
type Item struct {
	ID dataset.SampleID
	IV float64
}

// HList records the training job's current H-samples, ordered by descending
// importance. It is what the client pushes to (and the cache manager pulls
// from) the server.
type HList struct {
	Items []Item
	set   map[dataset.SampleID]struct{}
}

// BuildHList returns the top-k samples by importance value. Ties beyond the
// cut break by ascending ID for determinism. k larger than the dataset is
// clamped.
func (t *Tracker) BuildHList(k int) *HList {
	if k < 0 {
		k = 0
	}
	if k > len(t.iv) {
		k = len(t.iv)
	}
	idx := make([]int, len(t.iv))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if t.iv[idx[a]] != t.iv[idx[b]] {
			return t.iv[idx[a]] > t.iv[idx[b]]
		}
		return idx[a] < idx[b]
	})
	h := &HList{Items: make([]Item, k), set: make(map[dataset.SampleID]struct{}, k)}
	for i := 0; i < k; i++ {
		id := dataset.SampleID(idx[i])
		h.Items[i] = Item{ID: id, IV: t.iv[idx[i]]}
		h.set[id] = struct{}{}
	}
	return h
}

// NewHList builds an H-list directly from items (used when deserializing
// from the wire).
func NewHList(items []Item) *HList {
	h := &HList{Items: append([]Item(nil), items...), set: make(map[dataset.SampleID]struct{}, len(items))}
	for _, it := range h.Items {
		h.set[it.ID] = struct{}{}
	}
	return h
}

// Contains reports whether id is an H-sample.
func (h *HList) Contains(id dataset.SampleID) bool {
	if h == nil {
		return false
	}
	_, ok := h.set[id]
	return ok
}

// Len reports the number of H-samples.
func (h *HList) Len() int {
	if h == nil {
		return 0
	}
	return len(h.Items)
}

// Schedule is one epoch's data-access plan. Fetch lists the samples the
// data loader will request, in order; Train marks which of those feed the
// GPU (CIS fetches everything but skips compute for some).
type Schedule struct {
	Fetch []dataset.SampleID
	Train []bool
}

// TrainedCount reports how many fetched samples are computed on.
func (s Schedule) TrainedCount() int {
	n := 0
	for _, t := range s.Train {
		if t {
			n++
		}
	}
	return n
}

// Batches splits the fetch order into mini-batches of size bs; the last
// batch may be short.
func (s Schedule) Batches(bs int) [][]dataset.SampleID {
	if bs <= 0 {
		panic(fmt.Sprintf("sampling: batch size %d", bs))
	}
	var out [][]dataset.SampleID
	for i := 0; i < len(s.Fetch); i += bs {
		j := i + bs
		if j > len(s.Fetch) {
			j = len(s.Fetch)
		}
		out = append(out, s.Fetch[i:j])
	}
	return out
}

// UniformSchedule is the Default baseline: a full random permutation, every
// sample trained.
func UniformSchedule(n int, rng *rand.Rand) Schedule {
	fetch := make([]dataset.SampleID, n)
	for i := range fetch {
		fetch[i] = dataset.SampleID(i)
	}
	rng.Shuffle(n, func(i, j int) { fetch[i], fetch[j] = fetch[j], fetch[i] })
	train := make([]bool, n)
	for i := range train {
		train[i] = true
	}
	return Schedule{Fetch: fetch, Train: train}
}

// CISConfig parameterizes the computing-oriented IS baseline.
type CISConfig struct {
	// ComputeFraction is the share of fetched samples actually computed.
	ComputeFraction float64
	// HFraction is the share of the dataset treated as important; important
	// samples are always computed, the rest fill the compute budget randomly.
	HFraction float64
}

// DefaultCIS matches the paper's observed ~1.3× compute reduction.
func DefaultCIS() CISConfig { return CISConfig{ComputeFraction: 0.77, HFraction: 0.2} }

// CISSchedule fetches every sample (random order) but computes only an
// importance-biased subset: the top HFraction by importance always train;
// the remaining compute budget is spread uniformly over the rest.
func CISSchedule(t *Tracker, cfg CISConfig, rng *rand.Rand) Schedule {
	n := t.Len()
	s := UniformSchedule(n, rng)
	hCount := int(cfg.HFraction * float64(n))
	h := t.BuildHList(hCount)
	budget := int(cfg.ComputeFraction*float64(n)) - hCount
	lTotal := n - hCount
	var pL float64
	if lTotal > 0 && budget > 0 {
		pL = float64(budget) / float64(lTotal)
	}
	for i, id := range s.Fetch {
		if h.Contains(id) {
			s.Train[i] = true
		} else {
			s.Train[i] = rng.Float64() < pL
		}
	}
	return s
}

// IISConfig parameterizes the paper's I/O-oriented importance sampling.
type IISConfig struct {
	// TargetFraction is the share of the dataset fetched+trained per epoch.
	// The paper's ablation reports IIS cutting I/Os by up to 31.4%, i.e. a
	// target around 0.7.
	TargetFraction float64
	// HFraction is the share of the dataset considered H-samples (sized to
	// the cache in the paper's configuration, 0.2 by default).
	HFraction float64
	// HSelectProb is the per-epoch selection probability of an H-sample.
	// Below 1 so even H-samples rotate, preserving some diversity.
	HSelectProb float64
}

// DefaultIIS returns the configuration used across the evaluation.
func DefaultIIS() IISConfig {
	return IISConfig{TargetFraction: 0.7, HFraction: 0.2, HSelectProb: 0.95}
}

// Validate reports whether the config is sane.
func (c IISConfig) Validate() error {
	switch {
	case c.TargetFraction <= 0 || c.TargetFraction > 1:
		return fmt.Errorf("sampling: TargetFraction %g, want (0,1]", c.TargetFraction)
	case c.HFraction < 0 || c.HFraction > 1:
		return fmt.Errorf("sampling: HFraction %g, want [0,1]", c.HFraction)
	case c.HSelectProb < 0 || c.HSelectProb > 1:
		return fmt.Errorf("sampling: HSelectProb %g, want [0,1]", c.HSelectProb)
	}
	return nil
}

// IISSchedule chooses the epoch's subset before it starts, from historical
// importance values: H-samples are selected with HSelectProb, and the rest
// of the TargetFraction budget is filled by uniformly selected L-samples
// (the diversity the paper's L-cache exists to serve). Selected samples are
// fetched exactly once in random order and all of them train.
func IISSchedule(t *Tracker, cfg IISConfig, rng *rand.Rand) (Schedule, *HList) {
	n := t.Len()
	hCount := int(cfg.HFraction * float64(n))
	h := t.BuildHList(hCount)

	target := int(cfg.TargetFraction * float64(n))
	expectedH := cfg.HSelectProb * float64(hCount)
	budget := float64(target) - expectedH
	lTotal := n - hCount
	var pL float64
	if lTotal > 0 && budget > 0 {
		pL = budget / float64(lTotal)
		if pL > 1 {
			pL = 1
		}
	}

	fetch := make([]dataset.SampleID, 0, target+target/8)
	for _, it := range h.Items {
		if rng.Float64() < cfg.HSelectProb {
			fetch = append(fetch, it.ID)
		}
	}
	for id := 0; id < n; id++ {
		sid := dataset.SampleID(id)
		if !h.Contains(sid) && rng.Float64() < pL {
			fetch = append(fetch, sid)
		}
	}
	rng.Shuffle(len(fetch), func(i, j int) { fetch[i], fetch[j] = fetch[j], fetch[i] })
	train := make([]bool, len(fetch))
	for i := range train {
		train[i] = true
	}
	return Schedule{Fetch: fetch, Train: train}, h
}

package sampling

import (
	"math"
	"testing"
)

func TestCriterionStrings(t *testing.T) {
	if CriterionLoss.String() != "loss" || CriterionGradUpper.String() != "grad-upper" || CriterionProxyModel.String() != "proxy-model" {
		t.Fatal("criterion strings wrong")
	}
}

func TestCriterionValidate(t *testing.T) {
	for _, c := range []Criterion{CriterionLoss, CriterionGradUpper, CriterionProxyModel} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c, err)
		}
	}
	if err := Criterion(99).Validate(); err == nil {
		t.Fatal("bogus criterion validated")
	}
}

func TestCriterionScoreMonotone(t *testing.T) {
	for _, c := range []Criterion{CriterionLoss, CriterionGradUpper, CriterionProxyModel} {
		prev := -1.0
		for l := 0.0; l <= 3; l += 0.1 {
			s := c.Score(l)
			if s < prev {
				t.Fatalf("%s: score not monotone at loss %g", c, l)
			}
			prev = s
		}
	}
}

func TestGradUpperEmphasizesHardTail(t *testing.T) {
	// The ratio grad-upper/loss must grow with the loss: harder samples get
	// proportionally more importance than under the raw-loss criterion.
	low := CriterionGradUpper.Score(0.5) / CriterionLoss.Score(0.5)
	high := CriterionGradUpper.Score(2.5) / CriterionLoss.Score(2.5)
	if high <= low {
		t.Fatalf("tail emphasis missing: ratio %g at 0.5 vs %g at 2.5", low, high)
	}
	if got, want := CriterionGradUpper.Score(2.25), 2.25*1.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Score(2.25) = %g, want %g", got, want)
	}
	if CriterionGradUpper.Score(-1) != 0 {
		t.Fatal("negative loss not clamped")
	}
}

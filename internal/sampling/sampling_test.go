package sampling

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"icache/internal/dataset"
)

func mustTracker(t *testing.T, n int, init, decay float64) *Tracker {
	t.Helper()
	tr, err := NewTracker(n, init, decay)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewTrackerValidation(t *testing.T) {
	if _, err := NewTracker(0, 1, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewTracker(10, 1, 1.0); err == nil {
		t.Error("decay=1 accepted")
	}
	if _, err := NewTracker(10, 1, -0.1); err == nil {
		t.Error("decay<0 accepted")
	}
}

func TestTrackerInitAndObserve(t *testing.T) {
	tr := mustTracker(t, 4, 3.0, 0)
	if tr.Value(2) != 3.0 {
		t.Fatalf("initial IV = %g, want 3.0", tr.Value(2))
	}
	tr.Observe(2, 0.5)
	if tr.Value(2) != 0.5 {
		t.Fatalf("decay=0: IV = %g, want latest loss 0.5", tr.Value(2))
	}
	if tr.Value(1) != 3.0 {
		t.Fatal("unobserved sample's IV changed")
	}
}

func TestTrackerEMADecay(t *testing.T) {
	tr := mustTracker(t, 1, 1.0, 0.5)
	tr.Observe(0, 0)
	if got := tr.Value(0); got != 0.5 {
		t.Fatalf("EMA after one zero-loss obs = %g, want 0.5", got)
	}
	tr.Observe(0, 0)
	if got := tr.Value(0); got != 0.25 {
		t.Fatalf("EMA after two = %g, want 0.25", got)
	}
}

func TestValuesReturnsCopy(t *testing.T) {
	tr := mustTracker(t, 3, 1.0, 0)
	vs := tr.Values()
	vs[0] = 99
	if tr.Value(0) == 99 {
		t.Fatal("Values aliases internal state")
	}
}

func TestPercentiles(t *testing.T) {
	tr := mustTracker(t, 5, 0, 0)
	for i, loss := range []float64{0.1, 0.5, 0.3, 0.9, 0.7} {
		tr.Observe(dataset.SampleID(i), loss)
	}
	p := tr.Percentiles()
	want := []float64{0, 0.5, 0.25, 1.0, 0.75}
	for i := range want {
		if math.Abs(p[i]-want[i]) > 1e-12 {
			t.Fatalf("percentile[%d] = %g, want %g (all %v)", i, p[i], want[i], p)
		}
	}
}

func TestPercentilesTiesShareRank(t *testing.T) {
	tr := mustTracker(t, 4, 0, 0)
	for i, loss := range []float64{0.5, 0.5, 0.1, 0.9} {
		tr.Observe(dataset.SampleID(i), loss)
	}
	p := tr.Percentiles()
	if p[0] != p[1] {
		t.Fatalf("equal IVs got different percentiles: %g vs %g", p[0], p[1])
	}
	if p[2] != 0 || p[3] != 1 {
		t.Fatalf("extremes wrong: %v", p)
	}
}

func TestPercentilesSingleSample(t *testing.T) {
	tr := mustTracker(t, 1, 0.5, 0)
	if p := tr.Percentiles(); p[0] != 1 {
		t.Fatalf("single-sample percentile = %g, want 1", p[0])
	}
}

func TestBuildHListTopK(t *testing.T) {
	tr := mustTracker(t, 5, 0, 0)
	for i, loss := range []float64{0.1, 0.5, 0.3, 0.9, 0.7} {
		tr.Observe(dataset.SampleID(i), loss)
	}
	h := tr.BuildHList(2)
	if h.Len() != 2 {
		t.Fatalf("Len = %d, want 2", h.Len())
	}
	if h.Items[0].ID != 3 || h.Items[1].ID != 4 {
		t.Fatalf("top-2 = %+v, want IDs 3 then 4", h.Items)
	}
	if !h.Contains(3) || h.Contains(0) {
		t.Fatal("Contains wrong")
	}
}

func TestBuildHListClamps(t *testing.T) {
	tr := mustTracker(t, 3, 1, 0)
	if h := tr.BuildHList(100); h.Len() != 3 {
		t.Fatalf("over-large k: Len = %d, want 3", h.Len())
	}
	if h := tr.BuildHList(-5); h.Len() != 0 {
		t.Fatalf("negative k: Len = %d, want 0", h.Len())
	}
}

func TestNilHListSafe(t *testing.T) {
	var h *HList
	if h.Contains(1) {
		t.Fatal("nil HList contains something")
	}
	if h.Len() != 0 {
		t.Fatal("nil HList has nonzero length")
	}
}

func TestNewHListFromItems(t *testing.T) {
	h := NewHList([]Item{{7, 0.9}, {3, 0.8}})
	if !h.Contains(7) || !h.Contains(3) || h.Contains(1) {
		t.Fatal("membership wrong")
	}
}

func TestUniformScheduleIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := UniformSchedule(1000, rng)
	if len(s.Fetch) != 1000 || s.TrainedCount() != 1000 {
		t.Fatalf("fetch=%d trained=%d, want 1000/1000", len(s.Fetch), s.TrainedCount())
	}
	seen := make(map[dataset.SampleID]bool, 1000)
	for _, id := range s.Fetch {
		if seen[id] {
			t.Fatalf("duplicate ID %d", id)
		}
		seen[id] = true
	}
	// It should actually be shuffled.
	inOrder := 0
	for i, id := range s.Fetch {
		if int(id) == i {
			inOrder++
		}
	}
	if inOrder > 100 {
		t.Fatalf("%d/1000 samples at identity position — not shuffled", inOrder)
	}
}

func TestCISScheduleFetchesAllComputesSubset(t *testing.T) {
	tr := mustTracker(t, 1000, 0, 0)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		tr.Observe(dataset.SampleID(i), rng.Float64())
	}
	cfg := DefaultCIS()
	s := CISSchedule(tr, cfg, rand.New(rand.NewSource(2)))
	if len(s.Fetch) != 1000 {
		t.Fatalf("CIS fetched %d, want all 1000", len(s.Fetch))
	}
	trained := s.TrainedCount()
	want := int(cfg.ComputeFraction * 1000)
	if trained < want-80 || trained > want+80 {
		t.Fatalf("CIS trained %d, want ≈%d", trained, want)
	}
	// Every H-sample must be trained.
	h := tr.BuildHList(int(cfg.HFraction * 1000))
	for i, id := range s.Fetch {
		if h.Contains(id) && !s.Train[i] {
			t.Fatalf("H-sample %d not trained under CIS", id)
		}
	}
}

func TestIISScheduleSelectsSubset(t *testing.T) {
	tr := mustTracker(t, 2000, 0, 0)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		tr.Observe(dataset.SampleID(i), rng.Float64())
	}
	cfg := DefaultIIS()
	s, h := IISSchedule(tr, cfg, rand.New(rand.NewSource(4)))
	if h.Len() != int(cfg.HFraction*2000) {
		t.Fatalf("H-list size %d, want %d", h.Len(), int(cfg.HFraction*2000))
	}
	want := int(cfg.TargetFraction * 2000)
	if len(s.Fetch) < want-150 || len(s.Fetch) > want+150 {
		t.Fatalf("IIS fetched %d, want ≈%d", len(s.Fetch), want)
	}
	if s.TrainedCount() != len(s.Fetch) {
		t.Fatal("IIS fetched samples it does not train")
	}
	// No duplicates: exactly-once within the epoch.
	seen := map[dataset.SampleID]bool{}
	hCount := 0
	for _, id := range s.Fetch {
		if seen[id] {
			t.Fatalf("duplicate fetch of %d", id)
		}
		seen[id] = true
		if h.Contains(id) {
			hCount++
		}
	}
	// Most H-samples selected (prob 0.95 each).
	if float64(hCount) < 0.85*float64(h.Len()) {
		t.Fatalf("only %d/%d H-samples selected", hCount, h.Len())
	}
	// And a meaningful share of L-samples for diversity.
	if lCount := len(s.Fetch) - hCount; lCount < want/4 {
		t.Fatalf("only %d L-samples selected — diversity lost", lCount)
	}
}

func TestIISConfigValidate(t *testing.T) {
	bad := []IISConfig{
		{TargetFraction: 0, HFraction: 0.2, HSelectProb: 0.9},
		{TargetFraction: 1.2, HFraction: 0.2, HSelectProb: 0.9},
		{TargetFraction: 0.7, HFraction: -0.1, HSelectProb: 0.9},
		{TargetFraction: 0.7, HFraction: 0.2, HSelectProb: 1.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
	if err := DefaultIIS().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestBatches(t *testing.T) {
	s := Schedule{Fetch: make([]dataset.SampleID, 10)}
	b := s.Batches(4)
	if len(b) != 3 || len(b[0]) != 4 || len(b[2]) != 2 {
		t.Fatalf("batches = %v", b)
	}
}

func TestBatchesBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Batches(0) did not panic")
		}
	}()
	Schedule{}.Batches(0)
}

// Property: IIS never fetches duplicates, never exceeds the dataset, and
// fetch size tracks the target across random importance distributions.
func TestIISScheduleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 500 + rng.Intn(1500)
		tr, err := NewTracker(n, 3, 0.3)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			tr.Observe(dataset.SampleID(i), rng.Float64()*3)
		}
		s, _ := IISSchedule(tr, DefaultIIS(), rng)
		seen := map[dataset.SampleID]bool{}
		for _, id := range s.Fetch {
			if id < 0 || int(id) >= n || seen[id] {
				return false
			}
			seen[id] = true
		}
		target := 0.7 * float64(n)
		return float64(len(s.Fetch)) > 0.5*target && float64(len(s.Fetch)) < 1.4*target
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: percentiles are a monotone map of importance values.
func TestPercentilesMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(200)
		tr, _ := NewTracker(n, 0, 0)
		for i := 0; i < n; i++ {
			tr.Observe(dataset.SampleID(i), rng.Float64())
		}
		p := tr.Percentiles()
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				vi, vj := tr.Value(dataset.SampleID(i)), tr.Value(dataset.SampleID(j))
				if vi < vj && p[i] >= p[j] {
					return false
				}
				if vi == vj && p[i] != p[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

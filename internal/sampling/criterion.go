package sampling

import (
	"fmt"
	"math"
)

// Criterion selects how a training observation becomes an importance value.
// The paper adopts the loss-based criterion for "simplicity and efficiency"
// and names the others as integration candidates (§VI): any criterion that
// yields a per-sample scalar slots into the same tracker, H-list, and cache
// machinery.
type Criterion int

const (
	// CriterionLoss is the paper's choice: the sample's (smoothed)
	// historical training loss.
	CriterionLoss Criterion = iota
	// CriterionGradUpper is the gradient-norm upper bound family: an
	// importance score that grows superlinearly with the loss, emphasizing
	// the hardest samples more sharply than raw loss does.
	CriterionGradUpper
	// CriterionProxyModel scores samples with a separately trained
	// lightweight model: every sample can be (re-)scored each epoch —
	// no staleness for skipped samples — at the price of estimation error.
	CriterionProxyModel
)

// String implements fmt.Stringer.
func (c Criterion) String() string {
	switch c {
	case CriterionLoss:
		return "loss"
	case CriterionGradUpper:
		return "grad-upper"
	case CriterionProxyModel:
		return "proxy-model"
	default:
		return fmt.Sprintf("Criterion(%d)", int(c))
	}
}

// Validate reports whether the criterion is known.
func (c Criterion) Validate() error {
	switch c {
	case CriterionLoss, CriterionGradUpper, CriterionProxyModel:
		return nil
	default:
		return fmt.Errorf("sampling: unknown criterion %d", int(c))
	}
}

// Score converts an observed training loss into an importance value under
// the criterion. CriterionProxyModel does not use per-step losses (its
// scores come from the proxy sweep), so it falls back to the loss value for
// samples that do get trained.
func (c Criterion) Score(loss float64) float64 {
	switch c {
	case CriterionGradUpper:
		// ∝ loss^1.5: a smooth stand-in for per-sample gradient-norm upper
		// bounds, which grow faster than the loss near the hard tail.
		if loss < 0 {
			return 0
		}
		return loss * math.Sqrt(loss)
	default:
		return loss
	}
}

package rpc

import (
	"net"
	"path/filepath"
	"testing"
	"time"

	"icache/internal/dataset"
	"icache/internal/icache"
	"icache/internal/sampling"
	"icache/internal/storage"
)

func TestCheckpointWarmRestart(t *testing.T) {
	spec := testSpec()
	path := filepath.Join(t.TempDir(), "cache.ckpt")

	// First server lifetime: warm the cache over the wire, checkpoint.
	srv1, addr1, _ := startServer(t)
	c1 := dial(t, addr1)
	var items []sampling.Item
	var ids []dataset.SampleID
	for id := dataset.SampleID(0); id < 100; id++ {
		items = append(items, sampling.Item{ID: id, IV: 3})
		ids = append(ids, id)
	}
	if err := c1.UpdateImportance(items); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.GetBatch(ids); err != nil {
		t.Fatal(err)
	}
	if err := srv1.SaveCheckpointFile(path); err != nil {
		t.Fatal(err)
	}

	// Second lifetime: fresh server, restore with rehydration; the first
	// client batch must be served without backend reads.
	back, err := storage.NewBackend(spec, storage.OrangeFS())
	if err != nil {
		t.Fatal(err)
	}
	cacheSrv, err := icache.NewServer(back, icache.DefaultConfig(spec.TotalBytes()/5), sampling.DefaultIIS(), 9)
	if err != nil {
		t.Fatal(err)
	}
	source, err := storage.NewDataSource(spec)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(cacheSrv, source)
	srv2.Logf = nil
	loaded, err := srv2.LoadCheckpointFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded {
		t.Fatal("checkpoint file not loaded")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve(ln)
	defer srv2.Close()

	c2, err := Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	rehydrated := source.Reads()
	samples, err := c2.GetBatch(ids)
	if err != nil {
		t.Fatal(err)
	}
	if delta := source.Reads() - rehydrated; delta != 0 {
		t.Fatalf("warm-restarted server hit the backend %d times", delta)
	}
	for i, s := range samples {
		if s.ID != ids[i] {
			t.Fatalf("substitution on a resident H-sample %d", ids[i])
		}
		if err := spec.VerifyPayload(s.ID, s.Payload); err != nil {
			t.Fatalf("rehydrated payload corrupt: %v", err)
		}
	}
}

func TestLoadCheckpointFileMissingIsFirstBoot(t *testing.T) {
	srv, _, _ := startServer(t)
	loaded, err := srv.LoadCheckpointFile(filepath.Join(t.TempDir(), "absent.ckpt"), false)
	if err != nil {
		t.Fatal(err)
	}
	if loaded {
		t.Fatal("missing file reported as loaded")
	}
}

package rpc

import (
	"sync"

	"icache/internal/dataset"
)

// payloadShards is the stripe count of the payload store. 64 shards keep
// the probability of two of the (typically ≤ a few dozen) concurrent
// request goroutines colliding on one stripe low, while the fixed-size
// array keeps shard lookup a mask-and-index with no pointer chase. Must be
// a power of two.
const payloadShards = 64

// payloadShard is one lock stripe: an RWMutex so concurrent readers (the
// common case — byte serving of resident samples) never contend with each
// other, plus the shard's slice of the sample→bytes map.
type payloadShard struct {
	mu sync.RWMutex
	m  map[dataset.SampleID][]byte
}

// payloadStore is the sharded byte store backing the serving path. It
// mirrors the policy engine's residency decisions: an entry exists only
// for samples the icache.Server admitted (and, in distributed mode, whose
// directory claim this node won).
//
// Lock ordering: store shard locks are LEAF locks. The policy lock
// (Server.policyMu) may be held while taking a shard lock — the eviction
// observer and the post-claim admit path do exactly that — but a shard
// lock must NEVER be held while acquiring policyMu, performing network
// I/O, or calling into the policy engine. Every method here takes and
// releases one shard lock internally, so callers cannot get this wrong
// through the store API.
type payloadStore struct {
	shards [payloadShards]payloadShard
}

func newPayloadStore() *payloadStore {
	p := &payloadStore{}
	for i := range p.shards {
		p.shards[i].m = make(map[dataset.SampleID][]byte)
	}
	return p
}

// shard maps a sample ID onto its stripe. Sample IDs are dense small
// integers, and adjacent IDs are frequently requested together (batches),
// so a Fibonacci hash spreads consecutive IDs across stripes instead of
// clustering them.
func (p *payloadStore) shard(id dataset.SampleID) *payloadShard {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return &p.shards[h>>(64-6)] // top 6 bits: payloadShards == 64
}

// get returns the stored bytes for id, if present. Callers must treat the
// returned slice as immutable.
func (p *payloadStore) get(id dataset.SampleID) ([]byte, bool) {
	sh := p.shard(id)
	sh.mu.RLock()
	b, ok := sh.m[id]
	sh.mu.RUnlock()
	return b, ok
}

// put stores bytes for id.
func (p *payloadStore) put(id dataset.SampleID, b []byte) {
	sh := p.shard(id)
	sh.mu.Lock()
	sh.m[id] = b
	sh.mu.Unlock()
}

// delete removes id's bytes (eviction, lost ownership).
func (p *payloadStore) delete(id dataset.SampleID) {
	sh := p.shard(id)
	sh.mu.Lock()
	delete(sh.m, id)
	sh.mu.Unlock()
}

// len reports the total number of stored payloads.
func (p *payloadStore) len() int {
	n := 0
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// ids snapshots the stored sample IDs (tests and diagnostics; not a
// consistent point-in-time snapshot across shards).
func (p *payloadStore) ids() []dataset.SampleID {
	var out []dataset.SampleID
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.RLock()
		for id := range sh.m {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	return out
}

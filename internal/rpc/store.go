package rpc

import (
	"sync"
	"sync/atomic"

	"icache/internal/dataset"
)

// The payload store is a sharded, reference-counted slab arena. Payloads
// of cache-resident samples are packed into fixed-size slabs (one of three
// size classes) instead of living as individual heap allocations; the
// serving path pins a slab with an atomic refcount for the duration of a
// vectored response write, so eviction can run concurrently with reads and
// a slab's memory is recycled only after the last reader drains. The result
// is a hit path with no payload copy and no per-request allocation, and an
// eviction path that never frees memory out from under an in-flight writev.
//
// Refcount protocol (the owner-reference pattern):
//
//   - A slab is born with refs == 1: the store's own reference, held for as
//     long as the slab can still receive entries or holds live ones.
//   - A reader pins (+1) under the shard read lock before using the slab's
//     bytes and unpins (−1) when the response write completes. Holding the
//     shard read lock while an entry is still in the map guarantees the
//     owner reference is held, so a pin can never resurrect a dead slab.
//   - When a sealed slab's live-entry count drops to zero (eviction,
//     overwrite, lost ownership), the store drops its owner reference.
//   - Whoever moves refs to 0 recycles the slab. Exactly one goroutine
//     observes the transition, so recycling is single-shot by construction.
//
// Two admission flavors exist because payload lifetimes differ:
//
//   - putCopy copies the payload into an arena slab. Only bytes whose
//     lifetime the store fully controls may enter the arena (checkpoint
//     rehydration, tests): arena slabs are recycled, and any outstanding
//     alias would read recycled memory.
//   - adopt takes ownership of a caller-allocated slice with zero copies,
//     wrapping it as a dedicated slab that is never recycled — when its
//     refs drain the bytes simply become garbage for the GC. The fetch and
//     prefetch paths use adopt, because their payloads also escape to
//     singleflight waiters as plain slices with unbounded lifetime.
//
// Lock ordering: shard locks remain LEAF locks with respect to
// Server.policyMu (the policy lock may be held while calling any method
// here, never the reverse). freeMu (the slab freelist) is a leaf of
// everything including shard locks: unref may run with or without a shard
// lock held, and freeMu protects only the freelist push/pop.
const payloadShards = 64

// Slab size classes. A payload is placed in the smallest class whose
// per-payload cap admits it; anything larger than the top cap is adopted as
// a dedicated slab (classDedicated). Caps are well below slab sizes so a
// slab amortizes across many payloads.
const (
	numClasses     = 3
	classDedicated = -1
)

var (
	classSlabBytes  = [numClasses]int{64 << 10, 256 << 10, 1 << 20}
	classMaxPayload = [numClasses]int{2 << 10, 16 << 10, 128 << 10}
)

// maxFreeSlabs bounds the per-class freelist; beyond it, recycled slabs are
// released to the GC instead of retained.
const maxFreeSlabs = 8

// slab is one arena block (or one adopted payload). refs is touched only
// atomically; used, live and sealed are guarded by the owning shard's
// mutex. Adopted slabs (class == classDedicated) are never recycled.
type slab struct {
	buf    []byte
	refs   int32
	used   int
	live   int
	sealed bool
	class  int
}

// pin takes a reader reference. Callers must guarantee the slab is still
// owner-referenced (entry present under the shard lock).
func (sl *slab) pin() { atomic.AddInt32(&sl.refs, 1) }

// payloadEntry locates one payload inside its slab.
type payloadEntry struct {
	sl     *slab
	off, n int32
}

type payloadShard struct {
	mu   sync.RWMutex
	m    map[dataset.SampleID]payloadEntry
	open [numClasses]*slab // partially filled slabs accepting new entries
}

type payloadStore struct {
	shards [payloadShards]payloadShard

	freeMu sync.Mutex
	free   [numClasses][][]byte

	// Lifecycle counters and byte gauges (atomics).
	slabAllocs   int64 // arena slabs carved from the heap
	slabRecycles int64 // arena slabs returned to the freelist or GC
	slabAdopts   int64 // dedicated slabs adopted without a copy
	slabFrees    int64 // dedicated slabs released after their refs drained
	slabBytes    int64 // gauge: bytes held in arena slabs (incl. freelist)
	liveBytes    int64 // gauge: bytes of live payload entries
	pins         int64 // counter: reader pins taken
}

func newPayloadStore() *payloadStore {
	p := &payloadStore{}
	for i := range p.shards {
		p.shards[i].m = make(map[dataset.SampleID]payloadEntry)
	}
	return p
}

// shard maps a sample ID onto its stripe. Sample IDs are dense small
// integers, and adjacent IDs are frequently requested together (batches),
// so a Fibonacci hash spreads consecutive IDs across stripes instead of
// clustering them.
func (p *payloadStore) shard(id dataset.SampleID) *payloadShard {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return &p.shards[h>>(64-6)] // top 6 bits: payloadShards == 64
}

// classFor returns the arena class for a payload size, or classDedicated.
func classFor(n int) int {
	for c := 0; c < numClasses; c++ {
		if n <= classMaxPayload[c] {
			return c
		}
	}
	return classDedicated
}

// newSlab produces an empty arena slab of class c, reusing a freelisted
// buffer when one is available.
func (p *payloadStore) newSlab(c int) *slab {
	var buf []byte
	p.freeMu.Lock()
	if n := len(p.free[c]); n > 0 {
		buf = p.free[c][n-1]
		p.free[c][n-1] = nil
		p.free[c] = p.free[c][:n-1]
	}
	p.freeMu.Unlock()
	if buf == nil {
		buf = make([]byte, classSlabBytes[c])
		atomic.AddInt64(&p.slabAllocs, 1)
		atomic.AddInt64(&p.slabBytes, int64(len(buf)))
	}
	return &slab{buf: buf, refs: 1, class: c}
}

// unref drops one reference; the goroutine that moves refs to 0 recycles
// the slab. Safe to call with or without shard locks held (freeMu is a leaf
// of everything).
func (p *payloadStore) unref(sl *slab) {
	if atomic.AddInt32(&sl.refs, -1) != 0 {
		return
	}
	if sl.class == classDedicated {
		atomic.AddInt64(&p.slabFrees, 1)
		return // GC reclaims the adopted bytes
	}
	atomic.AddInt64(&p.slabRecycles, 1)
	buf := sl.buf
	sl.buf = nil
	p.freeMu.Lock()
	if len(p.free[sl.class]) < maxFreeSlabs {
		p.free[sl.class] = append(p.free[sl.class], buf)
		p.freeMu.Unlock()
		return
	}
	p.freeMu.Unlock()
	atomic.AddInt64(&p.slabBytes, -int64(len(buf)))
}

// dropEntryLocked removes an entry's contribution to its slab and drops the
// owner reference once a sealed slab has no live entries. Caller holds the
// shard write lock.
func (p *payloadStore) dropEntryLocked(e payloadEntry) {
	atomic.AddInt64(&p.liveBytes, -int64(e.n))
	if e.sl == nil {
		return // zero-length payload, no slab
	}
	e.sl.live--
	if e.sl.sealed && e.sl.live == 0 {
		p.unref(e.sl)
	}
}

// putCopy admits a payload by copying it into an arena slab (or adopting it
// when it exceeds the top class cap). ONLY for payloads whose bytes do not
// escape the store: arena memory is recycled, so outside aliases are
// forbidden. Fetch-path payloads must use adopt.
func (p *payloadStore) putCopy(id dataset.SampleID, b []byte) {
	c := classFor(len(b))
	if c == classDedicated {
		p.adopt(id, append([]byte(nil), b...))
		return
	}
	sh := p.shard(id)
	sh.mu.Lock()
	if old, ok := sh.m[id]; ok {
		p.dropEntryLocked(old)
	}
	if len(b) == 0 {
		sh.m[id] = payloadEntry{}
		sh.mu.Unlock()
		return
	}
	sl := sh.open[c]
	if sl == nil || len(sl.buf)-sl.used < len(b) {
		if sl != nil {
			// Seal the full slab; it dies when its last entry goes.
			sl.sealed = true
			if sl.live == 0 {
				p.unref(sl)
			}
		}
		sl = p.newSlab(c)
		sh.open[c] = sl
	}
	off := sl.used
	copy(sl.buf[off:], b)
	sl.used += len(b)
	sl.live++
	sh.m[id] = payloadEntry{sl: sl, off: int32(off), n: int32(len(b))}
	atomic.AddInt64(&p.liveBytes, int64(len(b)))
	sh.mu.Unlock()
}

// adopt admits a caller-allocated payload with zero copies: the slice
// becomes a dedicated, never-recycled slab. The caller must not mutate b
// afterwards; outside aliases (singleflight waiters, prefetch buffers) stay
// valid forever because dedicated slabs are handed to the GC, not reused.
func (p *payloadStore) adopt(id dataset.SampleID, b []byte) {
	sh := p.shard(id)
	sh.mu.Lock()
	if old, ok := sh.m[id]; ok {
		p.dropEntryLocked(old)
	}
	if len(b) == 0 {
		sh.m[id] = payloadEntry{}
		sh.mu.Unlock()
		return
	}
	sl := &slab{buf: b, refs: 1, class: classDedicated, used: len(b), live: 1, sealed: true}
	sh.m[id] = payloadEntry{sl: sl, off: 0, n: int32(len(b))}
	atomic.AddInt64(&p.slabAdopts, 1)
	atomic.AddInt64(&p.liveBytes, int64(len(b)))
	sh.mu.Unlock()
}

// getPinned returns the payload bytes for id with the backing slab pinned.
// The caller MUST call unref(sl) after the bytes are no longer referenced
// (for the serving path: after the vectored write returns). sl is nil for
// zero-length payloads — no pin is held and no release is needed.
func (p *payloadStore) getPinned(id dataset.SampleID) (b []byte, sl *slab, ok bool) {
	sh := p.shard(id)
	sh.mu.RLock()
	e, ok := sh.m[id]
	if !ok {
		sh.mu.RUnlock()
		return nil, nil, false
	}
	if e.sl == nil {
		sh.mu.RUnlock()
		return nil, nil, true
	}
	e.sl.pin()
	sh.mu.RUnlock()
	atomic.AddInt64(&p.pins, 1)
	return e.sl.buf[e.off : int64(e.off)+int64(e.n) : int64(e.off)+int64(e.n)], e.sl, true
}

// getShared returns payload bytes that are safe to hold indefinitely
// without a pin: adopted slabs are aliased directly (they are never
// recycled), arena entries are copied out. Used where the bytes escape to
// consumers with unbounded lifetime (singleflight waiters, peer serving
// through the copy path, checkpointing).
func (p *payloadStore) getShared(id dataset.SampleID) ([]byte, bool) {
	sh := p.shard(id)
	sh.mu.RLock()
	e, ok := sh.m[id]
	if !ok {
		sh.mu.RUnlock()
		return nil, false
	}
	if e.sl == nil {
		sh.mu.RUnlock()
		return nil, true
	}
	if e.sl.class == classDedicated {
		b := e.sl.buf[e.off : int64(e.off)+int64(e.n) : int64(e.off)+int64(e.n)]
		sh.mu.RUnlock()
		return b, true
	}
	out := make([]byte, e.n)
	copy(out, e.sl.buf[e.off:int64(e.off)+int64(e.n)])
	sh.mu.RUnlock()
	return out, true
}

// get is getShared under its historical name (tests, non-hot-path callers).
func (p *payloadStore) get(id dataset.SampleID) ([]byte, bool) {
	return p.getShared(id)
}

// has reports presence without touching payload bytes or refcounts.
func (p *payloadStore) has(id dataset.SampleID) bool {
	sh := p.shard(id)
	sh.mu.RLock()
	_, ok := sh.m[id]
	sh.mu.RUnlock()
	return ok
}

// put admits a payload on the fetch path: zero-copy adoption. Retained
// under the old name because every existing call site admits bytes that
// also escape via singleflight.
func (p *payloadStore) put(id dataset.SampleID, b []byte) {
	p.adopt(id, b)
}

// delete removes id's payload (eviction, lost ownership). The backing slab
// is recycled once sealed, empty, and drained of readers.
func (p *payloadStore) delete(id dataset.SampleID) {
	sh := p.shard(id)
	sh.mu.Lock()
	if e, ok := sh.m[id]; ok {
		delete(sh.m, id)
		p.dropEntryLocked(e)
	}
	sh.mu.Unlock()
}

// len reports the total number of stored payloads.
func (p *payloadStore) len() int {
	n := 0
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// slabStatsSnapshot aggregates the arena's lifecycle counters and byte
// gauges for the metrics surface.
type slabStatsSnapshot struct {
	allocs, recycled, adopted, freed int64
	slabBytes, liveBytes, pins       int64
}

func (p *payloadStore) slabStats() slabStatsSnapshot {
	return slabStatsSnapshot{
		allocs:    atomic.LoadInt64(&p.slabAllocs),
		recycled:  atomic.LoadInt64(&p.slabRecycles),
		adopted:   atomic.LoadInt64(&p.slabAdopts),
		freed:     atomic.LoadInt64(&p.slabFrees),
		slabBytes: atomic.LoadInt64(&p.slabBytes),
		liveBytes: atomic.LoadInt64(&p.liveBytes),
		pins:      atomic.LoadInt64(&p.pins),
	}
}

// ids snapshots the stored sample IDs (tests and diagnostics; not a
// consistent point-in-time snapshot across shards).
func (p *payloadStore) ids() []dataset.SampleID {
	var out []dataset.SampleID
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.RLock()
		for id := range sh.m {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	return out
}

package rpc

// This file is the multiplexed client transport of the batched remote data
// plane: instead of one serialized request/response exchange at a time per
// connection (PR-2's Client held its mutex across the whole network round
// trip — head-of-line blocking once the local serving path went
// concurrent), a mux-capable client tags every request frame with a u32
// request ID and splits the connection into
//
//   - a writer path: any request goroutine may send, serialized only for
//     the duration of one frame write (wmu), and
//   - a demux reader: ONE background goroutine owns every read on the
//     connection, matches response frames to waiting callers through the
//     pending map, and delivers each result over a buffered channel.
//
// N goroutines can therefore have N frames in flight on one TCP connection;
// the server (see servemux.go) dispatches them concurrently and writes
// responses back in completion order.
//
// # Negotiation
//
// Whether a connection speaks mux framing is decided by a capability
// handshake piggybacked on opPing (see protocol.go): the client appends its
// capability word to the ping request; a mux-capable server echoes its own
// after statusOK, a legacy server ignores the extra bytes and answers with
// the bare status byte. No capMux in the reply means the client stays on
// the classic one-frame-at-a-time transport — mixed-version clusters keep
// working, they just don't pipeline. The handshake re-runs on every
// (re)dial, so a peer that restarts into an older or newer binary is
// re-probed.
//
// # Channel discipline (lock ordering appendix)
//
// muxSession.mu (pending map) and muxSession.wmu (frame writes) are both
// leaf locks: neither is ever held across network I/O of the OTHER path —
// wmu is held across exactly one WriteFrame, mu across map access only.
// The demux reader never takes wmu; writers never read. Result channels
// are buffered (capacity 1) so the reader can always deliver without
// blocking, even if the caller already gave up; a failed session closes
// every pending channel's delivery with the session error, so no caller
// can wait on a dead connection.

import (
	"fmt"
	"net"
	"sync"
	"time"

	"icache/internal/wire"
)

// muxResult is one demuxed response (or the session-level failure). owner,
// when non-nil, is the pooled buffer backing resp: a caller that can prove
// the response is not retained (the borrowed-read API) recycles it via
// wire.PutBuffer; callers that hand response bytes out by reference simply
// drop it, which degrades to today's fresh-allocation-per-frame behavior.
type muxResult struct {
	resp  []byte
	owner *wire.Buffer
	err   error
}

// muxChanPool recycles the capacity-1 result channels. A channel is only
// recycled on paths that RECEIVED from it (after delivery nothing can be
// sent again: the pending entry is gone); a channel abandoned by forget may
// still receive a racing delivery, so it is dropped, never pooled.
var muxChanPool = sync.Pool{New: func() interface{} { return make(chan muxResult, 1) }}

// muxSession is one multiplexed connection generation. A broken session is
// never repaired: the owning Client discards it and dials a fresh one (the
// generation-based redial in client.go), so every field except the pending
// map is immutable after construction.
type muxSession struct {
	conn net.Conn

	// wmu serializes frame writes (the "writer path"). Held across exactly
	// one WriteFrame, never across a read.
	wmu sync.Mutex

	// mu guards pending/nextID/err (map access only, never held across I/O).
	mu      sync.Mutex
	pending map[uint32]chan muxResult
	nextID  uint32
	err     error

	// done closes when the demux reader exits (leak hygiene: Close waits).
	done chan struct{}

	// inflight bounds concurrently outstanding requests on this session
	// (nil = unbounded). Acquired before a request ID is allocated.
	inflight chan struct{}
}

// newMuxSession starts the demux reader on conn. inflightCap <= 0 means
// unbounded.
func newMuxSession(conn net.Conn, inflightCap int) *muxSession {
	m := &muxSession{
		conn:    conn,
		pending: make(map[uint32]chan muxResult),
		done:    make(chan struct{}),
	}
	if inflightCap > 0 {
		m.inflight = make(chan struct{}, inflightCap)
	}
	go m.readLoop()
	return m
}

// do sends one request frame and blocks until the demux reader delivers its
// response (or the session dies). Safe for unbounded concurrent use. The
// response is handed out by reference, so its pooled backing buffer is
// dropped rather than recycled.
func (m *muxSession) do(req []byte) ([]byte, error) {
	resp, _, err := m.doOwned(req, time.Time{})
	return resp, err
}

// doOwned is do, additionally returning the pooled buffer that backs the
// response (nil when the read path had to allocate outside the pool). The
// caller recycles it with wire.PutBuffer once — and only once — it is done
// with every byte of resp.
//
// A non-zero deadline bounds the wait for this ONE call without poisoning
// the shared connection: on expiry the request ID is forgotten (a racing
// late delivery is dropped with the abandoned channel) and the session
// stays healthy for its other callers — unlike a conn.SetDeadline, which
// would fail every pipelined request on the connection.
func (m *muxSession) doOwned(req []byte, deadline time.Time) ([]byte, *wire.Buffer, error) {
	if m.inflight != nil {
		m.inflight <- struct{}{}
		defer func() { <-m.inflight }()
	}
	ch := muxChanPool.Get().(chan muxResult)
	m.mu.Lock()
	if m.err != nil {
		err := m.err
		m.mu.Unlock()
		muxChanPool.Put(ch)
		return nil, nil, err
	}
	id := m.nextID
	m.nextID++
	m.pending[id] = ch
	m.mu.Unlock()

	e := wire.GetBuffer()
	e.U8(opMuxReq)
	e.U32(id)
	e.B = append(e.B, req...)
	m.wmu.Lock()
	err := wire.WriteFrame(m.conn, e.B)
	m.wmu.Unlock()
	wire.PutBuffer(e)
	if err != nil {
		m.forget(id)
		return nil, nil, fmt.Errorf("rpc: mux send: %w", err)
	}
	if !deadline.IsZero() {
		timer := time.NewTimer(time.Until(deadline))
		select {
		case res := <-ch:
			timer.Stop()
			muxChanPool.Put(ch)
			return res.resp, res.owner, res.err
		case <-timer.C:
			// The reader may still deliver into the (buffered) channel; the
			// abandoned channel is dropped, never pooled (see muxChanPool).
			m.forget(id)
			return nil, nil, fmt.Errorf("rpc: mux call: %w", errCallTimeout)
		}
	}
	res := <-ch
	// Delivery is exactly-once (the pending entry was removed before the
	// send), so after a receive the drained channel is safe to reuse.
	muxChanPool.Put(ch)
	return res.resp, res.owner, res.err
}

// forget retires a request ID whose frame never made it out. The reader may
// have raced a delivery into the (buffered) channel; that result is simply
// dropped with the channel.
func (m *muxSession) forget(id uint32) {
	m.mu.Lock()
	delete(m.pending, id)
	m.mu.Unlock()
}

// readLoop is the demux reader: the only goroutine that ever reads the
// connection. It exits on the first transport or protocol error, failing
// every pending caller.
func (m *muxSession) readLoop() {
	defer close(m.done)
	for {
		// Read each frame into a pooled buffer: the steady-state hot path
		// (borrowed reads) returns it after decoding, so the demux reader
		// stops being a large-allocation-per-response source. Callers that
		// retain response bytes simply never recycle their buffer and the
		// pool re-allocates — correctness never depends on the recycle.
		e := wire.GetBuffer()
		frame, err := wire.ReadFrameInto(m.conn, e.B[:cap(e.B)])
		if err != nil {
			m.fail(fmt.Errorf("rpc: mux receive: %w", err))
			return
		}
		e.B = frame
		if len(frame) < muxHeaderLen || frame[0] != opMuxReq {
			m.fail(fmt.Errorf("rpc: mux: malformed response frame (%d bytes)", len(frame)))
			return
		}
		d := wire.NewReader(frame)
		d.U8() // opMuxReq
		id := d.U32()
		m.mu.Lock()
		ch := m.pending[id]
		delete(m.pending, id)
		m.mu.Unlock()
		if ch != nil {
			ch <- muxResult{resp: frame[muxHeaderLen:], owner: e}
		}
		// An unknown ID is a response to a request we already forgot
		// (write raced the failure path); drop it and keep reading.
	}
}

// fail marks the session dead, delivers err to every pending caller, and
// closes the connection so the writer path errors fast too.
func (m *muxSession) fail(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	}
	pend := m.pending
	m.pending = make(map[uint32]chan muxResult)
	m.mu.Unlock()
	for _, ch := range pend {
		ch <- muxResult{err: err}
	}
	m.conn.Close()
}

// broken reports whether the session has failed.
func (m *muxSession) broken() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err != nil
}

// close tears the session down (idempotent) and waits for the demux reader
// to exit, so Close leaves no goroutine behind.
func (m *muxSession) close() {
	m.conn.Close()
	<-m.done
}

// negotiate runs the capability handshake on a fresh connection: one
// serial ping exchange carrying the client's capability word. It reports
// the server's capabilities (0 from a legacy server, whose bare statusOK
// reply carries no capability word). The deadline bounds the exchange so a
// black-holed server cannot hang Dial forever.
func negotiate(conn net.Conn, timeout time.Duration) (uint32, error) {
	if timeout > 0 {
		conn.SetDeadline(time.Now().Add(timeout))
		defer conn.SetDeadline(time.Time{})
	}
	var e buffer
	e.u8(opPing)
	e.u32(capMux)
	if err := writeFrame(conn, e.payload()); err != nil {
		return 0, fmt.Errorf("rpc: handshake send: %w", err)
	}
	resp, err := readFrame(conn)
	if err != nil {
		return 0, fmt.Errorf("rpc: handshake receive: %w", err)
	}
	d := newReader(resp)
	if status := d.u8(); status != statusOK {
		return 0, fmt.Errorf("rpc: handshake status %d", status)
	}
	if len(resp) < 5 {
		return 0, nil // legacy server: bare status byte, no capabilities
	}
	caps := d.u32()
	if d.err() != nil {
		return 0, nil
	}
	return caps, nil
}

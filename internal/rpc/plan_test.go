package rpc

// Tests for the clairvoyant prefetch planner: the demand-promotion pin (a
// planned entry overtaken by a foreground request must not cost a second
// backend read), the prefetch-outcome conservation identity with the
// planner on across epoch boundaries, and the chaos path where a plan's
// future owner dies mid-plan and the next residency sweep re-routes
// around it.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"icache/internal/dataset"
	"icache/internal/icache"
	"icache/internal/leakcheck"
	"icache/internal/sampling"
	"icache/internal/storage"
)

// startPlanTestServer boots an unstarted planning server tuned so the
// clairvoyant planner is the only prefetch source: all-H policy (L-cache
// off, so the reactive loader never enqueues), the given worker count, and
// the planner installed before Serve.
func startPlanTestServer(t *testing.T, src ByteSource, workers int, cfg PlanConfig) (*Server, string) {
	t.Helper()
	spec := testSpec()
	back, err := storage.NewBackend(spec, storage.OrangeFS())
	if err != nil {
		t.Fatal(err)
	}
	ccfg := icache.DefaultConfig(spec.TotalBytes() / 5)
	ccfg.EnableLCache = false
	if workers >= 0 {
		ccfg.PrefetchWorkers = workers
	}
	cacheSrv, err := icache.NewServer(back, ccfg, sampling.DefaultIIS(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if src == nil {
		source, err := storage.NewDataSource(spec)
		if err != nil {
			t.Fatal(err)
		}
		src = source
	}
	srv := NewServer(cacheSrv, src)
	srv.Logf = nil
	srv.SetClairvoyant(cfg)
	if srv.plan == nil {
		t.Fatal("SetClairvoyant did not install a planner")
	}
	return srv, serveOn(t, srv)
}

// waitPlanSettled blocks until the planner has nothing installed, queued or
// in flight AND the prefetch pool has resolved every entry it accepted —
// the state in which a subsequent epoch boundary observes an exactly
// balanced ledger.
func waitPlanSettled(t *testing.T, srv *Server) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		p := srv.plan
		p.mu.Lock()
		idle := p.raw == nil && !p.busy && len(p.queue) == 0
		p.mu.Unlock()
		if idle {
			sv := srv.ServingStats()
			if srv.prefetch.depth() == 0 && sv.PrefetchQueued == sv.PrefetchCompleted+sv.PrefetchFailed {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("plan never settled: %+v, serving %+v", srv.PlanStats(), srv.ServingStats())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// gatedSource counts backend fetches per sample and blocks the fetch of one
// designated sample until released, so a test can hold the (single) prefetch
// worker mid-fetch with the rest of the plan still queued behind it.
type gatedSource struct {
	inner   ByteSource
	gate    dataset.SampleID
	entered chan struct{} // closed when the gated fetch begins
	release chan struct{} // the gated fetch blocks until this closes
	once    sync.Once

	mu     sync.Mutex
	counts map[dataset.SampleID]int
}

func (g *gatedSource) Spec() dataset.Spec { return g.inner.Spec() }

func (g *gatedSource) Fetch(id dataset.SampleID) ([]byte, error) {
	g.mu.Lock()
	g.counts[id]++
	g.mu.Unlock()
	if id == g.gate {
		g.once.Do(func() { close(g.entered) })
		<-g.release
	}
	return g.inner.Fetch(id)
}

func (g *gatedSource) count(id dataset.SampleID) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.counts[id]
}

// TestPlanPromotionNoDoubleFetch pins the promotion contract: a demand
// fetch that overtakes a queued-but-unstarted planned prefetch becomes THE
// backend read for that sample — the worker's later turn skips the
// cancelled entry entirely, so the backend sees at most one fetch per
// unique miss, and the pending token resolves late (the plan existed, the
// foreground beat it).
func TestPlanPromotionNoDoubleFetch(t *testing.T) {
	defer leakcheck.Check(t)
	const plug, target = dataset.SampleID(3), dataset.SampleID(7)
	inner, err := storage.NewDataSource(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	g := &gatedSource{
		inner:   inner,
		gate:    plug,
		entered: make(chan struct{}),
		release: make(chan struct{}),
		counts:  make(map[dataset.SampleID]int),
	}
	// One worker: while it is held inside plug's fetch, target's planned
	// entry must sit queued and unstarted.
	srv, addr := startPlanTestServer(t, g, 1, PlanConfig{})
	var relOnce sync.Once
	release := func() { relOnce.Do(func() { close(g.release) }) }
	t.Cleanup(release) // never leave the worker blocked on a failed test

	cl := dial(t, addr)
	items := []sampling.Item{{ID: plug, IV: 10}, {ID: target, IV: 9}}
	if err := cl.UpdateImportance(items); err != nil {
		t.Fatal(err)
	}
	if err := cl.BeginEpochPlan(1, []dataset.SampleID{plug, target}); err != nil {
		t.Fatal(err)
	}

	select {
	case <-g.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("planned prefetch of the gate sample never reached the backend")
	}
	// Wait until target's entry is queued behind the blocked worker.
	deadline := time.Now().Add(10 * time.Second)
	for srv.ServingStats().PrefetchQueued < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("second plan entry never queued: %+v", srv.ServingStats())
		}
		time.Sleep(time.Millisecond)
	}

	// Demand-fetch the queued-but-unstarted sample: this promotes the plan
	// entry (cancelling its worker turn) and pays the one backend read.
	samples, err := cl.GetBatch([]dataset.SampleID{target})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 || samples[0].ID != target {
		t.Fatalf("demand fetch of %d returned %v", target, samples)
	}
	if got := g.count(target); got != 1 {
		t.Fatalf("backend fetched sample %d %d times during the demand read; want exactly 1", target, got)
	}

	release()
	// The worker finishes plug, then dequeues target's cancelled entry and
	// must skip it without touching the backend.
	deadline = time.Now().Add(10 * time.Second)
	for {
		sv := srv.ServingStats()
		if sv.PrefetchCompleted == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never resolved both entries: %+v", sv)
		}
		time.Sleep(time.Millisecond)
	}
	if got := g.count(target); got != 1 {
		t.Fatalf("backend fetched sample %d %d times; the cancelled plan entry re-fetched it", target, got)
	}
	if got := g.count(plug); got != 1 {
		t.Fatalf("backend fetched sample %d %d times; want exactly 1", plug, got)
	}

	// Settle and pin the ledger: target resolved late (promoted), plug's
	// token sweeps as wasted, nothing double-counted.
	if err := cl.BeginEpoch(2); err != nil {
		t.Fatal(err)
	}
	d := srv.DecisionStats()
	if sum := d.PrefetchInTime + d.PrefetchLate + d.PrefetchWasted + d.PrefetchDropped; sum != d.PrefetchIssued {
		t.Fatalf("prefetch ledger unbalanced after promotion: in-time %d + late %d + wasted %d + dropped %d = %d, want issued %d",
			d.PrefetchInTime, d.PrefetchLate, d.PrefetchWasted, d.PrefetchDropped, sum, d.PrefetchIssued)
	}
	if d.PrefetchLate == 0 {
		t.Fatal("the promoted entry was not counted late")
	}
}

// TestPlanConservationAcrossEpochs drives two planned epochs (with partial
// selection overlap, as IIS re-draws produce) plus demand traffic over the
// pre-placed set, and pins that the planner (a) actually pre-places every
// missing scheduled H-sample and (b) leaves the prefetch-outcome identity
// exactly balanced at every boundary it crosses.
func TestPlanConservationAcrossEpochs(t *testing.T) {
	defer leakcheck.Check(t)
	srv, addr := startPlanTestServer(t, nil, -1, PlanConfig{BandwidthBytesPerSec: 256 << 20})
	cl := dial(t, addr)
	spec := testSpec()

	const universe = 240
	ids := make([]dataset.SampleID, universe)
	items := make([]sampling.Item, universe)
	for i := range ids {
		ids[i] = dataset.SampleID(i)
		items[i] = sampling.Item{ID: ids[i], IV: float64(universe - i)}
	}
	if err := cl.UpdateImportance(items); err != nil {
		t.Fatal(err)
	}

	getAll := func(sel []dataset.SampleID) {
		t.Helper()
		for off := 0; off < len(sel); off += 16 {
			end := off + 16
			if end > len(sel) {
				end = len(sel)
			}
			samples, err := cl.GetBatch(sel[off:end])
			if err != nil {
				t.Fatal(err)
			}
			for i, s := range samples {
				if s.ID != sel[off+i] {
					t.Fatalf("H-sample %d substituted with %d", sel[off+i], s.ID)
				}
				if err := spec.VerifyPayload(s.ID, s.Payload); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	waitResident := func(sel []dataset.SampleID) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for {
			n := 0
			for _, id := range sel {
				if srv.payloads.has(id) {
					n++
				}
			}
			if n == len(sel) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("pre-placement stalled: %d of %d planned samples resident (%+v)", n, len(sel), srv.PlanStats())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Epoch 1: plan the first 160 samples, let the planner place them, then
	// read a slice of them — those reads must be in-time prefetch hits.
	if err := cl.BeginEpochPlan(1, ids[:160]); err != nil {
		t.Fatal(err)
	}
	waitResident(ids[:160])
	waitPlanSettled(t, srv)
	baseMisses := cacheStats(srv).Misses
	getAll(ids[:64])
	if d := cacheStats(srv).Misses - baseMisses; d != 0 {
		t.Fatalf("reads of pre-placed samples missed %d times; want pure hits", d)
	}

	// Epoch 2: the selection shifts (half overlap) — only the truly missing
	// tail needs fetching, the overlap is already resident.
	if err := cl.BeginEpochPlan(2, ids[80:240]); err != nil {
		t.Fatal(err)
	}
	waitResident(ids[80:240])
	waitPlanSettled(t, srv)
	getAll(ids[120:184])

	// Settle: the final boundary sweeps outstanding tokens; the identity
	// must hold exactly, with real in-time outcomes recorded.
	if err := cl.BeginEpoch(3); err != nil {
		t.Fatal(err)
	}
	d := srv.DecisionStats()
	if sum := d.PrefetchInTime + d.PrefetchLate + d.PrefetchWasted + d.PrefetchDropped; sum != d.PrefetchIssued {
		t.Fatalf("prefetch ledger unbalanced with planner on: in-time %d + late %d + wasted %d + dropped %d = %d, want issued %d",
			d.PrefetchInTime, d.PrefetchLate, d.PrefetchWasted, d.PrefetchDropped, sum, d.PrefetchIssued)
	}
	if d.PrefetchIssued == 0 {
		t.Fatal("planner issued no prefetches")
	}
	if d.PrefetchInTime == 0 {
		t.Fatal("no planned prefetch was consumed in time")
	}
	ps := srv.PlanStats()
	if ps.EntriesTotal == 0 {
		t.Fatalf("planner admitted no entries: %+v", ps)
	}
	if ps.CompletedTotal != ps.EntriesTotal {
		t.Fatalf("plan drain leaked entries: completed %d of %d admitted", ps.CompletedTotal, ps.EntriesTotal)
	}
}

// TestChaosPlanOwnerKill kills a plan's future-owner node mid-plan, under
// three seeds. The surviving node must (a) route around the dead owner —
// failed pre-place RPCs re-route entries to the local queue, and the next
// epoch's residency sweep sees the cluster as it actually is — and (b) keep
// serving the full selection exactly, with outcome conservation intact.
// `make chaos` runs this with -count=3 and under -race.
func TestChaosPlanOwnerKill(t *testing.T) {
	for _, seed := range []int64{1, 42, 1337} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			f := startDistFixtureHook(t, func(n int, srv *Server) {
				srv.SetClairvoyant(PlanConfig{BandwidthBytesPerSec: 256 << 20})
			})
			spec := testSpec()
			rng := rand.New(rand.NewSource(seed))
			perm := rng.Perm(spec.NumSamples)
			ids := make([]dataset.SampleID, 64)
			items := make([]sampling.Item, len(ids))
			for i := range ids {
				ids[i] = dataset.SampleID(perm[i])
				items[i] = sampling.Item{ID: ids[i], IV: float64(len(ids) - i)}
			}
			cA := dial(t, f.addrs[0])
			cB := dial(t, f.addrs[1])
			if err := cA.UpdateImportance(items); err != nil {
				t.Fatal(err)
			}
			if err := cB.UpdateImportance(items); err != nil {
				t.Fatal(err)
			}

			// Install the plan, then kill the peer mid-plan: depending on
			// the seed's timing the pre-place RPC dies before, during, or
			// after shipping — every case must degrade, never wedge.
			if err := cA.BeginEpochPlan(1, ids); err != nil {
				t.Fatal(err)
			}
			time.Sleep(time.Duration(rng.Intn(4)) * time.Millisecond)
			f.nodes[1].Close()

			// Next epoch, same selection: the residency sweep re-routes the
			// plan around whatever the dead node took with it.
			if err := cA.BeginEpochPlan(2, ids); err != nil {
				t.Fatal(err)
			}
			waitPlanSettled(t, f.nodes[0])

			// The full selection must be served exactly — pre-placed bytes
			// locally, dead-owned entries degraded to backend reads — with
			// outcome conservation exact on the surviving node.
			base := cacheStats(f.nodes[0]).Requests()
			for off := 0; off < len(ids); off += 16 {
				samples, err := cA.GetBatch(ids[off : off+16])
				if err != nil {
					t.Fatalf("GetBatch after owner kill: %v", err)
				}
				if len(samples) != 16 {
					t.Fatalf("served %d of 16", len(samples))
				}
				for i, s := range samples {
					if s.ID != ids[off+i] {
						t.Fatalf("H-sample %d substituted with %d", ids[off+i], s.ID)
					}
					if err := spec.VerifyPayload(s.ID, s.Payload); err != nil {
						t.Fatalf("corrupt payload: %v", err)
					}
				}
			}
			if delta := cacheStats(f.nodes[0]).Requests() - base; delta != int64(len(ids)) {
				t.Fatalf("conservation violated: outcome classes advanced by %d for %d requested samples", delta, len(ids))
			}

			ps := f.nodes[0].PlanStats()
			if ps.Reroutes+ps.SkippedCluster == 0 {
				t.Fatalf("plan never observed the dead owner (no re-routes, no cluster-resident skips): %+v", ps)
			}

			// The settling boundary sweeps outstanding tokens; the prefetch
			// ledger must balance exactly even with the peer gone.
			if err := cA.BeginEpoch(3); err != nil {
				t.Fatal(err)
			}
			d := f.nodes[0].DecisionStats()
			if sum := d.PrefetchInTime + d.PrefetchLate + d.PrefetchWasted + d.PrefetchDropped; sum != d.PrefetchIssued {
				t.Fatalf("prefetch ledger unbalanced after owner kill: in-time %d + late %d + wasted %d + dropped %d = %d, want issued %d",
					d.PrefetchInTime, d.PrefetchLate, d.PrefetchWasted, d.PrefetchDropped, sum, d.PrefetchIssued)
			}
		})
	}
}

package rpc

import (
	"net"
	"testing"
	"time"

	"icache/internal/dataset"
	"icache/internal/icache"
	"icache/internal/retry"
	"icache/internal/sampling"
	"icache/internal/storage"
)

// TestClientRidesThroughServerRestart kills the server between requests and
// restarts it on the same address; the client's next call must succeed via
// its transparent redial.
func TestClientRidesThroughServerRestart(t *testing.T) {
	spec := testSpec()
	mkServer := func() (*Server, net.Listener) {
		back, err := storage.NewBackend(spec, storage.OrangeFS())
		if err != nil {
			t.Fatal(err)
		}
		cacheSrv, err := icache.NewServer(back, icache.DefaultConfig(spec.TotalBytes()/5), sampling.DefaultIIS(), 5)
		if err != nil {
			t.Fatal(err)
		}
		source, err := storage.NewDataSource(spec)
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(cacheSrv, source)
		srv.Logf = nil
		return srv, nil
	}

	srv1, _ := mkServer()
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln1.Addr().String()
	go srv1.Serve(ln1)

	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	// Kill and restart on the same port.
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, _ := mkServer()
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve(ln2)
	defer srv2.Close()

	samples, err := c.GetBatch([]dataset.SampleID{1, 2, 3})
	if err != nil {
		t.Fatalf("request after restart failed despite reconnect: %v", err)
	}
	if len(samples) != 3 {
		t.Fatalf("served %d of 3", len(samples))
	}
}

// TestClientSurvivesRepeatedCrashRestart pushes the restart scenario to
// three consecutive crash/restart cycles with a GetBatch in flight during
// each outage window: the request launches while the server is down and
// must ride the retry/backoff schedule into the restarted instance.
func TestClientSurvivesRepeatedCrashRestart(t *testing.T) {
	spec := testSpec()
	mkServer := func() *Server {
		back, err := storage.NewBackend(spec, storage.OrangeFS())
		if err != nil {
			t.Fatal(err)
		}
		cacheSrv, err := icache.NewServer(back, icache.DefaultConfig(spec.TotalBytes()/5), sampling.DefaultIIS(), 5)
		if err != nil {
			t.Fatal(err)
		}
		source, err := storage.NewDataSource(spec)
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(cacheSrv, source)
		srv.Logf = nil
		return srv
	}
	listenOn := func(addr string) net.Listener {
		// The previous listener just closed; the port can take a moment to
		// become bindable again.
		var ln net.Listener
		var err error
		for i := 0; i < 50; i++ {
			ln, err = net.Listen("tcp", addr)
			if err == nil {
				return ln
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("rebind %s: %v", addr, err)
		return nil
	}

	srv := mkServer()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go srv.Serve(ln)

	// A patient policy: each outage lasts tens of milliseconds, so the
	// client needs backoff budget beyond the default.
	policy := retry.Policy{MaxAttempts: 60, BaseDelay: 2 * time.Millisecond,
		MaxDelay: 25 * time.Millisecond, Multiplier: 2, Jitter: 0.2}
	c, err := DialPolicy(addr, time.Second, policy)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ids := []dataset.SampleID{1, 2, 3}
	for cycle := 0; cycle < 3; cycle++ {
		// Crash.
		if err := srv.Close(); err != nil {
			t.Fatalf("cycle %d: close: %v", cycle, err)
		}
		// Launch a request into the outage.
		inflight := make(chan error, 1)
		go func() {
			_, err := c.GetBatch(ids)
			inflight <- err
		}()
		// Restart after a real downtime window.
		time.Sleep(20 * time.Millisecond)
		srv = mkServer()
		ln = listenOn(addr)
		go srv.Serve(ln)

		if err := <-inflight; err != nil {
			t.Fatalf("cycle %d: in-flight request lost across restart: %v", cycle, err)
		}
		// And the connection must be fully serviceable again.
		samples, err := c.GetBatch(ids)
		if err != nil {
			t.Fatalf("cycle %d: post-restart request failed: %v", cycle, err)
		}
		if len(samples) != len(ids) {
			t.Fatalf("cycle %d: served %d of %d", cycle, len(samples), len(ids))
		}
		for _, s := range samples {
			if err := spec.VerifyPayload(s.ID, s.Payload); err != nil {
				t.Fatalf("cycle %d: corrupt payload after restart: %v", cycle, err)
			}
		}
	}
	defer srv.Close()

	retries, redials := c.Resilience()
	if retries < 3 || redials < 3 {
		t.Fatalf("resilience counters (retries=%d redials=%d) too low for 3 restart cycles", retries, redials)
	}
}

func TestClosedClientDoesNotRedial(t *testing.T) {
	_, addr, _ := startServer(t)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := c.Ping(); err == nil {
		t.Fatal("closed client served a request")
	}
}

package rpc

import (
	"net"
	"testing"
	"time"

	"icache/internal/dataset"
	"icache/internal/icache"
	"icache/internal/sampling"
	"icache/internal/storage"
)

// TestClientRidesThroughServerRestart kills the server between requests and
// restarts it on the same address; the client's next call must succeed via
// its transparent redial.
func TestClientRidesThroughServerRestart(t *testing.T) {
	spec := testSpec()
	mkServer := func() (*Server, net.Listener) {
		back, err := storage.NewBackend(spec, storage.OrangeFS())
		if err != nil {
			t.Fatal(err)
		}
		cacheSrv, err := icache.NewServer(back, icache.DefaultConfig(spec.TotalBytes()/5), sampling.DefaultIIS(), 5)
		if err != nil {
			t.Fatal(err)
		}
		source, err := storage.NewDataSource(spec)
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(cacheSrv, source)
		srv.Logf = nil
		return srv, nil
	}

	srv1, _ := mkServer()
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln1.Addr().String()
	go srv1.Serve(ln1)

	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	// Kill and restart on the same port.
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, _ := mkServer()
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve(ln2)
	defer srv2.Close()

	samples, err := c.GetBatch([]dataset.SampleID{1, 2, 3})
	if err != nil {
		t.Fatalf("request after restart failed despite reconnect: %v", err)
	}
	if len(samples) != 3 {
		t.Fatalf("served %d of 3", len(samples))
	}
}

func TestClosedClientDoesNotRedial(t *testing.T) {
	_, addr, _ := startServer(t)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := c.Ping(); err == nil {
		t.Fatal("closed client served a request")
	}
}

// Package rpc implements the client/server wire protocol between the
// deep-learning framework and the iCache server. The paper uses gRPC; this
// reproduction uses an equivalent length-prefixed binary protocol over TCP
// built only on the standard library, with the same two interfaces the
// paper names — fetching batches (rpc_loader) and pushing importance values
// (update_ipersample) — plus epoch-boundary and stats calls.
//
// Frame layout: a 4-byte big-endian payload length, then the payload. The
// payload's first byte is the opcode; the rest is the opcode-specific body.
// All integers are big-endian; floats are IEEE-754 bits.
package rpc

import (
	"fmt"
	"io"
	"time"

	"icache/internal/dataset"
	"icache/internal/sampling"
	"icache/internal/wire"
)

// Opcodes. opPeerGet (= 6) lives in peer.go and opTraced (= 7) in obs.go.
const (
	opGetBatch         = 1 // the paper's rpc_loader
	opUpdateImportance = 2 // the paper's update_ipersample
	opStats            = 3
	opBeginEpoch       = 4
	opPing             = 5
	// opPeerGetBatch fetches many resident samples from a peer cache in ONE
	// round trip — the scatter-gather replacement for per-sample opPeerGet.
	// Request: u8 opcode | u32 n | n × i64 id. Response: statusOK | u32 n |
	// n × (u8 found | bytes payload-if-found), aligned with the request.
	opPeerGetBatch = 8
	// opMuxReq is the multiplexed-framing envelope: u8 opcode | u32 reqID |
	// inner request bytes. The response frame echoes the envelope
	// (u8 opMuxReq | u32 reqID | status+body) so a demux reader can match
	// out-of-order responses back to their callers. Only clients that
	// negotiated capMux over opPing send it; see mux.go.
	opMuxReq = 9
	// opDeadline is the deadline-budget envelope: u8 opcode | i64 budget
	// nanoseconds | inner request bytes. The budget is the REMAINING time
	// the client is willing to wait, re-encoded (decremented) at every hop,
	// so clocks never need to agree across machines. It sits inside any mux
	// envelope and outside any opTraced envelope; nesting another deadline
	// is rejected. A server that cannot finish in time answers
	// statusExpired without touching the cache. Responses carry no deadline.
	opDeadline = 10
	// opEpochPlan is the clairvoyant epoch boundary: opBeginEpoch plus the
	// epoch's known access sequence, pushed in first-access order by a
	// client whose IIS sampler has already drawn the schedule. Request:
	// u8 opcode | u32 epoch | u32 n | n × i64 id. The server performs the
	// normal epoch-boundary duties and — when clairvoyant planning is
	// enabled — installs the sequence as the epoch's prefetch plan (see
	// plan.go). A non-clairvoyant server still crosses the boundary and
	// answers statusOK, so callers need no capability negotiation.
	opEpochPlan = 11
	// opPlanPreplace routes plan entries to their future owner: the sending
	// planner decided (by rendezvous over the membership) that the receiver
	// should hold these samples, and the receiver folds them into its own
	// plan, admitting and fetching them through its own budgeted drain.
	// Request: u8 opcode | u32 n | n × i64 id. Response: statusOK |
	// u32 accepted (0 when the receiver has no planner).
	opPlanPreplace = 12
)

// Capability bits negotiated over opPing. A post-PR-5 client appends
// u32(its caps) to the ping request; a post-PR-5 server echoes u32(its
// caps) after statusOK. Legacy peers ignore the extra request bytes and
// send the bare 1-byte response, which reads as "no capabilities" — the
// negotiation degrades silently in mixed-version clusters.
const (
	// capMux: the peer speaks opMuxReq framing AND opPeerGetBatch (both
	// shipped together, so one bit covers the batched+pipelined data plane).
	capMux uint32 = 1 << 0
)

// muxHeaderLen is the opMuxReq envelope size: opcode byte + u32 request ID.
const muxHeaderLen = 5

// Response status codes.
const (
	statusOK  = 0
	statusErr = 1
	// statusRetryAfter is the admission gate's shed rejection: the body is
	// i64 backoff-hint nanoseconds. The request was NOT served and NOT
	// counted against the cache; the client should back off and retry.
	statusRetryAfter = 2
	// statusExpired reports that the request's deadline budget ran out
	// before the server started (or finished) the work; the body is empty.
	statusExpired = 3
)

// writeFrame and readFrame delegate to the shared wire framing.
func writeFrame(w io.Writer, payload []byte) error { return wire.WriteFrame(w, payload) }

func readFrame(r io.Reader) ([]byte, error) { return wire.ReadFrame(r) }

// buffer and reader alias the shared wire encoder/decoder with the local
// lower-case method names this file was written against.
type buffer struct{ wire.Buffer }

func (e *buffer) u8(v byte)       { e.U8(v) }
func (e *buffer) u32(v uint32)    { e.U32(v) }
func (e *buffer) i64(v int64)     { e.I64(v) }
func (e *buffer) f64(v float64)   { e.F64(v) }
func (e *buffer) bytes(v []byte)  { e.Bytes(v) }
func (e *buffer) str(s string)    { e.Str(s) }
func (e *buffer) payload() []byte { return e.Buffer.B }

type reader struct{ *wire.Reader }

func newReader(b []byte) *reader { return &reader{wire.NewReader(b)} }

func (d *reader) u8() byte      { return d.U8() }
func (d *reader) u32() uint32   { return d.U32() }
func (d *reader) i64() int64    { return d.I64() }
func (d *reader) f64() float64  { return d.F64() }
func (d *reader) bytes() []byte { return d.BytesField() }
func (d *reader) str() string   { return d.Str() }
func (d *reader) err() error    { return d.Err }

// rest returns the undecoded remainder of the payload (aliasing it) — the
// inner request bytes of an opTraced envelope.
func (d *reader) rest() []byte { return d.B[d.Off:] }

// encodeGetBatchRequest/decode pair.
func encodeGetBatchRequest(ids []dataset.SampleID) []byte {
	var e buffer
	e.u8(opGetBatch)
	e.u32(uint32(len(ids)))
	for _, id := range ids {
		e.i64(int64(id))
	}
	return e.payload()
}

func decodeGetBatchRequest(d *reader) ([]dataset.SampleID, error) {
	return decodeGetBatchRequestInto(d, nil)
}

// decodeGetBatchRequestInto appends the decoded ids to dst (reusing its
// capacity) — the vectored serving path passes a pooled scratch slice so a
// request decode allocates nothing.
func decodeGetBatchRequestInto(d *reader, dst []dataset.SampleID) ([]dataset.SampleID, error) {
	n := int(d.u32())
	if n < 0 || n > 1<<20 {
		return nil, fmt.Errorf("rpc: unreasonable batch size %d", n)
	}
	for i := 0; i < n; i++ {
		dst = append(dst, dataset.SampleID(d.i64()))
	}
	return dst, d.err()
}

// encodePeerGetBatchRequest/decode pair. The request body is identical in
// shape to opGetBatch (u32 count + ids) and shares its size guard.
func encodePeerGetBatchRequest(ids []dataset.SampleID) []byte {
	var e buffer
	e.u8(opPeerGetBatch)
	e.u32(uint32(len(ids)))
	for _, id := range ids {
		e.i64(int64(id))
	}
	return e.payload()
}

func decodePeerGetBatchRequest(d *reader) ([]dataset.SampleID, error) {
	return decodeGetBatchRequest(d) // same layout, same "unreasonable batch size" guard
}

// decodePeerGetBatchResponse decodes the per-id results of an
// opPeerGetBatch response, aligned with the n ids the caller sent: out[i]
// is the payload when the peer had ids[i] resident, nil when it did not.
func decodePeerGetBatchResponse(d *reader, want int) ([][]byte, error) {
	n := int(d.u32())
	if err := d.err(); err != nil {
		return nil, err
	}
	if n != want {
		return nil, fmt.Errorf("rpc: peer batch length mismatch: sent %d, got %d", want, n)
	}
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		if d.u8() == 1 {
			out[i] = d.bytes()
		}
		if err := d.err(); err != nil {
			return nil, err
		}
	}
	return out, d.err()
}

// encodeEpochPlanRequest/decode pair: the epoch number plus the epoch's
// access sequence in first-access order. The sequence reuses opGetBatch's
// id-list layout and size guard (an IIS schedule is at most one pass over
// the dataset, well under the guard for every spec this repo ships).
func encodeEpochPlanRequest(epoch int, ids []dataset.SampleID) []byte {
	var e buffer
	e.u8(opEpochPlan)
	e.u32(uint32(epoch))
	e.u32(uint32(len(ids)))
	for _, id := range ids {
		e.i64(int64(id))
	}
	return e.payload()
}

func decodeEpochPlanRequest(d *reader) (epoch uint32, ids []dataset.SampleID, err error) {
	epoch = d.u32()
	ids, err = decodeGetBatchRequest(d)
	return epoch, ids, err
}

// encodePlanPreplaceRequest/decode pair: the id-list layout again.
func encodePlanPreplaceRequest(ids []dataset.SampleID) []byte {
	var e buffer
	e.u8(opPlanPreplace)
	e.u32(uint32(len(ids)))
	for _, id := range ids {
		e.i64(int64(id))
	}
	return e.payload()
}

func decodePlanPreplaceRequest(d *reader) ([]dataset.SampleID, error) {
	return decodeGetBatchRequest(d)
}

// Sample is one delivered sample on the wire: the ID actually served (which
// may differ from the requested ID under substitution) and its payload.
type Sample struct {
	ID      dataset.SampleID
	Payload []byte
}

func encodeGetBatchResponse(samples []Sample) []byte {
	var e buffer
	encodeGetBatchResponseInto(&e, samples)
	return e.payload()
}

// encodeGetBatchResponseInto appends the response into e (the serving loop
// passes a pooled buffer here; payload bytes are copied into it, so the
// buffer owns everything it frames).
func encodeGetBatchResponseInto(e *buffer, samples []Sample) {
	e.u8(statusOK)
	e.u32(uint32(len(samples)))
	for _, s := range samples {
		e.i64(int64(s.ID))
		e.bytes(s.Payload)
	}
}

func decodeGetBatchResponse(d *reader) ([]Sample, error) {
	return decodeGetBatchResponseInto(d, nil)
}

// decodeGetBatchResponseInto appends the decoded samples to dst (reusing
// its capacity) — the borrowed-read client path passes a pooled scratch
// slice so a response decode allocates nothing. Payloads alias the frame.
func decodeGetBatchResponseInto(d *reader, dst []Sample) ([]Sample, error) {
	n := int(d.u32())
	if dst == nil {
		dst = make([]Sample, 0, n)
	}
	for i := 0; i < n; i++ {
		id := dataset.SampleID(d.i64())
		payload := d.bytes()
		if d.err() != nil {
			return nil, d.err()
		}
		dst = append(dst, Sample{ID: id, Payload: payload})
	}
	return dst, d.err()
}

func encodeUpdateImportanceRequest(items []sampling.Item) []byte {
	var e buffer
	e.u8(opUpdateImportance)
	e.u32(uint32(len(items)))
	for _, it := range items {
		e.i64(int64(it.ID))
		e.f64(it.IV)
	}
	return e.payload()
}

func decodeUpdateImportanceRequest(d *reader) ([]sampling.Item, error) {
	n := int(d.u32())
	if n < 0 || n > 1<<24 {
		return nil, fmt.Errorf("rpc: unreasonable H-list size %d", n)
	}
	items := make([]sampling.Item, 0, n)
	for i := 0; i < n; i++ {
		items = append(items, sampling.Item{ID: dataset.SampleID(d.i64()), IV: d.f64()})
	}
	return items, d.err()
}

// Stats is the server-side counter snapshot exposed over the wire.
type Stats struct {
	Hits          int64
	Misses        int64
	Substitutions int64
	HCacheLen     int64
	LCacheLen     int64
	Packages      int64
	// DemandFetches counts backend reads issued on the demand path (cold
	// misses). Appended to the wire response as an optional trailing field:
	// pre-plan servers don't send it and pre-plan clients don't read it.
	DemandFetches int64
}

func encodeStatsResponse(s Stats) []byte {
	var e buffer
	encodeStatsResponseInto(&e, s)
	return e.payload()
}

func encodeStatsResponseInto(e *buffer, s Stats) {
	e.u8(statusOK)
	e.i64(s.Hits)
	e.i64(s.Misses)
	e.i64(s.Substitutions)
	e.i64(s.HCacheLen)
	e.i64(s.LCacheLen)
	e.i64(s.Packages)
}

func decodeStatsResponse(d *reader) (Stats, error) {
	s := Stats{
		Hits:          d.i64(),
		Misses:        d.i64(),
		Substitutions: d.i64(),
		HCacheLen:     d.i64(),
		LCacheLen:     d.i64(),
		Packages:      d.i64(),
	}
	// Optional trailing DemandFetches field (servers with the planner wired
	// in append it; older servers end the frame here).
	if err := d.err(); err != nil {
		return s, err
	}
	if len(d.rest()) >= 8 {
		s.DemandFetches = d.i64()
	}
	return s, d.err()
}

func encodeErrorResponse(msg string) []byte {
	var e buffer
	encodeErrorResponseInto(&e, msg)
	return e.payload()
}

func encodeErrorResponseInto(e *buffer, msg string) {
	e.u8(statusErr)
	e.str(msg)
}

// deadlineHeaderLen is the opDeadline envelope size: opcode byte + i64
// budget nanoseconds.
const deadlineHeaderLen = 9

// encodeDeadlineRequest wraps an encoded inner request in the opDeadline
// envelope carrying the remaining budget. Budgets <= 0 are clamped to 1ns
// (an expired budget is still sent so the server answers statusExpired
// rather than the client silently dropping the call).
func encodeDeadlineRequest(budget time.Duration, inner []byte) []byte {
	if budget <= 0 {
		budget = 1
	}
	e := buffer{wire.Buffer{B: make([]byte, 0, deadlineHeaderLen+len(inner))}}
	e.u8(opDeadline)
	e.i64(int64(budget))
	e.bytesRaw(inner)
	return e.payload()
}

// bytesRaw appends raw bytes with no length prefix (envelope bodies carry
// their own framing).
func (e *buffer) bytesRaw(v []byte) { e.Buffer.B = append(e.Buffer.B, v...) }

// peelDeadline strips one leading opDeadline envelope from payload,
// returning the inner request and the hop's absolute deadline computed
// from now. ok=false with a nil error means there was no envelope (the
// payload is returned untouched); a non-nil error means the envelope was
// malformed or nested.
func peelDeadline(payload []byte, now time.Time) (inner []byte, deadline time.Time, ok bool, err error) {
	if len(payload) == 0 || payload[0] != opDeadline {
		return payload, time.Time{}, false, nil
	}
	if len(payload) < deadlineHeaderLen+1 {
		return nil, time.Time{}, false, fmt.Errorf("rpc: truncated deadline envelope (%d bytes)", len(payload))
	}
	d := newReader(payload)
	d.u8()
	budget := d.i64()
	inner = d.rest()
	if budget <= 0 {
		return nil, time.Time{}, false, fmt.Errorf("rpc: non-positive deadline budget %d", budget)
	}
	if inner[0] == opDeadline {
		return nil, time.Time{}, false, fmt.Errorf("rpc: nested deadline envelope rejected")
	}
	return inner, now.Add(time.Duration(budget)), true, nil
}

// encodeRetryAfterResponseInto writes the admission gate's shed rejection.
func encodeRetryAfterResponseInto(e *buffer, after time.Duration) {
	e.u8(statusRetryAfter)
	e.i64(int64(after))
}

// encodeExpiredResponseInto writes the deadline-exceeded rejection.
func encodeExpiredResponseInto(e *buffer) {
	e.u8(statusExpired)
}

// remainingBudget converts an absolute deadline back into the budget a
// downstream hop should be given (zero deadline = no bound, 0 budget).
// Expired deadlines report a negative remainder so callers can drop the
// work instead of issuing a doomed call.
func remainingBudget(deadline, now time.Time) (time.Duration, bool) {
	if deadline.IsZero() {
		return 0, false
	}
	return deadline.Sub(now), true
}

package rpc

import (
	"sync"
	"sync/atomic"
	"time"

	"icache/internal/dataset"
	"icache/internal/obs"
)

// prefetcher is the bounded asynchronous prefetch worker pool of the
// serving path. The policy engine's background loader decides *which*
// L-samples enter the cache and *when* (virtual-time package arrivals,
// §III-C); the prefetcher turns each delivery into real bytes: workers pull
// delivered sample IDs off a bounded queue and fill the payload store
// through the same coalesced miss path foreground requests use, so the
// first client request for a freshly loaded L-sample is served from DRAM
// instead of paying a backend read inline.
//
// The pool size is icache.Config.PrefetchWorkers — the paper's Fig. 15
// prefetch-worker knob (-prefetch-workers on cmd/icache-server).
//
// Concurrency: enqueue is called under policyMu (the loader delivers
// during FetchBatch/StartEpoch), so it must never block — when the queue
// is full the ID is dropped and counted; the sample is then fetched lazily
// on first request, exactly as if prefetching were disabled. Workers run
// with no locks held and share the server's singleflight group, so a
// prefetch and a foreground miss for the same sample coalesce into one
// backend read.
// prefetchItem is one queued delivery: the sample plus its enqueue instant
// (zero unless stage histograms are enabled), so the worker can record the
// prefetch_queue_wait stage without any clock reads on the disabled path.
type prefetchItem struct {
	id dataset.SampleID
	at time.Time
	// planned marks a clairvoyant plan entry (see plan.go): before fetching
	// bytes the worker must admit the sample into the H-cache through the
	// policy's importance-gated plan-admission path. Reactive deliveries
	// (false) are already policy-resident when enqueued.
	planned bool
}

type prefetcher struct {
	s       *Server
	q       chan prefetchItem
	workers int

	wg       sync.WaitGroup
	done     chan struct{}
	stopOnce sync.Once

	queued    int64 // IDs accepted onto the queue (atomic)
	completed int64 // prefetches that finished (bytes stored or already present)
	dropped   int64 // IDs discarded because the queue was full
	failed    int64 // prefetch fetches that errored (sample stays lazy)

	// Prefetch-outcome ledger (the decision-level taxonomy: see
	// metrics.DecisionStats). Every queued ID gets one pending token;
	// whoever removes the token counts the outcome, so each queued
	// prefetch resolves to exactly one of in-time / late / wasted /
	// failed. At an epoch boundary the sweep reclassifies every
	// outstanding token as wasted, which is what makes the ledger balance
	// exactly there:
	//
	//	inTime + late + wasted + failedOutcome == queued
	inTime        int64 // prefetched payload served a request (atomic)
	late          int64 // the foreground beat the worker to the fetch (atomic)
	wasted        int64 // evicted or epoch-swept untouched (atomic)
	failedOutcome int64 // failed fetches that held a pending token (atomic)

	// pending is the token set; pendN mirrors its size atomically so the
	// hot hit path can skip the lock when no prefetch is outstanding.
	// queuedSet tracks IDs sitting in q that no worker has picked up yet;
	// cancelled marks queued entries a demand fetch has promoted past (the
	// foreground is fetching the bytes itself, so the worker turn would be
	// pure duplication — see noteDemand). Both share pendMu.
	pendMu    sync.Mutex
	pending   map[dataset.SampleID]struct{}
	queuedSet map[dataset.SampleID]struct{}
	cancelled map[dataset.SampleID]struct{}
	pendN     int64

	// paused (atomic 0/1) is the brownout switch: while set, enqueue drops
	// every delivery so background backend reads stop competing with
	// overloaded foreground serving. Samples stay lazily fetchable.
	paused int32
}

// newPrefetcher starts a pool of workers. The queue is sized at 64 slots
// per worker: deep enough to absorb a whole package delivery burst
// (packages hold tens of samples), shallow enough that a stalled backend
// cannot pile up unbounded work.
func newPrefetcher(s *Server, workers int) *prefetcher {
	p := &prefetcher{
		s:         s,
		q:         make(chan prefetchItem, workers*64),
		workers:   workers,
		done:      make(chan struct{}),
		pending:   make(map[dataset.SampleID]struct{}),
		queuedSet: make(map[dataset.SampleID]struct{}),
		cancelled: make(map[dataset.SampleID]struct{}),
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// enqueue offers a delivered sample to the pool. Non-blocking by contract:
// it is invoked under policyMu.
func (p *prefetcher) enqueue(id dataset.SampleID) {
	select {
	case <-p.done:
		return
	default:
	}
	if atomic.LoadInt32(&p.paused) == 1 {
		atomic.AddInt64(&p.dropped, 1)
		return
	}
	if !p.pendAdd(id) {
		// Already pending: a redundant re-delivery of an ID the pool is
		// still working on (or whose bytes already sit untouched in the
		// store). Skip it silently — queueing it again would only burn a
		// worker turn to discover the payload is present.
		return
	}
	it := prefetchItem{id: id}
	if p.s.obs.histsOn() {
		it.at = time.Now()
	}
	p.markQueued(id)
	select {
	case p.q <- it:
		atomic.AddInt64(&p.queued, 1)
	default:
		if p.unqueueFailed(id) {
			atomic.AddInt64(&p.dropped, 1)
		}
	}
}

// enqueuePlanned offers a clairvoyant plan entry to the pool. Unlike
// enqueue it runs on the planner's drain goroutine with no locks held, so
// when the queue is full it WAITS instead of dropping — the planner paces
// itself under the bandwidth budget, and dropping paced entries would punch
// holes in the plan. An ID already holding a pending token is deduped
// silently (the in-flight prefetch or demand fetch covers it). Returns
// false only when the pool or the caller is stopping.
func (p *prefetcher) enqueuePlanned(id dataset.SampleID, stop <-chan struct{}) bool {
	select {
	case <-p.done:
		return false
	default:
	}
	if !p.pendAdd(id) {
		return true
	}
	it := prefetchItem{id: id, planned: true}
	if p.s.obs.histsOn() {
		it.at = time.Now()
	}
	p.markQueued(id)
	select {
	case p.q <- it:
		atomic.AddInt64(&p.queued, 1)
		return true
	case <-p.done:
		p.unqueueFailed(id)
		return false
	case <-stop:
		p.unqueueFailed(id)
		return false
	}
}

// pendAdd grants id a pending token; false when one is already out.
func (p *prefetcher) pendAdd(id dataset.SampleID) bool {
	p.pendMu.Lock()
	if _, ok := p.pending[id]; ok {
		p.pendMu.Unlock()
		return false
	}
	p.pending[id] = struct{}{}
	atomic.AddInt64(&p.pendN, 1)
	p.pendMu.Unlock()
	return true
}

// pendRemove redeems id's pending token; false when it was already
// redeemed (the outcome is then someone else's to count).
func (p *prefetcher) pendRemove(id dataset.SampleID) bool {
	p.pendMu.Lock()
	if _, ok := p.pending[id]; !ok {
		p.pendMu.Unlock()
		return false
	}
	delete(p.pending, id)
	atomic.AddInt64(&p.pendN, -1)
	p.pendMu.Unlock()
	return true
}

// markQueued records that id's item is sitting in q awaiting a worker.
// Called before the channel send so a marker can never outlive its item:
// a failed send removes it via unqueueFailed, a delivered item is consumed
// by the worker's dequeued call.
func (p *prefetcher) markQueued(id dataset.SampleID) {
	p.pendMu.Lock()
	p.queuedSet[id] = struct{}{}
	p.pendMu.Unlock()
}

// unqueueFailed rolls back a markQueued+pendAdd pair after a failed channel
// send, consuming any cancel marker a concurrent noteDemand left. It
// reports whether the pending token was still ours to redeem — false means
// a demand fetch already counted the outcome and the caller must not also
// count a drop.
func (p *prefetcher) unqueueFailed(id dataset.SampleID) bool {
	p.pendMu.Lock()
	delete(p.queuedSet, id)
	delete(p.cancelled, id)
	_, mine := p.pending[id]
	if mine {
		delete(p.pending, id)
		atomic.AddInt64(&p.pendN, -1)
	}
	p.pendMu.Unlock()
	return mine
}

// dequeued records that a worker picked id up, reporting whether a demand
// fetch cancelled the entry while it sat queued (the worker then skips it
// entirely — no existence probe, no backend read).
func (p *prefetcher) dequeued(id dataset.SampleID) bool {
	p.pendMu.Lock()
	delete(p.queuedSet, id)
	_, c := p.cancelled[id]
	if c {
		delete(p.cancelled, id)
	}
	p.pendMu.Unlock()
	return c
}

// noteDemand records that the foreground is about to fetch id itself. If a
// prefetch for it is queued but unstarted, the entry is promoted: the
// demand fetch becomes the one backend read (through the singleflight
// group) and the queued entry is cancelled so its worker turn does not
// re-fetch bytes the demand path already brought in — even if they get
// evicted in between. The token resolves late: the plan existed but the
// foreground beat it.
func (p *prefetcher) noteDemand(id dataset.SampleID) {
	if p == nil || atomic.LoadInt64(&p.pendN) == 0 {
		return
	}
	p.pendMu.Lock()
	_, queued := p.queuedSet[id]
	_, already := p.cancelled[id]
	_, tok := p.pending[id]
	if !queued || already || !tok {
		p.pendMu.Unlock()
		return
	}
	delete(p.pending, id)
	atomic.AddInt64(&p.pendN, -1)
	p.cancelled[id] = struct{}{}
	p.pendMu.Unlock()
	atomic.AddInt64(&p.late, 1)
}

// noteHit records that a local hit served id: if its prefetch token is
// still out, the prefetch arrived in time. The atomic pendN probe keeps
// the hot hit path lock-free whenever nothing is pending.
func (p *prefetcher) noteHit(id dataset.SampleID) {
	if p == nil || atomic.LoadInt64(&p.pendN) == 0 {
		return
	}
	if p.pendRemove(id) {
		atomic.AddInt64(&p.inTime, 1)
	}
}

// noteEvict records that id was evicted: a still-pending token means the
// prefetched bytes were never touched — wasted work. Runs under policyMu
// (the eviction observer); pendMu is a leaf lock.
func (p *prefetcher) noteEvict(id dataset.SampleID) {
	if p == nil || atomic.LoadInt64(&p.pendN) == 0 {
		return
	}
	if p.pendRemove(id) {
		atomic.AddInt64(&p.wasted, 1)
	}
}

// sweepEpoch reclassifies every outstanding pending token as wasted: the
// epoch whose selection wanted those samples is over. Called at the epoch
// boundary under policyMu, which excludes concurrent enqueues (the loader
// delivers under the same lock).
func (p *prefetcher) sweepEpoch() {
	if p == nil {
		return
	}
	p.pendMu.Lock()
	n := len(p.pending)
	if n > 0 {
		p.pending = make(map[dataset.SampleID]struct{})
		atomic.StoreInt64(&p.pendN, 0)
	}
	p.pendMu.Unlock()
	if n > 0 {
		atomic.AddInt64(&p.wasted, int64(n))
	}
}

func (p *prefetcher) worker() {
	defer p.wg.Done()
	for {
		select {
		case <-p.done:
			return
		case it := <-p.q:
			p.s.obs.prefetchWt.Since(it.at)
			id := it.id
			if p.dequeued(id) {
				// A demand fetch promoted this entry while it sat queued:
				// the foreground already paid (or is paying) the backend
				// read and counted the token late. Skip entirely — probing
				// or re-fetching here is exactly the double fetch the
				// promotion exists to prevent.
				atomic.AddInt64(&p.completed, 1)
				continue
			}
			// Existence probe only — has() touches no payload bytes and takes
			// no refcount, where a shared get would copy arena-resident bytes
			// just to throw them away. The fetched payload itself is admitted
			// through resolvePayload → admit → adopt: the fetch buffer becomes
			// the slab with zero additional copies.
			if p.s.payloads.has(id) {
				// The foreground (or an earlier prefetch) beat us to it.
				if p.pendRemove(id) {
					atomic.AddInt64(&p.late, 1)
				}
				atomic.AddInt64(&p.completed, 1)
				continue
			}
			if it.planned && !p.s.planAdmit(id) {
				// The policy refused the planned sample (demoted out of the
				// H-list since the plan was built, or outranked by every
				// resident): fetching bytes it cannot store would be pure
				// waste. The plan entry is unfulfillable here.
				if p.pendRemove(id) {
					atomic.AddInt64(&p.failedOutcome, 1)
				}
				atomic.AddInt64(&p.failed, 1)
				continue
			}
			if _, err := p.s.resolvePayloadProv(id, obs.TraceCtx{}, time.Time{}, provPrefetch); err != nil {
				// Best effort: a failed prefetch is not a serving error —
				// the sample will be fetched (with retries as configured)
				// when a client actually asks for it.
				if p.pendRemove(id) {
					atomic.AddInt64(&p.failedOutcome, 1)
				}
				atomic.AddInt64(&p.failed, 1)
				continue
			}
			// Success: the token stays out until a hit (in-time), an
			// eviction (wasted) or the epoch sweep (wasted) redeems it.
			atomic.AddInt64(&p.completed, 1)
		}
	}
}

// isPaused reports the brownout switch state (the planner's drain consults
// it so planned backend reads stop competing with overloaded serving).
func (p *prefetcher) isPaused() bool { return atomic.LoadInt32(&p.paused) == 1 }

// setPaused flips the brownout switch (see the paused field).
func (p *prefetcher) setPaused(on bool) {
	var v int32
	if on {
		v = 1
	}
	atomic.StoreInt32(&p.paused, v)
}

// stop terminates the pool and waits for workers to drain. Queued IDs not
// yet picked up are abandoned (server shutdown).
func (p *prefetcher) stop() {
	p.stopOnce.Do(func() { close(p.done) })
	p.wg.Wait()
}

// depth reports the current queue backlog (gauge).
func (p *prefetcher) depth() int { return len(p.q) }

package rpc

import (
	"encoding/json"
	"net/http"
	"time"
)

// MetricsSnapshot is the JSON document served by the metrics endpoint: the
// cache counters plus the operational gauges an operator dashboards.
type MetricsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`

	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
	Substitutions int64   `json:"substitutions"`
	HitRatio      float64 `json:"hit_ratio"`
	Inserts       int64   `json:"inserts"`
	Evictions     int64   `json:"evictions"`

	HCacheLen  int `json:"hcache_len"`
	LCacheLen  int `json:"lcache_len"`
	Tier2Len   int `json:"tier2_len"`
	PayloadLen int `json:"payload_len"`

	PackagesLoaded    int64 `json:"packages_loaded"`
	LoaderUsefulBytes int64 `json:"loader_useful_bytes"`
	LoaderWastedBytes int64 `json:"loader_wasted_bytes"`
	Tier2Hits         int64 `json:"tier2_hits"`

	PeerServes int64 `json:"peer_serves"`
	PeerHits   int64 `json:"peer_hits"`
}

// Metrics gathers a consistent snapshot.
func (s *Server) Metrics() MetricsSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.cache.Stats()
	served, hits := int64(0), int64(0)
	if s.dist != nil {
		served, hits = s.dist.peerServes, s.dist.peerHits
	}
	return MetricsSnapshot{
		UptimeSeconds:     time.Since(s.start).Seconds(),
		Hits:              st.Hits,
		Misses:            st.Misses,
		Substitutions:     st.Substitutions,
		HitRatio:          st.HitRatio(),
		Inserts:           st.Inserts,
		Evictions:         st.Evictions,
		HCacheLen:         s.cache.HCacheLen(),
		LCacheLen:         s.cache.LCacheLen(),
		Tier2Len:          s.cache.Tier2Len(),
		PayloadLen:        len(s.payloads),
		PackagesLoaded:    s.cache.PackagesLoaded(),
		LoaderUsefulBytes: s.cache.LoaderUsefulBytes(),
		LoaderWastedBytes: s.cache.LoaderWastedBytes(),
		Tier2Hits:         s.cache.Tier2Hits(),
		PeerServes:        served,
		PeerHits:          hits,
	}
}

// MetricsHandler serves the snapshot as JSON on GET /metrics (any path).
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s.Metrics()); err != nil && s.Logf != nil {
			s.Logf("rpc: metrics encode: %v", err)
		}
	})
}

package rpc

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
	"time"

	"icache/internal/metrics"
	"icache/internal/overload"
	"icache/internal/wire"
)

// MetricsSnapshot is the JSON document served by the metrics endpoint: the
// cache counters plus the operational gauges an operator dashboards.
type MetricsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`

	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
	Substitutions int64   `json:"substitutions"`
	HitRatio      float64 `json:"hit_ratio"`
	Inserts       int64   `json:"inserts"`
	Evictions     int64   `json:"evictions"`

	HCacheLen  int `json:"hcache_len"`
	LCacheLen  int `json:"lcache_len"`
	Tier2Len   int `json:"tier2_len"`
	PayloadLen int `json:"payload_len"`

	PackagesLoaded    int64 `json:"packages_loaded"`
	LoaderUsefulBytes int64 `json:"loader_useful_bytes"`
	LoaderWastedBytes int64 `json:"loader_wasted_bytes"`
	Tier2Hits         int64 `json:"tier2_hits"`

	PeerServes int64 `json:"peer_serves"`
	PeerHits   int64 `json:"peer_hits"`

	// Node-lifecycle counters (zero unless StartMembership ran).
	MembershipRegisters  int64 `json:"membership_registers"`
	MembershipHeartbeats int64 `json:"membership_heartbeats"`
	MembershipHBRejects  int64 `json:"membership_heartbeat_rejects"`
	ScrubSweeps          int64 `json:"scrub_sweeps"`
	ScrubReleased        int64 `json:"scrub_released"`
	ScrubReclaimed       int64 `json:"scrub_reclaimed"`
	ScrubDropped         int64 `json:"scrub_dropped"`
	ReplayedClaims       int64 `json:"replayed_claims"`
	ReplayDenied         int64 `json:"replay_denied"`

	// Concurrent-serving-path counters (see metrics.ServingStats).
	CoalescedMisses    int64   `json:"coalesced_misses"`
	PrefetchWorkers    int64   `json:"prefetch_workers"`
	PrefetchQueued     int64   `json:"prefetch_queued"`
	PrefetchCompleted  int64   `json:"prefetch_completed"`
	PrefetchDropped    int64   `json:"prefetch_dropped"`
	PrefetchFailed     int64   `json:"prefetch_failed"`
	PrefetchQueueDepth int64   `json:"prefetch_queue_depth"`
	BufferPoolGets     int64   `json:"buffer_pool_gets"`
	BufferPoolAllocs   int64   `json:"buffer_pool_allocs"`
	BufferReuseRate    float64 `json:"buffer_reuse_rate"`
}

// ServingStats gathers the concurrent-serving-path counters: coalesced
// misses, prefetch-pool activity, and wire buffer-pool reuse. (The buffer
// pool is process-wide — shared with the dkv directory protocol — so its
// numbers cover every wire user in the process, which is what an operator
// wants on a combined node.)
func (s *Server) ServingStats() metrics.ServingStats {
	out := metrics.ServingStats{
		CoalescedMisses: atomic.LoadInt64(&s.coalescedMisses),
	}
	if p := s.prefetch; p != nil {
		out.PrefetchQueued = atomic.LoadInt64(&p.queued)
		out.PrefetchCompleted = atomic.LoadInt64(&p.completed)
		out.PrefetchDropped = atomic.LoadInt64(&p.dropped)
		out.PrefetchFailed = atomic.LoadInt64(&p.failed)
		out.PrefetchQueueDepth = int64(p.depth())
		out.PrefetchWorkers = int64(p.workers)
	}
	gets, news, discards := wire.PoolStats()
	out.BufferGets, out.BufferAllocs, out.BufferDiscards = gets, news, discards
	vgets, vnews, vdiscards := wire.VecPoolStats()
	out.VecGets, out.VecAllocs, out.VecDiscards = vgets, vnews, vdiscards
	sl := s.payloads.slabStats()
	out.SlabAllocs = sl.allocs
	out.SlabRecycled = sl.recycled
	out.SlabAdopted = sl.adopted
	out.SlabFreed = sl.freed
	out.SlabBytes = sl.slabBytes
	out.PayloadBytes = sl.liveBytes
	out.PayloadPins = sl.pins
	out.PeerBatchRPCs, out.PeerBatchSamples = s.PeerBatchStats()
	out.MuxInflight = s.MuxInflight()
	return out
}

// OverloadStats gathers the overload-control counters: admission gate
// decisions, server-side deadline drops, and per-peer breaker lifecycle
// aggregated across peers. (Deliberately NOT part of MetricsSnapshot — the
// JSON document is byte-pinned for existing dashboards; these surface via
// Prometheus and this accessor.)
func (s *Server) OverloadStats() metrics.OverloadStats {
	out := metrics.OverloadStats{
		Shed:    atomic.LoadInt64(&s.shedCount),
		Expired: atomic.LoadInt64(&s.expiredCount),
	}
	if g := s.gate; g != nil {
		gs := g.Stats()
		out.GateState = gs.State.String()
		out.Inflight = gs.Inflight
		out.Admitted = gs.Admitted
		out.Brownouts = gs.Brownouts
		out.Sheds = gs.Sheds
	}
	for _, bs := range s.PeerBreakerStats() {
		if bs.State != overload.BreakerClosed {
			out.BreakersOpen++
		}
		out.BreakerTrips += bs.Trips
		out.BreakerFastFails += bs.FastFails
		out.BreakerProbes += bs.Probes
		out.BreakerRecoveries += bs.Recoveries
	}
	return out
}

// Metrics gathers a consistent snapshot of the policy counters (one short
// policyMu critical section) plus the lock-free serving counters.
func (s *Server) Metrics() MetricsSnapshot {
	s.policyMu.Lock()
	st := s.cache.Stats()
	snap := MetricsSnapshot{
		UptimeSeconds:     time.Since(s.start).Seconds(),
		Hits:              st.Hits,
		Misses:            st.Misses,
		Substitutions:     st.Substitutions,
		HitRatio:          st.HitRatio(),
		Inserts:           st.Inserts,
		Evictions:         st.Evictions,
		HCacheLen:         s.cache.HCacheLen(),
		LCacheLen:         s.cache.LCacheLen(),
		Tier2Len:          s.cache.Tier2Len(),
		PackagesLoaded:    s.cache.PackagesLoaded(),
		LoaderUsefulBytes: s.cache.LoaderUsefulBytes(),
		LoaderWastedBytes: s.cache.LoaderWastedBytes(),
		Tier2Hits:         s.cache.Tier2Hits(),
	}
	s.policyMu.Unlock()

	snap.PayloadLen = s.payloads.len()
	if s.dist != nil {
		snap.PeerServes = atomic.LoadInt64(&s.dist.peerServes)
		snap.PeerHits = atomic.LoadInt64(&s.dist.peerHits)
		mem := s.MembershipStats()
		snap.MembershipRegisters = mem.Registers
		snap.MembershipHeartbeats = mem.Heartbeats
		snap.MembershipHBRejects = mem.HeartbeatRejects
		snap.ScrubSweeps = mem.ScrubSweeps
		snap.ScrubReleased = mem.ScrubReleased
		snap.ScrubReclaimed = mem.ScrubReclaimed
		snap.ScrubDropped = mem.ScrubDropped
		snap.ReplayedClaims = mem.ReplayedClaims
		snap.ReplayDenied = mem.ReplayDenied
	}
	sv := s.ServingStats()
	snap.CoalescedMisses = sv.CoalescedMisses
	snap.PrefetchWorkers = sv.PrefetchWorkers
	snap.PrefetchQueued = sv.PrefetchQueued
	snap.PrefetchCompleted = sv.PrefetchCompleted
	snap.PrefetchDropped = sv.PrefetchDropped
	snap.PrefetchFailed = sv.PrefetchFailed
	snap.PrefetchQueueDepth = sv.PrefetchQueueDepth
	snap.BufferPoolGets = sv.BufferGets
	snap.BufferPoolAllocs = sv.BufferAllocs
	snap.BufferReuseRate = sv.BufferReuseRate()
	return snap
}

// MetricsHandler serves the snapshot on GET /metrics (any path): JSON by
// default (byte-compatible with previous releases), Prometheus text
// exposition with ?format=prom.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		if r.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := s.WritePrometheus(w); err != nil && s.Logf != nil {
				s.Logf("rpc: prometheus write: %v", err)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s.Metrics()); err != nil && s.Logf != nil {
			s.Logf("rpc: metrics encode: %v", err)
		}
	})
}

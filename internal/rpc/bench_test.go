package rpc

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"icache/internal/dataset"
	"icache/internal/dkv"
	"icache/internal/icache"
	"icache/internal/obs"
	"icache/internal/sampling"
	"icache/internal/storage"
	"icache/internal/trace"
)

// slowSource wraps a ByteSource with a fixed per-fetch service time,
// standing in for a congested PFS backend. It makes the miss path the
// bottleneck, which is exactly what the concurrent-serving benchmark needs
// to expose lock serialization: under a single global server lock, backend
// fetches cannot overlap, so adding clients adds no throughput.
type slowSource struct {
	inner   ByteSource
	latency time.Duration
	fetches int64
}

func (s *slowSource) Spec() dataset.Spec { return s.inner.Spec() }

func (s *slowSource) Fetch(id dataset.SampleID) ([]byte, error) {
	atomic.AddInt64(&s.fetches, 1)
	time.Sleep(s.latency)
	return s.inner.Fetch(id)
}

// benchServer builds a serving stack sized for a miss-heavy workload: no
// L-cache (every L-routed request goes to the backend), a deliberately slow
// byte source, and a small payload footprint so byte copies do not mask
// lock behavior.
func benchServer(b *testing.B, backendLatency time.Duration) (*Server, string, *slowSource) {
	b.Helper()
	spec := dataset.Spec{Name: "bench", NumSamples: 4096, MeanSampleBytes: 1024, Seed: 7}
	back, err := storage.NewBackend(spec, storage.OrangeFS())
	if err != nil {
		b.Fatal(err)
	}
	cfg := icache.DefaultConfig(spec.TotalBytes() / 10)
	cfg.EnableLCache = false // miss-heavy: uncached L-requests hit storage
	cacheSrv, err := icache.NewServer(back, cfg, sampling.DefaultIIS(), 11)
	if err != nil {
		b.Fatal(err)
	}
	inner, err := storage.NewDataSource(spec)
	if err != nil {
		b.Fatal(err)
	}
	src := &slowSource{inner: inner, latency: backendLatency}
	srv := NewServer(cacheSrv, src)
	srv.Logf = nil
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	b.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String(), src
}

// BenchmarkServeConcurrent measures end-to-end serving throughput against
// client count on a miss-heavy workload (every sample fetch pays a 200µs
// backend service time). One benchmark iteration is one GetBatch of
// batchSize samples; the reported samples/sec metric is the headline
// number. With the serving path properly parallel, throughput should scale
// with clients until the backend or the NIC saturates; a global server
// lock pins it flat.
func BenchmarkServeConcurrent(b *testing.B) {
	const (
		batchSize      = 16
		backendLatency = 200 * time.Microsecond
	)
	for _, clients := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			_, addr, _ := benchServer(b, backendLatency)
			spec := dataset.Spec{Name: "bench", NumSamples: 4096, MeanSampleBytes: 1024, Seed: 7}

			conns := make([]*Client, clients)
			for i := range conns {
				c, err := Dial(addr, 2*time.Second)
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				conns[i] = c
			}

			b.ResetTimer()
			var next int64
			var wg sync.WaitGroup
			errc := make(chan error, clients)
			for i := 0; i < clients; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(i)*1299709 + 1))
					ids := make([]dataset.SampleID, batchSize)
					for atomic.AddInt64(&next, 1) <= int64(b.N) {
						for j := range ids {
							ids[j] = dataset.SampleID(rng.Intn(spec.NumSamples))
						}
						if _, err := conns[i].GetBatch(ids); err != nil {
							errc <- err
							return
						}
					}
				}(i)
			}
			wg.Wait()
			b.StopTimer()
			select {
			case err := <-errc:
				b.Fatal(err)
			default:
			}
			elapsed := b.Elapsed().Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N*batchSize)/elapsed, "samples/sec")
			}
		})
	}
}

// discardConn satisfies net.Conn over a sink — the server-side hit-path
// benchmark drives the vectored serving path against it so the measurement
// isolates serve-side work (no client, no loopback socket).
type discardConn struct{ net.Conn }

func (discardConn) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkServeHitPath measures the server-side cost of one pure-hit
// GetBatch on the zero-copy path: request decode, policy verdict, slab
// pins, vectored framing, write. Run with -benchmem: the headline
// acceptance number is 0 allocs/op — a resident batch is served without a
// single heap allocation.
func BenchmarkServeHitPath(b *testing.B) {
	const (
		batchSize = 16
		hotSet    = 64
	)
	srv, addr, _ := benchServer(b, 0)

	var items []sampling.Item
	var hot []dataset.SampleID
	for id := dataset.SampleID(0); id < hotSet; id++ {
		items = append(items, sampling.Item{ID: id, IV: 5})
		hot = append(hot, id)
	}
	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.UpdateImportance(items); err != nil {
		b.Fatal(err)
	}
	if _, err := c.GetBatch(hot); err != nil {
		b.Fatal(err)
	}

	ids := make([]dataset.SampleID, batchSize)
	rng := rand.New(rand.NewSource(17))
	for j := range ids {
		ids[j] = dataset.SampleID(rng.Intn(hotSet))
	}
	req := encodeGetBatchRequest(ids)
	cs := &muxConnState{conn: discardConn{}, sem: make(chan struct{}, muxServerInflight)}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := srv.serveVecRequest(cs, 0, false, req, time.Time{}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N*batchSize)/elapsed, "samples/sec")
	}
}

// BenchmarkObsOverhead pins the cost of the observability layer on the
// concurrent serving path. Three configurations run the exact workload of
// BenchmarkServeConcurrent/clients=8:
//
//	off:    no registry, no tracer — the nil-recorder fast path. This must
//	        match BenchmarkServeConcurrent/clients=8 (it is the same code).
//	hists:  stage histograms armed (what -metrics-addr costs). Budget: the
//	        samples/sec delta vs off stays within ~3% — the gated
//	        time.Now() calls and striped histogram records are the only
//	        additions.
//	traced: histograms plus span recording with every request traced
//	        (1-in-1 sampling, far denser than any production -trace-sample
//	        setting), the worst case for envelope encode/decode cost.
//	armed:  the full decision-observability deployment — histograms, span
//	        tracing, the control-plane journal AND a 1s timeline ticker —
//	        i.e. what a production node runs with -metrics-addr and
//	        -trace-csv. Budget: within ~3% of traced, since the journal
//	        appends only on rare state transitions and the timeline
//	        collector runs once a second off the serving path.
//
// Archived via `make bench-obs` into BENCH_obs.json.
func BenchmarkObsOverhead(b *testing.B) {
	const (
		batchSize      = 16
		clients        = 8
		backendLatency = 200 * time.Microsecond
	)
	for _, mode := range []string{"off", "hists", "traced", "armed"} {
		b.Run(mode, func(b *testing.B) {
			srv, addr, _ := benchServer(b, backendLatency)
			spec := dataset.Spec{Name: "bench", NumSamples: 4096, MeanSampleBytes: 1024, Seed: 7}

			var clientTrc *trace.Recorder
			var sampler *obs.Sampler
			switch mode {
			case "hists":
				srv.EnableObs(obs.NewRegistry(), nil)
			case "traced", "armed":
				srv.EnableObs(obs.NewRegistry(), trace.NewRecorder(1<<16))
				clientTrc = trace.NewRecorder(1 << 16)
				sampler = obs.NewSampler(1)
			}
			if mode == "armed" {
				srv.SetJournal(obs.NewJournal(1024))
				tl := obs.NewTimeline(600, srv.TimelinePoint)
				tlStop := make(chan struct{})
				go tl.Run(time.Second, tlStop)
				defer close(tlStop)
			}

			conns := make([]*Client, clients)
			for i := range conns {
				c, err := Dial(addr, 2*time.Second)
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				if clientTrc != nil {
					c.EnableObs(nil, clientTrc, sampler)
				}
				conns[i] = c
			}

			b.ResetTimer()
			var next int64
			var wg sync.WaitGroup
			errc := make(chan error, clients)
			for i := 0; i < clients; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(i)*1299709 + 1))
					ids := make([]dataset.SampleID, batchSize)
					for atomic.AddInt64(&next, 1) <= int64(b.N) {
						for j := range ids {
							ids[j] = dataset.SampleID(rng.Intn(spec.NumSamples))
						}
						if _, err := conns[i].GetBatch(ids); err != nil {
							errc <- err
							return
						}
					}
				}(i)
			}
			wg.Wait()
			b.StopTimer()
			select {
			case err := <-errc:
				b.Fatal(err)
			default:
			}
			elapsed := b.Elapsed().Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N*batchSize)/elapsed, "samples/sec")
			}
		})
	}
}

// benchDistPair builds a two-node distributed deployment over loopback with
// a real TCP directory (round trips count here) and the given peer config on
// both nodes, mirroring startDistFixture at benchmark scale.
func benchDistPair(b *testing.B, cfg PeerConfig) ([2]*Server, [2]string) {
	b.Helper()
	spec := dataset.Spec{Name: "bench", NumSamples: 4096, MeanSampleBytes: 1024, Seed: 7}

	dir := dkv.NewDirectory()
	dirSrv := dkv.NewDirServer(dir)
	dirLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go dirSrv.Serve(dirLn)
	b.Cleanup(func() { dirSrv.Close() })

	var nodes [2]*Server
	var addrs [2]string
	var lns [2]net.Listener
	for n := 0; n < 2; n++ {
		back, err := storage.NewBackend(spec, storage.OrangeFS())
		if err != nil {
			b.Fatal(err)
		}
		c := icache.DefaultConfig(spec.TotalBytes() / 10)
		c.EnableLCache = false
		cacheSrv, err := icache.NewServer(back, c, sampling.DefaultIIS(), int64(n+11))
		if err != nil {
			b.Fatal(err)
		}
		source, err := storage.NewDataSource(spec)
		if err != nil {
			b.Fatal(err)
		}
		nodes[n] = NewServer(cacheSrv, source)
		nodes[n].Logf = nil
		lns[n], err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		addrs[n] = lns[n].Addr().String()
	}
	for n := 0; n < 2; n++ {
		dirClient, err := dkv.DialDir(dirLn.Addr().String(), 2*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		peer := map[dkv.NodeID]string{dkv.NodeID(1 - n): addrs[1-n]}
		nodes[n].EnableDistributed(dkv.NodeID(n), dirClient, peer)
		nodes[n].SetPeerConfig(cfg)
		go nodes[n].Serve(lns[n])
	}
	b.Cleanup(func() {
		nodes[0].Close()
		nodes[1].Close()
	})
	return nodes, addrs
}

// BenchmarkPeerHotSet is the before/after comparison of the batched remote
// data plane (archived via `make bench-peer` into BENCH_peer.json): eight
// clients hammer node B with mini-batches drawn from a hot set that node A
// owns, so every request is a remote-owned miss (remote hits are never
// admitted locally — the no-duplication invariant keeps the set on A).
//
//	serial:  PeerConfig.Batch=0, the pre-batching plane — per sample, one
//	         directory Lookup plus one PeerGet round trip.
//	batched: one directory multi-lookup and one opPeerGetBatch RPC per
//	         mini-batch, pipelined over the multiplexed peer connection.
//
// The headline samples/sec metric should improve by >= 3x batched vs
// serial; peer-rpcs/op reports the measured RPC amortization.
func BenchmarkPeerHotSet(b *testing.B) {
	const (
		batchSize = 16
		clients   = 8
		hotSet    = 64
	)
	for _, mode := range []struct {
		name string
		cfg  PeerConfig
	}{
		{"serial", PeerConfig{Batch: 0}},
		{"batched", PeerConfig{Batch: 256}},
	} {
		b.Run("mode="+mode.name, func(b *testing.B) {
			nodes, addrs := benchDistPair(b, mode.cfg)

			// Warm: node A fetches and claims the hot set; both nodes carry
			// the same H-list so node B serves the exact requested IDs.
			var items []sampling.Item
			var hot []dataset.SampleID
			for id := dataset.SampleID(0); id < hotSet; id++ {
				items = append(items, sampling.Item{ID: id, IV: 5})
				hot = append(hot, id)
			}
			cA, err := Dial(addrs[0], 2*time.Second)
			if err != nil {
				b.Fatal(err)
			}
			defer cA.Close()
			if err := cA.UpdateImportance(items); err != nil {
				b.Fatal(err)
			}
			if _, err := cA.GetBatch(hot); err != nil {
				b.Fatal(err)
			}

			conns := make([]*Client, clients)
			for i := range conns {
				c, err := Dial(addrs[1], 2*time.Second)
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				conns[i] = c
			}
			if err := conns[0].UpdateImportance(items); err != nil {
				b.Fatal(err)
			}

			rpcs0, _ := nodes[1].PeerBatchStats()
			b.ResetTimer()
			var next int64
			var wg sync.WaitGroup
			errc := make(chan error, clients)
			for i := 0; i < clients; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(i)*6700417 + 9))
					ids := make([]dataset.SampleID, batchSize)
					for atomic.AddInt64(&next, 1) <= int64(b.N) {
						for j := range ids {
							ids[j] = dataset.SampleID(rng.Intn(hotSet))
						}
						if _, err := conns[i].GetBatch(ids); err != nil {
							errc <- err
							return
						}
					}
				}(i)
			}
			wg.Wait()
			b.StopTimer()
			select {
			case err := <-errc:
				b.Fatal(err)
			default:
			}
			elapsed := b.Elapsed().Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N*batchSize)/elapsed, "samples/sec")
			}
			rpcs, _ := nodes[1].PeerBatchStats()
			b.ReportMetric(float64(rpcs-rpcs0)/float64(b.N), "peer-rpcs/op")
		})
	}
}

// BenchmarkServeHotSet is the coalescing stressor: all clients hammer a
// tiny id set, so concurrent misses on the same sample are the common
// case. With singleflight coalescing, K concurrent misses issue one
// backend read; without it they issue K.
func BenchmarkServeHotSet(b *testing.B) {
	const (
		batchSize      = 16
		hotSet         = 32
		backendLatency = 200 * time.Microsecond
	)
	for _, clients := range []int{1, 8} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			_, addr, src := benchServer(b, backendLatency)

			conns := make([]*Client, clients)
			for i := range conns {
				c, err := Dial(addr, 2*time.Second)
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				conns[i] = c
			}

			b.ResetTimer()
			var next int64
			var wg sync.WaitGroup
			errc := make(chan error, clients)
			for i := 0; i < clients; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(i)*15485863 + 3))
					ids := make([]dataset.SampleID, batchSize)
					for atomic.AddInt64(&next, 1) <= int64(b.N) {
						for j := range ids {
							ids[j] = dataset.SampleID(rng.Intn(hotSet))
						}
						if _, err := conns[i].GetBatch(ids); err != nil {
							errc <- err
							return
						}
					}
				}(i)
			}
			wg.Wait()
			b.StopTimer()
			select {
			case err := <-errc:
				b.Fatal(err)
			default:
			}
			elapsed := b.Elapsed().Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N*batchSize)/elapsed, "samples/sec")
				b.ReportMetric(float64(atomic.LoadInt64(&src.fetches))/float64(b.N*batchSize), "fetches/sample")
			}
		})
	}
}

package rpc

import (
	"io"
	"time"

	"icache/internal/obs"
	"icache/internal/overload"
)

// This file renders the server's full metrics surface in Prometheus text
// exposition format (stdlib-only, via obs.PromWriter). The JSON view
// (MetricsSnapshot) stays byte-compatible for dashboards that already
// scrape it; the Prometheus view is richer — it renders the *raw* stats
// families, including fields the JSON document never carried (Degraded,
// Rejections, the full membership lifecycle counters), plus every
// registered per-stage latency histogram.
//
// Family ordering is fixed code order and each family's lines are
// deterministic, so a scrape is byte-stable for unchanged counters — the
// exposition golden test pins the exact bytes.

// WritePrometheus writes the Prometheus text exposition of every metrics
// family: cache counters and occupancy, loader traffic, peer/distribution
// counters, resilience failure counters, membership lifecycle counters,
// concurrent-serving-path counters, and (when EnableObs ran) the
// per-stage latency histograms with p50/p95/p99 companion gauges.
func (s *Server) WritePrometheus(w io.Writer) error {
	p := obs.NewPromWriter(w)

	s.policyMu.Lock()
	st := s.cache.Stats()
	hLen, lLen, t2Len := s.cache.HCacheLen(), s.cache.LCacheLen(), s.cache.Tier2Len()
	pkgs := s.cache.PackagesLoaded()
	useful, wasted := s.cache.LoaderUsefulBytes(), s.cache.LoaderWastedBytes()
	t2Hits := s.cache.Tier2Hits()
	s.policyMu.Unlock()

	p.Gauge("icache_uptime_seconds", "seconds since the server started", time.Since(s.start).Seconds())

	// Cache family (metrics.CacheStats + occupancy).
	p.Counter("icache_cache_hits_total", "requests served from cached copies of the requested sample", float64(st.Hits))
	p.Counter("icache_cache_misses_total", "requests that went to backend storage", float64(st.Misses))
	p.Counter("icache_cache_substitutions_total", "requests served by a different cached sample", float64(st.Substitutions))
	p.Counter("icache_cache_degraded_total", "requests that fell back to the backend because a fault broke the preferred path", float64(st.Degraded))
	p.Counter("icache_cache_inserts_total", "samples admitted into the cache", float64(st.Inserts))
	p.Counter("icache_cache_evictions_total", "samples evicted to make room", float64(st.Evictions))
	p.Counter("icache_cache_rejections_total", "fetched samples the policy declined to admit", float64(st.Rejections))
	p.Counter("icache_cache_requests_total", "total sample requests (hits+misses+substitutions+degraded)", float64(st.Requests()))
	p.Gauge("icache_cache_hit_ratio", "fraction of requests served from memory (0 when no requests yet)", st.HitRatio())
	p.Gauge("icache_hcache_len", "samples resident in the H-cache region", float64(hLen))
	p.Gauge("icache_lcache_len", "samples resident in the L-cache region", float64(lLen))
	p.Gauge("icache_tier2_len", "samples spilled to the tier-2 region", float64(t2Len))
	p.Gauge("icache_payload_len", "payloads resident in the byte store", float64(s.payloads.len()))

	// Loader family.
	p.Counter("icache_loader_packages_total", "dynamic packages loaded by the background loader", float64(pkgs))
	p.Counter("icache_loader_useful_bytes_total", "loaded bytes that were requested before eviction", float64(useful))
	p.Counter("icache_loader_wasted_bytes_total", "loaded bytes evicted unused", float64(wasted))
	p.Counter("icache_tier2_hits_total", "misses served from the tier-2 spill region", float64(t2Hits))

	// Peer / resilience family (distribution disabled renders zeros).
	peerServes, peerHits := s.PeerStats()
	peerFailures, dirFailures := s.ResilienceStats()
	p.Counter("icache_peer_serves_total", "requests this node answered for peers", float64(peerServes))
	p.Counter("icache_peer_hits_total", "local misses served from a peer's cache", float64(peerHits))
	p.Counter("icache_resilience_peer_failures_total", "peer dials/reads that failed and were degraded around", float64(peerFailures))
	p.Counter("icache_resilience_dir_failures_total", "directory operations that failed and were degraded around", float64(dirFailures))

	// Membership family (metrics.MembershipStats; zeros unless
	// StartMembership ran).
	mem := s.MembershipStats()
	p.Counter("icache_membership_registers_total", "lease grants (first registrations and re-registrations)", float64(mem.Registers))
	p.Counter("icache_membership_heartbeats_total", "successful lease renewals", float64(mem.Heartbeats))
	p.Counter("icache_membership_heartbeat_rejects_total", "heartbeats arriving at/after lease expiry", float64(mem.HeartbeatRejects))
	p.Counter("icache_membership_suspects_total", "observed Live to Suspect transitions", float64(mem.Suspects))
	p.Counter("icache_membership_deaths_total", "observed transitions to Dead", float64(mem.Deaths))
	p.Counter("icache_membership_revivals_total", "registrations that revived a Suspect/Dead node", float64(mem.Revivals))
	p.Counter("icache_membership_reclaims_total", "claims that took over a Dead node's entry", float64(mem.Reclaims))
	p.Counter("icache_membership_purged_total", "Dead-owned directory entries garbage-collected", float64(mem.Purged))
	p.Counter("icache_membership_scrub_sweeps_total", "anti-entropy sweeps completed", float64(mem.ScrubSweeps))
	p.Counter("icache_membership_scrub_released_total", "orphaned directory entries released", float64(mem.ScrubReleased))
	p.Counter("icache_membership_scrub_reclaimed_total", "cached-but-unregistered samples re-claimed", float64(mem.ScrubReclaimed))
	p.Counter("icache_membership_scrub_dropped_total", "local copies dropped because another node owns the sample", float64(mem.ScrubDropped))
	p.Counter("icache_membership_replayed_claims_total", "ownership claims replayed from a checkpoint on rejoin", float64(mem.ReplayedClaims))
	p.Counter("icache_membership_replay_denied_total", "replayed claims denied (the survivor won)", float64(mem.ReplayDenied))

	// Concurrent-serving-path family (metrics.ServingStats).
	sv := s.ServingStats()
	p.Counter("icache_serving_coalesced_misses_total", "miss fetches that joined an in-flight fetch for the same sample", float64(sv.CoalescedMisses))
	p.Counter("icache_prefetch_queued_total", "loader-delivered samples accepted by the prefetch pool", float64(sv.PrefetchQueued))
	p.Counter("icache_prefetch_completed_total", "prefetches that finished", float64(sv.PrefetchCompleted))
	p.Counter("icache_prefetch_dropped_total", "deliveries discarded because the prefetch queue was full", float64(sv.PrefetchDropped))
	p.Counter("icache_prefetch_failed_total", "prefetch fetches that errored (sample stays lazy)", float64(sv.PrefetchFailed))
	p.Gauge("icache_prefetch_queue_depth", "current prefetch backlog", float64(sv.PrefetchQueueDepth))
	p.Gauge("icache_prefetch_workers", "configured prefetch pool size", float64(sv.PrefetchWorkers))
	p.Counter("icache_buffer_pool_gets_total", "pooled-buffer checkouts on the wire path", float64(sv.BufferGets))
	p.Counter("icache_buffer_pool_allocs_total", "checkouts that had to allocate (pool miss)", float64(sv.BufferAllocs))
	p.Gauge("icache_buffer_reuse_rate", "fraction of checkouts served without allocating (0 when none yet)", sv.BufferReuseRate())
	p.Counter("icache_peer_batch_rpcs_total", "scatter-gather peer batch round trips issued", float64(sv.PeerBatchRPCs))
	p.Counter("icache_peer_batch_samples_total", "samples carried by batched peer RPCs", float64(sv.PeerBatchSamples))
	p.Gauge("icache_mux_inflight", "multiplexed request frames currently being served", float64(sv.MuxInflight))
	p.Counter("icache_buffer_pool_discards_total", "pooled-buffer returns dropped for exceeding the retained-capacity cap", float64(sv.BufferDiscards))
	p.Counter("icache_vec_pool_gets_total", "pooled response-vector checkouts on the zero-copy path", float64(sv.VecGets))
	p.Counter("icache_vec_pool_allocs_total", "vector checkouts that had to allocate (pool miss)", float64(sv.VecAllocs))
	p.Counter("icache_vec_pool_discards_total", "vector returns dropped for exceeding the retained-capacity cap", float64(sv.VecDiscards))

	// Slab payload-store family (zero-copy hit path).
	p.Counter("icache_slab_allocs_total", "arena slabs carved from the heap", float64(sv.SlabAllocs))
	p.Counter("icache_slab_recycled_total", "arena slabs recycled after their last reader drained", float64(sv.SlabRecycled))
	p.Counter("icache_slab_adopted_total", "payloads adopted zero-copy as dedicated slabs", float64(sv.SlabAdopted))
	p.Counter("icache_slab_freed_total", "dedicated slabs released to the garbage collector", float64(sv.SlabFreed))
	p.Gauge("icache_slab_bytes", "bytes held in arena slabs (including the freelist)", float64(sv.SlabBytes))
	p.Gauge("icache_payload_bytes", "bytes of live payload entries in the store", float64(sv.PayloadBytes))
	p.Counter("icache_payload_pins_total", "reader pins taken on slab-backed payloads", float64(sv.PayloadPins))

	// Overload-control family (metrics.OverloadStats; zeros with no gate
	// or breakers configured). The gate state renders as a 0/1/2 gauge:
	// 0=normal, 1=brownout, 2=shed.
	ov := s.OverloadStats()
	var gateState float64
	switch ov.GateState {
	case overload.Brownout.String():
		gateState = 1
	case overload.Shed.String():
		gateState = 2
	}
	p.Gauge("icache_overload_gate_state", "admission ladder position (0=normal, 1=brownout, 2=shed)", gateState)
	p.Gauge("icache_overload_inflight", "requests currently holding an admission slot", float64(ov.Inflight))
	p.Counter("icache_overload_admitted_total", "requests the admission gate let through", float64(ov.Admitted))
	p.Counter("icache_overload_shed_total", "requests rejected with a retry-after hint", float64(ov.Shed))
	p.Counter("icache_overload_expired_total", "requests dropped server-side with their deadline budget spent", float64(ov.Expired))
	p.Counter("icache_overload_brownouts_total", "entries into the brownout state", float64(ov.Brownouts))
	p.Counter("icache_overload_sheds_total", "entries into the shed state", float64(ov.Sheds))
	p.Gauge("icache_overload_breakers_open", "peer circuit breakers currently open or half-open", float64(ov.BreakersOpen))
	p.Counter("icache_overload_breaker_trips_total", "peer breaker closed-to-open transitions", float64(ov.BreakerTrips))
	p.Counter("icache_overload_breaker_fast_fails_total", "peer calls rejected by an open breaker without touching the network", float64(ov.BreakerFastFails))
	p.Counter("icache_overload_breaker_probes_total", "half-open probe calls issued to suspect peers", float64(ov.BreakerProbes))
	p.Counter("icache_overload_breaker_recoveries_total", "peer breakers re-closed by a successful probe", float64(ov.BreakerRecoveries))

	// Decision-level introspection family (metrics.DecisionStats): reason-
	// coded evictions, admission provenance, the prefetch-outcome ledger,
	// substitution quality, and the epoch-boundary residency snapshot.
	d := s.DecisionStats()
	p.Counter("icache_evict_capacity_total", "evictions by the policy's own insert pressure", float64(d.EvictCapacity))
	p.Counter("icache_evict_dead_owner_total", "drops because the directory credits another node", float64(d.EvictDeadOwner))
	p.Counter("icache_evict_scrub_total", "drops by the anti-entropy scrubber", float64(d.EvictScrub))
	p.Counter("icache_evict_checkpoint_denied_total", "restored residents dropped on a denied ownership replay", float64(d.EvictCheckpointDenied))
	p.Counter("icache_evict_reasoned_total", "all removals (reason-coded counters sum to this)", float64(d.EvictTotal))
	p.Counter("icache_admit_fetch_total", "payload admissions driven by foreground fetches", float64(d.AdmitFetch))
	p.Counter("icache_admit_prefetch_total", "payload admissions driven by the prefetch pool", float64(d.AdmitPrefetch))
	p.Counter("icache_admit_rehydrate_total", "payload admissions from checkpoint rehydration", float64(d.AdmitRehydrate))
	p.Counter("icache_admit_peer_total", "payload admissions of peer-fetched bytes (0 while the no-duplication invariant holds)", float64(d.AdmitPeer))
	p.Counter("icache_prefetch_issued_total", "prefetch deliveries offered to the pool", float64(d.PrefetchIssued))
	p.Counter("icache_prefetch_in_time_total", "prefetched payloads that served a request before anything else happened", float64(d.PrefetchInTime))
	p.Counter("icache_prefetch_late_total", "prefetches the foreground beat to the fetch", float64(d.PrefetchLate))
	p.Counter("icache_prefetch_wasted_total", "prefetched payloads evicted or epoch-swept untouched", float64(d.PrefetchWasted))
	p.Counter("icache_prefetch_outcome_dropped_total", "prefetch deliveries dropped at enqueue plus failed fetches", float64(d.PrefetchDropped))
	p.Gauge("icache_prefetch_timeliness_ratio", "in-time / (in-time + late + wasted); 0 before any prefetch resolves", d.PrefetchTimeliness())
	p.Counter("icache_substitution_exact_total", "substitutions served by the same-region L-cache walk", float64(d.SubExact))
	p.Counter("icache_substitution_fallback_total", "substitutions served by the cross-region H-resident fallback", float64(d.SubFallback))
	p.Gauge("icache_epoch", "training epochs the cache has crossed", float64(d.Epoch))
	p.Gauge("icache_epoch_hcache_len", "H-cache residents at the last epoch boundary", float64(d.EpochHCount))
	p.Gauge("icache_epoch_lcache_len", "L-cache residents at the last epoch boundary", float64(d.EpochLCount))
	p.Gauge("icache_epoch_hcache_bytes", "H-cache bytes at the last epoch boundary", float64(d.EpochHBytes))
	p.Gauge("icache_epoch_lcache_bytes", "L-cache bytes at the last epoch boundary", float64(d.EpochLBytes))

	// Clairvoyant-planner family (zeros while the planner is off). The
	// demand-fetch counter is the headline: cold misses the plan failed to
	// pre-place.
	ps := s.PlanStats()
	p.Gauge("icache_plan_epoch", "epoch the current prefetch plan was installed for", float64(ps.Epoch))
	p.Gauge("icache_plan_planned", "entries admitted to the current epoch's prefetch plan", float64(ps.Planned))
	p.Gauge("icache_plan_completed", "current-epoch plan entries drained", float64(ps.Completed))
	p.Gauge("icache_plan_remaining", "current-epoch plan entries still queued", float64(ps.Remaining))
	p.Counter("icache_plan_entries_total", "plan entries admitted across all epochs", float64(ps.EntriesTotal))
	p.Counter("icache_plan_completed_entries_total", "plan entries drained across all epochs", float64(ps.CompletedTotal))
	p.Counter("icache_plan_skipped_resident_total", "plan entries skipped because their bytes were already local", float64(ps.SkippedResident))
	p.Counter("icache_plan_skipped_cluster_total", "plan entries skipped because a live peer already owned them", float64(ps.SkippedCluster))
	p.Counter("icache_plan_preplace_sent_total", "plan entries accepted by their future owner nodes", float64(ps.PreplaceSent))
	p.Counter("icache_plan_preplace_recv_total", "plan entries accepted from peer planners", float64(ps.PreplaceRecv))
	p.Counter("icache_plan_reroutes_total", "plan entries re-routed locally after a failed pre-place", float64(ps.Reroutes))
	p.Counter("icache_plan_throttle_waits_total", "bandwidth-budget waits in the plan drain", float64(ps.ThrottleWaits))
	p.Gauge("icache_plan_budget_bytes_per_sec", "current planned-drain bandwidth budget", float64(ps.BudgetBytesPerSec))
	p.Counter("icache_demand_fetches_total", "backend reads issued on the demand path (cold misses)", float64(s.DemandFetches()))

	// Event-journal and trace-ring retention family.
	p.Counter("icache_journal_events_total", "control-plane events appended to the journal", float64(s.journal.Total()))
	p.Counter("icache_journal_dropped_total", "journal events overwritten by ring wraparound", float64(s.journal.Dropped()))
	var traceDropped uint64
	if t := s.obs.tracer; t != nil {
		traceDropped = t.Total() - uint64(t.Len())
	}
	p.Counter("icache_trace_dropped_spans_total", "trace spans overwritten by ring wraparound", float64(traceDropped))

	// Per-stage latency histograms (nil registry emits nothing).
	p.Registry("icache_stage", s.obs.reg)

	return p.Err()
}

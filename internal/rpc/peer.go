package rpc

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"icache/internal/dataset"
	"icache/internal/dkv"
	"icache/internal/metrics"
	"icache/internal/obs"
	"icache/internal/overload"
	"icache/internal/retry"
	"icache/internal/singleflight"
	"icache/internal/trace"
)

// This file adds the distributed deployment of §III-E to the network
// server: nodes share a dkv directory service (which sample lives where)
// and answer PeerGet requests for samples they cache, so a miss on one node
// can be served from another node's DRAM instead of the backend.
//
// Every remote dependency here is treated as unreliable: directory and peer
// failures are counted, the failing peer connection is discarded (the next
// request re-dials), and the caller always degrades to a backend read —
// a sick peer must never stall the training pipeline.
//
// # Locking contract
//
// Everything in this file runs OUTSIDE the server's policy lock. The old
// single-mutex server had resolveRemote/claimOwnership "called with s.mu
// held", dropping and reacquiring it around the network call — a contract
// the sharded serving path makes obsolete and forbids:
//
//   - resolveRemote and claimOwnership perform directory and peer I/O and
//     must be called with NO server lock held (the miss path calls them
//     from inside a singleflight execution, which holds only the flight's
//     own per-key slot).
//   - distState.mu guards only the peer-connection cache. It is a leaf
//     lock held across nothing but map access and Dial; it never nests
//     with policyMu or payload-store shard locks.
//   - handlePeerGet touches only the payload store (shard-locked reads)
//     and atomics — peer reads never take policyMu and never mutate this
//     node's cache policy state, so a peer storm cannot stall local
//     serving decisions.
//   - releaseOwnership may be called under policyMu (the eviction
//     observer fires it); the directory write is pushed to a goroutine so
//     no network I/O ever happens under the lock.

// opPeerGet fetches a resident sample's payload from a peer cache node.
const opPeerGet = 6

// PeerConfig tunes the batched remote data plane (the -peer-batch and
// -peer-inflight flags). SetPeerConfig installs it before Serve.
type PeerConfig struct {
	// Batch caps how many of a mini-batch's remote misses ride one
	// opPeerGetBatch RPC. 0 disables batching entirely: the miss path
	// falls back to the serial per-sample resolvePayload flow (the
	// "before" mode of the bench-peer comparison).
	Batch int
	// Inflight bounds in-flight frames per multiplexed peer connection
	// (<= 0 selects the client default).
	Inflight int
	// LegacyPoolConns is the per-peer connection-pool size used when a
	// peer negotiates DOWN to the legacy one-frame-at-a-time transport:
	// a small pool recovers some concurrency that mux framing would have
	// provided (<= 0 selects 2; mux-capable peers always use 1 connection).
	LegacyPoolConns int
	// RPCTimeout bounds every peer round trip (<= 0 selects 1s): one hung
	// replica can stall a scatter-gather chunk for at most this long before
	// the chunk degrades to the backend.
	RPCTimeout time.Duration
	// BreakerThreshold is the consecutive-failure count that trips a peer's
	// circuit breaker (0 selects the overload-package default; < 0 disables
	// breakers entirely).
	BreakerThreshold int
	// BreakerCooldown is the open-state cooldown before a half-open probe
	// (<= 0 selects the overload-package default).
	BreakerCooldown time.Duration
}

// defaultPeerConfig is what EnableDistributed installs until SetPeerConfig
// overrides it.
func defaultPeerConfig() PeerConfig {
	return PeerConfig{Batch: 256, Inflight: defaultMuxInflight, LegacyPoolConns: 2,
		RPCTimeout: defaultPeerRPCTimeout}
}

// defaultPeerRPCTimeout is the per-call bound on peer RPCs: long enough for
// a loaded peer to answer a full batch, short enough that a black-holed
// replica costs one bounded stall, not a TCP timeout.
const defaultPeerRPCTimeout = time.Second

func (c PeerConfig) withDefaults() PeerConfig {
	if c.Batch < 0 {
		c.Batch = 0
	}
	if c.Inflight <= 0 {
		c.Inflight = defaultMuxInflight
	}
	if c.LegacyPoolConns <= 0 {
		c.LegacyPoolConns = 2
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = defaultPeerRPCTimeout
	}
	return c
}

// SetPeerConfig tunes the batched remote data plane. Call after
// EnableDistributed and before Serve (the serving path reads the config
// without synchronization). A no-op on a non-distributed server.
func (s *Server) SetPeerConfig(cfg PeerConfig) {
	if s.dist == nil {
		return
	}
	s.dist.peerCfg = cfg.withDefaults()
}

// peerSlot is one peer's connection set: a single multiplexed client when
// the peer speaks capMux, or a small round-robin pool of legacy clients
// when it negotiated down.
type peerSlot struct {
	clients []*Client
	next    int
}

// distState is the optional distributed wiring of a Server.
type distState struct {
	nodeID    dkv.NodeID
	dir       dkv.Service
	peerAddrs map[dkv.NodeID]string
	peerCfg   PeerConfig

	// journal, when set, receives breaker-transition events (copied from
	// the server's journal at EnableDistributed / SetJournal time).
	journal *obs.Journal

	mu    sync.Mutex
	peers map[dkv.NodeID]*peerSlot
	// breakers holds one circuit breaker per peer NODE (not per client):
	// the breaker must survive dropPeer/redial churn, or a flapping peer
	// would reset its own failure count by breaking connections. Guarded by
	// mu for map access; the Breaker itself is internally synchronized.
	breakers map[dkv.NodeID]*overload.Breaker

	peerServes   int64 // requests this node answered for peers (atomic)
	peerHits     int64 // local misses served from a peer's cache (atomic)
	peerFailures int64 // peer dials/reads that failed (atomic)
	dirFailures  int64 // directory operations that failed (atomic)

	peerBatchRPCs    int64 // opPeerGetBatch RPCs issued to peers (atomic)
	peerBatchSamples int64 // samples carried by those RPCs (atomic)

	// Wall-clock membership loop state (see lifecycle.go); memStop is nil
	// until StartMembership.
	memCfg   MembershipConfig
	memStop  chan struct{}
	memWG    sync.WaitGroup
	memMu    sync.Mutex // guards mem, lastBeat, scrubMark
	mem      metrics.MembershipStats
	lastBeat time.Time
	// scrubMark is the anti-entropy watermark into this node's sorted
	// resident set (bounded sweeps eventually cover everything).
	scrubMark int
}

// EnableDistributed joins the server to a directory service and a peer set.
// nodeID must be unique across the deployment; peerAddrs maps the *other*
// nodes' IDs to their cache-service addresses. dir is typically a
// *dkv.DirClient, but any dkv.Service works — including a fault-injecting
// faults.Dir in chaos tests. Call before Serve.
func (s *Server) EnableDistributed(nodeID dkv.NodeID, dir dkv.Service, peerAddrs map[dkv.NodeID]string) {
	s.dist = &distState{
		nodeID:    nodeID,
		dir:       dir,
		peerAddrs: peerAddrs,
		peerCfg:   defaultPeerConfig(),
		peers:     make(map[dkv.NodeID]*peerSlot),
		breakers:  make(map[dkv.NodeID]*overload.Breaker),
		journal:   s.journal,
	}
}

// breakerLocked returns (creating on demand) the node's circuit breaker.
// Caller holds d.mu. Returns nil when breakers are disabled
// (BreakerThreshold < 0).
func (d *distState) breakerLocked(node dkv.NodeID) *overload.Breaker {
	if d.peerCfg.BreakerThreshold < 0 {
		return nil
	}
	b, ok := d.breakers[node]
	if !ok {
		b = overload.NewBreaker(overload.BreakerConfig{
			Threshold: d.peerCfg.BreakerThreshold,
			Cooldown:  d.peerCfg.BreakerCooldown,
		})
		if j := d.journal; j != nil {
			peer := node
			b.OnStateChange(func(old, next overload.BreakerState) {
				// Runs under the breaker mutex; the journal's striped
				// append is the only lock taken.
				j.Add(obs.EventBreaker, int64(peer), int64(old), int64(next),
					"peer breaker "+old.String()+"→"+next.String())
			})
		}
		d.breakers[node] = b
	}
	return b
}

// PeerBreakerStats snapshots every peer's circuit breaker state (nil when
// distribution is disabled).
func (s *Server) PeerBreakerStats() map[dkv.NodeID]overload.BreakerStats {
	if s.dist == nil {
		return nil
	}
	s.dist.mu.Lock()
	defer s.dist.mu.Unlock()
	if len(s.dist.breakers) == 0 {
		return nil
	}
	out := make(map[dkv.NodeID]overload.BreakerStats, len(s.dist.breakers))
	for node, b := range s.dist.breakers {
		out[node] = b.Stats()
	}
	return out
}

// PeerStats reports (requests served for peers, local misses served by
// peers); zeros when distribution is disabled.
func (s *Server) PeerStats() (served, hits int64) {
	if s.dist == nil {
		return 0, 0
	}
	return atomic.LoadInt64(&s.dist.peerServes), atomic.LoadInt64(&s.dist.peerHits)
}

// ResilienceStats reports (peer failures, directory failures) — remote
// operations that failed and were degraded around; zeros when distribution
// is disabled.
func (s *Server) ResilienceStats() (peerFailures, dirFailures int64) {
	if s.dist == nil {
		return 0, 0
	}
	return atomic.LoadInt64(&s.dist.peerFailures), atomic.LoadInt64(&s.dist.dirFailures)
}

// peer returns a (cached) client connection to the given node. Peer clients
// use the tight retry.Peer policy: degrading to the backend beats waiting.
// A mux-capable peer is served by ONE pipelined connection; a peer that
// negotiated down to legacy framing grows a small round-robin pool
// (PeerConfig.LegacyPoolConns) so concurrent miss batches don't fully
// serialize behind one in-flight frame.
func (d *distState) peer(node dkv.NodeID) (*Client, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	slot, ok := d.peers[node]
	if !ok {
		slot = &peerSlot{}
		d.peers[node] = slot
	}
	target := 1
	if len(slot.clients) > 0 && !slot.clients[0].Muxed() {
		target = d.peerCfg.LegacyPoolConns
		if target < 1 {
			target = 1
		}
	}
	if len(slot.clients) < target || len(slot.clients) == 0 {
		addr, ok := d.peerAddrs[node]
		if !ok {
			return nil, fmt.Errorf("rpc: no address for peer node %d", node)
		}
		c, err := DialConfigured(addr, DialConfig{
			Timeout:     2 * time.Second,
			Policy:      retry.Peer(),
			MuxInflight: d.peerCfg.Inflight,
			RPCTimeout:  d.peerCfg.RPCTimeout,
			Breaker:     d.breakerLocked(node),
		})
		if err != nil {
			// A failed dial is a peer failure too: report it so a DEAD peer
			// (not just a hung one) trips its breaker and fails fast.
			if b := d.breakerLocked(node); b != nil {
				b.Report(time.Now(), false)
			}
			if len(slot.clients) > 0 {
				// Pool growth failed; fall back to an existing connection.
				slot.next++
				return slot.clients[slot.next%len(slot.clients)], nil
			}
			return nil, err
		}
		slot.clients = append(slot.clients, c)
		return c, nil
	}
	slot.next++
	return slot.clients[slot.next%len(slot.clients)], nil
}

// isConnFailure reports whether a peer RPC error indicates a poisoned
// connection (worth a dropPeer + redial). Overload rejections and deadline
// expiries arrive over a perfectly healthy exchange — redialing on them
// would add dial churn to a peer that is busy shedding load.
func isConnFailure(err error) bool {
	return !overload.IsOverload(err) && !errors.Is(err, ErrDeadlineExceeded)
}

// dropPeer discards a cached peer client after a failure so the next
// request re-dials instead of reusing a poisoned connection.
func (d *distState) dropPeer(node dkv.NodeID, c *Client) {
	d.mu.Lock()
	if slot, ok := d.peers[node]; ok {
		for i, cur := range slot.clients {
			if cur == c {
				slot.clients = append(slot.clients[:i], slot.clients[i+1:]...)
				break
			}
		}
		if len(slot.clients) == 0 {
			delete(d.peers, node)
		}
	}
	d.mu.Unlock()
	c.Close()
}

// closePeers tears down cached peer connections (on server Close).
func (d *distState) closePeers() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, slot := range d.peers {
		for _, c := range slot.clients {
			c.Close()
		}
	}
	d.peers = make(map[dkv.NodeID]*peerSlot)
}

// PeerGet asks a cache node for a resident sample's payload. The second
// return reports whether the node had it; a miss is not an error (the
// caller falls back to the backend).
func (c *Client) PeerGet(id dataset.SampleID) ([]byte, bool, error) {
	return c.PeerGetCtx(id, obs.TraceCtx{})
}

// PeerGetCtx is PeerGet carrying a trace context addressed to the peer
// (the caller passes its own context's Next()). A zero context sends the
// plain, envelope-free request.
func (c *Client) PeerGetCtx(id dataset.SampleID, ctx obs.TraceCtx) ([]byte, bool, error) {
	return c.PeerGetDeadline(id, ctx, time.Time{})
}

// PeerGetDeadline is PeerGetCtx bounded by the originating request's
// deadline: the remaining budget rides a deadline envelope so the peer can
// drop the read server-side once it is unservable, and the local wait is
// cut off at the same instant. A zero deadline falls back to the client's
// configured RPCTimeout.
func (c *Client) PeerGetDeadline(id dataset.SampleID, ctx obs.TraceCtx, dl time.Time) ([]byte, bool, error) {
	var e buffer
	e.u8(opPeerGet)
	e.i64(int64(id))
	req := e.payload()
	if ctx.Valid() {
		req = WrapTraced(req, ctx)
	}
	if budget, ok := remainingBudget(dl, time.Now()); ok {
		req = encodeDeadlineRequest(budget, req)
	}
	// The pooled response buffer is intentionally dropped, not recycled:
	// the payload is handed out by reference with an unbounded lifetime.
	d, _, err := c.roundTripDeadline(req, c.tightenDeadline(dl))
	if err != nil {
		return nil, false, err
	}
	if d.u8() == 0 {
		return nil, false, d.err()
	}
	payload := d.bytes()
	return payload, true, d.err()
}

// handlePeerGet serves opPeerGet: payload-store lookup only — peer reads
// must not mutate this node's cache policy state, and they never take
// policyMu (shard read lock only). Traced peer reads record a KindRPCRecv
// span at this node's hop.
func (s *Server) handlePeerGet(d *reader, e *buffer, ctx obs.TraceCtx) {
	var t0 time.Time
	if s.obs.tracing(ctx) {
		t0 = time.Now()
	}
	id := dataset.SampleID(d.i64())
	if err := d.err(); err != nil {
		encodeErrorResponseInto(e, err.Error())
		return
	}
	payload, ok := s.payloads.get(id)
	if ok && s.dist != nil {
		atomic.AddInt64(&s.dist.peerServes, 1)
	}
	e.u8(statusOK)
	if !ok {
		e.u8(0)
	} else {
		e.u8(1)
		e.bytes(payload)
	}
	if !t0.IsZero() {
		s.span(trace.KindRPCRecv, id, 1, ctx, time.Since(t0))
	}
}

// PeerGetBatch asks a peer cache node for many resident samples in one
// round trip. The result is aligned with ids: out[i] is the payload when
// the peer had ids[i], nil when it did not (a peer miss is not an error).
// Against a peer that negotiated down to the legacy transport the call
// degrades to serial per-sample PeerGet round trips — mixed-version
// clusters lose the batching win but keep working.
func (c *Client) PeerGetBatch(ids []dataset.SampleID, ctx obs.TraceCtx) ([][]byte, error) {
	return c.PeerGetBatchDeadline(ids, ctx, time.Time{})
}

// PeerGetBatchDeadline is PeerGetBatch bounded by the originating request's
// deadline (see PeerGetDeadline). A zero deadline falls back to the
// client's configured RPCTimeout.
func (c *Client) PeerGetBatchDeadline(ids []dataset.SampleID, ctx obs.TraceCtx, dl time.Time) ([][]byte, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	if !c.Muxed() {
		// Negotiated down (the peer predates opPeerGetBatch) or pinned to
		// the legacy transport by DisableMux: per-sample round trips.
		return c.peerGetBatchSerial(ids, ctx, dl)
	}
	req := encodePeerGetBatchRequest(ids)
	if ctx.Valid() {
		req = WrapTraced(req, ctx)
	}
	if budget, ok := remainingBudget(dl, time.Now()); ok {
		req = encodeDeadlineRequest(budget, req)
	}
	// Payloads are handed out by reference, so the pooled response buffer
	// is dropped rather than recycled (same contract as roundTrip).
	d, _, err := c.roundTripDeadline(req, c.tightenDeadline(dl))
	if err != nil {
		return nil, err
	}
	return decodePeerGetBatchResponse(d, len(ids))
}

// peerGetBatchSerial is the interop fallback: one legacy round trip per id.
func (c *Client) peerGetBatchSerial(ids []dataset.SampleID, ctx obs.TraceCtx, dl time.Time) ([][]byte, error) {
	out := make([][]byte, len(ids))
	for i, id := range ids {
		p, ok, err := c.PeerGetDeadline(id, ctx, dl)
		if err != nil {
			return nil, err
		}
		if ok {
			out[i] = p
		}
	}
	return out, nil
}

// handlePeerGetBatch serves opPeerGetBatch: per-id payload-store lookups
// only — exactly handlePeerGet's contract (never policyMu, never a cache
// mutation), amortized over one frame. Response entries align with the
// request ids.
func (s *Server) handlePeerGetBatch(d *reader, e *buffer, ctx obs.TraceCtx) {
	var t0 time.Time
	if s.obs.tracing(ctx) {
		t0 = time.Now()
	}
	ids, err := decodePeerGetBatchRequest(d)
	if err != nil {
		encodeErrorResponseInto(e, err.Error())
		return
	}
	e.u8(statusOK)
	e.u32(uint32(len(ids)))
	served := 0
	for _, id := range ids {
		if payload, ok := s.payloads.get(id); ok {
			e.u8(1)
			e.bytes(payload)
			served++
		} else {
			e.u8(0)
		}
	}
	if served > 0 && s.dist != nil {
		atomic.AddInt64(&s.dist.peerServes, int64(served))
	}
	if !t0.IsZero() {
		s.span(trace.KindRPCRecv, 0, int64(len(ids)), ctx, time.Since(t0))
	}
}

// resolveMissBatch is the scatter-gather heart of the batched miss path:
// it resolves every singleflight key this request leads, using one
// directory multi-lookup and one batched peer RPC per owning node, and
// GUARANTEES every key is finished exactly once on all paths (a leaked
// leader key would deadlock every waiter). Called with no server lock
// held; all peer/directory I/O happens outside locks per the contract at
// the top of this file.
func (s *Server) resolveMissBatch(ids []dataset.SampleID, calls map[dataset.SampleID]*singleflight.Call, ctx obs.TraceCtx, dl time.Time) {
	finish := func(id dataset.SampleID, p []byte, err error) {
		s.flight.Finish(int64(id), calls[id], p, err)
	}

	// Re-check the store under the flight happens-before edge: a racing
	// fetch may have filled entries between the miss scan and our Begin.
	var remaining []dataset.SampleID
	for _, id := range ids {
		if p, ok := s.payloads.get(id); ok {
			finish(id, p, nil)
		} else {
			remaining = append(remaining, id)
		}
	}
	if len(remaining) == 0 {
		return
	}

	// One directory round trip answers ownership for the whole batch. A
	// directory failure degrades every id to a backend read (counted), the
	// same way a failed per-sample Lookup used to.
	dist := s.dist
	owners := s.dirLookupBatch(dist, remaining, ctx, dl)

	local := make([]dataset.SampleID, 0, len(remaining))
	groups := make(map[dkv.NodeID][]dataset.SampleID)
	for i, id := range remaining {
		if owners != nil && owners[i].Found && owners[i].Node != dist.nodeID {
			groups[owners[i].Node] = append(groups[owners[i].Node], id)
		} else {
			local = append(local, id)
		}
	}

	// Scatter: one goroutine per owning node (chunked at PeerConfig.Batch),
	// so peer RPC count per mini-batch is O(owning nodes), not O(misses).
	// Each chunk's remote hits are finished as soon as that peer answers;
	// its misses and failures join the backend fallback list.
	var wg sync.WaitGroup
	var fbMu sync.Mutex
	var fallback []dataset.SampleID
	batchCap := dist.peerCfg.Batch
	for node, group := range groups {
		for start := 0; start < len(group); start += batchCap {
			end := start + batchCap
			if end > len(group) {
				end = len(group)
			}
			chunk := group[start:end]
			wg.Add(1)
			go func(node dkv.NodeID, chunk []dataset.SampleID) {
				defer wg.Done()
				miss := s.peerFetchBatch(node, chunk, calls, ctx, dl)
				if len(miss) > 0 {
					fbMu.Lock()
					fallback = append(fallback, miss...)
					fbMu.Unlock()
				}
			}(node, chunk)
		}
	}
	wg.Wait()

	// Gather the remainder from backend storage, in deterministic order.
	local = append(local, fallback...)
	sort.Slice(local, func(i, j int) bool { return local[i] < local[j] })
	measure := s.obs.histsOn() || s.obs.tracing(ctx)
	for _, id := range local {
		var tFetch time.Time
		if measure || s.plan != nil {
			tFetch = time.Now()
		}
		p, err := s.source.Fetch(id)
		if !tFetch.IsZero() {
			dur := time.Since(tFetch)
			if measure {
				s.obs.backend.Record(dur)
				s.span(trace.KindBackend, id, 0, ctx, dur)
			}
			if s.plan != nil && err == nil {
				s.observeBackend(len(p), dur)
			}
		}
		if err != nil {
			finish(id, nil, err)
			continue
		}
		atomic.AddInt64(&s.demandFetches, 1)
		s.admit(id, p, provFetch)
		finish(id, p, nil)
	}
}

// peerFetchBatch issues one opPeerGetBatch RPC to node for ids, finishing
// the singleflight key of every sample the peer returned (after dropping
// any local duplicate copies under one policyMu hold — the no-duplication
// hygiene of the serial path, amortized). It returns the ids the peer did
// NOT satisfy; any transport failure degrades the whole chunk to the
// backend, exactly like a failed per-sample PeerGet.
func (s *Server) peerFetchBatch(node dkv.NodeID, ids []dataset.SampleID, calls map[dataset.SampleID]*singleflight.Call, ctx obs.TraceCtx, dl time.Time) []dataset.SampleID {
	dist := s.dist
	// An already-spent budget skips the peer RPC outright — the backend
	// fallback still runs, because every singleflight key this chunk leads
	// MUST be finished (waiters would deadlock otherwise); the response is
	// late either way, so conservation beats a doomed round trip.
	if !dl.IsZero() && !time.Now().Before(dl) {
		return ids
	}
	peer, err := dist.peer(node)
	if err != nil {
		atomic.AddInt64(&dist.peerFailures, 1)
		return ids
	}
	atomic.AddInt64(&dist.peerBatchRPCs, 1)
	atomic.AddInt64(&dist.peerBatchSamples, int64(len(ids)))
	measure := s.obs.histsOn() || s.obs.tracing(ctx)
	var t0 time.Time
	if measure {
		t0 = time.Now()
	}
	res, err := peer.PeerGetBatchDeadline(ids, ctx.Next(), dl)
	if measure {
		dur := time.Since(t0)
		s.obs.peerBatch.Record(dur)
		s.span(trace.KindRPCSend, 0, spanArgPeer, ctx, dur)
	}
	if err != nil {
		atomic.AddInt64(&dist.peerFailures, 1)
		// Only a transport-level failure poisons the connection. An overload
		// rejection (breaker open, retry-after, server-side expiry) or a
		// deadline timeout came from a healthy protocol exchange — dropping
		// the client would just churn dials while the peer sheds load.
		if isConnFailure(err) {
			dist.dropPeer(node, peer)
		}
		return ids
	}
	var hits, fallback []dataset.SampleID
	for i, id := range ids {
		if res[i] != nil {
			hits = append(hits, id)
		} else {
			fallback = append(fallback, id)
		}
	}
	if len(hits) > 0 {
		// Owned elsewhere: this node must not keep duplicates. One short
		// policyMu hold covers the whole chunk.
		s.policyMu.Lock()
		for _, id := range hits {
			if s.cache.Drop(id) {
				s.payloads.delete(id)
			}
		}
		s.policyMu.Unlock()
		for i, id := range ids {
			if res[i] != nil {
				s.flight.Finish(int64(id), calls[id], res[i], nil)
			}
		}
		atomic.AddInt64(&dist.peerHits, int64(len(hits)))
	}
	return fallback
}

// dirLookupBatch resolves ownership for many ids in one directory
// operation, timed into the dir_lookup_batch stage. A failure (or a
// malformed short answer) counts one directory failure and returns nil,
// which degrades every id in the batch to a backend read.
func (s *Server) dirLookupBatch(dist *distState, ids []dataset.SampleID, ctx obs.TraceCtx, dl time.Time) []dkv.Owner {
	measure := s.obs.histsOn() || s.obs.tracing(ctx)
	var t0 time.Time
	if measure {
		t0 = time.Now()
	}
	var owners []dkv.Owner
	var err error
	if td, ok := dist.dir.(interface {
		LookupBatchTraced([]dataset.SampleID, obs.TraceCtx) ([]dkv.Owner, error)
	}); ok && ctx.Valid() {
		owners, err = td.LookupBatchTraced(ids, ctx.Next())
	} else if dd, ok := dist.dir.(interface {
		LookupBatchDeadline([]dataset.SampleID, time.Time) ([]dkv.Owner, error)
	}); ok && !dl.IsZero() {
		// Deadline-aware directories (dkv.DirClient) inherit the request's
		// remaining budget; in-process and fault-injecting directories fall
		// back to the plain lookup, which cannot hang anyway.
		owners, err = dd.LookupBatchDeadline(ids, dl)
	} else {
		owners, err = dist.dir.LookupBatch(ids)
	}
	if measure {
		dur := time.Since(t0)
		s.obs.dirBatch.Record(dur)
		s.span(trace.KindRPCSend, 0, spanArgDir, ctx, dur)
	}
	if err != nil || len(owners) != len(ids) {
		atomic.AddInt64(&dist.dirFailures, 1)
		return nil
	}
	return owners
}

// PeerBatchStats reports (batched peer RPCs issued, samples carried by
// them); zeros when distribution is disabled.
func (s *Server) PeerBatchStats() (rpcs, samples int64) {
	if s.dist == nil {
		return 0, 0
	}
	return atomic.LoadInt64(&s.dist.peerBatchRPCs), atomic.LoadInt64(&s.dist.peerBatchSamples)
}

// resolveRemote tries to serve a payload from the owning peer's cache.
// Any failure along the way — directory unreachable, peer dial failure,
// peer read failure — is counted and degrades to (nil, false), which sends
// the caller to the backend. Must be called with no server lock held (see
// the locking contract at the top of this file). ctx traces the directory
// lookup and peer read as KindRPCSend spans at this node's hop; both are
// also timed into the dir_lookup / peer_rpc stage histograms — including
// failed attempts, since slow failures are exactly what an operator hunts.
func (s *Server) resolveRemote(id dataset.SampleID, ctx obs.TraceCtx, dl time.Time) ([]byte, bool) {
	dist := s.dist
	if dist == nil {
		return nil, false
	}
	if !dl.IsZero() && !time.Now().Before(dl) {
		return nil, false // budget spent: straight to the backend
	}
	measure := s.obs.histsOn() || s.obs.tracing(ctx)

	var t0 time.Time
	if measure {
		t0 = time.Now()
	}
	owner, found, err := s.dirLookup(dist, id, ctx)
	if measure {
		dur := time.Since(t0)
		s.obs.dirLookup.Record(dur)
		s.span(trace.KindRPCSend, id, spanArgDir, ctx, dur)
	}
	if err != nil {
		atomic.AddInt64(&dist.dirFailures, 1)
		return nil, false
	}
	if !found || owner == dist.nodeID {
		return nil, false
	}
	peer, err := dist.peer(owner)
	if err != nil {
		atomic.AddInt64(&dist.peerFailures, 1)
		return nil, false
	}
	var t1 time.Time
	if measure {
		t1 = time.Now()
	}
	payload, ok, err := peer.PeerGetDeadline(id, ctx.Next(), dl)
	if measure {
		dur := time.Since(t1)
		s.obs.peerRPC.Record(dur)
		s.span(trace.KindRPCSend, id, spanArgPeer, ctx, dur)
	}
	if err != nil {
		atomic.AddInt64(&dist.peerFailures, 1)
		if isConnFailure(err) {
			dist.dropPeer(owner, peer)
		}
		return nil, false
	}
	if !ok {
		return nil, false
	}
	atomic.AddInt64(&dist.peerHits, 1)
	return payload, true
}

// dirLookup asks the directory who owns id, forwarding the trace context
// when both the request is traced and the directory service supports it
// (*dkv.DirClient does; in-process and fault-injecting directories fall
// back to the plain lookup).
func (s *Server) dirLookup(dist *distState, id dataset.SampleID, ctx obs.TraceCtx) (dkv.NodeID, bool, error) {
	if ctx.Valid() {
		if td, ok := dist.dir.(interface {
			LookupTraced(dataset.SampleID, obs.TraceCtx) (dkv.NodeID, bool, error)
		}); ok {
			return td.LookupTraced(id, ctx.Next())
		}
	}
	return dist.dir.Lookup(id)
}

// claimOwnership registers this node in the directory for a sample it just
// admitted. Reports whether the claim succeeded (false means another node
// already owns it, so this node must not keep a duplicate copy — and a
// directory failure conservatively counts as a failed claim, since
// unregistered ownership would invite duplication). Must be called with no
// server lock held: it performs a directory round trip.
func (s *Server) claimOwnership(id dataset.SampleID) bool {
	dist := s.dist
	if dist == nil {
		return true
	}
	ok, err := dist.dir.Claim(id, dist.nodeID)
	if err != nil {
		atomic.AddInt64(&dist.dirFailures, 1)
		return false
	}
	return ok
}

// releaseOwnership drops the directory entry for an evicted sample.
func (s *Server) releaseOwnership(id dataset.SampleID) {
	dist := s.dist
	if dist == nil {
		return
	}
	// Best effort: eviction hooks run under policyMu; the release is async
	// so the cache path never blocks on the directory.
	go func() {
		if _, err := dist.dir.Release(id, dist.nodeID); err != nil {
			atomic.AddInt64(&dist.dirFailures, 1)
		}
	}()
}

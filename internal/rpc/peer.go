package rpc

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"icache/internal/dataset"
	"icache/internal/dkv"
	"icache/internal/metrics"
	"icache/internal/obs"
	"icache/internal/retry"
	"icache/internal/trace"
)

// This file adds the distributed deployment of §III-E to the network
// server: nodes share a dkv directory service (which sample lives where)
// and answer PeerGet requests for samples they cache, so a miss on one node
// can be served from another node's DRAM instead of the backend.
//
// Every remote dependency here is treated as unreliable: directory and peer
// failures are counted, the failing peer connection is discarded (the next
// request re-dials), and the caller always degrades to a backend read —
// a sick peer must never stall the training pipeline.
//
// # Locking contract
//
// Everything in this file runs OUTSIDE the server's policy lock. The old
// single-mutex server had resolveRemote/claimOwnership "called with s.mu
// held", dropping and reacquiring it around the network call — a contract
// the sharded serving path makes obsolete and forbids:
//
//   - resolveRemote and claimOwnership perform directory and peer I/O and
//     must be called with NO server lock held (the miss path calls them
//     from inside a singleflight execution, which holds only the flight's
//     own per-key slot).
//   - distState.mu guards only the peer-connection cache. It is a leaf
//     lock held across nothing but map access and Dial; it never nests
//     with policyMu or payload-store shard locks.
//   - handlePeerGet touches only the payload store (shard-locked reads)
//     and atomics — peer reads never take policyMu and never mutate this
//     node's cache policy state, so a peer storm cannot stall local
//     serving decisions.
//   - releaseOwnership may be called under policyMu (the eviction
//     observer fires it); the directory write is pushed to a goroutine so
//     no network I/O ever happens under the lock.

// opPeerGet fetches a resident sample's payload from a peer cache node.
const opPeerGet = 6

// distState is the optional distributed wiring of a Server.
type distState struct {
	nodeID    dkv.NodeID
	dir       dkv.Service
	peerAddrs map[dkv.NodeID]string

	mu    sync.Mutex
	peers map[dkv.NodeID]*Client

	peerServes   int64 // requests this node answered for peers (atomic)
	peerHits     int64 // local misses served from a peer's cache (atomic)
	peerFailures int64 // peer dials/reads that failed (atomic)
	dirFailures  int64 // directory operations that failed (atomic)

	// Wall-clock membership loop state (see lifecycle.go); memStop is nil
	// until StartMembership.
	memCfg   MembershipConfig
	memStop  chan struct{}
	memWG    sync.WaitGroup
	memMu    sync.Mutex // guards mem, lastBeat, scrubMark
	mem      metrics.MembershipStats
	lastBeat time.Time
	// scrubMark is the anti-entropy watermark into this node's sorted
	// resident set (bounded sweeps eventually cover everything).
	scrubMark int
}

// EnableDistributed joins the server to a directory service and a peer set.
// nodeID must be unique across the deployment; peerAddrs maps the *other*
// nodes' IDs to their cache-service addresses. dir is typically a
// *dkv.DirClient, but any dkv.Service works — including a fault-injecting
// faults.Dir in chaos tests. Call before Serve.
func (s *Server) EnableDistributed(nodeID dkv.NodeID, dir dkv.Service, peerAddrs map[dkv.NodeID]string) {
	s.dist = &distState{
		nodeID:    nodeID,
		dir:       dir,
		peerAddrs: peerAddrs,
		peers:     make(map[dkv.NodeID]*Client),
	}
}

// PeerStats reports (requests served for peers, local misses served by
// peers); zeros when distribution is disabled.
func (s *Server) PeerStats() (served, hits int64) {
	if s.dist == nil {
		return 0, 0
	}
	return atomic.LoadInt64(&s.dist.peerServes), atomic.LoadInt64(&s.dist.peerHits)
}

// ResilienceStats reports (peer failures, directory failures) — remote
// operations that failed and were degraded around; zeros when distribution
// is disabled.
func (s *Server) ResilienceStats() (peerFailures, dirFailures int64) {
	if s.dist == nil {
		return 0, 0
	}
	return atomic.LoadInt64(&s.dist.peerFailures), atomic.LoadInt64(&s.dist.dirFailures)
}

// peer returns a (cached) client connection to the given node. Peer clients
// use the tight retry.Peer policy: degrading to the backend beats waiting.
func (d *distState) peer(node dkv.NodeID) (*Client, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if c, ok := d.peers[node]; ok {
		return c, nil
	}
	addr, ok := d.peerAddrs[node]
	if !ok {
		return nil, fmt.Errorf("rpc: no address for peer node %d", node)
	}
	c, err := DialPolicy(addr, 2*time.Second, retry.Peer())
	if err != nil {
		return nil, err
	}
	d.peers[node] = c
	return c, nil
}

// dropPeer discards a cached peer client after a failure so the next
// request re-dials instead of reusing a poisoned connection.
func (d *distState) dropPeer(node dkv.NodeID, c *Client) {
	d.mu.Lock()
	if cur, ok := d.peers[node]; ok && cur == c {
		delete(d.peers, node)
	}
	d.mu.Unlock()
	c.Close()
}

// closePeers tears down cached peer connections (on server Close).
func (d *distState) closePeers() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, c := range d.peers {
		c.Close()
	}
	d.peers = make(map[dkv.NodeID]*Client)
}

// PeerGet asks a cache node for a resident sample's payload. The second
// return reports whether the node had it; a miss is not an error (the
// caller falls back to the backend).
func (c *Client) PeerGet(id dataset.SampleID) ([]byte, bool, error) {
	return c.PeerGetCtx(id, obs.TraceCtx{})
}

// PeerGetCtx is PeerGet carrying a trace context addressed to the peer
// (the caller passes its own context's Next()). A zero context sends the
// plain, envelope-free request.
func (c *Client) PeerGetCtx(id dataset.SampleID, ctx obs.TraceCtx) ([]byte, bool, error) {
	var e buffer
	e.u8(opPeerGet)
	e.i64(int64(id))
	req := e.payload()
	if ctx.Valid() {
		req = WrapTraced(req, ctx)
	}
	d, err := c.roundTrip(req)
	if err != nil {
		return nil, false, err
	}
	if d.u8() == 0 {
		return nil, false, d.err()
	}
	payload := d.bytes()
	return payload, true, d.err()
}

// handlePeerGet serves opPeerGet: payload-store lookup only — peer reads
// must not mutate this node's cache policy state, and they never take
// policyMu (shard read lock only). Traced peer reads record a KindRPCRecv
// span at this node's hop.
func (s *Server) handlePeerGet(d *reader, e *buffer, ctx obs.TraceCtx) {
	var t0 time.Time
	if s.obs.tracing(ctx) {
		t0 = time.Now()
	}
	id := dataset.SampleID(d.i64())
	if err := d.err(); err != nil {
		encodeErrorResponseInto(e, err.Error())
		return
	}
	payload, ok := s.payloads.get(id)
	if ok && s.dist != nil {
		atomic.AddInt64(&s.dist.peerServes, 1)
	}
	e.u8(statusOK)
	if !ok {
		e.u8(0)
	} else {
		e.u8(1)
		e.bytes(payload)
	}
	if !t0.IsZero() {
		s.span(trace.KindRPCRecv, id, 1, ctx, time.Since(t0))
	}
}

// resolveRemote tries to serve a payload from the owning peer's cache.
// Any failure along the way — directory unreachable, peer dial failure,
// peer read failure — is counted and degrades to (nil, false), which sends
// the caller to the backend. Must be called with no server lock held (see
// the locking contract at the top of this file). ctx traces the directory
// lookup and peer read as KindRPCSend spans at this node's hop; both are
// also timed into the dir_lookup / peer_rpc stage histograms — including
// failed attempts, since slow failures are exactly what an operator hunts.
func (s *Server) resolveRemote(id dataset.SampleID, ctx obs.TraceCtx) ([]byte, bool) {
	dist := s.dist
	if dist == nil {
		return nil, false
	}
	measure := s.obs.histsOn() || s.obs.tracing(ctx)

	var t0 time.Time
	if measure {
		t0 = time.Now()
	}
	owner, found, err := s.dirLookup(dist, id, ctx)
	if measure {
		dur := time.Since(t0)
		s.obs.dirLookup.Record(dur)
		s.span(trace.KindRPCSend, id, spanArgDir, ctx, dur)
	}
	if err != nil {
		atomic.AddInt64(&dist.dirFailures, 1)
		return nil, false
	}
	if !found || owner == dist.nodeID {
		return nil, false
	}
	peer, err := dist.peer(owner)
	if err != nil {
		atomic.AddInt64(&dist.peerFailures, 1)
		return nil, false
	}
	var t1 time.Time
	if measure {
		t1 = time.Now()
	}
	payload, ok, err := peer.PeerGetCtx(id, ctx.Next())
	if measure {
		dur := time.Since(t1)
		s.obs.peerRPC.Record(dur)
		s.span(trace.KindRPCSend, id, spanArgPeer, ctx, dur)
	}
	if err != nil {
		atomic.AddInt64(&dist.peerFailures, 1)
		dist.dropPeer(owner, peer)
		return nil, false
	}
	if !ok {
		return nil, false
	}
	atomic.AddInt64(&dist.peerHits, 1)
	return payload, true
}

// dirLookup asks the directory who owns id, forwarding the trace context
// when both the request is traced and the directory service supports it
// (*dkv.DirClient does; in-process and fault-injecting directories fall
// back to the plain lookup).
func (s *Server) dirLookup(dist *distState, id dataset.SampleID, ctx obs.TraceCtx) (dkv.NodeID, bool, error) {
	if ctx.Valid() {
		if td, ok := dist.dir.(interface {
			LookupTraced(dataset.SampleID, obs.TraceCtx) (dkv.NodeID, bool, error)
		}); ok {
			return td.LookupTraced(id, ctx.Next())
		}
	}
	return dist.dir.Lookup(id)
}

// claimOwnership registers this node in the directory for a sample it just
// admitted. Reports whether the claim succeeded (false means another node
// already owns it, so this node must not keep a duplicate copy — and a
// directory failure conservatively counts as a failed claim, since
// unregistered ownership would invite duplication). Must be called with no
// server lock held: it performs a directory round trip.
func (s *Server) claimOwnership(id dataset.SampleID) bool {
	dist := s.dist
	if dist == nil {
		return true
	}
	ok, err := dist.dir.Claim(id, dist.nodeID)
	if err != nil {
		atomic.AddInt64(&dist.dirFailures, 1)
		return false
	}
	return ok
}

// releaseOwnership drops the directory entry for an evicted sample.
func (s *Server) releaseOwnership(id dataset.SampleID) {
	dist := s.dist
	if dist == nil {
		return
	}
	// Best effort: eviction hooks run under policyMu; the release is async
	// so the cache path never blocks on the directory.
	go func() {
		if _, err := dist.dir.Release(id, dist.nodeID); err != nil {
			atomic.AddInt64(&dist.dirFailures, 1)
		}
	}()
}

package rpc

// Tests for the decision-level observability layer: the reason-coded
// eviction ledger, admission provenance, the prefetch-outcome ledger and
// its epoch-boundary conservation identity, the control-plane journal, and
// the timeline collector.

import (
	"math/rand"
	"testing"
	"time"

	"icache/internal/dataset"
	"icache/internal/icache"
	"icache/internal/leakcheck"
	"icache/internal/obs"
	"icache/internal/sampling"
)

// TestDecisionLedgerConservation drives real traffic (foreground fetches,
// background prefetch deliveries, a directed drop) across epoch boundaries
// and then pins the full decision ledger:
//
//	EvictCapacity + EvictDeadOwner + EvictScrub + EvictCheckpointDenied == EvictTotal
//	PrefetchInTime + PrefetchLate + PrefetchWasted + PrefetchDropped    == PrefetchIssued
//
// The prefetch identity holds exactly at an epoch boundary because the
// sweep reclassifies every outstanding pending token as wasted; the
// eviction identity holds always.
func TestDecisionLedgerConservation(t *testing.T) {
	defer leakcheck.Check(t)
	srv, addr, _ := startServer(t)
	cl := dial(t, addr)
	spec := testSpec()

	// Small H-list; everything else is L, so L misses feed the loader and
	// its package deliveries feed the prefetch pool.
	var items []sampling.Item
	for id := dataset.SampleID(0); id < 20; id++ {
		items = append(items, sampling.Item{ID: id, IV: 5})
	}
	if err := cl.UpdateImportance(items); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	ids := make([]dataset.SampleID, 8)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for i := range ids {
			ids[i] = dataset.SampleID(100 + rng.Intn(spec.NumSamples-100))
		}
		if _, err := cl.GetBatch(ids); err != nil {
			t.Fatal(err)
		}
		if sv := srv.ServingStats(); sv.PrefetchQueued > 0 && sv.PrefetchCompleted > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if sv := srv.ServingStats(); sv.PrefetchQueued == 0 {
		t.Fatalf("prefetch pool saw no deliveries: %+v", sv)
	}

	// A directed drop with a reason code: make a sample resident, then
	// remove it the way the scrubber would.
	if _, err := cl.GetBatch([]dataset.SampleID{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	srv.policyMu.Lock()
	dropped := srv.cache.DropFor(2, icache.DropScrub)
	srv.policyMu.Unlock()
	if !dropped {
		t.Fatal("sample 2 was not resident to drop")
	}

	// Two epoch turns: the first sweeps outstanding prefetch tokens, the
	// second proves the ledger stays balanced across repeated boundaries.
	for epoch := 1; epoch <= 2; epoch++ {
		if err := cl.BeginEpoch(epoch); err != nil {
			t.Fatal(err)
		}
	}

	d := srv.DecisionStats()
	if sum := d.EvictCapacity + d.EvictDeadOwner + d.EvictScrub + d.EvictCheckpointDenied; sum != d.EvictTotal {
		t.Errorf("eviction ledger leaks: capacity %d + dead-owner %d + scrub %d + ckpt-denied %d = %d, want EvictTotal %d",
			d.EvictCapacity, d.EvictDeadOwner, d.EvictScrub, d.EvictCheckpointDenied, sum, d.EvictTotal)
	}
	if d.EvictScrub == 0 {
		t.Error("directed scrub drop was not reason-counted")
	}
	if sum := d.PrefetchInTime + d.PrefetchLate + d.PrefetchWasted + d.PrefetchDropped; sum != d.PrefetchIssued {
		t.Errorf("prefetch ledger leaks: in-time %d + late %d + wasted %d + dropped %d = %d, want issued %d",
			d.PrefetchInTime, d.PrefetchLate, d.PrefetchWasted, d.PrefetchDropped, sum, d.PrefetchIssued)
	}
	if d.PrefetchIssued == 0 {
		t.Error("no prefetches issued; the ledger test exercised nothing")
	}
	if r := d.PrefetchTimeliness(); r < 0 || r > 1 {
		t.Errorf("timeliness ratio %g outside [0,1]", r)
	}
	if d.AdmitFetch == 0 {
		t.Error("foreground admissions not provenance-counted")
	}
	if d.AdmitPeer != 0 {
		t.Errorf("AdmitPeer = %d; peer bytes must never be locally admitted (no-duplication invariant)", d.AdmitPeer)
	}
	if d.Epoch != 2 {
		t.Errorf("epoch = %d, want 2", d.Epoch)
	}
	if d.EpochHCount == 0 && d.EpochLCount == 0 {
		t.Error("epoch-boundary residency snapshot is empty")
	}
}

// TestJournalRecordsEpochBoundaries wires a journal into a serving node and
// checks that BeginEpoch appends epoch events with the right transition
// numbering.
func TestJournalRecordsEpochBoundaries(t *testing.T) {
	defer leakcheck.Check(t)
	srv, addr, _ := startServer(t)
	j := obs.NewJournal(64)
	srv.SetJournal(j)
	cl := dial(t, addr)

	for epoch := 1; epoch <= 3; epoch++ {
		if err := cl.BeginEpoch(epoch); err != nil {
			t.Fatal(err)
		}
	}
	var epochs []obs.Event
	for _, e := range j.Snapshot() {
		if e.Kind == obs.EventEpoch {
			epochs = append(epochs, e)
		}
	}
	if len(epochs) != 3 {
		t.Fatalf("journal holds %d epoch events, want 3", len(epochs))
	}
	for i, e := range epochs {
		if e.Old != int64(i) || e.New != int64(i+1) {
			t.Fatalf("epoch event %d is %d→%d, want %d→%d", i, e.Old, e.New, i, i+1)
		}
	}
}

// TestTimelinePointCarriesDecisionSeries checks the per-node timeline
// collector exposes the series icache-top renders: request rates, overload
// state, the eviction-reason and prefetch-outcome ledgers.
func TestTimelinePointCarriesDecisionSeries(t *testing.T) {
	defer leakcheck.Check(t)
	srv, addr, _ := startServer(t)
	cl := dial(t, addr)
	if _, err := cl.GetBatch([]dataset.SampleID{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	p := srv.TimelinePoint()
	for _, key := range []string{
		"requests", "hits", "misses", "shed", "gate_state", "breakers_open",
		"evict_capacity", "evict_dead_owner", "prefetch_issued", "prefetch_timeliness",
		"sub_exact", "epoch", "hcache_len", "payload_len",
	} {
		if _, ok := p[key]; !ok {
			t.Errorf("timeline point lacks series %q", key)
		}
	}
	if p["requests"] == 0 {
		t.Error("requests series did not move")
	}
}

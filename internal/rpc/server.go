package rpc

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"icache/internal/dataset"
	"icache/internal/icache"
	"icache/internal/obs"
	"icache/internal/overload"
	"icache/internal/sampling"
	"icache/internal/simclock"
	"icache/internal/singleflight"
	"icache/internal/trace"
	"icache/internal/wire"
)

// ByteSource supplies real sample payloads: storage.DataSource (generated
// on demand) and storage.FileSource (a packed dataset file) both satisfy it.
// Fetch must be safe for concurrent use: the serving path issues backend
// reads from many request goroutines and the prefetch pool at once.
type ByteSource interface {
	Spec() dataset.Spec
	Fetch(id dataset.SampleID) ([]byte, error)
}

// Server is the network-facing iCache server: it owns an icache.Server for
// cache policy decisions, a ByteSource for real sample bytes, and a payload
// store that mirrors the cache's residency. Policy time is driven by the
// wall clock, so the background loading thread's pacing carries over to
// live deployments.
//
// # Concurrency model and lock ordering
//
// The serving path is built so that no lock is ever held across I/O. Three
// lock classes exist, and they must be acquired in this order (any prefix
// is fine, the reverse is forbidden):
//
//		policyMu  →  payload-store shard locks (leaf)
//		connMu (independent leaf: listener/connection bookkeeping only)
//
//	  - policyMu guards the icache.Server policy engine (FetchBatch,
//	    InstallHList, StartEpoch, Stats, Resident, Drop, checkpoints) and is
//	    only ever held for short, CPU-bound critical sections. It is NEVER
//	    held across ByteSource.Fetch, peer reads, directory calls, or frame
//	    I/O. Cache mutations fire the eviction observer synchronously, so
//	    the observer also runs under policyMu; it may take shard locks
//	    (policyMu → shard is the legal order) and must not block.
//	  - payload-store shard locks (see payloadStore in store.go) are leaves:
//	    taken and released inside single store methods, never held across
//	    any other acquisition or I/O.
//	  - connMu guards the listener and the live-connection set; it nests
//	    with nothing.
//
// Slow work — backend fetches and remote peer reads — happens outside all
// locks, coalesced per sample ID through a singleflight group so K
// concurrent misses on one sample issue exactly one backend read. The
// distributed helpers in peer.go (resolveRemote, claimOwnership) are
// called WITHOUT policyMu held; the old "called with s.mu held, drops it
// across the network" contract is gone.
type Server struct {
	cache  *icache.Server
	source ByteSource
	start  time.Time

	// policyMu guards cache (the policy engine). Short critical sections
	// only; see the concurrency model above.
	policyMu sync.Mutex
	// payloads is the sharded byte store mirroring cache residency.
	payloads *payloadStore
	// flight coalesces concurrent miss-path fetches per sample ID.
	flight singleflight.Group
	// coalescedMisses counts miss-path fetches that joined an in-flight
	// fetch instead of issuing their own (atomic).
	coalescedMisses int64
	// prefetch is the bounded async worker pool that pulls payload bytes
	// for samples the loader delivered into the L-cache (nil when
	// disabled).
	prefetch *prefetcher
	// plan is the clairvoyant cross-epoch prefetch planner (nil = reactive
	// only); installed via SetClairvoyant before Serve. The planner drains
	// through the prefetch worker pool under a bandwidth budget calibrated
	// from the backendFetch* throughput observations below.
	plan *planner
	// backendFetchBytes / backendFetchNanos accumulate observed backend
	// fetch throughput for the planner's token bucket (atomics; only
	// maintained while plan != nil). demandFetches counts backend reads
	// issued on the demand path — the "cold miss" metric the clairvoyant
	// plan exists to drive to zero (atomic, always maintained).
	backendFetchBytes int64
	backendFetchNanos int64
	demandFetches     int64
	// muxInflight gauges mux requests currently in async dispatch (atomic).
	muxInflight int64
	// legacyProto pins the server to pre-PR-5 wire behavior (test hook;
	// see SetLegacyProtocol).
	legacyProto bool

	ln      net.Listener
	conns   sync.WaitGroup
	connMu  sync.Mutex
	connSet map[net.Conn]struct{}
	closed  chan struct{}

	// gate is the adaptive admission controller (nil = admit everything).
	// Installed via SetAdmission before Serve; the serving path reads it
	// without synchronization.
	gate *overload.Gate
	// shedCount / expiredCount (atomics) are requests rejected by the gate
	// and requests dropped because their deadline budget ran out before the
	// cache was touched. Neither increments any cache counter, so the
	// conservation identity extends to
	// hits+misses+substitutions+degraded + shed + expired == offered.
	shedCount    int64
	expiredCount int64

	// dist holds the §III-E distributed wiring (nil on a lone server).
	dist *distState

	// obs holds the optional observability wiring — per-stage latency
	// histograms, span tracing, slow-request log (see obs.go). Configure
	// via EnableObs / SetSlowRequestLog before Serve; the serving path
	// reads these fields without synchronization.
	obs serverObs

	// journal is the optional control-plane event journal (nil = off);
	// installed via SetJournal before Serve. dec holds the serving-layer
	// decision counters (see decision.go).
	journal *obs.Journal
	dec     rpcDecisions

	// Logf sinks server logs; defaults to log.Printf. Tests may silence it.
	Logf func(format string, args ...interface{})
}

// NewServer wires a cache policy engine to a byte source. If the policy
// engine's config enables prefetch workers, the server starts a bounded
// worker pool that asynchronously fills the payload store for samples the
// background loader delivers into the L-cache (the paper's Fig. 15
// prefetch-worker knob).
func NewServer(cacheSrv *icache.Server, source ByteSource) *Server {
	s := &Server{
		cache:    cacheSrv,
		source:   source,
		start:    time.Now(),
		payloads: newPayloadStore(),
		connSet:  make(map[net.Conn]struct{}),
		closed:   make(chan struct{}),
		Logf:     log.Printf,
	}
	cacheSrv.SetEvictObserver(func(id dataset.SampleID) {
		// Runs under policyMu (all cache mutations happen under it).
		// policyMu → shard lock is the legal order; releaseOwnership is
		// async and never blocks here.
		s.payloads.delete(id)
		s.releaseOwnership(id)
		// An eviction before any hit means a pending prefetch was wasted.
		s.prefetch.noteEvict(id)
	})
	if n := cacheSrv.PrefetchWorkers(); n > 0 {
		s.prefetch = newPrefetcher(s, n)
		cacheSrv.SetLoadObserver(s.prefetch.enqueue)
	}
	return s
}

// now maps wall-clock elapsed time onto the cache's virtual timeline.
func (s *Server) now() simclock.Time { return simclock.Time(time.Since(s.start)) }

// Serve accepts connections on ln until Close is called. It always returns
// a non-nil error (net.ErrClosed after a clean shutdown).
func (s *Server) Serve(ln net.Listener) error {
	s.connMu.Lock()
	s.ln = ln
	s.connMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return net.ErrClosed
			default:
				return err
			}
		}
		s.connMu.Lock()
		s.connSet[conn] = struct{}{}
		s.connMu.Unlock()
		s.conns.Add(1)
		go func() {
			defer func() {
				s.connMu.Lock()
				delete(s.connSet, conn)
				s.connMu.Unlock()
				s.conns.Done()
			}()
			s.serveConn(conn)
		}()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr reports the bound listener address (once Serve has been called).
func (s *Server) Addr() net.Addr {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting and waits for in-flight connections to finish.
func (s *Server) Close() error {
	select {
	case <-s.closed:
		return nil
	default:
	}
	close(s.closed)
	var err error
	s.connMu.Lock()
	if s.ln != nil {
		err = s.ln.Close()
	}
	for conn := range s.connSet {
		conn.Close()
	}
	s.connMu.Unlock()
	s.conns.Wait()
	// The planner feeds the prefetch pool; stop it first so no planned
	// enqueue races the pool teardown.
	if s.plan != nil {
		s.plan.stop()
	}
	if s.prefetch != nil {
		s.prefetch.stop()
	}
	if s.dist != nil {
		s.StopMembership()
		s.dist.closePeers()
	}
	return err
}

// serveConn is one connection's request loop. It reuses a single request
// read buffer across frames (requests are fully decoded — or copied, for
// async mux dispatch — before the next read, so aliasing is safe) and
// encodes every response into a pooled buffer that is returned to the pool
// right after the frame is written.
//
// Frames carrying the opMuxReq envelope are dispatched asynchronously (one
// goroutine per in-flight request, bounded by cs.sem) so a pipelined client
// gets concurrent service on one connection; all response writes — sync and
// async — serialize on cs.wmu so frames never interleave. On teardown the
// connection closes FIRST, then the loop waits for in-flight mux handlers:
// stragglers fail their writes fast instead of blocking shutdown.
func (s *Server) serveConn(conn net.Conn) {
	cs := &muxConnState{conn: conn, sem: make(chan struct{}, muxServerInflight)}
	defer cs.wg.Wait()
	defer conn.Close()
	var rbuf []byte // request frame buffer, reused across requests
	for {
		req, err := wire.ReadFrameInto(conn, rbuf)
		if err != nil {
			if !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.EOF) {
				// Normal client disconnects arrive as EOF; anything else is
				// worth a log line but never a crash.
				s.logIfUnexpected(err)
			}
			return
		}
		rbuf = req[:0]
		if len(req) >= muxHeaderLen && req[0] == opMuxReq && !s.legacyProto {
			s.serveMuxFrame(cs, req)
			continue
		}
		// Peel any deadline envelope FIRST: both the vectored-path intercept
		// and the admission gate key on the INNER opcode.
		inner := req
		var dl time.Time
		if len(req) > 0 && req[0] == opDeadline && !s.legacyProto {
			var derr error
			inner, dl, _, derr = peelDeadline(req, time.Now())
			if derr != nil {
				msg := derr.Error()
				if err := s.writeControlFrame(cs, 0, false, func(e *buffer) {
					encodeErrorResponseInto(e, msg)
				}); err != nil {
					s.logIfUnexpected(err)
					return
				}
				continue
			}
		}
		// Admission: the legacy per-connection path shares the same gate as
		// the mux fan-out, so a storm of serial connections is bounded too.
		admitted := false
		if g := s.gate; g != nil && gatedOp(inner) {
			ok, after := g.Admit(time.Now())
			if !ok {
				atomic.AddInt64(&s.shedCount, 1)
				if err := s.writeControlFrame(cs, 0, false, func(e *buffer) {
					encodeRetryAfterResponseInto(e, after)
				}); err != nil {
					s.logIfUnexpected(err)
					return
				}
				continue
			}
			admitted = true
		}
		if len(inner) > 0 && s.vecOp(inner[0]) {
			// Hot ops take the zero-copy path: pinned slab payloads framed
			// as one vectored write, no response buffer.
			err := s.serveVecRequest(cs, 0, false, inner, dl)
			if admitted {
				s.gate.Done()
			}
			if err != nil {
				s.logIfUnexpected(err)
				return
			}
			continue
		}
		wb := wire.GetBuffer()
		e := buffer{Buffer: *wb}
		s.dispatchFull(inner, &e, obs.TraceCtx{}, dl)
		wb.B = e.B // appends may have grown past the pooled backing array
		cs.wmu.Lock()
		err = writeFrame(conn, wb.B)
		cs.wmu.Unlock()
		wire.PutBuffer(wb)
		if admitted {
			s.gate.Done()
		}
		if err != nil {
			s.logIfUnexpected(err)
			return
		}
	}
}

// muxServerInflight bounds concurrently dispatched mux requests per
// connection; when full, the read loop blocks, pushing backpressure onto
// the client's own in-flight bound.
const muxServerInflight = 64

// muxConnState is one connection's async-dispatch bookkeeping: the write
// mutex all response frames serialize on, the handler semaphore, and the
// WaitGroup serveConn drains on teardown.
type muxConnState struct {
	conn net.Conn
	wmu  sync.Mutex
	wg   sync.WaitGroup
	sem  chan struct{}
}

// serveMuxFrame dispatches one opMuxReq envelope asynchronously. req aliases
// the read loop's reusable buffer, so the inner request is copied before the
// handler goroutine starts. The response frame echoes the envelope header so
// the client's demux reader can match it.
func (s *Server) serveMuxFrame(cs *muxConnState, req []byte) {
	d := newReader(req)
	d.u8() // opMuxReq (validated by the caller)
	id := d.u32()
	rest := d.rest()
	// Deadline envelope sits inside the mux envelope; peel it before the
	// vec check so a deadlined GetBatch keeps the zero-copy path.
	inner := rest
	var dl time.Time
	if len(rest) > 0 && rest[0] == opDeadline {
		var derr error
		inner, dl, _, derr = peelDeadline(rest, time.Now())
		if derr != nil {
			msg := derr.Error()
			if err := s.writeControlFrame(cs, id, true, func(e *buffer) {
				encodeErrorResponseInto(e, msg)
			}); err != nil {
				s.logIfUnexpected(err)
			}
			return
		}
	}
	// Admission runs BEFORE the per-connection semaphore: a shed request is
	// answered synchronously from the read loop and never occupies a
	// dispatch slot — that is the whole point of shedding.
	admitted := false
	if g := s.gate; g != nil && gatedOp(inner) {
		ok, after := g.Admit(time.Now())
		if !ok {
			atomic.AddInt64(&s.shedCount, 1)
			if err := s.writeControlFrame(cs, id, true, func(e *buffer) {
				encodeRetryAfterResponseInto(e, after)
			}); err != nil {
				s.logIfUnexpected(err)
			}
			return
		}
		admitted = true
	}
	if len(inner) > 0 && s.vecOp(inner[0]) {
		// Zero-copy dispatch: decode the ids into a pooled scratch NOW (inner
		// aliases the reusable read buffer) and hand the scratch — not the
		// request bytes — to the handler goroutine. No request copy.
		op := inner[0]
		sc := getServeScratch()
		di := newReader(inner)
		di.u8()
		ids, derr := decodeGetBatchRequestInto(di, sc.ids[:0])
		sc.ids = ids
		s.acquireMuxSlot(cs, admitted)
		go func() {
			defer s.releaseMuxSlot(cs, admitted)
			if err := s.serveVecDecoded(cs, id, true, op, sc, derr, dl); err != nil {
				s.logIfUnexpected(err)
			}
		}()
		return
	}
	innerCopy := append([]byte(nil), inner...)
	s.acquireMuxSlot(cs, admitted)
	go func() {
		defer s.releaseMuxSlot(cs, admitted)
		wb := wire.GetBuffer()
		e := buffer{Buffer: *wb}
		e.u8(opMuxReq)
		e.u32(id)
		s.dispatchFull(innerCopy, &e, obs.TraceCtx{}, dl)
		wb.B = e.B
		cs.wmu.Lock()
		err := writeFrame(cs.conn, wb.B)
		cs.wmu.Unlock()
		wire.PutBuffer(wb)
		if err != nil {
			s.logIfUnexpected(err)
		}
	}()
}

// acquireMuxSlot takes a per-connection dispatch slot, feeding the time
// spent blocked on the full semaphore — the server's standing queue delay —
// to the admission gate's CoDel window and the admission_wait histogram.
func (s *Server) acquireMuxSlot(cs *muxConnState, admitted bool) {
	measure := admitted || s.obs.histsOn()
	var t0 time.Time
	if measure {
		t0 = time.Now()
	}
	cs.sem <- struct{}{}
	if measure {
		now := time.Now()
		wait := now.Sub(t0)
		if admitted {
			s.gate.Observe(now, wait)
		}
		s.obs.admissionWait.Record(wait)
	}
	cs.wg.Add(1)
	atomic.AddInt64(&s.muxInflight, 1)
}

func (s *Server) releaseMuxSlot(cs *muxConnState, admitted bool) {
	if admitted {
		s.gate.Done()
	}
	atomic.AddInt64(&s.muxInflight, -1)
	<-cs.sem
	cs.wg.Done()
}

// MuxInflight reports the number of mux requests currently being served
// across all connections (gauge).
func (s *Server) MuxInflight() int64 { return atomic.LoadInt64(&s.muxInflight) }

// SetLegacyProtocol pins the server to the pre-PR-5 wire behavior: opPing
// answers with the bare status byte (no capability word), opMuxReq and
// opPeerGetBatch are rejected as unknown opcodes. It exists so
// mixed-version interop tests can stand up a faithful "old binary" —
// production servers never call it. Must be set before Serve.
func (s *Server) SetLegacyProtocol(on bool) { s.legacyProto = on }

// SetAdmission installs the adaptive admission gate (nil = admit
// everything). Must be called before Serve. The gate's state ladder drives
// the brownout side effects in order: Brownout first sacrifices optional
// work — substitution scans stop and the prefetch pool pauses — and only
// the Shed state rejects foreground requests; Normal restores both.
func (s *Server) SetAdmission(g *overload.Gate) {
	s.gate = g
	if g == nil {
		return
	}
	g.OnStateChange(func(old, next overload.State) {
		// Called under the gate's mutex: atomic flag flips and the
		// lock-striped journal append only, no server locks.
		degraded := next != overload.Normal
		s.cache.SetSubstitutionsDisabled(degraded)
		if s.prefetch != nil {
			s.prefetch.setPaused(degraded)
		}
		s.journal.Add(obs.EventGate, s.journalNode(), int64(old), int64(next),
			old.String()+"→"+next.String())
	})
}

// Admission exposes the installed gate (nil when admission is unbounded).
func (s *Server) Admission() *overload.Gate { return s.gate }

// OverloadCounters reports how many requests the server shed at admission
// and how many it dropped for an expired deadline budget.
func (s *Server) OverloadCounters() (shed, expired int64) {
	return atomic.LoadInt64(&s.shedCount), atomic.LoadInt64(&s.expiredCount)
}

// gatedOp reports whether the admission gate applies to a request payload.
// Health checks (opPing) and monitoring (opStats) always pass: an operator
// must be able to see an overloaded server. A leading trace envelope is
// skipped so traced data requests don't dodge the gate.
func gatedOp(p []byte) bool {
	if len(p) == 0 {
		return false
	}
	op := p[0]
	if op == opTraced && len(p) > tracedHeaderLen {
		op = p[tracedHeaderLen]
	}
	switch op {
	case opPing, opStats:
		return false
	}
	return true
}

// writeControlFrame writes a small status-only response — shed/expired
// rejections and pre-dispatch protocol errors — on the sync or mux path.
func (s *Server) writeControlFrame(cs *muxConnState, muxID uint32, muxed bool, fill func(e *buffer)) error {
	wb := wire.GetBuffer()
	e := buffer{Buffer: *wb}
	if muxed {
		e.u8(opMuxReq)
		e.u32(muxID)
	}
	fill(&e)
	wb.B = e.B
	cs.wmu.Lock()
	err := writeFrame(cs.conn, wb.B)
	cs.wmu.Unlock()
	wire.PutBuffer(wb)
	return err
}

func (s *Server) logIfUnexpected(err error) {
	if errors.Is(err, net.ErrClosed) {
		return
	}
	if s.Logf != nil {
		s.Logf("rpc: connection error: %v", err)
	}
}

// dispatch decodes one request and produces the response payload
// (allocating form, used by tests and the fuzz harness; the serving loop
// uses dispatchInto with a pooled buffer).
func (s *Server) dispatch(req []byte) []byte {
	var e buffer
	s.dispatchInto(req, &e)
	return e.payload()
}

// dispatchInto decodes one request and appends the response into e.
// Protocol errors are answered, never fatal. The request buffer may be
// reused by the caller after dispatchInto returns, so no slice of req is
// retained (decoders copy what they keep).
func (s *Server) dispatchInto(req []byte, e *buffer) {
	s.dispatchCtx(req, e, obs.TraceCtx{})
}

// dispatchCtx is dispatchInto carrying the request's trace context (zero
// when untraced).
func (s *Server) dispatchCtx(req []byte, e *buffer, ctx obs.TraceCtx) {
	s.dispatchFull(req, e, ctx, time.Time{})
}

// dispatchFull is the dispatch core, carrying the request's trace context
// (zero when untraced) and its absolute deadline (zero when unbounded).
// Each envelope opcode — opTraced, opDeadline — re-enters here exactly
// once: nesting the same envelope twice is rejected, so recursion depth is
// bounded at two.
func (s *Server) dispatchFull(req []byte, e *buffer, ctx obs.TraceCtx, dl time.Time) {
	d := newReader(req)
	op := d.u8()
	switch op {
	case opTraced:
		if ctx.Valid() {
			encodeErrorResponseInto(e, "rpc: nested trace envelope")
			return
		}
		id := uint64(d.i64())
		hop := d.u8()
		if err := d.err(); err != nil {
			encodeErrorResponseInto(e, err.Error())
			return
		}
		inner := obs.TraceCtx{ID: id, Hop: hop}
		if !inner.Valid() {
			encodeErrorResponseInto(e, "rpc: trace envelope with zero trace id")
			return
		}
		s.dispatchFull(d.rest(), e, inner, dl)
	case opDeadline:
		// Normally peeled in the read loop (before the vec intercept); this
		// case serves direct dispatch callers and a deadline nested inside a
		// trace envelope.
		if s.legacyProto {
			encodeErrorResponseInto(e, fmt.Sprintf("rpc: unknown opcode %d", op))
			return
		}
		if !dl.IsZero() {
			encodeErrorResponseInto(e, "rpc: nested deadline envelope")
			return
		}
		budget := d.i64()
		if err := d.err(); err != nil {
			encodeErrorResponseInto(e, err.Error())
			return
		}
		if budget <= 0 {
			encodeErrorResponseInto(e, fmt.Sprintf("rpc: non-positive deadline budget %d", budget))
			return
		}
		s.dispatchFull(d.rest(), e, ctx, time.Now().Add(time.Duration(budget)))
	case opGetBatch:
		var t0 time.Time
		if s.obs.histsOn() || s.obs.tracing(ctx) || s.obs.slowThresh > 0 {
			t0 = time.Now()
		}
		ids, err := decodeGetBatchRequest(d)
		if err != nil {
			encodeErrorResponseInto(e, err.Error())
			return
		}
		samples, err := s.getBatch(ids, ctx, dl)
		if err != nil {
			if errors.Is(err, overload.ErrExpired) {
				encodeExpiredResponseInto(e)
				return
			}
			encodeErrorResponseInto(e, err.Error())
			return
		}
		encodeGetBatchResponseInto(e, samples)
		if !t0.IsZero() {
			dur := time.Since(t0)
			s.obs.request.Record(dur)
			s.span(trace.KindRPCRecv, 0, int64(len(ids)), ctx, dur)
			// Pin this trace as the latency-bucket exemplar: the journal's
			// bridge from "the p99 bucket moved" to a stitched trace chain.
			s.obs.exemplars.Record(dur, ctx.ID)
			s.maybeLogSlow(ctx, len(ids), dur)
		}
	case opUpdateImportance:
		items, err := decodeUpdateImportanceRequest(d)
		if err != nil {
			encodeErrorResponseInto(e, err.Error())
			return
		}
		s.policyMu.Lock()
		s.cache.InstallHList(sampling.NewHList(items))
		s.policyMu.Unlock()
		e.u8(statusOK)
	case opBeginEpoch:
		_ = d.u32() // epoch number: accepted for symmetry/logging
		s.policyMu.Lock()
		s.cache.StartEpoch(s.now())
		// Settle the prefetch-outcome ledger: pending prefetches the
		// finished epoch never touched are wasted work.
		s.prefetch.sweepEpoch()
		epoch := s.cache.Epoch()
		s.policyMu.Unlock()
		s.journal.Add(obs.EventEpoch, s.journalNode(), epoch-1, epoch, "epoch boundary")
		e.u8(statusOK)
	case opEpochPlan:
		// Clairvoyant epoch boundary: cross the boundary exactly like
		// opBeginEpoch, then hand the policy engine the next epoch's known
		// schedule. PlanSchedule seeds the loader with the missing L-side
		// (honest virtual-time charging) and returns the missing H-side in
		// first-access order for the planner to pre-place.
		if s.legacyProto {
			encodeErrorResponseInto(e, fmt.Sprintf("rpc: unknown opcode %d", op))
			return
		}
		_, ids, err := decodeEpochPlanRequest(d)
		if err != nil {
			encodeErrorResponseInto(e, err.Error())
			return
		}
		s.policyMu.Lock()
		s.cache.StartEpoch(s.now())
		s.prefetch.sweepEpoch()
		var need []dataset.SampleID
		if s.plan != nil {
			need = s.cache.PlanSchedule(ids)
		}
		epoch := s.cache.Epoch()
		s.policyMu.Unlock()
		if s.plan != nil {
			s.plan.install(int64(epoch), need)
			s.journal.Add(obs.EventEpoch, s.journalNode(), epoch-1, epoch,
				fmt.Sprintf("epoch boundary (planned: %d missing H)", len(need)))
		} else {
			// A reactive server still honors the boundary — the client need
			// not know whether planning is on.
			s.journal.Add(obs.EventEpoch, s.journalNode(), epoch-1, epoch, "epoch boundary")
		}
		e.u8(statusOK)
	case opPlanPreplace:
		if s.legacyProto {
			encodeErrorResponseInto(e, fmt.Sprintf("rpc: unknown opcode %d", op))
			return
		}
		ids, err := decodePlanPreplaceRequest(d)
		if err != nil {
			encodeErrorResponseInto(e, err.Error())
			return
		}
		var accepted int
		if s.plan != nil {
			accepted = s.plan.acceptRemote(ids)
		}
		e.u8(statusOK)
		e.u32(uint32(accepted))
	case opStats:
		s.policyMu.Lock()
		st := s.cache.Stats()
		out := Stats{
			Hits:          st.Hits,
			Misses:        st.Misses,
			Substitutions: st.Substitutions,
			HCacheLen:     int64(s.cache.HCacheLen()),
			LCacheLen:     int64(s.cache.LCacheLen()),
			Packages:      s.cache.PackagesLoaded(),
			DemandFetches: atomic.LoadInt64(&s.demandFetches),
		}
		s.policyMu.Unlock()
		encodeStatsResponseInto(e, out)
		if !s.legacyProto {
			// Optional trailing field; legacy framing stays byte-identical.
			e.i64(out.DemandFetches)
		}
	case opPing:
		e.u8(statusOK)
		// Capability handshake: a post-PR-5 client appends its capability
		// word; echo ours so it can pipeline. A bare legacy ping gets the
		// bare legacy answer.
		if !s.legacyProto && len(d.rest()) >= 4 {
			_ = d.u32() // client capabilities (none change our behavior yet)
			e.u32(capMux)
		}
	case opPeerGet:
		s.handlePeerGet(d, e, ctx)
	case opPeerGetBatch:
		if s.legacyProto {
			encodeErrorResponseInto(e, fmt.Sprintf("rpc: unknown opcode %d", op))
			return
		}
		s.handlePeerGetBatch(d, e, ctx)
	default:
		encodeErrorResponseInto(e, fmt.Sprintf("rpc: unknown opcode %d", op))
	}
}

// getBatch runs the cache policy for each requested sample and returns real
// payloads: cached bytes for residents, freshly fetched bytes otherwise
// (stored if the policy admitted the sample). The policy decision is a
// short critical section under policyMu; all byte fetching happens outside
// any lock, coalesced per sample. ctx is the request's trace context (zero
// when untraced); stage timings record into the obs histograms when
// enabled.
func (s *Server) getBatch(ids []dataset.SampleID, ctx obs.TraceCtx, dl time.Time) ([]Sample, error) {
	// Deadline check BEFORE the policy engine runs: an expired request must
	// not move cache state or counters, so shed+expired+served == offered
	// stays an exact identity.
	if s.deadlineExpired(dl) {
		return nil, overload.ErrExpired
	}

	spec := s.source.Spec()
	for _, id := range ids {
		if !spec.Contains(id) {
			return nil, fmt.Errorf("rpc: sample %d out of range for dataset %q", id, spec.Name)
		}
	}

	histsOn := s.obs.histsOn()
	s.policyMu.Lock()
	var tLock time.Time
	if histsOn {
		tLock = time.Now()
	}
	_, served := s.cache.FetchBatch(s.now(), ids)
	s.policyMu.Unlock()
	s.obs.policyLock.Since(tLock)

	if dist := s.dist; dist != nil && dist.peerCfg.Batch > 0 {
		return s.collectBatched(served, ctx, dl)
	}
	return s.collectSerial(served, ctx, histsOn, dl)
}

// deadlineExpired reports whether a request's budget has run out, counting
// the drop and recording the remaining-budget histogram as a side effect.
// A zero deadline never expires.
func (s *Server) deadlineExpired(dl time.Time) bool {
	if dl.IsZero() {
		return false
	}
	rem := time.Until(dl)
	if rem > 0 {
		s.obs.deadlineRem.Record(rem)
		return false
	}
	s.obs.deadlineRem.Record(0)
	atomic.AddInt64(&s.expiredCount, 1)
	return true
}

// collectSerial resolves the served ids one at a time — the pre-batching
// data plane, still used by lone servers and when the peer batch size is
// configured to 0 (the serial escape hatch the before/after benchmark
// compares against).
func (s *Server) collectSerial(served []dataset.SampleID, ctx obs.TraceCtx, histsOn bool, dl time.Time) ([]Sample, error) {
	out := make([]Sample, 0, len(served))
	for _, id := range served {
		var tHit time.Time
		if histsOn {
			tHit = time.Now()
		}
		payload, ok := s.payloads.get(id)
		if ok {
			s.obs.localHit.Since(tHit)
			s.prefetch.noteHit(id)
		} else {
			var err error
			payload, err = s.resolvePayload(id, ctx, dl)
			if err != nil {
				return nil, fmt.Errorf("rpc: backend fetch of sample %d: %w", id, err)
			}
		}
		out = append(out, Sample{ID: id, Payload: payload})
	}
	return out, nil
}

// collectBatched is the scatter-gather data plane: local hits are served
// from the payload store as usual, and ALL of the mini-batch's misses are
// resolved together — one directory multi-lookup, one opPeerGetBatch RPC
// per owning node (fanned out concurrently), backend reads for the rest —
// with every miss registered in the singleflight layer first, so
// concurrent requests (and the prefetch pool) for the same samples still
// coalesce onto exactly one fetch and every waiter is satisfied exactly
// once. See resolveMissBatch in peer.go for the fan-out itself.
func (s *Server) collectBatched(served []dataset.SampleID, ctx obs.TraceCtx, dl time.Time) ([]Sample, error) {
	histsOn := s.obs.histsOn()
	out := make([]Sample, len(served))

	// Pass 1: local hits, and the deduplicated miss list. Duplicate ids in
	// one batch must enter singleflight once — a second Begin on a key this
	// goroutine already leads would deadlock it against itself.
	var missIDs []dataset.SampleID
	missSet := make(map[dataset.SampleID]struct{})
	for i, id := range served {
		var tHit time.Time
		if histsOn {
			tHit = time.Now()
		}
		if payload, ok := s.payloads.get(id); ok {
			s.obs.localHit.Since(tHit)
			s.prefetch.noteHit(id)
			out[i] = Sample{ID: id, Payload: payload}
			continue
		}
		if _, dup := missSet[id]; !dup {
			missSet[id] = struct{}{}
			missIDs = append(missIDs, id)
		}
	}
	if len(missIDs) == 0 {
		return out, nil
	}

	// Pass 2: join or lead the in-flight fetch for every miss. Keys led by
	// another goroutine (or the prefetch pool) are only waited on; the keys
	// we lead are resolved by the scatter-gather fan-out, which MUST finish
	// every one of them (resolveMissBatch guarantees that on all paths).
	calls := make(map[dataset.SampleID]*singleflight.Call, len(missIDs))
	var leads []dataset.SampleID
	for _, id := range missIDs {
		c, leader := s.flight.Begin(int64(id))
		calls[id] = c
		if leader {
			leads = append(leads, id)
		}
	}
	if len(leads) > 0 {
		// A demand miss that overtakes a queued-but-unstarted planned
		// prefetch promotes it: this fetch becomes the one backend read and
		// the plan entry is cancelled (the backend must not pay twice).
		for _, id := range leads {
			s.prefetch.noteDemand(id)
		}
		s.resolveMissBatch(leads, calls, ctx, dl)
	}

	// Pass 3: collect results. Every position whose id entered the miss set
	// is filled from its call; pass-1 local hits keep their payloads. Calls
	// we led are already finished (Wait returns immediately); foreign calls
	// may still be in flight, and waiting on them is the coalescing win.
	leadSet := make(map[dataset.SampleID]struct{}, len(leads))
	for _, id := range leads {
		leadSet[id] = struct{}{}
	}
	for i, id := range served {
		if _, missed := missSet[id]; !missed {
			continue // local hit from pass 1
		}
		_, ours := leadSet[id]
		var tWait time.Time
		if !ours && histsOn {
			tWait = time.Now()
		}
		payload, err := calls[id].Wait()
		if err != nil {
			return nil, fmt.Errorf("rpc: backend fetch of sample %d: %w", id, err)
		}
		if !ours {
			atomic.AddInt64(&s.coalescedMisses, 1)
			s.obs.sfWait.Since(tWait)
		}
		out[i] = Sample{ID: id, Payload: payload}
	}
	return out, nil
}

// resolvePayload produces the bytes for a sample whose payload is not in
// the store, without holding any lock. Concurrent misses on the same
// sample — from request goroutines or the prefetch pool — are coalesced:
// one goroutine runs the fetch (peer cache first in distributed mode, then
// the backend), the rest wait and share its result. ctx is the trace
// context of the request driving this fetch (zero for untraced requests
// and prefetch work); when a traced request joins another request's
// in-flight fetch, the executing request's context owns the spans.
func (s *Server) resolvePayload(id dataset.SampleID, ctx obs.TraceCtx, dl time.Time) ([]byte, error) {
	return s.resolvePayloadProv(id, ctx, dl, provFetch)
}

// resolvePayloadProv is resolvePayload carrying the admission provenance
// of the caller (foreground fetch vs. prefetch worker). When callers with
// different provenance coalesce onto one flight, the executor's provenance
// wins — attribution is per fetch, not per waiter.
func (s *Server) resolvePayloadProv(id dataset.SampleID, ctx obs.TraceCtx, dl time.Time, prov admitProv) ([]byte, error) {
	var tWait time.Time
	if s.obs.histsOn() {
		tWait = time.Now()
	}
	payload, err, shared := s.flight.Do(int64(id), func() ([]byte, error) {
		// Re-check under the flight lock's happens-before edge: a racing
		// fetch may have filled the store between our miss and our turn.
		if p, ok := s.payloads.get(id); ok {
			return p, nil
		}
		if prov != provPrefetch {
			// A demand fetch executing for this sample promotes any
			// queued-but-unstarted planned prefetch (see noteDemand).
			s.prefetch.noteDemand(id)
		}
		// A peer's cache is cheaper than the backend (§III-E flow:
		// local cache → directory → remote cache → storage).
		if remote, ok := s.resolveRemote(id, ctx, dl); ok {
			// Owned elsewhere: this node must not keep a duplicate.
			s.policyMu.Lock()
			if s.cache.Drop(id) {
				s.payloads.delete(id)
			}
			s.policyMu.Unlock()
			return remote, nil
		}
		var tFetch time.Time
		measure := s.obs.histsOn() || s.obs.tracing(ctx)
		if measure || s.plan != nil {
			tFetch = time.Now()
		}
		p, err := s.source.Fetch(id)
		if !tFetch.IsZero() {
			dur := time.Since(tFetch)
			if measure {
				s.obs.backend.Record(dur)
				s.span(trace.KindBackend, id, 0, ctx, dur)
			}
			if s.plan != nil && err == nil {
				s.observeBackend(len(p), dur)
			}
		}
		if err != nil {
			return nil, err
		}
		if prov != provPrefetch {
			atomic.AddInt64(&s.demandFetches, 1)
		}
		s.admit(id, p, prov)
		return p, nil
	})
	if shared {
		atomic.AddInt64(&s.coalescedMisses, 1)
		// Only shared callers waited on someone else's fetch; the executor's
		// time is the backend/peer stage itself.
		s.obs.sfWait.Since(tWait)
	}
	return payload, err
}

// admit stores a freshly fetched payload if the policy engine kept the
// sample resident and (in distributed mode) the directory claim succeeds.
// Called without locks; takes policyMu only for the residency checks and
// the final store insert, never across the directory call.
func (s *Server) admit(id dataset.SampleID, payload []byte, prov admitProv) {
	s.policyMu.Lock()
	resident := s.cache.Resident(id)
	s.policyMu.Unlock()
	if !resident {
		return
	}
	if !s.claimOwnership(id) {
		// Lost the claim race: another node owns it now.
		s.policyMu.Lock()
		s.cache.Drop(id)
		s.policyMu.Unlock()
		return
	}
	// Insert under policyMu so an eviction (which deletes store entries
	// under policyMu) cannot interleave between our residency check and
	// the store write, which would leak a payload with no resident owner.
	s.policyMu.Lock()
	if s.cache.Resident(id) {
		s.payloads.put(id, payload)
		s.dec.countAdmit(prov)
	} else {
		// Evicted while we were claiming; hand the claim back.
		s.releaseOwnership(id)
	}
	s.policyMu.Unlock()
}

// CoalescedMisses reports how many miss-path fetches were served by
// joining another goroutine's in-flight fetch.
func (s *Server) CoalescedMisses() int64 { return atomic.LoadInt64(&s.coalescedMisses) }

// DemandFetches reports how many backend reads were issued on the demand
// path — the cold misses the clairvoyant plan exists to eliminate.
func (s *Server) DemandFetches() int64 { return atomic.LoadInt64(&s.demandFetches) }

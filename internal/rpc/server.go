package rpc

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"icache/internal/dataset"
	"icache/internal/icache"
	"icache/internal/obs"
	"icache/internal/sampling"
	"icache/internal/simclock"
	"icache/internal/singleflight"
	"icache/internal/trace"
	"icache/internal/wire"
)

// ByteSource supplies real sample payloads: storage.DataSource (generated
// on demand) and storage.FileSource (a packed dataset file) both satisfy it.
// Fetch must be safe for concurrent use: the serving path issues backend
// reads from many request goroutines and the prefetch pool at once.
type ByteSource interface {
	Spec() dataset.Spec
	Fetch(id dataset.SampleID) ([]byte, error)
}

// Server is the network-facing iCache server: it owns an icache.Server for
// cache policy decisions, a ByteSource for real sample bytes, and a payload
// store that mirrors the cache's residency. Policy time is driven by the
// wall clock, so the background loading thread's pacing carries over to
// live deployments.
//
// # Concurrency model and lock ordering
//
// The serving path is built so that no lock is ever held across I/O. Three
// lock classes exist, and they must be acquired in this order (any prefix
// is fine, the reverse is forbidden):
//
//	policyMu  →  payload-store shard locks (leaf)
//	connMu (independent leaf: listener/connection bookkeeping only)
//
//   - policyMu guards the icache.Server policy engine (FetchBatch,
//     InstallHList, StartEpoch, Stats, Resident, Drop, checkpoints) and is
//     only ever held for short, CPU-bound critical sections. It is NEVER
//     held across ByteSource.Fetch, peer reads, directory calls, or frame
//     I/O. Cache mutations fire the eviction observer synchronously, so
//     the observer also runs under policyMu; it may take shard locks
//     (policyMu → shard is the legal order) and must not block.
//   - payload-store shard locks (see payloadStore in store.go) are leaves:
//     taken and released inside single store methods, never held across
//     any other acquisition or I/O.
//   - connMu guards the listener and the live-connection set; it nests
//     with nothing.
//
// Slow work — backend fetches and remote peer reads — happens outside all
// locks, coalesced per sample ID through a singleflight group so K
// concurrent misses on one sample issue exactly one backend read. The
// distributed helpers in peer.go (resolveRemote, claimOwnership) are
// called WITHOUT policyMu held; the old "called with s.mu held, drops it
// across the network" contract is gone.
type Server struct {
	cache  *icache.Server
	source ByteSource
	start  time.Time

	// policyMu guards cache (the policy engine). Short critical sections
	// only; see the concurrency model above.
	policyMu sync.Mutex
	// payloads is the sharded byte store mirroring cache residency.
	payloads *payloadStore
	// flight coalesces concurrent miss-path fetches per sample ID.
	flight singleflight.Group
	// coalescedMisses counts miss-path fetches that joined an in-flight
	// fetch instead of issuing their own (atomic).
	coalescedMisses int64
	// prefetch is the bounded async worker pool that pulls payload bytes
	// for samples the loader delivered into the L-cache (nil when
	// disabled).
	prefetch *prefetcher

	ln      net.Listener
	conns   sync.WaitGroup
	connMu  sync.Mutex
	connSet map[net.Conn]struct{}
	closed  chan struct{}

	// dist holds the §III-E distributed wiring (nil on a lone server).
	dist *distState

	// obs holds the optional observability wiring — per-stage latency
	// histograms, span tracing, slow-request log (see obs.go). Configure
	// via EnableObs / SetSlowRequestLog before Serve; the serving path
	// reads these fields without synchronization.
	obs serverObs

	// Logf sinks server logs; defaults to log.Printf. Tests may silence it.
	Logf func(format string, args ...interface{})
}

// NewServer wires a cache policy engine to a byte source. If the policy
// engine's config enables prefetch workers, the server starts a bounded
// worker pool that asynchronously fills the payload store for samples the
// background loader delivers into the L-cache (the paper's Fig. 15
// prefetch-worker knob).
func NewServer(cacheSrv *icache.Server, source ByteSource) *Server {
	s := &Server{
		cache:    cacheSrv,
		source:   source,
		start:    time.Now(),
		payloads: newPayloadStore(),
		connSet:  make(map[net.Conn]struct{}),
		closed:   make(chan struct{}),
		Logf:     log.Printf,
	}
	cacheSrv.SetEvictObserver(func(id dataset.SampleID) {
		// Runs under policyMu (all cache mutations happen under it).
		// policyMu → shard lock is the legal order; releaseOwnership is
		// async and never blocks here.
		s.payloads.delete(id)
		s.releaseOwnership(id)
	})
	if n := cacheSrv.PrefetchWorkers(); n > 0 {
		s.prefetch = newPrefetcher(s, n)
		cacheSrv.SetLoadObserver(s.prefetch.enqueue)
	}
	return s
}

// now maps wall-clock elapsed time onto the cache's virtual timeline.
func (s *Server) now() simclock.Time { return simclock.Time(time.Since(s.start)) }

// Serve accepts connections on ln until Close is called. It always returns
// a non-nil error (net.ErrClosed after a clean shutdown).
func (s *Server) Serve(ln net.Listener) error {
	s.connMu.Lock()
	s.ln = ln
	s.connMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return net.ErrClosed
			default:
				return err
			}
		}
		s.connMu.Lock()
		s.connSet[conn] = struct{}{}
		s.connMu.Unlock()
		s.conns.Add(1)
		go func() {
			defer func() {
				s.connMu.Lock()
				delete(s.connSet, conn)
				s.connMu.Unlock()
				s.conns.Done()
			}()
			s.serveConn(conn)
		}()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr reports the bound listener address (once Serve has been called).
func (s *Server) Addr() net.Addr {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting and waits for in-flight connections to finish.
func (s *Server) Close() error {
	select {
	case <-s.closed:
		return nil
	default:
	}
	close(s.closed)
	var err error
	s.connMu.Lock()
	if s.ln != nil {
		err = s.ln.Close()
	}
	for conn := range s.connSet {
		conn.Close()
	}
	s.connMu.Unlock()
	s.conns.Wait()
	if s.prefetch != nil {
		s.prefetch.stop()
	}
	if s.dist != nil {
		s.StopMembership()
		s.dist.closePeers()
	}
	return err
}

// serveConn is one connection's request loop. It reuses a single request
// read buffer across frames (requests are fully decoded before the next
// read, so aliasing is safe) and encodes every response into a pooled
// buffer that is returned to the pool right after the frame is written.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	var rbuf []byte // request frame buffer, reused across requests
	for {
		req, err := wire.ReadFrameInto(conn, rbuf)
		if err != nil {
			if !errors.Is(err, net.ErrClosed) && err.Error() != "EOF" {
				// Normal client disconnects arrive as EOF; anything else is
				// worth a log line but never a crash.
				s.logIfUnexpected(err)
			}
			return
		}
		rbuf = req[:0]
		wb := wire.GetBuffer()
		e := buffer{Buffer: *wb}
		s.dispatchInto(req, &e)
		wb.B = e.B // appends may have grown past the pooled backing array
		err = writeFrame(conn, wb.B)
		wire.PutBuffer(wb)
		if err != nil {
			s.logIfUnexpected(err)
			return
		}
	}
}

func (s *Server) logIfUnexpected(err error) {
	if errors.Is(err, net.ErrClosed) {
		return
	}
	if s.Logf != nil {
		s.Logf("rpc: connection error: %v", err)
	}
}

// dispatch decodes one request and produces the response payload
// (allocating form, used by tests and the fuzz harness; the serving loop
// uses dispatchInto with a pooled buffer).
func (s *Server) dispatch(req []byte) []byte {
	var e buffer
	s.dispatchInto(req, &e)
	return e.payload()
}

// dispatchInto decodes one request and appends the response into e.
// Protocol errors are answered, never fatal. The request buffer may be
// reused by the caller after dispatchInto returns, so no slice of req is
// retained (decoders copy what they keep).
func (s *Server) dispatchInto(req []byte, e *buffer) {
	s.dispatchCtx(req, e, obs.TraceCtx{})
}

// dispatchCtx is dispatchInto carrying the request's trace context (zero
// when untraced). The opTraced envelope re-enters here exactly once:
// nested envelopes are rejected, so recursion depth is bounded at one.
func (s *Server) dispatchCtx(req []byte, e *buffer, ctx obs.TraceCtx) {
	d := newReader(req)
	op := d.u8()
	switch op {
	case opTraced:
		if ctx.Valid() {
			encodeErrorResponseInto(e, "rpc: nested trace envelope")
			return
		}
		id := uint64(d.i64())
		hop := d.u8()
		if err := d.err(); err != nil {
			encodeErrorResponseInto(e, err.Error())
			return
		}
		inner := obs.TraceCtx{ID: id, Hop: hop}
		if !inner.Valid() {
			encodeErrorResponseInto(e, "rpc: trace envelope with zero trace id")
			return
		}
		s.dispatchCtx(d.rest(), e, inner)
	case opGetBatch:
		var t0 time.Time
		if s.obs.histsOn() || s.obs.tracing(ctx) || s.obs.slowThresh > 0 {
			t0 = time.Now()
		}
		ids, err := decodeGetBatchRequest(d)
		if err != nil {
			encodeErrorResponseInto(e, err.Error())
			return
		}
		samples, err := s.getBatch(ids, ctx)
		if err != nil {
			encodeErrorResponseInto(e, err.Error())
			return
		}
		encodeGetBatchResponseInto(e, samples)
		if !t0.IsZero() {
			dur := time.Since(t0)
			s.obs.request.Record(dur)
			s.span(trace.KindRPCRecv, 0, int64(len(ids)), ctx, dur)
			s.maybeLogSlow(ctx, len(ids), dur)
		}
	case opUpdateImportance:
		items, err := decodeUpdateImportanceRequest(d)
		if err != nil {
			encodeErrorResponseInto(e, err.Error())
			return
		}
		s.policyMu.Lock()
		s.cache.InstallHList(sampling.NewHList(items))
		s.policyMu.Unlock()
		e.u8(statusOK)
	case opBeginEpoch:
		_ = d.u32() // epoch number: accepted for symmetry/logging
		s.policyMu.Lock()
		s.cache.StartEpoch(s.now())
		s.policyMu.Unlock()
		e.u8(statusOK)
	case opStats:
		s.policyMu.Lock()
		st := s.cache.Stats()
		out := Stats{
			Hits:          st.Hits,
			Misses:        st.Misses,
			Substitutions: st.Substitutions,
			HCacheLen:     int64(s.cache.HCacheLen()),
			LCacheLen:     int64(s.cache.LCacheLen()),
			Packages:      s.cache.PackagesLoaded(),
		}
		s.policyMu.Unlock()
		encodeStatsResponseInto(e, out)
	case opPing:
		e.u8(statusOK)
	case opPeerGet:
		s.handlePeerGet(d, e, ctx)
	default:
		encodeErrorResponseInto(e, fmt.Sprintf("rpc: unknown opcode %d", op))
	}
}

// getBatch runs the cache policy for each requested sample and returns real
// payloads: cached bytes for residents, freshly fetched bytes otherwise
// (stored if the policy admitted the sample). The policy decision is a
// short critical section under policyMu; all byte fetching happens outside
// any lock, coalesced per sample. ctx is the request's trace context (zero
// when untraced); stage timings record into the obs histograms when
// enabled.
func (s *Server) getBatch(ids []dataset.SampleID, ctx obs.TraceCtx) ([]Sample, error) {
	spec := s.source.Spec()
	for _, id := range ids {
		if !spec.Contains(id) {
			return nil, fmt.Errorf("rpc: sample %d out of range for dataset %q", id, spec.Name)
		}
	}

	histsOn := s.obs.histsOn()
	s.policyMu.Lock()
	var tLock time.Time
	if histsOn {
		tLock = time.Now()
	}
	_, served := s.cache.FetchBatch(s.now(), ids)
	s.policyMu.Unlock()
	s.obs.policyLock.Since(tLock)

	out := make([]Sample, 0, len(served))
	for _, id := range served {
		var tHit time.Time
		if histsOn {
			tHit = time.Now()
		}
		payload, ok := s.payloads.get(id)
		if ok {
			s.obs.localHit.Since(tHit)
		} else {
			var err error
			payload, err = s.resolvePayload(id, ctx)
			if err != nil {
				return nil, fmt.Errorf("rpc: backend fetch of sample %d: %w", id, err)
			}
		}
		out = append(out, Sample{ID: id, Payload: payload})
	}
	return out, nil
}

// resolvePayload produces the bytes for a sample whose payload is not in
// the store, without holding any lock. Concurrent misses on the same
// sample — from request goroutines or the prefetch pool — are coalesced:
// one goroutine runs the fetch (peer cache first in distributed mode, then
// the backend), the rest wait and share its result. ctx is the trace
// context of the request driving this fetch (zero for untraced requests
// and prefetch work); when a traced request joins another request's
// in-flight fetch, the executing request's context owns the spans.
func (s *Server) resolvePayload(id dataset.SampleID, ctx obs.TraceCtx) ([]byte, error) {
	var tWait time.Time
	if s.obs.histsOn() {
		tWait = time.Now()
	}
	payload, err, shared := s.flight.Do(int64(id), func() ([]byte, error) {
		// Re-check under the flight lock's happens-before edge: a racing
		// fetch may have filled the store between our miss and our turn.
		if p, ok := s.payloads.get(id); ok {
			return p, nil
		}
		// A peer's cache is cheaper than the backend (§III-E flow:
		// local cache → directory → remote cache → storage).
		if remote, ok := s.resolveRemote(id, ctx); ok {
			// Owned elsewhere: this node must not keep a duplicate.
			s.policyMu.Lock()
			if s.cache.Drop(id) {
				s.payloads.delete(id)
			}
			s.policyMu.Unlock()
			return remote, nil
		}
		var tFetch time.Time
		if s.obs.histsOn() || s.obs.tracing(ctx) {
			tFetch = time.Now()
		}
		p, err := s.source.Fetch(id)
		if !tFetch.IsZero() {
			dur := time.Since(tFetch)
			s.obs.backend.Record(dur)
			s.span(trace.KindBackend, id, 0, ctx, dur)
		}
		if err != nil {
			return nil, err
		}
		s.admit(id, p)
		return p, nil
	})
	if shared {
		atomic.AddInt64(&s.coalescedMisses, 1)
		// Only shared callers waited on someone else's fetch; the executor's
		// time is the backend/peer stage itself.
		s.obs.sfWait.Since(tWait)
	}
	return payload, err
}

// admit stores a freshly fetched payload if the policy engine kept the
// sample resident and (in distributed mode) the directory claim succeeds.
// Called without locks; takes policyMu only for the residency checks and
// the final store insert, never across the directory call.
func (s *Server) admit(id dataset.SampleID, payload []byte) {
	s.policyMu.Lock()
	resident := s.cache.Resident(id)
	s.policyMu.Unlock()
	if !resident {
		return
	}
	if !s.claimOwnership(id) {
		// Lost the claim race: another node owns it now.
		s.policyMu.Lock()
		s.cache.Drop(id)
		s.policyMu.Unlock()
		return
	}
	// Insert under policyMu so an eviction (which deletes store entries
	// under policyMu) cannot interleave between our residency check and
	// the store write, which would leak a payload with no resident owner.
	s.policyMu.Lock()
	if s.cache.Resident(id) {
		s.payloads.put(id, payload)
	} else {
		// Evicted while we were claiming; hand the claim back.
		s.releaseOwnership(id)
	}
	s.policyMu.Unlock()
}

// CoalescedMisses reports how many miss-path fetches were served by
// joining another goroutine's in-flight fetch.
func (s *Server) CoalescedMisses() int64 { return atomic.LoadInt64(&s.coalescedMisses) }

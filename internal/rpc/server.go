package rpc

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"icache/internal/dataset"
	"icache/internal/icache"
	"icache/internal/sampling"
	"icache/internal/simclock"
)

// ByteSource supplies real sample payloads: storage.DataSource (generated
// on demand) and storage.FileSource (a packed dataset file) both satisfy it.
type ByteSource interface {
	Spec() dataset.Spec
	Fetch(id dataset.SampleID) ([]byte, error)
}

// Server is the network-facing iCache server: it owns an icache.Server for
// cache policy decisions, a ByteSource for real sample bytes, and a payload
// store that mirrors the cache's residency. Policy time is driven by the
// wall clock, so the background loading thread's pacing carries over to
// live deployments.
type Server struct {
	cache  *icache.Server
	source ByteSource
	start  time.Time

	mu       sync.Mutex
	payloads map[dataset.SampleID][]byte

	ln      net.Listener
	conns   sync.WaitGroup
	connMu  sync.Mutex
	connSet map[net.Conn]struct{}
	closed  chan struct{}

	// dist holds the §III-E distributed wiring (nil on a lone server).
	dist *distState

	// Logf sinks server logs; defaults to log.Printf. Tests may silence it.
	Logf func(format string, args ...interface{})
}

// NewServer wires a cache policy engine to a byte source.
func NewServer(cacheSrv *icache.Server, source ByteSource) *Server {
	s := &Server{
		cache:    cacheSrv,
		source:   source,
		start:    time.Now(),
		payloads: make(map[dataset.SampleID][]byte),
		connSet:  make(map[net.Conn]struct{}),
		closed:   make(chan struct{}),
		Logf:     log.Printf,
	}
	cacheSrv.SetEvictObserver(func(id dataset.SampleID) {
		// Called with s.mu held (all cache mutations happen under it).
		delete(s.payloads, id)
		s.releaseOwnership(id)
	})
	return s
}

// now maps wall-clock elapsed time onto the cache's virtual timeline.
func (s *Server) now() simclock.Time { return simclock.Time(time.Since(s.start)) }

// Serve accepts connections on ln until Close is called. It always returns
// a non-nil error (net.ErrClosed after a clean shutdown).
func (s *Server) Serve(ln net.Listener) error {
	s.connMu.Lock()
	s.ln = ln
	s.connMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return net.ErrClosed
			default:
				return err
			}
		}
		s.connMu.Lock()
		s.connSet[conn] = struct{}{}
		s.connMu.Unlock()
		s.conns.Add(1)
		go func() {
			defer func() {
				s.connMu.Lock()
				delete(s.connSet, conn)
				s.connMu.Unlock()
				s.conns.Done()
			}()
			s.serveConn(conn)
		}()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr reports the bound listener address (once Serve has been called).
func (s *Server) Addr() net.Addr {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting and waits for in-flight connections to finish.
func (s *Server) Close() error {
	select {
	case <-s.closed:
		return nil
	default:
	}
	close(s.closed)
	var err error
	s.connMu.Lock()
	if s.ln != nil {
		err = s.ln.Close()
	}
	for conn := range s.connSet {
		conn.Close()
	}
	s.connMu.Unlock()
	s.conns.Wait()
	if s.dist != nil {
		s.dist.closePeers()
	}
	return err
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	for {
		req, err := readFrame(conn)
		if err != nil {
			if !errors.Is(err, net.ErrClosed) && err.Error() != "EOF" {
				// Normal client disconnects arrive as EOF; anything else is
				// worth a log line but never a crash.
				s.logIfUnexpected(err)
			}
			return
		}
		resp := s.dispatch(req)
		if err := writeFrame(conn, resp); err != nil {
			s.logIfUnexpected(err)
			return
		}
	}
}

func (s *Server) logIfUnexpected(err error) {
	if errors.Is(err, net.ErrClosed) {
		return
	}
	if s.Logf != nil {
		s.Logf("rpc: connection error: %v", err)
	}
}

// dispatch decodes one request and produces the response payload. Protocol
// errors are answered, never fatal.
func (s *Server) dispatch(req []byte) []byte {
	d := newReader(req)
	op := d.u8()
	switch op {
	case opGetBatch:
		ids, err := decodeGetBatchRequest(d)
		if err != nil {
			return encodeErrorResponse(err.Error())
		}
		samples, err := s.getBatch(ids)
		if err != nil {
			return encodeErrorResponse(err.Error())
		}
		return encodeGetBatchResponse(samples)
	case opUpdateImportance:
		items, err := decodeUpdateImportanceRequest(d)
		if err != nil {
			return encodeErrorResponse(err.Error())
		}
		s.mu.Lock()
		s.cache.InstallHList(sampling.NewHList(items))
		s.mu.Unlock()
		return []byte{statusOK}
	case opBeginEpoch:
		_ = d.u32() // epoch number: accepted for symmetry/logging
		s.mu.Lock()
		s.cache.StartEpoch(s.now())
		s.mu.Unlock()
		return []byte{statusOK}
	case opStats:
		s.mu.Lock()
		st := s.cache.Stats()
		out := Stats{
			Hits:          st.Hits,
			Misses:        st.Misses,
			Substitutions: st.Substitutions,
			HCacheLen:     int64(s.cache.HCacheLen()),
			LCacheLen:     int64(s.cache.LCacheLen()),
			Packages:      s.cache.PackagesLoaded(),
		}
		s.mu.Unlock()
		return encodeStatsResponse(out)
	case opPing:
		return []byte{statusOK}
	case opPeerGet:
		return s.handlePeerGet(d)
	default:
		return encodeErrorResponse(fmt.Sprintf("rpc: unknown opcode %d", op))
	}
}

// getBatch runs the cache policy for each requested sample and returns real
// payloads: cached bytes for residents, freshly fetched bytes otherwise
// (stored if the policy admitted the sample).
func (s *Server) getBatch(ids []dataset.SampleID) ([]Sample, error) {
	spec := s.source.Spec()
	for _, id := range ids {
		if !spec.Contains(id) {
			return nil, fmt.Errorf("rpc: sample %d out of range for dataset %q", id, spec.Name)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	_, served := s.cache.FetchBatch(s.now(), ids)
	out := make([]Sample, 0, len(served))
	for _, id := range served {
		payload, ok := s.payloads[id]
		if !ok {
			// A peer's cache is cheaper than the backend (§III-E flow:
			// local cache → directory → remote cache → storage).
			if remote, served := s.resolveRemote(id); served {
				payload = remote
				// Owned elsewhere: this node must not keep a duplicate.
				if s.cache.Drop(id) {
					delete(s.payloads, id)
				}
			} else {
				var err error
				payload, err = s.source.Fetch(id)
				if err != nil {
					return nil, fmt.Errorf("rpc: backend fetch of sample %d: %w", id, err)
				}
				if s.cache.Resident(id) {
					if s.claimOwnership(id) {
						s.payloads[id] = payload
					} else {
						// Lost the claim race: another node owns it now.
						s.cache.Drop(id)
					}
				}
			}
		}
		out = append(out, Sample{ID: id, Payload: payload})
	}
	return out, nil
}

package rpc

import (
	"net"
	"testing"
	"time"

	"icache/internal/dataset"
	"icache/internal/dkv"
	"icache/internal/icache"
	"icache/internal/sampling"
	"icache/internal/storage"
)

// distFixture is a two-node distributed deployment over loopback TCP: a
// directory service plus two cache nodes wired to it and to each other.
type distFixture struct {
	dirAddr string
	nodes   [2]*Server
	addrs   [2]string
	sources [2]*storage.DataSource
}

func startDistFixture(t *testing.T) *distFixture {
	return startDistFixtureHook(t, nil)
}

// startDistFixtureHook is startDistFixture with a per-node hook that runs
// after EnableDistributed and before Serve — mixed-version interop tests pin
// one node to the legacy wire protocol, tuning tests adjust peer configs.
func startDistFixtureHook(t *testing.T, hook func(n int, srv *Server)) *distFixture {
	t.Helper()
	spec := testSpec()

	dir := dkv.NewDirectory()
	dirSrv := dkv.NewDirServer(dir)
	dirLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go dirSrv.Serve(dirLn)
	t.Cleanup(func() { dirSrv.Close() })

	f := &distFixture{dirAddr: dirLn.Addr().String()}
	var lns [2]net.Listener
	for n := 0; n < 2; n++ {
		back, err := storage.NewBackend(spec, storage.OrangeFS())
		if err != nil {
			t.Fatal(err)
		}
		cacheSrv, err := icache.NewServer(back, icache.DefaultConfig(spec.TotalBytes()/5), sampling.DefaultIIS(), int64(n+5))
		if err != nil {
			t.Fatal(err)
		}
		source, err := storage.NewDataSource(spec)
		if err != nil {
			t.Fatal(err)
		}
		f.sources[n] = source
		f.nodes[n] = NewServer(cacheSrv, source)
		f.nodes[n].Logf = nil
		lns[n], err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		f.addrs[n] = lns[n].Addr().String()
	}
	for n := 0; n < 2; n++ {
		dirClient, err := dkv.DialDir(f.dirAddr, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		peer := map[dkv.NodeID]string{dkv.NodeID(1 - n): f.addrs[1-n]}
		f.nodes[n].EnableDistributed(dkv.NodeID(n), dirClient, peer)
		if hook != nil {
			hook(n, f.nodes[n])
		}
		go f.nodes[n].Serve(lns[n])
	}
	t.Cleanup(func() {
		f.nodes[0].Close()
		f.nodes[1].Close()
	})
	return f
}

func TestPeerServedWithoutBackendRead(t *testing.T) {
	f := startDistFixture(t)
	spec := testSpec()

	cA := dial(t, f.addrs[0])
	cB := dial(t, f.addrs[1])

	// Make ids 0..9 H-samples on both nodes so delivery is exact.
	var items []sampling.Item
	var ids []dataset.SampleID
	for id := dataset.SampleID(0); id < 10; id++ {
		items = append(items, sampling.Item{ID: id, IV: 5})
		ids = append(ids, id)
	}
	if err := cA.UpdateImportance(items); err != nil {
		t.Fatal(err)
	}
	if err := cB.UpdateImportance(items); err != nil {
		t.Fatal(err)
	}

	// Node A fetches and claims the samples.
	if _, err := cA.GetBatch(ids); err != nil {
		t.Fatal(err)
	}
	// Node B must now serve the same IDs from A's cache: its own backend
	// reads must not grow.
	before := f.sources[1].Reads()
	samples, err := cB.GetBatch(ids)
	if err != nil {
		t.Fatal(err)
	}
	if delta := f.sources[1].Reads() - before; delta != 0 {
		t.Fatalf("node B hit its backend %d times; want peer-served", delta)
	}
	for i, s := range samples {
		if s.ID != ids[i] {
			t.Fatalf("sample %d substituted", ids[i])
		}
		if err := spec.VerifyPayload(s.ID, s.Payload); err != nil {
			t.Fatalf("peer payload corrupt: %v", err)
		}
	}
	if served, _ := f.nodes[0].PeerStats(); served == 0 {
		t.Fatal("node A never served a peer request")
	}
	if _, hits := f.nodes[1].PeerStats(); hits == 0 {
		t.Fatal("node B recorded no peer hits")
	}
}

func TestNoDuplicatePayloadsAcrossNodes(t *testing.T) {
	f := startDistFixture(t)

	cA := dial(t, f.addrs[0])
	cB := dial(t, f.addrs[1])
	var items []sampling.Item
	var ids []dataset.SampleID
	for id := dataset.SampleID(20); id < 40; id++ {
		items = append(items, sampling.Item{ID: id, IV: 5})
		ids = append(ids, id)
	}
	if err := cA.UpdateImportance(items); err != nil {
		t.Fatal(err)
	}
	if err := cB.UpdateImportance(items); err != nil {
		t.Fatal(err)
	}
	if _, err := cA.GetBatch(ids); err != nil {
		t.Fatal(err)
	}
	if _, err := cB.GetBatch(ids); err != nil {
		t.Fatal(err)
	}
	// No sample's payload may be stored on both nodes.
	aStored := make(map[dataset.SampleID]bool)
	for _, id := range f.nodes[0].payloads.ids() {
		aStored[id] = true
	}
	for _, id := range f.nodes[1].payloads.ids() {
		if aStored[id] {
			t.Fatalf("sample %d stored on both nodes", id)
		}
	}
}

func TestPeerGetMissIsNotAnError(t *testing.T) {
	f := startDistFixture(t)
	c := dial(t, f.addrs[0])
	payload, found, err := c.PeerGet(1999)
	if err != nil {
		t.Fatal(err)
	}
	if found || payload != nil {
		t.Fatal("uncached sample reported found")
	}
}

func TestDistributedSurvivesDirectoryOutage(t *testing.T) {
	// If the directory connection dies, nodes must degrade to backend
	// fetches rather than failing requests.
	f := startDistFixture(t)
	c := dial(t, f.addrs[0])
	f.nodes[0].dist.dir.(*dkv.DirClient).Close()
	var ids []dataset.SampleID
	for id := dataset.SampleID(100); id < 110; id++ {
		ids = append(ids, id)
	}
	samples, err := c.GetBatch(ids)
	if err != nil {
		t.Fatalf("request failed during directory outage: %v", err)
	}
	if len(samples) != len(ids) {
		t.Fatalf("served %d of %d", len(samples), len(ids))
	}
}

package rpc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"icache/internal/dataset"
	"icache/internal/obs"
	"icache/internal/overload"
	"icache/internal/retry"
	"icache/internal/sampling"
	"icache/internal/trace"
	"icache/internal/wire"
)

// ErrDeadlineExceeded classifies every deadline-driven failure of a round
// trip — a local per-call timeout as well as the server answering
// statusExpired. Callers (the load harness's goodput accounting) match it
// with errors.Is; the two flavors below stay distinguishable internally
// because only the local timeout counts against the circuit breaker.
var ErrDeadlineExceeded = errors.New("rpc: deadline exceeded")

// errCallTimeout: the client gave up waiting locally (per-RPC timer or
// SetDeadline fired). The peer may be hung — a breaker failure.
var errCallTimeout = fmt.Errorf("call timed out: %w", ErrDeadlineExceeded)

// errExpiredByServer: the server answered promptly that the budget had run
// out before it would start the work. The peer is healthy — not a breaker
// failure.
var errExpiredByServer = fmt.Errorf("server dropped expired request: %w", ErrDeadlineExceeded)

// ServerError is an application error the server reported in a statusErr
// frame. The transport worked; these are never retried and never trip the
// circuit breaker.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "rpc: server error: " + e.Msg }

// Client is the framework-side iCache client module (the role the paper's
// iCacheImageFolder plays inside PyTorch): it forwards data-loader requests
// to the cache server and pushes the job's H-list after importance updates.
//
// A Client owns one TCP connection. Which transport runs on it is decided
// by a capability handshake at dial time (see mux.go):
//
//   - against a mux-capable server, requests are pipelined — N goroutines
//     can have N tagged frames in flight at once, matched back to their
//     callers by a demux reader goroutine;
//   - against a legacy server, the client degrades to the classic
//     one-frame-at-a-time exchange, serialized under the client mutex.
//
// The client is resilient by default: a transport failure triggers
// redial-and-retry under an exponential-backoff-with-jitter policy
// (retry.Default), so a long-running training job rides through cache
// server restarts — servers come back warm via checkpoints. The handshake
// re-runs on every redial, so a server that restarts into a different
// protocol generation is re-probed. Application errors reported by the
// server (status frames) are never retried.
type Client struct {
	addr    string
	timeout time.Duration
	policy  retry.Policy
	rng     *rand.Rand          // jitter PRNG; thread-safe via lockedSource
	sleep   func(time.Duration) // nil = time.Sleep; tests may stub

	// rpcTimeout bounds every round trip (0 = unbounded): a per-call
	// SetDeadline on serial exchanges, a per-call timer on mux calls. A
	// context deadline passed through the *Ctx APIs tightens (never loosens)
	// this bound.
	rpcTimeout time.Duration

	// breaker is the per-peer circuit breaker (nil = disabled). Shared with
	// the owner (the distState keeps one per NodeID across reconnects):
	// Allow gates every round trip, Report feeds transport outcomes back.
	breaker *overload.Breaker

	// mu guards the serial transport's connection and the closed flag.
	// Unlike the pre-mux client it is held across ONE exchange, not across
	// the whole retry loop.
	mu     sync.Mutex
	conn   net.Conn
	closed bool

	retries int64 // atomic: round trips that needed at least one retry
	redials int64 // atomic: successful connection re-establishments

	// Multiplexed transport state (mux.go). useMux is 1 after a handshake
	// granted capMux (atomic: the request path reads it lock-free); a
	// redial that negotiates down flips it back to 0 for good. muxMu
	// guards the current session generation.
	useMux      int32
	muxDisabled bool // config: never negotiate (emulates a legacy client)
	muxInflight int  // per-session in-flight bound (0 = default)
	muxMu       sync.Mutex
	mux         *muxSession

	// Observability (EnableObs; all nil/zero when disabled). rtHist times
	// whole round trips (retries included); tracer+sampler arm 1-in-N
	// request tracing, with span timestamps measured from obsStart so the
	// client's trace clock starts at dial like the server's starts at
	// NewServer.
	rtHist   *obs.Histogram
	tracer   *trace.Recorder
	sampler  *obs.Sampler
	obsStart time.Time
}

// defaultMuxInflight bounds outstanding requests per multiplexed
// connection when the dialer does not choose a limit (the -peer-inflight
// knob): deep enough to keep a batched miss path busy, shallow enough that
// one sick peer cannot absorb unbounded request goroutines.
const defaultMuxInflight = 32

// DialConfig parameterizes DialConfigured. The zero value selects the
// defaults Dial uses.
type DialConfig struct {
	// Timeout bounds the TCP dial and the capability handshake.
	Timeout time.Duration
	// Policy is the retry schedule (zero value: retry.Default()).
	Policy retry.Policy
	// MuxInflight bounds in-flight requests per multiplexed connection
	// (<= 0 selects defaultMuxInflight).
	MuxInflight int
	// DisableMux skips capability negotiation entirely, pinning the client
	// to the legacy one-frame-at-a-time transport (mixed-version interop
	// tests use this to stand in for an old client binary).
	DisableMux bool
	// RPCTimeout bounds each round trip (0 = unbounded). On the serial
	// transport it becomes a conn.SetDeadline per exchange; on the mux
	// transport a per-call timer, so one slow response cannot poison the
	// shared pipelined connection.
	RPCTimeout time.Duration
	// Breaker, when non-nil, is the circuit breaker consulted before and
	// reported to after every round trip. Owned by the caller so it survives
	// client reconnects (the peer table keeps one per node).
	Breaker *overload.Breaker
}

// Dial connects to an iCache server with the default retry policy.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	return DialPolicy(addr, timeout, retry.Default())
}

// DialPolicy connects with an explicit retry policy. The policy governs
// both the initial dial and every subsequent round trip. Jitter draws from
// a PRNG seeded deterministically per client so chaos tests replay.
func DialPolicy(addr string, timeout time.Duration, policy retry.Policy) (*Client, error) {
	return DialConfigured(addr, DialConfig{Timeout: timeout, Policy: policy})
}

// DialConfigured connects with explicit transport configuration.
func DialConfigured(addr string, cfg DialConfig) (*Client, error) {
	policy := cfg.Policy
	if policy == (retry.Policy{}) {
		policy = retry.Default()
	}
	inflight := cfg.MuxInflight
	if inflight <= 0 {
		inflight = defaultMuxInflight
	}
	c := &Client{
		addr:        addr,
		timeout:     cfg.Timeout,
		policy:      policy,
		rng:         rand.New(newLockedSource(int64(len(addr))*0x9E37 + 1)),
		muxDisabled: cfg.DisableMux,
		muxInflight: inflight,
		rpcTimeout:  cfg.RPCTimeout,
		breaker:     cfg.Breaker,
		obsStart:    time.Now(),
	}
	err := retry.Do(policy, c.rng, c.sleep, func(int) error {
		conn, err := net.DialTimeout("tcp", addr, cfg.Timeout)
		if err != nil {
			return err
		}
		if c.muxDisabled {
			c.conn = conn
			return nil
		}
		caps, err := negotiate(conn, cfg.Timeout)
		if err != nil {
			conn.Close()
			return err
		}
		c.conn = conn
		if caps&capMux != 0 {
			atomic.StoreInt32(&c.useMux, 1)
			c.mux = newMuxSession(conn, c.muxInflight)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	return c, nil
}

// Muxed reports whether the client negotiated the multiplexed transport
// with its server (false against a legacy peer, or after DisableMux).
func (c *Client) Muxed() bool { return atomic.LoadInt32(&c.useMux) == 1 }

// Close tears down the connection (and the demux reader, when muxing).
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	conn := c.conn
	c.mu.Unlock()
	c.muxMu.Lock()
	m := c.mux
	c.mux = nil
	c.muxMu.Unlock()
	if m != nil {
		m.close() // closes the conn and waits for the demux reader to exit
	}
	if conn != nil {
		// On a muxed client the session owns the same conn and just closed
		// it; the double close is harmless and not an error worth reporting.
		if err := conn.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			return err
		}
	}
	return nil
}

// Resilience reports how many round trips needed a retry and how many
// redials succeeded over the client's lifetime.
func (c *Client) Resilience() (retries, redials int64) {
	return atomic.LoadInt64(&c.retries), atomic.LoadInt64(&c.redials)
}

// roundTrip sends one request frame and decodes the status byte of the
// response, returning the remaining body. Transport failures (broken
// connection, failed write/read) are retried under the client's policy
// with a fresh connection per attempt; server status errors surface
// immediately. The transport per attempt is whatever the latest handshake
// negotiated: pipelined frames on a mux session, or a serial exchange.
func (c *Client) roundTrip(req []byte) (*reader, error) {
	d, _, err := c.roundTripOwned(req)
	// The pooled backing buffer (if any) is intentionally dropped, not
	// recycled: this path hands decoded bytes out by reference with an
	// unbounded lifetime. Borrowed-read callers use roundTripOwned.
	return d, err
}

// roundTripOwned is roundTrip, additionally returning the pooled buffer
// backing the response when the transport read into one (nil otherwise).
// A caller that can prove it retains nothing from the reader recycles the
// buffer with wire.PutBuffer; status errors recycle it internally.
func (c *Client) roundTripOwned(req []byte) (*reader, *wire.Buffer, error) {
	return c.roundTripDeadline(req, c.callDeadline())
}

// callDeadline is the default per-call bound from the client's configured
// RPCTimeout (zero time = unbounded).
func (c *Client) callDeadline() time.Time {
	if c.rpcTimeout > 0 {
		return time.Now().Add(c.rpcTimeout)
	}
	return time.Time{}
}

// tightenDeadline combines a caller-supplied deadline with the client's
// configured RPCTimeout, returning whichever bound is earlier (zero time =
// unbounded on that side).
func (c *Client) tightenDeadline(dl time.Time) time.Time {
	cd := c.callDeadline()
	if dl.IsZero() {
		return cd
	}
	if cd.IsZero() || dl.Before(cd) {
		return dl
	}
	return cd
}

// roundTripDeadline is the round-trip core. A non-zero deadline bounds the
// whole call — every attempt's network wait AND the retry backoff between
// attempts — so a caller's budget is honored even when the transport hangs
// rather than fails. When a circuit breaker is configured it gates entry
// (open breaker = fail fast, no network) and absorbs the outcome.
func (c *Client) roundTripDeadline(req []byte, deadline time.Time) (*reader, *wire.Buffer, error) {
	if b := c.breaker; b != nil && !b.Allow(time.Now()) {
		return nil, nil, fmt.Errorf("rpc: %s: %w", c.addr, overload.ErrBreakerOpen)
	}
	var t0 time.Time
	if c.rtHist != nil {
		t0 = time.Now()
		defer func() { c.rtHist.Since(t0) }()
	}
	var resp []byte
	var owner *wire.Buffer
	retried := false
	err := retry.Do(c.policy, c.rng, c.sleep, func(attempt int) error {
		if attempt > 0 {
			retried = true
			// Budget check before a retry: a doomed attempt would only turn
			// "late" into "later". The first attempt always runs — an already
			// expired budget still reaches the server, which answers
			// statusExpired and keeps the accounting honest.
			if !deadline.IsZero() && !time.Now().Before(deadline) {
				return retry.Permanent(fmt.Errorf("rpc: %s: retry budget spent: %w", c.addr, errCallTimeout))
			}
		}
		r, o, err := c.attempt(req, attempt > 0, deadline)
		if err != nil {
			return err
		}
		resp, owner = r, o
		return nil
	})
	if retried {
		atomic.AddInt64(&c.retries, 1)
	}
	if err != nil {
		c.reportBreaker(err)
		return nil, nil, err
	}
	d := newReader(resp)
	var callErr error
	switch status := d.u8(); status {
	case statusOK:
		c.reportBreaker(nil)
		return d, owner, nil
	case statusErr:
		callErr = &ServerError{Msg: d.str()}
	case statusRetryAfter:
		callErr = &overload.RetryAfterError{After: time.Duration(d.i64())}
	case statusExpired:
		callErr = errExpiredByServer
	default:
		callErr = fmt.Errorf("rpc: unknown status %d", status)
	}
	wire.PutBuffer(owner)
	c.reportBreaker(callErr)
	return nil, nil, callErr
}

// reportBreaker feeds one round-trip outcome to the breaker (if any).
func (c *Client) reportBreaker(err error) {
	if b := c.breaker; b != nil {
		b.Report(time.Now(), breakerOutcomeOK(err))
	}
}

// breakerOutcomeOK maps a round-trip result to peer health. Application
// errors (statusErr) and server-side expiry mean the peer answered — those
// are successes for the circuit. Transport failures, local timeouts, and
// shed rejections (a browned-out peer asking callers to go away) are the
// failures that should open it.
func breakerOutcomeOK(err error) bool {
	if err == nil {
		return true
	}
	var se *ServerError
	if errors.As(err, &se) {
		return true
	}
	return errors.Is(err, errExpiredByServer)
}

// attempt performs one exchange on whichever transport is currently
// negotiated. isRetry forces the serial transport to redial first.
//
// A retried attempt on a muxed client goes over a ONE-SHOT serial
// connection instead of re-establishing the mux session inline: the retry's
// success must not depend on the mux machinery (handshake, demux reader,
// pipelined peers on the same connection) coming back healthy — a plain
// dial-exchange-close is the most failure-independent path available, and
// the next regular request re-establishes the session lazily. This also
// breaks deterministic failure resonance: a fault schedule that keys on
// per-connection I/O patterns (the chaos suite's DropEvery rules) would
// otherwise hit a freshly handshaken session at the same relative offset on
// every retry.
func (c *Client) attempt(req []byte, isRetry bool, deadline time.Time) ([]byte, *wire.Buffer, error) {
	if c.Muxed() {
		if isRetry {
			resp, err := c.oneShotSerial(req, deadline)
			return resp, nil, err
		}
		sess, fresh, err := c.muxSessionFor()
		if err != nil {
			return nil, nil, err
		}
		if sess != nil {
			resp, owner, err := sess.doOwned(req, deadline)
			if err != nil {
				if errors.Is(err, errCallTimeout) {
					// The SESSION is fine — only this call ran out of time.
					// Tearing the mux down would fail its pipelined peers.
					return nil, nil, retry.Permanent(err)
				}
				c.muxFailed(sess)
				return nil, nil, err
			}
			return resp, owner, nil
		}
		// The redial negotiated DOWN (server restarted into a legacy
		// binary): a fresh serial connection is already installed, use it.
		_ = fresh
		isRetry = false
	}
	resp, err := c.serialAttempt(req, isRetry, deadline)
	return resp, nil, err
}

// oneShotSerial performs one exchange on a private dial-and-close
// connection, never touching the serial conn or the mux session (a racing
// goroutine may have installed a healthy new generation we must not
// disturb). Used only for retry attempts of a muxed client.
func (c *Client) oneShotSerial(req []byte, deadline time.Time) ([]byte, error) {
	if c.isClosed() {
		return nil, retry.Permanent(fmt.Errorf("rpc: client for %s is closed", c.addr))
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return nil, fmt.Errorf("rpc: redial %s: %w", c.addr, err)
	}
	defer conn.Close()
	if !deadline.IsZero() {
		conn.SetDeadline(deadline)
	}
	atomic.AddInt64(&c.redials, 1)
	if err := writeFrame(conn, req); err != nil {
		return nil, fmt.Errorf("rpc: send: %w", err)
	}
	resp, err := readFrame(conn)
	if err != nil {
		if isTimeout(err) {
			return nil, retry.Permanent(fmt.Errorf("rpc: receive: %w", errCallTimeout))
		}
		return nil, fmt.Errorf("rpc: receive: %w", err)
	}
	return resp, nil
}

// muxSessionFor returns a live mux session, dialing a new generation when
// the current one is broken. A nil session with nil error means the redial
// handshake negotiated down to the serial transport (useMux was flipped and
// the fresh connection installed for serialAttempt).
func (c *Client) muxSessionFor() (*muxSession, bool, error) {
	c.muxMu.Lock()
	defer c.muxMu.Unlock()
	if c.isClosed() {
		return nil, false, retry.Permanent(fmt.Errorf("rpc: client for %s is closed", c.addr))
	}
	if c.mux != nil && !c.mux.broken() {
		return c.mux, false, nil
	}
	if c.mux != nil {
		c.mux.close()
		c.mux = nil
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return nil, false, fmt.Errorf("rpc: redial %s: %w", c.addr, err)
	}
	caps, err := negotiate(conn, c.timeout)
	if err != nil {
		conn.Close()
		return nil, false, fmt.Errorf("rpc: redial %s: %w", c.addr, err)
	}
	atomic.AddInt64(&c.redials, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return nil, false, retry.Permanent(fmt.Errorf("rpc: client for %s is closed", c.addr))
	}
	old := c.conn
	c.conn = conn
	c.mu.Unlock()
	if old != nil && old != conn {
		old.Close()
	}
	if caps&capMux == 0 {
		atomic.StoreInt32(&c.useMux, 0)
		return nil, true, nil
	}
	c.mux = newMuxSession(conn, c.muxInflight)
	return c.mux, true, nil
}

// muxFailed discards a broken session generation so the next attempt dials
// fresh (generation-based redial: a racing goroutine that already installed
// a new session is left alone).
func (c *Client) muxFailed(sess *muxSession) {
	c.muxMu.Lock()
	if c.mux == sess {
		c.mux = nil
	}
	c.muxMu.Unlock()
	sess.close()
}

func (c *Client) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// serialAttempt performs one legacy-framing exchange under mu: write one
// frame, read one frame. Holding mu across the exchange keeps concurrent
// users of a legacy client request/response-aligned — they serialize, which
// is exactly the head-of-line blocking the mux transport removes.
func (c *Client) serialAttempt(req []byte, redial bool, deadline time.Time) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, retry.Permanent(fmt.Errorf("rpc: client for %s is closed", c.addr))
	}
	if c.conn == nil || redial {
		if err := c.redialLocked(); err != nil {
			return nil, fmt.Errorf("rpc: redial %s: %w", c.addr, err)
		}
	}
	if !deadline.IsZero() {
		// Per-exchange bound; cleared after so an unbounded caller is not
		// poisoned by a stale deadline on the shared serial connection.
		c.conn.SetDeadline(deadline)
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := writeFrame(c.conn, req); err != nil {
		return nil, fmt.Errorf("rpc: send: %w", err)
	}
	resp, err := readFrame(c.conn)
	if err != nil {
		if isTimeout(err) {
			// The connection is desynchronized, not dead: the request went
			// out and its response will eventually arrive unread. Drop it so
			// the next exchange dials fresh instead of decoding a stale frame.
			c.conn.Close()
			c.conn = nil
			return nil, retry.Permanent(fmt.Errorf("rpc: receive: %w", errCallTimeout))
		}
		return nil, fmt.Errorf("rpc: receive: %w", err)
	}
	return resp, nil
}

// isTimeout reports whether a transport error is a SetDeadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// redialLocked replaces the serial connection (mu held).
func (c *Client) redialLocked() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return err
	}
	if c.conn != nil {
		c.conn.Close()
	}
	c.conn = conn
	atomic.AddInt64(&c.redials, 1)
	return nil
}

// GetBatch fetches a mini-batch through the cache (the paper's rpc_loader
// interface). The returned samples may carry different IDs than requested
// when the server substituted missed L-samples.
//
// When client observability is armed (EnableObs) and the sampler fires,
// the request travels inside a trace envelope and the client records the
// hop-0 KindRPCSend span covering the full round trip.
func (c *Client) GetBatch(ids []dataset.SampleID) ([]Sample, error) {
	return c.GetBatchCtx(context.Background(), ids)
}

// GetBatchCtx is GetBatch with deadline propagation: the context's
// remaining time is encoded into the request's opDeadline envelope, so the
// server (and every peer/directory hop it fans out to) inherits the budget
// and drops work that can no longer finish in time. The same deadline
// bounds the local wait (a hung transport cannot outlive the context).
func (c *Client) GetBatchCtx(ctx context.Context, ids []dataset.SampleID) ([]Sample, error) {
	deadline, budget, err := c.ctxBounds(ctx)
	if err != nil {
		return nil, err
	}
	req := encodeGetBatchRequest(ids)
	tctx := c.beginTrace()
	var t0 time.Time
	if tctx.Valid() {
		req = WrapTraced(req, tctx.Next())
		t0 = time.Now()
	}
	if budget > 0 {
		req = encodeDeadlineRequest(budget, req)
	}
	d, _, err := c.roundTripDeadline(req, deadline)
	if tctx.Valid() {
		c.tracer.RecordSpan(time.Since(c.obsStart), trace.KindRPCSend, 0,
			spanArgPeer, tctx.ID, tctx.Hop, time.Since(t0))
	}
	if err != nil {
		return nil, err
	}
	samples, err := decodeGetBatchResponse(d)
	if err != nil {
		return nil, err
	}
	if len(samples) != len(ids) {
		return nil, fmt.Errorf("rpc: got %d samples for %d requests", len(samples), len(ids))
	}
	return samples, nil
}

// ctxBounds merges a context deadline with the configured per-call
// RPCTimeout: the local bound is the earlier of the two, and the wire
// budget (0 = none) is the context's remaining time. An already-done
// context fails fast without a network round trip.
func (c *Client) ctxBounds(ctx context.Context) (deadline time.Time, budget time.Duration, err error) {
	if ctxErr := ctx.Err(); ctxErr != nil {
		if errors.Is(ctxErr, context.DeadlineExceeded) {
			return time.Time{}, 0, fmt.Errorf("rpc: %w", errCallTimeout)
		}
		return time.Time{}, 0, ctxErr
	}
	deadline = c.callDeadline()
	if cd, ok := ctx.Deadline(); ok {
		budget = time.Until(cd)
		if budget <= 0 {
			budget = 1 // raced to expiry: still send, server answers statusExpired
		}
		if deadline.IsZero() || cd.Before(deadline) {
			deadline = cd
		}
	}
	return deadline, budget, nil
}

// sampleSlicePool recycles the decoded-sample scratch slices GetBatchFunc
// hands to its callback. Stored as pointers so checkouts don't re-box the
// slice header.
var sampleSlicePool = sync.Pool{New: func() interface{} {
	s := make([]Sample, 0, 64)
	return &s
}}

// GetBatchFunc fetches a mini-batch and hands the decoded samples to fn
// instead of returning them. The samples — every ID and Payload slice —
// are valid ONLY for the duration of the callback: they alias a pooled
// response buffer that is recycled the moment fn returns, so a caller that
// needs bytes afterwards must copy them inside fn. In exchange, a warm
// round trip on the multiplexed transport performs no per-request frame
// allocation on the client: the demux reader's pooled buffer is checked
// out, decoded, consumed, and returned. Training loops that decode each
// payload straight into a framework tensor (and the load harness, which
// only counts bytes) fit this contract exactly; use GetBatch when sample
// lifetimes are unbounded.
func (c *Client) GetBatchFunc(ids []dataset.SampleID, fn func([]Sample) error) error {
	return c.GetBatchFuncCtx(context.Background(), ids, fn)
}

// GetBatchFuncCtx is GetBatchFunc with deadline propagation (see
// GetBatchCtx). The opDeadline envelope is prefixed in the same pooled
// request buffer, so the borrowed-read hot path stays allocation-free.
func (c *Client) GetBatchFuncCtx(ctx context.Context, ids []dataset.SampleID, fn func([]Sample) error) error {
	deadline, budget, err := c.ctxBounds(ctx)
	if err != nil {
		return err
	}
	e := wire.GetBuffer()
	if budget > 0 {
		e.U8(opDeadline)
		e.I64(int64(budget))
	}
	e.U8(opGetBatch)
	e.U32(uint32(len(ids)))
	for _, id := range ids {
		e.I64(int64(id))
	}
	req := e.B
	tctx := c.beginTrace()
	var t0 time.Time
	if tctx.Valid() {
		req = WrapTraced(req, tctx.Next())
		t0 = time.Now()
	}
	d, owner, err := c.roundTripDeadline(req, deadline)
	wire.PutBuffer(e) // every attempt copies req before writing; safe to recycle now
	if tctx.Valid() {
		c.tracer.RecordSpan(time.Since(c.obsStart), trace.KindRPCSend, 0,
			spanArgPeer, tctx.ID, tctx.Hop, time.Since(t0))
	}
	if err != nil {
		return err
	}
	scratch := sampleSlicePool.Get().(*[]Sample)
	samples, err := decodeGetBatchResponseInto(d, (*scratch)[:0])
	if err == nil && len(samples) != len(ids) {
		err = fmt.Errorf("rpc: got %d samples for %d requests", len(samples), len(ids))
	}
	if err == nil {
		err = fn(samples)
	}
	// Drop the payload references before pooling the scratch slice, then
	// recycle the frame buffer the payloads aliased.
	for i := range samples {
		samples[i] = Sample{}
	}
	*scratch = samples[:0]
	sampleSlicePool.Put(scratch)
	wire.PutBuffer(owner)
	return err
}

// UpdateImportance pushes the job's H-list to the server (the paper's
// update_ipersample interface).
func (c *Client) UpdateImportance(items []sampling.Item) error {
	_, err := c.roundTrip(encodeUpdateImportanceRequest(items))
	return err
}

// BeginEpoch tells the server an epoch boundary passed so it can
// repartition, reset substitution state, and roll the loading thread.
func (c *Client) BeginEpoch(epoch int) error {
	var e buffer
	e.u8(opBeginEpoch)
	e.u32(uint32(epoch))
	_, err := c.roundTrip(e.payload())
	return err
}

// BeginEpochPlan is BeginEpoch carrying the next epoch's known access
// sequence (the IIS sampler draws it before the epoch starts). A
// clairvoyant server installs it as a prefetch plan; a reactive one still
// crosses the boundary and ignores the schedule. Servers predating the
// opcode reject it — callers fall back to BeginEpoch on error.
func (c *Client) BeginEpochPlan(epoch int, ids []dataset.SampleID) error {
	_, err := c.roundTrip(encodeEpochPlanRequest(epoch, ids))
	return err
}

// PlanPreplace hands the server plan entries it is the future owner of
// (planner-to-planner traffic). Returns how many entries the server
// accepted into its plan (0 when its planner is off).
func (c *Client) PlanPreplace(ids []dataset.SampleID) (int, error) {
	d, err := c.roundTrip(encodePlanPreplaceRequest(ids))
	if err != nil {
		return 0, err
	}
	accepted := d.u32()
	if err := d.err(); err != nil {
		return 0, err
	}
	return int(accepted), nil
}

// Stats fetches the server's counter snapshot.
func (c *Client) Stats() (Stats, error) {
	var e buffer
	e.u8(opStats)
	d, err := c.roundTrip(e.payload())
	if err != nil {
		return Stats{}, err
	}
	return decodeStatsResponse(d)
}

// Ping checks liveness. (The capability handshake rides a richer ping; see
// negotiate in mux.go. This one stays byte-identical to the legacy ping so
// old servers answer it.)
func (c *Client) Ping() error {
	var e buffer
	e.u8(opPing)
	_, err := c.roundTrip(e.payload())
	return err
}

// lockedSource is a mutex-guarded rand.Source64: the mux transport draws
// retry jitter from concurrent request goroutines, and the stdlib sources
// are not safe for concurrent use. Seeded deterministically per client —
// draw VALUES replay under a fixed seed, though the interleaving across
// goroutines is scheduling-dependent (jitter only perturbs backoff timing,
// never logical outcomes).
type lockedSource struct {
	mu  sync.Mutex
	src rand.Source64
}

func newLockedSource(seed int64) *lockedSource {
	return &lockedSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (s *lockedSource) Int63() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Int63()
}

func (s *lockedSource) Uint64() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Uint64()
}

func (s *lockedSource) Seed(seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.src.Seed(seed)
}

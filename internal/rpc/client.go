package rpc

import (
	"fmt"
	"net"
	"sync"
	"time"

	"icache/internal/dataset"
	"icache/internal/sampling"
)

// Client is the framework-side iCache client module (the role the paper's
// iCacheImageFolder plays inside PyTorch): it forwards data-loader requests
// to the cache server and pushes the job's H-list after importance updates.
// A Client owns one TCP connection and serializes requests on it; data
// loaders with several workers open one Client per worker.
type Client struct {
	addr    string
	timeout time.Duration

	mu     sync.Mutex
	conn   net.Conn
	closed bool
}

// Dial connects to an iCache server.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	return &Client{addr: addr, timeout: timeout, conn: conn}, nil
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return c.conn.Close()
}

// roundTrip sends one request frame and decodes the status byte of the
// response, returning the remaining body. A transport failure triggers one
// transparent redial-and-retry — cache servers restart (warm, via
// checkpoints) and a long-running training job should ride through it —
// before the error is surfaced.
func (c *Client) roundTrip(req []byte) (*reader, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, err := c.exchange(req)
	if err != nil && !c.closed {
		if redialErr := c.redial(); redialErr == nil {
			resp, err = c.exchange(req)
		}
	}
	if err != nil {
		return nil, err
	}
	d := newReader(resp)
	switch status := d.u8(); status {
	case statusOK:
		return d, nil
	case statusErr:
		return nil, fmt.Errorf("rpc: server error: %s", d.str())
	default:
		return nil, fmt.Errorf("rpc: unknown status %d", status)
	}
}

// exchange performs one write/read on the current connection (mu held).
func (c *Client) exchange(req []byte) ([]byte, error) {
	if err := writeFrame(c.conn, req); err != nil {
		return nil, fmt.Errorf("rpc: send: %w", err)
	}
	resp, err := readFrame(c.conn)
	if err != nil {
		return nil, fmt.Errorf("rpc: receive: %w", err)
	}
	return resp, nil
}

// redial replaces the connection (mu held).
func (c *Client) redial() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return err
	}
	c.conn.Close()
	c.conn = conn
	return nil
}

// GetBatch fetches a mini-batch through the cache (the paper's rpc_loader
// interface). The returned samples may carry different IDs than requested
// when the server substituted missed L-samples.
func (c *Client) GetBatch(ids []dataset.SampleID) ([]Sample, error) {
	d, err := c.roundTrip(encodeGetBatchRequest(ids))
	if err != nil {
		return nil, err
	}
	samples, err := decodeGetBatchResponse(d)
	if err != nil {
		return nil, err
	}
	if len(samples) != len(ids) {
		return nil, fmt.Errorf("rpc: got %d samples for %d requests", len(samples), len(ids))
	}
	return samples, nil
}

// UpdateImportance pushes the job's H-list to the server (the paper's
// update_ipersample interface).
func (c *Client) UpdateImportance(items []sampling.Item) error {
	_, err := c.roundTrip(encodeUpdateImportanceRequest(items))
	return err
}

// BeginEpoch tells the server an epoch boundary passed so it can
// repartition, reset substitution state, and roll the loading thread.
func (c *Client) BeginEpoch(epoch int) error {
	var e buffer
	e.u8(opBeginEpoch)
	e.u32(uint32(epoch))
	_, err := c.roundTrip(e.payload())
	return err
}

// Stats fetches the server's counter snapshot.
func (c *Client) Stats() (Stats, error) {
	var e buffer
	e.u8(opStats)
	d, err := c.roundTrip(e.payload())
	if err != nil {
		return Stats{}, err
	}
	return decodeStatsResponse(d)
}

// Ping checks liveness.
func (c *Client) Ping() error {
	var e buffer
	e.u8(opPing)
	_, err := c.roundTrip(e.payload())
	return err
}

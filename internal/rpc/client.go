package rpc

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"icache/internal/dataset"
	"icache/internal/obs"
	"icache/internal/retry"
	"icache/internal/sampling"
	"icache/internal/trace"
)

// Client is the framework-side iCache client module (the role the paper's
// iCacheImageFolder plays inside PyTorch): it forwards data-loader requests
// to the cache server and pushes the job's H-list after importance updates.
// A Client owns one TCP connection and serializes requests on it; data
// loaders with several workers open one Client per worker.
//
// The client is resilient by default: a transport failure triggers
// redial-and-retry under an exponential-backoff-with-jitter policy
// (retry.Default), so a long-running training job rides through cache
// server restarts — servers come back warm via checkpoints. Application
// errors reported by the server (status frames) are never retried.
type Client struct {
	addr    string
	timeout time.Duration
	policy  retry.Policy

	mu     sync.Mutex
	conn   net.Conn
	closed bool
	rng    *rand.Rand
	sleep  func(time.Duration) // nil = time.Sleep; tests may stub

	retries int64 // round trips that needed at least one retry
	redials int64 // successful connection re-establishments

	// Observability (EnableObs; all nil/zero when disabled). rtHist times
	// whole round trips (retries included); tracer+sampler arm 1-in-N
	// request tracing, with span timestamps measured from obsStart so the
	// client's trace clock starts at dial like the server's starts at
	// NewServer.
	rtHist   *obs.Histogram
	tracer   *trace.Recorder
	sampler  *obs.Sampler
	obsStart time.Time
}

// Dial connects to an iCache server with the default retry policy.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	return DialPolicy(addr, timeout, retry.Default())
}

// DialPolicy connects with an explicit retry policy. The policy governs
// both the initial dial and every subsequent round trip. Jitter draws from
// a PRNG seeded deterministically per client so chaos tests replay.
func DialPolicy(addr string, timeout time.Duration, policy retry.Policy) (*Client, error) {
	c := &Client{
		addr:     addr,
		timeout:  timeout,
		policy:   policy,
		rng:      rand.New(rand.NewSource(int64(len(addr))*0x9E37 + 1)),
		obsStart: time.Now(),
	}
	err := retry.Do(policy, c.rng, c.sleep, func(int) error {
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return err
		}
		c.conn = conn
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	return c, nil
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return c.conn.Close()
}

// Resilience reports how many round trips needed a retry and how many
// redials succeeded over the client's lifetime.
func (c *Client) Resilience() (retries, redials int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retries, c.redials
}

// roundTrip sends one request frame and decodes the status byte of the
// response, returning the remaining body. Transport failures (broken
// connection, failed write/read) are retried under the client's policy
// with a fresh connection per attempt; server status errors surface
// immediately.
func (c *Client) roundTrip(req []byte) (*reader, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t0 time.Time
	if c.rtHist != nil {
		t0 = time.Now()
		defer func() { c.rtHist.Since(t0) }()
	}
	var resp []byte
	retried := false
	err := retry.Do(c.policy, c.rng, c.sleep, func(attempt int) error {
		if c.closed {
			return retry.Permanent(fmt.Errorf("rpc: client for %s is closed", c.addr))
		}
		if attempt > 0 {
			retried = true
			if err := c.redial(); err != nil {
				return fmt.Errorf("rpc: redial %s: %w", c.addr, err)
			}
		}
		r, err := c.exchange(req)
		if err != nil {
			return err
		}
		resp = r
		return nil
	})
	if retried {
		c.retries++
	}
	if err != nil {
		return nil, err
	}
	d := newReader(resp)
	switch status := d.u8(); status {
	case statusOK:
		return d, nil
	case statusErr:
		return nil, fmt.Errorf("rpc: server error: %s", d.str())
	default:
		return nil, fmt.Errorf("rpc: unknown status %d", status)
	}
}

// exchange performs one write/read on the current connection (mu held).
func (c *Client) exchange(req []byte) ([]byte, error) {
	if err := writeFrame(c.conn, req); err != nil {
		return nil, fmt.Errorf("rpc: send: %w", err)
	}
	resp, err := readFrame(c.conn)
	if err != nil {
		return nil, fmt.Errorf("rpc: receive: %w", err)
	}
	return resp, nil
}

// redial replaces the connection (mu held).
func (c *Client) redial() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return err
	}
	c.conn.Close()
	c.conn = conn
	c.redials++
	return nil
}

// GetBatch fetches a mini-batch through the cache (the paper's rpc_loader
// interface). The returned samples may carry different IDs than requested
// when the server substituted missed L-samples.
//
// When client observability is armed (EnableObs) and the sampler fires,
// the request travels inside a trace envelope and the client records the
// hop-0 KindRPCSend span covering the full round trip.
func (c *Client) GetBatch(ids []dataset.SampleID) ([]Sample, error) {
	req := encodeGetBatchRequest(ids)
	ctx := c.beginTrace()
	var t0 time.Time
	if ctx.Valid() {
		req = WrapTraced(req, ctx.Next())
		t0 = time.Now()
	}
	d, err := c.roundTrip(req)
	if ctx.Valid() {
		c.tracer.RecordSpan(time.Since(c.obsStart), trace.KindRPCSend, 0,
			spanArgPeer, ctx.ID, ctx.Hop, time.Since(t0))
	}
	if err != nil {
		return nil, err
	}
	samples, err := decodeGetBatchResponse(d)
	if err != nil {
		return nil, err
	}
	if len(samples) != len(ids) {
		return nil, fmt.Errorf("rpc: got %d samples for %d requests", len(samples), len(ids))
	}
	return samples, nil
}

// UpdateImportance pushes the job's H-list to the server (the paper's
// update_ipersample interface).
func (c *Client) UpdateImportance(items []sampling.Item) error {
	_, err := c.roundTrip(encodeUpdateImportanceRequest(items))
	return err
}

// BeginEpoch tells the server an epoch boundary passed so it can
// repartition, reset substitution state, and roll the loading thread.
func (c *Client) BeginEpoch(epoch int) error {
	var e buffer
	e.u8(opBeginEpoch)
	e.u32(uint32(epoch))
	_, err := c.roundTrip(e.payload())
	return err
}

// Stats fetches the server's counter snapshot.
func (c *Client) Stats() (Stats, error) {
	var e buffer
	e.u8(opStats)
	d, err := c.roundTrip(e.payload())
	if err != nil {
		return Stats{}, err
	}
	return decodeStatsResponse(d)
}

// Ping checks liveness.
func (c *Client) Ping() error {
	var e buffer
	e.u8(opPing)
	_, err := c.roundTrip(e.payload())
	return err
}

package rpc

import (
	"sync/atomic"

	"icache/internal/metrics"
	"icache/internal/obs"
	"icache/internal/overload"
)

// Decision-level introspection for the serving layer: admission provenance
// counters, the prefetch-outcome ledger (kept by the prefetcher), the
// control-plane event journal, and the /debug/timeline collector. The
// policy half of the ledger (eviction reasons, substitution quality, epoch
// residency) lives in internal/icache; DecisionStats overlays the two.
//
// Everything here is Prometheus + typed accessors only — the JSON /metrics
// document stays byte-pinned (the OverloadStats precedent).

// admitProv classifies what motivated a payload-store insert.
type admitProv uint8

const (
	provFetch admitProv = iota
	provPrefetch
	provRehydrate
	provPeer
)

// rpcDecisions holds the serving-layer decision counters (atomics).
type rpcDecisions struct {
	admitFetch     int64
	admitPrefetch  int64
	admitRehydrate int64
	admitPeer      int64
}

func (d *rpcDecisions) countAdmit(prov admitProv) {
	switch prov {
	case provPrefetch:
		atomic.AddInt64(&d.admitPrefetch, 1)
	case provRehydrate:
		atomic.AddInt64(&d.admitRehydrate, 1)
	case provPeer:
		atomic.AddInt64(&d.admitPeer, 1)
	default:
		atomic.AddInt64(&d.admitFetch, 1)
	}
}

// SetJournal installs the control-plane event journal (nil = off). Must
// be called before Serve; either order with EnableDistributed works (the
// journal is propagated into the distributed state both ways).
func (s *Server) SetJournal(j *obs.Journal) {
	s.journal = j
	if s.dist != nil {
		s.dist.journal = j
	}
}

// Journal exposes the installed journal (nil when off).
func (s *Server) Journal() *obs.Journal { return s.journal }

// Exemplars exposes the latency-bucket trace exemplars (nil until
// EnableObs arms the histograms).
func (s *Server) Exemplars() *obs.Exemplars { return s.obs.exemplars }

// journalNode reports this node's identity for journal events (0 on a
// lone server).
func (s *Server) journalNode() int64 {
	if s.dist != nil {
		return int64(s.dist.nodeID)
	}
	return 0
}

// DecisionStats assembles the full decision ledger: the policy engine's
// eviction/substitution/epoch half overlaid with the serving layer's
// admission provenance and prefetch outcomes.
func (s *Server) DecisionStats() metrics.DecisionStats {
	s.policyMu.Lock()
	d := s.cache.DecisionLedger()
	s.policyMu.Unlock()

	d.AdmitFetch = atomic.LoadInt64(&s.dec.admitFetch)
	d.AdmitPrefetch = atomic.LoadInt64(&s.dec.admitPrefetch)
	d.AdmitRehydrate = atomic.LoadInt64(&s.dec.admitRehydrate)
	d.AdmitPeer = atomic.LoadInt64(&s.dec.admitPeer)

	if p := s.prefetch; p != nil {
		queued := atomic.LoadInt64(&p.queued)
		enqDropped := atomic.LoadInt64(&p.dropped)
		failed := atomic.LoadInt64(&p.failedOutcome)
		d.PrefetchIssued = queued + enqDropped
		d.PrefetchInTime = atomic.LoadInt64(&p.inTime)
		d.PrefetchLate = atomic.LoadInt64(&p.late)
		d.PrefetchWasted = atomic.LoadInt64(&p.wasted)
		d.PrefetchDropped = enqDropped + failed
	}
	return d
}

// TimelinePoint snapshots every stats family as one flat name→value map —
// the collector /debug/timeline's Timeline ticks. Rates are left to
// consumers (icache-top differentiates successive points).
func (s *Server) TimelinePoint() map[string]float64 {
	s.policyMu.Lock()
	st := s.cache.Stats()
	hLen, lLen := s.cache.HCacheLen(), s.cache.LCacheLen()
	s.policyMu.Unlock()
	d := s.DecisionStats()
	ov := s.OverloadStats()
	ps := s.PlanStats()
	peerServes, peerHits := s.PeerStats()

	var gateState float64
	switch ov.GateState {
	case overload.Brownout.String():
		gateState = 1
	case overload.Shed.String():
		gateState = 2
	}
	return map[string]float64{
		"hits":                    float64(st.Hits),
		"misses":                  float64(st.Misses),
		"substitutions":           float64(st.Substitutions),
		"degraded":                float64(st.Degraded),
		"requests":                float64(st.Requests()),
		"shed":                    float64(ov.Shed),
		"expired":                 float64(ov.Expired),
		"hcache_len":              float64(hLen),
		"lcache_len":              float64(lLen),
		"payload_len":             float64(s.payloads.len()),
		"gate_state":              gateState,
		"breakers_open":           float64(ov.BreakersOpen),
		"breaker_trips":           float64(ov.BreakerTrips),
		"evict_capacity":          float64(d.EvictCapacity),
		"evict_dead_owner":        float64(d.EvictDeadOwner),
		"evict_scrub":             float64(d.EvictScrub),
		"evict_checkpoint_denied": float64(d.EvictCheckpointDenied),
		"prefetch_issued":         float64(d.PrefetchIssued),
		"prefetch_in_time":        float64(d.PrefetchInTime),
		"prefetch_late":           float64(d.PrefetchLate),
		"prefetch_wasted":         float64(d.PrefetchWasted),
		"prefetch_dropped":        float64(d.PrefetchDropped),
		"prefetch_timeliness":     d.PrefetchTimeliness(),
		"sub_exact":               float64(d.SubExact),
		"sub_fallback":            float64(d.SubFallback),
		"epoch":                   float64(d.Epoch),
		"epoch_hcache_len":        float64(d.EpochHCount),
		"epoch_lcache_len":        float64(d.EpochLCount),
		"peer_serves":             float64(peerServes),
		"peer_hits":               float64(peerHits),
		"plan_planned":            float64(ps.Planned),
		"plan_completed":          float64(ps.Completed),
		"plan_remaining":          float64(ps.Remaining),
		"demand_fetches":          float64(s.DemandFetches()),
	}
}

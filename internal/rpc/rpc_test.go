package rpc

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"icache/internal/dataset"
	"icache/internal/icache"
	"icache/internal/sampling"
	"icache/internal/storage"
)

func testSpec() dataset.Spec {
	return dataset.Spec{Name: "rpc", NumSamples: 2000, MeanSampleBytes: 512, Seed: 21}
}

// startServer spins up a full server on a loopback listener.
func startServer(t *testing.T) (*Server, string, *storage.DataSource) {
	t.Helper()
	spec := testSpec()
	back, err := storage.NewBackend(spec, storage.OrangeFS())
	if err != nil {
		t.Fatal(err)
	}
	cacheSrv, err := icache.NewServer(back, icache.DefaultConfig(spec.TotalBytes()/5), sampling.DefaultIIS(), 5)
	if err != nil {
		t.Fatal(err)
	}
	source, err := storage.NewDataSource(spec)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(cacheSrv, source)
	srv.Logf = nil // quiet in tests
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String(), source
}

func dial(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestPing(t *testing.T) {
	_, addr, _ := startServer(t)
	c := dial(t, addr)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestGetBatchDeliversVerifiablePayloads(t *testing.T) {
	_, addr, _ := startServer(t)
	c := dial(t, addr)
	spec := testSpec()

	// Push an H-list so requested samples are H-samples (exact delivery).
	var items []sampling.Item
	ids := []dataset.SampleID{1, 2, 3, 4, 5}
	for _, id := range ids {
		items = append(items, sampling.Item{ID: id, IV: 1.0})
	}
	if err := c.UpdateImportance(items); err != nil {
		t.Fatal(err)
	}
	samples, err := c.GetBatch(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range samples {
		if s.ID != ids[i] {
			t.Fatalf("H-sample %d substituted with %d", ids[i], s.ID)
		}
		if err := spec.VerifyPayload(s.ID, s.Payload); err != nil {
			t.Fatalf("payload of %d corrupt: %v", s.ID, err)
		}
	}
}

func TestRepeatedFetchHitsCache(t *testing.T) {
	_, addr, src := startServer(t)
	c := dial(t, addr)
	ids := []dataset.SampleID{10, 11, 12}
	var items []sampling.Item
	for _, id := range ids {
		items = append(items, sampling.Item{ID: id, IV: 2.0})
	}
	if err := c.UpdateImportance(items); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetBatch(ids); err != nil {
		t.Fatal(err)
	}
	before := src.Reads()
	if _, err := c.GetBatch(ids); err != nil {
		t.Fatal(err)
	}
	if delta := src.Reads() - before; delta != 0 {
		t.Fatalf("second fetch hit the backend %d times; want cached", delta)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits == 0 || st.HCacheLen == 0 {
		t.Fatalf("stats show no caching: %+v", st)
	}
}

func TestEvictedPayloadsDropped(t *testing.T) {
	// A tiny cache forces evictions; the payload store must track them.
	spec := testSpec()
	back, _ := storage.NewBackend(spec, storage.OrangeFS())
	cfg := icache.DefaultConfig(4 * 512) // ~4 samples total
	cfg.EnableLCache = false
	cacheSrv, err := icache.NewServer(back, cfg, sampling.DefaultIIS(), 5)
	if err != nil {
		t.Fatal(err)
	}
	source, _ := storage.NewDataSource(spec)
	srv := NewServer(cacheSrv, source)
	srv.Logf = nil
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	c := dial(t, ln.Addr().String())

	var items []sampling.Item
	var ids []dataset.SampleID
	for id := dataset.SampleID(0); id < 50; id++ {
		items = append(items, sampling.Item{ID: id, IV: float64(id)})
		ids = append(ids, id)
	}
	if err := c.UpdateImportance(items); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetBatch(ids); err != nil {
		t.Fatal(err)
	}
	stored := srv.payloads.len()
	if stored > 8 {
		t.Fatalf("payload store holds %d samples for a ~4-sample cache", stored)
	}
}

func TestBeginEpochAndSubstitutionPath(t *testing.T) {
	_, addr, _ := startServer(t)
	c := dial(t, addr)
	spec := testSpec()

	// H-list covering ids 0..99; everything else is an L-sample.
	var items []sampling.Item
	for id := dataset.SampleID(0); id < 100; id++ {
		items = append(items, sampling.Item{ID: id, IV: 1})
	}
	if err := c.UpdateImportance(items); err != nil {
		t.Fatal(err)
	}
	if err := c.BeginEpoch(0); err != nil {
		t.Fatal(err)
	}
	// Request L-samples; every response must be a valid payload whose ID
	// matches its content even if substituted.
	var lids []dataset.SampleID
	for id := dataset.SampleID(500); id < 600; id++ {
		lids = append(lids, id)
	}
	samples, err := c.GetBatch(lids)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if err := spec.VerifyPayload(s.ID, s.Payload); err != nil {
			t.Fatalf("substituted payload invalid: %v", err)
		}
	}
}

func TestOutOfRangeRequestAnsweredNotFatal(t *testing.T) {
	_, addr, _ := startServer(t)
	c := dial(t, addr)
	if _, err := c.GetBatch([]dataset.SampleID{999999}); err == nil {
		t.Fatal("out-of-range request succeeded")
	}
	// The connection must still be usable.
	if err := c.Ping(); err != nil {
		t.Fatalf("connection dead after error response: %v", err)
	}
}

func TestBackendFailureSurfacesAsRPCError(t *testing.T) {
	_, addr, src := startServer(t)
	c := dial(t, addr)
	src.FailNext(1, errors.New("injected disk failure"))
	_, err := c.GetBatch([]dataset.SampleID{1500})
	if err == nil || !strings.Contains(err.Error(), "injected disk failure") {
		t.Fatalf("err = %v, want injected failure", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal("connection dead after backend failure")
	}
}

func TestMalformedFrameRejected(t *testing.T) {
	_, addr, _ := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Unknown opcode.
	if err := writeFrame(conn, []byte{0xFF}); err != nil {
		t.Fatal(err)
	}
	resp, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if resp[0] != statusErr {
		t.Fatalf("unknown opcode answered with status %d", resp[0])
	}
	// Truncated GetBatch body.
	if err := writeFrame(conn, []byte{opGetBatch, 0, 0}); err != nil {
		t.Fatal(err)
	}
	resp, err = readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if resp[0] != statusErr {
		t.Fatal("truncated request not rejected")
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	_, addr, _ := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF} // 4 GB frame announcement
	if _, err := conn.Write(hdr); err != nil {
		t.Fatal(err)
	}
	// The server must drop the connection rather than allocate.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server responded to a 4 GB frame")
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr, _ := startServer(t)
	spec := testSpec()
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			c, err := Dial(addr, time.Second)
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			for i := 0; i < 20; i++ {
				ids := []dataset.SampleID{dataset.SampleID((w*100 + i) % spec.NumSamples)}
				samples, err := c.GetBatch(ids)
				if err != nil {
					done <- err
					return
				}
				if err := spec.VerifyPayload(samples[0].ID, samples[0].Payload); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestServerCloseUnblocksServe(t *testing.T) {
	spec := testSpec()
	back, _ := storage.NewBackend(spec, storage.OrangeFS())
	cacheSrv, _ := icache.NewServer(back, icache.DefaultConfig(spec.TotalBytes()/5), sampling.DefaultIIS(), 5)
	source, _ := storage.NewDataSource(spec)
	srv := NewServer(cacheSrv, source)
	srv.Logf = nil
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	time.Sleep(20 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("Serve returned %v, want net.ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	// Encode/decode symmetry for the batch response across varied sizes.
	spec := testSpec()
	var samples []Sample
	for id := dataset.SampleID(0); id < 20; id++ {
		samples = append(samples, Sample{ID: id, Payload: spec.Payload(id)})
	}
	enc := encodeGetBatchResponse(samples)
	d := newReader(enc)
	if st := d.u8(); st != statusOK {
		t.Fatal("status lost")
	}
	got, err := decodeGetBatchResponse(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(samples) {
		t.Fatalf("len %d != %d", len(got), len(samples))
	}
	for i := range got {
		if got[i].ID != samples[i].ID || string(got[i].Payload) != string(samples[i].Payload) {
			t.Fatalf("sample %d mismatched after round trip", i)
		}
	}
}

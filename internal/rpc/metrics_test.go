package rpc

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"icache/internal/dataset"
	"icache/internal/sampling"
)

func TestMetricsEndpoint(t *testing.T) {
	srv, addr, _ := startServer(t)
	c := dial(t, addr)
	var items []sampling.Item
	var ids []dataset.SampleID
	for id := dataset.SampleID(0); id < 32; id++ {
		items = append(items, sampling.Item{ID: id, IV: 1})
		ids = append(ids, id)
	}
	if err := c.UpdateImportance(items); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetBatch(ids); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetBatch(ids); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(srv.MetricsHandler())
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var m MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Hits == 0 || m.Misses == 0 || m.HCacheLen == 0 {
		t.Fatalf("metrics look empty: %+v", m)
	}
	if m.HitRatio <= 0 || m.HitRatio > 1 {
		t.Fatalf("hit ratio %g", m.HitRatio)
	}
	if m.UptimeSeconds < 0 {
		t.Fatal("negative uptime")
	}

	// Non-GET methods are rejected.
	post, err := http.Post(ts.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d", post.StatusCode)
	}
}

package rpc

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"icache/internal/dataset"
	"icache/internal/icache"
	"icache/internal/metrics"
	"icache/internal/obs"
)

// This file is the wall-clock node-lifecycle loop of the network server —
// the production counterpart of the virtual-clock lifecycle in
// internal/icache/lifecycle.go. A distributed server registers itself in
// the shared directory under a TTL lease, renews it on a heartbeat ticker,
// runs a bounded anti-entropy scrub on a second ticker, and replays
// ownership claims for its restored residents after a crash/rejoin.
//
// Locking: the loop goroutine takes policyMu only for short resident-set
// snapshots and drops; every directory round trip happens with no server
// lock held, per the contract in peer.go. Counters live behind distState's
// dedicated memMu (leaf lock, never nests).

// MembershipConfig parameterizes the lifecycle loop. Zero fields select
// defaults derived from LeaseTTL so a healthy node renews several times per
// TTL.
type MembershipConfig struct {
	// LeaseTTL is this node's lease duration in the directory. Zero selects
	// the directory's default TTL (the server sends ttl=0 and lets the
	// directory pick).
	LeaseTTL time.Duration
	// HeartbeatInterval is the lease renewal period. Zero selects
	// LeaseTTL/4 (or 2.5s when LeaseTTL is also zero).
	HeartbeatInterval time.Duration
	// ScrubInterval is the anti-entropy sweep period. Zero selects
	// LeaseTTL/2 (or 5s when LeaseTTL is also zero).
	ScrubInterval time.Duration
	// ScrubBatch bounds one sweep's directory work. Zero selects 256.
	ScrubBatch int
}

func (c MembershipConfig) withDefaults() MembershipConfig {
	ttl := c.LeaseTTL
	if ttl <= 0 {
		ttl = 10 * time.Second
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = ttl / 4
	}
	if c.ScrubInterval <= 0 {
		c.ScrubInterval = ttl / 2
	}
	if c.ScrubBatch <= 0 {
		c.ScrubBatch = 256
	}
	return c
}

// StartMembership registers the node in the directory and starts the
// background lifecycle loop (heartbeats + scrubbing). It requires
// EnableDistributed to have been called, and is idempotent per server —
// the second call is an error. The loop stops on Close.
//
// The initial registration is best effort: if the directory is unreachable
// the node starts anyway and the loop keeps retrying — a cache node must
// serve local traffic even while the control plane is down.
func (s *Server) StartMembership(cfg MembershipConfig) error {
	dist := s.dist
	if dist == nil {
		return fmt.Errorf("rpc: StartMembership before EnableDistributed")
	}
	dist.memMu.Lock()
	if dist.memStop != nil {
		dist.memMu.Unlock()
		return fmt.Errorf("rpc: membership loop already running")
	}
	dist.memCfg = cfg.withDefaults()
	dist.memStop = make(chan struct{})
	// Hand the loop its own copies: re-reading dist.memStop from inside the
	// goroutine would race with StopMembership nilling it, leaving a
	// late-scheduled loop selecting on a nil channel forever.
	loopCfg, stop := dist.memCfg, dist.memStop
	dist.memMu.Unlock()

	s.registerAndReconcile()

	dist.memWG.Add(1)
	go s.membershipLoop(loopCfg, stop)
	return nil
}

// StopMembership halts the lifecycle loop (idempotent; Close calls it).
func (s *Server) StopMembership() {
	dist := s.dist
	if dist == nil {
		return
	}
	dist.memMu.Lock()
	stop := dist.memStop
	dist.memStop = nil
	dist.memMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	dist.memWG.Wait()
}

// MembershipStats reports the node-side lifecycle counters (zeros when the
// loop never ran).
func (s *Server) MembershipStats() metrics.MembershipStats {
	dist := s.dist
	if dist == nil {
		return metrics.MembershipStats{}
	}
	return metrics.SnapshotUnder(&dist.memMu, &dist.mem)
}

// LastHeartbeat reports when the node last renewed its lease successfully
// (zero time when it never has).
func (s *Server) LastHeartbeat() time.Time {
	dist := s.dist
	if dist == nil {
		return time.Time{}
	}
	return metrics.SnapshotUnder(&dist.memMu, &dist.lastBeat)
}

func (s *Server) membershipLoop(cfg MembershipConfig, stop chan struct{}) {
	dist := s.dist
	defer dist.memWG.Done()
	beat := time.NewTicker(cfg.HeartbeatInterval)
	defer beat.Stop()
	scrub := time.NewTicker(cfg.ScrubInterval)
	defer scrub.Stop()
	for {
		select {
		case <-stop:
			return
		case <-beat.C:
			s.heartbeatOnce()
		case <-scrub.C:
			s.scrubOnce()
		}
	}
}

// heartbeatOnce renews the lease; a rejected renewal means the lease lapsed
// (the node was partitioned or paused past its TTL) and its entries may have
// been reclaimed, so it re-registers and reconciles ownership.
func (s *Server) heartbeatOnce() {
	dist := s.dist
	renewed, err := dist.dir.Heartbeat(dist.nodeID)
	if err != nil {
		s.countDirFailure()
		return
	}
	dist.memMu.Lock()
	if renewed {
		dist.mem.Heartbeats++
		dist.lastBeat = time.Now()
	} else {
		dist.mem.HeartbeatRejects++
	}
	dist.memMu.Unlock()
	if !renewed {
		// The node-side view of a Live→Suspect flip: the directory let the
		// lease lapse, so ownership may have moved while this node was away.
		s.journal.Add(obs.EventMembership, s.journalNode(), 0, 0,
			"lease lapsed; re-registering")
		s.registerAndReconcile()
	}
}

// registerAndReconcile grants the node a fresh lease and replays ownership
// claims for everything it currently caches. It is both the boot path (a
// restarted server re-claims its checkpoint-restored residents) and the
// split-brain repair path (a node that out-lived its lease must not assume
// it still owns anything). Claims the directory denies mean another node
// took the sample over while this one was away: the local copy is dropped,
// preserving the no-duplication invariant.
func (s *Server) registerAndReconcile() {
	dist := s.dist
	if _, err := dist.dir.Register(dist.nodeID, dist.memCfg.LeaseTTL); err != nil {
		s.countDirFailure()
		return
	}
	dist.memMu.Lock()
	dist.mem.Registers++
	dist.lastBeat = time.Now()
	dist.memMu.Unlock()

	s.policyMu.Lock()
	ids := s.cache.Residents(nil)
	s.policyMu.Unlock()
	for _, id := range ids {
		claimed, err := dist.dir.Claim(id, dist.nodeID)
		if err != nil {
			s.countDirFailure()
			return // directory sick; the next heartbeat cycle retries
		}
		dist.memMu.Lock()
		if claimed {
			dist.mem.ReplayedClaims++
		} else {
			dist.mem.ReplayDenied++
		}
		dist.memMu.Unlock()
		if !claimed {
			// A restored resident whose replayed claim was denied: the
			// survivor won while this node was away.
			s.dropResident(id, icache.DropCheckpointDenied)
		}
	}
}

// scrubOnce runs one bounded anti-entropy sweep: release directory entries
// this node no longer caches, re-claim (or drop) cached samples the
// directory does not credit to it, and purge a batch of Dead-owned entries
// as a backstop.
func (s *Server) scrubOnce() {
	dist := s.dist
	batch := dist.memCfg.ScrubBatch

	// Direction 1: registered but not cached → release.
	owned, err := dist.dir.OwnedBy(dist.nodeID, batch)
	if err != nil {
		s.countDirFailure()
		return
	}
	for _, id := range owned {
		s.policyMu.Lock()
		resident := s.cache.Resident(id)
		s.policyMu.Unlock()
		if resident {
			continue
		}
		if _, err := dist.dir.Release(id, dist.nodeID); err != nil {
			s.countDirFailure()
			return
		}
		dist.memMu.Lock()
		dist.mem.ScrubReleased++
		dist.memMu.Unlock()
	}

	// Direction 2: cached but not registered → re-claim, or drop the copy
	// when a peer owns it. A watermark into the sorted resident set keeps
	// each sweep bounded while eventually covering everything.
	s.policyMu.Lock()
	ids := s.cache.Residents(nil)
	s.policyMu.Unlock()
	if len(ids) > 0 {
		dist.memMu.Lock()
		if dist.scrubMark >= len(ids) {
			dist.scrubMark = 0
		}
		mark := dist.scrubMark
		dist.memMu.Unlock()
		limit := batch
		if limit > len(ids) {
			limit = len(ids)
		}
		// One LookupBatch answers ownership for the whole window: the sweep
		// costs one directory round trip instead of ScrubBatch serial
		// lookups (claims/releases stay per-id — they are the rare repairs,
		// not the common probe).
		window := make([]dataset.SampleID, 0, limit)
		for i := 0; i < limit; i++ {
			window = append(window, ids[(mark+i)%len(ids)])
		}
		owners, err := dist.dir.LookupBatch(window)
		if err != nil || len(owners) != len(window) {
			s.countDirFailure()
			return
		}
		for i, id := range window {
			owner, found := owners[i].Node, owners[i].Found
			if found && owner == dist.nodeID {
				continue
			}
			if found {
				s.dropResident(id, icache.DropScrub)
				dist.memMu.Lock()
				dist.mem.ScrubDropped++
				dist.memMu.Unlock()
				continue
			}
			claimed, err := dist.dir.Claim(id, dist.nodeID)
			if err != nil {
				s.countDirFailure()
				return
			}
			dist.memMu.Lock()
			if claimed {
				dist.mem.ScrubReclaimed++
			} else {
				dist.mem.ScrubDropped++
			}
			dist.memMu.Unlock()
			if !claimed {
				s.dropResident(id, icache.DropScrub)
			}
		}
		dist.memMu.Lock()
		dist.scrubMark = (mark + limit) % len(ids)
		dist.memMu.Unlock()
	}

	if _, err := dist.dir.PurgeDead(batch); err != nil {
		s.countDirFailure()
		return
	}
	dist.memMu.Lock()
	dist.mem.ScrubSweeps++
	dist.memMu.Unlock()
}

// dropResident removes a sample this node must not keep (the directory says
// another node owns it, or a denied claim), tagging the eviction with its
// decision reason. The eviction observer fires and issues a best-effort
// Release — harmless, since the directory only honours releases from the
// current owner.
func (s *Server) dropResident(id dataset.SampleID, reason icache.DropReason) {
	s.policyMu.Lock()
	s.cache.DropFor(id, reason)
	s.policyMu.Unlock()
}

func (s *Server) countDirFailure() {
	if s.dist != nil {
		atomic.AddInt64(&s.dist.dirFailures, 1)
	}
}

// healthzResponse is the JSON document served by HealthHandler.
type healthzResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Distributed   bool    `json:"distributed"`
	NodeID        int64   `json:"node_id,omitempty"`
	// LeaseAgeSeconds is the time since the last successful lease
	// renewal; -1 when the node has never heard from the directory or the
	// lifecycle loop is not running.
	LeaseAgeSeconds float64                 `json:"lease_age_seconds"`
	Membership      metrics.MembershipStats `json:"membership"`
}

// HealthHandler serves a small liveness document on GET (any path): HTTP
// 200 with status "ok" while the server runs, plus the node's lease age and
// lifecycle counters when distribution is enabled. Operators point
// readiness probes at it next to the metrics endpoint.
func (s *Server) HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		resp := healthzResponse{
			Status:          "ok",
			UptimeSeconds:   time.Since(s.start).Seconds(),
			Distributed:     s.dist != nil,
			LeaseAgeSeconds: -1,
		}
		if dist := s.dist; dist != nil {
			resp.NodeID = int64(dist.nodeID)
			resp.Membership = s.MembershipStats()
			if last := s.LastHeartbeat(); !last.IsZero() {
				resp.LeaseAgeSeconds = time.Since(last).Seconds()
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(resp); err != nil && s.Logf != nil {
			s.Logf("rpc: healthz encode: %v", err)
		}
	})
}

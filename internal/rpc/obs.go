package rpc

// This file is the rpc layer's observability wiring: per-stage latency
// histograms (internal/obs), cross-node request tracing (a compact trace
// context carried in an optional wire envelope, recorded as span events
// into the internal/trace ring), and a rate-limited slow-request log.
//
// Everything is opt-in and follows the nil-recorder pattern: a server or
// client with no registry/tracer configured takes one nil check per stage
// and records nothing — BenchmarkObsOverhead in bench_test.go pins that
// the disabled path costs ~nothing and the enabled path stays within a few
// percent.
//
// # Trace envelope
//
// A traced request is the ordinary request frame wrapped in an envelope:
//
//	u8(opTraced) | i64(trace ID) | u8(hop) | inner request bytes
//
// The envelope carries the hop the *receiver* occupies in the chain: the
// originating client holds hop 0 and sends hop 1; a cache node that
// received hop h forwards peer/directory calls carrying hop h+1
// (TraceCtx.Next). Nested envelopes are rejected — the envelope is
// strictly top-level, so a malicious or fuzzed frame cannot recurse.
//
// Span recording convention (see trace.Kind):
//
//	KindRPCSend  at the sender's own hop, Dur = full round trip.
//	             Arg 0 = client GetBatch / peer read, Arg 1 = directory call.
//	KindRPCRecv  at the receiver's hop, Dur = serve time.
//	             Arg = batch size (GetBatch), 1 (peer get).
//	KindBackend  at the fetching node's hop, Dur = storage service time.

import (
	"io"
	"net/http"
	"time"

	"icache/internal/dataset"
	"icache/internal/obs"
	"icache/internal/trace"
)

// opTraced wraps any request in a trace-context envelope (see above).
const opTraced = 7

// tracedHeaderLen is the trace envelope's header size:
// u8(opTraced) + i64(trace ID) + u8(hop).
const tracedHeaderLen = 10

// Stage names registered by the serving path. Every stage becomes an
// icache_stage_<name>_seconds histogram on the Prometheus surface.
const (
	// StageRequest is the whole GetBatch serve, decode to encode.
	StageRequest = "request"
	// StagePolicyLockHold is the policyMu critical section of GetBatch.
	StagePolicyLockHold = "policy_lock_hold"
	// StageLocalHit is a payload-store hit (local H/L-cache serve).
	StageLocalHit = "local_hit"
	// StageSingleflightWait is time spent waiting on another goroutine's
	// in-flight fetch of the same sample.
	StageSingleflightWait = "singleflight_wait"
	// StageBackendFetch is a backend-storage read on the miss path.
	StageBackendFetch = "backend_fetch"
	// StagePeerRPC is a remote peer-cache read, measured at the sender.
	StagePeerRPC = "peer_rpc"
	// StagePeerRPCBatch is one scatter-gather opPeerGetBatch round trip
	// (many samples per RPC), measured at the sender.
	StagePeerRPCBatch = "peer_rpc_batch"
	// StageDirLookup is a directory ownership lookup, measured at the sender.
	StageDirLookup = "dir_lookup"
	// StageDirLookupBatch is one multi-lookup directory round trip
	// (LookupBatch), measured at the sender.
	StageDirLookupBatch = "dir_lookup_batch"
	// StagePrefetchQueueWait is time a delivered sample sat on the prefetch
	// queue before a worker picked it up.
	StagePrefetchQueueWait = "prefetch_queue_wait"
	// StageClientRoundTrip is a client-side request round trip (retries
	// included), recorded by Client when observability is enabled.
	StageClientRoundTrip = "client_round_trip"
	// StageSubstitutionScan is the cache policy's substitute-selection scan,
	// recorded by icache.Server (see SetSubstitutionScanHist).
	StageSubstitutionScan = "substitution_scan"
	// StageAdmissionWait is time an admitted request waited for a dispatch
	// slot — the queue-delay signal the admission gate steers on.
	StageAdmissionWait = "admission_wait"
	// StageDeadlineRemaining is the budget left when a deadline-carrying
	// request reached the serve point (0 = arrived already expired).
	StageDeadlineRemaining = "deadline_remaining"
)

// Span Arg values for KindRPCSend.
const (
	spanArgPeer = 0 // client GetBatch / peer read
	spanArgDir  = 1 // directory call
)

// serverObs is a Server's observability state: the stage-histogram
// registry (nil = histograms off), pre-resolved per-stage histograms so
// the hot path never takes the registry lock, the span tracer (nil =
// tracing off), and the slow-request log configuration.
type serverObs struct {
	reg *obs.Registry

	request, policyLock, localHit, sfWait   *obs.Histogram
	backend, peerRPC, dirLookup, prefetchWt *obs.Histogram
	peerBatch, dirBatch                     *obs.Histogram
	admissionWait, deadlineRem              *obs.Histogram

	tracer *trace.Recorder

	// exemplars pins, per request-latency bucket, the last traced request
	// that landed there (armed with the histograms; nil = off).
	exemplars *obs.Exemplars

	slowThresh time.Duration
	slowLim    *obs.RateLimiter
}

// histsOn reports whether stage histograms are recording.
func (o *serverObs) histsOn() bool { return o.reg != nil }

// tracing reports whether span recording applies to this request.
func (o *serverObs) tracing(ctx obs.TraceCtx) bool { return o.tracer != nil && ctx.Valid() }

// EnableObs wires per-stage latency histograms (reg) and span tracing
// (tracer) into the server. Either may be nil to leave that surface off.
// Must be called before Serve; the fields are read without synchronization
// on the serving path.
func (s *Server) EnableObs(reg *obs.Registry, tracer *trace.Recorder) {
	s.obs.reg = reg
	s.obs.tracer = tracer
	s.obs.request = reg.Hist(StageRequest)
	s.obs.policyLock = reg.Hist(StagePolicyLockHold)
	s.obs.localHit = reg.Hist(StageLocalHit)
	s.obs.sfWait = reg.Hist(StageSingleflightWait)
	s.obs.backend = reg.Hist(StageBackendFetch)
	s.obs.peerRPC = reg.Hist(StagePeerRPC)
	s.obs.peerBatch = reg.Hist(StagePeerRPCBatch)
	s.obs.dirLookup = reg.Hist(StageDirLookup)
	s.obs.dirBatch = reg.Hist(StageDirLookupBatch)
	s.obs.prefetchWt = reg.Hist(StagePrefetchQueueWait)
	s.obs.admissionWait = reg.Hist(StageAdmissionWait)
	s.obs.deadlineRem = reg.Hist(StageDeadlineRemaining)
	s.obs.exemplars = &obs.Exemplars{}
	s.cache.SetSubstitutionScanHist(reg.Hist(StageSubstitutionScan))
}

// ObsRegistry reports the stage-histogram registry (nil when disabled).
func (s *Server) ObsRegistry() *obs.Registry { return s.obs.reg }

// SetSlowRequestLog arms the slow-request log: GetBatch serves taking
// longer than threshold are logged through Logf, at most one line per
// minInterval (minInterval <= 0 disables rate limiting; threshold <= 0
// disables the log). Must be called before Serve.
func (s *Server) SetSlowRequestLog(threshold, minInterval time.Duration) {
	s.obs.slowThresh = threshold
	s.obs.slowLim = obs.NewRateLimiter(minInterval)
}

// span records one span event under ctx (no-op when untraced or no tracer).
func (s *Server) span(kind trace.Kind, id dataset.SampleID, arg int64, ctx obs.TraceCtx, dur time.Duration) {
	if !s.obs.tracing(ctx) {
		return
	}
	s.obs.tracer.RecordSpan(time.Duration(s.now()), kind, id, arg, ctx.ID, ctx.Hop, dur)
}

// maybeLogSlow emits the rate-limited slow-request log line.
func (s *Server) maybeLogSlow(ctx obs.TraceCtx, batch int, dur time.Duration) {
	if s.obs.slowThresh <= 0 || dur < s.obs.slowThresh || s.Logf == nil {
		return
	}
	if !s.obs.slowLim.Allow(time.Now()) {
		return
	}
	if ctx.Valid() {
		s.Logf("rpc: slow request: batch=%d dur=%s threshold=%s trace=%016x hop=%d",
			batch, dur, s.obs.slowThresh, ctx.ID, ctx.Hop)
		return
	}
	s.Logf("rpc: slow request: batch=%d dur=%s threshold=%s", batch, dur, s.obs.slowThresh)
}

// WrapTraced wraps an encoded request frame in a trace envelope addressed
// to the receiver: ctx must carry the hop the receiver occupies (the
// sender passes its own context through TraceCtx.Next).
func WrapTraced(req []byte, ctx obs.TraceCtx) []byte {
	e := buffer{}
	e.u8(opTraced)
	e.i64(int64(ctx.ID))
	e.u8(ctx.Hop)
	e.B = append(e.B, req...)
	return e.payload()
}

// EnableObs wires client-side observability: the round-trip histogram from
// reg (StageClientRoundTrip), span recording into tracer, and 1-in-N
// request tracing via sampler. Any argument may be nil. Must be called
// right after Dial, before the client is used (the fields are read without
// synchronization on the request path).
func (c *Client) EnableObs(reg *obs.Registry, tracer *trace.Recorder, sampler *obs.Sampler) {
	c.rtHist = reg.Hist(StageClientRoundTrip)
	c.tracer = tracer
	c.sampler = sampler
}

// beginTrace decides whether this request is traced: the sampler fires and
// a tracer exists. The returned context is at hop 0 (the client's own
// position); the wire envelope carries Next().
func (c *Client) beginTrace() obs.TraceCtx {
	if c.tracer == nil || !c.sampler.Sample() {
		return obs.TraceCtx{}
	}
	return obs.TraceCtx{ID: obs.NewTraceID()}
}

// DebugObsHandler serves a human-readable observability summary: the
// per-stage latency table (count, p50/p95/p99, max) and the trace ring's
// state. Intended for /debug/obs next to net/http/pprof.
func (s *Server) DebugObsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeObsDebug(w, s.obs.reg, s.obs.tracer, s.obs.slowThresh)
	})
}

// writeObsDebug renders the debug summary via the shared obs.WriteDebug
// renderer (icache-dkv uses the same renderer through dkv.DirServer).
func writeObsDebug(w io.Writer, reg *obs.Registry, tracer *trace.Recorder, slowThresh time.Duration) {
	var ring *obs.RingStats
	if tracer != nil {
		ring = &obs.RingStats{Retained: tracer.Len(), Total: tracer.Total()}
	}
	obs.WriteDebug(w, reg, ring, slowThresh)
}

package rpc

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"icache/internal/dataset"
)

// pattern fills a payload with a byte pattern derived from the id and a
// generation, so a use-after-recycle read is detected as corruption, not
// just by the race detector.
func pattern(id dataset.SampleID, gen byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int(id)*31+i) ^ gen
	}
	return b
}

func TestStoreClassPlacement(t *testing.T) {
	cases := []struct {
		name      string
		size      int
		wantClass int
	}{
		{"tiny", 100, 0},
		{"class0-cap", classMaxPayload[0], 0},
		{"class1", classMaxPayload[0] + 1, 1},
		{"class2", classMaxPayload[1] + 1, 2},
		{"class2-cap", classMaxPayload[2], 2},
		{"jumbo-adopted", classMaxPayload[2] + 1, classDedicated},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := newPayloadStore()
			id := dataset.SampleID(7)
			want := pattern(id, 1, tc.size)
			p.putCopy(id, want)
			b, sl, ok := p.getPinned(id)
			if !ok || !bytes.Equal(b, want) {
				t.Fatal("payload not stored intact")
			}
			if sl.class != tc.wantClass {
				t.Fatalf("payload of %d bytes landed in class %d, want %d", tc.size, sl.class, tc.wantClass)
			}
			p.unref(sl)
			if got := classFor(tc.size); got != tc.wantClass {
				t.Fatalf("classFor(%d) = %d, want %d", tc.size, got, tc.wantClass)
			}
		})
	}
}

func TestStoreZeroLengthPayload(t *testing.T) {
	p := newPayloadStore()
	id := dataset.SampleID(3)
	p.putCopy(id, nil)
	b, sl, ok := p.getPinned(id)
	if !ok || sl != nil || len(b) != 0 {
		t.Fatalf("zero-length entry: b=%v sl=%v ok=%v", b, sl, ok)
	}
	if !p.has(id) {
		t.Fatal("zero-length entry not present")
	}
	p.delete(id)
	if p.has(id) {
		t.Fatal("zero-length entry survived delete")
	}
}

func TestStoreOverwriteReplacesEntry(t *testing.T) {
	p := newPayloadStore()
	id := dataset.SampleID(9)
	p.putCopy(id, pattern(id, 1, 512))
	want := pattern(id, 2, 900)
	p.putCopy(id, want)
	b, sl, ok := p.getPinned(id)
	if !ok || !bytes.Equal(b, want) {
		t.Fatal("overwrite did not replace the payload")
	}
	p.unref(sl)
	if n := p.len(); n != 1 {
		t.Fatalf("store holds %d entries after overwrite, want 1", n)
	}
	st := p.slabStats()
	if st.liveBytes != 900 {
		t.Fatalf("liveBytes %d after overwrite, want 900", st.liveBytes)
	}
}

// TestStoreAdoptAliases: adopt must not copy — the stored bytes ARE the
// caller's slice, and getShared hands back the same backing array.
func TestStoreAdoptAliases(t *testing.T) {
	p := newPayloadStore()
	id := dataset.SampleID(11)
	buf := pattern(id, 1, 4096)
	p.adopt(id, buf)
	got, ok := p.getShared(id)
	if !ok || &got[0] != &buf[0] {
		t.Fatal("adopt copied the payload")
	}
	b, sl, ok := p.getPinned(id)
	if !ok || &b[0] != &buf[0] || sl.class != classDedicated {
		t.Fatal("pinned read of adopted payload not aliased/dedicated")
	}
	p.unref(sl)

	// getShared of an ARENA entry must copy (arena memory is recycled).
	id2 := dataset.SampleID(12)
	p.putCopy(id2, pattern(id2, 1, 512))
	a, _ := p.getShared(id2)
	b2, sl2, _ := p.getPinned(id2)
	if &a[0] == &b2[0] {
		t.Fatal("getShared aliased arena memory")
	}
	p.unref(sl2)
}

// TestStoreSlabRecycleLifecycle drives one class-0 slab through its full
// life: fill it past capacity (sealing it), delete every entry, and verify
// the slab is recycled exactly once — and NOT before an outstanding pin
// drains.
func TestStoreSlabRecycleLifecycle(t *testing.T) {
	p := newPayloadStore()
	// All ids map to distinct shards, but each shard packs its own slabs;
	// use ids on ONE shard so they share a slab. Shard index is a Fibonacci
	// hash, so scan for colliding ids.
	sh0 := p.shard(0)
	var ids []dataset.SampleID
	for id := dataset.SampleID(0); len(ids) < 40 && id < 10000; id++ {
		if p.shard(id) == sh0 {
			ids = append(ids, id)
		}
	}
	size := classMaxPayload[0] // 2KB each; 64KB slab seals after 32
	for _, id := range ids {
		p.putCopy(id, pattern(id, 1, size))
	}
	st := p.slabStats()
	if st.allocs < 2 {
		t.Fatalf("expected at least 2 slab allocs after overfilling one, got %d", st.allocs)
	}

	// Pin one entry from the FIRST (sealed) slab, then delete everything.
	b, sl, ok := p.getPinned(ids[0])
	if !ok || sl.sealed != true {
		t.Fatalf("first entry not in a sealed slab (ok=%v)", ok)
	}
	want := pattern(ids[0], 1, size)
	for _, id := range ids {
		p.delete(id)
	}
	if got := p.slabStats(); got.liveBytes != 0 {
		t.Fatalf("liveBytes %d after full delete, want 0", got.liveBytes)
	}
	// The pinned slab must NOT have been recycled: its bytes are intact.
	if !bytes.Equal(b, want) {
		t.Fatal("pinned slab recycled while a reader held it")
	}
	recycledBefore := p.slabStats().recycled
	p.unref(sl) // last reference: recycle happens here
	if got := p.slabStats().recycled; got != recycledBefore+1 {
		t.Fatalf("recycles %d after final unpin, want %d", got, recycledBefore+1)
	}

	// The freelist must hand the recycled buffer back to a new slab.
	allocsBefore := p.slabStats().allocs
	for _, id := range ids[:4] {
		p.putCopy(id, pattern(id, 2, size))
	}
	if got := p.slabStats().allocs; got != allocsBefore {
		t.Fatalf("new slab allocated (%d -> %d) despite a freelisted buffer", allocsBefore, got)
	}
}

// TestStoreRefcountConservation: every pin is matched by exactly one unref
// and the slab refcount returns to rest. Exercised via the accounting
// counters, which must balance exactly.
func TestStoreRefcountConservation(t *testing.T) {
	p := newPayloadStore()
	const n = 200
	for id := dataset.SampleID(0); id < n; id++ {
		p.putCopy(id, pattern(id, 1, 1024))
	}
	var pins []*slab
	for id := dataset.SampleID(0); id < n; id++ {
		_, sl, ok := p.getPinned(id)
		if !ok {
			t.Fatalf("id %d missing", id)
		}
		pins = append(pins, sl)
	}
	if got := p.slabStats().pins; got != n {
		t.Fatalf("pin counter %d, want %d", got, n)
	}
	for id := dataset.SampleID(0); id < n; id++ {
		p.delete(id)
	}
	// Readers still hold every slab: nothing may have been recycled beyond
	// slabs with no pinned entries.
	for _, sl := range pins {
		if atomic.LoadInt32(&sl.refs) <= 0 {
			t.Fatal("slab refcount drained while pins outstanding")
		}
	}
	for _, sl := range pins {
		p.unref(sl)
	}
	st := p.slabStats()
	if st.liveBytes != 0 {
		t.Fatalf("liveBytes %d at rest, want 0", st.liveBytes)
	}
	// At rest every slab holds at most the store's own reference: still-open
	// slabs sit at refs==1, sealed-and-drained ones at 0 (recycled). Any
	// other value is a leaked or double-dropped reference.
	for _, sl := range pins {
		if refs := atomic.LoadInt32(&sl.refs); refs != 0 && refs != 1 {
			t.Fatalf("slab at rest with refs=%d", refs)
		}
	}
}

// TestStoreEvictionReadStorm is the -race lifecycle test: readers pin and
// verify byte patterns while writers overwrite and evict the same key
// space, and a conservation check at the end proves no slab leaked and no
// reader ever observed recycled (corrupt) bytes.
func TestStoreEvictionReadStorm(t *testing.T) {
	p := newPayloadStore()
	const (
		keys    = 64
		writers = 4
		readers = 8
		rounds  = 400
	)
	// Seed generation 1 for every key.
	gens := make([]int64, keys)
	for id := 0; id < keys; id++ {
		gens[id] = 1
		p.putCopy(dataset.SampleID(id), pattern(dataset.SampleID(id), 1, 700+id))
	}

	var wg sync.WaitGroup
	var corrupt int64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 100))
			for r := 0; r < rounds; r++ {
				id := dataset.SampleID(rng.Intn(keys))
				switch rng.Intn(3) {
				case 0: // evict
					p.delete(id)
				case 1: // re-admit via arena copy with a bumped generation
					g := byte(atomic.AddInt64(&gens[id], 1))
					p.putCopy(id, pattern(id, g, 700+int(id)))
				default: // re-admit via zero-copy adoption
					g := byte(atomic.AddInt64(&gens[id], 1))
					p.adopt(id, pattern(id, g, 700+int(id)))
				}
			}
		}(w)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(rd) + 900))
			for r := 0; r < rounds*2; r++ {
				id := dataset.SampleID(rng.Intn(keys))
				b, sl, ok := p.getPinned(id)
				if !ok {
					continue
				}
				// Validate the pattern against SOME generation: the byte at
				// index i must be consistent across the whole payload for one
				// generation g. Writers may bump gens concurrently, so derive
				// g from the payload itself, then check every byte with it.
				if len(b) != 700+int(id) {
					atomic.AddInt64(&corrupt, 1)
				} else {
					g := b[0] ^ byte(int(id)*31)
					for i := range b {
						if b[i] != byte(int(id)*31+i)^g {
							atomic.AddInt64(&corrupt, 1)
							break
						}
					}
				}
				if sl != nil {
					p.unref(sl)
				}
			}
		}(rd)
	}
	wg.Wait()
	if corrupt != 0 {
		t.Fatalf("%d corrupted reads: slab recycled under a pinned reader", corrupt)
	}

	// Conservation: delete everything, and the store must settle with zero
	// live bytes and every arena slab either freelisted or freed — no slab
	// stuck with a leaked reference.
	for id := 0; id < keys; id++ {
		p.delete(dataset.SampleID(id))
	}
	st := p.slabStats()
	if st.liveBytes != 0 {
		t.Fatalf("liveBytes %d after draining, want 0", st.liveBytes)
	}
	if p.len() != 0 {
		t.Fatalf("%d entries after draining", p.len())
	}
	// Every open (unsealed) slab still holds the store's owner reference by
	// design; sealed slabs must all have drained to the freelist/GC. Count
	// open slabs and verify arena accounting: allocs == recycles + open.
	open := 0
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for c := 0; c < numClasses; c++ {
			if sh.open[c] != nil {
				open++
			}
		}
		sh.mu.Unlock()
	}
	if st.allocs != st.recycled+int64(open) {
		t.Fatalf("slab leak: allocs=%d recycled=%d open=%d", st.allocs, st.recycled, open)
	}
}

// TestStoreConcurrentSameKey hammers one key from all sides — the worst
// case for the owner-reference handoff on overwrite.
func TestStoreConcurrentSameKey(t *testing.T) {
	p := newPayloadStore()
	const id = dataset.SampleID(5)
	p.putCopy(id, pattern(id, 1, 300))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 500; r++ {
				switch (w + r) % 4 {
				case 0:
					p.putCopy(id, pattern(id, byte(r), 300))
				case 1:
					p.adopt(id, pattern(id, byte(r), 300))
				case 2:
					p.delete(id)
				default:
					if b, sl, ok := p.getPinned(id); ok {
						_ = b[len(b)-1]
						if sl != nil {
							p.unref(sl)
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	p.delete(id)
	if st := p.slabStats(); st.liveBytes != 0 {
		t.Fatalf("liveBytes %d at rest", st.liveBytes)
	}
}

func TestStoreStatsSurface(t *testing.T) {
	p := newPayloadStore()
	p.putCopy(1, make([]byte, 512))
	p.adopt(2, make([]byte, 512))
	p.putCopy(3, make([]byte, classMaxPayload[2]+1)) // jumbo: adopted via copy
	st := p.slabStats()
	if st.allocs != 1 || st.adopted != 2 {
		t.Fatalf("allocs=%d adopted=%d, want 1 and 2", st.allocs, st.adopted)
	}
	if st.slabBytes != int64(classSlabBytes[0]) {
		t.Fatalf("slabBytes %d, want one class-0 slab (%d)", st.slabBytes, classSlabBytes[0])
	}
	wantLive := int64(512 + 512 + classMaxPayload[2] + 1)
	if st.liveBytes != wantLive {
		t.Fatalf("liveBytes %d, want %d", st.liveBytes, wantLive)
	}
	p.delete(2)
	if got := p.slabStats().freed; got != 1 {
		t.Fatalf("freed %d after dropping an adopted entry, want 1", got)
	}
}

// TestStoreIDsAndLen sanity-checks the snapshot helpers the checkpoint and
// diagnostics paths use.
func TestStoreIDsAndLen(t *testing.T) {
	p := newPayloadStore()
	want := map[dataset.SampleID]bool{}
	for i := 0; i < 100; i++ {
		id := dataset.SampleID(i * 17)
		p.putCopy(id, []byte(fmt.Sprintf("payload-%d", id)))
		want[id] = true
	}
	if p.len() != len(want) {
		t.Fatalf("len %d, want %d", p.len(), len(want))
	}
	for _, id := range p.ids() {
		if !want[id] {
			t.Fatalf("unexpected id %d", id)
		}
		delete(want, id)
	}
	if len(want) != 0 {
		t.Fatalf("%d ids missing from snapshot", len(want))
	}
}

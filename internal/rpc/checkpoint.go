package rpc

import (
	"fmt"
	"io"
	"os"
)

// SaveCheckpoint writes the cache's warm state (see icache.Checkpoint).
func (s *Server) SaveCheckpoint(w io.Writer) error {
	s.policyMu.Lock()
	defer s.policyMu.Unlock()
	return s.cache.Checkpoint(w)
}

// LoadCheckpoint restores a warm cache into a fresh server. With rehydrate
// set, the payload store is eagerly refilled from the backend so the first
// client requests hit immediately; otherwise payloads refill lazily on
// first access. Meant for boot time, before Serve: the policy restore runs
// under policyMu, and the rehydration fetches run outside it (no client
// traffic exists yet to race with).
func (s *Server) LoadCheckpoint(r io.Reader, rehydrate bool) error {
	s.policyMu.Lock()
	if err := s.cache.RestoreCheckpoint(r); err != nil {
		s.policyMu.Unlock()
		return err
	}
	residents := s.cache.Residents(nil)
	s.policyMu.Unlock()
	if !rehydrate {
		return nil
	}
	for _, id := range residents {
		payload, err := s.source.Fetch(id)
		if err != nil {
			return fmt.Errorf("rpc: rehydrate sample %d: %w", id, err)
		}
		s.payloads.put(id, payload)
	}
	return nil
}

// SaveCheckpointFile and LoadCheckpointFile are the path-based conveniences
// the icache-server command uses around shutdown/startup.
func (s *Server) SaveCheckpointFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.SaveCheckpoint(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadCheckpointFile restores from path; a missing file is not an error
// (first boot).
func (s *Server) LoadCheckpointFile(path string, rehydrate bool) (loaded bool, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	defer f.Close()
	if err := s.LoadCheckpoint(f, rehydrate); err != nil {
		return false, err
	}
	return true, nil
}

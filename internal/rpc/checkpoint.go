package rpc

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// SaveCheckpoint writes the cache's warm state (see icache.Checkpoint).
func (s *Server) SaveCheckpoint(w io.Writer) error {
	s.policyMu.Lock()
	defer s.policyMu.Unlock()
	return s.cache.Checkpoint(w)
}

// LoadCheckpoint restores a warm cache into a fresh server. With rehydrate
// set, the payload store is eagerly refilled from the backend so the first
// client requests hit immediately; otherwise payloads refill lazily on
// first access. Meant for boot time, before Serve: the policy restore runs
// under policyMu, and the rehydration fetches run outside it (no client
// traffic exists yet to race with).
func (s *Server) LoadCheckpoint(r io.Reader, rehydrate bool) error {
	s.policyMu.Lock()
	if err := s.cache.RestoreCheckpoint(r); err != nil {
		s.policyMu.Unlock()
		return err
	}
	residents := s.cache.Residents(nil)
	s.policyMu.Unlock()
	if !rehydrate {
		return nil
	}
	for _, id := range residents {
		payload, err := s.source.Fetch(id)
		if err != nil {
			return fmt.Errorf("rpc: rehydrate sample %d: %w", id, err)
		}
		// Arena admission: the fetch buffer dies right here, so the copy
		// into a recyclable slab is safe AND packs the whole warm set into
		// slab-class blocks instead of len(residents) loose heap objects.
		s.payloads.putCopy(id, payload)
		s.dec.countAdmit(provRehydrate)
	}
	return nil
}

// atomicWriteFile writes a file crash-atomically: the content goes to a
// temp file in the same directory (same filesystem, so the rename cannot
// degrade to a copy), is fsynced so the bytes are durable before the name
// changes, and is renamed over the target only once complete. The directory
// is then fsynced so the rename itself survives a crash. A failure at any
// step leaves the previous file untouched and removes the temp file — a
// torn write can never replace a good checkpoint with a partial one.
func atomicWriteFile(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = write(f); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp, path); err != nil {
		return err
	}
	if d, derr := os.Open(dir); derr == nil {
		// Directory fsync is advisory (some filesystems reject it); the
		// rename above is already atomic with respect to readers.
		d.Sync()
		d.Close()
	}
	return nil
}

// SaveCheckpointFile and LoadCheckpointFile are the path-based conveniences
// the icache-server command uses around shutdown/startup. Saves are
// crash-atomic: an error (or crash) mid-write leaves the previous
// checkpoint file intact.
func (s *Server) SaveCheckpointFile(path string) error {
	return atomicWriteFile(path, s.SaveCheckpoint)
}

// LoadCheckpointFile restores from path; a missing file is not an error
// (first boot).
func (s *Server) LoadCheckpointFile(path string, rehydrate bool) (loaded bool, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	defer f.Close()
	if err := s.LoadCheckpoint(f, rehydrate); err != nil {
		return false, err
	}
	return true, nil
}

package rpc

// Network-level chaos suite: real TCP servers behind fault-injecting
// listeners, real clients with retry policies. Where the icache chaos suite
// proves the *policy* layer degrades gracefully under virtual-time faults,
// this one proves the *transport* layer rides through killed connections
// and flaky sockets without losing or corrupting a single request.

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"icache/internal/dataset"
	"icache/internal/dkv"
	"icache/internal/faults"
	"icache/internal/icache"
	"icache/internal/leakcheck"
	"icache/internal/retry"
	"icache/internal/sampling"
	"icache/internal/storage"
)

// chaosPolicy retries hard and fast: chaos drops connections often, and the
// assertion is that no request is ever lost, so the client must always have
// backoff budget left.
func chaosPolicy() retry.Policy {
	return retry.Policy{
		MaxAttempts: 12,
		BaseDelay:   time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.2,
	}
}

// startChaosServer runs a full server behind a fault-wrapped listener.
func startChaosServer(t *testing.T, inj *faults.Injector) (*Server, string) {
	t.Helper()
	spec := testSpec()
	back, err := storage.NewBackend(spec, storage.OrangeFS())
	if err != nil {
		t.Fatal(err)
	}
	cacheSrv, err := icache.NewServer(back, icache.DefaultConfig(spec.TotalBytes()/5), sampling.DefaultIIS(), 5)
	if err != nil {
		t.Fatal(err)
	}
	source, err := storage.NewDataSource(spec)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(cacheSrv, source)
	srv.Logf = nil
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(faults.WrapListener(ln, inj))
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

// TestChaosClientSurvivesConnDrops drives a long request stream against a
// server whose accepted connections are killed every Nth socket read. Every
// request must still succeed (via redial + retry) and every payload must
// verify — a dropped connection may cost time, never data.
func TestChaosClientSurvivesConnDrops(t *testing.T) {
	leakcheck.Check(t)
	inj := faults.New(3).Add(faults.DropEvery(faults.OpConnRead, 25))
	_, addr := startChaosServer(t, inj)
	spec := testSpec()

	c, err := DialPolicy(addr, time.Second, chaosPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Pin ids 0..9 as H-samples so delivery is exact and verifiable.
	var items []sampling.Item
	ids := make([]dataset.SampleID, 10)
	for i := range ids {
		ids[i] = dataset.SampleID(i)
		items = append(items, sampling.Item{ID: ids[i], IV: 5})
	}
	if err := c.UpdateImportance(items); err != nil {
		t.Fatal(err)
	}

	for call := 0; call < 200; call++ {
		samples, err := c.GetBatch(ids)
		if err != nil {
			t.Fatalf("call %d failed despite retry policy: %v", call, err)
		}
		for i, s := range samples {
			if s.ID != ids[i] {
				t.Fatalf("call %d: sample %d substituted for H-sample %d", call, s.ID, ids[i])
			}
			if err := spec.VerifyPayload(s.ID, s.Payload); err != nil {
				t.Fatalf("call %d: corrupt payload for %d: %v", call, s.ID, err)
			}
		}
	}

	if inj.Fired(faults.OpConnRead) == 0 {
		t.Fatal("drop rule never fired — the chaos schedule tested nothing")
	}
	retries, redials := c.Resilience()
	if retries == 0 || redials == 0 {
		t.Fatalf("resilience counters (retries=%d redials=%d) claim a clean run under chaos", retries, redials)
	}
}

// TestChaosManyClientsNoLostRequests runs several concurrent clients
// against a server dropping connections in both directions. The server's
// per-connection isolation means one killed client connection must never
// disturb another client's stream.
func TestChaosManyClientsNoLostRequests(t *testing.T) {
	leakcheck.Check(t)
	inj := faults.New(7).Add(
		faults.DropEvery(faults.OpConnRead, 60),
		faults.DropEvery(faults.OpConnWrite, 45),
	)
	_, addr := startChaosServer(t, inj)
	spec := testSpec()

	const clients, calls = 4, 50
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := DialPolicy(addr, time.Second, chaosPolicy())
			if err != nil {
				errs <- fmt.Errorf("client %d: dial: %w", w, err)
				return
			}
			defer c.Close()
			for call := 0; call < calls; call++ {
				ids := []dataset.SampleID{dataset.SampleID(w*100 + call), dataset.SampleID(w*100 + call + 1)}
				samples, err := c.GetBatch(ids)
				if err != nil {
					errs <- fmt.Errorf("client %d call %d: %w", w, call, err)
					return
				}
				for _, s := range samples {
					if err := spec.VerifyPayload(s.ID, s.Payload); err != nil {
						errs <- fmt.Errorf("client %d call %d: corrupt payload: %w", w, call, err)
						return
					}
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	if inj.TotalFired() == 0 {
		t.Fatal("no faults fired across the concurrent run")
	}
}

// TestChaosDistributedPeersSurviveFaultyDirectory wires the two-node
// distributed fixture through a fault-injecting directory wrapper: every
// few directory calls fail, yet client batches must keep completing — the
// nodes degrade to backend reads and count the failures.
func TestChaosDistributedPeersSurviveFaultyDirectory(t *testing.T) {
	leakcheck.Check(t)
	spec := testSpec()

	// Every 4th directory lookup and every 5th claim fail. The wrapper is
	// installed at wiring time (EnableDistributed), before any traffic.
	inj := faults.New(11).Add(
		faults.Rule{Op: faults.OpDirLookup, Every: 4, Action: faults.ActError},
		faults.Rule{Op: faults.OpDirClaim, Every: 5, Action: faults.ActError},
	)

	dir := dkv.NewDirectory()
	dirSrv := dkv.NewDirServer(dir)
	dirLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go dirSrv.Serve(dirLn)
	t.Cleanup(func() { dirSrv.Close() })

	var nodes [2]*Server
	var addrs [2]string
	var lns [2]net.Listener
	for n := 0; n < 2; n++ {
		back, err := storage.NewBackend(spec, storage.OrangeFS())
		if err != nil {
			t.Fatal(err)
		}
		cacheSrv, err := icache.NewServer(back, icache.DefaultConfig(spec.TotalBytes()/5), sampling.DefaultIIS(), int64(n+5))
		if err != nil {
			t.Fatal(err)
		}
		source, err := storage.NewDataSource(spec)
		if err != nil {
			t.Fatal(err)
		}
		nodes[n] = NewServer(cacheSrv, source)
		nodes[n].Logf = nil
		lns[n], err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[n] = lns[n].Addr().String()
	}
	for n := 0; n < 2; n++ {
		dirClient, err := dkv.DialDir(dirLn.Addr().String(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		peer := map[dkv.NodeID]string{dkv.NodeID(1 - n): addrs[1-n]}
		nodes[n].EnableDistributed(dkv.NodeID(n), faults.WrapDir(dirClient, inj), peer)
		go nodes[n].Serve(lns[n])
	}
	t.Cleanup(func() {
		nodes[0].Close()
		nodes[1].Close()
	})

	cA := dial(t, addrs[0])
	cB := dial(t, addrs[1])
	var items []sampling.Item
	var ids []dataset.SampleID
	for id := dataset.SampleID(0); id < 30; id++ {
		items = append(items, sampling.Item{ID: id, IV: 5})
		ids = append(ids, id)
	}
	if err := cA.UpdateImportance(items); err != nil {
		t.Fatal(err)
	}
	if err := cB.UpdateImportance(items); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 6; round++ {
		for i, c := range []*Client{cA, cB} {
			samples, err := c.GetBatch(ids)
			if err != nil {
				t.Fatalf("round %d node %d: %v", round, i, err)
			}
			if len(samples) != len(ids) {
				t.Fatalf("round %d node %d: served %d of %d", round, i, len(samples), len(ids))
			}
			for j, s := range samples {
				if s.ID != ids[j] {
					t.Fatalf("round %d node %d: H-sample %d substituted", round, i, ids[j])
				}
				if err := spec.VerifyPayload(s.ID, s.Payload); err != nil {
					t.Fatalf("round %d node %d: corrupt payload: %v", round, i, err)
				}
			}
		}
	}
	if inj.TotalFired() == 0 {
		t.Fatal("directory fault rules never fired")
	}
	var dirFailures int64
	for n := 0; n < 2; n++ {
		_, df := nodes[n].ResilienceStats()
		dirFailures += df
	}
	if dirFailures == 0 {
		t.Fatal("injected directory faults were not counted")
	}
}

package rpc

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"icache/internal/dataset"
	"icache/internal/dkv"
	"icache/internal/obs"
)

// Clairvoyant prefetch planner (NoPFS applied to the byte-serving path).
//
// The IIS sampler draws an epoch's schedule before the epoch begins, so at
// every epoch boundary the future access sequence is known. A clairvoyant
// client pushes it over opEpochPlan; the policy engine classifies it
// (PlanSchedule: L-samples seed the loader, missing H-samples come back in
// first-access order) and the planner turns the H side into pre-placed
// bytes:
//
//  1. Diff against residency: locally present payloads are skipped
//     outright, then ONE batched directory sweep (dirLookupBatch, chunked)
//     drops every sample a live peer already owns — the cluster never
//     fetches a byte it already holds.
//  2. Route by future ownership: unowned samples are assigned their future
//     owner by rendezvous hash over the membership. Entries routed to a
//     peer ship in opPlanPreplace batches and join the PEER's plan (it
//     admits and fetches them itself, claiming directory ownership exactly
//     as a demand fetch would). A failed pre-place RPC falls back to the
//     local queue, and on the NEXT epoch's residency sweep the plan
//     re-routes around the dead node — the directory shows its entries
//     gone.
//  3. Drain in first-access order under a measured storage-bandwidth
//     budget: a token bucket calibrated from the server's own observed
//     backend fetch throughput (or pinned by -prefetch-bandwidth) meters
//     bytes, so planned reads never saturate the path demand fetches need.
//     The drain pauses while the overload gate has the prefetch pool in
//     Brownout, and every entry resolves through the prefetch pool's
//     pending-token ledger — in_time+late+wasted+dropped == issued stays
//     exact with the planner on.
//
// Demand fetches that overtake a queued plan entry promote it: the
// foreground read becomes the one backend fetch (singleflight already
// coalesces in-flight ones; prefetcher.noteDemand cancels queued-unstarted
// ones), so the backend never pays twice for one miss.

// PlanConfig parameterizes the clairvoyant planner.
type PlanConfig struct {
	// BandwidthBytesPerSec caps the planned drain rate. 0 means auto:
	// BandwidthFraction of the throughput observed on the server's own
	// backend fetches, re-measured continuously (conservative before any
	// fetch has been observed).
	BandwidthBytesPerSec float64
	// BandwidthFraction is the share of measured backend throughput the
	// auto budget grants the planner (default 0.5 — demand fetches keep
	// the other half).
	BandwidthFraction float64
}

// Planner auto-budget bounds: what the token bucket assumes before any
// backend fetch has been measured, and the floor under pathological
// measurements so the drain never stalls outright.
const (
	planDefaultBps = 64 << 20 // 64 MiB/s pre-calibration
	planFloorBps   = 1 << 20  // 1 MiB/s floor
)

// planPreplaceChunk is how many ids one opPlanPreplace request carries.
const planPreplaceChunk = 2048

// planLookupChunk bounds one directory residency-sweep call.
const planLookupChunk = 8192

type planner struct {
	s   *Server
	cfg PlanConfig

	// mu guards the plan state below. Never held across I/O: the drain
	// goroutine takes raw/queue items out under mu and works outside it.
	mu    sync.Mutex
	gen   uint64             // bumped by install; stale builds/completions are discarded
	epoch int64              // epoch the current plan was installed for
	raw   []dataset.SampleID // installed but not yet built (diffed/routed)
	queue []dataset.SampleID // built local plan, first-access order, drained from the front
	busy  bool               // drain goroutine holds work outside raw/queue (a build or an in-flight entry)

	// Current-epoch progress gauges (atomics; reset by install).
	planned   int64
	completed int64

	// Cumulative counters (atomics).
	entriesTotal    int64
	completedTotal  int64
	skippedResident int64
	skippedCluster  int64
	preplaceSent    int64
	preplaceRecv    int64
	reroutes        int64
	throttleWaits   int64

	// budgetGauge mirrors the last budget the drain computed (atomic,
	// bytes/sec) for the Prometheus gauge.
	budgetGauge int64

	// Token-bucket state, touched only by the drain goroutine.
	tokens     float64
	lastRefill time.Time

	kick     chan struct{}
	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// SetClairvoyant enables the clairvoyant planner. Must be called before
// Serve. The planner drains through the prefetch worker pool, so it
// requires PrefetchWorkers > 0 on the policy config; with the pool
// disabled the call logs and leaves the server reactive.
func (s *Server) SetClairvoyant(cfg PlanConfig) {
	if s.prefetch == nil {
		if s.Logf != nil {
			s.Logf("rpc: clairvoyant planning requires prefetch workers (PrefetchWorkers > 0); staying reactive")
		}
		return
	}
	if cfg.BandwidthFraction <= 0 || cfg.BandwidthFraction > 1 {
		cfg.BandwidthFraction = 0.5
	}
	p := &planner{
		s:      s,
		cfg:    cfg,
		kick:   make(chan struct{}, 1),
		stopCh: make(chan struct{}),
	}
	p.wg.Add(1)
	go p.run()
	s.plan = p
}

// Clairvoyant reports whether the planner is enabled.
func (s *Server) Clairvoyant() bool { return s.plan != nil }

// planAdmit runs the policy's plan-admission path for one planned H-sample
// (see icache.Server.PlanAdmitH) under the policy lock.
func (s *Server) planAdmit(id dataset.SampleID) bool {
	s.policyMu.Lock()
	ok := s.cache.PlanAdmitH(id)
	s.policyMu.Unlock()
	return ok
}

// install replaces the plan with a new epoch's missing-H sequence (already
// deduplicated, policy-filtered and in first-access order by
// icache.Server.PlanSchedule). Entries of the previous epoch still queued
// are discarded — their epoch's selection no longer wants them.
func (p *planner) install(epoch int64, ids []dataset.SampleID) {
	p.mu.Lock()
	p.gen++
	p.epoch = epoch
	p.raw = ids
	p.queue = nil
	atomic.StoreInt64(&p.planned, 0)
	atomic.StoreInt64(&p.completed, 0)
	p.mu.Unlock()
	select {
	case p.kick <- struct{}{}:
	default:
	}
}

// acceptRemote folds pre-placed entries from a peer's planner into this
// node's current plan: the sender decided (by rendezvous over the
// membership) that WE are these samples' future owner. Returns how many
// entries were accepted.
func (p *planner) acceptRemote(ids []dataset.SampleID) int {
	spec := p.s.source.Spec()
	accepted := ids[:0:0]
	for _, id := range ids {
		if !spec.Contains(id) || p.s.payloads.has(id) {
			continue
		}
		accepted = append(accepted, id)
	}
	if len(accepted) == 0 {
		return 0
	}
	p.mu.Lock()
	p.queue = append(p.queue, accepted...)
	atomic.AddInt64(&p.planned, int64(len(accepted)))
	p.mu.Unlock()
	atomic.AddInt64(&p.preplaceRecv, int64(len(accepted)))
	atomic.AddInt64(&p.entriesTotal, int64(len(accepted)))
	select {
	case p.kick <- struct{}{}:
	default:
	}
	return len(accepted)
}

// run is the drain goroutine: it builds freshly installed plans (residency
// diff + ownership routing, all outside planner locks) and drains the
// local queue in first-access order under the bandwidth budget.
func (p *planner) run() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		if p.raw != nil {
			raw, gen := p.raw, p.gen
			p.raw, p.busy = nil, true
			p.mu.Unlock()
			p.build(raw, gen)
			p.setBusy(false)
			continue
		}
		var (
			id  dataset.SampleID
			gen uint64
			ok  bool
		)
		if len(p.queue) > 0 {
			id, p.queue = p.queue[0], p.queue[1:]
			gen, ok = p.gen, true
			p.busy = true
		}
		p.mu.Unlock()
		if !ok {
			select {
			case <-p.kick:
				continue
			case <-p.stopCh:
				return
			}
		}
		if !p.drainOne(id, gen) {
			return
		}
		p.setBusy(false)
	}
}

// build diffs a raw plan against residency and routes it: local payloads
// and cluster-resident samples are dropped, the remainder is routed by
// rendezvous to its future owner. Runs with no locks held (the directory
// sweep and pre-place RPCs are real I/O); a concurrent install supersedes
// the build, which is then discarded.
func (p *planner) build(raw []dataset.SampleID, gen uint64) {
	s := p.s
	missing := raw[:0:0]
	for _, id := range raw {
		if s.payloads.has(id) {
			atomic.AddInt64(&p.skippedResident, 1)
			continue
		}
		missing = append(missing, id)
	}

	local := missing
	if dist := s.dist; dist != nil && len(missing) > 0 {
		local = missing[:0:0]
		// One batched residency sweep over the directory (chunked): a
		// sample a LIVE peer owns is cluster-resident and needs no fetch —
		// the peer data plane serves it. Entries of dead nodes have been
		// purged by the membership plane, so they show up as unowned here,
		// which is exactly what re-routes a broken plan on the next sweep.
		owners := make([]dkv.Owner, 0, len(missing))
		swept := true
		for off := 0; off < len(missing); off += planLookupChunk {
			end := off + planLookupChunk
			if end > len(missing) {
				end = len(missing)
			}
			chunk := s.dirLookupBatch(dist, missing[off:end], obs.TraceCtx{}, time.Time{})
			if chunk == nil {
				swept = false
				break
			}
			owners = append(owners, chunk...)
		}
		if !swept {
			// Directory unavailable: plan everything locally; the admit
			// path's claim race still keeps the cluster duplicate-free.
			local = missing
		} else {
			peerIDs := dist.peerNodeIDs()
			route := make(map[dkv.NodeID][]dataset.SampleID)
			for i, id := range missing {
				if owners[i].Found && owners[i].Node != dist.nodeID {
					atomic.AddInt64(&p.skippedCluster, 1)
					continue
				}
				owner := rendezvousOwner(id, dist.nodeID, peerIDs)
				if owner == dist.nodeID {
					local = append(local, id)
					continue
				}
				route[owner] = append(route[owner], id)
			}
			local = p.preplace(route, local)
		}
	}

	p.mu.Lock()
	if p.gen != gen {
		p.mu.Unlock()
		return // superseded by a newer install
	}
	p.queue = append(p.queue, local...)
	atomic.AddInt64(&p.planned, int64(len(local)))
	p.mu.Unlock()
	atomic.AddInt64(&p.entriesTotal, int64(len(local)))
}

// preplace ships each future owner its plan entries in opPlanPreplace
// chunks, in a deterministic node order. Entries a peer rejects (already
// resident there) are done; entries that fail to ship re-route to the
// local queue — this node fetches them itself rather than dropping plan
// coverage.
func (p *planner) preplace(route map[dkv.NodeID][]dataset.SampleID, local []dataset.SampleID) []dataset.SampleID {
	nodes := make([]dkv.NodeID, 0, len(route))
	for n := range route {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		ids := route[n]
		for off := 0; off < len(ids); off += planPreplaceChunk {
			end := off + planPreplaceChunk
			if end > len(ids) {
				end = len(ids)
			}
			chunk := ids[off:end]
			select {
			case <-p.stopCh:
				return local
			default:
			}
			c, err := p.s.dist.peer(n)
			if err == nil {
				var accepted int
				accepted, err = c.PlanPreplace(chunk)
				if err == nil {
					atomic.AddInt64(&p.preplaceSent, int64(accepted))
					continue
				}
				if isConnFailure(err) {
					p.s.dist.dropPeer(n, c)
				}
			}
			// Unreachable owner: fall back to fetching locally. The next
			// epoch's residency sweep sees whatever the cluster actually
			// holds and re-routes accordingly.
			atomic.AddInt64(&p.reroutes, int64(len(chunk)))
			local = append(local, chunk...)
		}
	}
	return local
}

// drainOne paces one plan entry through the bandwidth budget and hands it
// to the prefetch pool. Returns false only when the planner is stopping.
func (p *planner) drainOne(id dataset.SampleID, gen uint64) bool {
	// Brownout: the overload gate paused the prefetch pool, so planned
	// backend reads must stop competing with overloaded serving. Wait it
	// out rather than dropping — the plan resumes when the gate recovers.
	for p.s.prefetch.isPaused() {
		select {
		case <-p.stopCh:
			return false
		case <-time.After(5 * time.Millisecond):
		}
		if p.stale(gen) {
			return true
		}
	}
	if p.stale(gen) {
		return true
	}
	if p.s.payloads.has(id) {
		p.complete(gen)
		return true
	}
	if !p.awaitTokens(float64(p.s.source.Spec().SampleBytes(id))) {
		return false
	}
	if p.stale(gen) {
		return true
	}
	if !p.s.prefetch.enqueuePlanned(id, p.stopCh) {
		return false
	}
	p.complete(gen)
	return true
}

// setBusy flips the in-flight marker the drain loop sets while it holds
// work outside raw/queue, so introspection can tell an idle planner from
// one mid-build or mid-entry.
func (p *planner) setBusy(v bool) {
	p.mu.Lock()
	p.busy = v
	p.mu.Unlock()
}

// stale reports whether a newer plan replaced the one entry id came from.
func (p *planner) stale(gen uint64) bool {
	p.mu.Lock()
	s := p.gen != gen
	p.mu.Unlock()
	return s
}

// complete advances the current epoch's progress gauge (stale completions
// belong to a superseded plan whose gauges were already reset).
func (p *planner) complete(gen uint64) {
	p.mu.Lock()
	if p.gen == gen {
		atomic.AddInt64(&p.completed, 1)
	}
	p.mu.Unlock()
	atomic.AddInt64(&p.completedTotal, 1)
}

// budgetBps resolves the current drain budget in bytes/sec: the configured
// override, or BandwidthFraction of the measured backend fetch throughput.
// The measurement sums per-fetch service times, so under concurrent
// fetches it UNDERestimates the path's real capacity — conservative in
// exactly the right direction for background work.
func (p *planner) budgetBps() float64 {
	bps := p.cfg.BandwidthBytesPerSec
	if bps <= 0 {
		bytes := atomic.LoadInt64(&p.s.backendFetchBytes)
		nanos := atomic.LoadInt64(&p.s.backendFetchNanos)
		if nanos <= 0 {
			bps = planDefaultBps
		} else {
			bps = float64(bytes) / float64(nanos) * float64(time.Second) * p.cfg.BandwidthFraction
		}
		if bps < planFloorBps {
			bps = planFloorBps
		}
	}
	atomic.StoreInt64(&p.budgetGauge, int64(bps))
	return bps
}

// awaitTokens blocks until the token bucket holds n bytes of budget,
// refilling at the current budget rate. Returns false when stopping.
func (p *planner) awaitTokens(n float64) bool {
	for {
		bps := p.budgetBps()
		now := time.Now()
		if !p.lastRefill.IsZero() {
			p.tokens += bps * now.Sub(p.lastRefill).Seconds()
		}
		p.lastRefill = now
		burst := bps / 4
		if burst < n {
			burst = n
		}
		if p.tokens > burst {
			p.tokens = burst
		}
		if p.tokens >= n {
			p.tokens -= n
			return true
		}
		wait := time.Duration((n - p.tokens) / bps * float64(time.Second))
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		if wait > 100*time.Millisecond {
			wait = 100 * time.Millisecond
		}
		atomic.AddInt64(&p.throttleWaits, 1)
		select {
		case <-p.stopCh:
			return false
		case <-time.After(wait):
		}
	}
}

// observeBackend feeds one backend fetch into the throughput measurement.
func (s *Server) observeBackend(bytes int, dur time.Duration) {
	if dur <= 0 {
		dur = 1
	}
	atomic.AddInt64(&s.backendFetchBytes, int64(bytes))
	atomic.AddInt64(&s.backendFetchNanos, int64(dur))
}

// stop terminates the drain goroutine. Queued plan entries are abandoned
// (server shutdown).
func (p *planner) stop() {
	p.stopOnce.Do(func() { close(p.stopCh) })
	p.wg.Wait()
}

// rendezvousOwner picks id's future owner by highest-random-weight hashing
// over this node and its peers: every node computes the same answer from
// the same membership, with no coordination.
func rendezvousOwner(id dataset.SampleID, self dkv.NodeID, peers []dkv.NodeID) dkv.NodeID {
	best, bestW := self, planWeight(self, id)
	for _, n := range peers {
		if w := planWeight(n, id); w > bestW || (w == bestW && n > best) {
			best, bestW = n, w
		}
	}
	return best
}

// planWeight is a splitmix64-style mix of (node, sample).
func planWeight(n dkv.NodeID, id dataset.SampleID) uint64 {
	x := uint64(n)*0x9E3779B97F4A7C15 + uint64(id)*0xBF58476D1CE4E5B9
	x ^= x >> 31
	x *= 0x94D049BB133111EB
	x ^= x >> 29
	return x
}

// peerNodeIDs lists the other nodes in the static address book, sorted —
// the rendezvous membership this node hashes over.
func (d *distState) peerNodeIDs() []dkv.NodeID {
	out := make([]dkv.NodeID, 0, len(d.peerAddrs))
	for n := range d.peerAddrs {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PlanStats is the planner's introspection snapshot (zero when the planner
// is disabled).
type PlanStats struct {
	Epoch             int64
	Planned           int64 // entries admitted to the current epoch's plan
	Completed         int64 // current-epoch entries drained (handed to the pool or already resident)
	Remaining         int64 // Planned - Completed
	EntriesTotal      int64
	CompletedTotal    int64
	SkippedResident   int64 // plan entries whose bytes were already local
	SkippedCluster    int64 // plan entries a live peer already owned
	PreplaceSent      int64 // entries accepted by future owners
	PreplaceRecv      int64 // entries accepted FROM peers into our plan
	Reroutes          int64 // entries re-routed locally after a failed pre-place
	ThrottleWaits     int64 // bandwidth-budget waits
	BudgetBytesPerSec int64 // last computed drain budget
}

// PlanStats reports the planner's progress and counters.
func (s *Server) PlanStats() PlanStats {
	p := s.plan
	if p == nil {
		return PlanStats{}
	}
	p.mu.Lock()
	epoch := p.epoch
	p.mu.Unlock()
	planned := atomic.LoadInt64(&p.planned)
	completed := atomic.LoadInt64(&p.completed)
	return PlanStats{
		Epoch:             epoch,
		Planned:           planned,
		Completed:         completed,
		Remaining:         planned - completed,
		EntriesTotal:      atomic.LoadInt64(&p.entriesTotal),
		CompletedTotal:    atomic.LoadInt64(&p.completedTotal),
		SkippedResident:   atomic.LoadInt64(&p.skippedResident),
		SkippedCluster:    atomic.LoadInt64(&p.skippedCluster),
		PreplaceSent:      atomic.LoadInt64(&p.preplaceSent),
		PreplaceRecv:      atomic.LoadInt64(&p.preplaceRecv),
		Reroutes:          atomic.LoadInt64(&p.reroutes),
		ThrottleWaits:     atomic.LoadInt64(&p.throttleWaits),
		BudgetBytesPerSec: atomic.LoadInt64(&p.budgetGauge),
	}
}

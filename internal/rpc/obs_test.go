package rpc

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"icache/internal/dataset"
	"icache/internal/dkv"
	"icache/internal/faults"
	"icache/internal/icache"
	"icache/internal/obs"
	"icache/internal/sampling"
	"icache/internal/storage"
	"icache/internal/trace"
)

// startObsServer is startServer with the observability layer armed before
// Serve: per-stage histograms and span tracing.
func startObsServer(t *testing.T) (*Server, string, *obs.Registry, *trace.Recorder) {
	t.Helper()
	spec := testSpec()
	back, err := storage.NewBackend(spec, storage.OrangeFS())
	if err != nil {
		t.Fatal(err)
	}
	cacheSrv, err := icache.NewServer(back, icache.DefaultConfig(spec.TotalBytes()/5), sampling.DefaultIIS(), 5)
	if err != nil {
		t.Fatal(err)
	}
	source, err := storage.NewDataSource(spec)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(cacheSrv, source)
	srv.Logf = nil
	reg := obs.NewRegistry()
	tracer := trace.NewRecorder(1 << 14)
	srv.EnableObs(reg, tracer)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String(), reg, tracer
}

// hotIDs pushes ids 0..n-1 as H-samples through c and returns them.
func hotIDs(t *testing.T, c *Client, n int) []dataset.SampleID {
	t.Helper()
	var items []sampling.Item
	var ids []dataset.SampleID
	for id := dataset.SampleID(0); id < dataset.SampleID(n); id++ {
		items = append(items, sampling.Item{ID: id, IV: 5})
		ids = append(ids, id)
	}
	if err := c.UpdateImportance(items); err != nil {
		t.Fatal(err)
	}
	return ids
}

// TestMetricsJSONBytesUnchanged pins the JSON exposition byte-for-byte for
// a zero snapshot: existing dashboards parse this document, so adding,
// removing, renaming, or reordering fields is a breaking change that must
// show up here. New metrics belong on the Prometheus surface.
func TestMetricsJSONBytesUnchanged(t *testing.T) {
	got, err := json.MarshalIndent(MetricsSnapshot{}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	want := `{
  "uptime_seconds": 0,
  "hits": 0,
  "misses": 0,
  "substitutions": 0,
  "hit_ratio": 0,
  "inserts": 0,
  "evictions": 0,
  "hcache_len": 0,
  "lcache_len": 0,
  "tier2_len": 0,
  "payload_len": 0,
  "packages_loaded": 0,
  "loader_useful_bytes": 0,
  "loader_wasted_bytes": 0,
  "tier2_hits": 0,
  "peer_serves": 0,
  "peer_hits": 0,
  "membership_registers": 0,
  "membership_heartbeats": 0,
  "membership_heartbeat_rejects": 0,
  "scrub_sweeps": 0,
  "scrub_released": 0,
  "scrub_reclaimed": 0,
  "scrub_dropped": 0,
  "replayed_claims": 0,
  "replay_denied": 0,
  "coalesced_misses": 0,
  "prefetch_workers": 0,
  "prefetch_queued": 0,
  "prefetch_completed": 0,
  "prefetch_dropped": 0,
  "prefetch_failed": 0,
  "prefetch_queue_depth": 0,
  "buffer_pool_gets": 0,
  "buffer_pool_allocs": 0,
  "buffer_reuse_rate": 0
}`
	if string(got) != want {
		t.Fatalf("JSON exposition changed (breaking for existing scrapers):\n got: %s\nwant: %s", got, want)
	}
}

// TestPrometheusExposition drives traffic through an obs-enabled server
// and scrapes /metrics?format=prom: every stats family must render, the
// per-stage histograms must appear, and the values must agree with the
// JSON snapshot taken in the same breath.
func TestPrometheusExposition(t *testing.T) {
	srv, addr, _, _ := startObsServer(t)
	c := dial(t, addr)
	ids := hotIDs(t, c, 32)
	for i := 0; i < 3; i++ {
		if _, err := c.GetBatch(ids); err != nil {
			t.Fatal(err)
		}
	}

	ts := httptest.NewServer(srv.MetricsHandler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	text := string(body)

	// One representative metric per family, plus the occupancy gauges.
	for _, name := range []string{
		"icache_cache_hits_total",               // cache family
		"icache_cache_degraded_total",           // field the JSON view never carried
		"icache_cache_rejections_total",         //
		"icache_loader_packages_total",          // loader family
		"icache_resilience_peer_failures_total", // resilience family
		"icache_membership_registers_total",     // membership family
		"icache_membership_suspects_total",      // field the JSON view never carried
		"icache_serving_coalesced_misses_total", // serving family
		"icache_buffer_pool_gets_total",
		"icache_hcache_len",
		"icache_uptime_seconds",
		"icache_evict_capacity_total",      // decision family: reason-coded evictions
		"icache_evict_reasoned_total",      //
		"icache_admit_fetch_total",         // admission provenance
		"icache_prefetch_issued_total",     // prefetch-outcome ledger
		"icache_prefetch_timeliness_ratio", //
		"icache_substitution_exact_total",  // substitution quality
		"icache_epoch_hcache_len",          // epoch-boundary residency
		"icache_journal_events_total",      // journal retention
		"icache_trace_dropped_spans_total", // trace-ring retention
	} {
		if !strings.Contains(text, "\n"+name+" ") && !strings.Contains(text, "\n# TYPE "+name+" ") {
			t.Errorf("prometheus exposition missing %s", name)
		}
	}

	// The serving path registers its stage histograms up front; at least
	// these must expose buckets, sum/count, and quantile companions.
	stages := []string{
		StageRequest, StagePolicyLockHold, StageLocalHit, StageSingleflightWait,
		StageBackendFetch, StagePeerRPC, StageDirLookup, StagePrefetchQueueWait,
		StageSubstitutionScan,
	}
	for _, st := range stages {
		base := "icache_stage_" + st + "_seconds"
		if !strings.Contains(text, base+"_bucket{le=\"+Inf\"}") {
			t.Errorf("missing histogram buckets for stage %s", st)
		}
		if !strings.Contains(text, base+"_count") || !strings.Contains(text, "icache_stage_"+st+"_p99_seconds") {
			t.Errorf("missing count/quantiles for stage %s", st)
		}
	}

	// Values agree with the JSON snapshot (counters only move forward, and
	// no traffic runs between the scrape and this snapshot).
	m := srv.Metrics()
	if m.Hits == 0 {
		t.Fatal("no hits recorded; traffic did not run")
	}
	wantLine := "icache_cache_hits_total " + strconv.FormatInt(m.Hits, 10)
	if !strings.Contains(text, wantLine) {
		t.Errorf("exposition lacks %q", wantLine)
	}

	// The stage histograms actually recorded the traffic.
	reqLine := "icache_stage_request_seconds_count "
	i := strings.Index(text, reqLine)
	if i < 0 {
		t.Fatal("no request stage count")
	}
	rest := text[i+len(reqLine):]
	if nl := strings.IndexByte(rest, '\n'); nl >= 0 {
		rest = rest[:nl]
	}
	if rest == "0" {
		t.Fatal("request stage histogram never recorded")
	}

	// JSON stays the default view.
	jresp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	if ct := jresp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default content type %q", ct)
	}
}

// startTracedDistFixture is the two-node distributed fixture with the
// observability layer armed on both nodes and the directory server. When
// inj is non-nil, node 0's cache listener is wrapped with the injector, so
// node 1's peer reads toward node 0 hit connection faults.
type tracedDistFixture struct {
	*distFixture
	tracers [2]*trace.Recorder
	dirTrc  *trace.Recorder
}

func startTracedDistFixture(t *testing.T, inj *faults.Injector) *tracedDistFixture {
	t.Helper()
	spec := testSpec()

	dir := dkv.NewDirectory()
	dirSrv := dkv.NewDirServer(dir)
	dirTrc := trace.NewRecorder(1 << 14)
	dirSrv.EnableObs(obs.NewRegistry(), dirTrc)
	dirLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go dirSrv.Serve(dirLn)
	t.Cleanup(func() { dirSrv.Close() })

	f := &tracedDistFixture{distFixture: &distFixture{dirAddr: dirLn.Addr().String()}, dirTrc: dirTrc}
	var lns [2]net.Listener
	for n := 0; n < 2; n++ {
		back, err := storage.NewBackend(spec, storage.OrangeFS())
		if err != nil {
			t.Fatal(err)
		}
		cacheSrv, err := icache.NewServer(back, icache.DefaultConfig(spec.TotalBytes()/5), sampling.DefaultIIS(), int64(n+5))
		if err != nil {
			t.Fatal(err)
		}
		source, err := storage.NewDataSource(spec)
		if err != nil {
			t.Fatal(err)
		}
		f.sources[n] = source
		f.nodes[n] = NewServer(cacheSrv, source)
		f.nodes[n].Logf = nil
		f.tracers[n] = trace.NewRecorder(1 << 14)
		f.nodes[n].EnableObs(obs.NewRegistry(), f.tracers[n])
		lns[n], err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		f.addrs[n] = lns[n].Addr().String()
	}
	if inj != nil {
		lns[0] = faults.WrapListener(lns[0], inj)
	}
	for n := 0; n < 2; n++ {
		dirClient, err := dkv.DialDir(f.dirAddr, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		peer := map[dkv.NodeID]string{dkv.NodeID(1 - n): f.addrs[1-n]}
		f.nodes[n].EnableDistributed(dkv.NodeID(n), dirClient, peer)
		go f.nodes[n].Serve(lns[n])
	}
	t.Cleanup(func() {
		f.nodes[0].Close()
		f.nodes[1].Close()
	})
	return f
}

// allSpans merges the span events recorded by every participant: the
// training client, both cache nodes, and the directory server — exactly
// what an operator does by concatenating the processes' trace CSVs.
func (f *tracedDistFixture) allSpans(client *trace.Recorder) []trace.Event {
	events := client.Snapshot()
	events = append(events, f.tracers[0].Snapshot()...)
	events = append(events, f.tracers[1].Snapshot()...)
	events = append(events, f.dirTrc.Snapshot()...)
	return events
}

// TestTracedRequestFullHopChain runs a traced GetBatch whose samples live
// on the *other* node: client (hop 0) → node 1 (hop 1) → directory and
// peer node 0 (hop 2). Merging every participant's ring must reconstruct
// the full chain.
func TestTracedRequestFullHopChain(t *testing.T) {
	f := startTracedDistFixture(t, nil)

	cA := dial(t, f.addrs[0])
	cB := dial(t, f.addrs[1])
	ids := hotIDs(t, cA, 12)
	hotIDs(t, cB, 12) // same H-list on node 1, so serving is exact
	// Node 0 fetches and claims the samples.
	if _, err := cA.GetBatch(ids); err != nil {
		t.Fatal(err)
	}

	// Trace every request from this client.
	clientTrc := trace.NewRecorder(1 << 12)
	cB.EnableObs(nil, clientTrc, obs.NewSampler(1))
	samples, err := cB.GetBatch(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range samples {
		if s.ID != ids[i] {
			t.Fatalf("H-sample %d substituted", ids[i])
		}
	}
	if _, hits := f.nodes[1].PeerStats(); hits == 0 {
		t.Fatal("node 1 recorded no peer hits; the chain under test did not happen")
	}

	chains := trace.Chains(f.allSpans(clientTrc))
	if len(chains) == 0 {
		t.Fatal("no trace chains reconstructed")
	}
	// At least one chain must span all three hops with the expected kinds.
	var full *trace.Chain
	for _, ch := range chains {
		hops := map[uint8]map[trace.Kind]int{}
		for _, sp := range ch.Spans {
			if hops[sp.Hop] == nil {
				hops[sp.Hop] = map[trace.Kind]int{}
			}
			hops[sp.Hop][sp.Kind]++
		}
		if hops[0][trace.KindRPCSend] >= 1 &&
			hops[1][trace.KindRPCRecv] >= 1 &&
			hops[1][trace.KindRPCSend] >= 2 && // directory lookup + peer read
			hops[2][trace.KindRPCRecv] >= 2 { // directory serve + peer serve
			full = ch
			break
		}
	}
	if full == nil {
		for _, ch := range chains {
			t.Logf("chain %016x: %d spans", ch.TraceID, len(ch.Spans))
			for _, sp := range ch.Spans {
				t.Logf("  hop %d %s arg=%d dur=%s", sp.Hop, sp.Kind, sp.Arg, sp.Dur)
			}
		}
		t.Fatal("no chain reconstructs client -> node -> {directory, peer}")
	}
	// Every span carries the chain's trace ID (Chains groups by ID, so
	// corruption would have splintered the chain instead; assert the root
	// duration is sane: the client round trip bounds every inner span).
	for _, sp := range full.Spans {
		if sp.TraceID != full.TraceID {
			t.Fatalf("span trace ID %016x in chain %016x", sp.TraceID, full.TraceID)
		}
		if sp.Hop > 0 && sp.Dur > 2*full.Root+time.Second {
			t.Fatalf("inner span dur %s exceeds root %s beyond tolerance", sp.Dur, full.Root)
		}
	}
}

// TestTracedChainSurvivesPeerFault injects connection faults on the peer
// owner's listener: peer reads from node 1 fail and degrade to backend
// reads, but (a) every requested sample is still served exactly —
// conservation — and (b) the spans that were recorded still form coherent
// chains: no fault may corrupt or cross-wire a trace context.
func TestTracedChainSurvivesPeerFault(t *testing.T) {
	inj := faults.New(17).Add(faults.DropEvery(faults.OpConnRead, 5))
	f := startTracedDistFixture(t, inj)

	cA := dial(t, f.addrs[0])
	cB := dial(t, f.addrs[1])
	ids := hotIDs(t, cA, 16)
	hotIDs(t, cB, 16) // same H-list on node 1, so serving is exact
	if _, err := cA.GetBatch(ids); err != nil {
		t.Fatal(err)
	}

	clientTrc := trace.NewRecorder(1 << 12)
	cB.EnableObs(nil, clientTrc, obs.NewSampler(1))
	for round := 0; round < 4; round++ {
		samples, err := cB.GetBatch(ids)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(samples) != len(ids) {
			t.Fatalf("round %d: served %d of %d", round, len(samples), len(ids))
		}
		for i, s := range samples {
			if s.ID != ids[i] {
				t.Fatalf("round %d: H-sample %d substituted", round, ids[i])
			}
			if err := testSpec().VerifyPayload(s.ID, s.Payload); err != nil {
				t.Fatalf("round %d: corrupt payload: %v", round, err)
			}
		}
	}
	if inj.TotalFired() == 0 {
		t.Fatal("fault rules never fired")
	}

	// Conservation on the serving node: every request fell into exactly
	// one outcome class.
	f.nodes[1].policyMu.Lock()
	st := f.nodes[1].cache.Stats()
	f.nodes[1].policyMu.Unlock()
	if got, want := st.Hits+st.Misses+st.Substitutions+st.Degraded, st.Requests(); got != want {
		t.Fatalf("outcome classes sum to %d, Requests() = %d", got, want)
	}
	if st.Requests() == 0 {
		t.Fatal("node 1 recorded no requests")
	}

	// Chains must stay coherent: hop 0 always has the client send span,
	// hop 1 the serve span, and no chain mixes trace IDs (Chains groups by
	// ID — a corrupted ID would orphan spans into junk chains whose hop
	// structure breaks the invariants below).
	chains := trace.Chains(f.allSpans(clientTrc))
	if len(chains) == 0 {
		t.Fatal("no chains under fault")
	}
	clientIDs := map[uint64]bool{}
	for _, sp := range clientTrc.Snapshot() {
		clientIDs[sp.TraceID] = true
	}
	for _, ch := range chains {
		if !clientIDs[ch.TraceID] {
			t.Fatalf("chain %016x does not correspond to any client-issued trace", ch.TraceID)
		}
		for _, sp := range ch.Spans {
			if sp.TraceID != ch.TraceID {
				t.Fatalf("span trace ID %016x inside chain %016x", sp.TraceID, ch.TraceID)
			}
			if !sp.Kind.IsSpan() {
				t.Fatalf("non-span event %v leaked into chain %016x", sp.Kind, ch.TraceID)
			}
		}
	}
}

package rpc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"icache/internal/dataset"
	"icache/internal/obs"
	"icache/internal/overload"
	"icache/internal/wire"
)

// The vectored serving path. Plain and multiplexed opGetBatch /
// opPeerGetBatch requests are served without copying payload bytes and
// without per-request heap allocation when every sample is a local hit:
//
//  1. request ids decode into a pooled scratch slice,
//  2. the policy verdict appends into a pooled served slice
//     (icache.Server.FetchBatchInto),
//  3. each resident payload is pinned in the slab store (refcount +1,
//     no copy),
//  4. the response is framed as header runs + payload references in a
//     pooled wire.Vec and written with ONE vectored write (writev on TCP),
//  5. pins release after the write returns — eviction may have deleted the
//     entries mid-write, but the slabs outlive the iovec submission.
//
// Misses drop to the ordinary resolution machinery (singleflight, peer
// scatter-gather, backend) where a round trip dwarfs allocation cost.
// Traced envelopes and the legacy-protocol test hook keep using the copy
// path in dispatchCtx, which stays byte-for-byte compatible.

// servedPayload is one response slot: the payload bytes, the pinned slab
// backing them (nil for zero-length or miss-path bytes), and — on the peer
// path — whether the entry was present at all.
type servedPayload struct {
	id  dataset.SampleID
	b   []byte
	pin *slab
	ok  bool
}

// serveScratch is the pooled per-request working set of the vectored path.
type serveScratch struct {
	ids     []dataset.SampleID
	served  []dataset.SampleID
	out     []servedPayload
	missIdx []int
	vec     wire.Vec
}

// maxPooledScratchIDs bounds the id capacity a pooled scratch may retain,
// so one degenerate giant batch does not pin its working set forever.
const maxPooledScratchIDs = 1 << 16

var serveScratchPool = sync.Pool{New: func() interface{} { return &serveScratch{} }}

func getServeScratch() *serveScratch {
	return serveScratchPool.Get().(*serveScratch)
}

// releaseScratch drops every slab pin the request took, clears payload
// references, and returns the scratch to the pool. Safe on partially
// filled scratches (error paths).
func (s *Server) releaseScratch(sc *serveScratch) {
	for i := range sc.out {
		if sc.out[i].pin != nil {
			s.payloads.unref(sc.out[i].pin)
			sc.out[i].pin = nil
		}
		sc.out[i].b = nil
	}
	sc.out = sc.out[:0]
	sc.served = sc.served[:0]
	sc.missIdx = sc.missIdx[:0]
	if cap(sc.ids) > maxPooledScratchIDs {
		return
	}
	sc.ids = sc.ids[:0]
	serveScratchPool.Put(sc)
}

// vecOp reports whether the vectored path serves this opcode. The legacy
// protocol hook routes everything through the copy path instead (its job is
// to reproduce pre-PR-5 behavior exactly).
func (s *Server) vecOp(op byte) bool {
	if s.legacyProto {
		return false
	}
	return op == opGetBatch || op == opPeerGetBatch
}

// serveVecRequest serves one decoded-opcode request on the vectored path:
// decode ids, resolve payloads (pinning local hits), frame, one vectored
// write. muxID/muxed carry the envelope to echo. The returned error is a
// connection write error (the caller tears the connection down); protocol
// and resolution errors are answered in-band.
func (s *Server) serveVecRequest(cs *muxConnState, muxID uint32, muxed bool, req []byte, dl time.Time) error {
	op := req[0]
	sc := getServeScratch()
	d := newReader(req)
	d.u8()
	ids, derr := decodeGetBatchRequestInto(d, sc.ids[:0])
	sc.ids = ids
	return s.serveVecDecoded(cs, muxID, muxed, op, sc, derr, dl)
}

// serveVecDecoded is serveVecRequest after id decode — the mux read loop
// decodes synchronously (the request buffer is reused for the next frame)
// and hands the scratch to a dispatch goroutine, which enters here.
// Releases sc on all paths.
func (s *Server) serveVecDecoded(cs *muxConnState, muxID uint32, muxed bool, op byte, sc *serveScratch, derr error, dl time.Time) error {
	defer s.releaseScratch(sc)
	if derr != nil {
		return s.writeVecError(cs, muxID, muxed, sc, derr.Error())
	}
	// The budget may have drained while this request sat in the dispatch
	// queue (the mux semaphore): re-check before touching the cache. Peer
	// batch requests inherit the originating request's budget, so the check
	// covers both ops.
	if op == opPeerGetBatch && s.deadlineExpired(dl) {
		return s.writeVecStatus(cs, muxID, muxed, sc, statusExpired)
	}
	var t0 time.Time
	if op == opGetBatch && (s.obs.histsOn() || s.obs.slowThresh > 0) {
		t0 = time.Now()
	}
	var err error
	if op == opPeerGetBatch {
		s.fillPeerPinned(sc)
	} else {
		err = s.getBatchPinned(sc.ids, obs.TraceCtx{}, sc, dl)
	}
	if err != nil {
		if errors.Is(err, overload.ErrExpired) {
			return s.writeVecStatus(cs, muxID, muxed, sc, statusExpired)
		}
		return s.writeVecError(cs, muxID, muxed, sc, err.Error())
	}
	werr := s.writeVecResponse(cs, muxID, muxed, sc, op == opPeerGetBatch)
	if !t0.IsZero() {
		dur := time.Since(t0)
		s.obs.request.Record(dur)
		s.maybeLogSlow(obs.TraceCtx{}, len(sc.ids), dur)
	}
	return werr
}

// getBatchPinned is the pinned-hit core of GetBatch: policy verdict into
// sc.served, local hits pinned into sc.out, misses resolved through the
// ordinary coalesced machinery and patched in afterwards. On error the
// caller releases whatever pins were already taken via releaseScratch.
func (s *Server) getBatchPinned(ids []dataset.SampleID, ctx obs.TraceCtx, sc *serveScratch, dl time.Time) error {
	// Same pre-policy deadline check as getBatch: an expired request leaves
	// no trace in the cache counters.
	if s.deadlineExpired(dl) {
		return overload.ErrExpired
	}
	spec := s.source.Spec()
	for _, id := range ids {
		if !spec.Contains(id) {
			return fmt.Errorf("rpc: sample %d out of range for dataset %q", id, spec.Name)
		}
	}

	histsOn := s.obs.histsOn()
	s.policyMu.Lock()
	var tLock time.Time
	if histsOn {
		tLock = time.Now()
	}
	sc.served = sc.served[:0]
	s.cache.FetchBatchInto(s.now(), ids, &sc.served)
	s.policyMu.Unlock()
	s.obs.policyLock.Since(tLock)

	sc.out = sc.out[:0]
	sc.missIdx = sc.missIdx[:0]
	for i, id := range sc.served {
		var tHit time.Time
		if histsOn {
			tHit = time.Now()
		}
		if b, sl, ok := s.payloads.getPinned(id); ok {
			s.obs.localHit.Since(tHit)
			s.prefetch.noteHit(id)
			sc.out = append(sc.out, servedPayload{id: id, b: b, pin: sl, ok: true})
			continue
		}
		sc.out = append(sc.out, servedPayload{id: id, ok: true})
		sc.missIdx = append(sc.missIdx, i)
	}
	if len(sc.missIdx) == 0 {
		return nil
	}

	// Miss path: a backend or peer round trip dwarfs allocation, so reuse
	// the existing resolution machinery as-is. The returned samples align
	// with missIDs (both paths preserve request order). Miss-path bytes are
	// adopted slabs or remote buffers — safe without a pin.
	missIDs := make([]dataset.SampleID, len(sc.missIdx))
	for j, i := range sc.missIdx {
		missIDs[j] = sc.served[i]
	}
	var samples []Sample
	var err error
	if dist := s.dist; dist != nil && dist.peerCfg.Batch > 0 {
		samples, err = s.collectBatched(missIDs, ctx, dl)
	} else {
		samples, err = s.collectSerial(missIDs, ctx, histsOn, dl)
	}
	if err != nil {
		return err
	}
	for j, i := range sc.missIdx {
		sc.out[i].b = samples[j].Payload
	}
	return nil
}

// fillPeerPinned serves opPeerGetBatch against the payload store only:
// per-id pinned lookups, never policyMu, never a cache mutation — the same
// contract as handlePeerGetBatch, minus the copies.
func (s *Server) fillPeerPinned(sc *serveScratch) {
	sc.out = sc.out[:0]
	served := 0
	for _, id := range sc.ids {
		if b, sl, ok := s.payloads.getPinned(id); ok {
			sc.out = append(sc.out, servedPayload{id: id, b: b, pin: sl, ok: true})
			served++
		} else {
			sc.out = append(sc.out, servedPayload{id: id})
		}
	}
	if served > 0 && s.dist != nil {
		atomic.AddInt64(&s.dist.peerServes, int64(served))
	}
}

// writeVecResponse frames sc.out (GetBatch or PeerGetBatch layout) into
// the scratch Vec and performs the single vectored write under the
// connection's write mutex. Pins in sc stay held until the caller's
// releaseScratch — after the write has fully completed.
func (s *Server) writeVecResponse(cs *muxConnState, muxID uint32, muxed bool, sc *serveScratch, peer bool) error {
	v := &sc.vec
	v.Reset()
	if muxed {
		v.U8(opMuxReq)
		v.U32(muxID)
	}
	v.U8(statusOK)
	v.U32(uint32(len(sc.out)))
	for i := range sc.out {
		sp := &sc.out[i]
		if peer {
			if !sp.ok {
				v.U8(0)
				continue
			}
			v.U8(1)
			v.U32(uint32(len(sp.b)))
			v.Payload(sp.b)
			continue
		}
		v.I64(int64(sp.id))
		v.U32(uint32(len(sp.b)))
		v.Payload(sp.b)
	}
	cs.wmu.Lock()
	_, err := v.WriteTo(cs.conn)
	cs.wmu.Unlock()
	return err
}

// writeVecStatus answers a body-less control status (statusExpired) on the
// vectored path.
func (s *Server) writeVecStatus(cs *muxConnState, muxID uint32, muxed bool, sc *serveScratch, status byte) error {
	v := &sc.vec
	v.Reset()
	if muxed {
		v.U8(opMuxReq)
		v.U32(muxID)
	}
	v.U8(status)
	cs.wmu.Lock()
	_, err := v.WriteTo(cs.conn)
	cs.wmu.Unlock()
	return err
}

// writeVecError answers a protocol or resolution error in-band on the
// vectored path (same bytes as encodeErrorResponseInto).
func (s *Server) writeVecError(cs *muxConnState, muxID uint32, muxed bool, sc *serveScratch, msg string) error {
	v := &sc.vec
	v.Reset()
	if muxed {
		v.U8(opMuxReq)
		v.U32(muxID)
	}
	v.U8(statusErr)
	v.Str(msg)
	cs.wmu.Lock()
	_, err := v.WriteTo(cs.conn)
	cs.wmu.Unlock()
	return err
}

package rpc

import (
	"testing"
	"time"

	"icache/internal/dataset"
	"icache/internal/icache"
	"icache/internal/obs"
	"icache/internal/sampling"
	"icache/internal/storage"
)

// FuzzServerDispatch throws arbitrary request payloads at the server's
// dispatcher: it must always answer (or error-answer) and never panic —
// a malformed client must not be able to take the cache service down.
func FuzzServerDispatch(f *testing.F) {
	spec := testSpec()
	back, err := storage.NewBackend(spec, storage.OrangeFS())
	if err != nil {
		f.Fatal(err)
	}
	cacheSrv, err := icache.NewServer(back, icache.DefaultConfig(spec.TotalBytes()/5), sampling.DefaultIIS(), 5)
	if err != nil {
		f.Fatal(err)
	}
	source, err := storage.NewDataSource(spec)
	if err != nil {
		f.Fatal(err)
	}
	srv := NewServer(cacheSrv, source)
	srv.Logf = nil

	// Seed with every opcode, well-formed and truncated.
	f.Add([]byte{})
	f.Add([]byte{opPing})
	f.Add([]byte{opGetBatch})
	f.Add([]byte{opGetBatch, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 7})
	f.Add([]byte{opUpdateImportance, 0, 0, 0, 1})
	f.Add([]byte{opBeginEpoch, 0, 0, 0, 0})
	f.Add([]byte{opStats})
	f.Add([]byte{opPeerGet, 0, 0, 0, 0, 0, 0, 0, 9})
	f.Add([]byte{0xFF, 0x01, 0x02})
	f.Add(encodeGetBatchRequest([]dataset.SampleID{0, 1, 2}))
	// Batched peer reads: well-formed, truncated id list, and an absurd
	// count that must trip the "unreasonable batch size" guard instead of
	// allocating gigabytes.
	f.Add(encodePeerGetBatchRequest([]dataset.SampleID{0, 1, 2}))
	f.Add([]byte{opPeerGetBatch, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 7})
	f.Add([]byte{opPeerGetBatch, 0xFF, 0xFF, 0xFF, 0xFF})
	// Mux envelope at the dispatch layer (the serve loop intercepts it
	// before dispatch, so here it must read as an unknown opcode) and a
	// capability-bearing ping.
	f.Add([]byte{opMuxReq, 0, 0, 0, 1, opPing})
	f.Add([]byte{opMuxReq, 0, 0, 0})
	f.Add([]byte{opPing, 0, 0, 0, 1})
	// Directory-replica frames (dkv opcodes 12/13: ring-view exchange and
	// shard hand-off) aimed at the cache port by a misconfigured replica:
	// unknown opcodes here, must error-answer rather than hang or panic.
	f.Add([]byte{12,
		0, 0, 0, 0, 0, 0, 0, 1, // sender
		0, 0, 0, 0, 0, 0, 0, 2, // epoch
		0, 0, 0, 2, // n
		0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Add([]byte{13, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 3, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 16})
	f.Add([]byte{12})
	f.Add([]byte{13, 0xFF, 0xFF, 0xFF, 0xFF})
	// Deadline envelopes (op 10): a generous budget around a ping, a spent
	// budget (must answer statusExpired, not fetch), a nested envelope (must
	// error), a truncated header, and both compositions with the trace
	// envelope — trace-outer/deadline-inner and deadline-outer/trace-inner.
	f.Add(encodeDeadlineRequest(time.Minute, []byte{opPing}))
	f.Add([]byte{opDeadline, 0, 0, 0, 0, 0, 0, 0, 0, opPing})
	f.Add(encodeDeadlineRequest(time.Minute, encodeDeadlineRequest(time.Minute, []byte{opPing})))
	f.Add([]byte{opDeadline, 0, 0, 0, 1})
	f.Add(WrapTraced(encodeDeadlineRequest(time.Minute, encodeGetBatchRequest([]dataset.SampleID{0, 1})), obs.TraceCtx{ID: 9, Hop: 1}))
	f.Add(encodeDeadlineRequest(time.Minute, WrapTraced(encodeGetBatchRequest([]dataset.SampleID{0, 1}), obs.TraceCtx{ID: 9, Hop: 1})))

	f.Fuzz(func(t *testing.T, req []byte) {
		resp := srv.dispatch(req)
		if len(resp) == 0 {
			t.Fatal("empty response")
		}
		switch resp[0] {
		case statusOK, statusErr, statusExpired:
		case statusRetryAfter:
			t.Fatalf("retry-after with no admission gate installed")
		default:
			t.Fatalf("response status %d", resp[0])
		}
	})
}

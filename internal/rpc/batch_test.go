package rpc

// Tests for the batched remote data plane (PR 5): the scatter-gather miss
// path, multiplexed transport interop with legacy binaries in both
// directions, clean-close logging hygiene, chaos conservation under
// mid-batch peer connection drops, batched directory lookups in the
// scrubber, and the O(owning nodes) peer-RPC bound.

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"icache/internal/dataset"
	"icache/internal/dkv"
	"icache/internal/faults"
	"icache/internal/icache"
	"icache/internal/leakcheck"
	"icache/internal/sampling"
	"icache/internal/storage"
)

// newUnstartedServer builds a server without serving it, so tests can
// configure pre-Serve state (legacy-protocol pinning, distribution wiring,
// log capture) race-free — those fields are read without synchronization by
// the serving path and must not change once connections exist. src may be
// nil for a plain storage.DataSource; prefetchWorkers < 0 keeps the config
// default.
func newUnstartedServer(t *testing.T, src ByteSource, prefetchWorkers int) *Server {
	t.Helper()
	spec := testSpec()
	back, err := storage.NewBackend(spec, storage.OrangeFS())
	if err != nil {
		t.Fatal(err)
	}
	cfg := icache.DefaultConfig(spec.TotalBytes() / 5)
	if prefetchWorkers >= 0 {
		cfg.PrefetchWorkers = prefetchWorkers
	}
	cacheSrv, err := icache.NewServer(back, cfg, sampling.DefaultIIS(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if src == nil {
		source, err := storage.NewDataSource(spec)
		if err != nil {
			t.Fatal(err)
		}
		src = source
	}
	srv := NewServer(cacheSrv, src)
	srv.Logf = nil
	return srv
}

// serveOn starts srv on a loopback listener and returns its address.
func serveOn(t *testing.T, srv *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

// waitNoConns blocks until the server has no live connections (the read
// loop observed the close and exited).
func waitNoConns(t *testing.T, srv *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.connMu.Lock()
		n := len(srv.connSet)
		srv.connMu.Unlock()
		if n == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d connections still live", n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCleanCloseLogsNothing pins the EOF contract of the connection loop: a
// client that completes its requests and closes cleanly must not produce a
// single server log line — EOF and net.ErrClosed are normal teardown, not
// connection errors. Both transports are checked, since the mux path closes
// the connection from the demux reader's side.
func TestCleanCloseLogsNothing(t *testing.T) {
	defer leakcheck.Check(t)
	for _, tc := range []struct {
		name string
		cfg  DialConfig
	}{
		{"mux", DialConfig{Timeout: time.Second}},
		{"legacy", DialConfig{Timeout: time.Second, DisableMux: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv := newUnstartedServer(t, nil, -1)
			var mu sync.Mutex
			var lines []string
			srv.Logf = func(format string, args ...interface{}) {
				mu.Lock()
				lines = append(lines, fmt.Sprintf(format, args...))
				mu.Unlock()
			}
			addr := serveOn(t, srv)

			c, err := DialConfigured(addr, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Ping(); err != nil {
				t.Fatal(err)
			}
			if _, err := c.GetBatch([]dataset.SampleID{1, 2, 3}); err != nil {
				t.Fatal(err)
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			waitNoConns(t, srv)
			mu.Lock()
			defer mu.Unlock()
			if len(lines) != 0 {
				t.Fatalf("clean close logged %d lines: %q", len(lines), lines)
			}
		})
	}
}

// TestInteropModernClientLegacyServer dials a server pinned to the pre-mux
// wire protocol: the capability handshake must negotiate the client down to
// the serial transport (not error), and batched requests — including
// concurrent ones, which serialize on the legacy connection — must still
// deliver byte-correct payloads.
func TestInteropModernClientLegacyServer(t *testing.T) {
	defer leakcheck.Check(t)
	srv := newUnstartedServer(t, nil, -1)
	srv.SetLegacyProtocol(true)
	addr := serveOn(t, srv)
	spec := testSpec()

	c := dial(t, addr)
	if c.Muxed() {
		t.Fatal("client negotiated mux against a legacy server")
	}
	ids := warmOverWire(t, c, 12)

	const workers = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			samples, err := c.GetBatch(ids)
			if err != nil {
				errs <- err
				return
			}
			for i, s := range samples {
				if s.ID != ids[i] {
					errs <- fmt.Errorf("H-sample %d substituted with %d", ids[i], s.ID)
					return
				}
				if err := spec.VerifyPayload(s.ID, s.Payload); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestInteropLegacyClientModernServer runs a client pinned to the legacy
// transport (DisableMux stands in for an old binary) against a current
// server: plain frames must serve exactly as before the mux envelope
// existed.
func TestInteropLegacyClientModernServer(t *testing.T) {
	defer leakcheck.Check(t)
	_, addr, _ := startServer(t)
	spec := testSpec()

	c, err := DialConfigured(addr, DialConfig{Timeout: time.Second, DisableMux: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if c.Muxed() {
		t.Fatal("DisableMux client reports muxed")
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	ids := warmOverWire(t, c, 12)
	samples, err := c.GetBatch(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range samples {
		if s.ID != ids[i] {
			t.Fatalf("H-sample %d substituted with %d", ids[i], s.ID)
		}
		if err := spec.VerifyPayload(s.ID, s.Payload); err != nil {
			t.Fatal(err)
		}
	}
}

// TestInteropLegacyPeerDegradesToSerial pins the OWNING node of a two-node
// cluster to the legacy protocol: the other node's peer client negotiates
// down, opPeerGetBatch degrades to serial per-sample PeerGets, and remote
// samples are still served from the peer's DRAM — a mixed-version cluster
// loses the batching win but keeps the cache win.
func TestInteropLegacyPeerDegradesToSerial(t *testing.T) {
	f := startDistFixtureHook(t, func(n int, srv *Server) {
		if n == 0 {
			srv.SetLegacyProtocol(true)
		}
	})
	spec := testSpec()

	cA := dial(t, f.addrs[0])
	cB := dial(t, f.addrs[1])
	if cA.Muxed() {
		t.Fatal("client negotiated mux against the legacy node")
	}
	var items []sampling.Item
	var ids []dataset.SampleID
	for id := dataset.SampleID(0); id < 24; id++ {
		items = append(items, sampling.Item{ID: id, IV: 5})
		ids = append(ids, id)
	}
	if err := cA.UpdateImportance(items); err != nil {
		t.Fatal(err)
	}
	if err := cB.UpdateImportance(items); err != nil {
		t.Fatal(err)
	}
	if _, err := cA.GetBatch(ids); err != nil {
		t.Fatal(err)
	}

	before := f.sources[1].Reads()
	samples, err := cB.GetBatch(ids)
	if err != nil {
		t.Fatal(err)
	}
	if delta := f.sources[1].Reads() - before; delta != 0 {
		t.Fatalf("node B hit its backend %d times; want peer-served through the serial fallback", delta)
	}
	for i, s := range samples {
		if s.ID != ids[i] {
			t.Fatalf("sample %d substituted", ids[i])
		}
		if err := spec.VerifyPayload(s.ID, s.Payload); err != nil {
			t.Fatalf("peer payload corrupt: %v", err)
		}
	}
	if _, hits := f.nodes[1].PeerStats(); hits == 0 {
		t.Fatal("node B recorded no peer hits through the legacy fallback")
	}
}

// TestBatchedMissCoalescing is the K-concurrent-misses test for the
// scatter-gather path: with distribution enabled (which routes getBatch
// through collectBatched), many clients storming the same uncached samples
// must coalesce onto one backend fetch per sample via the singleflight
// Begin/Finish orchestration, and every client must still receive correct
// bytes.
func TestBatchedMissCoalescing(t *testing.T) {
	defer leakcheck.Check(t)
	spec := testSpec()
	inner, err := storage.NewDataSource(spec)
	if err != nil {
		t.Fatal(err)
	}
	src := &slowFetchSource{inner: inner, delay: 100 * time.Millisecond}
	srv := newUnstartedServer(t, src, -1)
	srv.EnableDistributed(0, dkv.Local{Dir: dkv.NewDirectory()}, nil)
	addr := serveOn(t, srv)
	if srv.dist.peerCfg.Batch <= 0 {
		t.Fatal("fixture did not select the batched data plane")
	}

	ids := []dataset.SampleID{3, 5, 8, 13}
	var items []sampling.Item
	for _, id := range ids {
		items = append(items, sampling.Item{ID: id, IV: 10})
	}
	setup := dial(t, addr)
	if err := setup.UpdateImportance(items); err != nil {
		t.Fatal(err)
	}

	const clients = 6
	start := make(chan struct{})
	results := make([][]Sample, clients)
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		cl := dial(t, addr)
		wg.Add(1)
		go func(c int, cl *Client) {
			defer wg.Done()
			<-start
			samples, err := cl.GetBatch(ids)
			if err != nil {
				errs <- err
				return
			}
			results[c] = samples
		}(c, cl)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for c, samples := range results {
		if len(samples) != len(ids) {
			t.Fatalf("client %d got %d samples for %d requests", c, len(samples), len(ids))
		}
		for i, s := range samples {
			if s.ID != ids[i] {
				t.Fatalf("client %d: H-sample %d substituted with %d", c, ids[i], s.ID)
			}
			if !bytes.Equal(s.Payload, spec.Payload(s.ID)) {
				t.Fatalf("client %d: payload of %d corrupt under batched coalescing", c, s.ID)
			}
		}
	}
	if got := atomic.LoadInt64(&src.fetches); got >= int64(clients*len(ids)) {
		t.Fatalf("%d backend fetches for %d coalesced-candidate requests: no coalescing on the batched path", got, clients*len(ids))
	}
	if srv.CoalescedMisses() == 0 {
		t.Fatal("coalesced-miss counter never moved on the batched path")
	}
}

// TestBatchedDuplicateIDsInOneBatch guards the dedupe in collectBatched: a
// mini-batch repeating the same uncached id must not deadlock the request
// goroutine against its own singleflight key, and every position must be
// filled.
func TestBatchedDuplicateIDsInOneBatch(t *testing.T) {
	srv := newUnstartedServer(t, nil, -1)
	srv.EnableDistributed(0, dkv.Local{Dir: dkv.NewDirectory()}, nil)
	addr := serveOn(t, srv)
	spec := testSpec()

	c := dial(t, addr)
	if err := c.UpdateImportance([]sampling.Item{{ID: 2, IV: 9}, {ID: 9, IV: 9}}); err != nil {
		t.Fatal(err)
	}
	ids := []dataset.SampleID{2, 2, 9, 9, 2}
	done := make(chan struct{})
	var samples []Sample
	var err error
	go func() {
		samples, err = c.GetBatch(ids)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("GetBatch with duplicate ids hung (self-deadlock in the miss orchestration)")
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != len(ids) {
		t.Fatalf("got %d samples for %d requests", len(samples), len(ids))
	}
	for i, s := range samples {
		if s.ID != ids[i] {
			t.Fatalf("position %d: H-sample %d substituted with %d", i, ids[i], s.ID)
		}
		if err := spec.VerifyPayload(s.ID, s.Payload); err != nil {
			t.Fatal(err)
		}
	}
}

// TestChaosMidBatchPeerDropConservation injects connection drops on the
// owning node's listener, so the victim node's batched peer RPCs die
// mid-batch. The victim must degrade the failed chunks to backend reads —
// never error a client — and its outcome counters must conserve EXACTLY:
// the stats delta equals the number of samples its clients requested, with
// no sample double-counted or lost by the scatter-gather fan-out.
func TestChaosMidBatchPeerDropConservation(t *testing.T) {
	inj := faults.New(17).Add(faults.DropEvery(faults.OpConnRead, 5))
	f := startTracedDistFixture(t, inj)
	spec := testSpec()

	cA := dial(t, f.addrs[0])
	cB := dial(t, f.addrs[1])
	ids := hotIDs(t, cA, 16)
	hotIDs(t, cB, 16) // same H-list on node 1, so serving is exact
	if _, err := cA.GetBatch(ids); err != nil {
		t.Fatal(err)
	}

	base := cacheStats(f.nodes[1]).Requests()
	const rounds = 8
	for round := 0; round < rounds; round++ {
		samples, err := cB.GetBatch(ids)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(samples) != len(ids) {
			t.Fatalf("round %d: served %d of %d", round, len(samples), len(ids))
		}
		for i, s := range samples {
			if s.ID != ids[i] {
				t.Fatalf("round %d: H-sample %d substituted", round, ids[i])
			}
			if err := spec.VerifyPayload(s.ID, s.Payload); err != nil {
				t.Fatalf("round %d: corrupt payload: %v", round, err)
			}
		}
	}
	if inj.TotalFired() == 0 {
		t.Fatal("fault rules never fired")
	}
	if rpcs, _ := f.nodes[1].PeerBatchStats(); rpcs == 0 {
		t.Fatal("victim node never used the batched peer path")
	}

	// Exact conservation: cB is the only client of node 1 and its transport
	// is NOT faulted (only node 0's listener is wrapped), so no client retry
	// can replay a request — the delta must equal exactly what we issued.
	delta := cacheStats(f.nodes[1]).Requests() - base
	if want := int64(rounds * len(ids)); delta != want {
		t.Fatalf("conservation violated under mid-batch drops: outcome classes advanced by %d for %d requested samples", delta, want)
	}
}

// countingDir wraps the in-process directory adapter and counts ownership
// probes, so tests can assert HOW the server talks to the directory, not
// just that it gets answers.
type countingDir struct {
	dkv.Local
	lookups       int64
	lookupBatches int64
	batchedIDs    int64
}

func (c *countingDir) Lookup(id dataset.SampleID) (dkv.NodeID, bool, error) {
	atomic.AddInt64(&c.lookups, 1)
	return c.Local.Lookup(id)
}

func (c *countingDir) LookupBatch(ids []dataset.SampleID) ([]dkv.Owner, error) {
	atomic.AddInt64(&c.lookupBatches, 1)
	atomic.AddInt64(&c.batchedIDs, int64(len(ids)))
	return c.Local.LookupBatch(ids)
}

// TestScrubSweepUsesOneBatchedLookup pins the scrubber's directory cost
// model: one anti-entropy sweep probes its whole resident window with a
// single LookupBatch — not ScrubBatch per-id Lookups — so the directory
// RPC count per sweep drops by ~ScrubBatch×. Claims and releases stay
// per-id (they are the rare repairs), but the common probe is batched.
func TestScrubSweepUsesOneBatchedLookup(t *testing.T) {
	srv := newUnstartedServer(t, nil, 0) // no prefetch pool: its misses would add probes
	cd := &countingDir{Local: dkv.Local{Dir: dkv.NewDirectory()}}
	srv.EnableDistributed(4, cd, nil)
	addr := serveOn(t, srv)

	c := dial(t, addr)
	warmOverWire(t, c, 40) // 40 residents, claimed through cd

	const window = 8
	srv.dist.memCfg = MembershipConfig{ScrubBatch: window}.withDefaults()
	baseLk := atomic.LoadInt64(&cd.lookups)
	baseLB := atomic.LoadInt64(&cd.lookupBatches)
	baseIDs := atomic.LoadInt64(&cd.batchedIDs)
	srv.scrubOnce()

	if got := atomic.LoadInt64(&cd.lookups) - baseLk; got != 0 {
		t.Fatalf("scrub sweep issued %d per-id Lookups; want 0 (batched probe only)", got)
	}
	if got := atomic.LoadInt64(&cd.lookupBatches) - baseLB; got != 1 {
		t.Fatalf("scrub sweep issued %d LookupBatch calls; want exactly 1", got)
	}
	if got := atomic.LoadInt64(&cd.batchedIDs) - baseIDs; got != window {
		t.Fatalf("scrub sweep probed %d ids in one RPC; want the full window of %d", got, window)
	}
	if sweeps := srv.MembershipStats().ScrubSweeps; sweeps != 1 {
		t.Fatalf("ScrubSweeps = %d after one scrubOnce", sweeps)
	}
}

// TestPeerRPCsScaleWithOwnersNotMisses pins the headline property of the
// scatter-gather miss path: a mini-batch whose misses all live on ONE peer
// costs exactly one opPeerGetBatch RPC (plus one directory multi-lookup) —
// O(owning nodes), not O(misses).
func TestPeerRPCsScaleWithOwnersNotMisses(t *testing.T) {
	f := startDistFixture(t)
	spec := testSpec()

	cA := dial(t, f.addrs[0])
	cB := dial(t, f.addrs[1])
	const n = 64
	var items []sampling.Item
	var ids []dataset.SampleID
	for id := dataset.SampleID(0); id < n; id++ {
		items = append(items, sampling.Item{ID: id, IV: 5})
		ids = append(ids, id)
	}
	if err := cA.UpdateImportance(items); err != nil {
		t.Fatal(err)
	}
	if err := cB.UpdateImportance(items); err != nil {
		t.Fatal(err)
	}
	if _, err := cA.GetBatch(ids); err != nil {
		t.Fatal(err)
	}

	rpcs0, samples0 := f.nodes[1].PeerBatchStats()
	samples, err := cB.GetBatch(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range samples {
		if s.ID != ids[i] {
			t.Fatalf("H-sample %d substituted", ids[i])
		}
		if err := spec.VerifyPayload(s.ID, s.Payload); err != nil {
			t.Fatal(err)
		}
	}
	rpcs, carried := f.nodes[1].PeerBatchStats()
	if got := rpcs - rpcs0; got != 1 {
		t.Fatalf("%d misses owned by one peer cost %d batched RPCs; want exactly 1", n, got)
	}
	if got := carried - samples0; got != n {
		t.Fatalf("the batched RPC carried %d samples; want all %d misses", got, n)
	}
	if _, hits := f.nodes[1].PeerStats(); hits != n {
		t.Fatalf("peer hits = %d; want %d (every miss served remotely)", hits, n)
	}
}

package rpc

// Wall-clock lifecycle tests for the network server: the membership loop
// heartbeats and scrubs, a lapsed lease triggers re-registration and
// ownership reconciliation, a checkpoint rejoin replays claims against a
// directory where a peer took samples over, /healthz reports lease age,
// and checkpoint saves are crash-atomic.

import (
	"encoding/json"
	"errors"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"icache/internal/dataset"
	"icache/internal/dkv"
	"icache/internal/icache"
	"icache/internal/sampling"
	"icache/internal/simclock"
	"icache/internal/storage"
)

// warmOverWire pushes an H-list for ids [0, n) and fetches them once, so the
// server's cache holds them as residents.
func warmOverWire(t *testing.T, c *Client, n int) []dataset.SampleID {
	t.Helper()
	var items []sampling.Item
	var ids []dataset.SampleID
	for id := dataset.SampleID(0); id < dataset.SampleID(n); id++ {
		items = append(items, sampling.Item{ID: id, IV: 3})
		ids = append(ids, id)
	}
	if err := c.UpdateImportance(items); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetBatch(ids); err != nil {
		t.Fatal(err)
	}
	return ids
}

func TestMembershipLoopHeartbeatsAndScrubs(t *testing.T) {
	dir := dkv.NewDirectory()
	srv, addr, _ := startServer(t)
	srv.EnableDistributed(3, dkv.Local{Dir: dir}, nil)
	if err := srv.StartMembership(MembershipConfig{
		LeaseTTL:          time.Second,
		HeartbeatInterval: 5 * time.Millisecond,
		ScrubInterval:     10 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	if err := srv.StartMembership(MembershipConfig{}); err == nil {
		t.Error("second StartMembership did not error")
	}

	c := dial(t, addr)
	warmOverWire(t, c, 20)

	deadline := time.Now().Add(10 * time.Second)
	for {
		mem := srv.MembershipStats()
		if mem.Heartbeats > 0 && mem.ScrubSweeps > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lifecycle loop made no progress: %+v", mem)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if srv.LastHeartbeat().IsZero() {
		t.Error("LastHeartbeat still zero after successful renewals")
	}
	found := false
	for _, n := range dir.ListNodes() {
		if n.ID == 3 {
			found = true
			if n.State != dkv.NodeLive {
				t.Errorf("heartbeating node state = %v, want Live", n.State)
			}
		}
	}
	if !found {
		t.Error("node 3 missing from the directory's member list")
	}

	// Stopping is idempotent, and Close after an explicit stop is safe.
	srv.StopMembership()
	srv.StopMembership()
}

// TestHeartbeatLapseReregistersAndReconciles drives the lifecycle steps by
// hand against a manually-clocked directory: renewal inside the lease
// succeeds; once the node is declared dead and a peer reclaims one of its
// samples, the next heartbeat is rejected, the node re-registers, and the
// reconciliation drops the local copy of the sample it lost.
func TestHeartbeatLapseReregistersAndReconciles(t *testing.T) {
	dir := dkv.NewDirectory()
	var now simclock.Time
	dir.SetClock(func() simclock.Time { return now })
	dir.SetMembershipParams(100*time.Millisecond, 100*time.Millisecond)

	srv, addr, _ := startServer(t)
	srv.EnableDistributed(0, dkv.Local{Dir: dir}, nil)

	// Warm over the wire; the demand path claims ownership on insert.
	c := dial(t, addr)
	ids := warmOverWire(t, c, 30)

	// No loop: drive the lifecycle steps directly at chosen instants.
	srv.dist.memCfg = MembershipConfig{LeaseTTL: 100 * time.Millisecond}.withDefaults()
	srv.registerAndReconcile()
	if got := srv.MembershipStats(); got.Registers != 1 {
		t.Fatalf("Registers = %d after boot registration, want 1", got.Registers)
	}

	// Half a TTL in, the renewal succeeds.
	now = simclock.Time(50 * time.Millisecond)
	srv.heartbeatOnce()
	if got := srv.MembershipStats(); got.Heartbeats != 1 || got.HeartbeatRejects != 0 {
		t.Fatalf("in-lease renewal: %+v, want 1 heartbeat, 0 rejects", got)
	}

	// Past TTL + suspect window the node is Dead; a peer reclaims sample 0.
	now = simclock.Time(300 * time.Millisecond)
	if !dir.Claim(ids[0], 1) {
		t.Fatal("peer could not reclaim a dead node's sample")
	}

	// The stale node's next renewal is rejected; it re-registers and its
	// denied claim for ids[0] drops the local copy.
	srv.heartbeatOnce()
	mem := srv.MembershipStats()
	if mem.HeartbeatRejects != 1 {
		t.Errorf("HeartbeatRejects = %d, want 1", mem.HeartbeatRejects)
	}
	if mem.Registers != 2 {
		t.Errorf("Registers = %d after lapse, want 2", mem.Registers)
	}
	if mem.ReplayDenied == 0 {
		t.Error("reclaimed sample's replayed claim was not denied")
	}
	if mem.ReplayedClaims == 0 {
		t.Error("no surviving residents were re-claimed")
	}
	srv.policyMu.Lock()
	resident := srv.cache.Resident(ids[0])
	srv.policyMu.Unlock()
	if resident {
		t.Error("local copy of the reclaimed sample survived reconciliation")
	}
	if owner, ok := dir.Lookup(ids[0]); !ok || owner != 1 {
		t.Errorf("sample %d owner = (%d, %v), want (1, true)", ids[0], owner, ok)
	}
	if rev := dir.Membership().Revivals; rev == 0 {
		t.Error("directory recorded no revival for the returning node")
	}
}

// TestRejoinFromCheckpointReplaysClaims is the crash/rejoin story over a
// real checkpoint file: a restarted server restores its warm state, joins
// the directory, and replays an ownership claim per restored resident —
// claims a peer won in the meantime are denied and those copies dropped.
func TestRejoinFromCheckpointReplaysClaims(t *testing.T) {
	spec := testSpec()
	path := filepath.Join(t.TempDir(), "cache.ckpt")

	// First lifetime: warm 50 residents, checkpoint, crash.
	srv1, addr1, _ := startServer(t)
	c1 := dial(t, addr1)
	warmOverWire(t, c1, 50)
	if err := srv1.SaveCheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	srv1.Close()

	// While the node was down, a peer took over samples 0..4.
	dir := dkv.NewDirectory()
	for id := dataset.SampleID(0); id < 5; id++ {
		if !dir.Claim(id, 1) {
			t.Fatalf("pre-claim of %d failed", id)
		}
	}

	// Second lifetime: restore, then join. StartMembership registers and
	// replays claims synchronously before returning.
	back, err := storage.NewBackend(spec, storage.OrangeFS())
	if err != nil {
		t.Fatal(err)
	}
	cacheSrv, err := icache.NewServer(back, icache.DefaultConfig(spec.TotalBytes()/5), sampling.DefaultIIS(), 9)
	if err != nil {
		t.Fatal(err)
	}
	source, err := storage.NewDataSource(spec)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(cacheSrv, source)
	srv2.Logf = nil
	t.Cleanup(func() { srv2.Close() })
	loaded, err := srv2.LoadCheckpointFile(path, false)
	if err != nil || !loaded {
		t.Fatalf("restore: loaded=%v err=%v", loaded, err)
	}
	srv2.EnableDistributed(0, dkv.Local{Dir: dir}, nil)
	long := MembershipConfig{LeaseTTL: time.Hour, HeartbeatInterval: time.Hour, ScrubInterval: time.Hour}
	if err := srv2.StartMembership(long); err != nil {
		t.Fatal(err)
	}

	mem := srv2.MembershipStats()
	if mem.ReplayDenied != 5 {
		t.Errorf("ReplayDenied = %d, want 5 (the peer-owned samples)", mem.ReplayDenied)
	}
	if mem.ReplayedClaims != 45 {
		t.Errorf("ReplayedClaims = %d, want 45", mem.ReplayedClaims)
	}
	srv2.policyMu.Lock()
	dropped := !srv2.cache.Resident(0)
	kept := srv2.cache.Resident(10)
	srv2.policyMu.Unlock()
	if !dropped {
		t.Error("peer-owned checkpoint sample not dropped on rejoin")
	}
	if !kept {
		t.Error("re-claimed checkpoint sample missing after rejoin")
	}
	if owner, ok := dir.Lookup(10); !ok || owner != 0 {
		t.Errorf("sample 10 owner = (%d, %v), want (0, true)", owner, ok)
	}
}

func TestHealthzEndpoint(t *testing.T) {
	srv, _, _ := startServer(t)

	get := func() healthzResponse {
		t.Helper()
		rr := httptest.NewRecorder()
		srv.HealthHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
		if rr.Code != 200 {
			t.Fatalf("GET /healthz = %d, want 200", rr.Code)
		}
		if ct := rr.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
			t.Fatalf("Content-Type = %q", ct)
		}
		var resp healthzResponse
		if err := json.NewDecoder(rr.Body).Decode(&resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Standalone server: healthy, not distributed, no lease.
	resp := get()
	if resp.Status != "ok" || resp.Distributed || resp.LeaseAgeSeconds != -1 {
		t.Errorf("standalone healthz = %+v", resp)
	}

	// Non-GET is rejected.
	rr := httptest.NewRecorder()
	srv.HealthHandler().ServeHTTP(rr, httptest.NewRequest("POST", "/healthz", nil))
	if rr.Code != 405 {
		t.Errorf("POST /healthz = %d, want 405", rr.Code)
	}

	// Distributed with a running lease: node identity and lease age appear.
	dir := dkv.NewDirectory()
	srv.EnableDistributed(2, dkv.Local{Dir: dir}, nil)
	long := MembershipConfig{LeaseTTL: time.Hour, HeartbeatInterval: time.Hour, ScrubInterval: time.Hour}
	if err := srv.StartMembership(long); err != nil {
		t.Fatal(err)
	}
	resp = get()
	if !resp.Distributed || resp.NodeID != 2 {
		t.Errorf("distributed healthz = %+v", resp)
	}
	if resp.LeaseAgeSeconds < 0 {
		t.Errorf("LeaseAgeSeconds = %g after registration, want >= 0", resp.LeaseAgeSeconds)
	}
	if resp.Membership.Registers == 0 {
		t.Error("healthz membership counters missing the boot registration")
	}
}

// TestCheckpointPartialWriteKeepsPrevious is the crash-atomicity satellite:
// a write that fails midway must leave the previous checkpoint byte-for-byte
// intact and not litter the directory with temp files.
func TestCheckpointPartialWriteKeepsPrevious(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.ckpt")
	const good = "good checkpoint bytes"
	if err := atomicWriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, good)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("disk exploded mid-write")
	err := atomicWriteFile(path, func(w io.Writer) error {
		if _, werr := io.WriteString(w, "partial gar"); werr != nil {
			return werr
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("partial write error = %v, want %v", err, boom)
	}

	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != good {
		t.Fatalf("previous checkpoint corrupted: %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("temp litter after failed write: %v", names)
	}

	// A successful rewrite replaces the content atomically.
	if err := atomicWriteFile(path, func(w io.Writer) error {
		_, werr := io.WriteString(w, "second generation")
		return werr
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "second generation" {
		t.Fatalf("rewrite produced %q", got)
	}
}

package rpc

// Overload-control suite: the admission gate on both serving transports,
// server-side deadline expiry, and the chaos half — a delay-faulted peer
// whose batches must still complete within the caller's deadline via the
// backend fallback, with the per-peer circuit breaker tripping within its
// threshold and recovering through a half-open probe once the fault lifts.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"icache/internal/dataset"
	"icache/internal/dkv"
	"icache/internal/icache"
	"icache/internal/leakcheck"
	"icache/internal/overload"
	"icache/internal/retry"
	"icache/internal/sampling"
	"icache/internal/storage"
)

// noRetryPolicy keeps conservation ledgers exact: one offered request is
// exactly one wire request, never silently reissued.
func noRetryPolicy() retry.Policy {
	return retry.Policy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Multiplier: 2}
}

// startGatedServer is startServer with an admission gate installed before
// the listener starts accepting (SetAdmission's contract).
func startGatedServer(t *testing.T, gate *overload.Gate) (*Server, string) {
	t.Helper()
	spec := testSpec()
	back, err := storage.NewBackend(spec, storage.OrangeFS())
	if err != nil {
		t.Fatal(err)
	}
	cacheSrv, err := icache.NewServer(back, icache.DefaultConfig(spec.TotalBytes()/5), sampling.DefaultIIS(), 5)
	if err != nil {
		t.Fatal(err)
	}
	source, err := storage.NewDataSource(spec)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(cacheSrv, source)
	srv.Logf = nil
	srv.SetAdmission(gate)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

// TestAdmissionShedLegacyAndMux holds the only admission slot and verifies
// that BOTH serving transports — the multiplexed frame path and the legacy
// one-frame-at-a-time connection path — shed data requests with a
// retry-after hint, without the client burning retry attempts on them,
// while health checks keep flowing. Releasing the slot restores service,
// and the ledger stays exact: ids served + requests shed == requests
// offered.
func TestAdmissionShedLegacyAndMux(t *testing.T) {
	gate := overload.NewGate(overload.GateConfig{MaxInflight: 1})
	srv, addr := startGatedServer(t, gate)

	ok, _ := gate.Admit(time.Now())
	if !ok {
		t.Fatal("could not occupy the admission slot")
	}

	for _, tc := range []struct {
		name       string
		disableMux bool
	}{
		{"mux", false},
		{"legacy", true},
	} {
		c, err := DialConfigured(addr, DialConfig{Timeout: time.Second, Policy: noRetryPolicy(), DisableMux: tc.disableMux})
		if err != nil {
			t.Fatalf("%s: dial: %v", tc.name, err)
		}
		if c.Muxed() == tc.disableMux {
			t.Fatalf("%s: wrong transport negotiated (muxed=%v)", tc.name, c.Muxed())
		}
		_, err = c.GetBatch([]dataset.SampleID{1})
		var ra *overload.RetryAfterError
		if !errors.As(err, &ra) {
			t.Fatalf("%s: want RetryAfterError from a shedding server, got %v", tc.name, err)
		}
		if ra.After <= 0 {
			t.Fatalf("%s: shed response carried no backoff hint", tc.name)
		}
		if retries, _ := c.Resilience(); retries != 0 {
			t.Fatalf("%s: a shed rejection was retried %d times", tc.name, retries)
		}
		// An operator must still see the overloaded server: health checks
		// bypass the gate.
		if err := c.Ping(); err != nil {
			t.Fatalf("%s: ping gated during shed: %v", tc.name, err)
		}
		c.Close()
	}

	shed, expired := srv.OverloadCounters()
	if shed != 2 || expired != 0 {
		t.Fatalf("OverloadCounters = (shed=%d, expired=%d), want (2, 0)", shed, expired)
	}
	if gs := gate.Stats(); gs.Shed != 2 {
		t.Fatalf("gate shed %d, want 2", gs.Shed)
	}

	gate.Done()
	c := dial(t, addr)
	samples, err := c.GetBatch([]dataset.SampleID{1, 2, 3})
	if err != nil {
		t.Fatalf("after releasing the slot: %v", err)
	}
	if len(samples) != 3 {
		t.Fatalf("served %d of 3", len(samples))
	}

	// Conservation: 2 shed single-id requests + 3 served ids == 5 offered.
	// Cache counters are written under policyMu; snapshot under it too (the
	// handler goroutine's final writes carry no cross-socket ordering the
	// race detector can see).
	srv.policyMu.Lock()
	st := srv.cache.Stats()
	srv.policyMu.Unlock()
	if got := st.Hits + st.Misses + st.Substitutions + st.Degraded + shed + expired; got != 5 {
		t.Fatalf("ledger: hits(%d)+misses(%d)+subs(%d)+degraded(%d)+shed(%d)+expired(%d) = %d, want 5",
			st.Hits, st.Misses, st.Substitutions, st.Degraded, shed, expired, got)
	}
}

// TestDeadlineExpiredAtServer drops a request whose budget is already spent
// on arrival: the server answers statusExpired without touching the policy
// engine or the backend, and counts the drop.
func TestDeadlineExpiredAtServer(t *testing.T) {
	srv, _, source := startServer(t)

	before := source.Reads()
	resp := srv.dispatch(encodeDeadlineRequest(0, encodeGetBatchRequest([]dataset.SampleID{1, 2})))
	if len(resp) == 0 || resp[0] != statusExpired {
		t.Fatalf("spent budget answered status %v, want statusExpired", resp[:1])
	}
	if got := source.Reads() - before; got != 0 {
		t.Fatalf("expired request still read the backend %d times", got)
	}
	srv.policyMu.Lock()
	st := srv.cache.Stats()
	srv.policyMu.Unlock()
	if st.Requests() != 0 {
		t.Fatalf("expired request reached the policy engine: %d requests accounted", st.Requests())
	}
	if shed, expired := srv.OverloadCounters(); shed != 0 || expired != 1 {
		t.Fatalf("OverloadCounters = (shed=%d, expired=%d), want (0, 1)", shed, expired)
	}
}

// TestDeadlineExceededClientClassification: a context budget far too small
// for even a loopback round trip must surface as ErrDeadlineExceeded —
// whether the local timer fired first or the server answered statusExpired —
// never as a generic transport error.
func TestDeadlineExceededClientClassification(t *testing.T) {
	_, addr, _ := startServer(t)
	c, err := DialConfigured(addr, DialConfig{Timeout: time.Second, Policy: noRetryPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(time.Microsecond))
	defer cancel()
	_, err = c.GetBatchCtx(ctx, []dataset.SampleID{1})
	if err == nil {
		t.Fatal("a 1µs budget cannot complete a TCP round trip")
	}
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("want ErrDeadlineExceeded in the chain, got %v", err)
	}
}

// slowGate is a toggleable per-read stall shared by every connection of one
// wrapped listener — the "delay-faulted peer" of the chaos test. Unlike a
// dropped connection, a delayed one holds TCP open while answering nothing,
// which is exactly the failure a per-RPC deadline plus circuit breaker must
// bound.
type slowGate struct{ delayNanos int64 }

func (g *slowGate) set(d time.Duration) { atomic.StoreInt64(&g.delayNanos, int64(d)) }

type slowConn struct {
	net.Conn
	g *slowGate
}

func (c slowConn) Read(p []byte) (int, error) {
	if d := atomic.LoadInt64(&c.g.delayNanos); d > 0 {
		time.Sleep(time.Duration(d))
	}
	return c.Conn.Read(p)
}

type slowListener struct {
	net.Listener
	g *slowGate
}

func (l slowListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return slowConn{Conn: c, g: l.g}, nil
}

// TestChaosOverloadDelayedPeer runs the two-node deployment with node B
// behind a read-stalling listener. Node A's clients must keep completing
// batches within their deadline (peer RPC timeout -> backend fallback), the
// per-peer breaker must trip within its consecutive-failure threshold and
// then fail fast, and once the stall lifts a half-open probe must re-close
// the breaker and restore peer serving. The per-sample ledger stays exact
// throughout (retry-free clients, so offered == accounted).
func TestChaosOverloadDelayedPeer(t *testing.T) {
	for _, seed := range []int64{1, 42, 1337} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { chaosDelayedPeer(t, seed) })
	}
}

func chaosDelayedPeer(t *testing.T, seed int64) {
	leakcheck.Check(t)
	spec := testSpec()
	const (
		peerTimeout = 60 * time.Millisecond
		brkCooldown = 80 * time.Millisecond
		brkThresh   = 2
		maxRounds   = 12
		stall       = 150 * time.Millisecond
	)
	batch := 6 + int(seed%5) // seed-varied batch shape

	dir := dkv.NewDirectory()
	dirSrv := dkv.NewDirServer(dir)
	dirLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go dirSrv.Serve(dirLn)
	t.Cleanup(func() { dirSrv.Close() })

	stallGate := &slowGate{}
	var nodes [2]*Server
	var addrs [2]string
	var lns [2]net.Listener
	var sources [2]*storage.DataSource
	for n := 0; n < 2; n++ {
		back, err := storage.NewBackend(spec, storage.OrangeFS())
		if err != nil {
			t.Fatal(err)
		}
		cacheSrv, err := icache.NewServer(back, icache.DefaultConfig(spec.TotalBytes()/5), sampling.DefaultIIS(), seed+int64(n))
		if err != nil {
			t.Fatal(err)
		}
		sources[n], err = storage.NewDataSource(spec)
		if err != nil {
			t.Fatal(err)
		}
		nodes[n] = NewServer(cacheSrv, sources[n])
		nodes[n].Logf = nil
		lns[n], err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[n] = lns[n].Addr().String()
	}
	for n := 0; n < 2; n++ {
		dirClient, err := dkv.DialDir(dirLn.Addr().String(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		peer := map[dkv.NodeID]string{dkv.NodeID(1 - n): addrs[1-n]}
		nodes[n].EnableDistributed(dkv.NodeID(n), dirClient, peer)
		ln := lns[n]
		if n == 1 {
			ln = slowListener{Listener: ln, g: stallGate} // node B is the delay-faulted peer
		}
		go nodes[n].Serve(ln)
	}
	nodes[0].SetPeerConfig(PeerConfig{
		Batch:            256,
		RPCTimeout:       peerTimeout,
		BreakerThreshold: brkThresh,
		BreakerCooldown:  brkCooldown,
	})
	t.Cleanup(func() {
		nodes[0].Close()
		nodes[1].Close()
	})

	// Pin a pool of ids as H-samples on both nodes (delivery must be exact,
	// never substituted), then warm node B so it owns the pool in the
	// directory. 2*maxRounds round-slices so no id is ever re-requested —
	// every round forces fresh remote misses on A.
	pool := make([]dataset.SampleID, 2*maxRounds*batch)
	items := make([]sampling.Item, len(pool))
	for i := range pool {
		pool[i] = dataset.SampleID(i)
		items[i] = sampling.Item{ID: pool[i], IV: 5}
	}
	cB := dial(t, addrs[1])
	if err := cB.UpdateImportance(items); err != nil {
		t.Fatal(err)
	}
	if _, err := cB.GetBatch(pool); err != nil {
		t.Fatal(err)
	}
	waitOwned := func(id dataset.SampleID) {
		deadline := time.Now().Add(2 * time.Second)
		for {
			if owner, ok := dir.Lookup(id); ok && owner == 1 {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("id %d never claimed by node B", id)
			}
			time.Sleep(time.Millisecond)
		}
	}
	for _, id := range pool {
		waitOwned(id)
	}

	cA, err := DialConfigured(addrs[0], DialConfig{Timeout: time.Second, Policy: noRetryPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cA.Close() })
	if err := cA.UpdateImportance(items); err != nil {
		t.Fatal(err)
	}

	next := 0
	offered := int64(0)
	round := func(wantMaxElapsed time.Duration) {
		t.Helper()
		ids := pool[next*batch : (next+1)*batch]
		next++
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		start := time.Now()
		samples, err := cA.GetBatchCtx(ctx, ids)
		elapsed := time.Since(start)
		if err != nil {
			t.Fatalf("round %d failed under peer stall (fallback should absorb it): %v", next, err)
		}
		if elapsed > wantMaxElapsed {
			t.Fatalf("round %d took %s, deadline model allows %s", next, elapsed, wantMaxElapsed)
		}
		offered += int64(len(ids))
		for i, s := range samples {
			if s.ID != ids[i] {
				t.Fatalf("round %d: H-sample %d substituted with %d", next, ids[i], s.ID)
			}
			if err := spec.VerifyPayload(s.ID, s.Payload); err != nil {
				t.Fatalf("round %d: corrupt payload: %v", next, err)
			}
		}
	}

	// Phase 1 — stall on. Every batch must still complete, bounded by the
	// peer RPC timeout plus the backend fallback, and the breaker must trip
	// within its consecutive-failure threshold.
	stallGate.set(stall)
	tripRounds := 0
	for r := 0; r < maxRounds; r++ {
		round(2 * time.Second)
		tripRounds++
		if bs := nodes[0].PeerBreakerStats()[1]; bs.Trips >= 1 {
			break
		}
	}
	bs := nodes[0].PeerBreakerStats()[1]
	if bs.Trips < 1 {
		t.Fatalf("breaker never tripped after %d stalled rounds: %+v", tripRounds, bs)
	}
	// One RPC per round against a threshold of brkThresh consecutive
	// failures: the trip must land within threshold(+1 for the slow dial
	// handshake round) rounds, not "eventually".
	if tripRounds > brkThresh+1 {
		t.Fatalf("breaker tripped only after %d rounds (threshold %d)", tripRounds, brkThresh)
	}
	backendBefore := sources[0].Reads()
	round(2 * time.Second) // open breaker: fail fast straight to backend
	if ff := nodes[0].PeerBreakerStats()[1].FastFails; ff < 1 {
		t.Fatalf("open breaker recorded no fast-fails")
	}
	if sources[0].Reads() == backendBefore {
		t.Fatal("fast-failed batch did not fall back to the backend")
	}
	if pf, _ := nodes[0].ResilienceStats(); pf == 0 {
		t.Fatal("stalled peer RPCs were not counted as peer failures")
	}

	// Phase 2 — stall off. After the cooldown, a single half-open probe must
	// re-close the breaker and peer serving must resume.
	stallGate.set(0)
	time.Sleep(brkCooldown + 40*time.Millisecond)
	recovered := false
	for r := 0; r < maxRounds; r++ {
		round(2 * time.Second)
		if bs := nodes[0].PeerBreakerStats()[1]; bs.Recoveries >= 1 {
			recovered = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	bs = nodes[0].PeerBreakerStats()[1]
	if !recovered {
		t.Fatalf("breaker never recovered after the stall lifted: %+v", bs)
	}
	if bs.State != overload.BreakerClosed {
		t.Fatalf("breaker state %v after recovery, want closed", bs.State)
	}
	if _, hits := nodes[0].PeerStats(); hits == 0 {
		t.Fatal("no peer hits after recovery — the half-open probe result was wasted")
	}

	// Conservation, exact: retry-free clients mean every offered id is
	// accounted exactly once across hits/misses/substitutions/degraded plus
	// the overload rejections (none expected here — A absorbed the fault).
	nodes[0].policyMu.Lock()
	st := nodes[0].cache.Stats()
	nodes[0].policyMu.Unlock()
	shed, expired := nodes[0].OverloadCounters()
	if got := st.Hits + st.Misses + st.Substitutions + st.Degraded + shed + expired; got != offered {
		t.Fatalf("ledger: hits(%d)+misses(%d)+subs(%d)+degraded(%d)+shed(%d)+expired(%d) = %d, want offered %d",
			st.Hits, st.Misses, st.Substitutions, st.Degraded, shed, expired, got, offered)
	}
}

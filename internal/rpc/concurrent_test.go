package rpc

import (
	"bytes"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"icache/internal/dataset"
	"icache/internal/icache"
	"icache/internal/leakcheck"
	"icache/internal/metrics"
	"icache/internal/sampling"
	"icache/internal/storage"
)

// cacheStats reads the policy engine's counters through the policy lock
// (package-internal test helper).
func cacheStats(srv *Server) metrics.CacheStats {
	srv.policyMu.Lock()
	defer srv.policyMu.Unlock()
	return srv.cache.Stats()
}

// TestConcurrentClientsConservation hammers one server with many
// goroutine-local clients (run under -race by the test-race target) and
// asserts the two properties the sharded serving path must preserve:
//
//  1. Stats conservation: every requested sample is counted in exactly one
//     outcome class — hits + misses + substitutions + degraded == requests.
//  2. Byte-for-byte payload correctness: every delivered payload verifies
//     against the dataset's deterministic generator for the *served* ID,
//     even when concurrent misses were coalesced into one backend read.
func TestConcurrentClientsConservation(t *testing.T) {
	defer leakcheck.Check(t)
	srv, addr, _ := startServer(t)
	spec := testSpec()

	// H-list over the low IDs so the run mixes H-path and L-path traffic
	// (L misses exercise substitution, which serves different IDs than
	// requested).
	setup := dial(t, addr)
	var items []sampling.Item
	for id := dataset.SampleID(0); id < 200; id++ {
		items = append(items, sampling.Item{ID: id, IV: 1 + float64(id)})
	}
	if err := setup.UpdateImportance(items); err != nil {
		t.Fatal(err)
	}
	base := cacheStats(srv)
	baseReq := base.Requests()

	const (
		clients = 8
		batches = 25
		batch   = 16
	)
	var requested int64
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := Dial(addr, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(int64(c)*7919 + 17))
			ids := make([]dataset.SampleID, batch)
			for b := 0; b < batches; b++ {
				for i := range ids {
					ids[i] = dataset.SampleID(rng.Intn(spec.NumSamples))
				}
				samples, err := cl.GetBatch(ids)
				if err != nil {
					errs <- err
					return
				}
				atomic.AddInt64(&requested, int64(len(ids)))
				for _, s := range samples {
					if err := spec.VerifyPayload(s.ID, s.Payload); err != nil {
						errs <- err
						return
					}
				}
				if b == batches/2 && c == 0 {
					// An epoch boundary mid-storm must not break conservation.
					if err := cl.BeginEpoch(1); err != nil {
						errs <- err
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := cacheStats(srv)
	got := st.Requests() - baseReq
	want := atomic.LoadInt64(&requested)
	if got != want {
		t.Fatalf("conservation violated: hits+misses+subs+degraded advanced by %d for %d requests (delta %+v)",
			got, want, st)
	}
	if st.Substitutions == 0 {
		t.Fatalf("workload never exercised substitution: %+v", st)
	}
}

// slowFetchSource delays every fetch long enough that concurrent misses on
// the same sample are guaranteed to overlap the executing fetch.
type slowFetchSource struct {
	inner   ByteSource
	delay   time.Duration
	fetches int64
}

func (s *slowFetchSource) Spec() dataset.Spec { return s.inner.Spec() }
func (s *slowFetchSource) Fetch(id dataset.SampleID) ([]byte, error) {
	atomic.AddInt64(&s.fetches, 1)
	time.Sleep(s.delay)
	return s.inner.Fetch(id)
}

// TestConcurrentMissCoalescing releases many clients onto the *same* batch
// of uncached H-samples at once: with singleflight coalescing the backend
// sees one fetch per sample (not one per client), every client still gets
// correct bytes, and the coalesced-miss counter moves.
func TestConcurrentMissCoalescing(t *testing.T) {
	defer leakcheck.Check(t)
	spec := testSpec()
	back, err := storage.NewBackend(spec, storage.OrangeFS())
	if err != nil {
		t.Fatal(err)
	}
	cacheSrv, err := icache.NewServer(back, icache.DefaultConfig(spec.TotalBytes()/5), sampling.DefaultIIS(), 5)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := storage.NewDataSource(spec)
	if err != nil {
		t.Fatal(err)
	}
	src := &slowFetchSource{inner: inner, delay: 100 * time.Millisecond}
	srv := NewServer(cacheSrv, src)
	srv.Logf = nil
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	addr := ln.Addr().String()

	ids := []dataset.SampleID{3, 5, 8, 13}
	var items []sampling.Item
	for _, id := range ids {
		items = append(items, sampling.Item{ID: id, IV: 10})
	}
	setup := dial(t, addr)
	if err := setup.UpdateImportance(items); err != nil {
		t.Fatal(err)
	}

	const clients = 6
	start := make(chan struct{})
	results := make([][]Sample, clients)
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		cl := dial(t, addr)
		wg.Add(1)
		go func(c int, cl *Client) {
			defer wg.Done()
			<-start
			samples, err := cl.GetBatch(ids)
			if err != nil {
				errs <- err
				return
			}
			results[c] = samples
		}(c, cl)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Byte-for-byte correctness for every client, including the ones that
	// received a coalesced (shared) fetch result.
	for c, samples := range results {
		if len(samples) != len(ids) {
			t.Fatalf("client %d got %d samples for %d requests", c, len(samples), len(ids))
		}
		for i, s := range samples {
			if s.ID != ids[i] {
				t.Fatalf("client %d: H-sample %d substituted with %d", c, ids[i], s.ID)
			}
			want := spec.Payload(s.ID)
			if !bytes.Equal(s.Payload, want) {
				t.Fatalf("client %d: payload of %d corrupt under coalescing", c, s.ID)
			}
		}
	}

	// K concurrent misses per sample must not issue K backend reads. With
	// a 100ms fetch and a start barrier, every client lands inside the
	// executing fetch's window; allow generous slack anyway (prefetch
	// workers may add fetches for loader deliveries).
	if got := atomic.LoadInt64(&src.fetches); got >= int64(clients*len(ids)) {
		t.Fatalf("%d backend fetches for %d coalesced-candidate requests: no coalescing", got, clients*len(ids))
	}
	if srv.CoalescedMisses() == 0 {
		t.Fatal("coalesced-miss counter never moved")
	}
}

// TestPrefetchPoolFillsPayloadStore drives L-path traffic until the
// background loader delivers packages, then checks that the prefetch pool
// observed the deliveries and pulled real bytes into the payload store
// without any client having requested those samples.
func TestPrefetchPoolFillsPayloadStore(t *testing.T) {
	defer leakcheck.Check(t)
	srv, addr, _ := startServer(t)
	if srv.prefetch == nil {
		t.Fatal("default config should enable the prefetch pool")
	}
	cl := dial(t, addr)
	spec := testSpec()

	// Small H-list; everything else is L. L misses seed the loader's
	// repack queue, and wall-clock time moves its virtual timeline.
	var items []sampling.Item
	for id := dataset.SampleID(0); id < 20; id++ {
		items = append(items, sampling.Item{ID: id, IV: 5})
	}
	if err := cl.UpdateImportance(items); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	rng := rand.New(rand.NewSource(99))
	ids := make([]dataset.SampleID, 8)
	for time.Now().Before(deadline) {
		for i := range ids {
			ids[i] = dataset.SampleID(100 + rng.Intn(spec.NumSamples-100))
		}
		if _, err := cl.GetBatch(ids); err != nil {
			t.Fatal(err)
		}
		sv := srv.ServingStats()
		if sv.PrefetchQueued > 0 && sv.PrefetchCompleted > 0 {
			return // pool saw deliveries and completed fetches
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("prefetch pool never completed a fetch: %+v", srv.ServingStats())
}

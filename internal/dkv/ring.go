package dkv

import (
	"sort"

	"icache/internal/dataset"
)

// The directory is sharded by sample ID across N dkv replicas so that no
// single process carries every miss, scrub and heartbeat in the cluster —
// and so that one replica's crash takes down 1/N of the metadata, not all
// of it (ROADMAP item 1; Hoard runs exactly this distributed-metadata
// layout for DNN training caches).
//
// Shard placement uses rendezvous (highest-random-weight) hashing: every
// sample ID is owned by the live replica with the highest keyed hash score
// for that ID. Rendezvous hashing gives the two properties the failover
// story needs with no token tables to synchronize:
//
//   - Minimal remapping: removing one of N replicas remaps exactly the
//     ~1/N of the key space that replica owned, and nothing else (keys
//     owned by survivors keep their owner, because the survivor's score
//     did not change). Adding a replica back steals only the keys it wins.
//   - Determinism: placement is a pure function of (sample ID, live
//     replica set), so every client and every replica computes the same
//     owner from the same view with no coordination.
//
// A RingView is an epoch-numbered snapshot of the live replica set. Epochs
// order views: whoever observes a membership change bumps the epoch, and
// ring-view exchange (net.go's opRingView) lets replicas converge on the
// highest epoch they have seen.

// ReplicaID identifies one directory replica in a sharded deployment. It is
// a separate space from NodeID: nodes are cache servers, replicas are
// directory shard holders.
type ReplicaID int

// RingView is an epoch-numbered snapshot of the live directory replica
// set. Replicas is sorted ascending and never aliased after construction;
// the zero value (epoch 0, no replicas) is the "nothing known" view.
type RingView struct {
	Epoch    uint64
	Replicas []ReplicaID
}

// NewRingView builds a view over the given replicas (copied, sorted,
// deduplicated).
func NewRingView(epoch uint64, replicas []ReplicaID) RingView {
	rs := append([]ReplicaID(nil), replicas...)
	sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
	out := rs[:0]
	for i, r := range rs {
		if i == 0 || r != rs[i-1] {
			out = append(out, r)
		}
	}
	return RingView{Epoch: epoch, Replicas: out}
}

// Contains reports whether r is in the view's live set.
func (v RingView) Contains(r ReplicaID) bool {
	for _, x := range v.Replicas {
		if x == r {
			return true
		}
	}
	return false
}

// Equal reports whether two views carry the same replica set (epochs are
// not compared: Equal answers "would placement differ?").
func (v RingView) Equal(o RingView) bool {
	if len(v.Replicas) != len(o.Replicas) {
		return false
	}
	for i := range v.Replicas {
		if v.Replicas[i] != o.Replicas[i] {
			return false
		}
	}
	return true
}

// Owner reports the replica that owns id's shard under this view: the
// rendezvous winner (highest keyed hash score, ties broken by the lower
// replica ID for full determinism). ok is false when the view is empty —
// the only condition under which a shard has no live holder.
func (v RingView) Owner(id dataset.SampleID) (ReplicaID, bool) {
	if len(v.Replicas) == 0 {
		return 0, false
	}
	best := v.Replicas[0]
	bestScore := rendezvousScore(id, best)
	for _, r := range v.Replicas[1:] {
		if s := rendezvousScore(id, r); s > bestScore {
			best, bestScore = r, s
		}
	}
	return best, true
}

// rendezvousScore is the keyed hash behind Owner. It must be a pure,
// platform-independent function of (id, replica) — the whole cluster
// computes placement with it — so it is a fixed splitmix64-style finalizer
// over the two operands, not a seeded or map-order-dependent hash.
func rendezvousScore(id dataset.SampleID, r ReplicaID) uint64 {
	x := uint64(id)*0x9E3779B97F4A7C15 ^ uint64(r)*0xC2B2AE3D27D4EB4F
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

package dkv

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"icache/internal/dataset"
	"icache/internal/obs"
	"icache/internal/retry"
	"icache/internal/simclock"
	"icache/internal/wire"
)

// Server-side replica mode: an icache-dkv process started with -replica-id
// and -peers becomes one shard holder in a partitioned directory. Replicas
// track each other with exactly the lease machinery nodes use (lease /
// stateAt from membership.go) and gossip epoch-numbered ring views over two
// new wire opcodes:
//
//   - opRingView (12): periodic view exchange. The sender offers its view;
//     the receiver renews the sender's peer lease, adopts the view if its
//     epoch is higher, and answers with its own (possibly just-updated)
//     view. Transport success alone renews the lease — a legacy (pre-ring)
//     dkv answers statusErr for the unknown opcode, and that reply still
//     proves the peer is alive, so mixed-version rings stay stable.
//   - opHandoff (13): shard hand-off hygiene. When the ring changes — a
//     peer's lease expired, or a revived replica re-entered — shards remap,
//     and entries for shards a replica no longer owns become unreachable
//     garbage (clients only route a shard's traffic to its current owner).
//     opHandoff pushes the new view and asks the receiver to drop up to max
//     such entries. Dropping is safe precisely because the entries are
//     unreachable: the shard's current owner repopulates organically from
//     the nodes' claim traffic.
//
// Replicas deliberately accept data operations for ANY shard, not just
// their own: the client's view may trail the server's by an epoch during
// failover, and a legacy DirClient has no view at all. Shard placement is
// enforced by routing, not by rejection; hand-off hygiene cleans up what
// routing strands.
const (
	opRingView = 12
	opHandoff  = 13
)

// maxRingReplicas bounds the replica list in one opRingView/opHandoff
// request, mirroring maxLookupBatch: real rings hold a handful of replicas,
// so a huge count is a corrupt frame.
const maxRingReplicas = 1 << 10

// DropNotOwned removes up to max directory entries (max <= 0 means all)
// whose shard is NOT owned by self under view, in sorted order for
// determinism, and reports how many were removed. This is the shard
// hand-off sweep: after a ring change the entries it removes are
// unreachable through routing, so dropping them only reclaims memory.
func (d *Directory) DropNotOwned(view RingView, self ReplicaID, max int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	var doomed []dataset.SampleID
	for id := range d.owner {
		if r, ok := view.Owner(id); ok && r != self {
			doomed = append(doomed, id)
		}
	}
	sort.Slice(doomed, func(i, j int) bool { return doomed[i] < doomed[j] })
	if max > 0 && len(doomed) > max {
		doomed = doomed[:max]
	}
	for _, id := range doomed {
		delete(d.owner, id)
	}
	return len(doomed)
}

// replicaState is a DirServer's ring-membership state when running as one
// replica of a partitioned directory. nil on legacy single-directory
// servers (the new opcodes then answer statusErr).
type replicaState struct {
	mu            sync.Mutex
	self          ReplicaID
	peers         map[ReplicaID]string // peer address book (static, from -peers)
	leases        map[ReplicaID]*lease // peer liveness, same machinery as node leases
	clients       map[ReplicaID]*DirClient
	view          RingView
	ttl           time.Duration
	suspectWindow time.Duration
	start         time.Time
	dialTimeout   time.Duration
	handoffBatch  int
	dropped       int64 // entries removed by hand-off sweeps
}

// ReplicaConfig tunes a DirServer's replica mode.
type ReplicaConfig struct {
	// Self is this replica's ID; Peers maps every OTHER replica's ID to its
	// dkv address.
	Self  ReplicaID
	Peers map[ReplicaID]string
	// LeaseTTL/SuspectWindow govern peer liveness exactly like node leases
	// (zero selects the membership defaults). A peer whose lease goes Dead
	// is removed from the ring.
	LeaseTTL      time.Duration
	SuspectWindow time.Duration
	// DialTimeout bounds one peer dial during ring exchange.
	DialTimeout time.Duration
	// HandoffBatch caps one hand-off sweep (<= 0 means unbounded), bounding
	// the directory lock hold exactly like the scrubber's PurgeDead cap.
	HandoffBatch int
}

// EnableReplica puts the server in replica mode: it answers opRingView and
// opHandoff, tracks peers by lease, and starts from the optimistic view
// containing every configured replica (epoch 1). Must be called before
// Serve.
func (s *DirServer) EnableReplica(cfg ReplicaConfig) {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.SuspectWindow <= 0 {
		cfg.SuspectWindow = DefaultSuspectWindow
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	all := []ReplicaID{cfg.Self}
	leases := make(map[ReplicaID]*lease, len(cfg.Peers))
	for r := range cfg.Peers {
		all = append(all, r)
		// Peers start with a full lease of grace: they are presumed live
		// until an exchange cycle proves otherwise.
		leases[r] = &lease{ttl: cfg.LeaseTTL, expires: simclock.Time(cfg.LeaseTTL), state: NodeLive}
	}
	s.rep = &replicaState{
		self:          cfg.Self,
		peers:         cfg.Peers,
		leases:        leases,
		clients:       make(map[ReplicaID]*DirClient),
		view:          NewRingView(1, all),
		ttl:           cfg.LeaseTTL,
		suspectWindow: cfg.SuspectWindow,
		start:         time.Now(),
		dialTimeout:   cfg.DialTimeout,
		handoffBatch:  cfg.HandoffBatch,
	}
}

// ReplicaView reports the server's current ring view (nil-safe: a legacy
// server reports the zero view).
func (s *DirServer) ReplicaView() RingView {
	if s.rep == nil {
		return RingView{}
	}
	s.rep.mu.Lock()
	defer s.rep.mu.Unlock()
	return NewRingView(s.rep.view.Epoch, s.rep.view.Replicas)
}

// HandoffDropped reports how many entries hand-off sweeps removed.
func (s *DirServer) HandoffDropped() int64 {
	if s.rep == nil {
		return 0
	}
	s.rep.mu.Lock()
	defer s.rep.mu.Unlock()
	return s.rep.dropped
}

// mergeView folds a remote view into the local one (rep.mu held) and
// reports whether the local view changed. The higher epoch wins; a view
// that would exclude self is re-entered (self adds itself back and bumps
// past the remote epoch — a replica never routes itself out of existence).
func (rs *replicaState) mergeView(remote RingView) bool {
	if remote.Epoch <= rs.view.Epoch {
		return false
	}
	if !remote.Contains(rs.self) {
		rs.view = NewRingView(remote.Epoch+1, append([]ReplicaID{rs.self}, remote.Replicas...))
		return true
	}
	adopted := NewRingView(remote.Epoch, remote.Replicas)
	changed := !adopted.Equal(rs.view)
	rs.view = adopted
	return changed
}

// renewPeer re-stamps sender's lease (rep.mu held): any proof of life —
// an inbound request from the peer, or a completed round trip to it —
// counts.
func (rs *replicaState) renewPeer(sender ReplicaID, now simclock.Time) {
	l, ok := rs.leases[sender]
	if !ok {
		if sender == rs.self {
			return
		}
		l = &lease{ttl: rs.ttl}
		rs.leases[sender] = l
	}
	l.expires = now + simclock.Time(rs.ttl)
	l.state = NodeLive
}

// recomputeLocked derives the live set from peer leases (rep.mu held) and
// reports whether the view changed (epoch bumped). Dead peers leave the
// ring; revived peers re-enter it on their next proof of life via
// renewPeer + this recompute.
func (rs *replicaState) recomputeLocked(now simclock.Time) bool {
	live := []ReplicaID{rs.self}
	for r, l := range rs.leases {
		if l.stateAt(now, rs.suspectWindow) != NodeDead {
			live = append(live, r)
		}
	}
	next := NewRingView(rs.view.Epoch, live)
	if next.Equal(rs.view) {
		return false
	}
	rs.view = NewRingView(rs.view.Epoch+1, live)
	return true
}

// now reads the replica's wall clock as a lease timestamp.
func (rs *replicaState) now() simclock.Time { return simclock.Time(time.Since(rs.start)) }

// isServerError reports whether err is an application-level statusErr reply
// (the transport worked; the server refused the request). Used to tell a
// live legacy peer from a dead one.
func isServerError(err error) bool {
	var se *ServerError
	return errors.As(err, &se)
}

// handleRingView serves one opRingView request: renew the sender's lease,
// merge the offered view, recompute liveness, and answer with the current
// view. A view change triggers a local hand-off sweep.
func (s *DirServer) handleRingView(sender ReplicaID, remote RingView) RingView {
	rs := s.rep
	rs.mu.Lock()
	now := rs.now()
	rs.renewPeer(sender, now)
	changed := rs.mergeView(remote)
	changed = rs.recomputeLocked(now) || changed
	view := NewRingView(rs.view.Epoch, rs.view.Replicas)
	max := rs.handoffBatch
	rs.mu.Unlock()
	if changed {
		s.handoffSweep(view, max)
	}
	return view
}

// handleHandoff serves one opHandoff request: adopt the pushed view if
// newer, sweep entries for shards self no longer owns, and report how many
// were dropped plus the current epoch.
func (s *DirServer) handleHandoff(sender ReplicaID, remote RingView, max int) (int, uint64) {
	rs := s.rep
	rs.mu.Lock()
	now := rs.now()
	rs.renewPeer(sender, now)
	rs.mergeView(remote)
	rs.recomputeLocked(now)
	view := NewRingView(rs.view.Epoch, rs.view.Replicas)
	if max <= 0 {
		max = rs.handoffBatch
	}
	rs.mu.Unlock()
	dropped := s.handoffSweep(view, max)
	return dropped, view.Epoch
}

// handoffSweep drops entries for shards self no longer owns under view.
func (s *DirServer) handoffSweep(view RingView, max int) int {
	rs := s.rep
	dropped := s.dir.DropNotOwned(view, rs.self, max)
	if dropped > 0 {
		rs.mu.Lock()
		rs.dropped += int64(dropped)
		rs.mu.Unlock()
		s.journal.Add(obs.EventHandoff, int64(rs.self), int64(view.Epoch), int64(dropped),
			"shard hand-off sweep")
	}
	return dropped
}

// peerClient returns (dialing lazily) the exchange client for peer r.
func (rs *replicaState) peerClient(r ReplicaID) (*DirClient, error) {
	rs.mu.Lock()
	c := rs.clients[r]
	addr := rs.peers[r]
	timeout := rs.dialTimeout
	rs.mu.Unlock()
	if c != nil {
		return c, nil
	}
	// Exchange clients retry nothing: the exchange loop IS the retry, and a
	// prompt failure is the liveness signal.
	c, err := DialDirPolicy(addr, timeout, retry.None())
	if err != nil {
		return nil, err
	}
	rs.mu.Lock()
	if prev := rs.clients[r]; prev != nil {
		rs.mu.Unlock()
		c.Close()
		return prev, nil
	}
	rs.clients[r] = c
	rs.mu.Unlock()
	return c, nil
}

// dropPeerClient forgets r's exchange client after a transport failure so
// the next cycle redials.
func (rs *replicaState) dropPeerClient(r ReplicaID) {
	rs.mu.Lock()
	c := rs.clients[r]
	delete(rs.clients, r)
	rs.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// ExchangeRing runs one ring-exchange cycle: offer the local view to every
// configured peer (sorted order), renew leases on any reply — a statusErr
// from a legacy peer is still proof of life — merge newer views, then
// recompute liveness so expired peers leave the ring. A view change hands
// off: the local sweep runs, and the new view is pushed to live peers via
// opHandoff. It reports whether the view changed this cycle.
func (s *DirServer) ExchangeRing() bool {
	rs := s.rep
	if rs == nil {
		return false
	}
	rs.mu.Lock()
	view := NewRingView(rs.view.Epoch, rs.view.Replicas)
	self := rs.self
	peerIDs := make([]ReplicaID, 0, len(rs.peers))
	for r := range rs.peers {
		peerIDs = append(peerIDs, r)
	}
	rs.mu.Unlock()
	sort.Slice(peerIDs, func(i, j int) bool { return peerIDs[i] < peerIDs[j] })

	for _, r := range peerIDs {
		c, err := rs.peerClient(r)
		if err != nil {
			continue // lease keeps aging; Dead once TTL + suspect window lapse
		}
		remote, legacy, err := c.RingViewExchange(self, view)
		if err != nil {
			rs.dropPeerClient(r)
			continue
		}
		rs.mu.Lock()
		rs.renewPeer(r, rs.now())
		if !legacy {
			rs.mergeView(remote)
		}
		rs.mu.Unlock()
	}

	rs.mu.Lock()
	changed := rs.recomputeLocked(rs.now())
	next := NewRingView(rs.view.Epoch, rs.view.Replicas)
	max := rs.handoffBatch
	rs.mu.Unlock()

	if changed || !next.Equal(view) || next.Epoch != view.Epoch {
		s.handoffSweep(next, max)
		for _, r := range peerIDs {
			if !next.Contains(r) {
				continue
			}
			c, err := rs.peerClient(r)
			if err != nil {
				continue
			}
			if _, _, err := c.Handoff(self, next, max); err != nil {
				rs.dropPeerClient(r)
			}
		}
		return true
	}
	return false
}

// RunRingExchange loops ExchangeRing every interval until stop closes.
// cmd/icache-dkv runs this in a background goroutine when -peers is set.
func (s *DirServer) RunRingExchange(interval time.Duration, stop <-chan struct{}) {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			s.ExchangeRing()
		}
	}
}

// CloseReplica tears down the exchange clients (idempotent; nil-safe).
func (s *DirServer) CloseReplica() {
	rs := s.rep
	if rs == nil {
		return
	}
	rs.mu.Lock()
	clients := rs.clients
	rs.clients = make(map[ReplicaID]*DirClient)
	rs.mu.Unlock()
	for _, c := range clients {
		c.Close()
	}
}

// --- wire encoding helpers shared by client and dispatcher ---

// encodeRingView appends sender + view to e (the common body of opRingView
// and opHandoff frames and their responses).
func encodeRingView(e *wire.Buffer, sender ReplicaID, view RingView) {
	e.I64(int64(sender))
	e.I64(int64(view.Epoch))
	e.U32(uint32(len(view.Replicas)))
	for _, r := range view.Replicas {
		e.I64(int64(r))
	}
}

// decodeRingView reads sender + view from d, enforcing maxRingReplicas.
func decodeRingView(d *wire.Reader) (ReplicaID, RingView, error) {
	sender := ReplicaID(d.I64())
	epoch := uint64(d.I64())
	n := int(d.U32())
	if d.Err != nil {
		return 0, RingView{}, d.Err
	}
	if n < 0 || n > maxRingReplicas {
		return 0, RingView{}, fmt.Errorf("dkv: unreasonable ring size %d", n)
	}
	reps := make([]ReplicaID, n)
	for i := 0; i < n; i++ {
		reps[i] = ReplicaID(d.I64())
	}
	if d.Err != nil {
		return 0, RingView{}, d.Err
	}
	return sender, NewRingView(epoch, reps), nil
}

// RingViewExchange offers the caller's view to the server and returns the
// server's view. legacy reports that the server predates replica mode (it
// answered the opcode with an error): the peer is alive but has no view to
// merge.
func (c *DirClient) RingViewExchange(sender ReplicaID, view RingView) (remote RingView, legacy bool, err error) {
	var e wire.Buffer
	e.U8(opRingView)
	encodeRingView(&e, sender, view)
	d, err := c.roundTrip(e.B)
	if err != nil {
		if isServerError(err) {
			return RingView{}, true, nil
		}
		return RingView{}, false, err
	}
	_, remote, derr := decodeRingView(d)
	if derr != nil {
		return RingView{}, false, derr
	}
	return remote, false, nil
}

// Handoff pushes view to the server and asks it to drop up to max entries
// for shards it no longer owns (max <= 0 defers to the server's cap). It
// returns the server's drop count and current epoch.
func (c *DirClient) Handoff(sender ReplicaID, view RingView, max int) (dropped int, epoch uint64, err error) {
	var e wire.Buffer
	e.U8(opHandoff)
	encodeRingView(&e, sender, view)
	if max < 0 {
		max = 0
	}
	e.U32(uint32(max))
	d, err := c.roundTrip(e.B)
	if err != nil {
		return 0, 0, err
	}
	dropped = int(d.I64())
	epoch = uint64(d.I64())
	return dropped, epoch, d.Err
}

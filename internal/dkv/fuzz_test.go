package dkv

// FuzzDirDispatch throws arbitrary byte strings at the directory service's
// request dispatcher — including the membership opcodes added for node
// lifecycle — asserting the malformed-client contract: every request gets a
// status-framed response and nothing panics. A broken cache node (or an
// attacker on the directory port) must not be able to take the shared
// directory down.

import (
	"testing"

	"icache/internal/wire"
)

func FuzzDirDispatch(f *testing.F) {
	// Seeds: every opcode well-formed, truncated operand forms, and garbage.
	f.Add([]byte{})
	f.Add([]byte{opLookup})
	f.Add([]byte{opLookup, 0, 0, 0, 0, 0, 0, 0, 7})
	f.Add([]byte{opClaim, 0, 0, 0, 0, 0, 0, 0, 7, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Add([]byte{opClaim, 0, 0, 0, 0})
	f.Add([]byte{opRelease, 0, 0, 0, 0, 0, 0, 0, 7, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Add([]byte{opLen})
	f.Add([]byte{opRegister, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 2, 84, 11, 228, 0})
	f.Add([]byte{opRegister, 0, 0, 0, 0, 0, 0, 0, 2, 255, 255, 255, 255, 255, 255, 255, 255})
	f.Add([]byte{opRegister, 1})
	f.Add([]byte{opHeartbeat, 0, 0, 0, 0, 0, 0, 0, 2})
	f.Add([]byte{opHeartbeat})
	f.Add([]byte{opListNodes})
	f.Add([]byte{opOwnedBy, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 16})
	f.Add([]byte{opOwnedBy, 0, 0, 0, 0, 0, 0, 0, 2})
	f.Add([]byte{opPurgeDead, 0, 0, 0, 0})
	f.Add([]byte{opPurgeDead, 255, 255, 255, 255})
	// Multi-lookup: well-formed (one owned id, one absent), truncated id
	// list, and an absurd count that must trip the "unreasonable batch
	// size" guard instead of allocating gigabytes.
	f.Add([]byte{opLookupBatch, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 7, 0, 0, 0, 0, 0, 0, 0, 9})
	f.Add([]byte{opLookupBatch, 0, 0, 0, 2, 0, 0, 0, 0})
	f.Add([]byte{opLookupBatch, 0xFF, 0xFF, 0xFF, 0xFF})
	// Ring-view exchange: well-formed (sender 1 offers epoch 2 over replicas
	// {0,1}), truncated replica list, and an absurd ring size that must trip
	// the "unreasonable ring size" guard.
	f.Add([]byte{opRingView,
		0, 0, 0, 0, 0, 0, 0, 1, // sender
		0, 0, 0, 0, 0, 0, 0, 2, // epoch
		0, 0, 0, 2, // n
		0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Add([]byte{opRingView, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 2})
	f.Add([]byte{opRingView, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 2, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{opRingView})
	// Shard hand-off: well-formed (sender 1 pushes epoch 3 over {1} with a
	// sweep cap), missing cap, truncated.
	f.Add([]byte{opHandoff,
		0, 0, 0, 0, 0, 0, 0, 1, // sender
		0, 0, 0, 0, 0, 0, 0, 3, // epoch
		0, 0, 0, 1, // n
		0, 0, 0, 0, 0, 0, 0, 1, // replica 1
		0, 0, 0, 16}) // max
	f.Add([]byte{opHandoff, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 3, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Add([]byte{opHandoff, 0, 0, 0, 0})
	f.Add([]byte{0xFF, 0x01, 0x02})
	// Deadline envelopes (op 14): a generous budget around a lookup, a spent
	// budget (must answer statusExpired without touching the directory), a
	// nested envelope (must error), a truncated header, and an empty inner.
	f.Add([]byte{opDeadline,
		0, 0, 0, 0, 59, 154, 202, 0, // ~1s budget
		opLookup, 0, 0, 0, 0, 0, 0, 0, 7})
	f.Add([]byte{opDeadline, 0, 0, 0, 0, 0, 0, 0, 0, opLookup, 0, 0, 0, 0, 0, 0, 0, 7})
	f.Add([]byte{opDeadline, 0, 0, 0, 0, 59, 154, 202, 0, opDeadline, 0, 0, 0, 0, 59, 154, 202, 0, opLookup})
	f.Add([]byte{opDeadline, 0, 0, 0, 1})
	f.Add([]byte{opDeadline, 0, 0, 0, 0, 59, 154, 202, 0})

	f.Fuzz(func(t *testing.T, req []byte) {
		// Fresh state per input: a fuzzed Register must not grow one shared
		// lease map without bound across the whole run. Replica mode is on so
		// the ring opcodes exercise their real handlers (the exchange loop is
		// not running, so the configured peer is never dialed).
		srv := NewDirServer(NewDirectory())
		srv.EnableReplica(ReplicaConfig{Self: 0, Peers: map[ReplicaID]string{1: "127.0.0.1:1"}})
		srv.dir.Register(2, 0)
		srv.dir.Claim(7, 2)

		var e wire.Buffer
		srv.dispatchInto(req, &e)
		if len(e.B) == 0 {
			t.Fatal("empty response")
		}
		switch e.B[0] {
		case statusOK, statusErr, statusExpired:
		case statusRetryAfter:
			t.Fatalf("retry-after with no admission gate installed")
		default:
			t.Fatalf("response status %d", e.B[0])
		}
	})
}

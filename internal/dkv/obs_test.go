package dkv

import (
	"net"
	"strings"
	"testing"
	"time"

	"icache/internal/obs"
	"icache/internal/trace"
	"icache/internal/wire"
)

// startObsDirServer is startDirServer with the observability layer armed
// before Serve.
func startObsDirServer(t *testing.T) (string, *Directory, *obs.Registry, *trace.Recorder) {
	t.Helper()
	dir := NewDirectory()
	srv := NewDirServer(dir)
	reg := obs.NewRegistry()
	tracer := trace.NewRecorder(1 << 10)
	srv.EnableObs(reg, tracer)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String(), dir, reg, tracer
}

func TestDirTracedLookup(t *testing.T) {
	addr, dir, reg, tracer := startObsDirServer(t)
	if !dir.Claim(7, 3) {
		t.Fatal("claim failed")
	}
	c := dialDir(t, addr)

	// A plain lookup and a traced lookup must return the same answer.
	node, ok, err := c.Lookup(7)
	if err != nil || !ok || node != 3 {
		t.Fatalf("Lookup = (%d, %v, %v)", node, ok, err)
	}
	ctx := obs.TraceCtx{ID: 0xfeed, Hop: 2}
	node, ok, err = c.LookupTraced(7, ctx)
	if err != nil || !ok || node != 3 {
		t.Fatalf("LookupTraced = (%d, %v, %v)", node, ok, err)
	}
	// Miss through the envelope, too.
	_, ok, err = c.LookupTraced(1234, ctx)
	if err != nil || ok {
		t.Fatalf("LookupTraced(absent) = (%v, %v)", ok, err)
	}

	// The traced lookups (and only those) produced RPCRecv spans at the
	// carried hop, tagged with the inner opcode.
	var spans []trace.Event
	for _, e := range tracer.Snapshot() {
		if e.Kind.IsSpan() {
			spans = append(spans, e)
		}
	}
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2 (one per traced lookup)", len(spans))
	}
	for _, sp := range spans {
		if sp.Kind != trace.KindRPCRecv {
			t.Fatalf("span kind %v", sp.Kind)
		}
		if sp.TraceID != 0xfeed || sp.Hop != 2 {
			t.Fatalf("span ctx = (%016x, %d), want (feed, 2)", sp.TraceID, sp.Hop)
		}
		if sp.Arg != opLookup {
			t.Fatalf("span arg %d, want inner opcode %d", sp.Arg, opLookup)
		}
	}

	// The per-request histogram counted every request (traced or not).
	var served uint64
	for _, ns := range reg.Snapshot() {
		if ns.Name == StageDirServe {
			served = ns.Snap.Count
		}
	}
	if served < 3 {
		t.Fatalf("dir_serve histogram count %d, want >= 3", served)
	}

	// A zero trace context degrades to the plain request.
	if _, _, err := c.LookupTraced(7, obs.TraceCtx{}); err != nil {
		t.Fatal(err)
	}
}

// TestDirEnvelopeRejections pins the envelope's safety properties at the
// dispatch layer: nested envelopes and zero trace IDs are errors, and a
// truncated envelope fails cleanly.
func TestDirEnvelopeRejections(t *testing.T) {
	srv := NewDirServer(NewDirectory())
	srv.EnableObs(obs.NewRegistry(), trace.NewRecorder(16))

	dispatch := func(req []byte) (status byte, msg string) {
		var e wire.Buffer
		srv.dispatchCtx(req, &e, obs.TraceCtx{})
		d := wire.NewReader(e.B)
		status = d.U8()
		if status == statusErr {
			msg = d.Str()
		}
		return status, msg
	}

	envelope := func(id uint64, hop uint8, inner []byte) []byte {
		var e wire.Buffer
		e.U8(opTraced)
		e.I64(int64(id))
		e.U8(hop)
		e.B = append(e.B, inner...)
		return e.B
	}
	var lookup wire.Buffer
	lookup.U8(opLookup)
	lookup.I64(7)

	// Well-formed envelope dispatches fine.
	if st, msg := dispatch(envelope(9, 1, lookup.B)); st != statusOK {
		t.Fatalf("traced lookup rejected: %s", msg)
	}
	// Nested envelope is rejected.
	if st, msg := dispatch(envelope(9, 1, envelope(9, 2, lookup.B))); st != statusErr || !strings.Contains(msg, "nested") {
		t.Fatalf("nested envelope: status %d msg %q", st, msg)
	}
	// Zero trace ID is rejected.
	if st, msg := dispatch(envelope(0, 1, lookup.B)); st != statusErr {
		t.Fatalf("zero trace id accepted: status %d msg %q", st, msg)
	}
	// Truncated envelope fails cleanly.
	if st, _ := dispatch([]byte{opTraced, 1, 2}); st != statusErr {
		t.Fatalf("truncated envelope accepted: status %d", st)
	}
}

// TestDirObsDisabledIsInert pins the nil-recorder contract: a server with
// no observability wiring serves traced envelopes correctly (the context
// is simply dropped) and records nothing.
func TestDirObsDisabledIsInert(t *testing.T) {
	dir := NewDirectory()
	if !dir.Claim(7, 3) {
		t.Fatal("claim failed")
	}
	srv := NewDirServer(dir)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })

	c, err := DialDir(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	node, ok, err := c.LookupTraced(7, obs.TraceCtx{ID: 5, Hop: 1})
	if err != nil || !ok || node != 3 {
		t.Fatalf("LookupTraced on plain server = (%d, %v, %v)", node, ok, err)
	}
	if srv.ObsRegistry() != nil {
		t.Fatal("registry materialized on a plain server")
	}
}

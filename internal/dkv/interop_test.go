package dkv

import (
	"net"
	"testing"
	"time"

	"icache/internal/dataset"
)

// Mixed-version interop: a partitioned-directory rollout is gradual, so
// both directions must keep working — a new sharded client in front of an
// old single dkv process, and an old DirClient talking to a new replica.

// startReplicaServer starts a DirServer in replica mode on 127.0.0.1:0.
func startReplicaServer(t *testing.T, cfg ReplicaConfig) (*DirServer, string, *Directory) {
	t.Helper()
	dir := NewDirectory()
	srv := NewDirServer(dir)
	srv.EnableReplica(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.CloseReplica()
		srv.Close()
	})
	return srv, ln.Addr().String(), dir
}

// TestInteropShardedClientLegacyServer pins the forward direction: a
// sharded client configured with a single legacy (pre-ring) dkv server
// degrades to single-shard routing — every operation lands on that one
// server and behaves exactly like the old DirClient path.
func TestInteropShardedClientLegacyServer(t *testing.T) {
	addr, dir := startDirServer(t) // legacy: no EnableReplica
	s, err := DialSharded([]string{addr}, time.Second, ShardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	if ok, err := s.Claim(7, 1); err != nil || !ok {
		t.Fatalf("claim through sharded client: %v/%v", ok, err)
	}
	if node, found, err := s.Lookup(7); err != nil || !found || node != 1 {
		t.Fatalf("lookup: %v/%v/%v", node, found, err)
	}
	owners, err := s.LookupBatch([]dataset.SampleID{7, 8})
	if err != nil || !owners[0].Found || owners[0].Node != 1 || owners[1].Found {
		t.Fatalf("lookup batch: %v/%v", owners, err)
	}
	if _, err := s.Register(1, time.Minute); err != nil {
		t.Fatalf("register: %v", err)
	}
	if renewed, err := s.Heartbeat(1); err != nil || !renewed {
		t.Fatalf("heartbeat: %v/%v", renewed, err)
	}
	if ok, err := s.Release(7, 1); err != nil || !ok {
		t.Fatalf("release: %v/%v", ok, err)
	}
	if n := dir.Len(); n != 0 {
		t.Fatalf("server-side len = %d after release", n)
	}
	if st := s.Ring(); st.LiveReplicas != 1 || st.Failovers != 0 {
		t.Fatalf("ring stats against healthy legacy server: %+v", st)
	}
}

// TestInteropLegacyClientReplicaServer pins the reverse direction: an old
// DirClient pointed at one replica of a partitioned directory keeps
// working — replicas accept data and membership operations for any shard
// (placement is enforced by routing, not rejection).
func TestInteropLegacyClientReplicaServer(t *testing.T) {
	_, addr, dir := startReplicaServer(t, ReplicaConfig{
		Self:  0,
		Peers: map[ReplicaID]string{1: "127.0.0.1:1"}, // never dialed: no exchange loop
	})
	c := dialDir(t, addr) // legacy client: no ring awareness

	if ok, err := c.Claim(42, 3); err != nil || !ok {
		t.Fatalf("legacy claim on replica: %v/%v", ok, err)
	}
	if node, found, err := c.Lookup(42); err != nil || !found || node != 3 {
		t.Fatalf("legacy lookup: %v/%v/%v", node, found, err)
	}
	if _, err := c.Register(3, time.Minute); err != nil {
		t.Fatalf("legacy register: %v", err)
	}
	if renewed, err := c.Heartbeat(3); err != nil || !renewed {
		t.Fatalf("legacy heartbeat: %v/%v", renewed, err)
	}
	if ok, err := c.Release(42, 3); err != nil || !ok {
		t.Fatalf("legacy release: %v/%v", ok, err)
	}
	if n := dir.Len(); n != 0 {
		t.Fatalf("replica len = %d after release", n)
	}
}

// TestInteropRingOpcodesOnLegacyServer pins the wire-level contract the
// ring exchange relies on: a legacy server answers the ring opcodes with a
// status-framed error (proof of life, no view), and RingViewExchange
// surfaces that as legacy=true rather than a failure.
func TestInteropRingOpcodesOnLegacyServer(t *testing.T) {
	addr, _ := startDirServer(t) // legacy
	c := dialDir(t, addr)

	remote, legacy, err := c.RingViewExchange(1, NewRingView(1, []ReplicaID{0, 1}))
	if err != nil {
		t.Fatalf("RingViewExchange vs legacy server: %v", err)
	}
	if !legacy {
		t.Fatal("legacy server not reported as legacy")
	}
	if len(remote.Replicas) != 0 {
		t.Fatalf("legacy server produced a view: %+v", remote)
	}
	if _, _, err := c.Handoff(1, NewRingView(1, []ReplicaID{0, 1}), 16); err == nil {
		t.Fatal("Handoff vs legacy server did not error")
	} else if !isServerError(err) {
		t.Fatalf("Handoff error is not a ServerError: %v", err)
	}
}

// TestInteropReplicasExchangeViews pins the replica-to-replica path over
// real TCP: two replicas converge on a shared view via ExchangeRing, and a
// hand-off push drops entries for shards the receiver no longer owns.
func TestInteropReplicasExchangeViews(t *testing.T) {
	// Replica addressing is circular, so listen first and wire peers after.
	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr0, addr1 := ln0.Addr().String(), ln1.Addr().String()

	dirs := []*Directory{NewDirectory(), NewDirectory()}
	srvs := []*DirServer{NewDirServer(dirs[0]), NewDirServer(dirs[1])}
	srvs[0].EnableReplica(ReplicaConfig{Self: 0, Peers: map[ReplicaID]string{1: addr1}})
	srvs[1].EnableReplica(ReplicaConfig{Self: 1, Peers: map[ReplicaID]string{0: addr0}})
	go srvs[0].Serve(ln0)
	go srvs[1].Serve(ln1)
	t.Cleanup(func() {
		for _, s := range srvs {
			s.CloseReplica()
			s.Close()
		}
	})

	srvs[0].ExchangeRing()
	v0, v1 := srvs[0].ReplicaView(), srvs[1].ReplicaView()
	if !v0.Equal(v1) || len(v0.Replicas) != 2 {
		t.Fatalf("views did not converge: %+v vs %+v", v0, v1)
	}

	// Strand entries on replica 0 for shards replica 1 owns, then push a
	// hand-off: exactly those entries must be swept.
	view := srvs[0].ReplicaView()
	misplaced := 0
	for id := dataset.SampleID(0); id < 100; id++ {
		dirs[0].Claim(id, 5)
		if r, _ := view.Owner(id); r != 0 {
			misplaced++
		}
	}
	if misplaced == 0 {
		t.Fatal("no keys route to replica 1 — test premise broken")
	}
	c := dialDir(t, addr0)
	dropped, epoch, err := c.Handoff(1, view, 0)
	if err != nil {
		t.Fatalf("handoff: %v", err)
	}
	if dropped != misplaced {
		t.Fatalf("handoff dropped %d entries, want %d", dropped, misplaced)
	}
	if epoch != view.Epoch {
		t.Fatalf("handoff epoch %d, want %d", epoch, view.Epoch)
	}
	if got := dirs[0].Len(); got != 100-misplaced {
		t.Fatalf("replica 0 len = %d after handoff, want %d", got, 100-misplaced)
	}
	if got := srvs[0].HandoffDropped(); got != int64(misplaced) {
		t.Fatalf("HandoffDropped = %d, want %d", got, misplaced)
	}
}

package dkv

import (
	"errors"
	"net/http"
	"time"

	"icache/internal/dataset"
	"icache/internal/obs"
	"icache/internal/trace"
	"icache/internal/wire"
)

// This file is the directory service's observability wiring, mirroring the
// rpc layer's: an opt-in per-request latency histogram on the server, and
// the same compact trace envelope so a traced cache request's directory
// lookups appear in the cross-node hop chain.
//
// The envelope is structurally identical to the rpc layer's (opcode, then
// i64 trace ID, u8 receiver hop, raw inner request) but uses this
// protocol's own opcode space. Nested envelopes are rejected.

// opTraced wraps any directory request in a trace-context envelope.
const opTraced = 10

// StageDirServe is the directory server's per-request serve stage; it
// becomes icache_stage_dir_serve_seconds on the Prometheus surface.
const StageDirServe = "dir_serve"

// dirObs is a DirServer's observability state.
type dirObs struct {
	reg   *obs.Registry
	serve *obs.Histogram

	tracer *trace.Recorder
	start  time.Time // trace-clock epoch (set at EnableObs)
}

func (o *dirObs) histsOn() bool { return o.reg != nil }

func (o *dirObs) tracing(ctx obs.TraceCtx) bool { return o.tracer != nil && ctx.Valid() }

// EnableObs arms the directory server's per-request latency histogram
// (reg) and span tracing (tracer). Either may be nil to leave that surface
// off. Must be called before Serve.
func (s *DirServer) EnableObs(reg *obs.Registry, tracer *trace.Recorder) {
	s.obs.reg = reg
	s.obs.serve = reg.Hist(StageDirServe)
	s.obs.tracer = tracer
	s.obs.start = time.Now()
}

// ObsRegistry reports the stage-histogram registry (nil when disabled).
func (s *DirServer) ObsRegistry() *obs.Registry { return s.obs.reg }

// DebugObsHandler serves the shared human-readable observability summary
// (per-stage latency table + trace-ring state) for /debug/obs.
func (s *DirServer) DebugObsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		var ring *obs.RingStats
		if s.obs.tracer != nil {
			ring = &obs.RingStats{Retained: s.obs.tracer.Len(), Total: s.obs.tracer.Total()}
		}
		obs.WriteDebug(w, s.obs.reg, ring, 0)
	})
}

// dispatchCtx unwraps an optional trace envelope, dispatches the inner
// request, and records the serve time (histogram always when enabled; a
// KindRPCRecv span at the received hop with Arg = inner opcode when the
// request is traced).
func (s *DirServer) dispatchCtx(req []byte, e *wire.Buffer, ctx obs.TraceCtx) {
	if len(req) > 0 && req[0] == opTraced {
		if ctx.Valid() {
			dirError(e, errors.New("dkv: nested trace envelope"))
			return
		}
		d := wire.NewReader(req)
		d.U8() // opTraced
		id := uint64(d.I64())
		hop := d.U8()
		if d.Err != nil {
			dirError(e, d.Err)
			return
		}
		if id == 0 {
			dirError(e, errors.New("dkv: zero trace id"))
			return
		}
		s.dispatchCtx(d.B[d.Off:], e, obs.TraceCtx{ID: id, Hop: hop})
		return
	}
	measure := s.obs.histsOn() || s.obs.tracing(ctx)
	var t0 time.Time
	if measure {
		t0 = time.Now()
	}
	s.dispatchInto(req, e)
	if measure {
		dur := time.Since(t0)
		s.obs.serve.Record(dur)
		if s.obs.tracing(ctx) {
			op := int64(0)
			if len(req) > 0 {
				op = int64(req[0])
			}
			s.obs.tracer.RecordSpan(time.Since(s.obs.start), trace.KindRPCRecv, 0, op, ctx.ID, ctx.Hop, dur)
		}
	}
}

// LookupTraced is Lookup carrying a trace context addressed to the
// directory server (the caller passes its own context's Next()). A zero
// context sends the plain request. It implements the optional interface
// the rpc layer probes for when forwarding traced directory lookups.
func (c *DirClient) LookupTraced(id dataset.SampleID, ctx obs.TraceCtx) (NodeID, bool, error) {
	if !ctx.Valid() {
		return c.Lookup(id)
	}
	var e wire.Buffer
	e.U8(opTraced)
	e.I64(int64(ctx.ID))
	e.U8(ctx.Hop)
	e.U8(opLookup)
	e.I64(int64(id))
	d, err := c.roundTrip(e.B)
	if err != nil {
		return 0, false, err
	}
	if d.U8() == 0 {
		return 0, false, d.Err
	}
	return NodeID(d.I64()), true, d.Err
}

// LookupBatchTraced is LookupBatch carrying a trace context addressed to
// the directory server, so a traced cache request's ONE batched ownership
// lookup appears in the cross-node hop chain just like the per-sample
// lookups it replaced. A zero context sends the plain request. It
// implements the optional interface the rpc layer probes for when
// forwarding traced batched directory lookups.
func (c *DirClient) LookupBatchTraced(ids []dataset.SampleID, ctx obs.TraceCtx) ([]Owner, error) {
	if !ctx.Valid() {
		return c.LookupBatch(ids)
	}
	if len(ids) == 0 {
		return nil, nil
	}
	var e wire.Buffer
	e.U8(opTraced)
	e.I64(int64(ctx.ID))
	e.U8(ctx.Hop)
	e.U8(opLookupBatch)
	e.U32(uint32(len(ids)))
	for _, id := range ids {
		e.I64(int64(id))
	}
	d, err := c.roundTrip(e.B)
	if err != nil {
		return nil, err
	}
	return decodeLookupBatchResponse(d, len(ids))
}

package dkv

import (
	"fmt"
	"net"
	"reflect"
	"testing"
	"time"

	"icache/internal/dataset"
	"icache/internal/leakcheck"
)

// The dkv half of the partitioned-directory chaos acceptance suite (the
// cluster-simulation half lives in internal/icache/lifecycle_test.go):
// three real replica processes over TCP, one killed mid-epoch, pinning that
//
//   - survivors serve every operation on (the sharded client fails the dead
//     replica's shards over in-call, so callers see zero errors),
//   - failover completes within one lease cycle (the survivors' ring views
//     converge to exclude the dead replica once its peer lease lapses),
//   - the answer set is conserved and deterministic across seeds: every key
//     claimed before the crash and owned by a surviving shard is still
//     found, every dead-shard key reports clean "unowned" (not an error),
//     and repeated runs agree exactly.

// ringChaosCluster is three replica DirServers wired as one partitioned
// directory, plus a sharded client over all of them.
type ringChaosCluster struct {
	lns   []net.Listener
	addrs []string
	dirs  []*Directory
	srvs  []*DirServer
	s     *ShardedDir
}

func startRingChaosCluster(t *testing.T, leaseTTL, suspect time.Duration) *ringChaosCluster {
	t.Helper()
	const n = 3
	c := &ringChaosCluster{}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		c.lns = append(c.lns, ln)
		c.addrs = append(c.addrs, ln.Addr().String())
	}
	for i := 0; i < n; i++ {
		peers := make(map[ReplicaID]string)
		for j := 0; j < n; j++ {
			if j != i {
				peers[ReplicaID(j)] = c.addrs[j]
			}
		}
		dir := NewDirectory()
		srv := NewDirServer(dir)
		srv.EnableReplica(ReplicaConfig{
			Self:          ReplicaID(i),
			Peers:         peers,
			LeaseTTL:      leaseTTL,
			SuspectWindow: suspect,
			DialTimeout:   time.Second,
		})
		c.dirs = append(c.dirs, dir)
		c.srvs = append(c.srvs, srv)
		go srv.Serve(c.lns[i])
	}
	s, err := DialSharded(c.addrs, time.Second, ShardedConfig{FailoverTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	c.s = s
	t.Cleanup(func() {
		s.Close()
		for _, srv := range c.srvs {
			srv.CloseReplica()
			srv.Close()
		}
	})
	return c
}

// ringChaosOutcome is one run's full observable result, for repeated-run
// determinism comparison.
type ringChaosOutcome struct {
	Claimed    int
	FoundAfter int
	GoneAfter  int
	LiveAfter  int
	Failovers  int64
}

// runRingChaosScenario claims keys across the ring, kills replica `victim`
// mid-epoch, and reads everything back through the survivors.
func runRingChaosScenario(t *testing.T, seed int64, victim ReplicaID) ringChaosOutcome {
	t.Helper()
	// Short replica leases so failover convergence is test-fast: one lease
	// cycle = TTL + suspect window = 200ms.
	c := startRingChaosCluster(t, 100*time.Millisecond, 100*time.Millisecond)

	// Deterministic per-seed key set (spread, not sequential, so every shard
	// owns some).
	const keys = 200
	ids := make([]dataset.SampleID, keys)
	for i := range ids {
		ids[i] = dataset.SampleID(seed*10_000 + int64(i)*7)
	}
	out := ringChaosOutcome{}
	for _, id := range ids {
		ok, err := c.s.Claim(id, 1)
		if err != nil || !ok {
			t.Fatalf("seed %d: pre-crash claim(%d): %v/%v", seed, id, ok, err)
		}
		out.Claimed++
	}
	victimView := c.s.View()
	deadShard := make(map[dataset.SampleID]bool)
	for _, id := range ids {
		if r, _ := victimView.Owner(id); r == victim {
			deadShard[id] = true
		}
	}
	if len(deadShard) == 0 {
		t.Fatalf("seed %d: victim replica %d owned no keys", seed, victim)
	}

	// Kill one replica mid-epoch: hard close, connections die.
	c.srvs[victim].Close()

	// Every key must still answer without error: dead-shard keys fail over
	// to a survivor (which never saw the claim, so clean "unowned");
	// surviving shards are untouched.
	for _, id := range ids {
		_, found, err := c.s.Lookup(id)
		if err != nil {
			t.Fatalf("seed %d: post-crash lookup(%d) errored: %v", seed, id, err)
		}
		if found != !deadShard[id] {
			t.Fatalf("seed %d: post-crash lookup(%d): found=%v, deadShard=%v",
				seed, id, found, deadShard[id])
		}
		if found {
			out.FoundAfter++
		} else {
			out.GoneAfter++
		}
	}
	// Conservation: every request got exactly one answer.
	if out.FoundAfter+out.GoneAfter != out.Claimed {
		t.Fatalf("seed %d: answers %d+%d != requests %d",
			seed, out.FoundAfter, out.GoneAfter, out.Claimed)
	}
	// The batch path agrees with the serial path post-crash.
	owners, err := c.s.LookupBatch(ids)
	if err != nil {
		t.Fatalf("seed %d: post-crash LookupBatch: %v", seed, err)
	}
	for i, o := range owners {
		if o.Found == deadShard[ids[i]] {
			t.Fatalf("seed %d: batch[%d]=%+v disagrees with deadShard=%v",
				seed, i, o, deadShard[ids[i]])
		}
	}
	// New claims on dead shards land on survivors and serve on.
	reclaim := ids[:20]
	for _, id := range reclaim {
		if ok, err := c.s.Claim(id, 2); err != nil {
			t.Fatalf("seed %d: post-crash claim(%d): %v", seed, id, err)
		} else if deadShard[id] && !ok {
			t.Fatalf("seed %d: post-crash claim(%d) on failed-over shard denied", seed, id)
		}
	}

	st := c.s.Ring()
	if st.LiveReplicas != 2 {
		t.Fatalf("seed %d: client sees %d live replicas after crash, want 2", seed, st.LiveReplicas)
	}
	if st.Failovers < 1 {
		t.Fatalf("seed %d: no client failover recorded", seed)
	}
	out.LiveAfter = st.LiveReplicas
	out.Failovers = st.Failovers

	// Server-side: within one lease cycle (TTL + suspect window, plus
	// exchange slack) the survivors' views converge to exclude the victim.
	survivors := []ReplicaID{}
	for r := ReplicaID(0); r < 3; r++ {
		if r != victim {
			survivors = append(survivors, r)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	leaseCycle := 200 * time.Millisecond
	start := time.Now()
	for {
		for _, r := range survivors {
			c.srvs[r].ExchangeRing()
		}
		converged := true
		for _, r := range survivors {
			v := c.srvs[r].ReplicaView()
			if v.Contains(victim) || len(v.Replicas) != 2 {
				converged = false
			}
		}
		if converged {
			break
		}
		if time.Now().After(deadline) {
			for _, r := range survivors {
				t.Logf("replica %d view: %+v", r, c.srvs[r].ReplicaView())
			}
			t.Fatalf("seed %d: survivor views did not converge within %v (one lease cycle %v + slack)",
				seed, 2*time.Second, leaseCycle)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if waited := time.Since(start); waited > 10*leaseCycle {
		// Soft sanity bound: convergence should be lease-paced, not minutes.
		t.Logf("seed %d: convergence took %v (lease cycle %v)", seed, waited, leaseCycle)
	}
	// Survivors still serve through the converged ring.
	for _, r := range survivors {
		cl := dialDir(t, c.addrs[r])
		if _, _, err := cl.Lookup(ids[0]); err != nil {
			t.Fatalf("seed %d: survivor %d not serving after convergence: %v", seed, r, err)
		}
	}
	return out
}

// TestChaosRingReplicaCrash is the dkv acceptance gate: under 3 seeds, kill
// one of three replicas mid-epoch and pin survivor service, in-call
// failover, conservation, lease-paced server-side convergence, and
// repeated-run determinism.
func TestChaosRingReplicaCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short")
	}
	for i, seed := range []int64{1, 42, 1337} {
		seed, victim := seed, ReplicaID(i%3)
		t.Run(fmt.Sprintf("seed=%d/victim=%d", seed, victim), func(t *testing.T) {
			defer leakcheck.Check(t)
			first := runRingChaosScenario(t, seed, victim)
			again := runRingChaosScenario(t, seed, victim)
			if !reflect.DeepEqual(first, again) {
				t.Fatalf("rerun diverged:\nfirst: %+v\nagain: %+v", first, again)
			}
		})
	}
}

package dkv

import (
	"fmt"
	"testing"
	"time"

	"icache/internal/dataset"
	"icache/internal/simclock"
)

// BenchmarkDirSharded measures how directory lookup throughput scales with
// the number of shards, in SIMULATED time: this container has one CPU, so
// real parallelism cannot show a partitioning win — instead each replica is
// a simclock.Resource (a FIFO server with a fixed per-RPC cost plus a
// per-key cost, the shape of a real dkv process whose CPU is dominated by
// per-key hash/lease work), 100 nodes drive closed-loop LookupBatch(16)
// traffic through a real ShardedDir, and throughput is total lookups over
// the virtual makespan (the drain time of the busiest replica).
//
// With one shard every RPC serializes on one resource; with N shards
// rendezvous routing splits each batch across N resources that drain
// concurrently, so simlookups/sec should scale near-linearly (the per-RPC
// cost of the extra sub-batches is the non-ideal part). `make bench-dir`
// archives the three curves to BENCH_dir.json.

// Cost model: per-key work dominates (hash probe, lease check, owner
// encode); framing/dispatch overhead is small but charged per sub-batch,
// which is exactly the cost fan-out adds.
const (
	benchPerRPC = 5 * time.Microsecond
	benchPerKey = 10 * time.Microsecond
)

// meteredDir wraps one in-process replica with a virtual-time FIFO meter.
// The driver deposits each request's arrival time in *arrival before the
// ShardedDir call; every sub-batch the router sends here is served FIFO on
// this replica's resource, and the latest completion lands in *done.
type meteredDir struct {
	Local
	res     *simclock.Resource
	arrival *simclock.Time
	done    *simclock.Time
}

func (m *meteredDir) LookupBatch(ids []dataset.SampleID) ([]Owner, error) {
	cost := benchPerRPC + time.Duration(len(ids))*benchPerKey
	if _, end := m.res.Acquire(*m.arrival, cost); end > *m.done {
		*m.done = end
	}
	return m.Local.LookupBatch(ids)
}

func (m *meteredDir) Lookup(id dataset.SampleID) (NodeID, bool, error) {
	if _, end := m.res.Acquire(*m.arrival, benchPerRPC+benchPerKey); end > *m.done {
		*m.done = end
	}
	return m.Local.Lookup(id)
}

func BenchmarkDirSharded(b *testing.B) {
	const (
		nodes     = 100
		rounds    = 50
		batchSize = 16
	)
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var tput float64
			for iter := 0; iter < b.N; iter++ {
				var arrival, done simclock.Time
				resources := make([]*simclock.Resource, shards)
				replicas := make(map[ReplicaID]Service, shards)
				for r := 0; r < shards; r++ {
					resources[r] = &simclock.Resource{}
					replicas[ReplicaID(r)] = &meteredDir{
						Local:   Local{Dir: NewDirectory()},
						res:     resources[r],
						arrival: &arrival,
						done:    &done,
					}
				}
				s := NewShardedDir(replicas, ShardedConfig{
					Clock: func() simclock.Time { return arrival },
				})

				// Seed ownership through the router (placement = routing), then
				// zero the meters so only the lookup traffic is measured.
				for id := dataset.SampleID(0); id < nodes*batchSize; id++ {
					if ok, err := s.Claim(id, NodeID(int64(id)%nodes)); err != nil || !ok {
						b.Fatalf("seed claim(%d): %v/%v", id, ok, err)
					}
				}
				for _, r := range resources {
					r.Reset()
				}

				// Closed-loop workload: each node's next mini-batch departs when
				// its previous one completes (lookup latency gates the training
				// step, exactly the iCache serving path).
				next := make([]simclock.Time, nodes)
				batch := make([]dataset.SampleID, batchSize)
				for round := 0; round < rounds; round++ {
					for n := 0; n < nodes; n++ {
						for i := range batch {
							batch[i] = dataset.SampleID((n*batchSize + i + round*7) % (nodes * batchSize))
						}
						arrival, done = next[n], next[n]
						owners, err := s.LookupBatch(batch)
						if err != nil {
							b.Fatal(err)
						}
						if len(owners) != batchSize {
							b.Fatalf("router returned %d owners for %d ids", len(owners), batchSize)
						}
						next[n] = done
					}
				}

				var makespan simclock.Time
				for _, r := range resources {
					if r.BusyUntil() > makespan {
						makespan = r.BusyUntil()
					}
				}
				tput = float64(nodes*rounds*batchSize) / makespan.Seconds()
			}
			b.ReportMetric(tput, "simlookups/sec")
		})
	}
}

// Package dkv implements the distributed key-value directory of the paper's
// §III-E: a store shared by all training nodes that records, for every
// cached data item, which node holds it. Cached items are not duplicated
// across nodes, so ownership is exclusive: the first node to claim an item
// owns it until it releases the claim (e.g. on eviction).
package dkv

import (
	"sync"

	"icache/internal/dataset"
)

// NodeID identifies a cache node in a distributed deployment.
type NodeID int

// Directory maps sample IDs to owning nodes. It is safe for concurrent use:
// in a real deployment this is a shared service (the paper suggests a
// distributed KV store); here it is an in-process equivalent with the same
// first-claim-wins semantics.
type Directory struct {
	mu     sync.RWMutex
	owner  map[dataset.SampleID]NodeID
	claims int64
	denied int64
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{owner: make(map[dataset.SampleID]NodeID)}
}

// Lookup reports which node owns id, if any.
func (d *Directory) Lookup(id dataset.SampleID) (NodeID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n, ok := d.owner[id]
	return n, ok
}

// Claim registers node as the owner of id. It reports whether the claim
// succeeded; a claim on an item owned by another node fails (no
// duplication), while re-claiming one's own item succeeds idempotently.
func (d *Directory) Claim(id dataset.SampleID, node NodeID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if cur, ok := d.owner[id]; ok {
		if cur == node {
			return true
		}
		d.denied++
		return false
	}
	d.owner[id] = node
	d.claims++
	return true
}

// Release removes node's ownership of id. Releasing an item the node does
// not own is a no-op returning false, so eviction races are harmless.
func (d *Directory) Release(id dataset.SampleID, node NodeID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if cur, ok := d.owner[id]; !ok || cur != node {
		return false
	}
	delete(d.owner, id)
	return true
}

// Len reports the number of owned items.
func (d *Directory) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.owner)
}

// Stats reports cumulative successful claims and denied (conflicting)
// claims.
func (d *Directory) Stats() (claims, denied int64) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.claims, d.denied
}

// Service is the fallible directory contract shared by the in-process
// Directory (via Local), the network DirClient, and fault-injecting
// wrappers (faults.Dir). Cache nodes program against this interface so a
// deployment can swap the directory transport — and tests can make it
// unreliable — without touching cache code.
type Service interface {
	Lookup(id dataset.SampleID) (NodeID, bool, error)
	Claim(id dataset.SampleID, node NodeID) (bool, error)
	Release(id dataset.SampleID, node NodeID) (bool, error)
	Len() (int, error)
}

// Local adapts an in-process Directory to the fallible Service contract
// (its operations never fail).
type Local struct{ Dir *Directory }

// Lookup reports which node owns id, if any.
func (l Local) Lookup(id dataset.SampleID) (NodeID, bool, error) {
	n, ok := l.Dir.Lookup(id)
	return n, ok, nil
}

// Claim registers node as the owner of id (first claim wins).
func (l Local) Claim(id dataset.SampleID, node NodeID) (bool, error) {
	return l.Dir.Claim(id, node), nil
}

// Release removes node's ownership of id.
func (l Local) Release(id dataset.SampleID, node NodeID) (bool, error) {
	return l.Dir.Release(id, node), nil
}

// Len reports the number of owned items.
func (l Local) Len() (int, error) { return l.Dir.Len(), nil }

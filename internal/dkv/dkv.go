// Package dkv implements the distributed key-value directory of the paper's
// §III-E: a store shared by all training nodes that records, for every
// cached data item, which node holds it. Cached items are not duplicated
// across nodes, so ownership is exclusive: the first node to claim an item
// owns it until it releases the claim (e.g. on eviction).
package dkv

import (
	"sync"
	"time"

	"icache/internal/dataset"
	"icache/internal/metrics"
	"icache/internal/obs"
	"icache/internal/simclock"
)

// NodeID identifies a cache node in a distributed deployment.
type NodeID int

// Directory maps sample IDs to owning nodes and tracks node liveness
// through TTL leases (see membership.go). It is safe for concurrent use: in
// a real deployment this is a shared service (the paper suggests a
// distributed KV store); here it is an in-process equivalent with the same
// first-claim-wins semantics.
type Directory struct {
	mu     sync.Mutex
	owner  map[dataset.SampleID]NodeID
	claims int64
	denied int64

	// Membership state (see membership.go). The clock defaults to wall time
	// since construction; simulations install a virtual clock.
	nodes         map[NodeID]*lease
	clock         func() simclock.Time
	start         time.Time
	defaultTTL    time.Duration
	suspectWindow time.Duration
	ms            metrics.MembershipStats

	// journal, when set, receives membership-flip events (see SetJournal).
	journal *obs.Journal
}

// SetJournal installs a control-plane event journal: every observed
// Live/Suspect/Dead transition and revival is appended as an
// obs.EventMembership event. nil = off (the default).
func (d *Directory) SetJournal(j *obs.Journal) {
	d.mu.Lock()
	d.journal = j
	d.mu.Unlock()
}

// NewDirectory returns an empty directory with default membership timing.
func NewDirectory() *Directory {
	return &Directory{
		owner:         make(map[dataset.SampleID]NodeID),
		nodes:         make(map[NodeID]*lease),
		start:         time.Now(),
		defaultTTL:    DefaultLeaseTTL,
		suspectWindow: DefaultSuspectWindow,
	}
}

// Lookup reports which node owns id, if any. It is liveness-aware: an entry
// owned by a Dead node is never routed to — the entry is purged on sight
// (counted in MembershipStats.Purged) and the lookup reports "unowned", so
// the caller goes to the backend and may claim the sample fresh.
func (d *Directory) Lookup(id dataset.SampleID) (NodeID, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n, ok := d.owner[id]
	if !ok {
		return 0, false
	}
	now := d.now()
	d.syncStates(now)
	if d.stateOf(n, now) == NodeDead {
		delete(d.owner, id)
		d.ms.Purged++
		return 0, false
	}
	return n, true
}

// Owner is one LookupBatch result: the owning node, when Found.
type Owner struct {
	Node  NodeID
	Found bool
}

// LookupBatch resolves the owners of many ids under one lock acquisition,
// aligned with ids (out[i] answers ids[i]). It is liveness-aware exactly
// like Lookup: entries owned by Dead nodes are purged on sight and
// reported unowned. One batched call is semantically identical to len(ids)
// serial Lookups at the same instant — the batch exists so the miss path
// and the anti-entropy scrubber pay one directory round trip per
// mini-batch instead of one per sample.
func (d *Directory) LookupBatch(ids []dataset.SampleID) []Owner {
	out := make([]Owner, len(ids))
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.now()
	d.syncStates(now)
	for i, id := range ids {
		n, ok := d.owner[id]
		if !ok {
			continue
		}
		if d.stateOf(n, now) == NodeDead {
			delete(d.owner, id)
			d.ms.Purged++
			continue
		}
		out[i] = Owner{Node: n, Found: true}
	}
	return out
}

// Claim registers node as the owner of id. It reports whether the claim
// succeeded; a claim on an item owned by another Live (or Suspect) node
// fails (no duplication), re-claiming one's own item succeeds idempotently,
// and an item owned by a Dead node is reclaimable: the first claimer wins
// the transfer (counted in MembershipStats.Reclaims).
func (d *Directory) Claim(id dataset.SampleID, node NodeID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if cur, ok := d.owner[id]; ok {
		if cur == node {
			return true
		}
		now := d.now()
		d.syncStates(now)
		if d.stateOf(cur, now) == NodeDead {
			d.owner[id] = node
			d.ms.Reclaims++
			d.claims++
			return true
		}
		d.denied++
		return false
	}
	d.owner[id] = node
	d.claims++
	return true
}

// Release removes node's ownership of id. Releasing an item the node does
// not own is a no-op returning false, so eviction races are harmless.
func (d *Directory) Release(id dataset.SampleID, node NodeID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if cur, ok := d.owner[id]; !ok || cur != node {
		return false
	}
	delete(d.owner, id)
	return true
}

// Len reports the number of owned items.
func (d *Directory) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.owner)
}

// Stats reports cumulative successful claims and denied (conflicting)
// claims.
func (d *Directory) Stats() (claims, denied int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.claims, d.denied
}

// Service is the fallible directory contract shared by the in-process
// Directory (via Local), the network DirClient, and fault-injecting
// wrappers (faults.Dir). Cache nodes program against this interface so a
// deployment can swap the directory transport — and tests can make it
// unreliable — without touching cache code. It spans both the data path
// (Lookup/Claim/Release/Len) and the node-lifecycle path
// (Register/Heartbeat/ListNodes/OwnedBy/PurgeDead).
type Service interface {
	Lookup(id dataset.SampleID) (NodeID, bool, error)
	// LookupBatch resolves many ids in one directory operation (one wire
	// round trip for DirClient), aligned with ids. Liveness-aware like
	// Lookup.
	LookupBatch(ids []dataset.SampleID) ([]Owner, error)
	Claim(id dataset.SampleID, node NodeID) (bool, error)
	Release(id dataset.SampleID, node NodeID) (bool, error)
	Len() (int, error)

	// Register grants node a lease (ttl <= 0 selects the directory default).
	Register(node NodeID, ttl time.Duration) (NodeInfo, error)
	// Heartbeat renews node's lease; renewed == false means the lease
	// already lapsed and the node must Register again and reconcile.
	Heartbeat(node NodeID) (renewed bool, err error)
	// ListNodes reports every registered node's membership state.
	ListNodes() ([]NodeInfo, error)
	// OwnedBy reports up to max of node's directory entries (sorted).
	OwnedBy(node NodeID, max int) ([]dataset.SampleID, error)
	// PurgeDead garbage-collects up to max Dead-owned entries.
	PurgeDead(max int) (int, error)
}

// Local adapts an in-process Directory to the fallible Service contract
// (its operations never fail).
type Local struct{ Dir *Directory }

// Lookup reports which node owns id, if any.
func (l Local) Lookup(id dataset.SampleID) (NodeID, bool, error) {
	n, ok := l.Dir.Lookup(id)
	return n, ok, nil
}

// LookupBatch resolves many ids under one directory lock acquisition.
func (l Local) LookupBatch(ids []dataset.SampleID) ([]Owner, error) {
	return l.Dir.LookupBatch(ids), nil
}

// Claim registers node as the owner of id (first claim wins).
func (l Local) Claim(id dataset.SampleID, node NodeID) (bool, error) {
	return l.Dir.Claim(id, node), nil
}

// Release removes node's ownership of id.
func (l Local) Release(id dataset.SampleID, node NodeID) (bool, error) {
	return l.Dir.Release(id, node), nil
}

// Len reports the number of owned items.
func (l Local) Len() (int, error) { return l.Dir.Len(), nil }

// Register grants node a lease.
func (l Local) Register(node NodeID, ttl time.Duration) (NodeInfo, error) {
	return l.Dir.Register(node, ttl), nil
}

// Heartbeat renews node's lease.
func (l Local) Heartbeat(node NodeID) (bool, error) {
	return l.Dir.HeartbeatNode(node), nil
}

// ListNodes reports every registered node's membership state.
func (l Local) ListNodes() ([]NodeInfo, error) { return l.Dir.ListNodes(), nil }

// OwnedBy reports up to max of node's directory entries.
func (l Local) OwnedBy(node NodeID, max int) ([]dataset.SampleID, error) {
	return l.Dir.OwnedBy(node, max), nil
}

// PurgeDead garbage-collects up to max Dead-owned entries.
func (l Local) PurgeDead(max int) (int, error) { return l.Dir.PurgeDead(max), nil }

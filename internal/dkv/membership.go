package dkv

import (
	"sort"
	"time"

	"icache/internal/dataset"
	"icache/internal/metrics"
	"icache/internal/obs"
	"icache/internal/simclock"
)

// Lease-based membership for the shared directory (§III-E grown to survive
// node death). A cache node registers with a TTL lease and renews it with
// heartbeats; a node whose lease lapses transitions Live → Suspect (still
// routable: it may just be slow to heartbeat) and, once the suspect window
// also lapses, Suspect → Dead. Lookups never route to a Dead node, Claim
// treats a Dead node's entry as reclaimable (first claimer wins), and a
// bounded PurgeDead sweep garbage-collects whatever nobody reclaims.
//
// Nodes that never register — the legacy static-membership deployments and
// the pre-lifecycle test suites — are treated as permanently Live, so lease
// semantics are strictly opt-in.

// NodeState is a node's liveness as derived from its lease.
type NodeState uint8

const (
	// NodeLive means the node's lease is current (or the node never
	// registered, i.e. legacy static membership).
	NodeLive NodeState = iota
	// NodeSuspect means the lease expired less than the suspect window ago:
	// the node is still routed to, but its next heartbeat will be rejected
	// and it must re-register.
	NodeSuspect
	// NodeDead means the lease expired more than the suspect window ago:
	// the node is never routed to and its directory entries are reclaimable.
	NodeDead
)

// String implements fmt.Stringer.
func (s NodeState) String() string {
	switch s {
	case NodeLive:
		return "live"
	case NodeSuspect:
		return "suspect"
	case NodeDead:
		return "dead"
	default:
		return "unknown"
	}
}

// NodeInfo describes one registered node's membership state. ExpiresIn is
// the lease time remaining relative to the directory's clock (negative once
// the lease has lapsed), so it transports cleanly between machines whose
// clocks disagree.
type NodeInfo struct {
	ID        NodeID
	State     NodeState
	ExpiresIn time.Duration
}

// Membership timing defaults. DefaultLeaseTTL is deliberately much longer
// than a heartbeat interval (a healthy node renews several times per TTL)
// and DefaultSuspectWindow gives a slow node one extra TTL of routability
// before its entries become reclaimable.
const (
	DefaultLeaseTTL      = 10 * time.Second
	DefaultSuspectWindow = DefaultLeaseTTL
)

// lease is one registered node's lease record.
type lease struct {
	ttl     time.Duration
	expires simclock.Time
	state   NodeState // last observed state, for transition counting
}

// SetClock installs the directory's time source. The directory defaults to
// wall-clock time measured from construction; simulations install a
// virtual-clock reader so lease expiry is deterministic. Must be called
// before any membership operation.
func (d *Directory) SetClock(fn func() simclock.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.clock = fn
}

// SetMembershipParams overrides the default lease TTL (used when Register
// is called with ttl <= 0) and the suspect window. Non-positive values keep
// the current settings.
func (d *Directory) SetMembershipParams(defaultTTL, suspectWindow time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if defaultTTL > 0 {
		d.defaultTTL = defaultTTL
	}
	if suspectWindow > 0 {
		d.suspectWindow = suspectWindow
	}
}

// now reads the directory clock (mu held).
func (d *Directory) now() simclock.Time {
	if d.clock == nil {
		return simclock.Time(time.Since(d.start))
	}
	return d.clock()
}

// stateAt derives a lease's state at the given time. A lease is valid for
// the half-open window [grant, grant+ttl): a heartbeat arriving exactly at
// expiry is too late.
func (l *lease) stateAt(now simclock.Time, suspectWindow time.Duration) NodeState {
	switch {
	case now < l.expires:
		return NodeLive
	case now < l.expires+suspectWindow:
		return NodeSuspect
	default:
		return NodeDead
	}
}

// stateOf reports node's current state (mu held). Unregistered nodes are
// permanently Live (legacy static membership).
func (d *Directory) stateOf(node NodeID, now simclock.Time) NodeState {
	l, ok := d.nodes[node]
	if !ok {
		return NodeLive
	}
	return l.stateAt(now, d.suspectWindow)
}

// syncStates records Live→Suspect→Dead transitions in the membership
// counters (mu held). Derived state makes transitions observable only when
// someone looks, so every public membership/data operation calls this first.
func (d *Directory) syncStates(now simclock.Time) {
	for id, l := range d.nodes {
		st := l.stateAt(now, d.suspectWindow)
		if st == l.state {
			continue
		}
		// A node can be observed to have jumped Live→Dead in one step (no
		// operation happened during its suspect window); count both edges so
		// Suspects ≥ Deaths always holds.
		if l.state == NodeLive && st != NodeLive {
			d.ms.Suspects++
		}
		if st == NodeDead {
			d.ms.Deaths++
		}
		d.journal.Add(obs.EventMembership, int64(id), int64(l.state), int64(st),
			l.state.String()+"→"+st.String())
		l.state = st
	}
}

// Register grants (or re-grants) node a lease of the given TTL; ttl <= 0
// selects the directory default. Registration always succeeds and revives a
// Suspect or Dead node to Live — but any entries already reclaimed by other
// nodes stay reclaimed, so a rejoining node must re-claim its contents (see
// the scrubber) rather than assume old ownership.
func (d *Directory) Register(node NodeID, ttl time.Duration) NodeInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.now()
	d.syncStates(now)
	if ttl <= 0 {
		ttl = d.defaultTTL
	}
	l, ok := d.nodes[node]
	if !ok {
		l = &lease{}
		d.nodes[node] = l
	} else if l.state != NodeLive {
		d.ms.Revivals++
		d.journal.Add(obs.EventMembership, int64(node), int64(l.state), int64(NodeLive),
			l.state.String()+"→live (revival)")
	}
	l.ttl = ttl
	l.expires = now + ttl
	l.state = NodeLive
	d.ms.Registers++
	return NodeInfo{ID: node, State: NodeLive, ExpiresIn: ttl}
}

// HeartbeatNode renews node's lease. It reports false — without renewing —
// when the node has no current lease: never registered, or the lease
// already lapsed (a heartbeat arriving exactly at the TTL boundary is too
// late). A false return tells the node to Register again and reconcile its
// ownership, because its entries may have been reclaimed in the meantime.
func (d *Directory) HeartbeatNode(node NodeID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.now()
	d.syncStates(now)
	l, ok := d.nodes[node]
	if !ok || l.state != NodeLive {
		d.ms.HeartbeatRejects++
		return false
	}
	l.expires = now + l.ttl
	d.ms.Heartbeats++
	return true
}

// ListNodes reports every registered node's state, sorted by ID.
func (d *Directory) ListNodes() []NodeInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.now()
	d.syncStates(now)
	out := make([]NodeInfo, 0, len(d.nodes))
	for id, l := range d.nodes {
		out = append(out, NodeInfo{ID: id, State: l.state, ExpiresIn: time.Duration(l.expires - now)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// OwnedBy reports up to max sample IDs currently owned by node, sorted for
// determinism; max <= 0 means all. The scrubber uses it to find directory
// entries that no longer match cache contents.
func (d *Directory) OwnedBy(node NodeID, max int) []dataset.SampleID {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []dataset.SampleID
	for id, owner := range d.owner {
		if owner == node {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// PurgeDead removes up to max directory entries owned by Dead nodes (max <=
// 0 means all), in sorted order for determinism, and reports how many were
// removed. It is the anti-entropy backstop for entries nobody reclaims on
// the demand path.
func (d *Directory) PurgeDead(max int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.now()
	d.syncStates(now)
	var doomed []dataset.SampleID
	for id, owner := range d.owner {
		if d.stateOf(owner, now) == NodeDead {
			doomed = append(doomed, id)
		}
	}
	sort.Slice(doomed, func(i, j int) bool { return doomed[i] < doomed[j] })
	if max > 0 && len(doomed) > max {
		doomed = doomed[:max]
	}
	for _, id := range doomed {
		delete(d.owner, id)
	}
	d.ms.Purged += int64(len(doomed))
	return len(doomed)
}

// Membership reports the directory-side membership counters.
func (d *Directory) Membership() metrics.MembershipStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.syncStates(d.now())
	return d.ms
}

package dkv

// This file is the directory service's overload-control wiring, mirroring
// the rpc layer's: an optional admission gate on the DATA operations
// (lookup/claim/release/batch lookup), a deadline envelope so a cache
// node's remaining request budget propagates into its directory lookups,
// and a client-side circuit breaker + per-RPC deadline so a hung or dead
// directory costs a bounded stall before the caller degrades to
// local-only operation.
//
// Liveness traffic (register, heartbeat) and ring gossip are deliberately
// NEVER gated: shedding heartbeats during overload would turn a busy
// directory into a false mass-death event, which is strictly worse than
// the load it sheds.

import (
	"errors"
	"fmt"
	"net"
	"time"

	"icache/internal/dataset"
	"icache/internal/overload"
	"icache/internal/wire"
)

// opDeadline wraps a directory request in a deadline envelope:
//
//	u8(opDeadline) | i64(remaining budget, nanos) | inner request bytes
//
// The budget is the REMAINING time the sender had when it encoded the
// frame (no cross-node clock agreement needed). Nested envelopes are
// rejected. It composes with the trace envelope in either order.
const opDeadline = 14

// Overload response statuses (extending statusOK/statusErr in net.go).
const (
	// statusRetryAfter rejects a shed request; the body carries an i64
	// backoff hint in nanoseconds.
	statusRetryAfter = 2
	// statusExpired drops a request whose deadline budget was already
	// spent on arrival. Empty body.
	statusExpired = 3
)

// ErrDirExpired wraps overload.ErrExpired for directory round trips the
// server dropped as expired.
var errDirExpired = fmt.Errorf("dkv: server dropped expired request: %w", overload.ErrExpired)

// dirDataOp reports whether op is a data-plane operation the admission
// gate covers. Liveness (register/heartbeat), introspection, and ring
// gossip always pass.
func dirDataOp(op byte) bool {
	switch op {
	case opLookup, opLookupBatch, opClaim, opRelease:
		return true
	}
	return false
}

// SetAdmission installs an admission gate on the directory server's data
// operations. Must be called before Serve. nil disables gating.
func (s *DirServer) SetAdmission(g *overload.Gate) { s.gate = g }

// Admission reports the installed gate (nil when disabled).
func (s *DirServer) Admission() *overload.Gate { return s.gate }

// SetRPCTimeout bounds every directory round trip (applied per attempt as
// a connection deadline). <= 0 leaves round trips unbounded, the historic
// behavior. Call before the client is shared across goroutines.
func (c *DirClient) SetRPCTimeout(d time.Duration) {
	c.mu.Lock()
	c.rpcTimeout = d
	c.mu.Unlock()
}

// SetBreaker installs a circuit breaker on the directory client: after
// cfg.Threshold consecutive transport failures the client fails fast
// (overload.ErrBreakerOpen) without touching the network until a
// half-open probe succeeds. Call before the client is shared across
// goroutines. A nil receiver-side breaker (never calling SetBreaker)
// keeps the historic always-try behavior.
func (c *DirClient) SetBreaker(cfg overload.BreakerConfig) {
	c.mu.Lock()
	c.breaker = overload.NewBreaker(cfg)
	c.mu.Unlock()
}

// BreakerStats snapshots the directory client's breaker counters (zero
// value when no breaker is installed).
func (c *DirClient) BreakerStats() overload.BreakerStats {
	c.mu.Lock()
	b := c.breaker
	c.mu.Unlock()
	if b == nil {
		return overload.BreakerStats{}
	}
	return b.Stats()
}

// LookupBatchDeadline is LookupBatch bounded by the caller's deadline: the
// remaining budget rides a deadline envelope (the directory drops the
// lookup server-side once it is unservable) and the local wait is cut off
// at the same instant. A zero deadline is plain LookupBatch. It implements
// the optional interface the rpc layer probes for when forwarding
// deadline-bounded batched directory lookups.
func (c *DirClient) LookupBatchDeadline(ids []dataset.SampleID, dl time.Time) ([]Owner, error) {
	if dl.IsZero() {
		return c.LookupBatch(ids)
	}
	if len(ids) == 0 {
		return nil, nil
	}
	budget := time.Until(dl)
	if budget <= 0 {
		return nil, errDirExpired
	}
	var e wire.Buffer
	e.U8(opDeadline)
	e.I64(int64(budget))
	e.U8(opLookupBatch)
	e.U32(uint32(len(ids)))
	for _, id := range ids {
		e.I64(int64(id))
	}
	d, err := c.roundTripDeadline(e.B, dl)
	if err != nil {
		return nil, err
	}
	return decodeLookupBatchResponse(d, len(ids))
}

// dirBreakerOutcomeOK maps one round-trip result to directory health: any
// decoded response — including an application error, a shed, or an expiry
// drop — proves the server is alive; only transport-level failures and
// local timeouts count against the breaker. (ErrBreakerOpen never reaches
// here: a fast-fail skips the round trip and its Report.)
func dirBreakerOutcomeOK(err error) bool {
	if err == nil {
		return true
	}
	var se *ServerError
	if errors.As(err, &se) {
		return true
	}
	var ra *overload.RetryAfterError
	return errors.As(err, &ra) || errors.Is(err, overload.ErrExpired)
}

// isTimeoutErr reports whether err carries a net.Error timeout anywhere in
// its chain (a SetDeadline expiry on the directory connection).
func isTimeoutErr(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

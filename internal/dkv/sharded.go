package dkv

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"icache/internal/dataset"
	"icache/internal/obs"
	"icache/internal/simclock"
)

// ShardedDir is the replica-aware directory client: it satisfies the
// fallible Service contract over N replica Services (network DirClients in
// a deployment, in-process Locals in the simulation, fault-wrapped Dirs in
// chaos tests), routing every data operation to the rendezvous owner of
// the sample's shard and fanning membership operations out to every live
// replica.
//
// Failover is client-observed and lease-paced, reusing the membership
// timing model of PR 3: a replica whose operation fails at the transport
// level is marked down, the ring view's epoch is bumped (its shards remap
// to survivors — rendezvous hashing moves only the dead replica's keys),
// and the failed operation retries against the new shard owner in the same
// call. A down replica re-enters the ring after FailoverTTL (one lease
// cycle), so a restarted replica is re-probed — and re-populated by the
// nodes' heartbeat/reregister/scrub machinery — without operator action.
//
// An operation only fails outward when a shard has NO live holder, which
// under rendezvous hashing means every replica is down; callers treat that
// exactly like the old single-directory outage (degraded local-only mode).
//
// ShardedDir is safe for concurrent use: the view and health state are
// mutex-guarded, and replica calls happen outside the lock.
type ShardedDir struct {
	cfg ShardedConfig

	mu       sync.Mutex
	replicas map[ReplicaID]Service
	view     RingView
	downTil  map[ReplicaID]simclock.Time // reprobe deadlines for down replicas
	start    time.Time                   // wall epoch for the default clock
	stats    RingStats
}

// ShardedConfig tunes a ShardedDir.
type ShardedConfig struct {
	// FailoverTTL is how long a failed replica stays out of the ring before
	// it is re-probed (one lease cycle). Zero selects DefaultLeaseTTL.
	FailoverTTL time.Duration
	// Clock supplies the time base for reprobe deadlines. Nil selects wall
	// time since construction; simulations install a virtual-clock reader so
	// failover timing is deterministic.
	Clock func() simclock.Time
}

// RingStats counts client-observed ring events. Like MembershipStats these
// are observability counters, not part of the conservation invariant.
type RingStats struct {
	Epoch        uint64 // current view epoch
	LiveReplicas int    // gauge: replicas currently in the view
	Failovers    int64  // replicas marked down after a failed operation
	Revivals     int64  // down replicas re-admitted after FailoverTTL
	Retries      int64  // operations retried against a new shard owner
}

// ErrNoReplica is returned when a shard has no live holder — every
// configured replica is down. Callers degrade exactly as they would for a
// single unreachable directory.
var ErrNoReplica = errors.New("dkv: no live directory replica for shard")

// NewShardedDir builds a replica-aware directory client over the given
// replica set. The initial view (epoch 1) trusts every configured replica.
func NewShardedDir(replicas map[ReplicaID]Service, cfg ShardedConfig) *ShardedDir {
	if len(replicas) == 0 {
		panic("dkv: NewShardedDir with no replicas")
	}
	if cfg.FailoverTTL <= 0 {
		cfg.FailoverTTL = DefaultLeaseTTL
	}
	ids := make([]ReplicaID, 0, len(replicas))
	for r := range replicas {
		ids = append(ids, r)
	}
	s := &ShardedDir{
		cfg:      cfg,
		replicas: make(map[ReplicaID]Service, len(replicas)),
		view:     NewRingView(1, ids),
		downTil:  make(map[ReplicaID]simclock.Time),
		start:    time.Now(),
	}
	for r, svc := range replicas {
		s.replicas[r] = svc
	}
	return s
}

// DialSharded connects one DirClient per replica address (replica i gets
// ReplicaID i, matching icache-dkv's -replica-id convention) and wraps them
// in a ShardedDir. A single address yields single-shard routing — the
// legacy one-directory deployment expressed in the new shape.
func DialSharded(addrs []string, timeout time.Duration, cfg ShardedConfig) (*ShardedDir, error) {
	replicas := make(map[ReplicaID]Service, len(addrs))
	var clients []*DirClient
	for i, addr := range addrs {
		c, err := DialDir(addr, timeout)
		if err != nil {
			for _, prev := range clients {
				prev.Close()
			}
			return nil, fmt.Errorf("dkv: replica %d: %w", i, err)
		}
		clients = append(clients, c)
		replicas[ReplicaID(i)] = c
	}
	return NewShardedDir(replicas, cfg), nil
}

// Close tears down any replica services that are closable (DirClients).
func (s *ShardedDir) Close() error {
	var first error
	for _, r := range s.replicaIDs() {
		if c, ok := s.replicas[r].(interface{ Close() error }); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// now reads the failover clock.
func (s *ShardedDir) now() simclock.Time {
	if s.cfg.Clock != nil {
		return s.cfg.Clock()
	}
	return simclock.Time(time.Since(s.start))
}

// replicaIDs reports every configured replica, sorted (deterministic walks).
func (s *ShardedDir) replicaIDs() []ReplicaID {
	ids := make([]ReplicaID, 0, len(s.replicas))
	for r := range s.replicas {
		ids = append(ids, r)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// reviveDue re-admits down replicas whose reprobe deadline has passed
// (mu held). Each re-admission bumps the epoch: placement changed.
func (s *ShardedDir) reviveDue(now simclock.Time) {
	if len(s.downTil) == 0 {
		return
	}
	var due []ReplicaID
	for r, til := range s.downTil {
		if now >= til {
			due = append(due, r)
		}
	}
	if len(due) == 0 {
		return
	}
	sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
	live := append([]ReplicaID(nil), s.view.Replicas...)
	for _, r := range due {
		delete(s.downTil, r)
		live = append(live, r)
		s.stats.Revivals++
	}
	s.view = NewRingView(s.view.Epoch+1, live)
}

// markDown removes r from the ring after a failed operation and schedules
// its reprobe one FailoverTTL out. No-op if r is already out (a concurrent
// caller won the race).
func (s *ShardedDir) markDown(r ReplicaID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.view.Contains(r) {
		return
	}
	live := make([]ReplicaID, 0, len(s.view.Replicas)-1)
	for _, x := range s.view.Replicas {
		if x != r {
			live = append(live, x)
		}
	}
	s.view = NewRingView(s.view.Epoch+1, live)
	s.downTil[r] = s.now() + simclock.Time(s.cfg.FailoverTTL)
	s.stats.Failovers++
}

// View reports the current ring view (replica slice copied).
func (s *ShardedDir) View() RingView {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reviveDue(s.now())
	return NewRingView(s.view.Epoch, s.view.Replicas)
}

// Ring reports the client-observed ring counters.
func (s *ShardedDir) Ring() RingStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Epoch = s.view.Epoch
	st.LiveReplicas = len(s.view.Replicas)
	return st
}

// route resolves id's current shard owner and its service. It revives due
// replicas first, so a restarted replica is probed by the next operation
// that routes to one of its shards.
func (s *ShardedDir) route(id dataset.SampleID) (ReplicaID, Service, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reviveDue(s.now())
	r, ok := s.view.Owner(id)
	if !ok {
		return 0, nil, ErrNoReplica
	}
	return r, s.replicas[r], nil
}

// liveServices snapshots the live replica set in sorted order (fan-out ops).
func (s *ShardedDir) liveServices() []ReplicaID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reviveDue(s.now())
	return append([]ReplicaID(nil), s.view.Replicas...)
}

// service reports the Service for r (configured set, independent of view).
func (s *ShardedDir) service(r ReplicaID) Service {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replicas[r]
}

// retried counts one cross-replica retry.
func (s *ShardedDir) retried() {
	s.mu.Lock()
	s.stats.Retries++
	s.mu.Unlock()
}

// doSharded runs one single-sample operation against id's shard owner,
// failing over (mark down, remap, retry in this call) until it succeeds or
// no replica remains. Every directory operation is idempotent, so blind
// cross-replica retry is safe — the same argument that makes DirClient's
// reconnect-retry safe.
func (s *ShardedDir) doSharded(id dataset.SampleID, call func(Service) error) error {
	for attempt := 0; ; attempt++ {
		r, svc, err := s.route(id)
		if err != nil {
			return err
		}
		if err := call(svc); err == nil {
			return nil
		}
		s.markDown(r)
		if attempt > 0 {
			continue
		}
		s.retried()
	}
}

// Lookup reports which node owns id, routed to id's shard holder.
func (s *ShardedDir) Lookup(id dataset.SampleID) (NodeID, bool, error) {
	var node NodeID
	var found bool
	err := s.doSharded(id, func(svc Service) error {
		var err error
		node, found, err = svc.Lookup(id)
		return err
	})
	return node, found, err
}

// LookupTraced routes a traced lookup to id's shard holder, forwarding the
// trace context when the replica's service supports it (DirClient does).
func (s *ShardedDir) LookupTraced(id dataset.SampleID, ctx obs.TraceCtx) (NodeID, bool, error) {
	var node NodeID
	var found bool
	err := s.doSharded(id, func(svc Service) error {
		var err error
		if td, ok := svc.(interface {
			LookupTraced(dataset.SampleID, obs.TraceCtx) (NodeID, bool, error)
		}); ok && ctx.Valid() {
			node, found, err = td.LookupTraced(id, ctx)
		} else {
			node, found, err = svc.Lookup(id)
		}
		return err
	})
	return node, found, err
}

// Claim registers node as the owner of id on id's shard holder.
func (s *ShardedDir) Claim(id dataset.SampleID, node NodeID) (bool, error) {
	var claimed bool
	err := s.doSharded(id, func(svc Service) error {
		var err error
		claimed, err = svc.Claim(id, node)
		return err
	})
	return claimed, err
}

// Release removes node's ownership of id on id's shard holder.
func (s *ShardedDir) Release(id dataset.SampleID, node NodeID) (bool, error) {
	var released bool
	err := s.doSharded(id, func(svc Service) error {
		var err error
		released, err = svc.Release(id, node)
		return err
	})
	return released, err
}

// LookupBatch resolves many ids with ONE call per live shard owner,
// preserving the O(owners) round-trip budget of the batched miss path: the
// batch is grouped by rendezvous owner, each group rides its owner's own
// LookupBatch, and the aligned result is reassembled. A group whose owner
// fails mid-batch fails over — the owner is marked down and the group
// re-groups against the survivors — so one replica crash costs one extra
// round per affected group, never a degraded batch.
func (s *ShardedDir) LookupBatch(ids []dataset.SampleID) ([]Owner, error) {
	return s.lookupBatch(ids, obs.TraceCtx{})
}

// LookupBatchTraced is LookupBatch forwarding a trace context to replicas
// that support it, so a traced request's per-shard directory hops all
// appear in the cross-node chain.
func (s *ShardedDir) LookupBatchTraced(ids []dataset.SampleID, ctx obs.TraceCtx) ([]Owner, error) {
	return s.lookupBatch(ids, ctx)
}

func (s *ShardedDir) lookupBatch(ids []dataset.SampleID, ctx obs.TraceCtx) ([]Owner, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	out := make([]Owner, len(ids))
	pending := make([]int, len(ids))
	for i := range ids {
		pending[i] = i
	}
	for round := 0; len(pending) > 0; round++ {
		s.mu.Lock()
		s.reviveDue(s.now())
		view := s.view
		s.mu.Unlock()
		if len(view.Replicas) == 0 {
			return nil, ErrNoReplica
		}
		// Group the pending positions by shard owner. Owners are walked in
		// sorted order so the call sequence — and therefore any fault
		// schedule keyed on call counts — is deterministic.
		groups := make(map[ReplicaID][]int)
		for _, i := range pending {
			r, _ := view.Owner(ids[i])
			groups[r] = append(groups[r], i)
		}
		owners := make([]ReplicaID, 0, len(groups))
		for r := range groups {
			owners = append(owners, r)
		}
		sort.Slice(owners, func(i, j int) bool { return owners[i] < owners[j] })

		var stillPending []int
		for _, r := range owners {
			idxs := groups[r]
			shard := make([]dataset.SampleID, len(idxs))
			for k, i := range idxs {
				shard[k] = ids[i]
			}
			svc := s.service(r)
			var res []Owner
			var err error
			if td, ok := svc.(interface {
				LookupBatchTraced([]dataset.SampleID, obs.TraceCtx) ([]Owner, error)
			}); ok && ctx.Valid() {
				res, err = td.LookupBatchTraced(shard, ctx)
			} else {
				res, err = svc.LookupBatch(shard)
			}
			if err != nil || len(res) != len(shard) {
				s.markDown(r)
				s.retried()
				stillPending = append(stillPending, idxs...)
				continue
			}
			for k, i := range idxs {
				out[i] = res[k]
			}
		}
		pending = stillPending
	}
	return out, nil
}

// Len reports the total number of owned items across live replicas (shards
// are disjoint, so the sum is exact).
func (s *ShardedDir) Len() (int, error) {
	total := 0
	any := false
	for _, r := range s.liveServices() {
		n, err := s.service(r).Len()
		if err != nil {
			s.markDown(r)
			continue
		}
		total += n
		any = true
	}
	if !any {
		return 0, ErrNoReplica
	}
	return total, nil
}

// Register grants node a lease on EVERY live replica: each replica tracks
// node liveness independently for the shards it holds, so a node must be
// Live everywhere to be routable everywhere. The first successful reply is
// returned; the call fails only when no replica accepted it.
func (s *ShardedDir) Register(node NodeID, ttl time.Duration) (NodeInfo, error) {
	var info NodeInfo
	ok := false
	for _, r := range s.liveServices() {
		in, err := s.service(r).Register(node, ttl)
		if err != nil {
			s.markDown(r)
			continue
		}
		if !ok {
			info = in
			ok = true
		}
	}
	if !ok {
		return NodeInfo{}, ErrNoReplica
	}
	return info, nil
}

// Heartbeat renews node's lease on every live replica. renewed is the AND
// over the replicas that answered: any replica that no longer recognizes
// the lease (e.g. one that just restarted empty) reports false, which sends
// the node down the re-register + reconcile path — and Register's fan-out
// is exactly what repopulates the restarted replica's membership table.
func (s *ShardedDir) Heartbeat(node NodeID) (bool, error) {
	renewed := true
	any := false
	for _, r := range s.liveServices() {
		ok, err := s.service(r).Heartbeat(node)
		if err != nil {
			s.markDown(r)
			continue
		}
		any = true
		renewed = renewed && ok
	}
	if !any {
		return false, ErrNoReplica
	}
	return renewed, nil
}

// ListNodes merges membership across live replicas. A node's state is the
// most-alive state any replica reports: a healthy node heartbeats every
// replica, so disagreement means a replica with stale (or freshly wiped)
// lease state, and routing should trust the replicas that still hold a
// current lease.
func (s *ShardedDir) ListNodes() ([]NodeInfo, error) {
	merged := make(map[NodeID]NodeInfo)
	any := false
	for _, r := range s.liveServices() {
		nodes, err := s.service(r).ListNodes()
		if err != nil {
			s.markDown(r)
			continue
		}
		any = true
		for _, n := range nodes {
			cur, seen := merged[n.ID]
			if !seen || n.State < cur.State || (n.State == cur.State && n.ExpiresIn > cur.ExpiresIn) {
				merged[n.ID] = n
			}
		}
	}
	if !any {
		return nil, ErrNoReplica
	}
	out := make([]NodeInfo, 0, len(merged))
	for _, n := range merged {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// OwnedBy merges node's directory entries across live replicas (each holds
// its own shards' entries), sorted, capped at max (<= 0 means all).
func (s *ShardedDir) OwnedBy(node NodeID, max int) ([]dataset.SampleID, error) {
	var out []dataset.SampleID
	any := false
	for _, r := range s.liveServices() {
		ids, err := s.service(r).OwnedBy(node, max)
		if err != nil {
			s.markDown(r)
			continue
		}
		any = true
		out = append(out, ids...)
	}
	if !any {
		return nil, ErrNoReplica
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out, nil
}

// PurgeDead garbage-collects up to max Dead-owned entries on every live
// replica and reports the total removed.
func (s *ShardedDir) PurgeDead(max int) (int, error) {
	total := 0
	any := false
	for _, r := range s.liveServices() {
		n, err := s.service(r).PurgeDead(max)
		if err != nil {
			s.markDown(r)
			continue
		}
		total += n
		any = true
	}
	if !any {
		return 0, ErrNoReplica
	}
	return total, nil
}

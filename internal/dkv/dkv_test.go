package dkv

import (
	"sync"
	"testing"
)

func TestClaimFirstWins(t *testing.T) {
	d := NewDirectory()
	if !d.Claim(1, 0) {
		t.Fatal("first claim failed")
	}
	if d.Claim(1, 1) {
		t.Fatal("second node stole the claim")
	}
	if !d.Claim(1, 0) {
		t.Fatal("re-claim by owner failed")
	}
	n, ok := d.Lookup(1)
	if !ok || n != 0 {
		t.Fatalf("Lookup = %d,%v, want 0,true", n, ok)
	}
}

func TestReleaseSemantics(t *testing.T) {
	d := NewDirectory()
	d.Claim(1, 0)
	if d.Release(1, 1) {
		t.Fatal("non-owner released")
	}
	if !d.Release(1, 0) {
		t.Fatal("owner release failed")
	}
	if d.Release(1, 0) {
		t.Fatal("double release succeeded")
	}
	if _, ok := d.Lookup(1); ok {
		t.Fatal("released item still owned")
	}
	// After release another node can claim.
	if !d.Claim(1, 1) {
		t.Fatal("claim after release failed")
	}
}

func TestLenAndStats(t *testing.T) {
	d := NewDirectory()
	d.Claim(1, 0)
	d.Claim(2, 1)
	d.Claim(1, 1) // denied
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	claims, denied := d.Stats()
	if claims != 2 || denied != 1 {
		t.Fatalf("Stats = %d,%d, want 2,1", claims, denied)
	}
}

func TestConcurrentClaimsExactlyOneWinner(t *testing.T) {
	d := NewDirectory()
	const nodes = 16
	var wg sync.WaitGroup
	wins := make([]bool, nodes)
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			wins[n] = d.Claim(42, NodeID(n))
		}(n)
	}
	wg.Wait()
	winners := 0
	for _, w := range wins {
		if w {
			winners++
		}
	}
	if winners != 1 {
		t.Fatalf("%d winners, want exactly 1", winners)
	}
}

package dkv

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"icache/internal/dataset"
)

func TestClaimFirstWins(t *testing.T) {
	d := NewDirectory()
	if !d.Claim(1, 0) {
		t.Fatal("first claim failed")
	}
	if d.Claim(1, 1) {
		t.Fatal("second node stole the claim")
	}
	if !d.Claim(1, 0) {
		t.Fatal("re-claim by owner failed")
	}
	n, ok := d.Lookup(1)
	if !ok || n != 0 {
		t.Fatalf("Lookup = %d,%v, want 0,true", n, ok)
	}
}

func TestReleaseSemantics(t *testing.T) {
	d := NewDirectory()
	d.Claim(1, 0)
	if d.Release(1, 1) {
		t.Fatal("non-owner released")
	}
	if !d.Release(1, 0) {
		t.Fatal("owner release failed")
	}
	if d.Release(1, 0) {
		t.Fatal("double release succeeded")
	}
	if _, ok := d.Lookup(1); ok {
		t.Fatal("released item still owned")
	}
	// After release another node can claim.
	if !d.Claim(1, 1) {
		t.Fatal("claim after release failed")
	}
}

func TestLenAndStats(t *testing.T) {
	d := NewDirectory()
	d.Claim(1, 0)
	d.Claim(2, 1)
	d.Claim(1, 1) // denied
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	claims, denied := d.Stats()
	if claims != 2 || denied != 1 {
		t.Fatalf("Stats = %d,%d, want 2,1", claims, denied)
	}
}

func TestConcurrentClaimsExactlyOneWinner(t *testing.T) {
	d := NewDirectory()
	const nodes = 16
	var wg sync.WaitGroup
	wins := make([]bool, nodes)
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			wins[n] = d.Claim(42, NodeID(n))
		}(n)
	}
	wg.Wait()
	winners := 0
	for _, w := range wins {
		if w {
			winners++
		}
	}
	if winners != 1 {
		t.Fatalf("%d winners, want exactly 1", winners)
	}
}

// TestDirectoryMatchesModelUnderConcurrency is a model-based property test:
// workers apply seeded random claim/lookup/release streams to the shared
// Directory concurrently, but each worker owns a disjoint key range, so a
// plain map is an exact sequential model of its slice of the state. After
// the storm, the Directory must agree with every worker's model exactly,
// and global invariants (Len == sum of models) must hold. Run under -race
// this doubles as the lock-coverage test for the tentpole's chaos suite.
func TestDirectoryMatchesModelUnderConcurrency(t *testing.T) {
	dir := NewDirectory()
	const workers = 8
	const keysPerWorker = 50
	const opsPerWorker = 2000

	type model struct {
		owner map[dataset.SampleID]NodeID
	}
	models := make([]model, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		models[w] = model{owner: make(map[dataset.SampleID]NodeID)}
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			m := models[w].owner
			base := dataset.SampleID(w * keysPerWorker)
			for op := 0; op < opsPerWorker; op++ {
				id := base + dataset.SampleID(rng.Intn(keysPerWorker))
				node := NodeID(rng.Intn(4))
				switch rng.Intn(3) {
				case 0: // claim
					got := dir.Claim(id, node)
					cur, owned := m[id]
					want := !owned || cur == node
					if got != want {
						panic(fmt.Sprintf("worker %d: Claim(%d,%d) = %v, model %v", w, id, node, got, want))
					}
					if got && !owned {
						m[id] = node
					}
				case 1: // lookup
					gotNode, gotOK := dir.Lookup(id)
					wantNode, wantOK := m[id]
					if gotOK != wantOK || (gotOK && gotNode != wantNode) {
						panic(fmt.Sprintf("worker %d: Lookup(%d) = (%v,%v), model (%v,%v)",
							w, id, gotNode, gotOK, wantNode, wantOK))
					}
				default: // release
					got := dir.Release(id, node)
					want := m[id] == node && func() bool { _, ok := m[id]; return ok }()
					if got != want {
						panic(fmt.Sprintf("worker %d: Release(%d,%d) = %v, model %v", w, id, node, got, want))
					}
					if got {
						delete(m, id)
					}
				}
			}
		}()
	}
	wg.Wait()

	total := 0
	for w := 0; w < workers; w++ {
		total += len(models[w].owner)
		for id, want := range models[w].owner {
			got, ok := dir.Lookup(id)
			if !ok || got != want {
				t.Fatalf("final state: Lookup(%d) = (%v,%v), model wants %v", id, got, ok, want)
			}
		}
	}
	if dir.Len() != total {
		t.Fatalf("directory Len = %d, models hold %d", dir.Len(), total)
	}
}

package dkv

import (
	"reflect"
	"testing"

	"icache/internal/dataset"
)

// ringKeys is the 10k-key sample set the ring property tests route.
func ringKeys() []dataset.SampleID {
	ids := make([]dataset.SampleID, 10_000)
	for i := range ids {
		ids[i] = dataset.SampleID(i)
	}
	return ids
}

func replicaSet(n int) []ReplicaID {
	rs := make([]ReplicaID, n)
	for i := range rs {
		rs[i] = ReplicaID(i)
	}
	return rs
}

func ownersUnder(view RingView, ids []dataset.SampleID) map[dataset.SampleID]ReplicaID {
	out := make(map[dataset.SampleID]ReplicaID, len(ids))
	for _, id := range ids {
		r, ok := view.Owner(id)
		if !ok {
			panic("no owner under non-empty view")
		}
		out[id] = r
	}
	return out
}

// TestRingRemapMinimal pins rendezvous hashing's headline property: removing
// one of N replicas remaps EXACTLY the keys that replica owned (survivors'
// keys keep their owner), and adding one back steals only the keys the
// newcomer wins — so a membership change never remaps more than ~1/N of the
// key space (plus slack for hash imbalance).
func TestRingRemapMinimal(t *testing.T) {
	ids := ringKeys()
	for _, n := range []int{2, 3, 4, 8} {
		full := NewRingView(1, replicaSet(n))
		before := ownersUnder(full, ids)
		for _, gone := range full.Replicas {
			var without []ReplicaID
			for _, r := range full.Replicas {
				if r != gone {
					without = append(without, r)
				}
			}
			shrunk := NewRingView(2, without)
			after := ownersUnder(shrunk, ids)
			remapped := 0
			for _, id := range ids {
				if before[id] != after[id] {
					remapped++
					if before[id] != gone {
						t.Fatalf("n=%d remove %d: key %d moved %d->%d but its owner survived",
							n, gone, id, before[id], after[id])
					}
				}
			}
			// The removed replica owned ~len(ids)/n keys; allow 50% slack for
			// hash imbalance. That still pins "≤ ~1/N", e.g. ≤ 1/2·1.5 = 75%
			// at n=2 vs. the ~100% a naive mod-N rehash would remap.
			bound := len(ids) * 3 / (2 * n)
			if remapped > bound {
				t.Errorf("n=%d remove %d: %d/%d keys remapped, want <= %d (~1/%d + slack)",
					n, gone, remapped, len(ids), bound, n)
			}
			if remapped == 0 {
				t.Errorf("n=%d remove %d: no keys remapped — replica owned nothing", n, gone)
			}
			// Adding the replica back restores the original placement bit for
			// bit (placement is a pure function of the live set).
			if got := ownersUnder(NewRingView(3, full.Replicas), ids); !reflect.DeepEqual(got, before) {
				t.Fatalf("n=%d: re-adding replica %d did not restore placement", n, gone)
			}
		}
	}
}

// TestRingRoutingDeterministic pins that routing is a pure function: the
// same (key, view) pair yields the same owner across repeated runs and
// across structurally equal views built in different ways.
func TestRingRoutingDeterministic(t *testing.T) {
	ids := ringKeys()
	v1 := NewRingView(1, []ReplicaID{2, 0, 1, 3})
	v2 := NewRingView(9, []ReplicaID{3, 2, 1, 0, 2}) // dup + different order/epoch
	if !v1.Equal(v2) {
		t.Fatalf("views with equal replica sets not Equal: %v vs %v", v1.Replicas, v2.Replicas)
	}
	a, b, c := ownersUnder(v1, ids), ownersUnder(v1, ids), ownersUnder(v2, ids)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("repeated routing of the same view diverged")
	}
	if !reflect.DeepEqual(a, c) {
		t.Fatal("routing differs between structurally equal views")
	}
}

// TestRingBalance sanity-checks that rendezvous placement spreads the key
// set roughly evenly — no replica may own more than twice or less than half
// its fair share of 10k keys.
func TestRingBalance(t *testing.T) {
	ids := ringKeys()
	for _, n := range []int{2, 3, 4, 8} {
		view := NewRingView(1, replicaSet(n))
		counts := make(map[ReplicaID]int)
		for _, id := range ids {
			r, _ := view.Owner(id)
			counts[r]++
		}
		fair := len(ids) / n
		for r, c := range counts {
			if c < fair/2 || c > fair*2 {
				t.Errorf("n=%d: replica %d owns %d keys, fair share %d", n, r, c, fair)
			}
		}
		if len(counts) != n {
			t.Errorf("n=%d: only %d replicas own keys", n, len(counts))
		}
	}
}

// TestRingViewBasics pins the view container: construction sorts and
// dedupes, Contains and Owner behave on the empty view.
func TestRingViewBasics(t *testing.T) {
	v := NewRingView(5, []ReplicaID{3, 1, 3, 2, 1})
	if want := []ReplicaID{1, 2, 3}; !reflect.DeepEqual(v.Replicas, want) {
		t.Fatalf("Replicas = %v, want %v", v.Replicas, want)
	}
	if v.Epoch != 5 {
		t.Fatalf("Epoch = %d, want 5", v.Epoch)
	}
	if !v.Contains(2) || v.Contains(0) {
		t.Fatal("Contains wrong")
	}
	var empty RingView
	if _, ok := empty.Owner(7); ok {
		t.Fatal("empty view reported an owner")
	}
	if empty.Equal(v) || !empty.Equal(RingView{Epoch: 99}) {
		t.Fatal("Equal wrong on empty views")
	}
}

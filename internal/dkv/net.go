package dkv

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"icache/internal/dataset"
	"icache/internal/obs"
	"icache/internal/overload"
	"icache/internal/retry"
	"icache/internal/wire"
)

// The paper's §III-E shares the directory between nodes through "a
// distributed key-value store". This file provides that deployment shape: a
// TCP service exposing the Directory operations, and a client that cache
// nodes use in place of the in-process map. The protocol reuses the shared
// wire framing.

// Directory-service opcodes. opTraced (= 10) lives in obs.go.
const (
	opLookup      = 1
	opClaim       = 2
	opRelease     = 3
	opLen         = 4
	opRegister    = 5
	opHeartbeat   = 6
	opListNodes   = 7
	opOwnedBy     = 8
	opPurgeDead   = 9
	opLookupBatch = 11
)

// maxLookupBatch bounds one opLookupBatch request server-side. It mirrors
// the rpc layer's "unreasonable batch size" guard: a mini-batch or a scrub
// window is at most a few thousand ids, so a million-id request is either a
// corrupt frame or abuse, and the server refuses rather than allocating.
const maxLookupBatch = 1 << 20

// Response status codes.
const (
	statusOK  = 0
	statusErr = 1
)

// DirServer serves a Directory over TCP.
type DirServer struct {
	dir *Directory

	// rep is the ring-membership state when the server runs as one replica
	// of a partitioned directory (see replica.go); nil on legacy servers.
	rep *replicaState

	ln      net.Listener
	conns   sync.WaitGroup
	connMu  sync.Mutex
	connSet map[net.Conn]struct{}
	closed  chan struct{}

	// obs is the optional observability state (see obs.go); zero value =
	// everything off.
	obs dirObs

	// gate is the optional admission controller on data operations (see
	// overload.go); nil = everything admitted.
	gate *overload.Gate

	// journal, when set, receives shard hand-off events; SetJournal also
	// arms the wrapped Directory's membership-flip events.
	journal *obs.Journal
}

// SetJournal installs a control-plane event journal on the server AND the
// wrapped Directory: membership Live/Suspect/Dead flips and shard
// hand-off sweeps are appended as typed events. Call before Serve.
func (s *DirServer) SetJournal(j *obs.Journal) {
	s.journal = j
	s.dir.SetJournal(j)
}

// NewDirServer wraps dir for network service.
func NewDirServer(dir *Directory) *DirServer {
	return &DirServer{
		dir:     dir,
		connSet: make(map[net.Conn]struct{}),
		closed:  make(chan struct{}),
	}
}

// Serve accepts connections until Close. It always returns a non-nil error
// (net.ErrClosed after a clean shutdown).
func (s *DirServer) Serve(ln net.Listener) error {
	s.connMu.Lock()
	s.ln = ln
	s.connMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return net.ErrClosed
			default:
				return err
			}
		}
		s.connMu.Lock()
		s.connSet[conn] = struct{}{}
		s.connMu.Unlock()
		s.conns.Add(1)
		go func() {
			defer func() {
				s.connMu.Lock()
				delete(s.connSet, conn)
				s.connMu.Unlock()
				s.conns.Done()
			}()
			s.serveConn(conn)
		}()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *DirServer) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr reports the bound address once serving.
func (s *DirServer) Addr() net.Addr {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops the server and closes live connections.
func (s *DirServer) Close() error {
	select {
	case <-s.closed:
		return nil
	default:
	}
	close(s.closed)
	var err error
	s.connMu.Lock()
	if s.ln != nil {
		err = s.ln.Close()
	}
	for conn := range s.connSet {
		conn.Close()
	}
	s.connMu.Unlock()
	s.conns.Wait()
	return err
}

// serveConn is one directory connection's request loop. Directory ops are
// tiny and extremely frequent (every claim/lookup/release in the cluster
// lands here), so the loop reuses one request read buffer per connection
// and encodes responses into pooled wire buffers — after warmup a
// directory round trip allocates nothing on the server.
func (s *DirServer) serveConn(conn net.Conn) {
	defer conn.Close()
	var rbuf []byte
	for {
		req, err := wire.ReadFrameInto(conn, rbuf)
		if err != nil {
			return
		}
		rbuf = req[:0]
		e := wire.GetBuffer()
		s.dispatchCtx(req, e, obs.TraceCtx{})
		err = wire.WriteFrame(conn, e.B)
		wire.PutBuffer(e)
		if err != nil {
			return
		}
	}
}

// dispatchInto decodes one request and appends the response into e. The
// request buffer may be reused after return (nothing from req is
// retained).
func (s *DirServer) dispatchInto(req []byte, e *wire.Buffer) {
	d := wire.NewReader(req)
	op := d.U8()
	if op == opDeadline {
		budget := d.I64()
		if d.Err != nil {
			dirError(e, d.Err)
			return
		}
		inner := d.B[d.Off:]
		if len(inner) == 0 {
			dirError(e, errors.New("dkv: empty deadline envelope"))
			return
		}
		if inner[0] == opDeadline {
			dirError(e, errors.New("dkv: nested deadline envelope"))
			return
		}
		// The budget is the sender's remaining time at encode; directory
		// work is sub-millisecond, so arrival with nothing left is the only
		// expired case worth answering.
		if budget <= 0 {
			e.U8(statusExpired)
			return
		}
		s.dispatchInto(inner, e)
		return
	}
	// Admission: data operations only — liveness and gossip must survive
	// overload (see overload.go).
	if s.gate != nil && dirDataOp(op) {
		ok, after := s.gate.Admit(time.Now())
		if !ok {
			e.U8(statusRetryAfter)
			e.I64(int64(after))
			return
		}
		defer s.gate.Done()
	}
	switch op {
	case opLookup:
		id := dataset.SampleID(d.I64())
		if d.Err != nil {
			dirError(e, d.Err)
			return
		}
		e.U8(statusOK)
		if node, ok := s.dir.Lookup(id); ok {
			e.U8(1)
			e.I64(int64(node))
		} else {
			e.U8(0)
		}
	case opLookupBatch:
		n := int(d.U32())
		if d.Err != nil {
			dirError(e, d.Err)
			return
		}
		if n < 0 || n > maxLookupBatch {
			dirError(e, fmt.Errorf("dkv: unreasonable batch size %d", n))
			return
		}
		ids := make([]dataset.SampleID, n)
		for i := 0; i < n; i++ {
			ids[i] = dataset.SampleID(d.I64())
		}
		if d.Err != nil {
			dirError(e, d.Err)
			return
		}
		owners := s.dir.LookupBatch(ids)
		e.U8(statusOK)
		e.U32(uint32(len(owners)))
		for _, o := range owners {
			if o.Found {
				e.U8(1)
				e.I64(int64(o.Node))
			} else {
				e.U8(0)
			}
		}
	case opClaim:
		id := dataset.SampleID(d.I64())
		node := NodeID(d.I64())
		if d.Err != nil {
			dirError(e, d.Err)
			return
		}
		e.U8(statusOK)
		if s.dir.Claim(id, node) {
			e.U8(1)
		} else {
			e.U8(0)
		}
	case opRelease:
		id := dataset.SampleID(d.I64())
		node := NodeID(d.I64())
		if d.Err != nil {
			dirError(e, d.Err)
			return
		}
		e.U8(statusOK)
		if s.dir.Release(id, node) {
			e.U8(1)
		} else {
			e.U8(0)
		}
	case opLen:
		e.U8(statusOK)
		e.I64(int64(s.dir.Len()))
	case opRegister:
		node := NodeID(d.I64())
		ttl := time.Duration(d.I64())
		if d.Err != nil {
			dirError(e, d.Err)
			return
		}
		info := s.dir.Register(node, ttl)
		e.U8(statusOK)
		e.U8(byte(info.State))
		e.I64(int64(info.ExpiresIn))
	case opHeartbeat:
		node := NodeID(d.I64())
		if d.Err != nil {
			dirError(e, d.Err)
			return
		}
		e.U8(statusOK)
		if s.dir.HeartbeatNode(node) {
			e.U8(1)
		} else {
			e.U8(0)
		}
	case opListNodes:
		nodes := s.dir.ListNodes()
		e.U8(statusOK)
		e.U32(uint32(len(nodes)))
		for _, n := range nodes {
			e.I64(int64(n.ID))
			e.U8(byte(n.State))
			e.I64(int64(n.ExpiresIn))
		}
	case opOwnedBy:
		node := NodeID(d.I64())
		max := int(d.U32())
		if d.Err != nil {
			dirError(e, d.Err)
			return
		}
		ids := s.dir.OwnedBy(node, max)
		e.U8(statusOK)
		e.U32(uint32(len(ids)))
		for _, id := range ids {
			e.I64(int64(id))
		}
	case opPurgeDead:
		max := int(d.U32())
		if d.Err != nil {
			dirError(e, d.Err)
			return
		}
		e.U8(statusOK)
		e.I64(int64(s.dir.PurgeDead(max)))
	case opRingView:
		if s.rep == nil {
			dirError(e, errors.New("dkv: not in replica mode"))
			return
		}
		sender, remote, err := decodeRingView(d)
		if err != nil {
			dirError(e, err)
			return
		}
		view := s.handleRingView(sender, remote)
		e.U8(statusOK)
		encodeRingView(e, s.rep.self, view)
	case opHandoff:
		if s.rep == nil {
			dirError(e, errors.New("dkv: not in replica mode"))
			return
		}
		sender, remote, err := decodeRingView(d)
		if err != nil {
			dirError(e, err)
			return
		}
		max := int(d.U32())
		if d.Err != nil {
			dirError(e, d.Err)
			return
		}
		dropped, epoch := s.handleHandoff(sender, remote, max)
		e.U8(statusOK)
		e.I64(int64(dropped))
		e.I64(int64(epoch))
	default:
		dirError(e, fmt.Errorf("dkv: unknown opcode %d", op))
	}
}

func dirError(e *wire.Buffer, err error) {
	e.U8(statusErr)
	e.Str(err.Error())
}

// ServerError is an application-level statusErr reply: the transport round
// trip succeeded and the server answered with an error. Distinguishing it
// from transport failure matters to the ring — a ServerError proves the
// peer is alive (e.g. a legacy server refusing a ring opcode).
type ServerError struct{ Msg string }

// Error implements the error interface.
func (e *ServerError) Error() string { return "dkv: server error: " + e.Msg }

// DirClient is a node's connection to the directory service. It satisfies
// the fallible Service contract (like the in-process Directory via Local),
// so a cache node can be wired to either.
//
// The client is resilient: transport failures are retried under an
// exponential-backoff-with-jitter policy with a fresh connection per
// attempt. Every directory operation is idempotent (Lookup is pure, Claim
// is first-claim-wins and re-claiming one's own item succeeds, Release of
// a non-owned item is a no-op), so blind retry is safe.
type DirClient struct {
	addr    string
	timeout time.Duration
	policy  retry.Policy

	mu     sync.Mutex
	conn   net.Conn
	closed bool
	rng    *rand.Rand

	retries int64
	redials int64

	// rpcTimeout bounds each round trip via a connection deadline (see
	// SetRPCTimeout; 0 = unbounded). breaker, when installed, fails calls
	// fast while the directory is unresponsive (see SetBreaker). desynced
	// marks the connection poisoned by a timeout mid-exchange (a response
	// may still be in flight), forcing a redial before the next request.
	rpcTimeout time.Duration
	breaker    *overload.Breaker
	desynced   bool
}

// DialDir connects to a directory service with the default retry policy.
func DialDir(addr string, timeout time.Duration) (*DirClient, error) {
	return DialDirPolicy(addr, timeout, retry.Default())
}

// DialDirPolicy connects with an explicit retry policy governing the
// initial dial and every subsequent round trip.
func DialDirPolicy(addr string, timeout time.Duration, policy retry.Policy) (*DirClient, error) {
	c := &DirClient{
		addr:    addr,
		timeout: timeout,
		policy:  policy,
		rng:     rand.New(rand.NewSource(int64(len(addr))*0x5D17 + 3)),
	}
	err := retry.Do(policy, c.rng, nil, func(int) error {
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return err
		}
		c.conn = conn
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("dkv: dial %s: %w", addr, err)
	}
	return c, nil
}

// Close tears down the connection.
func (c *DirClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return c.conn.Close()
}

// Resilience reports how many round trips needed a retry and how many
// redials succeeded over the client's lifetime.
func (c *DirClient) Resilience() (retries, redials int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retries, c.redials
}

// redial replaces the connection (mu held).
func (c *DirClient) redial() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return err
	}
	c.conn.Close()
	c.conn = conn
	c.redials++
	return nil
}

func (c *DirClient) roundTrip(req []byte) (*wire.Reader, error) {
	return c.roundTripDeadline(req, time.Time{})
}

// roundTripDeadline is the round-trip core. A non-zero deadline (or, when
// zero, the configured rpcTimeout) bounds each attempt's network wait via
// a connection deadline, and the retry loop stops spawning attempts once
// the deadline passes. The breaker (if installed) gates entry and absorbs
// the outcome.
func (c *DirClient) roundTripDeadline(req []byte, dl time.Time) (*wire.Reader, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b := c.breaker; b != nil && !b.Allow(time.Now()) {
		return nil, fmt.Errorf("dkv: %s: %w", c.addr, overload.ErrBreakerOpen)
	}
	if dl.IsZero() && c.rpcTimeout > 0 {
		dl = time.Now().Add(c.rpcTimeout)
	}
	var resp []byte
	retried := false
	err := retry.Do(c.policy, c.rng, nil, func(attempt int) error {
		if c.closed {
			return retry.Permanent(fmt.Errorf("dkv: client for %s is closed", c.addr))
		}
		if attempt > 0 {
			retried = true
			if !dl.IsZero() && !time.Now().Before(dl) {
				return retry.Permanent(fmt.Errorf("dkv: %s: retry budget spent: %w", c.addr, overload.ErrExpired))
			}
			if err := c.redial(); err != nil {
				return fmt.Errorf("dkv: redial %s: %w", c.addr, err)
			}
			c.desynced = false
		} else if c.desynced {
			// A previous call timed out mid-exchange: the old connection may
			// still deliver that stale response, so it must not be reused.
			if err := c.redial(); err != nil {
				return fmt.Errorf("dkv: redial %s: %w", c.addr, err)
			}
			c.desynced = false
		}
		if !dl.IsZero() {
			c.conn.SetDeadline(dl)
			defer c.conn.SetDeadline(time.Time{})
		}
		if err := wire.WriteFrame(c.conn, req); err != nil {
			if isTimeoutErr(err) {
				c.desynced = true
				return retry.Permanent(fmt.Errorf("dkv: send: %w", err))
			}
			return fmt.Errorf("dkv: send: %w", err)
		}
		r, err := wire.ReadFrame(c.conn)
		if err != nil {
			if isTimeoutErr(err) {
				// Request is out, response unread: the conn is desynchronized
				// and a retry would only turn "late" into "later".
				c.desynced = true
				return retry.Permanent(fmt.Errorf("dkv: receive: %w", err))
			}
			return fmt.Errorf("dkv: receive: %w", err)
		}
		resp = r
		return nil
	})
	if retried {
		c.retries++
	}
	if err != nil {
		c.reportBreakerLocked(err)
		return nil, err
	}
	d := wire.NewReader(resp)
	var callErr error
	switch status := d.U8(); status {
	case statusOK:
		c.reportBreakerLocked(nil)
		return d, nil
	case statusErr:
		callErr = &ServerError{Msg: d.Str()}
	case statusRetryAfter:
		callErr = &overload.RetryAfterError{After: time.Duration(d.I64())}
	case statusExpired:
		callErr = errDirExpired
	default:
		callErr = fmt.Errorf("dkv: unknown status %d", status)
	}
	c.reportBreakerLocked(callErr)
	return nil, callErr
}

// reportBreakerLocked feeds one outcome to the breaker (mu held; the
// Breaker has its own mutex but keeping the call under mu keeps the
// install-before-share contract trivially safe).
func (c *DirClient) reportBreakerLocked(err error) {
	if b := c.breaker; b != nil {
		b.Report(time.Now(), dirBreakerOutcomeOK(err))
	}
}

// Lookup reports which node owns id, if any.
func (c *DirClient) Lookup(id dataset.SampleID) (NodeID, bool, error) {
	var e wire.Buffer
	e.U8(opLookup)
	e.I64(int64(id))
	d, err := c.roundTrip(e.B)
	if err != nil {
		return 0, false, err
	}
	if d.U8() == 0 {
		return 0, false, d.Err
	}
	return NodeID(d.I64()), true, d.Err
}

// LookupBatch resolves the owners of many ids in ONE wire round trip,
// aligned with ids. This is the amortization primitive of the batched miss
// path and the anti-entropy scrubber: a mini-batch's worth of directory
// questions costs one frame each way instead of len(ids) serial exchanges.
// An empty ids slice short-circuits without touching the network.
func (c *DirClient) LookupBatch(ids []dataset.SampleID) ([]Owner, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	var e wire.Buffer
	e.U8(opLookupBatch)
	e.U32(uint32(len(ids)))
	for _, id := range ids {
		e.I64(int64(id))
	}
	d, err := c.roundTrip(e.B)
	if err != nil {
		return nil, err
	}
	return decodeLookupBatchResponse(d, len(ids))
}

// decodeLookupBatchResponse decodes the per-id owner entries of an
// opLookupBatch response, aligned with the want ids the caller sent.
func decodeLookupBatchResponse(d *wire.Reader, want int) ([]Owner, error) {
	n := int(d.U32())
	if d.Err != nil {
		return nil, d.Err
	}
	if n != want {
		return nil, fmt.Errorf("dkv: lookup batch length mismatch: sent %d, got %d", want, n)
	}
	out := make([]Owner, n)
	for i := 0; i < n; i++ {
		if d.U8() == 1 {
			out[i] = Owner{Node: NodeID(d.I64()), Found: true}
		}
		if d.Err != nil {
			return nil, d.Err
		}
	}
	return out, d.Err
}

// Claim registers node as the owner of id (first claim wins).
func (c *DirClient) Claim(id dataset.SampleID, node NodeID) (bool, error) {
	var e wire.Buffer
	e.U8(opClaim)
	e.I64(int64(id))
	e.I64(int64(node))
	d, err := c.roundTrip(e.B)
	if err != nil {
		return false, err
	}
	return d.U8() == 1, d.Err
}

// Release removes node's ownership of id.
func (c *DirClient) Release(id dataset.SampleID, node NodeID) (bool, error) {
	var e wire.Buffer
	e.U8(opRelease)
	e.I64(int64(id))
	e.I64(int64(node))
	d, err := c.roundTrip(e.B)
	if err != nil {
		return false, err
	}
	return d.U8() == 1, d.Err
}

// Len reports the number of owned items.
func (c *DirClient) Len() (int, error) {
	var e wire.Buffer
	e.U8(opLen)
	d, err := c.roundTrip(e.B)
	if err != nil {
		return 0, err
	}
	return int(d.I64()), d.Err
}

// Register grants (or re-grants) node a lease of the given TTL (<= 0
// selects the directory default). Registration is idempotent — re-running
// it just re-stamps the lease — so blind retry under the client's backoff
// policy is safe.
func (c *DirClient) Register(node NodeID, ttl time.Duration) (NodeInfo, error) {
	var e wire.Buffer
	e.U8(opRegister)
	e.I64(int64(node))
	e.I64(int64(ttl))
	d, err := c.roundTrip(e.B)
	if err != nil {
		return NodeInfo{}, err
	}
	info := NodeInfo{ID: node, State: NodeState(d.U8()), ExpiresIn: time.Duration(d.I64())}
	return info, d.Err
}

// Heartbeat renews node's lease; renewed == false means the lease lapsed
// and the node must Register again and reconcile its ownership.
func (c *DirClient) Heartbeat(node NodeID) (bool, error) {
	var e wire.Buffer
	e.U8(opHeartbeat)
	e.I64(int64(node))
	d, err := c.roundTrip(e.B)
	if err != nil {
		return false, err
	}
	return d.U8() == 1, d.Err
}

// ListNodes reports every registered node's membership state.
func (c *DirClient) ListNodes() ([]NodeInfo, error) {
	var e wire.Buffer
	e.U8(opListNodes)
	d, err := c.roundTrip(e.B)
	if err != nil {
		return nil, err
	}
	n := int(d.U32())
	out := make([]NodeInfo, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, NodeInfo{
			ID:        NodeID(d.I64()),
			State:     NodeState(d.U8()),
			ExpiresIn: time.Duration(d.I64()),
		})
		if d.Err != nil {
			return nil, d.Err
		}
	}
	return out, d.Err
}

// OwnedBy reports up to max of node's directory entries (sorted).
func (c *DirClient) OwnedBy(node NodeID, max int) ([]dataset.SampleID, error) {
	if max < 0 {
		max = 0 // 0 means "all" on the server
	}
	var e wire.Buffer
	e.U8(opOwnedBy)
	e.I64(int64(node))
	e.U32(uint32(max))
	d, err := c.roundTrip(e.B)
	if err != nil {
		return nil, err
	}
	n := int(d.U32())
	out := make([]dataset.SampleID, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, dataset.SampleID(d.I64()))
		if d.Err != nil {
			return nil, d.Err
		}
	}
	return out, d.Err
}

// PurgeDead garbage-collects up to max Dead-owned entries server-side.
func (c *DirClient) PurgeDead(max int) (int, error) {
	if max < 0 {
		max = 0 // 0 means "all" on the server
	}
	var e wire.Buffer
	e.U8(opPurgeDead)
	e.U32(uint32(max))
	d, err := c.roundTrip(e.B)
	if err != nil {
		return 0, err
	}
	return int(d.I64()), d.Err
}

package dkv

// Lease-expiry edge cases (ISSUE 3 satellite): the half-open lease window,
// the Live→Suspect→Dead derivation, reclamation racing re-registration, and
// concurrent reclaimers of a Dead node's entry.

import (
	"sync"
	"testing"
	"time"

	"icache/internal/dataset"
	"icache/internal/simclock"
)

// clockedDir returns a directory on a manual clock with a 100ms lease TTL
// and a 100ms suspect window, plus a setter for the current virtual time.
func clockedDir() (*Directory, *simclock.Time) {
	d := NewDirectory()
	now := new(simclock.Time)
	d.SetClock(func() simclock.Time { return *now })
	d.SetMembershipParams(100*time.Millisecond, 100*time.Millisecond)
	return d, now
}

const (
	ttl     = 100 * time.Millisecond
	suspect = 100 * time.Millisecond
)

// TestLeaseExpiryEdges is the state-derivation table: a lease is valid for
// the half-open window [grant, grant+ttl), suspect for one suspect window
// past that, then dead.
func TestLeaseExpiryEdges(t *testing.T) {
	cases := []struct {
		name      string
		at        time.Duration // observation instant after a grant at t=0
		state     NodeState
		heartbeat bool // is a heartbeat at this instant accepted?
	}{
		{"at grant", 0, NodeLive, true},
		{"mid lease", ttl / 2, NodeLive, true},
		{"last valid instant", ttl - time.Nanosecond, NodeLive, true},
		{"exactly at TTL", ttl, NodeSuspect, false},
		{"mid suspect window", ttl + suspect/2, NodeSuspect, false},
		{"exactly at suspect end", ttl + suspect, NodeDead, false},
		{"long dead", ttl + suspect + time.Hour, NodeDead, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, now := clockedDir()
			d.Register(1, ttl)
			*now = simclock.Time(tc.at)
			nodes := d.ListNodes()
			if len(nodes) != 1 || nodes[0].ID != 1 {
				t.Fatalf("ListNodes = %+v", nodes)
			}
			if nodes[0].State != tc.state {
				t.Errorf("state at +%v = %v, want %v", tc.at, nodes[0].State, tc.state)
			}
			if got := d.HeartbeatNode(1); got != tc.heartbeat {
				t.Errorf("heartbeat at +%v accepted=%v, want %v", tc.at, got, tc.heartbeat)
			}
		})
	}
}

// TestHeartbeatExtendsLease pins renewal arithmetic: each accepted heartbeat
// pushes expiry a full TTL past the renewal instant, not past the grant.
func TestHeartbeatExtendsLease(t *testing.T) {
	d, now := clockedDir()
	d.Register(1, ttl)
	for i := 1; i <= 10; i++ {
		*now = simclock.Time(time.Duration(i) * (ttl / 2))
		if !d.HeartbeatNode(1) {
			t.Fatalf("renewal %d rejected", i)
		}
	}
	// 10 renewals later the node is still Live well past the original TTL.
	if st := d.ListNodes()[0].State; st != NodeLive {
		t.Fatalf("state after renewals = %v, want live", st)
	}
	ms := d.Membership()
	if ms.Heartbeats != 10 || ms.HeartbeatRejects != 0 {
		t.Errorf("heartbeat counters = %+v, want 10 accepted, 0 rejected", ms)
	}
}

// TestUnregisteredNodesArePermanentlyLive pins the legacy static-membership
// behaviour: nodes that never register are always routable and their entries
// never become reclaimable, but their heartbeats are rejected (they hold no
// lease to renew).
func TestUnregisteredNodesArePermanentlyLive(t *testing.T) {
	d, now := clockedDir()
	if !d.Claim(7, 3) {
		t.Fatal("claim by unregistered node failed")
	}
	*now = simclock.Time(time.Hour)
	if owner, ok := d.Lookup(7); !ok || owner != 3 {
		t.Fatalf("Lookup(7) = (%d, %v), want (3, true)", owner, ok)
	}
	if d.Claim(7, 4) {
		t.Fatal("entry of an unregistered node was reclaimed")
	}
	if d.HeartbeatNode(3) {
		t.Fatal("heartbeat without a lease accepted")
	}
	if purged := d.PurgeDead(0); purged != 0 {
		t.Fatalf("PurgeDead removed %d entries of an unregistered node", purged)
	}
}

// TestReRegistrationRacesReclamation covers both interleavings around a
// dead node's entry: if the owner re-registers first, its entry is no longer
// reclaimable; if a peer reclaims first, the re-registration does not get
// the entry back and the owner's re-claim is denied.
func TestReRegistrationRacesReclamation(t *testing.T) {
	t.Run("re-register wins", func(t *testing.T) {
		d, now := clockedDir()
		d.Register(1, ttl)
		if !d.Claim(42, 1) {
			t.Fatal("claim failed")
		}
		*now = simclock.Time(ttl + suspect) // node 1 is dead
		d.Register(1, ttl)                  // ...but rejoins first
		if d.Claim(42, 2) {
			t.Fatal("entry reclaimed from a revived node")
		}
		if owner, ok := d.Lookup(42); !ok || owner != 1 {
			t.Fatalf("Lookup(42) = (%d, %v), want (1, true)", owner, ok)
		}
		if rev := d.Membership().Revivals; rev != 1 {
			t.Errorf("Revivals = %d, want 1", rev)
		}
	})
	t.Run("reclaimer wins", func(t *testing.T) {
		d, now := clockedDir()
		d.Register(1, ttl)
		if !d.Claim(42, 1) {
			t.Fatal("claim failed")
		}
		*now = simclock.Time(ttl + suspect)
		if !d.Claim(42, 2) { // peer reclaims the dead node's entry...
			t.Fatal("reclaim of a dead node's entry failed")
		}
		d.Register(1, ttl) // ...then the owner rejoins
		if d.Claim(42, 1) {
			t.Fatal("rejoined node re-took an entry a live peer now owns")
		}
		if owner, ok := d.Lookup(42); !ok || owner != 2 {
			t.Fatalf("Lookup(42) = (%d, %v), want (2, true)", owner, ok)
		}
		ms := d.Membership()
		if ms.Reclaims != 1 {
			t.Errorf("Reclaims = %d, want 1", ms.Reclaims)
		}
	})
}

// TestSuspectEntriesAreNotReclaimable pins the grace period: during the
// suspect window the node is still routable and its entries are protected.
func TestSuspectEntriesAreNotReclaimable(t *testing.T) {
	d, now := clockedDir()
	d.Register(1, ttl)
	if !d.Claim(9, 1) {
		t.Fatal("claim failed")
	}
	*now = simclock.Time(ttl + suspect/2) // suspect, not dead
	if d.Claim(9, 2) {
		t.Fatal("suspect node's entry was reclaimed")
	}
	if owner, ok := d.Lookup(9); !ok || owner != 1 {
		t.Fatalf("Lookup(9) = (%d, %v), want (1, true)", owner, ok)
	}
	ms := d.Membership()
	if ms.Suspects != 1 || ms.Deaths != 0 {
		t.Errorf("transition counters = %+v, want 1 suspect, 0 deaths", ms)
	}
}

// TestConcurrentReclaimersExactlyOneWins races many claimers for one dead
// node's entry: exactly one transfer succeeds and ownership is consistent.
func TestConcurrentReclaimersExactlyOneWins(t *testing.T) {
	d, now := clockedDir()
	d.Register(1, ttl)
	if !d.Claim(5, 1) {
		t.Fatal("claim failed")
	}
	*now = simclock.Time(ttl + suspect) // node 1 is dead

	const claimers = 16
	var wg sync.WaitGroup
	wins := make([]bool, claimers)
	for i := 0; i < claimers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wins[i] = d.Claim(5, NodeID(i+2)) // claimers 2..17, all unregistered (live)
		}(i)
	}
	wg.Wait()

	winners := 0
	var winner NodeID
	for i, won := range wins {
		if won {
			winners++
			winner = NodeID(i + 2)
		}
	}
	if winners != 1 {
		t.Fatalf("%d claimers won the dead entry, want exactly 1", winners)
	}
	if owner, ok := d.Lookup(5); !ok || owner != winner {
		t.Fatalf("Lookup(5) = (%d, %v), want (%d, true)", owner, ok, winner)
	}
	if ms := d.Membership(); ms.Reclaims != 1 {
		t.Errorf("Reclaims = %d, want 1", ms.Reclaims)
	}
}

// TestLookupPurgesDeadEntries pins the purge-on-sight path and its counter.
func TestLookupPurgesDeadEntries(t *testing.T) {
	d, now := clockedDir()
	d.Register(1, ttl)
	for id := dataset.SampleID(0); id < 5; id++ {
		if !d.Claim(id, 1) {
			t.Fatal("claim failed")
		}
	}
	*now = simclock.Time(ttl + suspect)
	if _, ok := d.Lookup(0); ok {
		t.Fatal("lookup routed to a dead node")
	}
	if _, ok := d.Lookup(0); ok {
		t.Fatal("purged entry reappeared")
	}
	// The remaining four go via the PurgeDead backstop, bounded by max.
	if purged := d.PurgeDead(3); purged != 3 {
		t.Fatalf("PurgeDead(3) = %d, want 3", purged)
	}
	if purged := d.PurgeDead(0); purged != 1 {
		t.Fatalf("PurgeDead(0) = %d, want the last entry", purged)
	}
	if n := d.Len(); n != 0 {
		t.Fatalf("%d entries survived purging", n)
	}
	if ms := d.Membership(); ms.Purged != 5 {
		t.Errorf("Purged = %d, want 5", ms.Purged)
	}
}

package dkv

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"icache/internal/retry"
	"icache/internal/wire"
)

func startDirServer(t *testing.T) (string, *Directory) {
	t.Helper()
	dir := NewDirectory()
	srv := NewDirServer(dir)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String(), dir
}

func dialDir(t *testing.T, addr string) *DirClient {
	t.Helper()
	c, err := DialDir(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestDirOverTCP(t *testing.T) {
	addr, _ := startDirServer(t)
	c := dialDir(t, addr)

	if _, found, err := c.Lookup(5); err != nil || found {
		t.Fatalf("lookup on empty dir: %v/%v", found, err)
	}
	ok, err := c.Claim(5, 1)
	if err != nil || !ok {
		t.Fatalf("claim: %v/%v", ok, err)
	}
	node, found, err := c.Lookup(5)
	if err != nil || !found || node != 1 {
		t.Fatalf("lookup after claim: %v/%v/%v", node, found, err)
	}
	// Second node's claim must lose.
	ok, err = c.Claim(5, 2)
	if err != nil || ok {
		t.Fatalf("conflicting claim won: %v/%v", ok, err)
	}
	n, err := c.Len()
	if err != nil || n != 1 {
		t.Fatalf("len: %d/%v", n, err)
	}
	// Release by non-owner fails, by owner succeeds.
	if ok, _ := c.Release(5, 2); ok {
		t.Fatal("non-owner release succeeded")
	}
	if ok, _ := c.Release(5, 1); !ok {
		t.Fatal("owner release failed")
	}
	if _, found, _ := c.Lookup(5); found {
		t.Fatal("released entry still present")
	}
}

func TestDirConcurrentClientsOneWinner(t *testing.T) {
	addr, _ := startDirServer(t)
	const nodes = 8
	var wg sync.WaitGroup
	wins := make([]bool, nodes)
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c, err := DialDir(addr, time.Second)
			if err != nil {
				return
			}
			defer c.Close()
			ok, err := c.Claim(42, NodeID(n))
			wins[n] = ok && err == nil
		}(n)
	}
	wg.Wait()
	winners := 0
	for _, w := range wins {
		if w {
			winners++
		}
	}
	if winners != 1 {
		t.Fatalf("%d winners over TCP, want 1", winners)
	}
}

func TestDirServerRejectsBadOpcode(t *testing.T) {
	addr, _ := startDirServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, []byte{0xEE}); err != nil {
		t.Fatal(err)
	}
	resp, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if resp[0] != statusErr {
		t.Fatalf("bad opcode answered %d", resp[0])
	}
}

func TestDirServerCloseUnblocks(t *testing.T) {
	dir := NewDirectory()
	srv := NewDirServer(dir)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	time.Sleep(10 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-errc:
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
}

// TestDirClientRidesThroughMidFrameCloses runs the client against a server
// that kills the first few connections in the middle of a response frame
// (half a length header, then close). The client's retry/redial must absorb
// the abuse and land the operation on the first healthy connection.
func TestDirClientRidesThroughMidFrameCloses(t *testing.T) {
	dir := NewDirectory()
	srv := NewDirServer(dir)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })

	const abusive = 3
	go func() {
		for i := 0; ; i++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if i < abusive {
				go func(c net.Conn) {
					defer c.Close()
					buf := make([]byte, 5)
					io.ReadFull(c, buf)         // swallow part of the request
					c.Write([]byte{0x00, 0x00}) // half a frame header, then die
				}(conn)
				continue
			}
			go srv.serveConn(conn)
		}
	}()

	policy := retry.Policy{MaxAttempts: 8, BaseDelay: time.Millisecond,
		MaxDelay: 10 * time.Millisecond, Multiplier: 2, Jitter: 0.2}
	c, err := DialDirPolicy(ln.Addr().String(), time.Second, policy)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ok, err := c.Claim(7, 1)
	if err != nil || !ok {
		t.Fatalf("claim through mid-frame closes: (%v, %v)", ok, err)
	}
	node, found, err := c.Lookup(7)
	if err != nil || !found || node != 1 {
		t.Fatalf("lookup after abuse: (%v, %v, %v)", node, found, err)
	}
	retries, redials := c.Resilience()
	if retries == 0 || redials < abusive {
		t.Fatalf("resilience counters (retries=%d redials=%d) inconsistent with %d killed connections",
			retries, redials, abusive)
	}
	if claims, _ := dir.Stats(); claims != 1 {
		t.Fatalf("directory recorded %d claims; retries of an idempotent claim must not multiply state", claims)
	}
}

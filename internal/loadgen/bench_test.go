package loadgen

import (
	"net"
	"testing"
	"time"

	"icache/internal/dataset"
	"icache/internal/icache"
	"icache/internal/overload"
	"icache/internal/rpc"
	"icache/internal/sampling"
	"icache/internal/storage"
)

// BenchmarkLoadgen is the standing regression gate for the serving hot
// path (archived via `make bench-loadgen` into BENCH_loadgen.json): eight
// open-loop connections storm a 64-sample hot set that is fully resident,
// so every request is a pure cache hit and the measured ceiling is the
// serving path itself — framing, copies, allocations, syscalls — not the
// backend. One benchmark iteration is one GetBatch of 16 samples; the
// headline metric is samples/sec at saturation.
func BenchmarkLoadgen(b *testing.B) {
	const (
		hotSet = 64
		batch  = 16
		conns  = 8
	)
	spec := dataset.Spec{Name: "loadgen", NumSamples: 4096, MeanSampleBytes: 16384, Seed: 7}
	addr := startServer(b, 0, spec)

	// Warm: raise the hot set's importance and fetch it once so the whole
	// set is resident before the measured storm.
	items := make([]sampling.Item, 0, hotSet)
	hot := make([]dataset.SampleID, 0, hotSet)
	for id := dataset.SampleID(0); id < hotSet; id++ {
		items = append(items, sampling.Item{ID: id, IV: 5})
		hot = append(hot, id)
	}
	c, err := rpc.Dial(addr, 2*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.UpdateImportance(items); err != nil {
		b.Fatal(err)
	}
	if _, err := c.GetBatch(hot); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	rep, err := Run(Config{
		Addr:        addr,
		Conns:       conns,
		Batch:       batch,
		Rate:        0, // saturation
		MaxRequests: int64(b.N),
		Mix:         "uniform",
		Keys:        hotSet,
		Seed:        11,
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if rep.Errors > 0 {
		b.Fatalf("%d request errors", rep.Errors)
	}
	if rep.ElapsedSeconds > 0 {
		b.ReportMetric(rep.SamplesPerSec, "samples/sec")
		b.ReportMetric(rep.LatencyP99Ms, "p99-ms")
	}
}

// BenchmarkLoadgenOverload is the standing overload-control gate (archived
// via `make bench-overload` into BENCH_overload.json). The server models the
// I/O-bound regime the admission gate exists for: a backend that charges
// real latency per miss, with fewer admission slots than client connections
// so the gate — not the wire — is the binding resource. The run walks the
// goodput curve: a closed-loop probe estimates saturation, a paced run at
// 1x that rate measures capacity (goodput at the knee), and the measured
// storm offers 2x. A healthy gate answers the excess with cheap retry-after
// rejections, so the slots stay saturated, served completions stay inside
// the deadline, and goodput holds at the knee; a collapsing server instead
// queues, blows the deadline, and goodput falls off the cliff. The headline
// "samples/sec" metric is the storm's GOODPUT — on-time completions only —
// so the benchjson -check gate fails the build if overload handling
// regresses >10%. The benchmark itself fails on the two collapse
// signatures: storm goodput under 80% of capacity, or a conservation leak
// (requests not exactly accounted for by successes + errors + sheds +
// expirations).
func BenchmarkLoadgenOverload(b *testing.B) {
	const (
		batch      = 16
		conns      = 32
		slots      = 16 // admission gate inflight cap: half the connections
		backendLat = 2 * time.Millisecond
		deadline   = 300 * time.Millisecond
	)
	// Keyspace far larger than the cache: nearly every sample pays the
	// backend, so per-request service time is flat and slot-bound rather
	// than drifting with the hit ratio between phases.
	spec := dataset.Spec{Name: "loadgen-ovl", NumSamples: 65536, MeanSampleBytes: 1024, Seed: 7}
	gate := overload.NewGate(overload.GateConfig{MaxInflight: slots})
	addr := startOverloadServer(b, spec, backendLat, gate)

	// Unrecorded warm pass, then a closed-loop saturation probe to place
	// the knee of the goodput curve.
	if _, err := Run(Config{
		Addr: addr, Conns: conns, Batch: batch, Rate: 0,
		Duration: 300 * time.Millisecond, Mix: "uniform", Keys: spec.NumSamples, Seed: 9,
	}); err != nil {
		b.Fatal(err)
	}
	probe, err := Run(Config{
		Addr: addr, Conns: conns, Batch: batch, Rate: 0,
		Duration: 400 * time.Millisecond, Mix: "uniform", Keys: spec.NumSamples, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	est := probe.SamplesPerSec
	if est <= 0 {
		b.Fatalf("saturation probe produced no throughput: %+v", probe)
	}

	// Capacity: goodput with the estimated saturation rate offered. This is
	// the number the storm must hold — same pacing, same deadline, so the
	// comparison isolates what 2x load does and nothing else.
	capRun, err := Run(Config{
		Addr: addr, Conns: conns, Batch: batch, Rate: est,
		Duration: 800 * time.Millisecond, Mix: "uniform", Keys: spec.NumSamples, Seed: 12,
		Deadline: deadline,
	})
	if err != nil {
		b.Fatal(err)
	}
	capacity := capRun.GoodputPerSec
	if capacity <= 0 {
		b.Fatalf("capacity run produced no goodput: %+v", capRun)
	}

	b.ResetTimer()
	rep, err := Run(Config{
		Addr:        addr,
		Conns:       conns,
		Batch:       batch,
		Rate:        2 * est,
		MaxRequests: int64(b.N),
		Mix:         "uniform",
		Keys:        spec.NumSamples,
		Seed:        13,
		Deadline:    deadline,
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if rep.Errors > 0 {
		b.Fatalf("%d transport errors during the storm (sheds/expirations are separate buckets): %+v",
			rep.Errors, rep)
	}
	successes := rep.Samples / int64(rep.Batch)
	if rep.Requests != successes+rep.Errors+rep.Shed+rep.Expired {
		b.Fatalf("conservation leak: requests %d != successes %d + errors %d + shed %d + expired %d",
			rep.Requests, successes, rep.Errors, rep.Shed, rep.Expired)
	}
	// The goodput floor only means something once the storm has run long
	// enough to reach steady state; the opening b.N ramp-up runs are too
	// short to judge.
	if rep.Requests >= 512 && rep.GoodputPerSec < 0.8*capacity {
		b.Fatalf("queue collapse: goodput %.0f samples/sec under 80%% of capacity %.0f (%+v)",
			rep.GoodputPerSec, capacity, rep)
	}
	if rep.ElapsedSeconds > 0 {
		b.ReportMetric(rep.GoodputPerSec, "samples/sec")
		b.ReportMetric(rep.LatencyP99Ms, "p99-ms")
	}
}

// BenchmarkPrefetchEpochs is the standing clairvoyant-prefetch gate
// (archived via `make bench-prefetch` into BENCH_prefetch.json). Two
// identical servers take the same epoch-boundary workload — per-epoch
// reshuffled selections over a keyspace larger than the cache, backend
// charging real latency per read — one reactive, one with the schedule
// pushed ahead of its accesses (BeginEpochPlan). The first epoch is a cold
// baseline on both; from the second epoch on the planner should pre-place
// nearly the whole selection, so the benchmark FAILS unless warm-epoch
// cold misses drop >= 10x versus reactive and the prefetch in-time ratio
// reaches 0.9. The headline samples/sec is the clairvoyant run's
// throughput at the shared offered rate — a planner that stops working
// ahead stalls the paced schedule and drags it down, which the benchjson
// -check gate catches as a regression.
func BenchmarkPrefetchEpochs(b *testing.B) {
	const (
		keys         = 2048
		epochSamples = 768
		epochCount   = 5
		backendLat   = 300 * time.Microsecond
		offeredRate  = 20000
	)
	spec := dataset.Spec{Name: "loadgen-plan", NumSamples: keys, MeanSampleBytes: 4096, Seed: 7}
	runMode := func(clairvoyant bool) (Report, rpc.PlanStats, int64, float64) {
		srv, addr := startPlanServer(b, spec, backendLat, clairvoyant)
		rep, err := Run(Config{
			Addr:         addr,
			Conns:        8,
			Batch:        16,
			Rate:         offeredRate,
			Keys:         keys,
			Seed:         3,
			EpochSamples: epochSamples,
			Epochs:       epochCount,
			Clairvoyant:  clairvoyant,
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Errors > 0 {
			b.Fatalf("%d request errors (clairvoyant=%v)", rep.Errors, clairvoyant)
		}
		d := srv.DecisionStats()
		if got := d.PrefetchInTime + d.PrefetchLate + d.PrefetchWasted + d.PrefetchDropped; got != d.PrefetchIssued {
			b.Fatalf("prefetch ledger unbalanced (clairvoyant=%v): in_time %d + late %d + wasted %d + dropped %d != issued %d",
				clairvoyant, d.PrefetchInTime, d.PrefetchLate, d.PrefetchWasted, d.PrefetchDropped, d.PrefetchIssued)
		}
		var warm int64
		for _, m := range rep.EpochMisses[1:] {
			warm += m
		}
		var inTime float64
		if denom := d.PrefetchInTime + d.PrefetchLate + d.PrefetchWasted; denom > 0 {
			inTime = float64(d.PrefetchInTime) / float64(denom)
		}
		return rep, srv.PlanStats(), warm, inTime
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, reactiveWarm, _ := runMode(false)
		rep, ps, clairWarm, inTime := runMode(true)
		if reactiveWarm == 0 {
			b.Fatalf("reactive warm epochs saw no cold misses — the workload churn vanished")
		}
		if clairWarm*10 > reactiveWarm {
			b.Fatalf("warm-epoch cold misses only dropped %dx (reactive %d, clairvoyant %d); want >= 10x",
				reactiveWarm/max64(clairWarm, 1), reactiveWarm, clairWarm)
		}
		if inTime < 0.9 {
			b.Fatalf("prefetch in-time ratio %.3f < 0.9 (plan %+v)", inTime, ps)
		}
		if i == b.N-1 {
			b.ReportMetric(rep.SamplesPerSec, "samples/sec")
			b.ReportMetric(float64(clairWarm), "cold-misses")
			b.ReportMetric(inTime, "in-time-ratio")
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// startPlanServer boots a serving stack for the epoch-boundary benchmark:
// all-H policy (L-cache off) so the clairvoyant planner is the only
// prefetch source, capacity above one epoch's selection but below the
// keyspace, latency-charging backend. The bandwidth budget is pinned
// explicitly — the benchmark models an operator granting the planner a
// known share of storage bandwidth.
func startPlanServer(b *testing.B, spec dataset.Spec, backendLat time.Duration, clairvoyant bool) (*rpc.Server, string) {
	b.Helper()
	back, err := storage.NewBackend(spec, storage.OrangeFS())
	if err != nil {
		b.Fatal(err)
	}
	cfg := icache.DefaultConfig(spec.TotalBytes() * 3 / 4)
	cfg.EnableLCache = false
	cfg.PrefetchWorkers = 16
	cacheSrv, err := icache.NewServer(back, cfg, sampling.DefaultIIS(), 11)
	if err != nil {
		b.Fatal(err)
	}
	inner, err := storage.NewDataSource(spec)
	if err != nil {
		b.Fatal(err)
	}
	srv := rpc.NewServer(cacheSrv, &stallSource{inner: inner, latency: backendLat})
	srv.Logf = nil
	if clairvoyant {
		srv.SetClairvoyant(rpc.PlanConfig{BandwidthBytesPerSec: 128 << 20})
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	b.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

// startOverloadServer is startGatedServer with a stalled backend: every
// miss charges backendLat, making the admission slots — not the loopback
// wire — the capacity-limiting resource.
func startOverloadServer(t testing.TB, spec dataset.Spec, backendLat time.Duration, gate *overload.Gate) string {
	t.Helper()
	back, err := storage.NewBackend(spec, storage.OrangeFS())
	if err != nil {
		t.Fatal(err)
	}
	cfg := icache.DefaultConfig(spec.TotalBytes() / 4)
	cfg.EnableLCache = false
	cacheSrv, err := icache.NewServer(back, cfg, sampling.DefaultIIS(), 11)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := storage.NewDataSource(spec)
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer(cacheSrv, &stallSource{inner: inner, latency: backendLat})
	srv.Logf = nil
	srv.SetAdmission(gate)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

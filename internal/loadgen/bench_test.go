package loadgen

import (
	"net"
	"testing"
	"time"

	"icache/internal/dataset"
	"icache/internal/icache"
	"icache/internal/overload"
	"icache/internal/rpc"
	"icache/internal/sampling"
	"icache/internal/storage"
)

// BenchmarkLoadgen is the standing regression gate for the serving hot
// path (archived via `make bench-loadgen` into BENCH_loadgen.json): eight
// open-loop connections storm a 64-sample hot set that is fully resident,
// so every request is a pure cache hit and the measured ceiling is the
// serving path itself — framing, copies, allocations, syscalls — not the
// backend. One benchmark iteration is one GetBatch of 16 samples; the
// headline metric is samples/sec at saturation.
func BenchmarkLoadgen(b *testing.B) {
	const (
		hotSet = 64
		batch  = 16
		conns  = 8
	)
	spec := dataset.Spec{Name: "loadgen", NumSamples: 4096, MeanSampleBytes: 16384, Seed: 7}
	addr := startServer(b, 0, spec)

	// Warm: raise the hot set's importance and fetch it once so the whole
	// set is resident before the measured storm.
	items := make([]sampling.Item, 0, hotSet)
	hot := make([]dataset.SampleID, 0, hotSet)
	for id := dataset.SampleID(0); id < hotSet; id++ {
		items = append(items, sampling.Item{ID: id, IV: 5})
		hot = append(hot, id)
	}
	c, err := rpc.Dial(addr, 2*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.UpdateImportance(items); err != nil {
		b.Fatal(err)
	}
	if _, err := c.GetBatch(hot); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	rep, err := Run(Config{
		Addr:        addr,
		Conns:       conns,
		Batch:       batch,
		Rate:        0, // saturation
		MaxRequests: int64(b.N),
		Mix:         "uniform",
		Keys:        hotSet,
		Seed:        11,
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if rep.Errors > 0 {
		b.Fatalf("%d request errors", rep.Errors)
	}
	if rep.ElapsedSeconds > 0 {
		b.ReportMetric(rep.SamplesPerSec, "samples/sec")
		b.ReportMetric(rep.LatencyP99Ms, "p99-ms")
	}
}

// BenchmarkLoadgenOverload is the standing overload-control gate (archived
// via `make bench-overload` into BENCH_overload.json). The server models the
// I/O-bound regime the admission gate exists for: a backend that charges
// real latency per miss, with fewer admission slots than client connections
// so the gate — not the wire — is the binding resource. The run walks the
// goodput curve: a closed-loop probe estimates saturation, a paced run at
// 1x that rate measures capacity (goodput at the knee), and the measured
// storm offers 2x. A healthy gate answers the excess with cheap retry-after
// rejections, so the slots stay saturated, served completions stay inside
// the deadline, and goodput holds at the knee; a collapsing server instead
// queues, blows the deadline, and goodput falls off the cliff. The headline
// "samples/sec" metric is the storm's GOODPUT — on-time completions only —
// so the benchjson -check gate fails the build if overload handling
// regresses >10%. The benchmark itself fails on the two collapse
// signatures: storm goodput under 80% of capacity, or a conservation leak
// (requests not exactly accounted for by successes + errors + sheds +
// expirations).
func BenchmarkLoadgenOverload(b *testing.B) {
	const (
		batch      = 16
		conns      = 32
		slots      = 16 // admission gate inflight cap: half the connections
		backendLat = 2 * time.Millisecond
		deadline   = 300 * time.Millisecond
	)
	// Keyspace far larger than the cache: nearly every sample pays the
	// backend, so per-request service time is flat and slot-bound rather
	// than drifting with the hit ratio between phases.
	spec := dataset.Spec{Name: "loadgen-ovl", NumSamples: 65536, MeanSampleBytes: 1024, Seed: 7}
	gate := overload.NewGate(overload.GateConfig{MaxInflight: slots})
	addr := startOverloadServer(b, spec, backendLat, gate)

	// Unrecorded warm pass, then a closed-loop saturation probe to place
	// the knee of the goodput curve.
	if _, err := Run(Config{
		Addr: addr, Conns: conns, Batch: batch, Rate: 0,
		Duration: 300 * time.Millisecond, Mix: "uniform", Keys: spec.NumSamples, Seed: 9,
	}); err != nil {
		b.Fatal(err)
	}
	probe, err := Run(Config{
		Addr: addr, Conns: conns, Batch: batch, Rate: 0,
		Duration: 400 * time.Millisecond, Mix: "uniform", Keys: spec.NumSamples, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	est := probe.SamplesPerSec
	if est <= 0 {
		b.Fatalf("saturation probe produced no throughput: %+v", probe)
	}

	// Capacity: goodput with the estimated saturation rate offered. This is
	// the number the storm must hold — same pacing, same deadline, so the
	// comparison isolates what 2x load does and nothing else.
	capRun, err := Run(Config{
		Addr: addr, Conns: conns, Batch: batch, Rate: est,
		Duration: 800 * time.Millisecond, Mix: "uniform", Keys: spec.NumSamples, Seed: 12,
		Deadline: deadline,
	})
	if err != nil {
		b.Fatal(err)
	}
	capacity := capRun.GoodputPerSec
	if capacity <= 0 {
		b.Fatalf("capacity run produced no goodput: %+v", capRun)
	}

	b.ResetTimer()
	rep, err := Run(Config{
		Addr:        addr,
		Conns:       conns,
		Batch:       batch,
		Rate:        2 * est,
		MaxRequests: int64(b.N),
		Mix:         "uniform",
		Keys:        spec.NumSamples,
		Seed:        13,
		Deadline:    deadline,
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if rep.Errors > 0 {
		b.Fatalf("%d transport errors during the storm (sheds/expirations are separate buckets): %+v",
			rep.Errors, rep)
	}
	successes := rep.Samples / int64(rep.Batch)
	if rep.Requests != successes+rep.Errors+rep.Shed+rep.Expired {
		b.Fatalf("conservation leak: requests %d != successes %d + errors %d + shed %d + expired %d",
			rep.Requests, successes, rep.Errors, rep.Shed, rep.Expired)
	}
	// The goodput floor only means something once the storm has run long
	// enough to reach steady state; the opening b.N ramp-up runs are too
	// short to judge.
	if rep.Requests >= 512 && rep.GoodputPerSec < 0.8*capacity {
		b.Fatalf("queue collapse: goodput %.0f samples/sec under 80%% of capacity %.0f (%+v)",
			rep.GoodputPerSec, capacity, rep)
	}
	if rep.ElapsedSeconds > 0 {
		b.ReportMetric(rep.GoodputPerSec, "samples/sec")
		b.ReportMetric(rep.LatencyP99Ms, "p99-ms")
	}
}

// startOverloadServer is startGatedServer with a stalled backend: every
// miss charges backendLat, making the admission slots — not the loopback
// wire — the capacity-limiting resource.
func startOverloadServer(t testing.TB, spec dataset.Spec, backendLat time.Duration, gate *overload.Gate) string {
	t.Helper()
	back, err := storage.NewBackend(spec, storage.OrangeFS())
	if err != nil {
		t.Fatal(err)
	}
	cfg := icache.DefaultConfig(spec.TotalBytes() / 4)
	cfg.EnableLCache = false
	cacheSrv, err := icache.NewServer(back, cfg, sampling.DefaultIIS(), 11)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := storage.NewDataSource(spec)
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer(cacheSrv, &stallSource{inner: inner, latency: backendLat})
	srv.Logf = nil
	srv.SetAdmission(gate)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

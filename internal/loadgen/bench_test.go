package loadgen

import (
	"testing"
	"time"

	"icache/internal/dataset"
	"icache/internal/rpc"
	"icache/internal/sampling"
)

// BenchmarkLoadgen is the standing regression gate for the serving hot
// path (archived via `make bench-loadgen` into BENCH_loadgen.json): eight
// open-loop connections storm a 64-sample hot set that is fully resident,
// so every request is a pure cache hit and the measured ceiling is the
// serving path itself — framing, copies, allocations, syscalls — not the
// backend. One benchmark iteration is one GetBatch of 16 samples; the
// headline metric is samples/sec at saturation.
func BenchmarkLoadgen(b *testing.B) {
	const (
		hotSet = 64
		batch  = 16
		conns  = 8
	)
	spec := dataset.Spec{Name: "loadgen", NumSamples: 4096, MeanSampleBytes: 16384, Seed: 7}
	addr := startServer(b, 0, spec)

	// Warm: raise the hot set's importance and fetch it once so the whole
	// set is resident before the measured storm.
	items := make([]sampling.Item, 0, hotSet)
	hot := make([]dataset.SampleID, 0, hotSet)
	for id := dataset.SampleID(0); id < hotSet; id++ {
		items = append(items, sampling.Item{ID: id, IV: 5})
		hot = append(hot, id)
	}
	c, err := rpc.Dial(addr, 2*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.UpdateImportance(items); err != nil {
		b.Fatal(err)
	}
	if _, err := c.GetBatch(hot); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	rep, err := Run(Config{
		Addr:        addr,
		Conns:       conns,
		Batch:       batch,
		Rate:        0, // saturation
		MaxRequests: int64(b.N),
		Mix:         "uniform",
		Keys:        hotSet,
		Seed:        11,
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if rep.Errors > 0 {
		b.Fatalf("%d request errors", rep.Errors)
	}
	if rep.ElapsedSeconds > 0 {
		b.ReportMetric(rep.SamplesPerSec, "samples/sec")
		b.ReportMetric(rep.LatencyP99Ms, "p99-ms")
	}
}

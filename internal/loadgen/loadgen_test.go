package loadgen

import (
	"net"
	"testing"
	"time"

	"icache/internal/dataset"
	"icache/internal/icache"
	"icache/internal/overload"
	"icache/internal/rpc"
	"icache/internal/sampling"
	"icache/internal/storage"
)

// startServer spins a full serving stack on loopback with the given
// backend service time and returns its address.
func startServer(t testing.TB, backendLatency time.Duration, spec dataset.Spec) string {
	t.Helper()
	back, err := storage.NewBackend(spec, storage.OrangeFS())
	if err != nil {
		t.Fatal(err)
	}
	cfg := icache.DefaultConfig(spec.TotalBytes() / 4)
	cfg.EnableLCache = false
	cacheSrv, err := icache.NewServer(back, cfg, sampling.DefaultIIS(), 11)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := storage.NewDataSource(spec)
	if err != nil {
		t.Fatal(err)
	}
	var src rpc.ByteSource = inner
	if backendLatency > 0 {
		src = &stallSource{inner: inner, latency: backendLatency}
	}
	srv := rpc.NewServer(cacheSrv, src)
	srv.Logf = nil
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

type stallSource struct {
	inner   rpc.ByteSource
	latency time.Duration
}

func (s *stallSource) Spec() dataset.Spec { return s.inner.Spec() }

func (s *stallSource) Fetch(id dataset.SampleID) ([]byte, error) {
	time.Sleep(s.latency)
	return s.inner.Fetch(id)
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},                                // no addr
		{Addr: "x"},                       // no keys
		{Addr: "x", Keys: 10},             // no duration and no request budget
		{Keys: 10, Duration: time.Second}, // no addr
	}
	for i, cfg := range bad {
		if _, err := cfg.withDefaults(); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
	good := Config{Addr: "x", Keys: 10, Duration: time.Second}
	got, err := good.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if got.Conns != 8 || got.Batch != 16 || got.Mix != "zipf" || got.ZipfS <= 1 {
		t.Fatalf("defaults not applied: %+v", got)
	}
}

func TestRunSmoke(t *testing.T) {
	spec := dataset.Spec{Name: "lgsmoke", NumSamples: 256, MeanSampleBytes: 512, Seed: 7}
	addr := startServer(t, 0, spec)
	rep, err := Run(Config{
		Addr:     addr,
		Conns:    4,
		Batch:    8,
		Rate:     50000,
		Duration: 300 * time.Millisecond,
		Mix:      "zipf",
		Keys:     spec.NumSamples,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.Samples == 0 {
		t.Fatalf("no traffic recorded: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d request errors", rep.Errors)
	}
	if rep.Samples != rep.Requests*int64(rep.Batch) {
		t.Fatalf("samples %d != requests %d * batch %d", rep.Samples, rep.Requests, rep.Batch)
	}
	if rep.SamplesPerSec <= 0 || rep.LatencyP50Ms <= 0 || rep.LatencyMaxMs < rep.LatencyP99Ms {
		t.Fatalf("implausible report: %+v", rep)
	}
}

// TestRunOverloadClassification drives a server whose only admission slot
// is held for the whole run: every request must come back as a shed
// (counted separately from transport errors), goodput must be zero, and the
// ledger must balance exactly — requests == successes + errors + shed +
// expired.
func TestRunOverloadClassification(t *testing.T) {
	spec := dataset.Spec{Name: "lgshed", NumSamples: 256, MeanSampleBytes: 512, Seed: 7}
	gate := overload.NewGate(overload.GateConfig{MaxInflight: 1})
	addr := startGatedServer(t, spec, gate)
	if ok, _ := gate.Admit(time.Now()); !ok {
		t.Fatal("could not occupy the admission slot")
	}
	defer gate.Done()

	rep, err := Run(Config{
		Addr:     addr,
		Conns:    2,
		Batch:    4,
		Rate:     20000,
		Duration: 250 * time.Millisecond,
		Mix:      "uniform",
		Keys:     spec.NumSamples,
		Seed:     1,
		Deadline: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatalf("no traffic recorded: %+v", rep)
	}
	if rep.Shed != rep.Requests {
		t.Fatalf("shed %d of %d requests; sheds must not leak into other buckets (%+v)",
			rep.Shed, rep.Requests, rep)
	}
	if rep.Errors != 0 || rep.Expired != 0 {
		t.Fatalf("sheds misclassified: errors=%d expired=%d", rep.Errors, rep.Expired)
	}
	if rep.Samples != 0 || rep.GoodputPerSec != 0 {
		t.Fatalf("a fully-shed run has no goodput: %+v", rep)
	}
}

// TestRunGoodputTracksDeadline: with no overload and a generous per-request
// deadline, every completion is on time — goodput equals raw throughput and
// the shed/expired buckets stay empty.
func TestRunGoodputTracksDeadline(t *testing.T) {
	spec := dataset.Spec{Name: "lggood", NumSamples: 256, MeanSampleBytes: 512, Seed: 7}
	addr := startServer(t, 0, spec)
	rep, err := Run(Config{
		Addr:     addr,
		Conns:    2,
		Batch:    4,
		Rate:     20000,
		Duration: 250 * time.Millisecond,
		Mix:      "uniform",
		Keys:     spec.NumSamples,
		Seed:     1,
		Deadline: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.Errors != 0 || rep.Shed != 0 || rep.Expired != 0 {
		t.Fatalf("clean run expected: %+v", rep)
	}
	if rep.GoodputPerSec != rep.SamplesPerSec {
		t.Fatalf("goodput %.1f != throughput %.1f with every completion on time",
			rep.GoodputPerSec, rep.SamplesPerSec)
	}
}

// startGatedServer is startServer with an admission gate installed on the
// serving stack before it starts accepting.
func startGatedServer(t testing.TB, spec dataset.Spec, gate *overload.Gate) string {
	t.Helper()
	back, err := storage.NewBackend(spec, storage.OrangeFS())
	if err != nil {
		t.Fatal(err)
	}
	cfg := icache.DefaultConfig(spec.TotalBytes() / 4)
	cfg.EnableLCache = false
	cacheSrv, err := icache.NewServer(back, cfg, sampling.DefaultIIS(), 11)
	if err != nil {
		t.Fatal(err)
	}
	src, err := storage.NewDataSource(spec)
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer(cacheSrv, src)
	srv.Logf = nil
	srv.SetAdmission(gate)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

// TestMixDeterminism: uniform and zipf mixes replay identically for the
// same seed and connection index, and diverge across connections.
func TestMixDeterminism(t *testing.T) {
	for _, mix := range []string{"uniform", "zipf"} {
		cfg := Config{Mix: mix, Keys: 1024, Seed: 42, ZipfS: 1.2}
		start := time.Now()
		a := make([]dataset.SampleID, 256)
		b := make([]dataset.SampleID, 256)
		newMix(cfg, 3, start).fill(a)
		newMix(cfg, 3, start).fill(b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: same seed+conn diverged at %d", mix, i)
			}
		}
		newMix(cfg, 4, start).fill(b)
		same := 0
		for i := range a {
			if a[i] == b[i] {
				same++
			}
		}
		if same == len(a) {
			t.Fatalf("%s: different conns produced identical streams", mix)
		}
	}
}

// TestZipfSkew: the zipf mix concentrates traffic on low ranks — the top
// 10%% of the keyspace must absorb well over its uniform share.
func TestZipfSkew(t *testing.T) {
	cfg := Config{Mix: "zipf", Keys: 1000, ZipfS: 1.2, Seed: 9}
	m := newMix(cfg, 0, time.Now())
	ids := make([]dataset.SampleID, 4096)
	hot := 0
	for r := 0; r < 8; r++ {
		m.fill(ids)
		for _, id := range ids {
			if int(id) >= cfg.Keys {
				t.Fatalf("id %d outside keyspace", id)
			}
			if int(id) < cfg.Keys/10 {
				hot++
			}
		}
	}
	frac := float64(hot) / float64(8*len(ids))
	if frac < 0.4 {
		t.Fatalf("zipf top-decile share %.2f; expected heavy skew", frac)
	}
}

// TestDiurnalWindow: the diurnal mix confines ~90%% of a fill to a rotating
// hot window, so a burst of draws touches far fewer distinct keys than a
// uniform mix would.
func TestDiurnalWindow(t *testing.T) {
	cfg := Config{Mix: "diurnal", Keys: 4096, Seed: 5}
	m := newMix(cfg, 0, time.Now())
	ids := make([]dataset.SampleID, 1024)
	m.fill(ids)
	distinct := map[dataset.SampleID]bool{}
	for _, id := range ids {
		if int(id) >= cfg.Keys {
			t.Fatalf("id %d outside keyspace", id)
		}
		distinct[id] = true
	}
	// Uniform draws would land ~900 distinct keys; the windowed mix stays
	// near window size (256) plus the 10% background.
	if len(distinct) > 600 {
		t.Fatalf("diurnal fill touched %d distinct keys; window not hot", len(distinct))
	}
}

// TestOpenLoopChargesStall is the coordinated-omission check: against a
// server whose backend is far slower than the arrival interval, measured
// latency must grow with the backlog (latency from *scheduled* start),
// not sit at the service time the way a closed loop would report.
func TestOpenLoopChargesStall(t *testing.T) {
	spec := dataset.Spec{Name: "lgstall", NumSamples: 4096, MeanSampleBytes: 256, Seed: 7}
	const service = 50 * time.Millisecond
	addr := startServer(t, service, spec)
	rep, err := Run(Config{
		Addr:     addr,
		Conns:    1,
		Batch:    1,
		Rate:     200, // 5ms arrival interval vs 50ms service time
		Duration: 400 * time.Millisecond,
		Mix:      "uniform", // distinct cold keys: every request pays the backend
		Keys:     spec.NumSamples,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Behind == 0 {
		t.Fatalf("no requests flagged behind schedule: %+v", rep)
	}
	if rep.LatencyMaxMs < 3*float64(service/time.Millisecond) {
		t.Fatalf("max latency %.1fms does not charge the backlog (service %.0fms): %+v",
			rep.LatencyMaxMs, float64(service/time.Millisecond), rep)
	}
}

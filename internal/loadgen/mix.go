package loadgen

import (
	"math/rand"
	"time"

	"icache/internal/dataset"
)

// keyMix generates the sample IDs one connection requests. Each connection
// owns a private mix instance (seeded deterministically from Config.Seed
// and the connection index) so the generator never serializes on a shared
// RNG at high request rates.
type keyMix interface {
	fill(ids []dataset.SampleID)
}

func newMix(cfg Config, conn int, start time.Time) keyMix {
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(uint64(conn+1)*0x9E3779B97F4A7C15)))
	switch cfg.Mix {
	case "uniform":
		return &uniformMix{rng: rng, keys: cfg.Keys}
	case "diurnal":
		w := cfg.Keys / 16
		if w < 16 {
			w = 16
		}
		if w > cfg.Keys {
			w = cfg.Keys
		}
		return &diurnalMix{rng: rng, keys: cfg.Keys, window: w, start: start}
	default: // "zipf"
		if cfg.Keys < 2 {
			return &uniformMix{rng: rng, keys: cfg.Keys}
		}
		return &zipfMix{z: rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Keys-1))}
	}
}

// uniformMix draws each key independently from [0, keys).
type uniformMix struct {
	rng  *rand.Rand
	keys int
}

func (m *uniformMix) fill(ids []dataset.SampleID) {
	for i := range ids {
		ids[i] = dataset.SampleID(m.rng.Intn(m.keys))
	}
}

// zipfMix draws keys with rank-frequency skew s: rank r appears with
// probability ∝ 1/(1+r)^s — the canonical importance-sampling access
// pattern where a small hot set absorbs most of the traffic.
type zipfMix struct {
	z *rand.Zipf
}

func (m *zipfMix) fill(ids []dataset.SampleID) {
	for i := range ids {
		ids[i] = dataset.SampleID(m.z.Uint64())
	}
}

// diurnalMix models a hot window drifting over the keyspace during the
// run — the access pattern of importance sampling as the sampler's
// interest shifts between epochs. 90% of keys land in a window of
// `window` keys whose base slides through the full keyspace once per
// rotation period; the remaining 10% are uniform background traffic.
type diurnalMix struct {
	rng    *rand.Rand
	keys   int
	window int
	start  time.Time
}

// diurnalPeriod is the time the hot window takes to sweep the entire
// keyspace once.
const diurnalPeriod = 10 * time.Second

func (m *diurnalMix) fill(ids []dataset.SampleID) {
	frac := float64(time.Since(m.start)%diurnalPeriod) / float64(diurnalPeriod)
	base := int(frac * float64(m.keys))
	for i := range ids {
		if m.rng.Intn(10) == 0 {
			ids[i] = dataset.SampleID(m.rng.Intn(m.keys))
			continue
		}
		ids[i] = dataset.SampleID((base + m.rng.Intn(m.window)) % m.keys)
	}
}

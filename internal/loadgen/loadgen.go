// Package loadgen is the open-loop load harness for the iCache serving
// path: it drives a server with a fixed arrival schedule (requests are
// issued when the schedule says so, never when the previous response
// happens to return) and measures latency from each request's *scheduled*
// start. That makes the numbers coordinated-omission-safe: when the server
// stalls, the requests that should have been issued during the stall still
// count their queueing delay, instead of silently thinning the arrival
// stream the way a closed loop does (the wrk2 argument).
//
// Latencies record into the lock-striped, allocation-free obs.Histogram,
// so the harness itself stays off the profile at six-figure request rates.
// cmd/icache-loadgen wraps this package in flags; the Loadgen benchmark in
// bench_test.go drives it at saturation for the archived BENCH_loadgen.json
// regression gate.
package loadgen

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"icache/internal/dataset"
	"icache/internal/obs"
	"icache/internal/overload"
	"icache/internal/rpc"
	"icache/internal/sampling"
)

// Config parameterizes one load run.
type Config struct {
	// Addr is the cache server's TCP address.
	Addr string
	// Conns is the number of client connections (each with its own issuing
	// goroutine and arrival schedule). Default 8.
	Conns int
	// Batch is the GetBatch size. Default 16.
	Batch int
	// Rate is the offered load in samples/sec across all connections.
	// <= 0 means saturation: requests are scheduled back-to-back, which
	// degenerates into a closed loop probing the server's capacity.
	Rate float64
	// Duration bounds the measured run in wall time (0 = unbounded; then
	// MaxRequests must be set).
	Duration time.Duration
	// MaxRequests bounds the measured run in issued requests across all
	// connections (0 = unbounded; then Duration must be set).
	MaxRequests int64
	// Mix selects the key distribution: "uniform", "zipf" (rank-frequency
	// skew ZipfS), or "diurnal" (a hot window rotating over the keyspace,
	// the shift-change pattern of a shared training cluster). Default zipf.
	Mix string
	// ZipfS is the zipf skew exponent (> 1). Default 1.2.
	ZipfS float64
	// Keys is the requested keyspace: ids are drawn from [0, Keys).
	Keys int
	// Seed makes the uniform/zipf arrival sequence deterministic.
	Seed int64
	// Warmup runs the same workload unrecorded for this long before the
	// measured run (cache fill, connection establishment, JIT-ish warmth).
	Warmup time.Duration
	// DialTimeout bounds each connection dial. Default 5s.
	DialTimeout time.Duration
	// Deadline is the per-request budget, measured from each request's
	// SCHEDULED start (open-loop: a request issued late has already burned
	// part of its budget). The budget propagates to the server in the wire
	// envelope, so overloaded servers drop unservable work instead of
	// answering it late. 0 = no deadline (the historic behavior).
	Deadline time.Duration

	// EpochSamples > 0 switches the harness to epoch-boundary mode: instead
	// of an unbounded arrival stream, each epoch draws a fresh per-epoch
	// selection of EpochSamples ids from [0, Keys) (seeded permutation, so
	// successive epochs overlap partially — the churn a cross-epoch
	// prefetcher has to cover), pushes it as the job's H-list, crosses an
	// epoch boundary, then accesses the selection exactly once, paced at
	// Rate. The report carries cold misses (demand-path backend reads) per
	// epoch. Mix/Duration/MaxRequests are ignored in this mode.
	EpochSamples int
	// Epochs is how many epochs the epoch-boundary mode runs. Default 5.
	Epochs int
	// Clairvoyant pushes each epoch's schedule to the server ahead of its
	// accesses (BeginEpochPlan) from the SECOND epoch on — the first epoch
	// is always a cold reactive baseline. Off: plain BeginEpoch boundaries.
	Clairvoyant bool
}

func (c Config) withDefaults() (Config, error) {
	if c.Addr == "" {
		return c, fmt.Errorf("loadgen: Addr required")
	}
	if c.Conns <= 0 {
		c.Conns = 8
	}
	if c.Batch <= 0 {
		c.Batch = 16
	}
	if c.Mix == "" {
		c.Mix = "zipf"
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.Keys <= 0 {
		return c, fmt.Errorf("loadgen: Keys must be > 0")
	}
	if c.EpochSamples > 0 {
		if c.EpochSamples > c.Keys {
			return c, fmt.Errorf("loadgen: EpochSamples %d exceeds Keys %d", c.EpochSamples, c.Keys)
		}
		if c.Epochs <= 0 {
			c.Epochs = 5
		}
	} else if c.Duration <= 0 && c.MaxRequests <= 0 {
		return c, fmt.Errorf("loadgen: one of Duration or MaxRequests must be set")
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	return c, nil
}

// Report is the outcome of one load run. All latency figures are measured
// from the scheduled start of each request (coordinated-omission-safe).
type Report struct {
	Conns       int     `json:"conns"`
	Batch       int     `json:"batch"`
	Mix         string  `json:"mix"`
	Keys        int     `json:"keys"`
	OfferedRate float64 `json:"offered_samples_per_sec,omitempty"`

	ElapsedSeconds float64 `json:"elapsed_seconds"`
	Requests       int64   `json:"requests"`
	Samples        int64   `json:"samples"`
	// Errors counts transport-level failures only. Overload rejections are
	// classed separately below — a server that sheds cleanly under storm is
	// behaving, not erroring, and the distinction is the whole point of the
	// overload harness: Requests == successes + Errors + Shed + Expired.
	Errors int64 `json:"errors"`
	// Shed counts requests the server rejected with a retry-after hint
	// (admission control working as designed). Always present — a zero
	// here under a storm is itself a finding (the gate never engaged).
	Shed int64 `json:"shed"`
	// Expired counts requests whose deadline budget ran out — dropped
	// server-side (statusExpired) or timed out locally. Always present,
	// so the shed/expired split is visible even when one side is zero.
	Expired int64 `json:"expired"`
	// WarmupRequests counts requests issued and DISCARDED during the
	// warmup phase — they primed caches and connections but are in none
	// of the figures above.
	WarmupRequests int64 `json:"warmup_requests"`
	// Behind counts requests that were issued late (the scheduled instant
	// had already passed — the server, not the generator, was the
	// bottleneck). At saturation every request is behind.
	Behind        int64   `json:"behind"`
	SamplesPerSec float64 `json:"samples_per_sec"`
	// GoodputPerSec is on-time samples/sec: completions that landed within
	// the deadline budget, measured from the scheduled start. With no
	// deadline configured every completion is on time and goodput equals
	// throughput. Under a 2x overload storm this is THE health metric —
	// raw throughput can stay flat while every response arrives uselessly
	// late.
	GoodputPerSec float64 `json:"goodput_samples_per_sec"`

	LatencyMeanMs float64 `json:"latency_mean_ms"`
	LatencyP50Ms  float64 `json:"latency_p50_ms"`
	LatencyP95Ms  float64 `json:"latency_p95_ms"`
	LatencyP99Ms  float64 `json:"latency_p99_ms"`
	LatencyMaxMs  float64 `json:"latency_max_ms"`

	// Epoch-boundary mode (EpochSamples > 0) only.
	Epochs       int  `json:"epochs,omitempty"`
	EpochSamples int  `json:"epoch_samples,omitempty"`
	Clairvoyant  bool `json:"clairvoyant,omitempty"`
	// EpochMisses is the number of cold misses (demand-path backend reads,
	// from the server's DemandFetches counter) each epoch incurred. The
	// first epoch is always a cold baseline; a working clairvoyant plan
	// drives the later entries toward zero.
	EpochMisses []int64 `json:"epoch_cold_misses,omitempty"`
}

// JSON renders the report as indented JSON.
func (r Report) JSON() []byte {
	out, _ := json.MarshalIndent(r, "", "  ")
	return append(out, '\n')
}

// Run executes one load run and reports its measurements. The runner
// dials Conns connections, replays Warmup unrecorded, then issues requests
// on each connection's fixed schedule until Duration or MaxRequests is
// exhausted, whichever comes first.
func Run(cfg Config) (Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Report{}, err
	}

	conns := make([]*rpc.Client, cfg.Conns)
	for i := range conns {
		c, err := rpc.Dial(cfg.Addr, cfg.DialTimeout)
		if err != nil {
			for _, p := range conns[:i] {
				p.Close()
			}
			return Report{}, fmt.Errorf("loadgen: dial conn %d: %w", i, err)
		}
		conns[i] = c
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	if cfg.EpochSamples > 0 {
		return runEpochs(cfg, conns)
	}

	// Per-connection inter-arrival gap: the total offered rate split
	// evenly. Zero gap = saturation probing.
	var interval time.Duration
	if cfg.Rate > 0 {
		perConnReqRate := cfg.Rate / float64(cfg.Batch) / float64(cfg.Conns)
		interval = time.Duration(float64(time.Second) / perConnReqRate)
	}

	var warmupIssued int64
	if cfg.Warmup > 0 {
		warmupIssued = runPhase(cfg, conns, interval, cfg.Warmup, 0, nil)
	}

	hist := obs.NewHistogram()
	counters := &runCounters{}
	start := time.Now()
	runPhase(cfg, conns, interval, cfg.Duration, cfg.MaxRequests, &measured{hist: hist, c: counters})
	elapsed := time.Since(start).Seconds()

	rep := Report{
		Conns:          cfg.Conns,
		Batch:          cfg.Batch,
		Mix:            cfg.Mix,
		Keys:           cfg.Keys,
		OfferedRate:    cfg.Rate,
		ElapsedSeconds: elapsed,
		Requests:       atomic.LoadInt64(&counters.requests),
		Samples:        atomic.LoadInt64(&counters.samples),
		Errors:         atomic.LoadInt64(&counters.errors),
		Shed:           atomic.LoadInt64(&counters.shed),
		Expired:        atomic.LoadInt64(&counters.expired),
		Behind:         atomic.LoadInt64(&counters.behind),
		WarmupRequests: warmupIssued,
	}
	if elapsed > 0 {
		rep.SamplesPerSec = float64(rep.Samples) / elapsed
		rep.GoodputPerSec = float64(atomic.LoadInt64(&counters.goodSamples)) / elapsed
	}
	snap := hist.Snapshot()
	toMs := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	rep.LatencyMeanMs = toMs(snap.Mean())
	rep.LatencyP50Ms = toMs(snap.P50())
	rep.LatencyP95Ms = toMs(snap.P95())
	rep.LatencyP99Ms = toMs(snap.P99())
	rep.LatencyMaxMs = toMs(snap.Max())
	return rep, nil
}

// epochSchedule draws epoch e's selected sample set: a seeded permutation
// of the keyspace truncated to EpochSamples. Successive epochs reshuffle,
// so the selections overlap partially — the cross-epoch churn that makes
// reactive caching miss every epoch.
func epochSchedule(cfg Config, e int) []dataset.SampleID {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(e)))
	perm := rng.Perm(cfg.Keys)
	sched := make([]dataset.SampleID, cfg.EpochSamples)
	for i := range sched {
		sched[i] = dataset.SampleID(perm[i])
	}
	return sched
}

// runEpochs is the epoch-boundary mode: per epoch it pushes the selection
// as the H-list, crosses a boundary (clairvoyantly from epoch 2 on when
// configured), accesses the selection once at the offered rate, and
// records the epoch's cold misses from the server's demand-fetch counter.
func runEpochs(cfg Config, conns []*rpc.Client) (Report, error) {
	ctrl := conns[0]
	hist := obs.NewHistogram()
	counters := &runCounters{}
	m := &measured{hist: hist, c: counters}

	st, err := ctrl.Stats()
	if err != nil {
		return Report{}, fmt.Errorf("loadgen: baseline stats: %w", err)
	}
	base := st.DemandFetches

	misses := make([]int64, 0, cfg.Epochs)
	start := time.Now()
	for e := 0; e < cfg.Epochs; e++ {
		sched := epochSchedule(cfg, e)
		items := make([]sampling.Item, len(sched))
		for i, id := range sched {
			// Descending IV in first-access order: every selected sample is
			// an H-sample this epoch, earlier accesses more important.
			items[i] = sampling.Item{ID: id, IV: float64(len(sched) - i)}
		}
		if err := ctrl.UpdateImportance(items); err != nil {
			return Report{}, fmt.Errorf("loadgen: epoch %d importance push: %w", e+1, err)
		}
		if cfg.Clairvoyant && e > 0 {
			// The schedule is known before the epoch starts (the IIS
			// premise); hand it to the server with the boundary.
			err = ctrl.BeginEpochPlan(e+1, sched)
		} else {
			err = ctrl.BeginEpoch(e + 1)
		}
		if err != nil {
			return Report{}, fmt.Errorf("loadgen: epoch %d boundary: %w", e+1, err)
		}
		issueSchedule(cfg, conns, sched, m)
		if st, err = ctrl.Stats(); err != nil {
			return Report{}, fmt.Errorf("loadgen: epoch %d stats: %w", e+1, err)
		}
		misses = append(misses, st.DemandFetches-base)
		base = st.DemandFetches
	}
	// One final boundary settles the prefetch-outcome ledger: pending
	// tokens of the last epoch sweep to wasted, making the conservation
	// identity exact for callers that assert it.
	if err := ctrl.BeginEpoch(cfg.Epochs + 1); err != nil {
		return Report{}, fmt.Errorf("loadgen: settling boundary: %w", err)
	}
	elapsed := time.Since(start).Seconds()

	rep := Report{
		Conns:        cfg.Conns,
		Batch:        cfg.Batch,
		Mix:          "epoch",
		Keys:         cfg.Keys,
		OfferedRate:  cfg.Rate,
		Epochs:       cfg.Epochs,
		EpochSamples: cfg.EpochSamples,
		Clairvoyant:  cfg.Clairvoyant,
		EpochMisses:  misses,

		ElapsedSeconds: elapsed,
		Requests:       atomic.LoadInt64(&counters.requests),
		Samples:        atomic.LoadInt64(&counters.samples),
		Errors:         atomic.LoadInt64(&counters.errors),
		Shed:           atomic.LoadInt64(&counters.shed),
		Expired:        atomic.LoadInt64(&counters.expired),
		Behind:         atomic.LoadInt64(&counters.behind),
	}
	if elapsed > 0 {
		rep.SamplesPerSec = float64(rep.Samples) / elapsed
		rep.GoodputPerSec = float64(atomic.LoadInt64(&counters.goodSamples)) / elapsed
	}
	snap := hist.Snapshot()
	toMs := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	rep.LatencyMeanMs = toMs(snap.Mean())
	rep.LatencyP50Ms = toMs(snap.P50())
	rep.LatencyP95Ms = toMs(snap.P95())
	rep.LatencyP99Ms = toMs(snap.P99())
	rep.LatencyMaxMs = toMs(snap.Max())
	return rep, nil
}

// issueSchedule accesses one epoch's selection exactly once, in schedule
// order, batches rotating over the connections, paced open-loop at the
// offered rate (Rate <= 0 degenerates to back-to-back issue — which gives
// a clairvoyant plan no lead time to work ahead of).
func issueSchedule(cfg Config, conns []*rpc.Client, sched []dataset.SampleID, m *measured) {
	var interval time.Duration
	if cfg.Rate > 0 {
		interval = time.Duration(float64(cfg.Batch) / cfg.Rate * float64(time.Second))
	}
	start := time.Now()
	var got int64
	sink := func(samples []rpc.Sample) error {
		got = int64(len(samples))
		return nil
	}
	for k, off := 0, 0; off < len(sched); k, off = k+1, off+cfg.Batch {
		end := off + cfg.Batch
		if end > len(sched) {
			end = len(sched)
		}
		ids := sched[off:end]
		schedAt := time.Now()
		if interval > 0 {
			schedAt = start.Add(interval * time.Duration(k))
			if wait := time.Until(schedAt); wait > 0 {
				time.Sleep(wait)
			} else {
				atomic.AddInt64(&m.c.behind, 1)
			}
		}
		got = 0
		err := conns[k%len(conns)].GetBatchFunc(ids, sink)
		lat := time.Since(schedAt)
		m.hist.Record(lat)
		atomic.AddInt64(&m.c.requests, 1)
		if err != nil {
			var ra *overload.RetryAfterError
			switch {
			case errors.As(err, &ra):
				atomic.AddInt64(&m.c.shed, 1)
			case errors.Is(err, rpc.ErrDeadlineExceeded) || errors.Is(err, context.DeadlineExceeded):
				atomic.AddInt64(&m.c.expired, 1)
			default:
				atomic.AddInt64(&m.c.errors, 1)
			}
			continue
		}
		atomic.AddInt64(&m.c.samples, got)
		atomic.AddInt64(&m.c.goodSamples, got)
	}
}

// runCounters aggregates the run's atomics.
type runCounters struct {
	requests    int64
	samples     int64
	errors      int64
	shed        int64
	expired     int64
	goodSamples int64
	behind      int64
}

// measured carries the recording sinks of the measured phase (nil during
// warmup: same loop, nothing recorded).
type measured struct {
	hist *obs.Histogram
	c    *runCounters
}

// runPhase drives every connection for one phase (warmup or measured) and
// reports how many requests it actually issued (the warmup-discard count
// when m is nil). budget is the shared request budget (0 = unbounded).
func runPhase(cfg Config, conns []*rpc.Client, interval, duration time.Duration, budget int64, m *measured) int64 {
	var issued int64 // shared budget counter
	var sent int64   // requests actually put on the wire this phase
	start := time.Now()
	var deadline time.Time
	if duration > 0 {
		deadline = start.Add(duration)
	}
	var wg sync.WaitGroup
	for i, conn := range conns {
		wg.Add(1)
		go func(i int, conn *rpc.Client) {
			defer wg.Done()
			mix := newMix(cfg, i, start)
			ids := make([]dataset.SampleID, cfg.Batch)
			// Borrowed-read sink: counts the batch without retaining the
			// samples, so the client recycles each response frame and the
			// lane stays allocation-free per request. One closure per lane,
			// hoisted out of the issue loop.
			var got int64
			sink := func(samples []rpc.Sample) error {
				got = int64(len(samples))
				return nil
			}
			// Stagger connection phases so arrivals interleave instead of
			// thundering together at each tick.
			offset := time.Duration(0)
			if interval > 0 {
				offset = interval * time.Duration(i) / time.Duration(len(conns))
			}
			for k := int64(0); ; k++ {
				// At saturation (no interval) the schedule degenerates to
				// "now": the loop is closed and latency equals service time.
				var sched time.Time
				if interval > 0 {
					sched = start.Add(offset + interval*time.Duration(k))
				} else {
					sched = time.Now()
				}
				if !deadline.IsZero() && sched.After(deadline) {
					return
				}
				if budget > 0 && atomic.AddInt64(&issued, 1) > budget {
					return
				}
				now := time.Now()
				if wait := sched.Sub(now); wait > 0 {
					time.Sleep(wait)
				} else if m != nil {
					atomic.AddInt64(&m.c.behind, 1)
				}
				mix.fill(ids)
				got = 0
				atomic.AddInt64(&sent, 1)
				var err error
				if cfg.Deadline > 0 {
					// The budget runs from the SCHEDULED start: a request that
					// sat behind a stalled server has already spent part of it.
					rctx, cancel := context.WithDeadline(context.Background(), sched.Add(cfg.Deadline))
					err = conn.GetBatchFuncCtx(rctx, ids, sink)
					cancel()
				} else {
					err = conn.GetBatchFunc(ids, sink)
				}
				if m == nil {
					continue
				}
				// Open-loop latency: completion minus *scheduled* start, so
				// time spent waiting behind a stalled server is charged to
				// every request the stall delayed.
				lat := time.Since(sched)
				m.hist.Record(lat)
				atomic.AddInt64(&m.c.requests, 1)
				if err != nil {
					// Overload rejections are the server protecting itself, not
					// transport failures; count them apart so the error column
					// stays a real alarm signal.
					var ra *overload.RetryAfterError
					switch {
					case errors.As(err, &ra):
						atomic.AddInt64(&m.c.shed, 1)
					case errors.Is(err, rpc.ErrDeadlineExceeded) || errors.Is(err, context.DeadlineExceeded):
						atomic.AddInt64(&m.c.expired, 1)
					default:
						atomic.AddInt64(&m.c.errors, 1)
					}
					continue
				}
				atomic.AddInt64(&m.c.samples, got)
				if cfg.Deadline <= 0 || lat <= cfg.Deadline {
					atomic.AddInt64(&m.c.goodSamples, got)
				}
			}
		}(i, conn)
	}
	wg.Wait()
	return atomic.LoadInt64(&sent)
}

// Package loadgen is the open-loop load harness for the iCache serving
// path: it drives a server with a fixed arrival schedule (requests are
// issued when the schedule says so, never when the previous response
// happens to return) and measures latency from each request's *scheduled*
// start. That makes the numbers coordinated-omission-safe: when the server
// stalls, the requests that should have been issued during the stall still
// count their queueing delay, instead of silently thinning the arrival
// stream the way a closed loop does (the wrk2 argument).
//
// Latencies record into the lock-striped, allocation-free obs.Histogram,
// so the harness itself stays off the profile at six-figure request rates.
// cmd/icache-loadgen wraps this package in flags; the Loadgen benchmark in
// bench_test.go drives it at saturation for the archived BENCH_loadgen.json
// regression gate.
package loadgen

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"icache/internal/dataset"
	"icache/internal/obs"
	"icache/internal/rpc"
)

// Config parameterizes one load run.
type Config struct {
	// Addr is the cache server's TCP address.
	Addr string
	// Conns is the number of client connections (each with its own issuing
	// goroutine and arrival schedule). Default 8.
	Conns int
	// Batch is the GetBatch size. Default 16.
	Batch int
	// Rate is the offered load in samples/sec across all connections.
	// <= 0 means saturation: requests are scheduled back-to-back, which
	// degenerates into a closed loop probing the server's capacity.
	Rate float64
	// Duration bounds the measured run in wall time (0 = unbounded; then
	// MaxRequests must be set).
	Duration time.Duration
	// MaxRequests bounds the measured run in issued requests across all
	// connections (0 = unbounded; then Duration must be set).
	MaxRequests int64
	// Mix selects the key distribution: "uniform", "zipf" (rank-frequency
	// skew ZipfS), or "diurnal" (a hot window rotating over the keyspace,
	// the shift-change pattern of a shared training cluster). Default zipf.
	Mix string
	// ZipfS is the zipf skew exponent (> 1). Default 1.2.
	ZipfS float64
	// Keys is the requested keyspace: ids are drawn from [0, Keys).
	Keys int
	// Seed makes the uniform/zipf arrival sequence deterministic.
	Seed int64
	// Warmup runs the same workload unrecorded for this long before the
	// measured run (cache fill, connection establishment, JIT-ish warmth).
	Warmup time.Duration
	// DialTimeout bounds each connection dial. Default 5s.
	DialTimeout time.Duration
}

func (c Config) withDefaults() (Config, error) {
	if c.Addr == "" {
		return c, fmt.Errorf("loadgen: Addr required")
	}
	if c.Conns <= 0 {
		c.Conns = 8
	}
	if c.Batch <= 0 {
		c.Batch = 16
	}
	if c.Mix == "" {
		c.Mix = "zipf"
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.Keys <= 0 {
		return c, fmt.Errorf("loadgen: Keys must be > 0")
	}
	if c.Duration <= 0 && c.MaxRequests <= 0 {
		return c, fmt.Errorf("loadgen: one of Duration or MaxRequests must be set")
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	return c, nil
}

// Report is the outcome of one load run. All latency figures are measured
// from the scheduled start of each request (coordinated-omission-safe).
type Report struct {
	Conns       int     `json:"conns"`
	Batch       int     `json:"batch"`
	Mix         string  `json:"mix"`
	Keys        int     `json:"keys"`
	OfferedRate float64 `json:"offered_samples_per_sec,omitempty"`

	ElapsedSeconds float64 `json:"elapsed_seconds"`
	Requests       int64   `json:"requests"`
	Samples        int64   `json:"samples"`
	Errors         int64   `json:"errors"`
	// Behind counts requests that were issued late (the scheduled instant
	// had already passed — the server, not the generator, was the
	// bottleneck). At saturation every request is behind.
	Behind        int64   `json:"behind"`
	SamplesPerSec float64 `json:"samples_per_sec"`

	LatencyMeanMs float64 `json:"latency_mean_ms"`
	LatencyP50Ms  float64 `json:"latency_p50_ms"`
	LatencyP95Ms  float64 `json:"latency_p95_ms"`
	LatencyP99Ms  float64 `json:"latency_p99_ms"`
	LatencyMaxMs  float64 `json:"latency_max_ms"`
}

// JSON renders the report as indented JSON.
func (r Report) JSON() []byte {
	out, _ := json.MarshalIndent(r, "", "  ")
	return append(out, '\n')
}

// Run executes one load run and reports its measurements. The runner
// dials Conns connections, replays Warmup unrecorded, then issues requests
// on each connection's fixed schedule until Duration or MaxRequests is
// exhausted, whichever comes first.
func Run(cfg Config) (Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Report{}, err
	}

	conns := make([]*rpc.Client, cfg.Conns)
	for i := range conns {
		c, err := rpc.Dial(cfg.Addr, cfg.DialTimeout)
		if err != nil {
			for _, p := range conns[:i] {
				p.Close()
			}
			return Report{}, fmt.Errorf("loadgen: dial conn %d: %w", i, err)
		}
		conns[i] = c
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	// Per-connection inter-arrival gap: the total offered rate split
	// evenly. Zero gap = saturation probing.
	var interval time.Duration
	if cfg.Rate > 0 {
		perConnReqRate := cfg.Rate / float64(cfg.Batch) / float64(cfg.Conns)
		interval = time.Duration(float64(time.Second) / perConnReqRate)
	}

	if cfg.Warmup > 0 {
		runPhase(cfg, conns, interval, cfg.Warmup, 0, nil)
	}

	hist := obs.NewHistogram()
	counters := &runCounters{}
	start := time.Now()
	runPhase(cfg, conns, interval, cfg.Duration, cfg.MaxRequests, &measured{hist: hist, c: counters})
	elapsed := time.Since(start).Seconds()

	rep := Report{
		Conns:          cfg.Conns,
		Batch:          cfg.Batch,
		Mix:            cfg.Mix,
		Keys:           cfg.Keys,
		OfferedRate:    cfg.Rate,
		ElapsedSeconds: elapsed,
		Requests:       atomic.LoadInt64(&counters.requests),
		Samples:        atomic.LoadInt64(&counters.samples),
		Errors:         atomic.LoadInt64(&counters.errors),
		Behind:         atomic.LoadInt64(&counters.behind),
	}
	if elapsed > 0 {
		rep.SamplesPerSec = float64(rep.Samples) / elapsed
	}
	snap := hist.Snapshot()
	toMs := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	rep.LatencyMeanMs = toMs(snap.Mean())
	rep.LatencyP50Ms = toMs(snap.P50())
	rep.LatencyP95Ms = toMs(snap.P95())
	rep.LatencyP99Ms = toMs(snap.P99())
	rep.LatencyMaxMs = toMs(snap.Max())
	return rep, nil
}

// runCounters aggregates the run's atomics.
type runCounters struct {
	requests int64
	samples  int64
	errors   int64
	behind   int64
}

// measured carries the recording sinks of the measured phase (nil during
// warmup: same loop, nothing recorded).
type measured struct {
	hist *obs.Histogram
	c    *runCounters
}

// runPhase drives every connection for one phase (warmup or measured).
// budget is the shared request budget (0 = unbounded).
func runPhase(cfg Config, conns []*rpc.Client, interval, duration time.Duration, budget int64, m *measured) {
	var issued int64 // shared budget counter
	start := time.Now()
	var deadline time.Time
	if duration > 0 {
		deadline = start.Add(duration)
	}
	var wg sync.WaitGroup
	for i, conn := range conns {
		wg.Add(1)
		go func(i int, conn *rpc.Client) {
			defer wg.Done()
			mix := newMix(cfg, i, start)
			ids := make([]dataset.SampleID, cfg.Batch)
			// Borrowed-read sink: counts the batch without retaining the
			// samples, so the client recycles each response frame and the
			// lane stays allocation-free per request. One closure per lane,
			// hoisted out of the issue loop.
			var got int64
			sink := func(samples []rpc.Sample) error {
				got = int64(len(samples))
				return nil
			}
			// Stagger connection phases so arrivals interleave instead of
			// thundering together at each tick.
			offset := time.Duration(0)
			if interval > 0 {
				offset = interval * time.Duration(i) / time.Duration(len(conns))
			}
			for k := int64(0); ; k++ {
				// At saturation (no interval) the schedule degenerates to
				// "now": the loop is closed and latency equals service time.
				var sched time.Time
				if interval > 0 {
					sched = start.Add(offset + interval*time.Duration(k))
				} else {
					sched = time.Now()
				}
				if !deadline.IsZero() && sched.After(deadline) {
					return
				}
				if budget > 0 && atomic.AddInt64(&issued, 1) > budget {
					return
				}
				now := time.Now()
				if wait := sched.Sub(now); wait > 0 {
					time.Sleep(wait)
				} else if m != nil {
					atomic.AddInt64(&m.c.behind, 1)
				}
				mix.fill(ids)
				got = 0
				err := conn.GetBatchFunc(ids, sink)
				if m == nil {
					continue
				}
				// Open-loop latency: completion minus *scheduled* start, so
				// time spent waiting behind a stalled server is charged to
				// every request the stall delayed.
				m.hist.Record(time.Since(sched))
				atomic.AddInt64(&m.c.requests, 1)
				if err != nil {
					atomic.AddInt64(&m.c.errors, 1)
					continue
				}
				atomic.AddInt64(&m.c.samples, got)
			}
		}(i, conn)
	}
	wg.Wait()
}

package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// Timeline is a fixed-window, in-process time-series engine: a ring of
// periodic snapshots of every stats family, taken by a caller-supplied
// collector and served as JSON on /debug/timeline. It exists so a node
// keeps its own recent history — "what did hit ratio do over the last ten
// minutes" — without any external scrape infrastructure; icache-top renders
// it live across a cluster.
//
// Retention math: capacity points at one interval each. The daemons
// default to 600 points at 1s (ten minutes of history, ≈600 × the size of
// one map snapshot ≈ a few hundred KB). Values are float64 so counters and
// gauges share one representation; rates are computed by consumers from
// successive points.
//
// Collectors run outside any Timeline lock, so they may take whatever
// stats locks they need. Points are maps; encoding/json sorts map keys, so
// the rendered document is deterministic for fixed inputs (the byte-pinned
// golden relies on this).

// Point is one timeline snapshot.
type Point struct {
	At     int64              `json:"at_ns"`
	Values map[string]float64 `json:"values"`
}

// Timeline is the snapshot ring. Construct with NewTimeline.
type Timeline struct {
	collect func() map[string]float64
	now     func() time.Time // injectable for deterministic tests

	mu    sync.Mutex
	ring  []Point
	next  int
	total uint64
}

// NewTimeline builds a timeline retaining capacity points (minimum 1),
// each produced by collect.
func NewTimeline(capacity int, collect func() map[string]float64) *Timeline {
	if capacity < 1 {
		capacity = 1
	}
	return &Timeline{
		collect: collect,
		now:     time.Now,
		ring:    make([]Point, capacity),
	}
}

// SetClock replaces the wall clock (deterministic tests only; not safe
// concurrently with Tick).
func (t *Timeline) SetClock(now func() time.Time) { t.now = now }

// Tick takes one snapshot and appends it to the ring. Safe for concurrent
// use with Snapshot and other Ticks; no-op on a nil timeline.
func (t *Timeline) Tick() {
	if t == nil {
		return
	}
	p := Point{At: t.now().UnixNano(), Values: t.collect()}
	t.mu.Lock()
	t.ring[t.next] = p
	t.next = (t.next + 1) % len(t.ring)
	t.total++
	t.mu.Unlock()
}

// Run ticks every interval until stop closes. Call in a goroutine.
func (t *Timeline) Run(interval time.Duration, stop <-chan struct{}) {
	if t == nil || interval <= 0 {
		return
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			t.Tick()
		}
	}
}

// Snapshot returns the retained points oldest-first.
func (t *Timeline) Snapshot() []Point {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.total
	if n > uint64(len(t.ring)) {
		n = uint64(len(t.ring))
	}
	out := make([]Point, 0, n)
	// Oldest entry sits at the insert cursor once the ring has wrapped,
	// at slot 0 before.
	start := 0
	if t.total > uint64(len(t.ring)) {
		start = t.next
	}
	for k := uint64(0); k < n; k++ {
		out = append(out, t.ring[(start+int(k))%len(t.ring)])
	}
	return out
}

// Total reports how many points were ever recorded.
func (t *Timeline) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// timelineDoc is the /debug/timeline JSON document.
type timelineDoc struct {
	Total  uint64  `json:"total"`
	Points []Point `json:"points"`
}

// Handler serves the timeline as JSON on /debug/timeline.
func (t *Timeline) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		points := t.Snapshot()
		if points == nil {
			points = []Point{}
		}
		doc := timelineDoc{Total: t.Total(), Points: points}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
}

package obs

import (
	"math/rand"
	"testing"
	"time"

	"icache/internal/metrics"
)

// TestQuantileMatchesSeriesPercentile pins the documented consistency
// between the two quantile estimators in the repo: metrics.Series.Percentile
// (exact, linear interpolation between order statistics) and
// HistSnapshot.Quantile (same interpolation inside a log-scaled bucket).
// On identical data the histogram estimate must land within the bucket
// that holds the exact percentile — i.e. within a factor of two, the
// histogram's resolution.
func TestQuantileMatchesSeriesPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := 50 + rng.Intn(2000)
		h := NewHistogram()
		series := make(metrics.Series, 0, n)
		for i := 0; i < n; i++ {
			// Log-uniform latencies, 1µs .. ~1s: the shape real stage
			// timings have.
			d := time.Duration(float64(time.Microsecond) * float64(uint64(1)<<uint(rng.Intn(21))) * (1 + rng.Float64()))
			h.Record(d)
			series = append(series, float64(d))
		}
		snap := h.Snapshot()
		for _, p := range []float64{10, 50, 90, 95, 99} {
			exact := series.Percentile(p)
			est := float64(snap.Quantile(p / 100))
			if est < exact/2-1 || est > exact*2+1 {
				t.Fatalf("trial %d: p%g histogram estimate %g outside factor-2 band of exact %g",
					trial, p, est, exact)
			}
		}
		// The endpoints agree more tightly: p100 is exactly the max.
		if got, want := float64(snap.Quantile(1)), series.Percentile(100); got != want {
			t.Fatalf("trial %d: p100 estimate %g != exact max %g", trial, got, want)
		}
	}
}

package obs

import (
	"fmt"
	"io"
	"time"
)

// RingStats is the trace-ring summary the /debug/obs page renders. The
// caller extracts it from whatever recorder it holds (nil = tracing
// disabled), keeping this package free of a dependency on internal/trace.
type RingStats struct {
	Retained int    // events currently held in the ring
	Total    uint64 // events ever recorded (including overwritten)
}

// WriteDebug renders the human-readable observability summary shared by
// the icache-server and icache-dkv /debug/obs endpoints: the per-stage
// latency table (count, p50/p95/p99, max), the trace ring's state, and the
// slow-request threshold.
func WriteDebug(w io.Writer, reg *Registry, ring *RingStats, slowThresh time.Duration) {
	snaps := reg.Snapshot()
	if len(snaps) == 0 {
		fmt.Fprintln(w, "stage histograms: disabled")
	} else {
		fmt.Fprintf(w, "%-22s %10s %12s %12s %12s %12s\n",
			"stage", "count", "p50", "p95", "p99", "max")
		for _, ns := range snaps {
			fmt.Fprintf(w, "%-22s %10d %12s %12s %12s %12s\n",
				ns.Name, ns.Snap.Count, ns.Snap.P50(), ns.Snap.P95(), ns.Snap.P99(), ns.Snap.Max())
		}
	}
	if ring == nil {
		fmt.Fprintln(w, "trace ring: disabled")
	} else {
		fmt.Fprintf(w, "trace ring: %d retained / %d total\n", ring.Retained, ring.Total)
	}
	if slowThresh > 0 {
		fmt.Fprintf(w, "slow-request threshold: %s\n", slowThresh)
	} else {
		fmt.Fprintln(w, "slow-request log: disabled")
	}
}

package obs

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexBounds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-5, 0},
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{1023, 10},
		{1024, 11},
		{1 << 50, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.d, got, c.want)
		}
	}
	for k := 1; k < NumBuckets; k++ {
		lo, hi := bucketLower(k), BucketUpper(k)
		if bucketIndex(time.Duration(lo)) != k || bucketIndex(time.Duration(hi)) != k {
			t.Fatalf("bucket %d bounds [%d,%d] do not map back to bucket %d", k, lo, hi, k)
		}
	}
}

func TestNilHistogramIsNoOp(t *testing.T) {
	var h *Histogram
	h.Record(time.Millisecond) // must not panic
	h.Since(time.Now())
	s := h.Snapshot()
	if s.Count != 0 || s.Quantile(0.5) != 0 {
		t.Fatalf("nil histogram snapshot not empty: %+v", s)
	}
	var r *Registry
	if r.Hist("x") != nil {
		t.Fatal("nil registry handed out a non-nil histogram")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot not nil")
	}
}

func TestRecordSnapshotBasics(t *testing.T) {
	h := NewHistogram()
	var sum time.Duration
	const n = 1000
	for i := 1; i <= n; i++ {
		d := time.Duration(i) * time.Microsecond
		h.Record(d)
		sum += d
	}
	s := h.Snapshot()
	if s.Count != n {
		t.Fatalf("count = %d, want %d", s.Count, n)
	}
	if time.Duration(s.Sum) != sum {
		t.Fatalf("sum = %d, want %d", s.Sum, sum)
	}
	if s.Max() != n*time.Microsecond {
		t.Fatalf("max = %s, want %s", s.Max(), n*time.Microsecond)
	}
	// Quantiles must be monotone and bounded by [0, max].
	prev := time.Duration(-1)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1} {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("quantile %.2f = %s < previous %s (non-monotone)", q, v, prev)
		}
		if v < 0 || v > s.Max() {
			t.Fatalf("quantile %.2f = %s outside [0, %s]", q, v, s.Max())
		}
		prev = v
	}
	// The median of 1..1000 µs is ~500 µs; bucket resolution is a factor of
	// two, so the estimate must land within [250 µs, 1 ms].
	if p50 := s.P50(); p50 < 250*time.Microsecond || p50 > time.Millisecond {
		t.Fatalf("p50 = %s, want within [250µs, 1ms]", p50)
	}
}

// TestMergeQuantilesBounded is the merge property test: for any two
// recorded histograms, every quantile of merge(a,b) lies within the
// interval spanned by the inputs' same-rank quantiles, widened by one
// bucket (factor of two) for estimator resolution.
func TestMergeQuantilesBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		a, b := NewHistogram(), NewHistogram()
		for i, h := range []*Histogram{a, b} {
			n := 1 + rng.Intn(500)
			scale := time.Duration(1+rng.Intn(1000*(i+1))) * time.Microsecond
			for j := 0; j < n; j++ {
				h.Record(time.Duration(rng.Int63n(int64(scale) + 1)))
			}
		}
		sa, sb := a.Snapshot(), b.Snapshot()
		m := Merge(sa, sb)
		if m.Count != sa.Count+sb.Count || m.Sum != sa.Sum+sb.Sum {
			t.Fatalf("trial %d: merged count/sum mismatch", trial)
		}
		if m.Max() != maxDur(sa.Max(), sb.Max()) {
			t.Fatalf("trial %d: merged max %s, want %s", trial, m.Max(), maxDur(sa.Max(), sb.Max()))
		}
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
			qa, qb, qm := sa.Quantile(q), sb.Quantile(q), m.Quantile(q)
			lo, hi := minDur(qa, qb), maxDur(qa, qb)
			if qm < lo/2 || qm > hi*2+1 {
				t.Fatalf("trial %d: merged q%.2f = %s outside [%s/2, %s*2]", trial, q, qm, lo, hi)
			}
		}
	}
}

func TestMergeWithEmpty(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Millisecond)
	s := h.Snapshot()
	if m := Merge(s, HistSnapshot{}); m != s {
		t.Fatalf("merge with empty changed snapshot: %+v vs %+v", m, s)
	}
	var empty HistSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty snapshot quantile/mean not zero")
	}
}

// TestConcurrentRecord drives parallel recorders (run under -race by the
// Makefile's test-race target) and checks conservation of count and sum.
func TestConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				h.Record(time.Duration(rng.Int63n(int64(time.Second))))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	var bucketSum uint64
	for _, b := range s.Buckets {
		bucketSum += b
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, s.Count)
	}
}

func TestRegistryStableOrder(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		r.Hist(name).Record(time.Millisecond)
	}
	if a, b := r.Hist("alpha"), r.Hist("alpha"); a != b {
		t.Fatal("Hist not idempotent")
	}
	snap := r.Snapshot()
	want := []string{"alpha", "mid", "zeta"}
	if len(snap) != len(want) {
		t.Fatalf("snapshot has %d entries, want %d", len(snap), len(want))
	}
	for i, ns := range snap {
		if ns.Name != want[i] {
			t.Fatalf("snapshot[%d] = %q, want %q", i, ns.Name, want[i])
		}
	}
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

package obs

import (
	"bufio"
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// TestPromGolden renders a deterministic document — counters, gauges, and
// a histogram with known contents — and compares it byte-for-byte against
// the checked-in golden file. Run with -update to regenerate.
func TestPromGolden(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Counter("icache_test_hits_total", "requests served from cached copies", 42)
	p.Gauge("icache_test_depth", "current queue depth", 3)
	p.Counter("icache_test_escapes_total", "help with\nnewline and \\ backslash", 1)
	h := NewHistogram()
	for _, d := range []time.Duration{
		time.Microsecond, 2 * time.Microsecond, 100 * time.Microsecond,
		time.Millisecond, 10 * time.Millisecond, 10 * time.Millisecond,
	} {
		h.Record(d)
	}
	p.Histogram("icache_test_stage_seconds", "per-stage latency", h.Snapshot())
	reg := NewRegistry()
	reg.Hist("beta").Record(time.Millisecond)
	reg.Hist("alpha").Record(time.Microsecond)
	p.Registry("icache_stage", reg)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}

	goldenPath := filepath.Join("testdata", "prom.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition differs from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	// A second render must be byte-identical: the exposition is stable.
	var again bytes.Buffer
	p2 := NewPromWriter(&again)
	p2.Counter("icache_test_hits_total", "requests served from cached copies", 42)
	if !bytes.HasPrefix(buf.Bytes(), again.Bytes()) {
		t.Fatal("re-render of the first family differs")
	}
}

// TestPromWellFormed validates the structural rules of the text format on
// a rendered histogram: every TYPE'd family, cumulative monotone buckets,
// a final +Inf bucket equal to _count.
func TestPromWellFormed(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Histogram("x_seconds", "h", h.Snapshot())
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}

	var bucketVals []uint64
	var count uint64
	var sawInf, sawSum, sawCount bool
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "#"):
			continue
		case strings.HasPrefix(line, "x_seconds_bucket{le=\"+Inf\"}"):
			sawInf = true
			v, err := strconv.ParseUint(strings.Fields(line)[1], 10, 64)
			if err != nil {
				t.Fatal(err)
			}
			bucketVals = append(bucketVals, v)
		case strings.HasPrefix(line, "x_seconds_bucket"):
			v, err := strconv.ParseUint(strings.Fields(line)[1], 10, 64)
			if err != nil {
				t.Fatal(err)
			}
			bucketVals = append(bucketVals, v)
		case strings.HasPrefix(line, "x_seconds_sum"):
			sawSum = true
		case strings.HasPrefix(line, "x_seconds_count"):
			sawCount = true
			v, err := strconv.ParseUint(strings.Fields(line)[1], 10, 64)
			if err != nil {
				t.Fatal(err)
			}
			count = v
		}
	}
	if !sawInf || !sawSum || !sawCount {
		t.Fatalf("missing histogram lines: inf=%v sum=%v count=%v", sawInf, sawSum, sawCount)
	}
	if len(bucketVals) != NumBuckets+1 {
		t.Fatalf("%d bucket lines, want %d", len(bucketVals), NumBuckets+1)
	}
	for i := 1; i < len(bucketVals); i++ {
		if bucketVals[i] < bucketVals[i-1] {
			t.Fatalf("bucket counts not cumulative at %d: %v", i, bucketVals)
		}
	}
	if bucketVals[len(bucketVals)-1] != count {
		t.Fatalf("+Inf bucket %d != count %d", bucketVals[len(bucketVals)-1], count)
	}
}

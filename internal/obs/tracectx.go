package obs

import (
	"sync/atomic"
	"time"
)

// TraceCtx is the compact cross-node request-tracing context carried in an
// optional wire-frame envelope through the rpc and dkv protocols: a 64-bit
// trace ID plus a hop counter. Hop 0 is the training client; each
// downstream network hop (cache node → peer owner, cache node → directory)
// increments it. The zero value means "untraced" — ID 0 is never issued.
type TraceCtx struct {
	ID  uint64
	Hop uint8
}

// Valid reports whether the context carries a live trace.
func (t TraceCtx) Valid() bool { return t.ID != 0 }

// Next is the context the current node forwards downstream: same trace,
// one hop deeper. The hop counter saturates instead of wrapping so a
// routing loop cannot masquerade as a fresh chain.
func (t TraceCtx) Next() TraceCtx {
	if t.Hop == ^uint8(0) {
		return t
	}
	return TraceCtx{ID: t.ID, Hop: t.Hop + 1}
}

// traceSeq seeds trace-ID generation; mixed through splitmix64 so
// consecutive IDs share no prefix bits (they double as hash keys).
var traceSeq uint64 = uint64(time.Now().UnixNano())

// NewTraceID issues a process-unique, never-zero trace ID.
func NewTraceID() uint64 {
	for {
		x := atomic.AddUint64(&traceSeq, 0x9E3779B97F4A7C15)
		// splitmix64 finalizer.
		x ^= x >> 30
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 27
		x *= 0x94D049BB133111EB
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

// Sampler is an atomic 1-in-N sampler: Sample reports true on every N-th
// call. A nil Sampler (and every<=0) never samples, following the
// nil-recorder pattern.
type Sampler struct {
	every uint64
	n     uint64
}

// NewSampler builds a 1-in-every sampler; every <= 0 returns nil (never
// sample). every == 1 samples everything.
func NewSampler(every int) *Sampler {
	if every <= 0 {
		return nil
	}
	return &Sampler{every: uint64(every)}
}

// Sample reports whether this call is sampled.
func (s *Sampler) Sample() bool {
	if s == nil {
		return false
	}
	return atomic.AddUint64(&s.n, 1)%s.every == 0
}

// RateLimiter allows at most one event per interval (a CAS on the last
// allowed timestamp — no locks, no allocation). It rate-limits the
// slow-request log so a latency storm cannot flood the process log. A nil
// limiter allows everything.
type RateLimiter struct {
	interval int64 // nanoseconds
	last     int64 // unix nanos of the last allowed event
}

// NewRateLimiter builds a limiter allowing one event per interval;
// interval <= 0 returns nil (no limiting).
func NewRateLimiter(interval time.Duration) *RateLimiter {
	if interval <= 0 {
		return nil
	}
	return &RateLimiter{interval: int64(interval)}
}

// Allow reports whether an event occurring now may pass.
func (l *RateLimiter) Allow(now time.Time) bool {
	if l == nil {
		return true
	}
	ns := now.UnixNano()
	for {
		last := atomic.LoadInt64(&l.last)
		if ns-last < l.interval {
			return false
		}
		if atomic.CompareAndSwapInt64(&l.last, last, ns) {
			return true
		}
	}
}

package obs

import (
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTimelineWraparound verifies oldest-first ordering across the ring
// boundary: after 10 ticks into a 4-slot ring, the snapshot is ticks 7..10.
func TestTimelineWraparound(t *testing.T) {
	var n int64
	tl := NewTimeline(4, func() map[string]float64 {
		return map[string]float64{"tick": float64(atomic.AddInt64(&n, 1))}
	})
	var fake int64
	tl.SetClock(func() time.Time {
		fake += 1000
		return time.Unix(0, fake)
	})
	for i := 0; i < 10; i++ {
		tl.Tick()
	}
	if got := tl.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	points := tl.Snapshot()
	if len(points) != 4 {
		t.Fatalf("retained %d points, want 4", len(points))
	}
	for i, p := range points {
		if want := float64(7 + i); p.Values["tick"] != want {
			t.Fatalf("point %d tick = %g, want %g", i, p.Values["tick"], want)
		}
		if i > 0 && points[i].At <= points[i-1].At {
			t.Fatalf("points not oldest-first at %d: %d <= %d", i, points[i].At, points[i-1].At)
		}
	}
}

// TestTimelineConcurrent storms the ring with concurrent Ticks and
// Snapshots; under -race this is the data-race proof. Collectors run
// outside the ring lock, so a collector that itself takes locks cannot
// deadlock against Snapshot.
func TestTimelineConcurrent(t *testing.T) {
	var n int64
	tl := NewTimeline(32, func() map[string]float64 {
		return map[string]float64{"n": float64(atomic.AddInt64(&n, 1))}
	})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tl.Tick()
			}
		}()
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				points := tl.Snapshot()
				for k := 1; k < len(points); k++ {
					if points[k].Values == nil {
						t.Error("snapshot exposed an unwritten point")
						return
					}
				}
				_ = tl.Total()
			}
		}()
	}
	wg.Wait()
	if got := tl.Total(); got != 2000 {
		t.Fatalf("Total = %d, want 2000", got)
	}
}

// TestTimelineNil proves the nil-timeline no-op contract.
func TestTimelineNil(t *testing.T) {
	var tl *Timeline
	tl.Tick()
	tl.Run(time.Millisecond, nil) // returns immediately on nil
	if tl.Total() != 0 || tl.Snapshot() != nil {
		t.Fatal("nil timeline must report zero state")
	}
}

// timelineGolden is the byte-exact /debug/timeline document for the fixed
// clock and collector below. encoding/json sorts map keys, so the document
// is deterministic; if this golden ever changes, every consumer parsing the
// endpoint (icache-top, dashboards) needs a second look.
const timelineGolden = `{
  "total": 2,
  "points": [
    {
      "at_ns": 1000,
      "values": {
        "hits": 1,
        "ratio": 0.5
      }
    },
    {
      "at_ns": 2000,
      "values": {
        "hits": 2,
        "ratio": 0.5
      }
    }
  ]
}
`

// TestTimelineHandlerGolden byte-pins the /debug/timeline JSON document.
func TestTimelineHandlerGolden(t *testing.T) {
	var n int64
	tl := NewTimeline(8, func() map[string]float64 {
		return map[string]float64{
			"hits":  float64(atomic.AddInt64(&n, 1)),
			"ratio": 0.5,
		}
	})
	var fake int64
	tl.SetClock(func() time.Time {
		fake += 1000
		return time.Unix(0, fake)
	})
	tl.Tick()
	tl.Tick()

	rr := httptest.NewRecorder()
	tl.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/timeline", nil))
	if got := rr.Body.String(); got != timelineGolden {
		t.Fatalf("timeline document drifted:\ngot:\n%s\nwant:\n%s", got, timelineGolden)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
}

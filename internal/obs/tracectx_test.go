package obs

import (
	"sync"
	"testing"
	"time"
)

func TestTraceCtx(t *testing.T) {
	var zero TraceCtx
	if zero.Valid() {
		t.Fatal("zero TraceCtx claims validity")
	}
	tc := TraceCtx{ID: NewTraceID()}
	if !tc.Valid() || tc.Hop != 0 {
		t.Fatalf("fresh ctx invalid: %+v", tc)
	}
	next := tc.Next()
	if next.ID != tc.ID || next.Hop != 1 {
		t.Fatalf("Next = %+v, want same ID hop 1", next)
	}
	// Saturation, not wraparound.
	tc.Hop = ^uint8(0)
	if sat := tc.Next(); sat.Hop != ^uint8(0) {
		t.Fatalf("hop wrapped to %d", sat.Hop)
	}
}

func TestNewTraceIDUnique(t *testing.T) {
	const n = 10000
	seen := make(map[uint64]bool, n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n/4; i++ {
				id := NewTraceID()
				if id == 0 {
					t.Error("zero trace ID issued")
					return
				}
				mu.Lock()
				dup := seen[id]
				seen[id] = true
				mu.Unlock()
				if dup {
					t.Errorf("duplicate trace ID %x", id)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestSampler(t *testing.T) {
	if NewSampler(0) != nil || NewSampler(-3) != nil {
		t.Fatal("non-positive rate must return the nil (never) sampler")
	}
	var nilS *Sampler
	if nilS.Sample() {
		t.Fatal("nil sampler sampled")
	}
	s := NewSampler(4)
	hits := 0
	for i := 0; i < 400; i++ {
		if s.Sample() {
			hits++
		}
	}
	if hits != 100 {
		t.Fatalf("1-in-4 sampler hit %d/400", hits)
	}
	every := NewSampler(1)
	if !every.Sample() || !every.Sample() {
		t.Fatal("1-in-1 sampler skipped")
	}
}

func TestRateLimiter(t *testing.T) {
	var nilL *RateLimiter
	if !nilL.Allow(time.Now()) {
		t.Fatal("nil limiter blocked")
	}
	if NewRateLimiter(0) != nil {
		t.Fatal("non-positive interval must return the nil limiter")
	}
	l := NewRateLimiter(time.Second)
	base := time.Unix(1000, 0)
	if !l.Allow(base) {
		t.Fatal("first event blocked")
	}
	if l.Allow(base.Add(500 * time.Millisecond)) {
		t.Fatal("event inside the interval allowed")
	}
	if !l.Allow(base.Add(time.Second)) {
		t.Fatal("event after the interval blocked")
	}
}

package obs

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestJournalConcurrentWriters hammers the striped ring from many writers
// while readers snapshot-storm it; run under -race this is the data-race
// proof, and the accounting identities must hold afterwards:
// Total == events appended and Dropped == Total - retained.
func TestJournalConcurrentWriters(t *testing.T) {
	const writers, perWriter = 8, 500
	j := NewJournal(256)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Snapshot storm: readers iterate while writers append.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				events := j.Snapshot()
				for i := 1; i < len(events); i++ {
					if events[i].Seq <= events[i-1].Seq {
						t.Errorf("snapshot out of order: seq %d after %d", events[i].Seq, events[i-1].Seq)
						return
					}
				}
				_ = j.Dropped()
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				j.AddTraced(EventGate, int64(w), 0, 1, "normal→brownout", uint64(i))
			}
		}(w)
	}
	// Wait for writers by counting total; then stop readers.
	for j.Total() < writers*perWriter {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if got, want := j.Total(), uint64(writers*perWriter); got != want {
		t.Fatalf("Total = %d, want %d", got, want)
	}
	retained := len(j.Snapshot())
	if got, want := j.Dropped(), j.Total()-uint64(retained); got != want {
		t.Fatalf("Dropped = %d, want Total-retained = %d", got, want)
	}
	if retained == 0 || retained > 256 {
		t.Fatalf("retained %d events, want (0, 256]", retained)
	}
}

// TestJournalWraparound verifies the ring keeps each stripe's newest events
// and reports the overwritten remainder as Dropped.
func TestJournalWraparound(t *testing.T) {
	j := NewJournal(16) // 2 per stripe
	const n = 100
	for i := 0; i < n; i++ {
		j.Add(EventEpoch, 1, int64(i), int64(i+1), "epoch boundary")
	}
	events := j.Snapshot()
	if len(events) != 16 {
		t.Fatalf("retained %d events, want 16", len(events))
	}
	if got, want := j.Dropped(), uint64(n-16); got != want {
		t.Fatalf("Dropped = %d, want %d", got, want)
	}
	// Every retained event must be from the newest 2 per stripe, i.e. the
	// last 2*stripes sequence numbers.
	for _, e := range events {
		if e.Seq <= n-16 {
			t.Fatalf("retained stale seq %d (oldest expected > %d)", e.Seq, n-16)
		}
	}
}

// TestJournalNil proves the nil-journal no-op contract call sites rely on.
func TestJournalNil(t *testing.T) {
	var j *Journal
	j.Add(EventGate, 0, 0, 0, "ignored")
	j.AddTraced(EventBreaker, 0, 0, 0, "ignored", 7)
	if j.Total() != 0 || j.Dropped() != 0 || j.Snapshot() != nil {
		t.Fatal("nil journal must report zero state")
	}
}

// TestJournalHandler checks the /debug/journal document shape: kind strings
// resolved, totals consistent, exemplars attached.
func TestJournalHandler(t *testing.T) {
	j := NewJournal(64)
	j.Add(EventGate, 0, 0, 2, "normal→shed")
	j.AddTraced(EventBreaker, 3, 0, 1, "peer breaker closed→open", 0xabc)

	ex := &Exemplars{}
	ex.Record(5*time.Millisecond, 0xdead)
	ex.Record(0, 0) // untraced: ignored

	rr := httptest.NewRecorder()
	j.Handler(ex).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/journal", nil))
	var doc struct {
		Total     uint64  `json:"total"`
		Dropped   uint64  `json:"dropped"`
		Events    []Event `json:"events"`
		Exemplars []BucketExemplar
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if doc.Total != 2 || doc.Dropped != 0 || len(doc.Events) != 2 {
		t.Fatalf("doc totals = (%d, %d, %d events), want (2, 0, 2)", doc.Total, doc.Dropped, len(doc.Events))
	}
	if doc.Events[0].KindS != "gate" || doc.Events[1].KindS != "breaker" {
		t.Fatalf("kinds = %q, %q", doc.Events[0].KindS, doc.Events[1].KindS)
	}
	if doc.Events[1].Trace != 0xabc {
		t.Fatalf("trace exemplar = %#x, want 0xabc", doc.Events[1].Trace)
	}
	if len(doc.Exemplars) != 1 || doc.Exemplars[0].Trace != 0xdead {
		t.Fatalf("exemplars = %+v, want one with trace 0xdead", doc.Exemplars)
	}
}

// TestExemplarsConcurrent exercises the lock-free slots under -race.
func TestExemplarsConcurrent(t *testing.T) {
	ex := &Exemplars{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				ex.Record(time.Duration(i)*time.Microsecond, uint64(w*1000+i+1))
				_ = ex.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	if len(ex.Snapshot()) == 0 {
		t.Fatal("no exemplars recorded")
	}
}

package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Journal is a bounded, lock-striped ring of typed control-plane events:
// overload state transitions, breaker trips and recoveries, membership
// flips, shard hand-offs and epoch boundaries. It answers "what changed
// around the time the metrics moved" — the decision-level complement to
// the counters and histograms, cheap enough to leave armed in production
// because events are rare (state *transitions*, never per-request).
//
// Writers are striped by sequence number so concurrent event sources never
// contend on one lock; readers merge the stripes by sequence. A nil
// *Journal is a valid no-op sink, mirroring the nil-Histogram contract.
//
// Capacity bounds memory: once a stripe wraps, its oldest events are
// overwritten silently and Dropped() reports how many were lost.

// EventKind classifies a journal event.
type EventKind uint8

const (
	// EventGate is an overload admission-gate state transition
	// (Old/New are overload.State values).
	EventGate EventKind = iota
	// EventBreaker is a per-peer circuit-breaker transition
	// (Node is the peer, Old/New are overload.BreakerState values).
	EventBreaker
	// EventMembership is a node liveness flip (Live/Suspect/Dead) or a
	// node-side lease event (reject, re-register).
	EventMembership
	// EventHandoff is a directory shard hand-off sweep (New carries the
	// dropped-entry count, Node the ring epoch).
	EventHandoff
	// EventEpoch is a training-epoch boundary on a cache node.
	EventEpoch
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventGate:
		return "gate"
	case EventBreaker:
		return "breaker"
	case EventMembership:
		return "membership"
	case EventHandoff:
		return "handoff"
	case EventEpoch:
		return "epoch"
	default:
		return "unknown"
	}
}

// Event is one journal entry. Old/New are kind-specific small integers
// (state enums, counts); Detail is a short human label ("normal→shed");
// Trace optionally links the event to a trace chain (0 = none).
type Event struct {
	Seq    uint64    `json:"seq"`
	At     int64     `json:"at_ns"`
	Kind   EventKind `json:"-"`
	KindS  string    `json:"kind"`
	Node   int64     `json:"node"`
	Old    int64     `json:"old"`
	New    int64     `json:"new"`
	Detail string    `json:"detail"`
	Trace  uint64    `json:"trace,omitempty"`
}

const journalStripes = 8

type journalStripe struct {
	mu    sync.Mutex
	ring  []Event
	next  int    // insert cursor
	total uint64 // events ever appended to this stripe
	_     [4]uint64
}

// Journal is the bounded event ring. Construct with NewJournal.
type Journal struct {
	seq     uint64 // atomic: global sequence, also the total-event count
	stripes [journalStripes]journalStripe
	now     func() time.Time // injectable for deterministic tests
}

// NewJournal builds a journal retaining about capacity events (rounded up
// to a multiple of the stripe count; minimum one per stripe).
func NewJournal(capacity int) *Journal {
	per := (capacity + journalStripes - 1) / journalStripes
	if per < 1 {
		per = 1
	}
	j := &Journal{now: time.Now}
	for i := range j.stripes {
		j.stripes[i].ring = make([]Event, per)
	}
	return j
}

// Add appends one event. Safe for concurrent use; no-op on a nil journal.
func (j *Journal) Add(kind EventKind, node, old, new int64, detail string) {
	j.AddTraced(kind, node, old, new, detail, 0)
}

// AddTraced is Add carrying a trace-ID exemplar.
func (j *Journal) AddTraced(kind EventKind, node, old, new int64, detail string, trace uint64) {
	if j == nil {
		return
	}
	seq := atomic.AddUint64(&j.seq, 1)
	ev := Event{
		Seq:    seq,
		At:     j.now().UnixNano(),
		Kind:   kind,
		Node:   node,
		Old:    old,
		New:    new,
		Detail: detail,
		Trace:  trace,
	}
	st := &j.stripes[seq%journalStripes]
	st.mu.Lock()
	st.ring[st.next] = ev
	st.next = (st.next + 1) % len(st.ring)
	st.total++
	st.mu.Unlock()
}

// Total reports how many events were ever appended.
func (j *Journal) Total() uint64 {
	if j == nil {
		return 0
	}
	return atomic.LoadUint64(&j.seq)
}

// Snapshot returns the retained events ordered by sequence (oldest first).
func (j *Journal) Snapshot() []Event {
	if j == nil {
		return nil
	}
	var out []Event
	for i := range j.stripes {
		st := &j.stripes[i]
		st.mu.Lock()
		n := st.total
		if n > uint64(len(st.ring)) {
			n = uint64(len(st.ring))
		}
		for k := uint64(0); k < n; k++ {
			out = append(out, st.ring[k])
		}
		st.mu.Unlock()
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// Dropped reports how many events were overwritten by ring wraparound.
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	var retained uint64
	for i := range j.stripes {
		st := &j.stripes[i]
		st.mu.Lock()
		n := st.total
		if n > uint64(len(st.ring)) {
			n = uint64(len(st.ring))
		}
		retained += n
		st.mu.Unlock()
	}
	return j.Total() - retained
}

// journalDoc is the /debug/journal JSON document.
type journalDoc struct {
	Total     uint64           `json:"total"`
	Dropped   uint64           `json:"dropped"`
	Events    []Event          `json:"events"`
	Exemplars []BucketExemplar `json:"exemplars,omitempty"`
}

// Handler serves the journal as JSON on /debug/journal. ex may be nil.
func (j *Journal) Handler(ex *Exemplars) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		events := j.Snapshot()
		for i := range events {
			events[i].KindS = events[i].Kind.String()
		}
		if events == nil {
			events = []Event{}
		}
		doc := journalDoc{
			Total:     j.Total(),
			Dropped:   j.Dropped(),
			Events:    events,
			Exemplars: ex.Snapshot(),
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
}

// Exemplars records, per latency-histogram bucket, the trace ID of the
// most recent traced request that landed there — the bridge from "the p99
// bucket moved" to a concrete stitched trace chain in the trace ring.
// Lock-free: one atomic slot per bucket, last writer wins. A nil
// *Exemplars is a valid no-op sink.
type Exemplars struct {
	slots [NumBuckets]uint64 // atomic: last trace ID per bucket
}

// Record notes that a traced request of duration d carried trace id.
// Zero ids are ignored (untraced requests).
func (e *Exemplars) Record(d time.Duration, trace uint64) {
	if e == nil || trace == 0 {
		return
	}
	atomic.StoreUint64(&e.slots[bucketIndex(d)], trace)
}

// BucketExemplar is one bucket's last-seen trace ID.
type BucketExemplar struct {
	Bucket  int    `json:"bucket"`
	UpperNS int64  `json:"upper_ns"`
	Trace   uint64 `json:"trace"`
}

// Snapshot returns the non-empty bucket exemplars in bucket order.
func (e *Exemplars) Snapshot() []BucketExemplar {
	if e == nil {
		return nil
	}
	var out []BucketExemplar
	for k := 0; k < NumBuckets; k++ {
		if t := atomic.LoadUint64(&e.slots[k]); t != 0 {
			out = append(out, BucketExemplar{Bucket: k, UpperNS: BucketUpper(k), Trace: t})
		}
	}
	return out
}

package obs

import (
	"sort"
	"sync"
)

// Registry is a named-histogram set: each serving-path stage registers one
// histogram under a stable snake_case name and every exposition surface
// (Prometheus text, /debug/obs JSON) walks the registry in sorted-name
// order, so output ordering is deterministic. A nil *Registry hands out nil
// histograms, so wiring a registry through a component costs nothing when
// observability is off.
type Registry struct {
	mu    sync.Mutex
	hists map[string]*Histogram
}

// NewRegistry allocates an empty registry.
func NewRegistry() *Registry { return &Registry{hists: make(map[string]*Histogram)} }

// Hist returns the named histogram, creating it on first use. On a nil
// registry it returns nil (a valid no-op histogram).
func (r *Registry) Hist(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// NamedSnapshot pairs a registered histogram's name with its snapshot.
type NamedSnapshot struct {
	Name string
	Snap HistSnapshot
}

// Snapshot captures every registered histogram, sorted by name. Empty (and
// nil-registry) snapshots return a nil slice.
func (r *Registry) Snapshot() []NamedSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.hists))
	hists := make([]*Histogram, 0, len(r.hists))
	for name, h := range r.hists {
		names = append(names, name)
		hists = append(hists, h)
	}
	r.mu.Unlock()
	idx := make([]int, len(names))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return names[idx[a]] < names[idx[b]] })
	out := make([]NamedSnapshot, 0, len(idx))
	for _, i := range idx {
		out = append(out, NamedSnapshot{Name: names[i], Snap: hists[i].Snapshot()})
	}
	return out
}

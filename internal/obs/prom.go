package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PromWriter renders Prometheus text exposition format (version 0.0.4)
// using only the standard library. Callers emit families in a fixed code
// order and the writer emits each family's lines deterministically, so a
// scrape is byte-stable for unchanged counter values — the property the
// exposition golden tests pin.
//
// Errors are sticky: the first write error is remembered and subsequent
// calls become no-ops, so call sites can emit a whole document and check
// Err once.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err reports the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...interface{}) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// sanitizeHelp keeps HELP text single-line per the exposition format.
func sanitizeHelp(help string) string {
	help = strings.ReplaceAll(help, "\\", `\\`)
	return strings.ReplaceAll(help, "\n", `\n`)
}

// formatFloat renders a sample value the way Prometheus clients do:
// shortest round-trippable representation, with integral values kept
// integral for readability.
func formatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func (p *PromWriter) header(name, help, typ string) {
	if help != "" {
		p.printf("# HELP %s %s\n", name, sanitizeHelp(help))
	}
	p.printf("# TYPE %s %s\n", name, typ)
}

// Counter emits one counter sample.
func (p *PromWriter) Counter(name, help string, v float64) {
	p.header(name, help, "counter")
	p.printf("%s %s\n", name, formatFloat(v))
}

// Gauge emits one gauge sample.
func (p *PromWriter) Gauge(name, help string, v float64) {
	p.header(name, help, "gauge")
	p.printf("%s %s\n", name, formatFloat(v))
}

// Histogram emits a snapshot as a Prometheus histogram in seconds (the
// canonical unit for latency histograms: name should end in "_seconds").
// Cumulative buckets cover every fixed bucket bound plus +Inf, followed by
// _sum and _count, then p50/p95/p99 estimates as companion gauges named
// <base>_p50_seconds etc. (Prometheus summaries are client-computed
// quantiles; emitting them as plainly named gauges keeps the exposition
// valid while giving curl-level consumers the numbers directly.)
func (p *PromWriter) Histogram(name, help string, s HistSnapshot) {
	p.header(name, help, "histogram")
	var cum uint64
	for k := 0; k < NumBuckets; k++ {
		cum += s.Buckets[k]
		le := float64(BucketUpper(k)) / 1e9
		p.printf("%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(le, 'g', -1, 64), cum)
	}
	p.printf("%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
	p.printf("%s_sum %s\n", name, formatFloat(float64(s.Sum)/1e9))
	p.printf("%s_count %d\n", name, s.Count)
	base := strings.TrimSuffix(name, "_seconds")
	for _, q := range []struct {
		tag string
		v   float64
	}{
		{"p50", s.Quantile(0.50).Seconds()},
		{"p95", s.Quantile(0.95).Seconds()},
		{"p99", s.Quantile(0.99).Seconds()},
	} {
		qn := base + "_" + q.tag + "_seconds"
		p.header(qn, "", "gauge")
		p.printf("%s %s\n", qn, strconv.FormatFloat(q.v, 'g', -1, 64))
	}
}

// Registry emits every histogram in reg (sorted by name) under
// prefix+"_"+name+"_seconds".
func (p *PromWriter) Registry(prefix string, reg *Registry) {
	for _, ns := range reg.Snapshot() {
		p.Histogram(prefix+"_"+ns.Name+"_seconds", "per-stage latency for "+ns.Name, ns.Snap)
	}
}

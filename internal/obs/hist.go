// Package obs is the observability substrate of the serving path:
// allocation-free, lock-striped latency histograms with log-scaled buckets,
// a named-histogram registry, a stdlib-only Prometheus text-format writer,
// and the compact cross-node trace context carried in wire frames.
//
// Everything here follows the nil-recorder pattern the rest of the repo
// uses for tracing: a nil *Histogram, *Registry, *Sampler, or *RateLimiter
// is a valid no-op value, so instrumented call sites need no conditionals
// and cost (almost) nothing when observability is disabled. The package
// imports only the standard library, so every layer — wire, rpc, dkv,
// icache — can depend on it without cycles.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count of every Histogram. Bucket k holds
// durations d with bits.Len64(d_ns) == k, i.e. d in [2^(k-1), 2^k) ns
// (bucket 0 holds d == 0). 40 buckets cover 1 ns .. ~550 s, more than any
// serving-path stage can take; larger values clamp into the last bucket.
const NumBuckets = 40

// numStripes spreads concurrent Record calls across independent cache
// lines so a hot histogram does not serialize its writers. Must be a power
// of two.
const numStripes = 8

// stripe is one independent shard of a histogram's counters, padded to its
// own cache line region so neighbouring stripes do not false-share.
type stripe struct {
	count   uint64
	sum     uint64 // nanoseconds
	max     uint64 // nanoseconds
	buckets [NumBuckets]uint64
	_       [64]byte // pad: keep the next stripe's hot words off this line
}

// Histogram is a concurrency-safe latency histogram with fixed log-scaled
// (power-of-two nanosecond) buckets. Record is lock-free: it picks a
// stripe by hashing the recorded value and touches only atomics. The zero
// value is ready to use; a nil *Histogram ignores Record calls, so call
// sites follow the nil-recorder pattern.
type Histogram struct {
	stripes [numStripes]stripe
}

// NewHistogram allocates an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a duration to its bucket: 0 for d <= 0, else
// bits.Len64(ns) clamped to the last bucket.
func bucketIndex(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	k := bits.Len64(uint64(d))
	if k >= NumBuckets {
		k = NumBuckets - 1
	}
	return k
}

// BucketUpper reports bucket k's inclusive upper bound in nanoseconds
// (2^k - 1; bucket 0's bound is 0). The last bucket's nominal bound is
// still reported, though it absorbs all larger values.
func BucketUpper(k int) int64 {
	if k <= 0 {
		return 0
	}
	return int64(1)<<uint(k) - 1
}

// bucketLower reports bucket k's inclusive lower bound in nanoseconds.
func bucketLower(k int) int64 {
	if k <= 0 {
		return 0
	}
	return int64(1) << uint(k-1)
}

// Record adds one observation. Negative durations clamp to zero. Safe for
// concurrent use and safe on a nil receiver (no-op).
func (h *Histogram) Record(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	ns := uint64(d)
	// Fibonacci-hash the value to a stripe: concurrent recorders almost
	// always carry distinct nanosecond timings, so they land on distinct
	// stripes without any shared state.
	s := &h.stripes[(ns*0x9E3779B97F4A7C15)>>(64-3)&(numStripes-1)]
	atomic.AddUint64(&s.count, 1)
	atomic.AddUint64(&s.sum, ns)
	atomic.AddUint64(&s.buckets[bucketIndex(d)], 1)
	for {
		cur := atomic.LoadUint64(&s.max)
		if ns <= cur || atomic.CompareAndSwapUint64(&s.max, cur, ns) {
			break
		}
	}
}

// Since records the time elapsed from t0 (no-op on nil, or when t0 is the
// zero time — the disabled-path sentinel).
func (h *Histogram) Since(t0 time.Time) {
	if h == nil || t0.IsZero() {
		return
	}
	h.Record(time.Since(t0))
}

// Snapshot sums the stripes into a mergeable point-in-time view. The read
// is loosely consistent (stripes are read with atomic loads but not as one
// transaction), which is the standard contract for stats scraping.
func (h *Histogram) Snapshot() HistSnapshot {
	var out HistSnapshot
	if h == nil {
		return out
	}
	for i := range h.stripes {
		s := &h.stripes[i]
		out.Count += atomic.LoadUint64(&s.count)
		out.Sum += atomic.LoadUint64(&s.sum)
		if m := atomic.LoadUint64(&s.max); m > out.MaxNs {
			out.MaxNs = m
		}
		for k := 0; k < NumBuckets; k++ {
			out.Buckets[k] += atomic.LoadUint64(&s.buckets[k])
		}
	}
	return out
}

// HistSnapshot is an immutable histogram view: bucket counts plus count,
// sum, and max. Snapshots merge (Merge) and answer quantile queries
// (Quantile) — the p50/p95/p99 every exposition surface reports.
type HistSnapshot struct {
	Count   uint64
	Sum     uint64 // nanoseconds
	MaxNs   uint64 // largest recorded value, nanoseconds
	Buckets [NumBuckets]uint64
}

// Merge combines two snapshots (bucket-wise addition; max of maxes). The
// quantile estimates of the result are bounded by the inputs' — the
// property test in hist_test.go pins that.
func Merge(a, b HistSnapshot) HistSnapshot {
	out := a
	out.Count += b.Count
	out.Sum += b.Sum
	if b.MaxNs > out.MaxNs {
		out.MaxNs = b.MaxNs
	}
	for k := 0; k < NumBuckets; k++ {
		out.Buckets[k] += b.Buckets[k]
	}
	return out
}

// Mean reports the average recorded duration (0 when empty).
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}

// Max reports the largest recorded duration.
func (s HistSnapshot) Max() time.Duration { return time.Duration(s.MaxNs) }

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) by locating the target
// rank's bucket and interpolating linearly inside it — the same
// linear-interpolation convention metrics.Series.Percentile uses on raw
// samples, so the two estimators agree to within one bucket's width (a
// documented, tested invariant). Out-of-range q clamps; an empty snapshot
// reports 0. The estimate never exceeds the recorded max.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 || math.IsNaN(q) {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count-1) // 0-based fractional rank, Series-style
	var cum float64
	for k := 0; k < NumBuckets; k++ {
		n := float64(s.Buckets[k])
		if n == 0 {
			continue
		}
		if rank < cum+n || k == NumBuckets-1 && cum+n >= float64(s.Count) {
			lo, hi := float64(bucketLower(k)), float64(BucketUpper(k))
			if up := float64(s.MaxNs); up < hi {
				hi = up // the last occupied bucket is bounded by the max
			}
			if hi < lo {
				hi = lo
			}
			frac := 0.0
			if n > 1 {
				frac = (rank - cum) / (n - 1)
			}
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return time.Duration(lo + frac*(hi-lo))
		}
		cum += n
	}
	return time.Duration(s.MaxNs)
}

// P50, P95, and P99 are the conventional summary quantiles.
func (s HistSnapshot) P50() time.Duration { return s.Quantile(0.50) }

// P95 is the 95th-percentile estimate.
func (s HistSnapshot) P95() time.Duration { return s.Quantile(0.95) }

// P99 is the 99th-percentile estimate.
func (s HistSnapshot) P99() time.Duration { return s.Quantile(0.99) }

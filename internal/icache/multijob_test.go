package icache

import (
	"math/rand"
	"testing"

	"icache/internal/dataset"
	"icache/internal/sampling"
	"icache/internal/simclock"
)

func runJobEpoch(t *testing.T, h *JobHandle, tr *sampling.Tracker, epoch int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sched := h.BeginEpoch(0, epoch, tr, rng)
	var at simclock.Time
	for _, batch := range sched.Batches(128) {
		end, served := h.FetchBatch(at, batch)
		if len(served) != len(batch) {
			t.Fatalf("served %d of %d", len(served), len(batch))
		}
		at = end
	}
}

func TestCoordinatorTwoJobsShareCache(t *testing.T) {
	back := testBackend(t)
	srv := testServer(t, back)
	coord := NewCoordinator(srv, CoordAIV)

	jobA, err := coord.Register("fast-model", sampling.DefaultIIS())
	if err != nil {
		t.Fatal(err)
	}
	jobB, err := coord.Register("slow-model", sampling.DefaultIIS())
	if err != nil {
		t.Fatal(err)
	}
	trA := trainedTracker(t, back.Spec().NumSamples, 10)
	trB := trainedTracker(t, back.Spec().NumSamples, 20)

	for epoch := 0; epoch < 3; epoch++ {
		runJobEpoch(t, jobA, trA, epoch, int64(100+epoch))
		runJobEpoch(t, jobB, trB, epoch, int64(200+epoch))
	}

	if jobA.Stats().Requests() == 0 || jobB.Stats().Requests() == 0 {
		t.Fatal("per-job stats not attributed")
	}
	// Both jobs must have been probed and have a benefit estimate.
	for _, id := range []JobID{jobA.ID(), jobB.ID()} {
		ratio, _, err := coord.Benefit(id)
		if err != nil {
			t.Fatal(err)
		}
		if ratio <= 0 {
			t.Fatalf("job %d benefit = %g", id, ratio)
		}
	}
	// The shared H-list must be installed and non-empty.
	if srv.ActiveHList().Len() == 0 {
		t.Fatal("coordinator never installed an H-list")
	}
}

func TestCoordinatorProbePhases(t *testing.T) {
	back := testBackend(t)
	// A small probe so both phases fit inside the test dataset's epoch.
	cfg := DefaultConfig(back.Spec().TotalBytes() / 5)
	cfg.ProbeBatches = 2
	srv, err := NewServer(back, cfg, sampling.DefaultIIS(), 42)
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(srv, CoordAIV)
	job, _ := coord.Register("j", sampling.DefaultIIS())
	tr := trainedTracker(t, back.Spec().NumSamples, 1)

	rng := rand.New(rand.NewSource(5))
	sched := job.BeginEpoch(0, 0, tr, rng)
	batches := sched.Batches(64)
	target := job.probeTarget()

	// Phase 0: all cacheless — every request must be a backend miss.
	before := back.Stats().SampleReads
	var at simclock.Time
	served, bi := 0, 0
	for served < target && bi < len(batches) {
		end, s := job.FetchBatch(at, batches[bi])
		at = end
		served += len(s)
		bi++
	}
	delta := back.Stats().SampleReads - before
	if delta != int64(served) {
		t.Fatalf("probe phase 0: %d backend reads for %d requests", delta, served)
	}
	if job.j.probePhase != 1 {
		t.Fatalf("after %d probe samples probePhase = %d, want 1", served, job.j.probePhase)
	}
	for cached := 0; cached < target && bi < len(batches); bi++ {
		end, s := job.FetchBatch(at, batches[bi])
		at = end
		cached += len(s)
	}
	if job.j.probePhase != 2 {
		t.Fatalf("after probe, phase = %d, want 2", job.j.probePhase)
	}
	if !job.j.probed {
		t.Fatal("benefit never computed")
	}
}

func TestCoordinatorSingleJobPolicyFavors(t *testing.T) {
	back := testBackend(t)
	srv := testServer(t, back)
	coord := NewCoordinator(srv, CoordSingleJob)
	jobA, _ := coord.Register("a", sampling.DefaultIIS())
	jobB, _ := coord.Register("b", sampling.DefaultIIS())
	coord.SetFavored(jobA.ID())

	trA := trainedTracker(t, back.Spec().NumSamples, 31)
	trB := trainedTracker(t, back.Spec().NumSamples, 32)
	runJobEpoch(t, jobA, trA, 0, 1)
	runJobEpoch(t, jobB, trB, 0, 2)
	runJobEpoch(t, jobA, trA, 1, 3)

	// The installed H-list must equal job A's top samples, not B's.
	hl := srv.ActiveHList()
	if hl.Len() == 0 {
		t.Fatal("no H-list installed")
	}
	wantTop := trA.BuildHList(1)
	if !hl.Contains(wantTop.Items[0].ID) {
		t.Fatalf("favored job's top sample %d not in installed H-list", wantTop.Items[0].ID)
	}
	_ = jobB
}

func TestCoordinatorIneligibleJobExcluded(t *testing.T) {
	back := testBackend(t)
	srv := testServer(t, back)
	coord := NewCoordinator(srv, CoordAIV)
	jobA, _ := coord.Register("a", sampling.DefaultIIS())
	jobB, _ := coord.Register("b", sampling.DefaultIIS())

	trA := trainedTracker(t, back.Spec().NumSamples, 41)
	trB := trainedTracker(t, back.Spec().NumSamples, 42)
	jobA.j.rivs = trA.Percentiles()
	jobB.j.rivs = trB.Percentiles()
	jobA.j.ownHList = trA.BuildHList(back.Spec().NumSamples / 5)
	jobB.j.ownHList = trB.BuildHList(back.Spec().NumSamples / 5)
	jobA.j.eligible = true
	jobA.j.benefit = 3
	jobB.j.eligible = false // not cache-eligible: must not influence AIV
	jobB.j.benefit = 100

	coord.recompute()
	hl := srv.ActiveHList()
	// The list must rank by job A's percentiles alone.
	topA := trA.BuildHList(5)
	for _, it := range topA.Items {
		if !hl.Contains(it.ID) {
			t.Fatalf("eligible job's top sample %d missing from AIV H-list", it.ID)
		}
	}
}

func TestCoordinatorAIVWeightsByBenefit(t *testing.T) {
	// Two jobs with opposite rankings; the higher-benefit job must dominate
	// the combined list.
	n := 100
	back := testBackend(t)
	cfg := DefaultConfig(int64(n/5) * 1000)
	srv, err := NewServer(back, cfg, sampling.DefaultIIS(), 7)
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(srv, CoordAIV)
	jobA, _ := coord.Register("a", sampling.DefaultIIS())
	jobB, _ := coord.Register("b", sampling.DefaultIIS())

	rivsA := make([]float64, back.Spec().NumSamples)
	rivsB := make([]float64, back.Spec().NumSamples)
	for i := range rivsA {
		rivsA[i] = float64(i) / float64(len(rivsA)-1)
		rivsB[i] = 1 - rivsA[i]
	}
	jobA.j.rivs, jobA.j.benefit, jobA.j.eligible = rivsA, 5.0, true
	jobB.j.rivs, jobB.j.benefit, jobB.j.eligible = rivsB, 1.6, true
	itemsA := make([]sampling.Item, 0)
	itemsB := make([]sampling.Item, 0)
	nn := back.Spec().NumSamples
	for i := 0; i < nn; i++ {
		if rivsA[i] > 0.7 {
			itemsA = append(itemsA, sampling.Item{ID: dataset.SampleID(i), IV: rivsA[i]})
		}
		if rivsB[i] > 0.7 {
			itemsB = append(itemsB, sampling.Item{ID: dataset.SampleID(i), IV: rivsB[i]})
		}
	}
	jobA.j.ownHList = sampling.NewHList(itemsA)
	jobB.j.ownHList = sampling.NewHList(itemsB)
	coord.recompute()

	hl := srv.ActiveHList()
	if hl.Len() == 0 {
		t.Fatal("no list installed")
	}
	// Job A ranks high IDs first; with 3× the benefit its preference wins.
	topID := hl.Items[0].ID
	if int(topID) < back.Spec().NumSamples/2 {
		t.Fatalf("top AIV sample %d comes from the low-benefit job's ranking", topID)
	}
}

func TestCoordinatorUnknownJobBenefit(t *testing.T) {
	back := testBackend(t)
	srv := testServer(t, back)
	coord := NewCoordinator(srv, CoordAIV)
	if _, _, err := coord.Benefit(99); err == nil {
		t.Fatal("unknown job accepted")
	}
}

func TestCoordinatorRejectsBadIIS(t *testing.T) {
	back := testBackend(t)
	srv := testServer(t, back)
	coord := NewCoordinator(srv, CoordAIV)
	if _, err := coord.Register("bad", sampling.IISConfig{}); err == nil {
		t.Fatal("invalid IIS config accepted")
	}
}

var _ = dataset.SampleID(0) // keep import if helpers change

package icache

import (
	"math/rand"
	"testing"

	"icache/internal/sampling"
)

// TestCoordinatorThreeJobs exercises the multi-job module beyond the
// paper's two-job experiment: three jobs with distinct importance rankings
// sharing one cache must all make progress, all get probed, and the
// combined H-list must stay within the H-cache's sample capacity.
func TestCoordinatorThreeJobs(t *testing.T) {
	back := testBackend(t)
	srv := testServer(t, back)
	coord := NewCoordinator(srv, CoordAIV)

	handles := make([]*JobHandle, 3)
	trackers := make([]*sampling.Tracker, 3)
	for i := range handles {
		h, err := coord.Register("job", sampling.DefaultIIS())
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
		trackers[i] = trainedTracker(t, back.Spec().NumSamples, int64(50+i*7))
	}

	for epoch := 0; epoch < 3; epoch++ {
		for i, h := range handles {
			runJobEpoch(t, h, trackers[i], epoch, int64(epoch*10+i))
		}
	}

	for i, h := range handles {
		if h.Stats().Requests() == 0 {
			t.Fatalf("job %d got no requests attributed", i)
		}
		ratio, _, err := coord.Benefit(h.ID())
		if err != nil || ratio <= 0 {
			t.Fatalf("job %d benefit %g/%v", i, ratio, err)
		}
	}
	hl := srv.ActiveHList()
	if hl.Len() == 0 {
		t.Fatal("no combined H-list")
	}
	if hl.Len() > coord.hCapSamples() {
		t.Fatalf("combined list %d exceeds H-cache capacity %d", hl.Len(), coord.hCapSamples())
	}
}

// TestCoordinatorJobsSeeSubstitutionOnlyOnLPath verifies the routed fetch:
// a job's own H-samples are never substituted even when the shared manager
// values them at zero.
func TestCoordinatorJobsSeeSubstitutionOnlyOnLPath(t *testing.T) {
	back := testBackend(t)
	srv := testServer(t, back)
	coord := NewCoordinator(srv, CoordSingleJob)
	jobA, _ := coord.Register("favored", sampling.DefaultIIS())
	jobB, _ := coord.Register("unfavored", sampling.DefaultIIS())
	coord.SetFavored(jobA.ID())

	trA := trainedTracker(t, back.Spec().NumSamples, 71)
	trB := trainedTracker(t, back.Spec().NumSamples, 72)
	runJobEpoch(t, jobA, trA, 0, 1)

	// Job B's epoch: fetch its schedule and verify that every sample its
	// own H-list marks as H comes back exactly (never substituted).
	rng := rand.New(rand.NewSource(9))
	sched := jobB.BeginEpoch(0, 0, trB, rng)
	own := jobB.j.ownHList
	for _, batch := range sched.Batches(128) {
		_, served := jobB.FetchBatch(0, batch)
		for i, want := range batch {
			if own.Contains(want) && served[i] != want {
				t.Fatalf("unfavored job's H-sample %d substituted with %d", want, served[i])
			}
		}
	}
}

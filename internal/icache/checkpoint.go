package icache

import (
	"encoding/json"
	"fmt"
	"io"

	"icache/internal/dataset"
	"icache/internal/sampling"
)

// Checkpointing lets an operator restart the cache service without losing a
// warmed cache: the paper's training jobs run for hours and the H-cache
// takes several epochs to converge on the hard-sample working set, so a
// cold restart costs real training time. A checkpoint captures the cache's
// *metadata* — which samples each region holds and the active importance
// values — not payload bytes, which the restored server refetches lazily
// (or eagerly, on the RPC layer) from the backend.

// checkpointVersion guards the on-disk format.
const checkpointVersion = 1

// checkpointFile is the serialized cache state.
type checkpointFile struct {
	Version int    `json:"version"`
	Dataset string `json:"dataset"`
	// HList is the active (management) H-list.
	HList []checkpointItem `json:"h_list"`
	// HResidents holds the H-cache contents with their heap values.
	HResidents []checkpointItem `json:"h_residents"`
	// LResidents holds the L-cache contents.
	LResidents []int64 `json:"l_residents"`
	// FreqH/FreqL persist the partition EMAs.
	FreqH float64 `json:"freq_h"`
	FreqL float64 `json:"freq_l"`
}

type checkpointItem struct {
	ID int64   `json:"id"`
	IV float64 `json:"iv"`
}

// Checkpoint serializes the cache's state to w.
func (s *Server) Checkpoint(w io.Writer) error {
	cf := checkpointFile{
		Version: checkpointVersion,
		Dataset: s.spec.Name,
		FreqH:   s.freqH,
		FreqL:   s.freqL,
	}
	for _, it := range s.hlist.Items {
		cf.HList = append(cf.HList, checkpointItem{ID: int64(it.ID), IV: it.IV})
	}
	for _, e := range s.h.heap.Entries() {
		cf.HResidents = append(cf.HResidents, checkpointItem{ID: int64(e.ID), IV: e.IV})
	}
	for id := range s.l.items {
		cf.LResidents = append(cf.LResidents, int64(id))
	}
	enc := json.NewEncoder(w)
	return enc.Encode(cf)
}

// RestoreCheckpoint loads state produced by Checkpoint into a freshly
// constructed server (restoring over live state is rejected). The dataset
// must match; samples that no longer fit the configured budgets are
// silently dropped in importance order, so a checkpoint from a larger cache
// restores cleanly into a smaller one.
func (s *Server) RestoreCheckpoint(r io.Reader) error {
	if s.h.len() != 0 || s.l.len() != 0 {
		return fmt.Errorf("icache: restore into a non-empty cache")
	}
	var cf checkpointFile
	if err := json.NewDecoder(r).Decode(&cf); err != nil {
		return fmt.Errorf("icache: decode checkpoint: %w", err)
	}
	if cf.Version != checkpointVersion {
		return fmt.Errorf("icache: checkpoint version %d, want %d", cf.Version, checkpointVersion)
	}
	if cf.Dataset != s.spec.Name {
		return fmt.Errorf("icache: checkpoint is for dataset %q, server hosts %q", cf.Dataset, s.spec.Name)
	}

	items := make([]sampling.Item, 0, len(cf.HList))
	for _, it := range cf.HList {
		id := dataset.SampleID(it.ID)
		if !s.spec.Contains(id) {
			return fmt.Errorf("icache: checkpoint H-list sample %d out of range", it.ID)
		}
		items = append(items, sampling.Item{ID: id, IV: it.IV})
	}
	s.InstallHList(sampling.NewHList(items))

	for _, it := range cf.HResidents {
		id := dataset.SampleID(it.ID)
		if !s.spec.Contains(id) {
			return fmt.Errorf("icache: checkpoint H resident %d out of range", it.ID)
		}
		s.h.offer(id, s.spec.SampleBytes(id), it.IV)
	}
	for _, raw := range cf.LResidents {
		id := dataset.SampleID(raw)
		if !s.spec.Contains(id) {
			return fmt.Errorf("icache: checkpoint L resident %d out of range", raw)
		}
		s.l.insert(id, s.spec.SampleBytes(id))
	}
	s.freqH, s.freqL = cf.FreqH, cf.FreqL
	return nil
}

// Residents appends every cached sample ID (both regions) to dst. The RPC
// layer uses it to eagerly rehydrate payloads after a restore.
func (s *Server) Residents(dst []dataset.SampleID) []dataset.SampleID {
	for id := range s.h.items {
		dst = append(dst, id)
	}
	for id := range s.l.items {
		dst = append(dst, id)
	}
	return dst
}

package icache

// Node-lifecycle chaos suite (ISSUE 3 acceptance): kill a node mid-epoch
// and the survivor keeps serving; the dead node's directory entries are
// reclaimed or purged within one lease cycle; the node rejoins from a
// checkpoint replaying ownership claims (denied claims drop the local
// copy); request conservation holds across crash, reclaim and rejoin; and
// the whole scenario is bit-for-bit deterministic under its seeds.

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"icache/internal/dataset"
	"icache/internal/dkv"
	"icache/internal/faults"
	"icache/internal/leakcheck"
	"icache/internal/metrics"
	"icache/internal/sampling"
	"icache/internal/simclock"
	"icache/internal/storage"
)

// lifecycleConfig returns cluster timings fast enough that lease expiry,
// reclaim and scrubbing all happen inside a test-sized run.
func lifecycleConfig(perNode int64) ClusterConfig {
	cfg := DefaultClusterConfig(2, perNode)
	cfg.LeaseTTL = 400 * time.Millisecond
	cfg.HeartbeatInterval = 100 * time.Millisecond
	cfg.SuspectWindow = 400 * time.Millisecond
	cfg.ScrubInterval = 200 * time.Millisecond
	cfg.ScrubBatch = 4096
	return cfg
}

func lifecycleCluster(t *testing.T, seed int64) *Cluster {
	t.Helper()
	back, err := storage.NewBackend(chaosSpec(), storage.NFS())
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(back, lifecycleConfig(back.Spec().TotalBytes()/5), sampling.DefaultIIS(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func lifecycleTracker(t *testing.T, rng *rand.Rand) *sampling.Tracker {
	t.Helper()
	tr, err := sampling.NewTracker(chaosSpec().NumSamples, 3.0, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < chaosSpec().NumSamples; i++ {
		tr.Observe(dataset.SampleID(i), chaosSpec().Difficulty(dataset.SampleID(i))*2+rng.Float64()*0.1)
	}
	return tr
}

// lifecycleSummary is everything the determinism check compares.
type lifecycleSummary struct {
	Stats    metrics.CacheStats
	Res      metrics.ResilienceStats
	Mem      metrics.MembershipStats
	Requests int64
	DirLen   int
}

// runKillRejoinScenario drives the full crash/reclaim/rejoin story on one
// seeded cluster and returns a summary for the determinism comparison.
func runKillRejoinScenario(t *testing.T, seed int64) lifecycleSummary {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cl := lifecycleCluster(t, seed)
	tr := lifecycleTracker(t, rng)

	var requests int64
	ats := make([]simclock.Time, 2)
	serve := func(node int, batch []dataset.SampleID) {
		end, served := cl.FetchBatchOn(node, ats[node], batch)
		if len(served) != len(batch) {
			t.Fatalf("node %d served %d of %d", node, len(served), len(batch))
		}
		requests += int64(len(batch))
		ats[node] = end
	}

	// Epoch 0: both nodes, round-robin. Warms both caches and populates the
	// directory.
	sched := cl.BeginEpoch(ats[0], 0, tr, rng)
	for i, b := range sched.Batches(128) {
		serve(i%2, b)
	}

	// Epoch 1: checkpoint and SIGKILL node 1 halfway through; the survivor
	// absorbs the remaining batches mid-epoch.
	sched = cl.BeginEpoch(ats[0], 1, tr, rng)
	batches := sched.Batches(128)
	half := len(batches) / 2
	var ckpt NodeCheckpoint
	var killedAt simclock.Time
	var ownedAtKill int
	for i, b := range batches {
		if i == half {
			ckpt = cl.SnapshotNode(1)
			owned, err := cl.dir.OwnedBy(dkv.NodeID(1), 0)
			if err != nil {
				t.Fatal(err)
			}
			ownedAtKill = len(owned)
			killedAt = ats[1]
			cl.KillNode(1, ats[1])
		}
		if cl.NodeAlive(1) {
			serve(i%2, b)
		} else {
			serve(0, b)
		}
	}
	if cl.NodeAlive(1) {
		t.Fatal("node 1 still alive after KillNode")
	}
	if ownedAtKill == 0 {
		t.Fatal("node 1 owned nothing at kill time; scenario proves nothing")
	}
	if len(ckpt.H)+len(ckpt.L) == 0 {
		t.Fatal("empty checkpoint; scenario proves nothing")
	}

	// Survivor-only epochs until virtual time is safely past the dead
	// node's lease + suspect window + a scrub cycle.
	deadline := killedAt + simclock.Time(cl.cfg.LeaseTTL+cl.cfg.SuspectWindow+2*cl.cfg.ScrubInterval)
	for e := 2; ats[0] < deadline; e++ {
		if e >= 12 {
			t.Fatalf("virtual time %v never reached reclaim deadline %v", ats[0], deadline)
		}
		sched = cl.BeginEpoch(ats[0], e, tr, rng)
		for _, b := range sched.Batches(128) {
			serve(0, b)
		}
	}

	// Nothing routes to the dead node any more: every directory entry it
	// owned was reclaimed on the demand path or purged by the scrubber.
	owned, err := cl.dir.OwnedBy(dkv.NodeID(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(owned) != 0 {
		t.Errorf("dead node still owns %d directory entries past its lease", len(owned))
	}
	mem := cl.Membership()
	if mem.Deaths == 0 {
		t.Error("lease expiry never declared the killed node dead")
	}
	if mem.Reclaims+mem.Purged == 0 {
		t.Error("no dead-owned entries reclaimed or purged")
	}
	if mem.Heartbeats == 0 {
		t.Error("the survivor never heartbeated")
	}
	if mem.ScrubSweeps == 0 {
		t.Error("the scrubber never ran")
	}

	// Rejoin from the checkpoint: fresh lease, claims replayed; every
	// checkpoint entry is accounted for as replayed or denied.
	memBefore := cl.Membership()
	if err := cl.RestartNode(1, ats[0], &ckpt); err != nil {
		t.Fatal(err)
	}
	ats[1] = ats[0]
	memAfter := cl.Membership()
	replayed := (memAfter.ReplayedClaims - memBefore.ReplayedClaims) +
		(memAfter.ReplayDenied - memBefore.ReplayDenied)
	if want := int64(len(ckpt.H) + len(ckpt.L)); replayed != want {
		t.Errorf("rejoin replayed %d claims, checkpoint holds %d entries", replayed, want)
	}
	if memAfter.Revivals == 0 {
		t.Error("rejoin registration revived nothing")
	}

	// Final epoch with both nodes back: the cluster serves normally and all
	// structural invariants hold.
	sched = cl.BeginEpoch(ats[0], 99, tr, rng)
	for i, b := range sched.Batches(128) {
		serve(i%2, b)
	}
	assertClusterInvariants(t, cl, requests)

	dirLen, err := cl.dir.Len()
	if err != nil {
		t.Fatal(err)
	}
	return lifecycleSummary{
		Stats:    cl.Stats(),
		Res:      cl.Resilience(),
		Mem:      cl.Membership(),
		Requests: requests,
		DirLen:   dirLen,
	}
}

// TestLifecycleKillReclaimRejoin is the acceptance test: for three seeds,
// the full crash/reclaim/rejoin scenario preserves conservation and is
// deterministic under repetition.
func TestLifecycleKillReclaimRejoin(t *testing.T) {
	for _, seed := range []int64{1, 42, 1337} {
		seed := seed
		t.Run(time.Duration(seed).String(), func(t *testing.T) {
			leakcheck.Check(t)
			first := runKillRejoinScenario(t, seed)
			if first.Stats.Degraded != 0 {
				t.Errorf("fault-free lifecycle scenario recorded %d degraded requests", first.Stats.Degraded)
			}
			second := runKillRejoinScenario(t, seed)
			if !reflect.DeepEqual(first, second) {
				t.Errorf("same seed produced different runs:\n first: %+v\nsecond: %+v", first, second)
			}
		})
	}
}

// shardedLifecycleCluster builds a 2-node cluster whose directory is three
// simulated replicas behind a dkv.ShardedDir on the virtual clock.
func shardedLifecycleCluster(t *testing.T, seed int64) *Cluster {
	t.Helper()
	back, err := storage.NewBackend(chaosSpec(), storage.NFS())
	if err != nil {
		t.Fatal(err)
	}
	cfg := lifecycleConfig(back.Spec().TotalBytes() / 5)
	cfg.DirReplicas = 3
	cl, err := NewCluster(back, cfg, sampling.DefaultIIS(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// dirFailoverSummary is everything the determinism check compares for the
// partitioned-directory chaos scenario.
type dirFailoverSummary struct {
	Stats      metrics.CacheStats
	Mem        metrics.MembershipStats
	Requests   int64
	DirLen     int
	ReplicaLen [3]int
}

// runDirReplicaFailoverScenario kills one of three directory replicas
// mid-epoch and pins the partitioned-directory acceptance criteria: the
// nodes keep serving with a degraded-request delta of ZERO (the sharded
// client fails the dead shards over inside the call), conservation stays
// exact, failover is observed within one lease cycle, and a restarted
// (empty) replica is repopulated organically through the heartbeat-reject →
// re-register → reconcile path.
func runDirReplicaFailoverScenario(t *testing.T, seed int64, victim int) dirFailoverSummary {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cl := shardedLifecycleCluster(t, seed)
	tr := lifecycleTracker(t, rng)

	var requests int64
	ats := make([]simclock.Time, 2)
	serve := func(node int, batch []dataset.SampleID) {
		end, served := cl.FetchBatchOn(node, ats[node], batch)
		if len(served) != len(batch) {
			t.Fatalf("node %d served %d of %d", node, len(served), len(batch))
		}
		requests += int64(len(batch))
		ats[node] = end
	}
	driveEpoch := func(e int) {
		sched := cl.BeginEpoch(ats[0], e, tr, rng)
		for i, b := range sched.Batches(128) {
			serve(i%2, b)
		}
	}

	// Epoch 0 against a healthy partitioned directory: claims spread over
	// all three replicas by rendezvous routing.
	driveEpoch(0)
	if n := cl.rawDirs[victim].Len(); n == 0 {
		t.Fatalf("replica %d owns no shard entries after warm-up; scenario proves nothing", victim)
	}
	assertClusterInvariants(t, cl, requests)

	// Kill the victim mid-epoch 1. Everything after this point must be
	// absorbed by the sharded client: zero degraded requests, no errors.
	degradedBefore := cl.Stats().Degraded
	sched := cl.BeginEpoch(ats[0], 1, tr, rng)
	batches := sched.Batches(128)
	var killedAt simclock.Time
	for i, b := range batches {
		if i == len(batches)/2 {
			killedAt = ats[i%2]
			cl.KillDirReplica(victim, killedAt)
		}
		serve(i%2, b)
	}
	if cl.DirReplicaAlive(victim) {
		t.Fatalf("replica %d still alive after KillDirReplica", victim)
	}

	// Failover is client-observed and in-call: by the end of the epoch the
	// ring has recorded it, and within one lease cycle of virtual time the
	// routing view has settled on the two survivors.
	ring, ok := cl.DirRing()
	if !ok {
		t.Fatal("DirRing reported no sharded directory")
	}
	if ring.Failovers < 1 {
		t.Error("killing a replica mid-epoch recorded no failover")
	}
	leaseCycle := simclock.Time(cl.cfg.LeaseTTL + cl.cfg.SuspectWindow)
	for e := 2; ats[0] < killedAt+leaseCycle; e++ {
		if e >= 12 {
			t.Fatalf("virtual time %v never passed one lease cycle after the kill", ats[0])
		}
		driveEpoch(e)
	}
	if ring, _ = cl.DirRing(); ring.LiveReplicas != 2 {
		t.Errorf("one lease cycle after the kill the client sees %d live replicas, want 2", ring.LiveReplicas)
	}

	// The headline pin: a directory replica crash is invisible to the
	// training job. Zero degraded requests, conservation exact.
	if delta := cl.Stats().Degraded - degradedBefore; delta != 0 {
		t.Errorf("replica crash degraded %d requests, want 0 (failover must absorb it)", delta)
	}
	assertClusterInvariants(t, cl, requests)

	// Restart the victim empty and drive until the sharded client re-admits
	// it (one FailoverTTL) and the nodes repopulate it: its fresh membership
	// table rejects their heartbeats, forcing re-register + reconcile, whose
	// claims land shard entries back on the revived replica.
	rejectsBefore := cl.Membership().HeartbeatRejects
	if err := cl.RestartDirReplica(victim, ats[0]); err != nil {
		t.Fatal(err)
	}
	for e := 20; cl.rawDirs[victim].Len() == 0; e++ {
		if e >= 32 {
			t.Fatalf("restarted replica %d never repopulated (len=0 after %d epochs)",
				victim, e-20)
		}
		driveEpoch(e)
	}
	if cl.Membership().HeartbeatRejects == rejectsBefore {
		t.Error("revived empty replica never rejected a heartbeat — repopulation path untested")
	}
	if ring, _ = cl.DirRing(); ring.LiveReplicas != 3 {
		t.Errorf("after restart the client sees %d live replicas, want 3", ring.LiveReplicas)
	}
	if got := cl.Stats().Degraded; got != degradedBefore {
		t.Errorf("restart/repopulation degraded %d requests, want 0", got-degradedBefore)
	}
	assertClusterInvariants(t, cl, requests)

	sum := dirFailoverSummary{
		Stats:    cl.Stats(),
		Mem:      cl.Membership(),
		Requests: requests,
	}
	var err error
	if sum.DirLen, err = cl.dir.Len(); err != nil {
		t.Fatal(err)
	}
	for r := range sum.ReplicaLen {
		sum.ReplicaLen[r] = cl.rawDirs[r].Len()
	}
	return sum
}

// TestChaosDirReplicaFailover is the cluster-simulation acceptance gate for
// the partitioned directory: for three seeds (each killing a different
// replica), the crash/failover/restart scenario keeps the degraded-request
// delta at zero, preserves conservation, and is bit-for-bit deterministic
// under repetition.
func TestChaosDirReplicaFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short")
	}
	for i, seed := range []int64{1, 42, 1337} {
		seed, victim := seed, i%3
		t.Run(time.Duration(seed).String(), func(t *testing.T) {
			leakcheck.Check(t)
			first := runDirReplicaFailoverScenario(t, seed, victim)
			second := runDirReplicaFailoverScenario(t, seed, victim)
			if !reflect.DeepEqual(first, second) {
				t.Errorf("same seed produced different runs:\n first: %+v\nsecond: %+v", first, second)
			}
		})
	}
}

// TestRestartNodeDeniedClaimDropsLocalCopy pins the rejoin semantics: a
// checkpoint entry another node now owns is dropped (no duplicate
// residency), an unowned entry is re-claimed and restored.
func TestRestartNodeDeniedClaimDropsLocalCopy(t *testing.T) {
	cl := lifecycleCluster(t, 7)
	cl.KillNode(1, 0)

	// The survivor owns sample 1; sample 2 is unowned.
	if ok, err := cl.dir.Claim(1, 0); err != nil || !ok {
		t.Fatalf("survivor claim: ok=%v err=%v", ok, err)
	}
	ck := &NodeCheckpoint{Node: 1, H: []sampling.Item{{ID: 1, IV: 5}, {ID: 2, IV: 4}}}
	if err := cl.RestartNode(1, 10*time.Millisecond, ck); err != nil {
		t.Fatal(err)
	}
	n := cl.nodes[1]
	if n.h.contains(1) {
		t.Error("restored a sample the survivor owns (duplicate residency)")
	}
	if !n.h.contains(2) {
		t.Error("unowned checkpoint sample not restored")
	}
	if owner, ok, _ := cl.dir.Lookup(2); !ok || owner != 1 {
		t.Errorf("sample 2 owner = (%d, %v), want (1, true)", owner, ok)
	}
	if cl.mem.ReplayedClaims != 1 || cl.mem.ReplayDenied != 1 {
		t.Errorf("replay counters = (%d claimed, %d denied), want (1, 1)",
			cl.mem.ReplayedClaims, cl.mem.ReplayDenied)
	}

	// Lifecycle edge cases: double restart errors, double kill is a no-op,
	// a mismatched checkpoint is rejected.
	if err := cl.RestartNode(1, 0, nil); err == nil {
		t.Error("restarting a live node did not error")
	}
	cl.KillNode(0, 0)
	cl.KillNode(0, 0) // no-op
	if err := cl.RestartNode(0, 0, &NodeCheckpoint{Node: 1}); err == nil {
		t.Error("mismatched checkpoint accepted")
	}
	if err := cl.RestartNode(0, 0, nil); err != nil {
		t.Fatal(err)
	}
}

// TestScrubRepairsDirectoryDrift drives one sweep over three fabricated
// drift states: an orphaned directory entry (owned, not cached), an
// unregistered resident (cached, not owned), and a duplicate (cached here,
// owned by a peer).
func TestScrubRepairsDirectoryDrift(t *testing.T) {
	cl := lifecycleCluster(t, 9)
	n := cl.nodes[0]

	if ok, err := cl.dir.Claim(5, 0); err != nil || !ok { // orphan
		t.Fatalf("claim 5: ok=%v err=%v", ok, err)
	}
	n.h.offer(7, 100, 1.0) // unregistered resident
	n.h.offer(9, 100, 1.0) // duplicate: directory credits node 1
	if ok, err := cl.dir.Claim(9, 1); err != nil || !ok {
		t.Fatalf("claim 9: ok=%v err=%v", ok, err)
	}

	cl.scrub(n, 0, 0)

	if _, ok, _ := cl.dir.Lookup(5); ok {
		t.Error("orphaned entry 5 not released")
	}
	if owner, ok, _ := cl.dir.Lookup(7); !ok || owner != 0 {
		t.Errorf("unregistered resident 7 owner = (%d, %v), want (0, true)", owner, ok)
	}
	if n.h.contains(9) {
		t.Error("duplicate copy of 9 not dropped")
	}
	if cl.mem.ScrubReleased != 1 || cl.mem.ScrubReclaimed != 1 || cl.mem.ScrubDropped != 1 {
		t.Errorf("scrub counters = %+v, want released=1 reclaimed=1 dropped=1", cl.mem)
	}
	if cl.mem.ScrubSweeps != 1 {
		t.Errorf("ScrubSweeps = %d, want 1", cl.mem.ScrubSweeps)
	}
}

// TestDeferredReleaseQueueBounded is the satellite memory test: once the
// directory dies and never heals, failed ownership releases queue only up
// to DeferredReleaseCap — an eviction storm past the cap is dropped and
// counted rather than growing the map without bound, and conservation
// still holds for the batches served while degraded.
func TestDeferredReleaseQueueBounded(t *testing.T) {
	back, err := storage.NewBackend(chaosSpec(), storage.NFS())
	if err != nil {
		t.Fatal(err)
	}
	cfg := lifecycleConfig(back.Spec().TotalBytes() / 5)
	cfg.DeferredReleaseCap = 8
	cl, err := NewCluster(back, cfg, sampling.DefaultIIS(), 11)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	tr := lifecycleTracker(t, rng)
	var requests int64
	ats := make([]simclock.Time, 2)
	drive := func(e int) {
		sched := cl.BeginEpoch(ats[0], e, tr, rng)
		for i, b := range sched.Batches(128) {
			node := i % 2
			end, served := cl.FetchBatchOn(node, ats[node], b)
			if len(served) != len(b) {
				t.Fatalf("epoch %d batch %d: served %d of %d", e, i, len(served), len(b))
			}
			requests += int64(len(b))
			ats[node] = end
		}
	}

	// Epoch 0 runs against a healthy directory so the nodes actually acquire
	// ownership (a node that never claimed anything has nothing to release).
	// Then the directory dies and never heals.
	drive(0)
	deadDir := func(op string) faults.Rule {
		return faults.Rule{Op: op, Action: faults.ActError}
	}
	cl.SetFaultInjector(faults.New(11).Add(
		deadDir(faults.OpDirLookup), deadDir(faults.OpDirClaim), deadDir(faults.OpDirRelease),
		deadDir(faults.OpDirHeartbeat), deadDir(faults.OpDirRegister), deadDir(faults.OpDirScan),
	))
	drive(1)
	drive(2)
	assertClusterInvariants(t, cl, requests)

	// Memory pressure on node 0 now evicts every resident while the
	// directory is down: each eviction tries to release its ownership,
	// fails, and is deferred — but only up to the cap.
	n := cl.nodes[0]
	if evictions := n.h.len() + n.l.len(); evictions <= cfg.DeferredReleaseCap {
		t.Fatalf("only %d residents to evict; need more than the cap %d",
			evictions, cfg.DeferredReleaseCap)
	}
	n.h.resize(0)
	n.l.resize(0)

	if got := len(cl.deferred); got > cfg.DeferredReleaseCap {
		t.Errorf("deferred queue grew to %d, cap %d", got, cfg.DeferredReleaseCap)
	}
	res := cl.Resilience()
	if res.DeferredReleases == 0 {
		t.Error("no releases were ever deferred")
	}
	if res.DroppedReleases == 0 {
		t.Error("eviction storm past the cap produced no dropped releases")
	}
}

// TestHeartbeatLapseTriggersReregistration partitions every directory
// operation for longer than the lease TTL: the node's lease lapses while it
// serves local-only, its next heartbeat after the heal is rejected, and it
// re-registers and reconciles ownership.
func TestHeartbeatLapseTriggersReregistration(t *testing.T) {
	cl := lifecycleCluster(t, 13)
	const from, until = 100 * time.Millisecond, 900 * time.Millisecond
	part := func(op string) faults.Rule { return faults.Partition(op, from, until, nil) }
	cl.SetFaultInjector(faults.New(13).Add(
		part(faults.OpDirLookup), part(faults.OpDirClaim), part(faults.OpDirRelease),
		part(faults.OpDirHeartbeat), part(faults.OpDirRegister), part(faults.OpDirScan),
	))

	rng := rand.New(rand.NewSource(13))
	tr := lifecycleTracker(t, rng)
	var requests int64
	ats := make([]simclock.Time, 2)
	for e := 0; ats[0] < 2*until; e++ {
		if e >= 12 {
			t.Fatalf("virtual time %v never passed the partition window", ats[0])
		}
		sched := cl.BeginEpoch(ats[0], e, tr, rng)
		for i, b := range sched.Batches(128) {
			node := i % 2
			end, served := cl.FetchBatchOn(node, ats[node], b)
			if len(served) != len(b) {
				t.Fatalf("served %d of %d", len(served), len(b))
			}
			requests += int64(len(b))
			ats[node] = end
		}
	}

	mem := cl.Membership()
	if mem.HeartbeatRejects == 0 {
		t.Error("lapsed lease never rejected a heartbeat")
	}
	if mem.Revivals == 0 {
		t.Error("re-registration revived nothing")
	}
	if mem.ReplayedClaims == 0 {
		t.Error("ownership reconciliation re-claimed nothing")
	}
	if cl.Stats().Degraded == 0 {
		t.Error("a full directory partition degraded nothing")
	}
	assertClusterInvariants(t, cl, requests)
}

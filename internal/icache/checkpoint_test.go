package icache

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"icache/internal/dataset"
	"icache/internal/sampling"
	"icache/internal/simclock"
	"icache/internal/storage"
)

// warmServer trains a few epochs so both regions have content.
func warmServer(t *testing.T) (*Server, *storage.Backend) {
	t.Helper()
	back := testBackend(t)
	srv := testServer(t, back)
	tr := trainedTracker(t, back.Spec().NumSamples, 3)
	rng := rand.New(rand.NewSource(4))
	var at simclock.Time
	for e := 0; e < 3; e++ {
		sched := srv.BeginEpoch(at, e, tr, rng)
		for _, batch := range sched.Batches(256) {
			at, _ = srv.FetchBatch(at, batch)
		}
	}
	return srv, back
}

func residentSet(s *Server) map[dataset.SampleID]bool {
	out := map[dataset.SampleID]bool{}
	for _, id := range s.Residents(nil) {
		out[id] = true
	}
	return out
}

func TestCheckpointRoundTrip(t *testing.T) {
	srv, _ := warmServer(t)
	var buf bytes.Buffer
	if err := srv.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	back2 := testBackend(t)
	restored := testServer(t, back2)
	if err := restored.RestoreCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	if got, want := restored.HCacheLen(), srv.HCacheLen(); got != want {
		t.Fatalf("H residents %d, want %d", got, want)
	}
	if got, want := restored.LCacheLen(), srv.LCacheLen(); got != want {
		t.Fatalf("L residents %d, want %d", got, want)
	}
	want := srv.Residents(nil)
	got := restored.Residents(nil)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(want) != len(got) {
		t.Fatalf("resident counts differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("resident sets diverge at %d: %d vs %d", i, got[i], want[i])
		}
	}
	// The restored H-list must match too.
	if restored.ActiveHList().Len() != srv.ActiveHList().Len() {
		t.Fatal("H-list length differs after restore")
	}
}

func TestRestoredCacheServesHits(t *testing.T) {
	srv, _ := warmServer(t)
	var buf bytes.Buffer
	if err := srv.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	back2 := testBackend(t)
	restored := testServer(t, back2)
	if err := restored.RestoreCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	// Requesting resident H-samples must hit without backend reads.
	var ids []dataset.SampleID
	for _, it := range restored.ActiveHList().Items {
		if restored.h.contains(it.ID) {
			ids = append(ids, it.ID)
		}
		if len(ids) == 64 {
			break
		}
	}
	if len(ids) == 0 {
		t.Fatal("no resident H-samples after restore")
	}
	before := back2.Stats().SampleReads
	restored.FetchBatch(0, ids)
	if delta := back2.Stats().SampleReads - before; delta != 0 {
		t.Fatalf("restored cache went to backend %d times for resident samples", delta)
	}
}

func TestRestoreRejectsWrongDataset(t *testing.T) {
	srv, _ := warmServer(t)
	var buf bytes.Buffer
	if err := srv.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	other := dataset.Spec{Name: "other", NumSamples: 100, MeanSampleBytes: 1000, Seed: 1}
	back, err := storage.NewBackend(other, storage.OrangeFS())
	if err != nil {
		t.Fatal(err)
	}
	restored, err := NewServer(back, DefaultConfig(other.TotalBytes()/5), sampling.DefaultIIS(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreCheckpoint(&buf); err == nil || !strings.Contains(err.Error(), "dataset") {
		t.Fatalf("wrong-dataset restore: err = %v", err)
	}
}

func TestRestoreRejectsNonEmptyCache(t *testing.T) {
	srv, _ := warmServer(t)
	var buf bytes.Buffer
	if err := srv.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if err := srv.RestoreCheckpoint(&buf); err == nil {
		t.Fatal("restore into live cache succeeded")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	back := testBackend(t)
	srv := testServer(t, back)
	if err := srv.RestoreCheckpoint(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage checkpoint accepted")
	}
	if err := srv.RestoreCheckpoint(strings.NewReader(`{"version":99}`)); err == nil {
		t.Fatal("future version accepted")
	}
	if err := srv.RestoreCheckpoint(strings.NewReader(`{"version":1,"dataset":"ic","h_residents":[{"id":999999999,"iv":1}]}`)); err == nil {
		t.Fatal("out-of-range resident accepted")
	}
}

func TestRestoreIntoSmallerCacheDrops(t *testing.T) {
	srv, _ := warmServer(t)
	var buf bytes.Buffer
	if err := srv.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	back2 := testBackend(t)
	cfg := DefaultConfig(back2.Spec().TotalBytes() / 20) // 4× smaller
	small, err := NewServer(back2, cfg, sampling.DefaultIIS(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := small.RestoreCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if small.h.used > small.h.capBytes || small.l.used > small.l.capBytes {
		t.Fatal("restore overflowed the smaller budgets")
	}
	if small.HCacheLen() == 0 {
		t.Fatal("smaller cache restored nothing")
	}
}

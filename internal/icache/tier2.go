package icache

import (
	"time"

	"icache/internal/dataset"
	"icache/internal/simclock"
)

// tier2 is the optional local-storage spill tier discussed in §VI: DRAM is
// the cache the paper ships, but nodes usually also have NVMe (or PM) that
// is far faster than the remote backend. When enabled, H-cache evictions
// spill here instead of vanishing, and an H-miss checks this tier before
// paying a remote read. Reads cost real (simulated) time through a local
// device model, so the tier helps exactly as much as its latency advantage.
type tier2 struct {
	items    map[dataset.SampleID]int
	order    []dataset.SampleID // FIFO spill order for eviction
	capBytes int64
	used     int64

	latency   time.Duration
	bandwidth float64
	dev       *simclock.Pool

	hits   int64
	spills int64
}

func newTier2(capBytes int64, latency time.Duration, bandwidth float64) *tier2 {
	return &tier2{
		items:     make(map[dataset.SampleID]int),
		capBytes:  capBytes,
		latency:   latency,
		bandwidth: bandwidth,
		dev:       simclock.NewPool(8),
	}
}

func (t *tier2) contains(id dataset.SampleID) bool {
	_, ok := t.items[id]
	return ok
}

// spill admits an evicted sample, dropping oldest spills to fit.
func (t *tier2) spill(id dataset.SampleID, size int) {
	if t.contains(id) || int64(size) > t.capBytes {
		return
	}
	for t.used+int64(size) > t.capBytes {
		victim := t.order[0]
		t.order = t.order[1:]
		if vs, ok := t.items[victim]; ok {
			delete(t.items, victim)
			t.used -= int64(vs)
		}
	}
	t.items[id] = size
	t.order = append(t.order, id)
	t.used += int64(size)
	t.spills++
}

// read serves a sample from the local device, removing it (it is being
// promoted back to DRAM). Returns the completion time and whether it was
// present.
func (t *tier2) read(at simclock.Time, id dataset.SampleID) (simclock.Time, bool) {
	size, ok := t.items[id]
	if !ok {
		return at, false
	}
	delete(t.items, id)
	t.used -= int64(size)
	t.hits++
	service := t.latency + time.Duration(float64(size)/t.bandwidth*float64(time.Second))
	_, end := t.dev.Acquire(at, service)
	return end, true
}

package icache

import (
	"math/rand"

	"icache/internal/dataset"
)

// lcache is the L-cache of §III-C. It holds low-importance samples delivered
// in packages by the loading thread and serves them with substitutability:
// a request for an L-sample that is resident and unused this epoch is an
// exact hit; a request for an absent L-sample is served by a randomly picked
// unused resident. Every resident substitutes (or serves) at most once per
// epoch, which is what preserves sample diversity.
type lcache struct {
	items    map[dataset.SampleID]int // id → size
	capBytes int64
	used     int64

	// unused is the pool of residents not yet served this epoch, with an
	// index map for O(1) removal and uniform random picks; unusedB tracks
	// the pool's byte volume incrementally.
	unused    []dataset.SampleID
	unusedIdx map[dataset.SampleID]int
	unusedB   int64

	// arrival is FIFO admission order; usedQ holds residents already served
	// this epoch in use order. Eviction prefers usedQ (spent diversity)
	// before the oldest unused arrivals.
	arrival []dataset.SampleID
	usedQ   []dataset.SampleID

	inserts   int64
	evictions int64

	// onEvict, when set, observes every eviction (the distributed mode
	// releases directory ownership there).
	onEvict func(dataset.SampleID)
	// claim, when set, must approve each admission; the distributed mode
	// claims directory ownership here, and a failed claim (item owned by
	// another node) vetoes the insert so no item is cached twice.
	claim func(dataset.SampleID) bool
}

func newLCache(capBytes int64) *lcache {
	return &lcache{
		items:     make(map[dataset.SampleID]int),
		capBytes:  capBytes,
		unusedIdx: make(map[dataset.SampleID]int),
	}
}

func (l *lcache) contains(id dataset.SampleID) bool {
	_, ok := l.items[id]
	return ok
}

func (l *lcache) len() int { return len(l.items) }

// unusedCount reports how many residents can still serve this epoch.
func (l *lcache) unusedCount() int { return len(l.unused) }

// unusedBytes reports the byte volume of still-unused residents.
func (l *lcache) unusedBytes() int64 { return l.unusedB }

func (l *lcache) addUnused(id dataset.SampleID) {
	l.unusedIdx[id] = len(l.unused)
	l.unused = append(l.unused, id)
	l.unusedB += int64(l.items[id])
}

func (l *lcache) dropUnused(id dataset.SampleID) bool {
	i, ok := l.unusedIdx[id]
	if !ok {
		return false
	}
	l.unusedB -= int64(l.items[id])
	last := len(l.unused) - 1
	if i != last {
		l.unused[i] = l.unused[last]
		l.unusedIdx[l.unused[i]] = i
	}
	l.unused = l.unused[:last]
	delete(l.unusedIdx, id)
	return true
}

// markUsed moves a resident out of the substitution pool.
func (l *lcache) markUsed(id dataset.SampleID) {
	if l.dropUnused(id) {
		l.usedQ = append(l.usedQ, id)
	}
}

// takeExact serves a request for id from the cache if it is resident and
// unused this epoch. Reports whether it was served.
func (l *lcache) takeExact(id dataset.SampleID) bool {
	if !l.contains(id) {
		return false
	}
	if _, unused := l.unusedIdx[id]; !unused {
		return false // already served this epoch: do not break diversity
	}
	l.markUsed(id)
	return true
}

// substitute serves a miss with a uniformly random unused resident,
// reporting the substitute's ID.
func (l *lcache) substitute(rng *rand.Rand) (dataset.SampleID, bool) {
	if len(l.unused) == 0 {
		return 0, false
	}
	id := l.unused[rng.Intn(len(l.unused))]
	l.markUsed(id)
	return id, true
}

// evictOne removes one resident: first anything already used this epoch
// (its diversity value is spent), then the oldest unused arrival. Reports
// false when the cache is empty.
func (l *lcache) evictOne() bool {
	for len(l.usedQ) > 0 {
		id := l.usedQ[0]
		l.usedQ = l.usedQ[1:]
		if size, ok := l.items[id]; ok {
			delete(l.items, id)
			l.used -= int64(size)
			l.evictions++
			if l.onEvict != nil {
				l.onEvict(id)
			}
			return true
		}
	}
	for len(l.arrival) > 0 {
		id := l.arrival[0]
		l.arrival = l.arrival[1:]
		if size, ok := l.items[id]; ok {
			l.dropUnused(id) // before the items delete: it reads the size
			delete(l.items, id)
			l.used -= int64(size)
			l.evictions++
			if l.onEvict != nil {
				l.onEvict(id)
			}
			return true
		}
	}
	return false
}

// insert admits one sample from an arrived package, evicting as needed.
// Oversized samples are rejected. Reports whether it was admitted.
func (l *lcache) insert(id dataset.SampleID, size int) bool {
	if l.contains(id) {
		return true
	}
	if int64(size) > l.capBytes {
		return false
	}
	if l.claim != nil && !l.claim(id) {
		return false
	}
	for l.used+int64(size) > l.capBytes {
		if !l.evictOne() {
			return false
		}
	}
	l.items[id] = size
	l.used += int64(size)
	l.arrival = append(l.arrival, id)
	l.addUnused(id)
	l.inserts++
	return true
}

// wipe discards every resident without firing eviction hooks (crash
// semantics: contents vanish, counters survive; see hcache.wipe).
func (l *lcache) wipe() {
	l.items = make(map[dataset.SampleID]int)
	l.used = 0
	l.unused = nil
	l.unusedIdx = make(map[dataset.SampleID]int)
	l.unusedB = 0
	l.arrival = nil
	l.usedQ = nil
}

// remove drops a specific sample (distributed ownership moves).
func (l *lcache) remove(id dataset.SampleID) bool {
	size, ok := l.items[id]
	if !ok {
		return false
	}
	l.dropUnused(id) // before the items delete: it reads the size
	delete(l.items, id)
	l.used -= int64(size)
	return true
}

// beginEpoch returns every resident to the substitution pool.
func (l *lcache) beginEpoch() {
	l.usedQ = l.usedQ[:0]
	l.unused = l.unused[:0]
	l.unusedB = 0
	for id := range l.unusedIdx {
		delete(l.unusedIdx, id)
	}
	// Rebuild the pool in arrival order (compacting stale entries) so the
	// pool is deterministic for a given history.
	live := l.arrival[:0]
	for _, id := range l.arrival {
		if _, ok := l.items[id]; !ok {
			continue
		}
		if _, dup := l.unusedIdx[id]; dup {
			continue // stale duplicate arrival entry after evict+re-insert
		}
		live = append(live, id)
		l.addUnused(id)
	}
	l.arrival = live
}

// resize updates the byte budget, evicting as needed.
func (l *lcache) resize(capBytes int64) {
	l.capBytes = capBytes
	for l.used > l.capBytes {
		if !l.evictOne() {
			return
		}
	}
}

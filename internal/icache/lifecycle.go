package icache

import (
	"fmt"
	"sort"

	"icache/internal/dataset"
	"icache/internal/dkv"
	"icache/internal/faults"
	"icache/internal/metrics"
	"icache/internal/sampling"
	"icache/internal/simclock"
)

// This file is the node-lifecycle half of the distributed mode: lease
// heartbeats, the anti-entropy scrubber, and crash/rejoin. The directory
// half (lease state, reclaim, purge) lives in internal/dkv/membership.go.
//
// Everything here runs on the cluster's virtual clock: fetchOne calls tick
// before serving, and tick runs whatever background work (heartbeat, scrub)
// has come due. That keeps the simulation single-threaded and deterministic
// — background maintenance happens at reproducible instants, interleaved
// with the foreground exactly the same way for a given seed and drive
// sequence.

// tick advances the cluster's virtual clock and runs node n's background
// membership work that has come due: lease heartbeats every
// HeartbeatInterval and one bounded anti-entropy sweep every ScrubInterval.
func (cl *Cluster) tick(n *clusterNode, node int, at simclock.Time) {
	if at > cl.vnow {
		cl.vnow = at
	}
	if cl.cfg.DisableMembership {
		return
	}
	if at >= n.nextHeartbeat {
		n.nextHeartbeat = at + simclock.Time(cl.cfg.HeartbeatInterval)
		cl.heartbeat(n, node, at)
	}
	if at >= n.nextScrub {
		n.nextScrub = at + simclock.Time(cl.cfg.ScrubInterval)
		cl.scrub(n, node, at)
	}
}

// heartbeat renews node n's lease. A rejected renewal means the lease
// already lapsed (e.g. the node sat partitioned in local-only mode for
// longer than the TTL) and the node's directory entries may have been
// reclaimed: the node re-registers under a fresh lease and reconciles its
// ownership before trusting its cache again.
func (cl *Cluster) heartbeat(n *clusterNode, node int, at simclock.Time) {
	if !cl.dirAvailable(n, at) {
		return
	}
	if faulted(cl.decide(faults.OpDirHeartbeat, at)) {
		cl.dirFault(n, at)
		return
	}
	renewed, err := cl.dir.Heartbeat(dkv.NodeID(node))
	if err != nil {
		cl.dirFault(n, at)
		return
	}
	cl.dirHealed(n)
	if renewed {
		return
	}
	cl.reregister(n, node, at)
}

// reregister grants node n a fresh lease and reconciles its ownership
// claims. It is the split-brain repair path: between lease expiry and
// re-registration other nodes may have reclaimed this node's entries, so
// every cached sample must be re-claimed — and dropped locally when the
// claim is denied — to restore the no-duplication invariant.
func (cl *Cluster) reregister(n *clusterNode, node int, at simclock.Time) {
	if faulted(cl.decide(faults.OpDirRegister, at)) {
		cl.dirFault(n, at)
		return
	}
	if _, err := cl.dir.Register(dkv.NodeID(node), cl.cfg.LeaseTTL); err != nil {
		cl.dirFault(n, at)
		return
	}
	cl.dirHealed(n)
	cl.reconcileOwnership(n, node, at)
}

// reconcileOwnership re-claims every sample node n holds. Claims are
// idempotent for the current owner, so entries nobody touched simply
// re-affirm; entries another node won in the meantime come back denied and
// the local copy is dropped without releasing (the ownership is not ours to
// release). A directory failure mid-walk stops the sweep; the next
// heartbeat cycle retries from scratch.
func (cl *Cluster) reconcileOwnership(n *clusterNode, node int, at simclock.Time) {
	for _, id := range n.residentIDs() {
		claimed, degraded := cl.dirClaim(n, at, id, dkv.NodeID(node))
		if degraded {
			return
		}
		if claimed {
			cl.mem.ReplayedClaims++
			continue
		}
		cl.mem.ReplayDenied++
		cl.dropLocal(n, id)
	}
}

// scrub runs one bounded anti-entropy sweep for node n, reconciling the
// shared directory against the node's actual cache contents in both
// directions, then purging a batch of Dead-owned entries as a backstop for
// anything no survivor reclaims on the demand path.
func (cl *Cluster) scrub(n *clusterNode, node int, at simclock.Time) {
	if !cl.dirAvailable(n, at) {
		return
	}
	self := dkv.NodeID(node)
	batch := cl.cfg.ScrubBatch

	// Direction 1: directory entries registered to this node that it no
	// longer caches (e.g. a release dropped at the deferred-queue cap).
	// Left alone they would route peers to a copy that does not exist.
	if faulted(cl.decide(faults.OpDirScan, at)) {
		cl.dirFault(n, at)
		return
	}
	owned, err := cl.dir.OwnedBy(self, batch)
	if err != nil {
		cl.dirFault(n, at)
		return
	}
	cl.dirHealed(n)
	for _, id := range owned {
		if n.h.contains(id) || n.l.contains(id) {
			continue
		}
		if faulted(cl.decide(faults.OpDirRelease, at)) {
			cl.dirFault(n, at)
			return
		}
		if _, err := cl.dir.Release(id, self); err != nil {
			cl.dirFault(n, at)
			return
		}
		if who, queued := cl.deferred[id]; queued && who == self {
			delete(cl.deferred, id) // the scrub just did the deferred work
		}
		cl.mem.ScrubReleased++
	}

	// Direction 2: cached samples the directory does not credit to this
	// node (a lost claim, or ownership another node took over). A watermark
	// walks the sorted resident set so bounded sweeps eventually cover
	// everything.
	ids := n.residentIDs()
	if len(ids) > 0 {
		if n.scrubMark >= len(ids) {
			n.scrubMark = 0
		}
		limit := batch
		if limit > len(ids) {
			limit = len(ids)
		}
		for i := 0; i < limit; i++ {
			id := ids[(n.scrubMark+i)%len(ids)]
			owner, ok, degraded := cl.dirLookup(n, at, id)
			if degraded {
				return
			}
			if ok && owner == self {
				continue // directory and cache agree
			}
			if ok {
				// A peer owns it: our copy is the duplicate. Drop it.
				cl.dropLocal(n, id)
				cl.mem.ScrubDropped++
				continue
			}
			// Unregistered: re-claim it so peers can find the copy.
			claimed, degraded := cl.dirClaim(n, at, id, self)
			if degraded {
				return
			}
			if claimed {
				cl.mem.ScrubReclaimed++
			} else {
				// Lost the race between lookup and claim: drop the copy.
				cl.dropLocal(n, id)
				cl.mem.ScrubDropped++
			}
		}
		n.scrubMark = (n.scrubMark + limit) % len(ids)
	}

	// Backstop: garbage-collect a batch of Dead-owned entries nobody
	// reclaimed on the demand path.
	if faulted(cl.decide(faults.OpDirScan, at)) {
		cl.dirFault(n, at)
		return
	}
	if _, err := cl.dir.PurgeDead(batch); err != nil {
		cl.dirFault(n, at)
		return
	}
	cl.dirHealed(n)
	cl.mem.ScrubSweeps++
}

// residentIDs snapshots node n's full resident set (H then L — the regions
// are disjoint) in sorted order for deterministic walks.
func (n *clusterNode) residentIDs() []dataset.SampleID {
	ids := make([]dataset.SampleID, 0, n.h.len()+n.l.len())
	for id := range n.h.items {
		ids = append(ids, id)
	}
	for id := range n.l.items {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// dropLocal removes id from node n's caches without firing eviction hooks:
// the drop happens precisely because the directory says the ownership is
// not (or no longer) this node's, so releasing it would clobber the real
// owner's entry.
func (cl *Cluster) dropLocal(n *clusterNode, id dataset.SampleID) {
	if !n.h.remove(id) {
		n.l.remove(id)
	}
}

// KillNode crashes node at virtual time at — the simulation's SIGKILL. The
// node's cache memory and in-flight loader packages vanish without firing
// eviction hooks (a crash is not an eviction: the node cannot release
// directory ownership it can no longer vouch for), so its directory entries
// go stale until its lease expires and survivors reclaim them on the demand
// path, the scrubber purges them, or the node rejoins and re-claims what is
// still unowned. Killing a dead node is a no-op.
func (cl *Cluster) KillNode(node int, at simclock.Time) {
	if node < 0 || node >= len(cl.nodes) {
		panic(fmt.Sprintf("icache: node %d out of range [0,%d)", node, len(cl.nodes)))
	}
	n := cl.nodes[node]
	if !n.alive {
		return
	}
	if at > cl.vnow {
		cl.vnow = at
	}
	n.alive = false
	n.h.wipe()
	n.l.wipe()
	n.ld.reset(at)
	n.dirDown, n.dirDownUntil = false, 0
	n.scrubMark = 0
	// Releases this node had deferred die with it: the copies they covered
	// are gone, and the stale directory entries they targeted will be
	// handled by lease expiry, not replay.
	for id, owner := range cl.deferred {
		if owner == dkv.NodeID(node) {
			delete(cl.deferred, id)
		}
	}
}

// NodeAlive reports whether node is currently running.
func (cl *Cluster) NodeAlive(node int) bool { return cl.nodes[node].alive }

// NodeCheckpoint is a crash-consistent snapshot of one node's cache
// contents — IDs plus importance values; the simulation carries no
// payloads. It mirrors what the RPC server persists to disk, and
// RestartNode replays it the way a rebooted server replays its checkpoint
// file.
type NodeCheckpoint struct {
	Node int
	H    []sampling.Item
	L    []dataset.SampleID
}

// SnapshotNode captures node's current residents, sorted by ID. H-samples
// carry their current importance values so a restore can rebuild the
// eviction heap faithfully.
func (cl *Cluster) SnapshotNode(node int) NodeCheckpoint {
	if node < 0 || node >= len(cl.nodes) {
		panic(fmt.Sprintf("icache: node %d out of range [0,%d)", node, len(cl.nodes)))
	}
	n := cl.nodes[node]
	ck := NodeCheckpoint{Node: node}
	for id := range n.h.items {
		ck.H = append(ck.H, sampling.Item{ID: id, IV: cl.hlistIV[id]})
	}
	sort.Slice(ck.H, func(i, j int) bool { return ck.H[i].ID < ck.H[j].ID })
	for id := range n.l.items {
		ck.L = append(ck.L, id)
	}
	sort.Slice(ck.L, func(i, j int) bool { return ck.L[i] < ck.L[j] })
	return ck
}

// RestartNode boots a crashed node at virtual time at, optionally restoring
// a checkpoint taken before the crash. The node registers under a fresh
// lease first, then replays ownership claims for every restored sample:
// claims the directory grants re-admit the sample, claims it denies mean a
// survivor reclaimed the sample while this node was down — the restored
// copy is dropped, preserving the no-duplication invariant. Restarting a
// live node is an error.
func (cl *Cluster) RestartNode(node int, at simclock.Time, ckpt *NodeCheckpoint) error {
	if node < 0 || node >= len(cl.nodes) {
		panic(fmt.Sprintf("icache: node %d out of range [0,%d)", node, len(cl.nodes)))
	}
	n := cl.nodes[node]
	if n.alive {
		return fmt.Errorf("icache: RestartNode(%d): node is already running", node)
	}
	if ckpt != nil && ckpt.Node != node {
		return fmt.Errorf("icache: RestartNode(%d): checkpoint belongs to node %d", node, ckpt.Node)
	}
	if at > cl.vnow {
		cl.vnow = at
	}
	n.alive = true
	n.lastAt = at
	n.nextHeartbeat = at + simclock.Time(cl.cfg.HeartbeatInterval)
	n.nextScrub = at + simclock.Time(cl.cfg.ScrubInterval)

	// Fresh lease before any claim: claims from an expired identity would
	// be immediately reclaimable again.
	if !cl.cfg.DisableMembership {
		if faulted(cl.decide(faults.OpDirRegister, at)) {
			cl.dirFault(n, at)
		} else if _, err := cl.dir.Register(dkv.NodeID(node), cl.cfg.LeaseTTL); err != nil {
			cl.dirFault(n, at)
		} else {
			cl.dirHealed(n)
		}
	}
	if ckpt == nil {
		return nil
	}

	self := dkv.NodeID(node)
	for _, it := range ckpt.H {
		claimed, _ := cl.dirClaim(n, at, it.ID, self)
		if !claimed {
			cl.mem.ReplayDenied++
			continue
		}
		cl.mem.ReplayedClaims++
		if !n.h.offer(it.ID, cl.spec.SampleBytes(it.ID), it.IV) {
			cl.dirRelease(n, at, it.ID, self)
		}
	}
	// The L-cache's admission hook would claim again on insert; suspend it
	// so the replay owns the claim bookkeeping (claims are idempotent, but
	// double-deciding would perturb fault schedules).
	claimHook := n.l.claim
	n.l.claim = nil
	for _, id := range ckpt.L {
		claimed, _ := cl.dirClaim(n, at, id, self)
		if !claimed {
			cl.mem.ReplayDenied++
			continue
		}
		cl.mem.ReplayedClaims++
		if !n.l.insert(id, cl.spec.SampleBytes(id)) {
			cl.dirRelease(n, at, id, self)
		}
	}
	n.l.claim = claimHook
	return nil
}

// Membership reports the cluster's node-lifecycle counters: the node-side
// scrub and replay work merged with the directory's lease accounting — in
// a partitioned deployment, summed over every replica (each replica leases
// every node, so e.g. Registers counts node×replica grants).
func (cl *Cluster) Membership() metrics.MembershipStats {
	ms := cl.mem
	if cl.rawDir != nil {
		ms.Add(cl.rawDir.Membership())
	}
	for _, d := range cl.rawDirs {
		ms.Add(d.Membership())
	}
	return ms
}

// Package icache implements the paper's contribution: the
// importance-sampling-informed cache. A Server combines
//
//   - an H-cache holding high-importance samples, managed by the
//     importance-informed replacement algorithm over a shadowed min-heap
//     (§III-B),
//   - an L-cache holding low-importance samples loaded by a dynamic-packaging
//     background loader and served with substitutability (§III-C),
//   - a cache manager that partitions capacity between the two regions and
//     pulls H-lists from clients (§III-A),
//   - a multi-job coordinator that estimates per-job caching benefit and
//     aggregates relative importance values (§III-D), and
//   - a distributed mode where per-node servers share a key-value directory
//     so cached items are never duplicated (§III-E).
package icache

import (
	"fmt"
	"time"
)

// SubstitutePolicy selects how an L-cache miss is served (§V-E, Table III).
type SubstitutePolicy int

const (
	// SubstituteLCache replaces a missed L-sample with an unused L-cache
	// resident — the policy iCache ships with, because it preserves the
	// H-sample distribution chosen by importance sampling.
	SubstituteLCache SubstitutePolicy = iota
	// SubstituteHCache replaces a missed L-sample with an H-cache resident.
	// Implemented only for the Table III accuracy comparison.
	SubstituteHCache
	// SubstituteNone disables substitution: every L-miss goes to storage
	// (the "Def" column of Table III).
	SubstituteNone
)

// String implements fmt.Stringer.
func (p SubstitutePolicy) String() string {
	switch p {
	case SubstituteLCache:
		return "st-lc"
	case SubstituteHCache:
		return "st-hc"
	case SubstituteNone:
		return "none"
	default:
		return fmt.Sprintf("SubstitutePolicy(%d)", int(p))
	}
}

// PartitionPolicy selects how the H-cache/L-cache split evolves.
type PartitionPolicy int

const (
	// PartitionStatic keeps the initial split (the paper's reported
	// operating point is 9:1 and its single-job evaluation holds there).
	PartitionStatic PartitionPolicy = iota
	// PartitionByFrequency applies the paper's §III-A formula
	// Size_hcache = Size_cache × Freq_H / (Freq_H + Freq_L) with per-sample
	// access frequencies smoothed across epochs. (Interpreting the formula
	// over raw request counts would shrink the H-cache far below the 9:1
	// operating point the paper itself reports, so the per-sample reading
	// is used; see DESIGN.md.)
	PartitionByFrequency
)

// String implements fmt.Stringer.
func (p PartitionPolicy) String() string {
	switch p {
	case PartitionStatic:
		return "static"
	case PartitionByFrequency:
		return "freq"
	default:
		return fmt.Sprintf("PartitionPolicy(%d)", int(p))
	}
}

// PackagingMode selects how the loading thread forms L-sample packages.
type PackagingMode int

const (
	// PackagingDynamic is iCache's §III-C design: packages are composed at
	// runtime from recently missed L-samples plus random fill, so every
	// loaded byte is a cacheable, currently useful sample.
	PackagingDynamic PackagingMode = iota
	// PackagingStatic models prior work (TFRecord/WebDataset-style): the
	// dataset is pre-packed into fixed chunks of consecutive IDs; serving a
	// missed L-sample loads its whole chunk, including members that are
	// H-samples, already cached, or already consumed — the read
	// amplification §II-C describes.
	PackagingStatic
)

// String implements fmt.Stringer.
func (p PackagingMode) String() string {
	switch p {
	case PackagingDynamic:
		return "dynamic"
	case PackagingStatic:
		return "static"
	default:
		return fmt.Sprintf("PackagingMode(%d)", int(p))
	}
}

// Config parameterizes an iCache server.
type Config struct {
	// CapacityBytes is the total cache budget (H-cache + L-cache).
	CapacityBytes int64
	// HShare is the initial fraction of capacity given to the H-cache.
	// The paper's default Size_hcache:Size_lcache ratio is 9:1.
	HShare float64
	// Partition selects static or frequency-adaptive partitioning.
	Partition PartitionPolicy
	// PackageBytes is the dynamic-packaging unit (≥1 MB in the paper).
	PackageBytes int
	// HitLatency is the per-sample cost of a cache-served request.
	HitLatency time.Duration
	// Substitute selects the L-miss substitution policy.
	Substitute SubstitutePolicy
	// EnableLCache turns the L-cache + dynamic packaging on. Disabling it
	// gives the "+HC" ablation rung of Fig. 10 (the "+IIS" rung — IIS over
	// a plain LRU — is built from the cache package's baselines instead).
	EnableLCache bool
	// ProbeBatches is the number of mini-batches measured per phase of the
	// multi-job cache-benefit estimation (20 cacheless + 20 cached in the
	// paper). Probing only happens when more than one job is registered.
	ProbeBatches int
	// BenefitThreshold is the Ratio_benefit above which a job is
	// cache-eligible. The paper uses 1.5 on end-to-end mini-batch times;
	// this reproduction measures per-request fetch latency, which spans a
	// smaller dynamic range (compute overlap is not in the probe), so the
	// default is recalibrated to 1.1 to classify the same jobs as eligible.
	BenefitThreshold float64
	// FreqDecay smooths the per-epoch access-frequency estimates used by
	// PartitionByFrequency.
	FreqDecay float64
	// Packaging selects dynamic (the paper's contribution) or static
	// (prior-work baseline) package composition for the loading thread.
	Packaging PackagingMode
	// Tier2Bytes enables the §VI local-storage spill tier: H-cache
	// evictions land on a local NVMe/PM device of this capacity, and
	// H-misses check it before paying a remote read. 0 disables the tier.
	Tier2Bytes int64
	// Tier2ReadLatency and Tier2Bandwidth model the local device (defaults
	// target a data-center NVMe: 80µs, 2 GB/s).
	Tier2ReadLatency time.Duration
	Tier2Bandwidth   float64
	// PrefetchWorkers sizes the serving path's asynchronous prefetch
	// worker pool (the paper's Fig. 15 knob): when the background loader
	// delivers an L-package, this many workers pull the real sample bytes
	// from the backend concurrently so first requests hit DRAM. It only
	// affects byte serving (the RPC server); the virtual-time simulation
	// ignores it. 0 disables prefetching (bytes load lazily on first
	// request).
	PrefetchWorkers int
	// Clairvoyant enables planned cross-epoch prefetching: because the IIS
	// sampler draws the next epoch's schedule before the epoch begins, the
	// future access sequence is known in advance (the NoPFS premise).
	// BeginEpoch then feeds the schedule into PlanSchedule so the background
	// loader composes its packages from exactly the L-samples the epoch will
	// consume (in first-access order) instead of waiting for misses, and —
	// on the byte-serving RPC path — missing H-samples are pre-placed by the
	// planner under a storage-bandwidth budget. Off by default: reactive
	// behavior is unchanged.
	Clairvoyant bool
	// RepackPerSample is the loading thread's bookkeeping cost per sample
	// packed: dynamic packaging must gather each scattered L-sample from
	// its original location (a server-side seek-bound read), write it into
	// the reorganized package, and update metadata before the package can
	// be loaded — re-packing is not free. This throttles how many fresh
	// substitutable samples reach the L-cache per second and is the knob
	// that calibrates the L-cache's hit-ratio contribution to the paper's
	// Fig. 11 (≈12 points on top of the H-cache's 25%).
	RepackPerSample time.Duration
}

// DefaultConfig returns the paper's defaults for a given capacity.
func DefaultConfig(capacityBytes int64) Config {
	return Config{
		CapacityBytes:    capacityBytes,
		HShare:           0.9,
		Partition:        PartitionStatic,
		PackageBytes:     1 << 20,
		HitLatency:       20 * time.Microsecond,
		Substitute:       SubstituteLCache,
		EnableLCache:     true,
		ProbeBatches:     20,
		BenefitThreshold: 1.1,
		FreqDecay:        0.5,
		Tier2ReadLatency: 80 * time.Microsecond,
		Tier2Bandwidth:   2e9,
		PrefetchWorkers:  4,
		RepackPerSample:  1700 * time.Microsecond,
	}
}

// Validate reports whether the config is usable.
func (c Config) Validate() error {
	switch {
	case c.CapacityBytes <= 0:
		return fmt.Errorf("icache: CapacityBytes=%d, want > 0", c.CapacityBytes)
	case c.HShare <= 0 || c.HShare >= 1:
		return fmt.Errorf("icache: HShare=%g, want (0,1)", c.HShare)
	case c.PackageBytes <= 0:
		return fmt.Errorf("icache: PackageBytes=%d, want > 0", c.PackageBytes)
	case c.HitLatency < 0:
		return fmt.Errorf("icache: negative HitLatency %v", c.HitLatency)
	case c.ProbeBatches < 0:
		return fmt.Errorf("icache: ProbeBatches=%d, want >= 0", c.ProbeBatches)
	case c.BenefitThreshold <= 0:
		return fmt.Errorf("icache: BenefitThreshold=%g, want > 0", c.BenefitThreshold)
	case c.FreqDecay < 0 || c.FreqDecay >= 1:
		return fmt.Errorf("icache: FreqDecay=%g, want [0,1)", c.FreqDecay)
	case c.PrefetchWorkers < 0:
		return fmt.Errorf("icache: PrefetchWorkers=%d, want >= 0", c.PrefetchWorkers)
	case c.RepackPerSample < 0:
		return fmt.Errorf("icache: negative RepackPerSample %v", c.RepackPerSample)
	case c.Tier2Bytes < 0:
		return fmt.Errorf("icache: negative Tier2Bytes %d", c.Tier2Bytes)
	case c.Tier2Bytes > 0 && (c.Tier2ReadLatency < 0 || c.Tier2Bandwidth <= 0):
		return fmt.Errorf("icache: tier2 enabled with latency %v bandwidth %g", c.Tier2ReadLatency, c.Tier2Bandwidth)
	}
	return nil
}

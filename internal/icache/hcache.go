package icache

import (
	"math/rand"

	"icache/internal/dataset"
	"icache/internal/impheap"
)

// hcache is the H-cache of §III-B: a key-value store of high-importance
// samples plus the shadowed H-heap that orders them by importance value for
// eviction. The simulation stores sample sizes rather than payloads; the
// RPC server layers real bytes on top.
type hcache struct {
	items    map[dataset.SampleID]int // id → size
	heap     *impheap.Shadowed
	capBytes int64
	used     int64

	// ids/idx support O(1) uniform random resident picks (the ST_HC
	// substitution policy of Table III).
	ids []dataset.SampleID
	idx map[dataset.SampleID]int

	inserts   int64
	evictions int64

	// onEvict, when set, observes every eviction (the distributed mode
	// releases directory ownership there).
	onEvict func(dataset.SampleID)
}

func newHCache(capBytes int64) *hcache {
	return &hcache{
		items:    make(map[dataset.SampleID]int),
		heap:     impheap.NewShadowed(),
		idx:      make(map[dataset.SampleID]int),
		capBytes: capBytes,
	}
}

func (h *hcache) trackID(id dataset.SampleID) {
	h.idx[id] = len(h.ids)
	h.ids = append(h.ids, id)
}

func (h *hcache) untrackID(id dataset.SampleID) {
	i, ok := h.idx[id]
	if !ok {
		return
	}
	last := len(h.ids) - 1
	if i != last {
		h.ids[i] = h.ids[last]
		h.idx[h.ids[i]] = i
	}
	h.ids = h.ids[:last]
	delete(h.idx, id)
}

// randomResident returns a uniformly random cached sample.
func (h *hcache) randomResident(rng *rand.Rand) (dataset.SampleID, bool) {
	if len(h.ids) == 0 {
		return 0, false
	}
	return h.ids[rng.Intn(len(h.ids))], true
}

func (h *hcache) contains(id dataset.SampleID) bool {
	_, ok := h.items[id]
	return ok
}

func (h *hcache) len() int { return len(h.items) }

// evictMin removes the heap's top-node from the cache. Returns false when
// the cache is empty.
func (h *hcache) evictMin() bool {
	top, ok := h.heap.PopMin()
	if !ok {
		return false
	}
	size := h.items[top.ID]
	delete(h.items, top.ID)
	h.untrackID(top.ID)
	h.used -= int64(size)
	h.evictions++
	if h.onEvict != nil {
		h.onEvict(top.ID)
	}
	return true
}

// offer implements Algorithm 1's admission path for a fetched H-sample: if
// the cache has room it is inserted; otherwise the top-node is evicted only
// if its importance value is smaller than the incoming sample's. Reports
// whether the sample was admitted.
func (h *hcache) offer(id dataset.SampleID, size int, iv float64) bool {
	if h.contains(id) {
		return true
	}
	if int64(size) > h.capBytes {
		return false
	}
	for h.used+int64(size) > h.capBytes {
		min, ok := h.heap.Min()
		if !ok {
			return false
		}
		if min.IV >= iv {
			return false // incoming sample is not more important: reject
		}
		h.evictMin()
	}
	h.items[id] = size
	if err := h.heap.Insert(id, iv); err != nil {
		// The items map said the ID was absent; the heap must agree.
		panic("icache: hcache heap out of sync: " + err.Error())
	}
	h.trackID(id)
	h.used += int64(size)
	h.inserts++
	return true
}

// resize updates the byte budget, evicting lowest-importance residents
// until the cache fits (used when the manager repartitions).
func (h *hcache) resize(capBytes int64) {
	h.capBytes = capBytes
	for h.used > h.capBytes {
		if !h.evictMin() {
			return
		}
	}
}

// refreshImportance applies a new H-list to the cache, per the shadow-heap
// protocol: the previous frozen period (if any) is merged, every cached
// sample's importance is updated — samples demoted out of the new H-list
// get importance 0 so they become the first eviction candidates — and the
// heap is frozen again for the coming epoch.
func (h *hcache) refreshImportance(value func(dataset.SampleID) (float64, bool)) {
	if h.heap.Frozen() {
		if err := h.heap.Thaw(); err != nil {
			panic("icache: thaw: " + err.Error())
		}
	}
	for id := range h.items {
		iv, ok := value(id)
		if !ok {
			iv = 0 // demoted: no longer an H-sample
		}
		h.heap.Update(id, iv)
	}
	if err := h.heap.Freeze(); err != nil {
		panic("icache: freeze: " + err.Error())
	}
}

// wipe discards every resident without firing eviction hooks: a crash
// loses memory contents, it does not "evict" them (the distributed mode
// must not release directory ownership it can no longer vouch for).
// Cumulative insert/eviction counters survive so stats stay monotone.
func (h *hcache) wipe() {
	h.items = make(map[dataset.SampleID]int)
	h.heap = impheap.NewShadowed()
	h.ids = nil
	h.idx = make(map[dataset.SampleID]int)
	h.used = 0
}

// remove drops a specific sample (used by the distributed mode when
// ownership moves). Reports whether it was present.
func (h *hcache) remove(id dataset.SampleID) bool {
	size, ok := h.items[id]
	if !ok {
		return false
	}
	delete(h.items, id)
	h.heap.Remove(id)
	h.untrackID(id)
	h.used -= int64(size)
	return true
}

package icache

import (
	"math/rand"
	"time"

	"icache/internal/dataset"
	"icache/internal/sampling"
	"icache/internal/simclock"
	"icache/internal/storage"
)

// loader is the asynchronous loading thread of §III-C. It composes packages
// dynamically — L-samples that recently missed in the L-cache are re-packed
// first, the remaining space is filled with randomly selected L-samples —
// and streams them from the backend as large sequential reads that share
// (and therefore contend for) the same storage resources as foreground
// fetches. Arrived packages are applied to the L-cache lazily, when the
// server observes virtual time passing each arrival's completion instant.
type loader struct {
	backend  *storage.Backend
	spec     dataset.Spec
	pkgBytes int
	// repackPerSample is the bookkeeping cost per packed sample: gathering
	// it from its scattered location, writing it into the reorganized
	// package, and metadata updates (see Config.RepackPerSample). Static
	// packaging pays none of it — its packages pre-exist on storage.
	repackPerSample simclock.Time
	mode            PackagingMode
	// cursor walks the static chunk sequence when no misses are queued.
	cursor int
	rng    *rand.Rand

	// wastedBytes counts loaded bytes whose samples could not be used
	// (H-samples, already cached): static packaging's read amplification.
	// usefulBytes counts bytes actually delivered into the L-cache.
	wastedBytes int64
	usefulBytes int64

	// nextFree is the loading thread's own timeline: it issues one package
	// read at a time.
	nextFree simclock.Time
	pending  []packageArrival

	// Re-pack queue: L-samples that missed, in miss order, deduplicated.
	missedQ   []dataset.SampleID
	missedSet map[dataset.SampleID]struct{}

	// gated records that the thread was blocked (no room or nothing to
	// load) so the next issue starts at the unblocking instant instead of
	// retroactively at nextFree.
	gated bool

	// onDeliver, when set, observes every sample actually inserted into
	// the L-cache by deliver. The RPC serving path uses it to hand freshly
	// loaded samples to its prefetch worker pool so their real bytes are
	// pulled asynchronously. Nil (the default, and always in the
	// simulation path) costs nothing and changes nothing.
	onDeliver func(dataset.SampleID)

	packages int64 // packages issued
	samples  int64 // samples shipped in packages
}

type packageArrival struct {
	at  simclock.Time
	ids []dataset.SampleID
}

func newLoader(backend *storage.Backend, pkgBytes int, repackPerSample simclock.Time, rng *rand.Rand) *loader {
	return &loader{
		backend:         backend,
		spec:            backend.Spec(),
		pkgBytes:        pkgBytes,
		repackPerSample: repackPerSample,
		rng:             rng,
		missedSet:       make(map[dataset.SampleID]struct{}),
	}
}

// newLoaderWithMode builds a loader with an explicit packaging strategy.
func newLoaderWithMode(backend *storage.Backend, pkgBytes int, repackPerSample simclock.Time, mode PackagingMode, rng *rand.Rand) *loader {
	ld := newLoader(backend, pkgBytes, repackPerSample, rng)
	ld.mode = mode
	return ld
}

// recordMiss queues an L-sample that missed for priority re-packing.
func (ld *loader) recordMiss(id dataset.SampleID) {
	if _, dup := ld.missedSet[id]; dup {
		return
	}
	ld.missedSet[id] = struct{}{}
	ld.missedQ = append(ld.missedQ, id)
}

// composePackage assembles the next package according to the packaging
// mode. It returns the *useful* sample IDs (the ones worth inserting into
// the L-cache) and the byte volume the read will transfer — under static
// packaging the transfer includes unusable chunk members, which is exactly
// the read amplification dynamic packaging exists to avoid.
func (ld *loader) composePackage(hl *sampling.HList, h *hcache, l *lcache) ([]dataset.SampleID, int) {
	if ld.mode == PackagingStatic {
		return ld.composeStatic(hl, h, l)
	}
	return ld.composeDynamic(hl, h, l)
}

// composeStatic loads the fixed pre-packed chunk holding the oldest missed
// L-sample (or the next chunk in sequence when no misses are queued).
func (ld *loader) composeStatic(hl *sampling.HList, h *hcache, l *lcache) ([]dataset.SampleID, int) {
	chunkSamples := ld.pkgBytes / ld.spec.MeanSampleBytes
	if chunkSamples < 1 {
		chunkSamples = 1
	}
	chunks := (ld.spec.NumSamples + chunkSamples - 1) / chunkSamples
	chunk := -1
	for len(ld.missedQ) > 0 {
		id := ld.missedQ[0]
		ld.missedQ = ld.missedQ[1:]
		delete(ld.missedSet, id)
		if l.contains(id) || h.contains(id) || hl.Contains(id) {
			continue
		}
		chunk = int(id) / chunkSamples
		break
	}
	if chunk < 0 {
		chunk = ld.cursor % chunks
		ld.cursor++
	}
	first := chunk * chunkSamples
	last := first + chunkSamples
	if last > ld.spec.NumSamples {
		last = ld.spec.NumSamples
	}
	var useful []dataset.SampleID
	total := 0
	for i := first; i < last; i++ {
		id := dataset.SampleID(i)
		size := ld.spec.SampleBytes(id)
		total += size // the whole chunk crosses the wire
		if hl.Contains(id) || h.contains(id) || l.contains(id) {
			ld.wastedBytes += int64(size)
			continue
		}
		useful = append(useful, id)
	}
	return useful, total
}

// composeDynamic assembles up to pkgBytes of L-samples: recorded misses
// first, then random L-samples, skipping anything already in either cache
// region. An empty result means there is nothing useful to load right now.
func (ld *loader) composeDynamic(hl *sampling.HList, h *hcache, l *lcache) ([]dataset.SampleID, int) {
	var ids []dataset.SampleID
	chosen := make(map[dataset.SampleID]struct{}, ld.pkgBytes/ld.spec.MeanSampleBytes+1)
	total := 0
	add := func(id dataset.SampleID) bool {
		chosen[id] = struct{}{}
		size := ld.spec.SampleBytes(id)
		if total+size > ld.pkgBytes && len(ids) > 0 {
			return false
		}
		ids = append(ids, id)
		total += size
		return total < ld.pkgBytes
	}

	// 1) Re-pack recorded misses (skip any that got cached meanwhile or
	// were promoted to H-samples).
	for len(ld.missedQ) > 0 && total < ld.pkgBytes {
		id := ld.missedQ[0]
		ld.missedQ = ld.missedQ[1:]
		delete(ld.missedSet, id)
		if l.contains(id) || h.contains(id) || hl.Contains(id) {
			continue
		}
		if !add(id) {
			break
		}
	}

	// 2) Fill with random L-samples. Bounded rejection sampling: with a
	// 20% cache the expected number of tries per accepted sample is small;
	// the bound keeps pathological configurations (everything cached) from
	// spinning.
	n := ld.spec.NumSamples
	tries := 0
	maxTries := 20 * (ld.pkgBytes/ld.spec.MeanSampleBytes + 1)
	for total < ld.pkgBytes && tries < maxTries {
		tries++
		id := dataset.SampleID(ld.rng.Intn(n))
		if _, dup := chosen[id]; dup {
			continue
		}
		if hl.Contains(id) || l.contains(id) || h.contains(id) {
			continue
		}
		if !add(id) {
			break
		}
	}
	return ids, total
}

// pump issues package reads until the loading thread's timeline catches up
// with now or there is no point loading more. hasRoom gates issuing: the
// L-cache must be able to absorb a package without evicting unused
// (still-valuable) residents.
func (ld *loader) pump(now simclock.Time, hl *sampling.HList, h *hcache, l *lcache) {
	for ld.nextFree <= now {
		if l.capBytes-l.unusedBytes() < int64(ld.pkgBytes) {
			// Absorbing a package now would destroy unused (still
			// valuable) residents; wait for consumption to make room.
			ld.gated = true
			return
		}
		ids, total := ld.composePackage(hl, h, l)
		if len(ids) == 0 && ld.mode != PackagingStatic {
			ld.gated = true
			return
		}
		start := ld.nextFree
		if ld.gated {
			// The thread was blocked and only unblocked by events at the
			// current instant; it cannot retroactively have been loading.
			start = now
			ld.gated = false
		}
		end := ld.backend.ReadPackage(start, total)
		if len(ids) > 0 {
			ld.pending = append(ld.pending, packageArrival{at: end, ids: ids})
		}
		ld.packages++
		ld.samples += int64(len(ids))
		if ld.mode == PackagingStatic {
			// Pre-packed chunks need no repack pass; the read itself is the
			// whole cost (including its wasted bytes).
			ld.nextFree = end
		} else {
			ld.nextFree = end + time.Duration(len(ids))*ld.repackPerSample
		}
	}
}

// reset discards all in-flight state (crash semantics): pending package
// arrivals are lost with the node's memory, and the miss queue is cleared
// because the misses it recorded were for a cache that no longer exists.
// Cumulative counters (packages, samples, byte totals) survive.
func (ld *loader) reset(now simclock.Time) {
	ld.pending = nil
	ld.missedQ = nil
	ld.missedSet = make(map[dataset.SampleID]struct{})
	ld.gated = false
	if ld.nextFree < now {
		ld.nextFree = now
	}
}

// deliver applies every package whose read completed at or before now.
func (ld *loader) deliver(now simclock.Time, l *lcache) {
	kept := ld.pending[:0]
	for _, p := range ld.pending {
		if p.at <= now {
			for _, id := range p.ids {
				size := ld.spec.SampleBytes(id)
				if l.insert(id, size) {
					ld.usefulBytes += int64(size)
					if ld.onDeliver != nil {
						ld.onDeliver(id)
					}
				}
			}
		} else {
			kept = append(kept, p)
		}
	}
	ld.pending = kept
}

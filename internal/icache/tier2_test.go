package icache

import (
	"math/rand"
	"testing"
	"time"

	"icache/internal/dataset"
	"icache/internal/sampling"
	"icache/internal/simclock"
)

func TestTier2SpillAndRead(t *testing.T) {
	t2 := newTier2(3000, 80*time.Microsecond, 2e9)
	t2.spill(1, 1000)
	t2.spill(2, 1000)
	if !t2.contains(1) || !t2.contains(2) {
		t.Fatal("spills lost")
	}
	end, ok := t2.read(0, 1)
	if !ok {
		t.Fatal("read of spilled sample failed")
	}
	if end < 80*time.Microsecond {
		t.Fatalf("read cost %v below device latency", end)
	}
	if t2.contains(1) {
		t.Fatal("read did not consume (promote) the sample")
	}
	if _, ok := t2.read(0, 1); ok {
		t.Fatal("double read succeeded")
	}
}

func TestTier2FIFOEviction(t *testing.T) {
	t2 := newTier2(2000, time.Microsecond, 2e9)
	t2.spill(1, 1000)
	t2.spill(2, 1000)
	t2.spill(3, 1000) // evicts 1 (oldest spill)
	if t2.contains(1) {
		t.Fatal("oldest spill survived")
	}
	if !t2.contains(2) || !t2.contains(3) {
		t.Fatal("newer spills lost")
	}
	if t2.used > t2.capBytes {
		t.Fatalf("over budget: %d > %d", t2.used, t2.capBytes)
	}
}

func TestTier2OversizedIgnored(t *testing.T) {
	t2 := newTier2(500, time.Microsecond, 2e9)
	t2.spill(1, 1000)
	if t2.contains(1) || t2.used != 0 {
		t.Fatal("oversized spill accepted")
	}
}

func TestServerTier2ReducesBackendReads(t *testing.T) {
	run := func(tierBytes int64) (int64, int64) {
		back := testBackend(t)
		cfg := DefaultConfig(back.Spec().TotalBytes() / 5)
		cfg.Tier2Bytes = tierBytes
		srv, err := NewServer(back, cfg, sampling.DefaultIIS(), 42)
		if err != nil {
			t.Fatal(err)
		}
		tr := trainedTracker(t, back.Spec().NumSamples, 3)
		rng := rand.New(rand.NewSource(4))
		var at simclock.Time
		for e := 0; e < 5; e++ {
			sched := srv.BeginEpoch(at, e, tr, rng)
			for _, batch := range sched.Batches(256) {
				at, _ = srv.FetchBatch(at, batch)
			}
		}
		return back.Stats().SampleReads, srv.Tier2Hits()
	}
	noTier, hits0 := run(0)
	withTier, hits1 := run(testSpec().TotalBytes() / 3)
	if hits0 != 0 {
		t.Fatalf("disabled tier reported %d hits", hits0)
	}
	if hits1 == 0 {
		t.Fatal("enabled tier never hit")
	}
	if withTier >= noTier {
		t.Fatalf("tier did not reduce backend reads: %d vs %d", withTier, noTier)
	}
}

func TestServerTier2ComposesWithEvictObserver(t *testing.T) {
	back := testBackend(t)
	cfg := DefaultConfig(20 * 1000) // tiny: forces churn
	cfg.EnableLCache = false
	cfg.Tier2Bytes = 100 * 1000
	srv, err := NewServer(back, cfg, sampling.DefaultIIS(), 42)
	if err != nil {
		t.Fatal(err)
	}
	observed := 0
	srv.SetEvictObserver(func(dataset.SampleID) { observed++ })

	var items []sampling.Item
	var ids []dataset.SampleID
	for id := dataset.SampleID(0); id < 200; id++ {
		items = append(items, sampling.Item{ID: id, IV: float64(id)})
		ids = append(ids, id)
	}
	srv.InstallHList(sampling.NewHList(items))
	srv.FetchBatch(0, ids)
	if observed == 0 {
		t.Fatal("user evict observer not called alongside tier spill")
	}
	if srv.Tier2Len() == 0 {
		t.Fatal("nothing spilled despite churn")
	}
}

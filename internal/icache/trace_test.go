package icache

import (
	"math/rand"
	"strings"
	"testing"

	"icache/internal/simclock"
	"icache/internal/trace"
)

func TestServerTracing(t *testing.T) {
	back := testBackend(t)
	srv := testServer(t, back)
	rec := trace.NewRecorder(1 << 16)
	srv.SetTracer(rec)
	if srv.Tracer() != rec {
		t.Fatal("tracer not attached")
	}

	tr := trainedTracker(t, back.Spec().NumSamples, 3)
	rng := rand.New(rand.NewSource(4))
	var at simclock.Time
	for e := 0; e < 3; e++ {
		sched := srv.BeginEpoch(at, e, tr, rng)
		for _, batch := range sched.Batches(256) {
			at, _ = srv.FetchBatch(at, batch)
		}
	}

	counts := rec.Counts()
	st := srv.Stats()
	if int64(counts[trace.KindEpoch]) != 3 {
		t.Fatalf("epoch events = %d, want 3", counts[trace.KindEpoch])
	}
	if counts[trace.KindRefresh] != 3 {
		t.Fatalf("refresh events = %d, want 3", counts[trace.KindRefresh])
	}
	// The ring is large enough to retain everything, so event counts must
	// equal the server's own counters.
	if int64(counts[trace.KindHit]) != st.Hits {
		t.Fatalf("hit events %d != stats %d", counts[trace.KindHit], st.Hits)
	}
	if int64(counts[trace.KindMiss]) != st.Misses {
		t.Fatalf("miss events %d != stats %d", counts[trace.KindMiss], st.Misses)
	}
	if int64(counts[trace.KindSubstitute]) != st.Substitutions {
		t.Fatalf("substitute events %d != stats %d", counts[trace.KindSubstitute], st.Substitutions)
	}
	if counts[trace.KindAdmit] == 0 {
		t.Fatal("no admit events")
	}

	var sb strings.Builder
	if err := rec.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "miss") {
		t.Fatal("CSV dump missing events")
	}
}

func TestServerTracingOffByDefault(t *testing.T) {
	back := testBackend(t)
	srv := testServer(t, back)
	tr := trainedTracker(t, back.Spec().NumSamples, 3)
	rng := rand.New(rand.NewSource(4))
	sched := srv.BeginEpoch(0, 0, tr, rng)
	// Must simply not panic with a nil tracer.
	srv.FetchBatch(0, sched.Fetch[:64])
	if srv.Tracer() != nil {
		t.Fatal("tracer attached by default")
	}
}

package icache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"icache/internal/dataset"
)

// TestHCacheAdmissionProperty checks Algorithm 1's admission rule under
// random traffic: whenever an offer is rejected by a full cache, the
// incoming importance must not exceed the minimum resident importance; and
// whenever eviction happens, only lower-importance residents are displaced.
func TestHCacheAdmissionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const capBytes = 10 * 1000
		h := newHCache(capBytes)
		values := map[dataset.SampleID]float64{}
		for op := 0; op < 1500; op++ {
			id := dataset.SampleID(rng.Intn(200))
			iv := rng.Float64()
			if h.contains(id) {
				// Re-offer of a resident is a no-op admit.
				if !h.offer(id, 1000, iv) {
					return false
				}
				continue
			}
			full := h.used+1000 > capBytes
			var minIV float64
			if full {
				min, ok := h.heap.Min()
				if !ok {
					return false
				}
				minIV = min.IV
			}
			admitted := h.offer(id, 1000, iv)
			switch {
			case !full:
				if !admitted {
					return false // room existed
				}
				values[id] = iv
			case admitted:
				// Must have displaced strictly less important residents.
				if iv <= minIV {
					return false
				}
				values[id] = iv
			default:
				// Rejected: incoming must not beat the eviction candidate.
				if iv > minIV {
					return false
				}
			}
			// Mirror evictions.
			for vid := range values {
				if !h.contains(vid) {
					delete(values, vid)
				}
			}
			// Structural invariants.
			if h.used > capBytes || h.len() != h.heap.Len() || h.len() != len(values) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

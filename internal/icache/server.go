package icache

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"icache/internal/dataset"
	"icache/internal/metrics"
	"icache/internal/obs"
	"icache/internal/sampling"
	"icache/internal/simclock"
	"icache/internal/storage"
	"icache/internal/trace"
)

// Server is a single-node iCache instance: the cache manager plus the
// H-cache and L-cache regions. It implements the data-service contract the
// training pipeline consumes (BeginEpoch / FetchBatch / Stats / Name).
//
// A Server used by a single job manages its H-list directly from that job's
// importance tracker. Multi-job sharing goes through a Coordinator, which
// feeds the server an aggregated H-list instead (see multijob.go).
type Server struct {
	cfg     Config
	backend *storage.Backend
	spec    dataset.Spec
	iis     sampling.IISConfig
	rng     *rand.Rand

	h  *hcache
	l  *lcache
	ld *loader
	// t2 is the optional local-storage spill tier (nil when disabled).
	t2 *tier2
	// userEvict is the externally registered eviction observer; the server
	// chains it after its own spill hook.
	userEvict func(dataset.SampleID)
	// loadObs observes L-cache inserts made by the loading path (see
	// SetLoadObserver).
	loadObs func(dataset.SampleID)

	// hlist is the active H-list: the job's own in single-job mode, or the
	// AIV-combined list installed by a Coordinator. hlistIV indexes its
	// importance values by sample ID.
	hlist   *sampling.HList
	hlistIV map[dataset.SampleID]float64
	// managed reports whether a Coordinator owns H-list installation;
	// BeginEpoch then leaves the active list alone.
	managed bool

	stats metrics.CacheStats
	// dec holds the decision-level introspection counters (see decision.go).
	dec decisionState

	// Per-sample access frequency EMAs for PartitionByFrequency.
	freqH, freqL         float64
	epochHReq, epochLReq int64

	// tracer records request-level events when set (nil = off).
	tracer *trace.Recorder
	// subScanHist, when set, times each substitute-selection scan (the
	// policy's hunt for a served-already resident to swap in for a missed
	// L-sample). nil = off; see SetSubstitutionScanHist.
	subScanHist *obs.Histogram
	epoch       int64

	// subsOff (atomic 0/1) is the brownout switch: while set, the serving
	// path skips substitute-selection scans entirely (misses go straight to
	// the backend). Flipped from the admission gate's state-change hook,
	// which runs concurrently with FetchBatch — hence atomic, not cfg.
	subsOff int32
}

// NewServer builds an iCache server over the given backend.
func NewServer(backend *storage.Backend, cfg Config, iis sampling.IISConfig, seed int64) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := iis.Validate(); err != nil {
		return nil, err
	}
	hBytes := int64(float64(cfg.CapacityBytes) * cfg.HShare)
	lBytes := cfg.CapacityBytes - hBytes
	if !cfg.EnableLCache {
		hBytes, lBytes = cfg.CapacityBytes, 0
	}
	// The loading unit can never exceed what the L-cache can absorb without
	// destroying unused residents; half the region keeps loading smooth.
	// (The paper instead floors the L-cache at one package; clamping the
	// package handles tiny caches in the same spirit.)
	pkg := cfg.PackageBytes
	if cfg.EnableLCache && int64(pkg) > lBytes/2 {
		pkg = int(lBytes / 2)
		if pkg < backend.Spec().MeanSampleBytes {
			pkg = backend.Spec().MeanSampleBytes
		}
	}
	rng := rand.New(rand.NewSource(seed))
	s := &Server{
		cfg:     cfg,
		backend: backend,
		spec:    backend.Spec(),
		iis:     iis,
		rng:     rng,
		h:       newHCache(hBytes),
		l:       newLCache(lBytes),
		ld:      newLoaderWithMode(backend, pkg, cfg.RepackPerSample, cfg.Packaging, rand.New(rand.NewSource(seed+1))),
		hlist:   sampling.NewHList(nil),
	}
	if cfg.Tier2Bytes > 0 {
		s.t2 = newTier2(cfg.Tier2Bytes, cfg.Tier2ReadLatency, cfg.Tier2Bandwidth)
		s.h.onEvict = func(id dataset.SampleID) {
			s.t2.spill(id, s.spec.SampleBytes(id))
			if s.userEvict != nil {
				s.userEvict(id)
			}
		}
	}
	return s, nil
}

// Name implements the data-service contract.
func (s *Server) Name() string {
	if !s.cfg.EnableLCache {
		return "icache-hc" // the +HC ablation rung
	}
	return "icache"
}

// Stats implements the data-service contract.
func (s *Server) Stats() metrics.CacheStats {
	st := s.stats
	st.Inserts = s.h.inserts + s.l.inserts
	st.Evictions = s.h.evictions + s.l.evictions
	return st
}

// SubstitutionSource declares the substitution severity class for the
// accuracy model ("lcache", "hcache", or "none").
func (s *Server) SubstitutionSource() string {
	switch s.cfg.Substitute {
	case SubstituteLCache:
		return "lcache"
	case SubstituteHCache:
		return "hcache"
	default:
		return "none"
	}
}

// HCacheLen and LCacheLen expose occupancy for tests and experiment output.
func (s *Server) HCacheLen() int { return s.h.len() }
func (s *Server) LCacheLen() int { return s.l.len() }

// PackagesLoaded reports how many dynamic packages the loading thread has
// fetched.
func (s *Server) PackagesLoaded() int64 { return s.ld.packages }

// LoaderWastedBytes reports bytes the loading thread transferred that could
// not be cached (static packaging's read amplification; zero under dynamic
// packaging).
func (s *Server) LoaderWastedBytes() int64 { return s.ld.wastedBytes }

// LoaderUsefulBytes reports bytes the loading path delivered into the
// L-cache.
func (s *Server) LoaderUsefulBytes() int64 { return s.ld.usefulBytes }

// HShare reports the current fraction of capacity assigned to the H-cache.
func (s *Server) HShare() float64 {
	return float64(s.h.capBytes) / float64(s.cfg.CapacityBytes)
}

// BeginEpoch implements the data-service contract: it draws the epoch's IIS
// schedule from the job's tracker, pushes the fresh H-list into the cache
// manager (unless a Coordinator manages the list), repartitions, and resets
// per-epoch L-cache state.
func (s *Server) BeginEpoch(at simclock.Time, epoch int, tr *sampling.Tracker, rng *rand.Rand) sampling.Schedule {
	sched, hl := sampling.IISSchedule(tr, s.iis, rng)
	if !s.managed {
		s.InstallHList(hl)
	}
	s.startEpoch(at)
	if s.cfg.Clairvoyant {
		// The schedule is known before the epoch runs (the clairvoyance
		// premise): seed the loader with exactly the L-samples the epoch
		// will consume, in first-access order. The returned H-side plan is
		// ignored here — only the byte-serving layer can pre-place H bytes
		// without falsifying the foreground's virtual-time accounting.
		s.PlanSchedule(sched.Fetch)
	}
	return sched
}

// startEpoch performs the per-epoch manager duties shared by single-job and
// coordinated modes.
func (s *Server) startEpoch(at simclock.Time) {
	s.snapshotEpochResidency()
	s.tracer.Record(at, trace.KindEpoch, 0, s.epoch)
	s.epoch++
	s.repartition()
	s.l.beginEpoch()
	if s.cfg.EnableLCache && s.cfg.Packaging != PackagingStatic {
		// Static chunks are read in the foreground on demand; only dynamic
		// packaging has a background loading thread to roll forward.
		s.ld.pump(at, s.hlist, s.h, s.l)
		s.ld.deliver(at, s.l)
	}
	s.epochHReq, s.epochLReq = 0, 0
}

// Epoch reports how many epoch boundaries the server has crossed.
func (s *Server) Epoch() int64 { return s.epoch }

// InstallHList makes hl the active H-list and refreshes the H-heap's
// importance values under the shadow-heap protocol.
func (s *Server) InstallHList(hl *sampling.HList) {
	s.hlistIV = make(map[dataset.SampleID]float64, hl.Len())
	for _, it := range hl.Items {
		s.hlistIV[it.ID] = it.IV
	}
	s.hlist = hl
	s.h.refreshImportance(func(id dataset.SampleID) (float64, bool) {
		iv, ok := s.hlistIV[id]
		return iv, ok
	})
	s.tracer.Record(0, trace.KindRefresh, 0, int64(hl.Len()))
}

// SetManaged hands H-list installation over to a Coordinator.
func (s *Server) SetManaged(managed bool) { s.managed = managed }

// SetTracer attaches an event recorder (nil detaches). Tracing is off by
// default and costs nothing when detached.
func (s *Server) SetTracer(r *trace.Recorder) { s.tracer = r }

// SetSubstitutionScanHist attaches a latency histogram to the
// substitute-selection scan (nil detaches — recording into a nil histogram
// is a no-op, so the disabled path costs one nil check).
func (s *Server) SetSubstitutionScanHist(h *obs.Histogram) { s.subScanHist = h }

// SetSubstitutionsDisabled flips the brownout switch: while disabled, the
// serving path skips the substitute-selection scan (the costliest
// discretionary work on the miss path) and misses read the backend
// directly. Safe to call concurrently with FetchBatch.
func (s *Server) SetSubstitutionsDisabled(off bool) {
	var v int32
	if off {
		v = 1
	}
	atomic.StoreInt32(&s.subsOff, v)
}

// substitutionsDisabled reports the brownout switch state.
func (s *Server) substitutionsDisabled() bool { return atomic.LoadInt32(&s.subsOff) == 1 }

// Tracer returns the attached recorder, if any.
func (s *Server) Tracer() *trace.Recorder { return s.tracer }

// StartEpoch performs the per-epoch manager duties (repartition, L-cache
// reset, loader catch-up) without drawing a schedule. The RPC server uses
// it: over the wire the client owns the sampler, so the server only manages
// cache state at epoch boundaries.
func (s *Server) StartEpoch(at simclock.Time) { s.startEpoch(at) }

// Drop removes a sample from whichever cache region holds it, reporting
// whether it was resident. The distributed byte-serving layer uses it when
// a directory claim is lost: the node must not keep a duplicate copy.
// Equivalent to DropFor with the dead-owner reason; callers with a more
// specific reason (scrub repair, denied checkpoint replay) use DropFor.
func (s *Server) Drop(id dataset.SampleID) bool {
	return s.DropFor(id, DropDeadOwner)
}

// Resident reports whether a sample currently lives in either cache region.
// The byte-serving RPC layer uses it to keep its payload store aligned with
// the cache's admission decisions.
func (s *Server) Resident(id dataset.SampleID) bool {
	return s.h.contains(id) || s.l.contains(id)
}

// SetLoadObserver registers fn to be called with every L-sample the
// loading path inserts into the L-cache (package deliveries under dynamic
// packaging, chunk-member inserts under static packaging). The RPC server
// registers its prefetch pool here so freshly loaded samples get real
// bytes pulled asynchronously. fn is invoked synchronously from inside the
// cache's mutation path — it runs under whatever lock the caller holds
// (the RPC server's policy lock) and must not block or call back into the
// cache. Nil detaches.
func (s *Server) SetLoadObserver(fn func(dataset.SampleID)) {
	s.loadObs = fn
	s.ld.onDeliver = fn
}

// PrefetchWorkers reports the configured prefetch pool size (the Fig. 15
// knob); the byte-serving layer sizes its worker pool from this.
func (s *Server) PrefetchWorkers() int { return s.cfg.PrefetchWorkers }

// SetEvictObserver registers fn to be called with every sample evicted from
// either cache region (payload-store invalidation on the RPC path). It
// composes with the internal tier-2 spill hook when that is enabled.
func (s *Server) SetEvictObserver(fn func(dataset.SampleID)) {
	s.userEvict = fn
	if s.t2 == nil {
		s.h.onEvict = fn
	}
	s.l.onEvict = fn
}

// Tier2Hits and Tier2Len report local spill-tier activity (0 when the tier
// is disabled).
func (s *Server) Tier2Hits() int64 {
	if s.t2 == nil {
		return 0
	}
	return s.t2.hits
}

// Tier2Len reports the number of samples currently spilled.
func (s *Server) Tier2Len() int {
	if s.t2 == nil {
		return 0
	}
	return len(s.t2.items)
}

// ActiveHList returns the H-list the cache currently manages by.
func (s *Server) ActiveHList() *sampling.HList { return s.hlist }

// repartition applies the configured partition policy.
func (s *Server) repartition() {
	if !s.cfg.EnableLCache || s.cfg.Partition != PartitionByFrequency {
		return
	}
	nH := s.hlist.Len()
	nL := s.spec.NumSamples - nH
	if nH == 0 || nL <= 0 || s.epochHReq+s.epochLReq == 0 {
		return
	}
	fH := float64(s.epochHReq) / float64(nH)
	fL := float64(s.epochLReq) / float64(nL)
	s.freqH = s.cfg.FreqDecay*s.freqH + (1-s.cfg.FreqDecay)*fH
	s.freqL = s.cfg.FreqDecay*s.freqL + (1-s.cfg.FreqDecay)*fL
	if s.freqH+s.freqL == 0 {
		return
	}
	share := s.freqH / (s.freqH + s.freqL)
	// Floors: the L-cache never shrinks below one package (§III-A), and the
	// H-cache keeps a useful minimum.
	hBytes := int64(share * float64(s.cfg.CapacityBytes))
	if min := int64(s.ld.pkgBytes); s.cfg.CapacityBytes-hBytes < min {
		hBytes = s.cfg.CapacityBytes - min
	}
	if hBytes < int64(s.ld.pkgBytes) {
		hBytes = int64(s.ld.pkgBytes)
	}
	s.h.resize(hBytes)
	s.l.resize(s.cfg.CapacityBytes - hBytes)
}

// FetchBatch implements Algorithm 1 for one worker fetching a mini-batch
// sequentially from virtual time at. It returns the completion time and the
// sample IDs actually served (substitution may swap L-samples).
func (s *Server) FetchBatch(at simclock.Time, ids []dataset.SampleID) (simclock.Time, []dataset.SampleID) {
	return s.FetchBatchRouted(at, ids, s.hlist)
}

// FetchBatchInto is FetchBatch appending the served IDs into *dst, reusing
// its capacity — the RPC serving hot path calls this once per request with
// a pooled scratch slice, so the policy verdict allocates nothing.
func (s *Server) FetchBatchInto(at simclock.Time, ids []dataset.SampleID, dst *[]dataset.SampleID) simclock.Time {
	for _, id := range ids {
		at = s.fetchOne(at, id, s.hlist, dst)
	}
	return at
}

// FetchBatchRouted is FetchBatch with an explicit routing H-list: requests
// branch H vs L according to routing (the requesting job's own importance
// view — H-samples are never substituted, Algorithm 1), while admission and
// eviction keep using the manager's installed H-list (the AIV-combined one
// under multi-job coordination, §III-D). For a single job the two lists
// coincide and this is exactly FetchBatch.
func (s *Server) FetchBatchRouted(at simclock.Time, ids []dataset.SampleID, routing *sampling.HList) (simclock.Time, []dataset.SampleID) {
	served := make([]dataset.SampleID, 0, len(ids))
	for _, id := range ids {
		at = s.fetchOne(at, id, routing, &served)
	}
	return at, served
}

// fetchOne serves a single sample request, returning the new virtual time.
func (s *Server) fetchOne(at simclock.Time, id dataset.SampleID, routing *sampling.HList, served *[]dataset.SampleID) simclock.Time {
	if routing.Contains(id) {
		s.epochHReq++
		if s.h.contains(id) {
			s.stats.Hits++
			s.tracer.Record(at, trace.KindHit, id, 0)
			*served = append(*served, id)
			return at + s.cfg.HitLatency
		}
		iv, _ := s.hlistValue(id)
		if s.t2 != nil {
			if end, ok := s.t2.read(at, id); ok {
				// Promote the spilled sample back into DRAM; its own spill
				// hook recycles whatever this displaces.
				s.stats.Hits++
				s.h.offer(id, s.spec.SampleBytes(id), iv)
				*served = append(*served, id)
				return end
			}
		}
		s.stats.Misses++
		s.tracer.Record(at, trace.KindMiss, id, 0)
		at = s.backend.ReadSample(at, id)
		if s.h.offer(id, s.spec.SampleBytes(id), iv) {
			s.tracer.Record(at, trace.KindAdmit, id, 0)
		}
		*served = append(*served, id)
		return at
	}

	s.epochLReq++
	if !s.cfg.EnableLCache {
		s.stats.Misses++
		s.tracer.Record(at, trace.KindMiss, id, 0)
		at = s.backend.ReadSample(at, id)
		*served = append(*served, id)
		return at
	}
	if s.cfg.Packaging == PackagingStatic {
		return s.fetchStaticChunk(at, id, served)
	}

	// Bring the background loader up to the current instant first.
	s.ld.pump(at, s.hlist, s.h, s.l)
	s.ld.deliver(at, s.l)

	if s.l.takeExact(id) {
		s.stats.Hits++
		s.tracer.Record(at, trace.KindHit, id, 0)
		*served = append(*served, id)
		return at + s.cfg.HitLatency
	}
	s.ld.recordMiss(id)

	if s.cfg.Substitute != SubstituteNone && !s.substitutionsDisabled() {
		if sub, ok := s.pickSubstitute(); ok {
			s.stats.Substitutions++
			s.tracer.Record(at, trace.KindSubstitute, id, int64(sub))
			*served = append(*served, sub)
			return at + s.cfg.HitLatency
		}
		// No substitute available: fall through to storage.
	}

	s.stats.Misses++
	s.tracer.Record(at, trace.KindMiss, id, 0)
	at = s.backend.ReadSample(at, id)
	*served = append(*served, id)
	return at
}

// fetchStaticChunk serves an L-request under static (TFRecord-style)
// pre-packed chunks: exact serving, no substitution, no background loader.
// A miss reads the *entire* fixed chunk holding the sample in the
// foreground — the read amplification §II-C ascribes to static packaging
// under importance sampling — and caches the chunk members for whatever
// reuse survives eviction.
func (s *Server) fetchStaticChunk(at simclock.Time, id dataset.SampleID, served *[]dataset.SampleID) simclock.Time {
	if s.l.contains(id) {
		s.l.takeExact(id) // best effort: mark used if still unused
		s.stats.Hits++
		*served = append(*served, id)
		return at + s.cfg.HitLatency
	}
	chunkSamples := s.ld.pkgBytes / s.spec.MeanSampleBytes
	if chunkSamples < 1 {
		chunkSamples = 1
	}
	first := (int(id) / chunkSamples) * chunkSamples
	last := first + chunkSamples
	if last > s.spec.NumSamples {
		last = s.spec.NumSamples
	}
	total := 0
	for i := first; i < last; i++ {
		total += s.spec.SampleBytes(dataset.SampleID(i))
	}
	s.stats.Misses++
	s.tracer.Record(at, trace.KindMiss, id, 0)
	at = s.backend.ReadPackage(at, total)
	for i := first; i < last; i++ {
		cid := dataset.SampleID(i)
		size := s.spec.SampleBytes(cid)
		if cid == id {
			continue // the requested sample is consumed, not cached
		}
		if s.hlist.Contains(cid) || s.h.contains(cid) || s.l.contains(cid) {
			s.ld.wastedBytes += int64(size)
			continue
		}
		if s.l.insert(cid, size) {
			s.ld.usefulBytes += int64(size)
			if s.loadObs != nil {
				s.loadObs(cid)
			}
		}
	}
	*served = append(*served, id)
	return at
}

// hlistValue looks up id's importance value in the active H-list.
func (s *Server) hlistValue(id dataset.SampleID) (float64, bool) {
	iv, ok := s.hlistIV[id]
	return iv, ok
}

// pickSubstitute runs the configured substitute-selection scan and times
// it into subScanHist when attached. Callers check Substitute !=
// SubstituteNone first, so every call performs a real scan and the
// histogram never counts no-op invocations.
func (s *Server) pickSubstitute() (dataset.SampleID, bool) {
	var t0 time.Time
	if s.subScanHist != nil {
		t0 = time.Now()
	}
	var (
		sub dataset.SampleID
		ok  bool
	)
	switch s.cfg.Substitute {
	case SubstituteLCache:
		sub, ok = s.l.substitute(s.rng)
	case SubstituteHCache:
		sub, ok = s.randomHResident()
	}
	s.subScanHist.Since(t0)
	if ok {
		s.noteSubstitution(s.cfg.Substitute)
	}
	return sub, ok
}

// randomHResident picks a uniformly random H-cache resident (only used by
// the SubstituteHCache policy of Table III).
func (s *Server) randomHResident() (dataset.SampleID, bool) {
	return s.h.randomResident(s.rng)
}

// String describes the server configuration.
func (s *Server) String() string {
	return fmt.Sprintf("icache{cap=%dB hshare=%.2f lcache=%v sub=%v}",
		s.cfg.CapacityBytes, s.cfg.HShare, s.cfg.EnableLCache, s.cfg.Substitute)
}

package icache

import (
	"fmt"
	"math/rand"
	"time"

	"icache/internal/dataset"
	"icache/internal/dkv"
	"icache/internal/metrics"
	"icache/internal/sampling"
	"icache/internal/simclock"
	"icache/internal/storage"
)

// ClusterConfig parameterizes the distributed iCache of §III-E.
type ClusterConfig struct {
	// Nodes is the number of training/cache nodes.
	Nodes int
	// PerNodeCapacityBytes is each node's cache budget.
	PerNodeCapacityBytes int64
	// Cache configures each node's H-/L-cache behaviour (CapacityBytes is
	// overridden by PerNodeCapacityBytes).
	Cache Config
	// PeerLatency is the fixed cost of a remote-cache RPC between nodes.
	PeerLatency time.Duration
	// PeerBandwidth is inter-node bandwidth in bytes/sec.
	PeerBandwidth float64
}

// DefaultClusterConfig mirrors the paper's cloud setup: per-node cache of
// the given size, 10 Gb/s interconnect.
func DefaultClusterConfig(nodes int, perNode int64) ClusterConfig {
	return ClusterConfig{
		Nodes:                nodes,
		PerNodeCapacityBytes: perNode,
		Cache:                DefaultConfig(perNode),
		PeerLatency:          200 * time.Microsecond,
		PeerBandwidth:        1.25e9,
	}
}

// Validate reports whether the config is usable.
func (c ClusterConfig) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("icache: cluster Nodes=%d, want > 0", c.Nodes)
	case c.PerNodeCapacityBytes <= 0:
		return fmt.Errorf("icache: PerNodeCapacityBytes=%d, want > 0", c.PerNodeCapacityBytes)
	case c.PeerLatency < 0:
		return fmt.Errorf("icache: negative PeerLatency")
	case c.PeerBandwidth <= 0:
		return fmt.Errorf("icache: PeerBandwidth=%g, want > 0", c.PeerBandwidth)
	}
	return nil
}

// clusterNode is one node's cache state.
type clusterNode struct {
	h   *hcache
	l   *lcache
	ld  *loader
	nic simclock.Resource
	rng *rand.Rand
}

// Cluster is the distributed iCache: per-node cache servers sharing a
// key-value directory so no item is cached twice, over a shared backend
// (the paper's NFS server). The training side drives it node by node with
// FetchBatchOn; data-parallel jobs share one importance tracker, so the
// cluster manages a single H-list.
type Cluster struct {
	cfg     ClusterConfig
	backend *storage.Backend
	spec    dataset.Spec
	iis     sampling.IISConfig
	dir     *dkv.Directory
	nodes   []*clusterNode

	hlist   *sampling.HList
	hlistIV map[dataset.SampleID]float64

	stats      metrics.CacheStats
	remoteHits int64
}

// NewCluster builds a distributed iCache over a shared backend.
func NewCluster(backend *storage.Backend, cfg ClusterConfig, iis sampling.IISConfig, seed int64) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := iis.Validate(); err != nil {
		return nil, err
	}
	cache := cfg.Cache
	cache.CapacityBytes = cfg.PerNodeCapacityBytes
	if err := cache.Validate(); err != nil {
		return nil, err
	}
	cl := &Cluster{
		cfg:     cfg,
		backend: backend,
		spec:    backend.Spec(),
		iis:     iis,
		dir:     dkv.NewDirectory(),
		hlist:   sampling.NewHList(nil),
	}
	cl.cfg.Cache = cache
	for n := 0; n < cfg.Nodes; n++ {
		hBytes := int64(float64(cache.CapacityBytes) * cache.HShare)
		lBytes := cache.CapacityBytes - hBytes
		if !cache.EnableLCache {
			hBytes, lBytes = cache.CapacityBytes, 0
		}
		pkg := cache.PackageBytes
		if cache.EnableLCache && int64(pkg) > lBytes/2 {
			pkg = int(lBytes / 2)
			if pkg < backend.Spec().MeanSampleBytes {
				pkg = backend.Spec().MeanSampleBytes
			}
		}
		node := &clusterNode{
			h:   newHCache(hBytes),
			l:   newLCache(lBytes),
			ld:  newLoader(backend, pkg, cache.RepackPerSample, rand.New(rand.NewSource(seed+int64(n)*7+1))),
			rng: rand.New(rand.NewSource(seed + int64(n)*7)),
		}
		nodeID := dkv.NodeID(n)
		node.h.onEvict = func(id dataset.SampleID) { cl.dir.Release(id, nodeID) }
		node.l.onEvict = func(id dataset.SampleID) { cl.dir.Release(id, nodeID) }
		node.l.claim = func(id dataset.SampleID) bool { return cl.dir.Claim(id, nodeID) }
		cl.nodes = append(cl.nodes, node)
	}
	return cl, nil
}

// Name identifies the scheme in experiment output.
func (cl *Cluster) Name() string { return fmt.Sprintf("icache-%dnode", cl.cfg.Nodes) }

// Nodes reports the cluster size.
func (cl *Cluster) Nodes() int { return cl.cfg.Nodes }

// Stats reports cluster-wide cache counters.
func (cl *Cluster) Stats() metrics.CacheStats {
	st := cl.stats
	for _, n := range cl.nodes {
		st.Inserts += n.h.inserts + n.l.inserts
		st.Evictions += n.h.evictions + n.l.evictions
	}
	return st
}

// SubstitutionSource declares the substitution severity class for the
// accuracy model.
func (cl *Cluster) SubstitutionSource() string {
	switch cl.cfg.Cache.Substitute {
	case SubstituteLCache:
		return "lcache"
	case SubstituteHCache:
		return "hcache"
	default:
		return "none"
	}
}

// RemoteHits reports requests served from a peer node's cache.
func (cl *Cluster) RemoteHits() int64 { return cl.remoteHits }

// DirectoryLen reports how many samples are registered in the shared
// key-value directory.
func (cl *Cluster) DirectoryLen() int { return cl.dir.Len() }

// BeginEpoch draws the epoch schedule from the shared (data-parallel)
// tracker, installs the fresh H-list on every node, and resets per-epoch
// state. The caller splits the schedule's batches across nodes.
func (cl *Cluster) BeginEpoch(at simclock.Time, epoch int, tr *sampling.Tracker, rng *rand.Rand) sampling.Schedule {
	sched, hl := sampling.IISSchedule(tr, cl.iis, rng)
	cl.hlist = hl
	cl.hlistIV = make(map[dataset.SampleID]float64, hl.Len())
	for _, it := range hl.Items {
		cl.hlistIV[it.ID] = it.IV
	}
	for _, n := range cl.nodes {
		n.h.refreshImportance(func(id dataset.SampleID) (float64, bool) {
			iv, ok := cl.hlistIV[id]
			return iv, ok
		})
		n.l.beginEpoch()
	}
	return sched
}

// remoteRead charges the cost of pulling one sample from a peer's cache:
// the RPC latency plus the transfer over both NICs.
func (cl *Cluster) remoteRead(at simclock.Time, from, to int, size int) simclock.Time {
	transfer := time.Duration(float64(size) / cl.cfg.PeerBandwidth * float64(time.Second))
	_, end := cl.nodes[from].nic.Acquire(at+cl.cfg.PeerLatency, transfer)
	_, end = cl.nodes[to].nic.Acquire(end, transfer)
	return end
}

// FetchBatchOn simulates node's worker fetching a mini-batch starting at
// virtual time at, following §III-E's data flow: local cache, then the
// shared directory for a remote-cache hit, then the backend (claiming
// ownership of what it fetched).
func (cl *Cluster) FetchBatchOn(node int, at simclock.Time, ids []dataset.SampleID) (simclock.Time, []dataset.SampleID) {
	if node < 0 || node >= len(cl.nodes) {
		panic(fmt.Sprintf("icache: node %d out of range [0,%d)", node, len(cl.nodes)))
	}
	n := cl.nodes[node]
	served := make([]dataset.SampleID, 0, len(ids))
	for _, id := range ids {
		at = cl.fetchOne(n, node, at, id, &served)
	}
	return at, served
}

func (cl *Cluster) fetchOne(n *clusterNode, node int, at simclock.Time, id dataset.SampleID, served *[]dataset.SampleID) simclock.Time {
	size := cl.spec.SampleBytes(id)
	if cl.hlist.Contains(id) {
		if n.h.contains(id) {
			cl.stats.Hits++
			*served = append(*served, id)
			return at + cl.cfg.Cache.HitLatency
		}
		if owner, ok := cl.dir.Lookup(id); ok && int(owner) != node {
			if cl.nodes[owner].h.contains(id) || cl.nodes[owner].l.contains(id) {
				cl.stats.Hits++
				cl.remoteHits++
				*served = append(*served, id)
				return cl.remoteRead(at, int(owner), node, size)
			}
		}
		cl.stats.Misses++
		at = cl.backend.ReadSample(at, id)
		iv := cl.hlistIV[id]
		if cl.dir.Claim(id, dkv.NodeID(node)) {
			if !n.h.offer(id, size, iv) {
				cl.dir.Release(id, dkv.NodeID(node))
			}
		}
		*served = append(*served, id)
		return at
	}

	// L-sample path: local L-cache, remote exact hit, then substitution.
	if !cl.cfg.Cache.EnableLCache {
		cl.stats.Misses++
		at = cl.backend.ReadSample(at, id)
		*served = append(*served, id)
		return at
	}
	n.ld.pump(at, cl.hlist, n.h, n.l)
	n.ld.deliver(at, n.l)
	if n.l.takeExact(id) {
		cl.stats.Hits++
		*served = append(*served, id)
		return at + cl.cfg.Cache.HitLatency
	}
	if owner, ok := cl.dir.Lookup(id); ok && int(owner) != node {
		if cl.nodes[owner].l.takeExact(id) {
			cl.stats.Hits++
			cl.remoteHits++
			*served = append(*served, id)
			return cl.remoteRead(at, int(owner), node, size)
		}
	}
	n.ld.recordMiss(id)
	if cl.cfg.Cache.Substitute == SubstituteLCache {
		if sub, ok := n.l.substitute(n.rng); ok {
			cl.stats.Substitutions++
			*served = append(*served, sub)
			return at + cl.cfg.Cache.HitLatency
		}
	}
	cl.stats.Misses++
	at = cl.backend.ReadSample(at, id)
	*served = append(*served, id)
	return at
}

package icache

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"icache/internal/dataset"
	"icache/internal/dkv"
	"icache/internal/faults"
	"icache/internal/metrics"
	"icache/internal/sampling"
	"icache/internal/simclock"
	"icache/internal/storage"
)

// ClusterConfig parameterizes the distributed iCache of §III-E.
type ClusterConfig struct {
	// Nodes is the number of training/cache nodes.
	Nodes int
	// PerNodeCapacityBytes is each node's cache budget.
	PerNodeCapacityBytes int64
	// Cache configures each node's H-/L-cache behaviour (CapacityBytes is
	// overridden by PerNodeCapacityBytes).
	Cache Config
	// PeerLatency is the fixed cost of a remote-cache RPC between nodes.
	PeerLatency time.Duration
	// PeerBandwidth is inter-node bandwidth in bytes/sec.
	PeerBandwidth float64
	// DirReprobeInterval is how long (virtual time) a node stays in
	// local-only mode after a directory failure before re-probing. Zero
	// selects the default (250ms); it must not be negative.
	DirReprobeInterval time.Duration

	// LeaseTTL is each node's membership lease duration in the directory.
	// Zero selects dkv.DefaultLeaseTTL.
	LeaseTTL time.Duration
	// HeartbeatInterval is how often (virtual time) each node renews its
	// lease. Zero selects LeaseTTL/4, so a healthy node renews several
	// times per TTL.
	HeartbeatInterval time.Duration
	// SuspectWindow is how long past lease expiry a node stays routable
	// (Suspect) before it is declared Dead and its directory entries become
	// reclaimable. Zero selects LeaseTTL.
	SuspectWindow time.Duration
	// ScrubInterval is how often (virtual time) each node runs one bounded
	// anti-entropy sweep reconciling the directory against its cache
	// contents. Zero selects LeaseTTL/2.
	ScrubInterval time.Duration
	// ScrubBatch bounds the work of one scrub sweep (directory entries
	// examined per direction). Zero selects 256.
	ScrubBatch int
	// DeferredReleaseCap bounds the deferred-release queue (ownership
	// releases waiting for the directory to heal). At the cap further
	// releases are dropped and counted (ResilienceStats.DroppedReleases);
	// the scrubber repairs the resulting stale entries later. Zero selects
	// 4096.
	DeferredReleaseCap int
	// DisableMembership turns lease registration, heartbeats and scrubbing
	// off entirely (legacy static membership).
	DisableMembership bool

	// DirReplicas partitions the directory across this many simulated
	// replicas (sharded by sample ID via rendezvous hashing, fronted by a
	// dkv.ShardedDir — see dirshard.go). 0 or 1 keeps the legacy single
	// in-process directory.
	DirReplicas int
}

// DefaultClusterConfig mirrors the paper's cloud setup: per-node cache of
// the given size, 10 Gb/s interconnect.
func DefaultClusterConfig(nodes int, perNode int64) ClusterConfig {
	return ClusterConfig{
		Nodes:                nodes,
		PerNodeCapacityBytes: perNode,
		Cache:                DefaultConfig(perNode),
		PeerLatency:          200 * time.Microsecond,
		PeerBandwidth:        1.25e9,
		DirReprobeInterval:   250 * time.Millisecond,
	}
}

// Validate reports whether the config is usable.
func (c ClusterConfig) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("icache: cluster Nodes=%d, want > 0", c.Nodes)
	case c.PerNodeCapacityBytes <= 0:
		return fmt.Errorf("icache: PerNodeCapacityBytes=%d, want > 0", c.PerNodeCapacityBytes)
	case c.PeerLatency < 0:
		return fmt.Errorf("icache: negative PeerLatency")
	case c.PeerBandwidth <= 0:
		return fmt.Errorf("icache: PeerBandwidth=%g, want > 0", c.PeerBandwidth)
	case c.DirReprobeInterval < 0:
		return fmt.Errorf("icache: negative DirReprobeInterval")
	case c.LeaseTTL < 0:
		return fmt.Errorf("icache: negative LeaseTTL")
	case c.HeartbeatInterval < 0:
		return fmt.Errorf("icache: negative HeartbeatInterval")
	case c.SuspectWindow < 0:
		return fmt.Errorf("icache: negative SuspectWindow")
	case c.ScrubInterval < 0:
		return fmt.Errorf("icache: negative ScrubInterval")
	case c.ScrubBatch < 0:
		return fmt.Errorf("icache: negative ScrubBatch")
	case c.DeferredReleaseCap < 0:
		return fmt.Errorf("icache: negative DeferredReleaseCap")
	case c.DirReplicas < 0:
		return fmt.Errorf("icache: negative DirReplicas")
	}
	return nil
}

// clusterNode is one node's cache state.
type clusterNode struct {
	h   *hcache
	l   *lcache
	ld  *loader
	nic simclock.Resource
	rng *rand.Rand

	// lastAt is the virtual time of the fetch currently being served on
	// this node; eviction hooks (which receive no timestamp) read it.
	lastAt simclock.Time

	// Degraded-mode state: after a directory failure the node serves
	// local-only until dirDownUntil, then re-probes.
	dirDown      bool
	dirDownUntil simclock.Time

	// Lifecycle state: alive is false between KillNode and RestartNode;
	// nextHeartbeat/nextScrub schedule the node's background membership
	// work on the virtual clock; scrubMark is the anti-entropy watermark
	// into the node's sorted resident set, so bounded sweeps eventually
	// cover everything.
	alive         bool
	nextHeartbeat simclock.Time
	nextScrub     simclock.Time
	scrubMark     int
}

// Cluster is the distributed iCache: per-node cache servers sharing a
// key-value directory so no item is cached twice, over a shared backend
// (the paper's NFS server). The training side drives it node by node with
// FetchBatchOn; data-parallel jobs share one importance tracker, so the
// cluster manages a single H-list.
//
// The cluster treats its remote dependencies as unreliable (§V's implicit
// assumption made explicit): a failed remote-cache read falls through to a
// backend read, a failed directory operation flips the calling node into
// local-only mode with periodic re-probing, and ownership releases that
// could not reach the directory are replayed once it heals. Every such
// degradation is counted — requests served through a broken path land in
// CacheStats.Degraded, keeping the conservation invariant
// hits+misses+substitutions+degraded == requests exact under any fault
// schedule.
type Cluster struct {
	cfg     ClusterConfig
	backend *storage.Backend
	spec    dataset.Spec
	iis     sampling.IISConfig
	dir     dkv.Service
	rawDir  *dkv.Directory
	nodes   []*clusterNode

	// Partitioned-directory state (DirReplicas > 1; see dirshard.go):
	// rawDirs holds every replica's in-process Directory, holders their kill
	// switches, sharded the replica-aware client installed as cl.dir.
	rawDirs []*dkv.Directory
	holders []*replicaHolder
	sharded *dkv.ShardedDir

	// inj, when set, is consulted (virtual-time keyed) before directory
	// and peer operations; see SetFaultInjector.
	inj *faults.Injector

	hlist   *sampling.HList
	hlistIV map[dataset.SampleID]float64

	// deferred holds ownership releases that failed because the directory
	// was unreachable; they replay on the next successful directory op.
	deferred map[dataset.SampleID]dkv.NodeID

	stats      metrics.CacheStats
	res        metrics.ResilienceStats
	mem        metrics.MembershipStats
	remoteHits int64

	// vnow is the cluster's high-water virtual time; the directory's lease
	// clock reads it, so lease expiry is deterministic for a given drive
	// sequence.
	vnow simclock.Time
}

// NewCluster builds a distributed iCache over a shared backend.
func NewCluster(backend *storage.Backend, cfg ClusterConfig, iis sampling.IISConfig, seed int64) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := iis.Validate(); err != nil {
		return nil, err
	}
	cache := cfg.Cache
	cache.CapacityBytes = cfg.PerNodeCapacityBytes
	if err := cache.Validate(); err != nil {
		return nil, err
	}
	if cfg.DirReprobeInterval == 0 {
		cfg.DirReprobeInterval = 250 * time.Millisecond
	}
	if cfg.LeaseTTL == 0 {
		cfg.LeaseTTL = dkv.DefaultLeaseTTL
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = cfg.LeaseTTL / 4
	}
	if cfg.SuspectWindow == 0 {
		cfg.SuspectWindow = cfg.LeaseTTL
	}
	if cfg.ScrubInterval == 0 {
		cfg.ScrubInterval = cfg.LeaseTTL / 2
	}
	if cfg.ScrubBatch == 0 {
		cfg.ScrubBatch = 256
	}
	if cfg.DeferredReleaseCap == 0 {
		cfg.DeferredReleaseCap = 4096
	}
	rawDir := dkv.NewDirectory()
	cl := &Cluster{
		cfg:      cfg,
		backend:  backend,
		spec:     backend.Spec(),
		iis:      iis,
		dir:      dkv.Local{Dir: rawDir},
		rawDir:   rawDir,
		hlist:    sampling.NewHList(nil),
		deferred: make(map[dataset.SampleID]dkv.NodeID),
	}
	cl.cfg.Cache = cache
	for n := 0; n < cfg.Nodes; n++ {
		hBytes := int64(float64(cache.CapacityBytes) * cache.HShare)
		lBytes := cache.CapacityBytes - hBytes
		if !cache.EnableLCache {
			hBytes, lBytes = cache.CapacityBytes, 0
		}
		pkg := cache.PackageBytes
		if cache.EnableLCache && int64(pkg) > lBytes/2 {
			pkg = int(lBytes / 2)
			if pkg < backend.Spec().MeanSampleBytes {
				pkg = backend.Spec().MeanSampleBytes
			}
		}
		node := &clusterNode{
			h:             newHCache(hBytes),
			l:             newLCache(lBytes),
			ld:            newLoader(backend, pkg, cache.RepackPerSample, rand.New(rand.NewSource(seed+int64(n)*7+1))),
			rng:           rand.New(rand.NewSource(seed + int64(n)*7)),
			alive:         true,
			nextHeartbeat: simclock.Time(cfg.HeartbeatInterval),
			nextScrub:     simclock.Time(cfg.ScrubInterval),
		}
		nodeID := dkv.NodeID(n)
		node.h.onEvict = func(id dataset.SampleID) { cl.dirRelease(node, node.lastAt, id, nodeID) }
		node.l.onEvict = func(id dataset.SampleID) { cl.dirRelease(node, node.lastAt, id, nodeID) }
		node.l.claim = func(id dataset.SampleID) bool {
			claimed, _ := cl.dirClaim(node, node.lastAt, id, nodeID)
			return claimed
		}
		cl.nodes = append(cl.nodes, node)
	}
	// Lease the directory onto the cluster's virtual clock and register
	// every node at t=0 so lease expiry — and therefore reclaim — is
	// deterministic for a given drive sequence. With DirReplicas > 1 the
	// single directory is replaced by N sharded replicas behind a
	// ShardedDir, and registration fans out to every replica (each tracks
	// node liveness independently for the shards it holds).
	if cfg.DirReplicas > 1 {
		cl.rawDir = nil
		cl.initShardedDir()
		if !cfg.DisableMembership {
			for _, d := range cl.rawDirs {
				for n := 0; n < cfg.Nodes; n++ {
					d.Register(dkv.NodeID(n), cfg.LeaseTTL)
				}
			}
		}
		return cl, nil
	}
	rawDir.SetClock(func() simclock.Time { return cl.vnow })
	rawDir.SetMembershipParams(cfg.LeaseTTL, cfg.SuspectWindow)
	if !cfg.DisableMembership {
		for n := 0; n < cfg.Nodes; n++ {
			rawDir.Register(dkv.NodeID(n), cfg.LeaseTTL)
		}
	}
	return cl, nil
}

// SetFaultInjector attaches a chaos schedule: directory operations
// (faults.OpDirLookup/Claim/Release) and remote-cache reads
// (faults.OpPeerRead) consult it, keyed on the current virtual time, before
// touching the real structures. Pass nil to detach. Intended for the chaos
// suite; production deployments leave it unset.
func (cl *Cluster) SetFaultInjector(inj *faults.Injector) { cl.inj = inj }

// SetDirectory swaps the cluster's directory service (e.g. for a
// fault-wrapped faults.Dir in tests). Must be called before any fetch.
func (cl *Cluster) SetDirectory(svc dkv.Service) { cl.dir = svc }

// Name identifies the scheme in experiment output.
func (cl *Cluster) Name() string { return fmt.Sprintf("icache-%dnode", cl.cfg.Nodes) }

// Nodes reports the cluster size.
func (cl *Cluster) Nodes() int { return cl.cfg.Nodes }

// Stats reports cluster-wide cache counters.
func (cl *Cluster) Stats() metrics.CacheStats {
	st := cl.stats
	for _, n := range cl.nodes {
		st.Inserts += n.h.inserts + n.l.inserts
		st.Evictions += n.h.evictions + n.l.evictions
	}
	return st
}

// Resilience reports the cluster's fault-handling counters.
func (cl *Cluster) Resilience() metrics.ResilienceStats { return cl.res }

// SubstitutionSource declares the substitution severity class for the
// accuracy model.
func (cl *Cluster) SubstitutionSource() string {
	switch cl.cfg.Cache.Substitute {
	case SubstituteLCache:
		return "lcache"
	case SubstituteHCache:
		return "hcache"
	default:
		return "none"
	}
}

// RemoteHits reports requests served from a peer node's cache.
func (cl *Cluster) RemoteHits() int64 { return cl.remoteHits }

// DirectoryLen reports how many samples are registered in the shared
// key-value directory.
func (cl *Cluster) DirectoryLen() int {
	n, _ := cl.dir.Len()
	return n
}

// BeginEpoch draws the epoch schedule from the shared (data-parallel)
// tracker, installs the fresh H-list on every node, and resets per-epoch
// state. The caller splits the schedule's batches across nodes.
func (cl *Cluster) BeginEpoch(at simclock.Time, epoch int, tr *sampling.Tracker, rng *rand.Rand) sampling.Schedule {
	sched, hl := sampling.IISSchedule(tr, cl.iis, rng)
	cl.hlist = hl
	cl.hlistIV = make(map[dataset.SampleID]float64, hl.Len())
	for _, it := range hl.Items {
		cl.hlistIV[it.ID] = it.IV
	}
	for _, n := range cl.nodes {
		n.h.refreshImportance(func(id dataset.SampleID) (float64, bool) {
			iv, ok := cl.hlistIV[id]
			return iv, ok
		})
		n.l.beginEpoch()
	}
	if cl.cfg.Cache.Clairvoyant {
		cl.planSchedule(sched.Fetch)
	}
	return sched
}

// decide consults the attached fault injector (nil-safe) at virtual time at.
func (cl *Cluster) decide(op string, at simclock.Time) faults.Decision {
	if cl.inj == nil {
		return faults.Decision{}
	}
	return cl.inj.DecideAt(op, at)
}

// faulted reports whether a decision denies the operation outright.
func faulted(d faults.Decision) bool {
	return d.Action == faults.ActError || d.Action == faults.ActDrop
}

// dirAvailable reports whether node n should attempt directory operations
// at time at. While a node is in local-only mode, operations are skipped
// (counted) until the re-probe deadline passes.
func (cl *Cluster) dirAvailable(n *clusterNode, at simclock.Time) bool {
	if !n.dirDown || at >= n.dirDownUntil {
		return true
	}
	cl.res.LocalOnlySkips++
	return false
}

// dirFault records a directory failure on node n: the node flips (or stays)
// in local-only mode and will not re-probe before at+DirReprobeInterval.
func (cl *Cluster) dirFault(n *clusterNode, at simclock.Time) {
	cl.res.DirFailures++
	if !n.dirDown {
		n.dirDown = true
		cl.res.LocalOnly++
	}
	n.dirDownUntil = at + cl.cfg.DirReprobeInterval
}

// dirHealed marks a successful directory operation on node n and replays
// any deferred ownership releases, best effort.
func (cl *Cluster) dirHealed(n *clusterNode) {
	n.dirDown = false
	if len(cl.deferred) == 0 {
		return
	}
	// Replay in sorted order: map iteration order is random, and a failure
	// mid-replay keeps the remainder queued, so an unsorted walk would make
	// the replayed set — and thus the whole run — nondeterministic.
	ids := make([]dataset.SampleID, 0, len(cl.deferred))
	for id := range cl.deferred {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if _, err := cl.dir.Release(id, cl.deferred[id]); err != nil {
			return // still sick; keep the rest queued
		}
		delete(cl.deferred, id)
		cl.res.ReplayedReleases++
	}
}

// dirLookup resolves id's owner through the (possibly faulted) directory.
// degraded reports that the lookup could not be performed.
func (cl *Cluster) dirLookup(n *clusterNode, at simclock.Time, id dataset.SampleID) (owner dkv.NodeID, ok, degraded bool) {
	if !cl.dirAvailable(n, at) {
		return 0, false, true
	}
	if faulted(cl.decide(faults.OpDirLookup, at)) {
		cl.dirFault(n, at)
		return 0, false, true
	}
	owner, ok, err := cl.dir.Lookup(id)
	if err != nil {
		cl.dirFault(n, at)
		return 0, false, true
	}
	cl.dirHealed(n)
	return owner, ok, false
}

// dirClaim claims id for node through the (possibly faulted) directory.
// A directory failure counts as a failed claim: unregistered ownership
// would break the no-duplication invariant.
func (cl *Cluster) dirClaim(n *clusterNode, at simclock.Time, id dataset.SampleID, node dkv.NodeID) (claimed, degraded bool) {
	if !cl.dirAvailable(n, at) {
		return false, true
	}
	if faulted(cl.decide(faults.OpDirClaim, at)) {
		cl.dirFault(n, at)
		return false, true
	}
	claimed, err := cl.dir.Claim(id, node)
	if err != nil {
		cl.dirFault(n, at)
		return false, true
	}
	if claimed {
		// A successful claim supersedes any release deferred while the
		// directory was down (e.g. the node evicted id and later re-admitted
		// it): replaying the stale release would silently drop live
		// ownership and invite duplication.
		delete(cl.deferred, id)
	}
	cl.dirHealed(n)
	return claimed, false
}

// deferRelease queues a failed ownership release for replay once the
// directory heals. The queue is bounded (ClusterConfig.DeferredReleaseCap):
// at the cap the release is dropped and counted instead, and the scrubber
// repairs the resulting orphaned directory entry on a later sweep — so a
// never-healing directory costs bounded memory, not an unbounded map.
func (cl *Cluster) deferRelease(id dataset.SampleID, node dkv.NodeID) {
	if _, queued := cl.deferred[id]; !queued && len(cl.deferred) >= cl.cfg.DeferredReleaseCap {
		cl.res.DroppedReleases++
		return
	}
	cl.deferred[id] = node
	cl.res.DeferredReleases++
}

// dirRelease releases id for node. Failures are queued for replay once the
// directory heals, so evictions never leave permanent stale ownership.
func (cl *Cluster) dirRelease(n *clusterNode, at simclock.Time, id dataset.SampleID, node dkv.NodeID) {
	if !cl.dirAvailable(n, at) {
		cl.deferRelease(id, node)
		return
	}
	if faulted(cl.decide(faults.OpDirRelease, at)) {
		cl.dirFault(n, at)
		cl.deferRelease(id, node)
		return
	}
	if _, err := cl.dir.Release(id, node); err != nil {
		cl.dirFault(n, at)
		cl.deferRelease(id, node)
		return
	}
	cl.dirHealed(n)
}

// remoteRead charges the cost of pulling one sample from a peer's cache:
// the RPC latency plus the transfer over both NICs.
func (cl *Cluster) remoteRead(at simclock.Time, from, to int, size int) simclock.Time {
	transfer := time.Duration(float64(size) / cl.cfg.PeerBandwidth * float64(time.Second))
	_, end := cl.nodes[from].nic.Acquire(at+cl.cfg.PeerLatency, transfer)
	_, end = cl.nodes[to].nic.Acquire(end, transfer)
	return end
}

// FetchBatchOn simulates node's worker fetching a mini-batch starting at
// virtual time at, following §III-E's data flow: local cache, then the
// shared directory for a remote-cache hit, then the backend (claiming
// ownership of what it fetched).
func (cl *Cluster) FetchBatchOn(node int, at simclock.Time, ids []dataset.SampleID) (simclock.Time, []dataset.SampleID) {
	if node < 0 || node >= len(cl.nodes) {
		panic(fmt.Sprintf("icache: node %d out of range [0,%d)", node, len(cl.nodes)))
	}
	n := cl.nodes[node]
	if !n.alive {
		panic(fmt.Sprintf("icache: FetchBatchOn on crashed node %d (RestartNode first)", node))
	}
	served := make([]dataset.SampleID, 0, len(ids))
	for _, id := range ids {
		at = cl.fetchOne(n, node, at, id, &served)
	}
	return at, served
}

// countBackendRead attributes one backend-served request to exactly one
// outcome class: Degraded when a fault broke the preferred path, Misses
// otherwise. This single choke point is what keeps the conservation
// invariant exact.
func (cl *Cluster) countBackendRead(degraded bool) {
	if degraded {
		cl.stats.Degraded++
		cl.res.DegradedReads++
	} else {
		cl.stats.Misses++
	}
}

func (cl *Cluster) fetchOne(n *clusterNode, node int, at simclock.Time, id dataset.SampleID, served *[]dataset.SampleID) simclock.Time {
	n.lastAt = at
	cl.tick(n, node, at)
	size := cl.spec.SampleBytes(id)
	if cl.hlist.Contains(id) {
		if n.h.contains(id) {
			cl.stats.Hits++
			*served = append(*served, id)
			return at + cl.cfg.Cache.HitLatency
		}
		if n.l.contains(id) {
			// The sample was cached as an L-sample in an earlier epoch and
			// has since been promoted into the H-list. Serve it locally and
			// try to move the copy into the H-cache; if the H-cache declines,
			// the L-copy stays. Either way the node holds exactly one copy
			// and keeps its directory ownership, so the no-duplication
			// invariant survives the promotion.
			if n.h.offer(id, size, cl.hlistIV[id]) {
				n.l.remove(id)
			}
			cl.stats.Hits++
			*served = append(*served, id)
			return at + cl.cfg.Cache.HitLatency
		}
		degraded := false
		if owner, ok, deg := cl.dirLookup(n, at, id); deg {
			degraded = true
		} else if ok && int(owner) != node {
			if cl.nodes[owner].h.contains(id) || cl.nodes[owner].l.contains(id) {
				if d := cl.decide(faults.OpPeerRead, at); faulted(d) {
					// Remote copy exists but the peer is unreachable:
					// degrade to a backend read, never stall.
					cl.res.PeerFailures++
					degraded = true
				} else {
					cl.stats.Hits++
					cl.remoteHits++
					*served = append(*served, id)
					end := cl.remoteRead(at, int(owner), node, size)
					return end + d.Delay
				}
			}
		}
		cl.countBackendRead(degraded)
		at = cl.backend.ReadSample(at, id)
		iv := cl.hlistIV[id]
		if claimed, _ := cl.dirClaim(n, at, id, dkv.NodeID(node)); claimed {
			if !n.h.offer(id, size, iv) {
				cl.dirRelease(n, at, id, dkv.NodeID(node))
			}
		}
		*served = append(*served, id)
		return at
	}

	// L-sample path: local L-cache, remote exact hit, then substitution.
	if !cl.cfg.Cache.EnableLCache {
		cl.stats.Misses++
		at = cl.backend.ReadSample(at, id)
		*served = append(*served, id)
		return at
	}
	n.ld.pump(at, cl.hlist, n.h, n.l)
	n.ld.deliver(at, n.l)
	if n.l.takeExact(id) {
		cl.stats.Hits++
		*served = append(*served, id)
		return at + cl.cfg.Cache.HitLatency
	}
	degraded := false
	if owner, ok, deg := cl.dirLookup(n, at, id); deg {
		degraded = true
	} else if ok && int(owner) != node {
		if cl.nodes[owner].l.takeExact(id) {
			if d := cl.decide(faults.OpPeerRead, at); faulted(d) {
				cl.res.PeerFailures++
				degraded = true
			} else {
				cl.stats.Hits++
				cl.remoteHits++
				*served = append(*served, id)
				end := cl.remoteRead(at, int(owner), node, size)
				return end + d.Delay
			}
		}
	}
	n.ld.recordMiss(id)
	if cl.cfg.Cache.Substitute == SubstituteLCache {
		if sub, ok := n.l.substitute(n.rng); ok {
			cl.stats.Substitutions++
			*served = append(*served, sub)
			return at + cl.cfg.Cache.HitLatency
		}
	}
	cl.countBackendRead(degraded)
	at = cl.backend.ReadSample(at, id)
	*served = append(*served, id)
	return at
}

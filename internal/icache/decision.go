package icache

import (
	"icache/internal/dataset"
	"icache/internal/metrics"
)

// Decision-level introspection for the policy engine: every directed
// removal carries a reason code, substitutions record which quality class
// served them, and epoch boundaries snapshot the H/L residency
// composition. All counters are mutated under the caller's policy lock
// (the same discipline as stats) and snapshotted via DecisionLedger.

// DropReason classifies a directed removal (Server.DropFor) — a drop the
// policy did not choose itself. Capacity evictions are counted separately
// by the region eviction loops.
type DropReason int

const (
	// DropDeadOwner: the directory credits the sample to another node
	// (lost claim race, peer-owned copy discovered on the serve path).
	DropDeadOwner DropReason = iota
	// DropScrub: the anti-entropy sweep found the copy unregistered or
	// peer-owned and repaired the divergence.
	DropScrub
	// DropCheckpointDenied: a checkpoint-restored resident whose ownership
	// replay was denied after rejoin.
	DropCheckpointDenied
)

// decisionState holds the Server's introspection counters.
type decisionState struct {
	// directed is every successful DropFor, counted before the reason
	// switch, so reason-sum == directed is a wiring check on the reason
	// taxonomy rather than an arithmetic identity.
	directed             int64
	dropDeadOwner        int64
	dropScrub            int64
	dropCheckpointDenied int64

	subExact    int64
	subFallback int64

	// Residency composition at the last epoch boundary (the state the
	// previous epoch ended with).
	epochHCount, epochLCount int64
	epochHBytes, epochLBytes int64
}

// DropFor removes a sample from whichever cache region holds it, tagging
// the removal with its reason; it reports whether the sample was resident.
// The plain Drop remains as the dead-owner shorthand (every legacy call
// site had lost-ownership semantics).
func (s *Server) DropFor(id dataset.SampleID, reason DropReason) bool {
	if !(s.h.remove(id) || s.l.remove(id)) {
		return false
	}
	s.dec.directed++
	switch reason {
	case DropScrub:
		s.dec.dropScrub++
	case DropCheckpointDenied:
		s.dec.dropCheckpointDenied++
	default:
		s.dec.dropDeadOwner++
	}
	return true
}

// noteSubstitution records which quality class served a substitution:
// exact is the same-region L-cache walk (the paper's intended
// substitutability), fallback the cross-region H-resident rung. Under a
// single-policy config one class is structurally zero; the split becomes
// informative when a cascading policy is active.
func (s *Server) noteSubstitution(policy SubstitutePolicy) {
	if policy == SubstituteLCache {
		s.dec.subExact++
	} else {
		s.dec.subFallback++
	}
}

// snapshotEpochResidency records the residency composition at an epoch
// boundary (called from startEpoch before any epoch-turn mutation, so it
// captures the state the finishing epoch ended with).
func (s *Server) snapshotEpochResidency() {
	s.dec.epochHCount = int64(s.h.len())
	s.dec.epochLCount = int64(s.l.len())
	s.dec.epochHBytes = s.h.used
	s.dec.epochLBytes = s.l.used
}

// DecisionLedger snapshots the policy half of the decision ledger. The
// rpc layer overlays its own admission-provenance and prefetch-outcome
// counters on top. Callers hold the policy lock.
func (s *Server) DecisionLedger() metrics.DecisionStats {
	capacity := s.h.evictions + s.l.evictions
	return metrics.DecisionStats{
		EvictCapacity:         capacity,
		EvictDeadOwner:        s.dec.dropDeadOwner,
		EvictScrub:            s.dec.dropScrub,
		EvictCheckpointDenied: s.dec.dropCheckpointDenied,
		EvictTotal:            capacity + s.dec.directed,
		SubExact:              s.dec.subExact,
		SubFallback:           s.dec.subFallback,
		Epoch:                 s.epoch,
		EpochHCount:           s.dec.epochHCount,
		EpochLCount:           s.dec.epochLCount,
		EpochHBytes:           s.dec.epochHBytes,
		EpochLBytes:           s.dec.epochLBytes,
	}
}

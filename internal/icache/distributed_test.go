package icache

import (
	"math/rand"
	"testing"

	"icache/internal/sampling"
	"icache/internal/simclock"
	"icache/internal/storage"
)

func testCluster(t *testing.T, nodes int) (*Cluster, *storage.Backend) {
	t.Helper()
	back, err := storage.NewBackend(testSpec(), storage.NFS())
	if err != nil {
		t.Fatal(err)
	}
	perNode := back.Spec().TotalBytes() / 5
	cl, err := NewCluster(back, DefaultClusterConfig(nodes, perNode), sampling.DefaultIIS(), 99)
	if err != nil {
		t.Fatal(err)
	}
	return cl, back
}

func TestClusterConfigValidate(t *testing.T) {
	if err := DefaultClusterConfig(2, 1<<20).Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := DefaultClusterConfig(0, 1<<20)
	if err := bad.Validate(); err == nil {
		t.Error("Nodes=0 accepted")
	}
	bad = DefaultClusterConfig(2, 0)
	if err := bad.Validate(); err == nil {
		t.Error("zero per-node capacity accepted")
	}
}

// runClusterEpoch splits the schedule's batches across nodes in lockstep,
// the way data-parallel training consumes shards.
func runClusterEpoch(t *testing.T, cl *Cluster, tr *sampling.Tracker, epoch int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sched := cl.BeginEpoch(0, epoch, tr, rng)
	batches := sched.Batches(128)
	ats := make([]simclock.Time, cl.Nodes())
	for i, batch := range batches {
		node := i % cl.Nodes()
		end, served := cl.FetchBatchOn(node, ats[node], batch)
		if len(served) != len(batch) {
			t.Fatalf("served %d of %d", len(served), len(batch))
		}
		ats[node] = end
	}
}

func TestClusterNoDuplicateOwnership(t *testing.T) {
	cl, _ := testCluster(t, 2)
	tr := trainedTracker(t, cl.spec.NumSamples, 7)
	for e := 0; e < 3; e++ {
		runClusterEpoch(t, cl, tr, e, int64(e))
	}
	// Every H-cache resident on every node must be directory-owned by that
	// node and by no other node.
	for n, node := range cl.nodes {
		for id := range node.h.items {
			owner, ok, err := cl.dir.Lookup(id)
			if err != nil {
				t.Fatalf("directory lookup of %d: %v", id, err)
			}
			if !ok {
				t.Fatalf("node %d caches H-sample %d with no directory entry", n, id)
			}
			if int(owner) != n {
				t.Fatalf("node %d caches H-sample %d owned by node %d", n, id, owner)
			}
		}
	}
	// No sample may be resident on two nodes.
	seen := map[int64]int{}
	for n, node := range cl.nodes {
		for id := range node.h.items {
			if prev, dup := seen[int64(id)]; dup {
				t.Fatalf("sample %d cached on nodes %d and %d", id, prev, n)
			}
			seen[int64(id)] = n
		}
		for id := range node.l.items {
			if prev, dup := seen[int64(id)]; dup {
				t.Fatalf("L-sample %d cached on nodes %d and %d", id, prev, n)
			}
			seen[int64(id)] = n
		}
	}
}

func TestClusterRemoteHits(t *testing.T) {
	cl, _ := testCluster(t, 2)
	tr := trainedTracker(t, cl.spec.NumSamples, 8)
	for e := 0; e < 3; e++ {
		runClusterEpoch(t, cl, tr, e, int64(10+e))
	}
	if cl.RemoteHits() == 0 {
		t.Fatal("two nodes sharing a working set produced zero remote hits")
	}
	if cl.DirectoryLen() == 0 {
		t.Fatal("directory empty after training")
	}
}

func TestClusterJointCacheBeatsOneNode(t *testing.T) {
	// With the same per-node capacity, more nodes hold more distinct
	// samples, so the joint hit ratio must improve.
	tr1 := trainedTracker(t, testSpec().NumSamples, 9)
	tr4 := trainedTracker(t, testSpec().NumSamples, 9)

	cl1, _ := testCluster(t, 1)
	cl4, _ := testCluster(t, 4)
	for e := 0; e < 3; e++ {
		runClusterEpoch(t, cl1, tr1, e, int64(e))
		runClusterEpoch(t, cl4, tr4, e, int64(e))
	}
	if h1, h4 := cl1.Stats().HitRatio(), cl4.Stats().HitRatio(); h4 <= h1 {
		t.Fatalf("4-node hit ratio %.3f not better than 1-node %.3f", h4, h1)
	}
}

func TestClusterRemoteReadCostsMoreThanLocal(t *testing.T) {
	cl, _ := testCluster(t, 2)
	local := cl.cfg.Cache.HitLatency
	end := cl.remoteRead(0, 0, 1, 4096)
	if end <= local {
		t.Fatalf("remote read (%v) not more expensive than local hit (%v)", end, local)
	}
}

func TestClusterBadNodePanics(t *testing.T) {
	cl, _ := testCluster(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("FetchBatchOn with bad node did not panic")
		}
	}()
	cl.FetchBatchOn(5, 0, nil)
}

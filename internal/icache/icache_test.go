package icache

import (
	"math/rand"
	"testing"

	"icache/internal/dataset"
	"icache/internal/sampling"
	"icache/internal/simclock"
	"icache/internal/storage"
)

func testSpec() dataset.Spec {
	return dataset.Spec{Name: "ic", NumSamples: 5000, MeanSampleBytes: 1000, Seed: 11}
}

func testBackend(t *testing.T) *storage.Backend {
	t.Helper()
	b, err := storage.NewBackend(testSpec(), storage.OrangeFS())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func testServer(t *testing.T, back *storage.Backend) *Server {
	t.Helper()
	cfg := DefaultConfig(back.Spec().TotalBytes() / 5)
	s, err := NewServer(back, cfg, sampling.DefaultIIS(), 42)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func trainedTracker(t *testing.T, n int, seed int64) *sampling.Tracker {
	t.Helper()
	tr, err := sampling.NewTracker(n, 3.0, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		// Losses correlated with intrinsic difficulty, as training produces.
		tr.Observe(dataset.SampleID(i), spec.Difficulty(dataset.SampleID(i))*2+rng.Float64()*0.1)
	}
	return tr
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(1 << 20).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig(0)
	if err := bad.Validate(); err == nil {
		t.Error("zero capacity accepted")
	}
	bad = DefaultConfig(1 << 20)
	bad.HShare = 1.0
	if err := bad.Validate(); err == nil {
		t.Error("HShare=1 accepted")
	}
	bad = DefaultConfig(1 << 20)
	bad.FreqDecay = 1.0
	if err := bad.Validate(); err == nil {
		t.Error("FreqDecay=1 accepted")
	}
}

func TestSubstitutePolicyString(t *testing.T) {
	if SubstituteLCache.String() != "st-lc" || SubstituteHCache.String() != "st-hc" || SubstituteNone.String() != "none" {
		t.Fatal("SubstitutePolicy strings wrong")
	}
	if PartitionStatic.String() != "static" || PartitionByFrequency.String() != "freq" {
		t.Fatal("PartitionPolicy strings wrong")
	}
}

func TestHCacheOfferAndImportanceEviction(t *testing.T) {
	h := newHCache(3000) // three 1000-byte samples
	if !h.offer(1, 1000, 0.5) || !h.offer(2, 1000, 0.7) || !h.offer(3, 1000, 0.9) {
		t.Fatal("offers with room failed")
	}
	// Full. A less-important sample must be rejected.
	if h.offer(4, 1000, 0.4) {
		t.Fatal("admitted sample less important than the top-node")
	}
	// A more-important sample evicts the current minimum (id 1, iv 0.5).
	if !h.offer(5, 1000, 0.8) {
		t.Fatal("more-important sample rejected")
	}
	if h.contains(1) {
		t.Fatal("top-node not evicted")
	}
	if !h.contains(2) || !h.contains(3) || !h.contains(5) {
		t.Fatal("wrong resident set")
	}
	if h.evictions != 1 || h.inserts != 4 {
		t.Fatalf("evictions=%d inserts=%d", h.evictions, h.inserts)
	}
}

func TestHCacheResizeEvictsLowestImportance(t *testing.T) {
	h := newHCache(3000)
	h.offer(1, 1000, 0.1)
	h.offer(2, 1000, 0.9)
	h.offer(3, 1000, 0.5)
	h.resize(2000)
	if h.contains(1) {
		t.Fatal("resize kept the least important sample")
	}
	if h.used != 2000 {
		t.Fatalf("used = %d", h.used)
	}
}

func TestHCacheRefreshDemotesAbsentSamples(t *testing.T) {
	h := newHCache(2000)
	h.offer(1, 1000, 0.9)
	h.offer(2, 1000, 0.8)
	// New H-list contains only sample 2; sample 1 is demoted to iv 0.
	h.refreshImportance(func(id dataset.SampleID) (float64, bool) {
		if id == 2 {
			return 0.8, true
		}
		return 0, false
	})
	// An incoming H-sample with any positive iv now evicts sample 1 first.
	if !h.offer(3, 1000, 0.3) {
		t.Fatal("offer after refresh rejected")
	}
	if h.contains(1) {
		t.Fatal("demoted sample survived eviction pressure")
	}
	if !h.contains(2) {
		t.Fatal("still-important sample evicted")
	}
}

func TestHCacheRandomResident(t *testing.T) {
	h := newHCache(10_000)
	rng := rand.New(rand.NewSource(1))
	if _, ok := h.randomResident(rng); ok {
		t.Fatal("random resident from empty cache")
	}
	for i := 0; i < 10; i++ {
		h.offer(dataset.SampleID(i), 1000, float64(i))
	}
	seen := map[dataset.SampleID]bool{}
	for i := 0; i < 200; i++ {
		id, ok := h.randomResident(rng)
		if !ok || !h.contains(id) {
			t.Fatal("random resident invalid")
		}
		seen[id] = true
	}
	if len(seen) < 8 {
		t.Fatalf("random pick covered only %d/10 residents", len(seen))
	}
}

func TestLCacheExactHitOncePerEpoch(t *testing.T) {
	l := newLCache(10_000)
	l.insert(1, 1000)
	if !l.takeExact(1) {
		t.Fatal("exact hit failed")
	}
	if l.takeExact(1) {
		t.Fatal("same sample served twice in one epoch")
	}
	l.beginEpoch()
	if !l.takeExact(1) {
		t.Fatal("epoch reset did not restore servability")
	}
}

func TestLCacheSubstituteConsumesPool(t *testing.T) {
	l := newLCache(10_000)
	for i := 0; i < 5; i++ {
		l.insert(dataset.SampleID(i), 1000)
	}
	rng := rand.New(rand.NewSource(2))
	got := map[dataset.SampleID]bool{}
	for i := 0; i < 5; i++ {
		id, ok := l.substitute(rng)
		if !ok {
			t.Fatalf("substitute %d failed with pool", i)
		}
		if got[id] {
			t.Fatalf("substitute returned %d twice", id)
		}
		got[id] = true
	}
	if _, ok := l.substitute(rng); ok {
		t.Fatal("substitute succeeded with exhausted pool")
	}
}

func TestLCacheEvictsUsedFirst(t *testing.T) {
	l := newLCache(3000)
	l.insert(1, 1000)
	l.insert(2, 1000)
	l.insert(3, 1000)
	if !l.takeExact(2) {
		t.Fatal("take failed")
	}
	l.insert(4, 1000) // must evict used sample 2, not unused 1/3
	if l.contains(2) {
		t.Fatal("used sample survived while unused was evicted")
	}
	if !l.contains(1) || !l.contains(3) || !l.contains(4) {
		t.Fatal("wrong resident set")
	}
}

func TestLCacheEvictsOldestUnusedWhenNoUsed(t *testing.T) {
	l := newLCache(2000)
	l.insert(1, 1000)
	l.insert(2, 1000)
	l.insert(3, 1000) // no used entries: evict oldest arrival (1)
	if l.contains(1) || !l.contains(2) || !l.contains(3) {
		t.Fatal("FIFO eviction wrong")
	}
}

func TestLCacheClaimVeto(t *testing.T) {
	l := newLCache(10_000)
	l.claim = func(id dataset.SampleID) bool { return id%2 == 0 }
	if l.insert(1, 1000) {
		t.Fatal("vetoed insert succeeded")
	}
	if !l.insert(2, 1000) {
		t.Fatal("approved insert failed")
	}
}

func TestServerEndToEndEpochs(t *testing.T) {
	back := testBackend(t)
	srv := testServer(t, back)
	tr := trainedTracker(t, back.Spec().NumSamples, 3)
	rng := rand.New(rand.NewSource(4))

	var prevHits int64
	for epoch := 0; epoch < 4; epoch++ {
		sched := srv.BeginEpoch(0, epoch, tr, rng)
		if len(sched.Fetch) >= back.Spec().NumSamples {
			t.Fatal("IIS did not reduce fetch volume")
		}
		var at simclock.Time
		for _, batch := range sched.Batches(256) {
			end, served := srv.FetchBatch(at, batch)
			if len(served) != len(batch) {
				t.Fatalf("served %d of %d", len(served), len(batch))
			}
			at = end
		}
		hits := srv.Stats().Hits + srv.Stats().Substitutions
		if epoch > 0 && hits <= prevHits {
			t.Fatalf("epoch %d: no cache service at all", epoch)
		}
		prevHits = hits
	}

	st := srv.Stats()
	if st.HitRatio() < 0.10 {
		t.Fatalf("hit ratio %.3f too low — H-cache not working", st.HitRatio())
	}
	if srv.HCacheLen() == 0 {
		t.Fatal("empty H-cache after four epochs")
	}
	if srv.PackagesLoaded() == 0 {
		t.Fatal("loading thread never loaded a package")
	}
}

package icache

// Chaos suite for the distributed iCache (ISSUE 1 acceptance criterion):
// a fig13-style 2-node training run over an NFS backend must complete every
// epoch while the injector kills peer reads and partitions the directory
// for a whole epoch, with all degradations counted, capacity and ownership
// invariants intact, and the run bit-for-bit deterministic under its seeds.

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"icache/internal/dataset"
	"icache/internal/faults"
	"icache/internal/leakcheck"
	"icache/internal/metrics"
	"icache/internal/sampling"
	"icache/internal/simclock"
	"icache/internal/storage"
	"icache/internal/train"
)

func chaosSpec() dataset.Spec {
	return dataset.Spec{Name: "chaos", NumSamples: 2000, MeanSampleBytes: 4096, Seed: 3}
}

// chaosCluster builds the fig13-style deployment in miniature: N nodes over
// a shared NFS backend, each caching 20% of the dataset.
func chaosCluster(t *testing.T, nodes int, seed int64) *Cluster {
	t.Helper()
	back, err := storage.NewBackend(chaosSpec(), storage.NFS())
	if err != nil {
		t.Fatal(err)
	}
	perNode := back.Spec().TotalBytes() / 5
	cl, err := NewCluster(back, DefaultClusterConfig(nodes, perNode), sampling.DefaultIIS(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// chaosJob runs a distributed training job against the cluster and returns
// its per-epoch results.
func chaosJob(t *testing.T, cl *Cluster, epochs int, seed int64) metrics.RunStats {
	t.Helper()
	cfg := train.DefaultConfig(train.ResNet18, chaosSpec())
	cfg.Epochs = epochs
	cfg.BatchSize = 128
	cfg.Seed = seed
	job, err := train.NewDistJob(cfg, cl)
	if err != nil {
		t.Fatal(err)
	}
	return job.Run()
}

// assertClusterInvariants checks the structural invariants that must hold
// after any fault schedule: per-node capacity respected, no sample resident
// on two nodes, and exact request conservation.
func assertClusterInvariants(t *testing.T, cl *Cluster, wantRequests int64) {
	t.Helper()
	seen := map[dataset.SampleID]int{}
	for i, n := range cl.nodes {
		if n.h.used > n.h.capBytes {
			t.Errorf("node %d H-cache over capacity: %d > %d", i, n.h.used, n.h.capBytes)
		}
		if n.l.used > n.l.capBytes {
			t.Errorf("node %d L-cache over capacity: %d > %d", i, n.l.used, n.l.capBytes)
		}
		for id := range n.h.items {
			if prev, dup := seen[id]; dup {
				t.Errorf("sample %d resident on nodes %d and %d", id, prev, i)
			}
			seen[id] = i
		}
		for id := range n.l.items {
			if prev, dup := seen[id]; dup {
				t.Errorf("sample %d resident on nodes %d and %d", id, prev, i)
			}
			seen[id] = i
		}
	}
	st := cl.Stats()
	if got := st.Requests(); got != wantRequests {
		t.Errorf("conservation broken: hits+misses+subs+degraded = %d, want %d requests (%v)",
			got, wantRequests, st)
	}
}

// fetchedTotal sums the per-epoch fetch counts — the number of fetchOne
// calls the cluster must account for.
func fetchedTotal(rs metrics.RunStats) int64 {
	var total int64
	for _, e := range rs.Epochs {
		total += int64(e.SamplesFetched)
	}
	return total
}

// TestChaosTrainingSurvivesFaultSchedule is the acceptance test: for three
// distinct seeds, a 2-node training run completes every epoch while the
// directory is partitioned for (at least) all of epoch 1 and every 5th
// remote-cache read fails. Fault-free and chaos runs must fetch the same
// sample volume per epoch — degradation costs time, never data — and the
// chaos run must be deterministic under its seeds.
func TestChaosTrainingSurvivesFaultSchedule(t *testing.T) {
	const epochs = 4
	for _, seed := range []int64{1, 42, 1337} {
		seed := seed
		t.Run(time.Duration(seed).String(), func(t *testing.T) {
			leakcheck.Check(t)

			// Phase 1: fault-free reference run to learn the epoch windows.
			clean := chaosCluster(t, 2, seed)
			cleanRS := chaosJob(t, clean, epochs, seed)
			if len(cleanRS.Epochs) != epochs {
				t.Fatalf("fault-free run finished %d epochs, want %d", len(cleanRS.Epochs), epochs)
			}
			assertClusterInvariants(t, clean, fetchedTotal(cleanRS))
			if clean.Stats().Degraded != 0 {
				t.Fatalf("fault-free run recorded %d degraded requests", clean.Stats().Degraded)
			}
			epoch1Start := cleanRS.Epochs[0].Duration
			epoch1End := epoch1Start + cleanRS.Epochs[1].Duration

			// Phase 2: same workload under chaos. The directory partition
			// covers the fault-free run's entire epoch-1 window; since chaos
			// only slows the run down, virtual time epoch1Start..epoch1End is
			// reached within epoch 1, so at least part of (and in practice
			// most of) the epoch runs partitioned.
			chaosRun := func() (*Cluster, metrics.RunStats) {
				cl := chaosCluster(t, 2, seed)
				cl.SetFaultInjector(faults.New(seed).Add(
					faults.Partition(faults.OpDirLookup, epoch1Start, epoch1End, nil),
					faults.Partition(faults.OpDirClaim, epoch1Start, epoch1End, nil),
					faults.Partition(faults.OpDirRelease, epoch1Start, epoch1End, nil),
					faults.Rule{Op: faults.OpPeerRead, Every: 5, Action: faults.ActError},
				))
				return cl, chaosJob(t, cl, epochs, seed)
			}
			cl, rs := chaosRun()

			// Every epoch completes with the full data volume: no lost samples.
			if len(rs.Epochs) != epochs {
				t.Fatalf("chaos run finished %d epochs, want %d", len(rs.Epochs), epochs)
			}
			for e := range rs.Epochs {
				if got, want := rs.Epochs[e].SamplesFetched, cleanRS.Epochs[e].SamplesFetched; got != want {
					t.Errorf("epoch %d fetched %d samples under chaos, fault-free fetched %d", e, got, want)
				}
				if rs.Epochs[e].SamplesTrained <= 0 {
					t.Errorf("epoch %d trained no samples", e)
				}
			}

			// The faults actually bit, and every bite was counted.
			res := cl.Resilience()
			if cl.Stats().Degraded == 0 {
				t.Error("no degraded requests recorded under chaos")
			}
			if res.DirFailures == 0 {
				t.Error("directory partition produced no DirFailures")
			}
			if res.PeerFailures == 0 {
				t.Error("peer-read faults produced no PeerFailures")
			}
			if res.LocalOnly == 0 {
				t.Error("no node ever entered local-only mode")
			}
			if res.LocalOnlySkips == 0 {
				t.Error("local-only mode never skipped a directory op")
			}

			// Partition over: deferred releases must have been replayed and
			// the structural invariants restored.
			if len(cl.deferred) != 0 {
				t.Errorf("%d ownership releases still deferred after heal", len(cl.deferred))
			}
			if res.DeferredReleases > 0 && res.ReplayedReleases == 0 {
				t.Errorf("deferred %d releases, replayed none", res.DeferredReleases)
			}
			assertClusterInvariants(t, cl, fetchedTotal(rs))

			// Chaos costs time, never data: epoch 1 (the partitioned epoch)
			// must not be cheaper than its fault-free twin.
			if rs.Epochs[1].Duration < cleanRS.Epochs[1].Duration {
				t.Errorf("partitioned epoch 1 took %v, faster than fault-free %v",
					rs.Epochs[1].Duration, cleanRS.Epochs[1].Duration)
			}

			// Determinism: the identical seeds reproduce the identical run.
			_, rs2 := chaosRun()
			if !reflect.DeepEqual(rs, rs2) {
				t.Error("same seeds produced different chaos runs")
			}
		})
	}
}

// randomHealingSchedule draws a fault schedule in which every rule is
// bounded — by a call-count window, a virtual-time window, or a fire-count
// cap — so the system is eventually fault-free ("eventually healing").
func randomHealingSchedule(rng *rand.Rand) []faults.Rule {
	ops := []string{faults.OpDirLookup, faults.OpDirClaim, faults.OpDirRelease, faults.OpPeerRead}
	var rules []faults.Rule
	n := 2 + rng.Intn(4)
	for i := 0; i < n; i++ {
		op := ops[rng.Intn(len(ops))]
		switch rng.Intn(3) {
		case 0: // call-count window
			from := int64(rng.Intn(200))
			rules = append(rules, faults.Rule{
				Op: op, From: from, Until: from + 1 + int64(rng.Intn(100)),
				Action: faults.ActError,
			})
		case 1: // virtual-time window
			from := simclock.Time(rng.Intn(2000)) * time.Millisecond
			rules = append(rules, faults.Partition(op, from, from+simclock.Time(1+rng.Intn(500))*time.Millisecond, nil))
		default: // probabilistic with a hard fire cap
			rules = append(rules, faults.Rule{
				Op: op, Prob: 0.2 + rng.Float64()*0.6, Count: int64(1 + rng.Intn(50)),
				Action: faults.ActError,
			})
		}
	}
	return rules
}

// TestChaosConservationProperty is the satellite property test: under ANY
// eventually-healing fault schedule, hits + misses + substitutions +
// degraded exactly equals total requests, every batch is served in full,
// and no sample is resident on two nodes.
func TestChaosConservationProperty(t *testing.T) {
	for trial := int64(0); trial < 8; trial++ {
		trial := trial
		t.Run(time.Duration(trial).String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(1000 + trial))
			cl := chaosCluster(t, 2, trial)
			cl.SetFaultInjector(faults.New(trial).Add(randomHealingSchedule(rng)...))

			tr, err := sampling.NewTracker(chaosSpec().NumSamples, 3.0, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < chaosSpec().NumSamples; i++ {
				tr.Observe(dataset.SampleID(i), chaosSpec().Difficulty(dataset.SampleID(i))*2+rng.Float64()*0.1)
			}

			var requests int64
			ats := make([]simclock.Time, cl.Nodes())
			for e := 0; e < 3; e++ {
				sched := cl.BeginEpoch(ats[0], e, tr, rng)
				for i, batch := range sched.Batches(128) {
					node := i % cl.Nodes()
					end, served := cl.FetchBatchOn(node, ats[node], batch)
					if len(served) != len(batch) {
						t.Fatalf("epoch %d batch %d: served %d of %d", e, i, len(served), len(batch))
					}
					requests += int64(len(batch))
					ats[node] = end
				}
			}
			assertClusterInvariants(t, cl, requests)
		})
	}
}

// TestChaosPeerDelayOnlySlowsRun: a delay-only schedule costs time, never
// data — no request is degraded or lost, conservation stays exact, and a
// heavy per-read delay makes the run measurably slower. (Exact per-counter
// equality with the fault-free run is NOT required: prefetch delivery is
// time-dependent, so shifting virtual time legitimately shifts the
// hit/miss/substitution split.)
func TestChaosPeerDelayOnlySlowsRun(t *testing.T) {
	const epochs = 3
	run := func(inj *faults.Injector) (metrics.RunStats, *Cluster) {
		cl := chaosCluster(t, 2, 5)
		cl.SetFaultInjector(inj)
		rs := chaosJob(t, cl, epochs, 5)
		return rs, cl
	}
	baseRS, _ := run(nil)
	inj := faults.New(5).Add(faults.DelayEvery(faults.OpPeerRead, 2, 50*time.Millisecond))
	slowRS, slowCl := run(inj)

	if got := slowCl.Stats().Degraded; got != 0 {
		t.Fatalf("delay-only schedule recorded %d degraded requests", got)
	}
	if res := slowCl.Resilience(); res.PeerFailures != 0 || res.DirFailures != 0 {
		t.Fatalf("delay-only schedule recorded hard failures: %+v", res)
	}
	if inj.Fired(faults.OpPeerRead) == 0 {
		t.Fatal("delay rule never fired")
	}
	for e := 0; e < epochs; e++ {
		if slowRS.Epochs[e].SamplesFetched != baseRS.Epochs[e].SamplesFetched {
			t.Fatalf("epoch %d: delayed run fetched %d, base %d",
				e, slowRS.Epochs[e].SamplesFetched, baseRS.Epochs[e].SamplesFetched)
		}
	}
	assertClusterInvariants(t, slowCl, fetchedTotal(slowRS))
	var baseT, slowT simclock.Time
	for e := 0; e < epochs; e++ {
		baseT += baseRS.Epochs[e].Duration
		slowT += slowRS.Epochs[e].Duration
	}
	if slowT <= baseT {
		t.Fatalf("delayed run (%v) not slower than fault-free run (%v)", slowT, baseT)
	}
}

package icache

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"icache/internal/dataset"
	"icache/internal/metrics"
	"icache/internal/sampling"
	"icache/internal/simclock"
)

// CoordPolicy selects how a Coordinator manages the shared cache's H-list.
type CoordPolicy int

const (
	// CoordAIV is iCache's §III-D policy: adjusted importance values
	// aggregated over cache-eligible jobs, weighted by caching benefit.
	CoordAIV CoordPolicy = iota
	// CoordSingleJob manages the cache with one job's importance values
	// only — the INDA/INDB baselines of Fig. 14.
	CoordSingleJob
)

// JobID identifies a registered training job on a shared server.
type JobID int

// jobState is the coordinator's view of one job.
type jobState struct {
	id   JobID
	name string
	iis  sampling.IISConfig
	// ownHList is the job's latest importance view, used to route its
	// requests (Algorithm 1 never substitutes what the *job* deems an
	// H-sample, even when the shared cache is managed by other values).
	ownHList *sampling.HList

	benefit  float64
	probed   bool
	eligible bool
	rivs     []float64 // latest percentile vector from the job's tracker

	// Per-epoch benefit probe: phase 0 measures probeTarget() samples
	// served cacheless, phase 1 the same volume through the cache, phase 2
	// runs normally. Volumes are counted in samples (the paper's "20
	// mini-batches" at its default batch size of 256) because the pipeline
	// may deliver requests in sub-batch chunks.
	probePhase int
	probeCount int
	tCacheless time.Duration
	tCache     time.Duration

	stats metrics.CacheStats
}

// Coordinator multiplexes several training jobs onto one iCache server,
// implementing the multi-job handling module of §III-D: per-job caching
// benefit estimation and adjusted-importance-value aggregation.
type Coordinator struct {
	srv    *Server
	policy CoordPolicy
	// favored is the job whose H-list rules under CoordSingleJob.
	favored JobID
	jobs    []*jobState
	nextID  JobID
}

// NewCoordinator wraps srv for multi-job sharing. The server's own H-list
// management is disabled; the coordinator installs aggregated lists.
func NewCoordinator(srv *Server, policy CoordPolicy) *Coordinator {
	srv.SetManaged(true)
	return &Coordinator{srv: srv, policy: policy}
}

// SetFavored selects the job whose importance values manage the cache under
// CoordSingleJob.
func (c *Coordinator) SetFavored(id JobID) { c.favored = id }

// Register adds a job and returns its handle, which implements the
// data-service contract for that job's training pipeline.
func (c *Coordinator) Register(name string, iis sampling.IISConfig) (*JobHandle, error) {
	if err := iis.Validate(); err != nil {
		return nil, err
	}
	j := &jobState{id: c.nextID, name: name, iis: iis, benefit: 1, eligible: true}
	c.nextID++
	c.jobs = append(c.jobs, j)
	return &JobHandle{c: c, j: j}, nil
}

// Server exposes the shared server (experiment output).
func (c *Coordinator) Server() *Server { return c.srv }

// hCapSamples estimates how many samples the combined H-list should cover:
// the H-cache capacity in mean-sized samples.
func (c *Coordinator) hCapSamples() int {
	k := int(c.srv.h.capBytes / int64(c.srv.spec.MeanSampleBytes))
	if k < 1 {
		k = 1
	}
	return k
}

// recompute installs the managed H-list according to the policy.
func (c *Coordinator) recompute() {
	n := c.srv.spec.NumSamples
	aiv := make([]float64, n)
	switch c.policy {
	case CoordSingleJob:
		for _, j := range c.jobs {
			if j.id == c.favored && j.rivs != nil {
				copy(aiv, j.rivs)
			}
		}
	case CoordAIV:
		// The manager only sees H-lists (§III-A), so a job contributes to a
		// sample's AIV only where that sample is on the job's own H-list.
		// Aggregating full percentile vectors instead would promote samples
		// that are mediocre for every job — cached space no job ever
		// routes an H-request to.
		//
		// Cold start: if no job is cache-eligible yet (every benefit probe
		// so far ran against a cold cache), aggregate over all jobs anyway —
		// the cache cannot warm up, and benefits cannot rise, if nothing is
		// ever admitted.
		eligible := c.jobs[:0:0]
		for _, j := range c.jobs {
			if j.eligible && j.rivs != nil && j.ownHList != nil {
				eligible = append(eligible, j)
			}
		}
		if len(eligible) == 0 {
			for _, j := range c.jobs {
				if j.rivs != nil && j.ownHList != nil {
					eligible = append(eligible, j)
				}
			}
		}
		if len(eligible) == 0 {
			return // nothing to manage by yet
		}
		for _, j := range eligible {
			w := j.benefit
			for _, it := range j.ownHList.Items {
				aiv[it.ID] += w * j.rivs[it.ID]
			}
		}
	}

	k := c.hCapSamples()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if aiv[idx[a]] != aiv[idx[b]] {
			return aiv[idx[a]] > aiv[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > n {
		k = n
	}
	items := make([]sampling.Item, k)
	for i := 0; i < k; i++ {
		items[i] = sampling.Item{ID: dataset.SampleID(idx[i]), IV: aiv[idx[i]]}
	}
	c.srv.InstallHList(sampling.NewHList(items))
}

// Benefit reports a job's latest estimated caching benefit and eligibility.
func (c *Coordinator) Benefit(id JobID) (ratio float64, eligible bool, err error) {
	for _, j := range c.jobs {
		if j.id == id {
			return j.benefit, j.eligible, nil
		}
	}
	return 0, false, fmt.Errorf("icache: unknown job %d", id)
}

// JobHandle is one job's data-service view of a shared, coordinated server.
type JobHandle struct {
	c *Coordinator
	j *jobState
}

// ID returns the coordinator-assigned job ID.
func (h *JobHandle) ID() JobID { return h.j.id }

// Name implements the data-service contract.
func (h *JobHandle) Name() string { return "icache-mj:" + h.j.name }

// Stats reports the cache events attributed to this job.
func (h *JobHandle) Stats() metrics.CacheStats { return h.j.stats }

// SubstitutionSource forwards the shared server's substitution class.
func (h *JobHandle) SubstitutionSource() string { return h.c.srv.SubstitutionSource() }

// BeginEpoch implements the data-service contract: the job draws its own
// IIS schedule, publishes its relative importance values, and arms a fresh
// benefit probe; the coordinator then refreshes the shared H-list.
func (h *JobHandle) BeginEpoch(at simclock.Time, epoch int, tr *sampling.Tracker, rng *rand.Rand) sampling.Schedule {
	sched, own := sampling.IISSchedule(tr, h.j.iis, rng)
	h.j.ownHList = own
	h.j.rivs = tr.Percentiles()
	if h.c.srv.cfg.ProbeBatches > 0 {
		h.j.probePhase, h.j.probeCount = 0, 0
		h.j.tCacheless, h.j.tCache = 0, 0
	} else {
		h.j.probePhase = 2
	}
	h.c.recompute()
	h.c.srv.startEpoch(at)
	return sched
}

// probeTarget is the per-phase probe volume in samples: the paper's 20
// mini-batches at its default batch size.
func (h *JobHandle) probeTarget() int { return h.c.srv.cfg.ProbeBatches * 256 }

// FetchBatch implements the data-service contract with the benefit probe of
// §III-D layered on top: the first probe volume bypasses the cache entirely
// (measuring T_cacheless), the next goes through it (measuring T_cache),
// and the ratio decides cache eligibility.
func (h *JobHandle) FetchBatch(at simclock.Time, ids []dataset.SampleID) (simclock.Time, []dataset.SampleID) {
	j := h.j
	switch j.probePhase {
	case 0:
		start := at
		served := make([]dataset.SampleID, 0, len(ids))
		for _, id := range ids {
			at = h.c.srv.backend.ReadSample(at, id)
			served = append(served, id)
		}
		j.stats.Misses += int64(len(ids))
		j.tCacheless += at - start
		j.probeCount += len(ids)
		if j.probeCount >= h.probeTarget() {
			j.probePhase, j.probeCount = 1, 0
		}
		return at, served
	case 1:
		start := at
		end, served := h.fetchThrough(at, ids)
		j.tCache += end - start
		j.probeCount += len(ids)
		if j.probeCount >= h.probeTarget() {
			j.probePhase = 2
			ratio := h.c.srv.cfg.BenefitThreshold + 1
			if j.tCache > 0 {
				ratio = float64(j.tCacheless) / float64(j.tCache)
			}
			// Smooth across epochs: a single probe is 20 mini-batches and
			// sits right after the epoch boundary, where the substitution
			// pools were just reset, so raw ratios are noisy.
			if j.probed {
				j.benefit = 0.5*j.benefit + 0.5*ratio
			} else {
				j.benefit = ratio
			}
			j.probed = true
			j.eligible = j.benefit >= h.c.srv.cfg.BenefitThreshold
		}
		return end, served
	default:
		return h.fetchThrough(at, ids)
	}
}

// fetchThrough forwards to the shared server with this job's own routing
// list, attributing the cache-event delta to this job.
func (h *JobHandle) fetchThrough(at simclock.Time, ids []dataset.SampleID) (simclock.Time, []dataset.SampleID) {
	routing := h.j.ownHList
	if routing == nil {
		routing = h.c.srv.ActiveHList()
	}
	before := h.c.srv.Stats()
	end, served := h.c.srv.FetchBatchRouted(at, ids, routing)
	after := h.c.srv.Stats()
	h.j.stats.Add(metrics.CacheStats{
		Hits:          after.Hits - before.Hits,
		Misses:        after.Misses - before.Misses,
		Substitutions: after.Substitutions - before.Substitutions,
		Inserts:       after.Inserts - before.Inserts,
		Evictions:     after.Evictions - before.Evictions,
		Rejections:    after.Rejections - before.Rejections,
	})
	return end, served
}

package icache

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"icache/internal/dataset"
	"icache/internal/sampling"
	"icache/internal/storage"
)

func loaderFixture(t *testing.T, repack time.Duration) (*loader, *sampling.HList, *hcache, *lcache, *storage.Backend) {
	t.Helper()
	back, err := storage.NewBackend(testSpec(), storage.OrangeFS())
	if err != nil {
		t.Fatal(err)
	}
	ld := newLoader(back, 64*1000, repack, rand.New(rand.NewSource(3)))
	// H-list covers ids 0..999.
	items := make([]sampling.Item, 0, 1000)
	for id := dataset.SampleID(0); id < 1000; id++ {
		items = append(items, sampling.Item{ID: id, IV: 1})
	}
	hl := sampling.NewHList(items)
	h := newHCache(10_000)
	l := newLCache(256 * 1000)
	return ld, hl, h, l, back
}

func TestLoaderComposeSkipsHAndCached(t *testing.T) {
	ld, hl, h, l, _ := loaderFixture(t, 0)
	h.offer(2000, 1000, 0.5)
	l.insert(2001, 1000)
	ids, total := ld.composePackage(hl, h, l)
	if total <= 0 || len(ids) == 0 {
		t.Fatal("empty package with plenty of L-samples available")
	}
	if total > ld.pkgBytes {
		t.Fatalf("package %d bytes exceeds unit %d", total, ld.pkgBytes)
	}
	for _, id := range ids {
		if hl.Contains(id) {
			t.Fatalf("package contains H-sample %d", id)
		}
		if id == 2000 || id == 2001 {
			t.Fatalf("package contains already-cached sample %d", id)
		}
	}
}

func TestLoaderRepacksMissesFirst(t *testing.T) {
	ld, hl, h, l, _ := loaderFixture(t, 0)
	missed := []dataset.SampleID{3000, 3001, 3002}
	for _, id := range missed {
		ld.recordMiss(id)
	}
	ld.recordMiss(3000) // duplicate: must not be packed twice
	ids, _ := ld.composePackage(hl, h, l)
	for i, want := range missed {
		if ids[i] != want {
			t.Fatalf("package[%d] = %d, want prioritized miss %d", i, ids[i], want)
		}
	}
	count := 0
	for _, id := range ids {
		if id == 3000 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("missed sample packed %d times", count)
	}
}

func TestLoaderMissedPromotedToHSkipped(t *testing.T) {
	ld, hl, h, l, _ := loaderFixture(t, 0)
	ld.recordMiss(5) // id 5 is on the H-list: must not be packed as L
	ids, _ := ld.composePackage(hl, h, l)
	for _, id := range ids {
		if id == 5 {
			t.Fatal("H-sample packed into an L package")
		}
	}
}

func TestLoaderPumpDeliversOverTime(t *testing.T) {
	ld, hl, h, l, _ := loaderFixture(t, 0)
	ld.pump(0, hl, h, l)
	if ld.packages == 0 {
		t.Fatal("pump issued no packages")
	}
	if l.len() != 0 {
		t.Fatal("packages delivered before their completion time")
	}
	ld.deliver(time.Minute, l)
	if l.len() == 0 {
		t.Fatal("nothing delivered after completion horizon")
	}
}

func TestLoaderRepackThrottles(t *testing.T) {
	// Same horizon, one loader throttled: it must ship fewer samples.
	fast, hlF, hF, lF, _ := loaderFixture(t, 0)
	slow, hlS, hS, lS, _ := loaderFixture(t, 5*time.Millisecond)
	horizon := simclockTime(200 * time.Millisecond)
	for now := simclockTime(0); now <= horizon; now += simclockTime(10 * time.Millisecond) {
		fast.pump(now, hlF, hF, lF)
		fast.deliver(now, lF)
		drainUnused(lF)
		slow.pump(now, hlS, hS, lS)
		slow.deliver(now, lS)
		drainUnused(lS)
	}
	if slow.samples >= fast.samples {
		t.Fatalf("throttled loader shipped %d ≥ unthrottled %d", slow.samples, fast.samples)
	}
}

// drainUnused consumes every unused resident so the loaders always have room.
func drainUnused(l *lcache) {
	rng := rand.New(rand.NewSource(1))
	for {
		if _, ok := l.substitute(rng); !ok {
			return
		}
	}
}

type simclockTime = time.Duration

func TestLoaderGatedWhenNoRoom(t *testing.T) {
	back, err := storage.NewBackend(testSpec(), storage.OrangeFS())
	if err != nil {
		t.Fatal(err)
	}
	ld := newLoader(back, 64*1000, 0, rand.New(rand.NewSource(3)))
	hl := sampling.NewHList(nil)
	h := newHCache(1000)
	l := newLCache(32 * 1000) // smaller than one package
	ld.pump(0, hl, h, l)
	if ld.packages != 0 {
		t.Fatal("loader issued a package the L-cache cannot absorb")
	}
	if !ld.gated {
		t.Fatal("loader not gated")
	}
}

// Property: packages never contain duplicates, never exceed the unit, and
// never include H-list or cached samples.
func TestLoaderComposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		back, err := storage.NewBackend(testSpec(), storage.OrangeFS())
		if err != nil {
			return false
		}
		ld := newLoader(back, 32*1000, 0, rng)
		var items []sampling.Item
		for i := 0; i < 500; i++ {
			items = append(items, sampling.Item{ID: dataset.SampleID(rng.Intn(testSpec().NumSamples)), IV: 1})
		}
		hl := sampling.NewHList(items)
		h := newHCache(100_000)
		l := newLCache(500_000)
		for i := 0; i < 50; i++ {
			h.offer(dataset.SampleID(rng.Intn(testSpec().NumSamples)), 1000, rng.Float64())
			l.insert(dataset.SampleID(rng.Intn(testSpec().NumSamples)), 1000)
		}
		for i := 0; i < 30; i++ {
			ld.recordMiss(dataset.SampleID(rng.Intn(testSpec().NumSamples)))
		}
		ids, total := ld.composePackage(hl, h, l)
		if total > ld.pkgBytes && len(ids) > 1 {
			return false
		}
		seen := map[dataset.SampleID]bool{}
		for _, id := range ids {
			if seen[id] || hl.Contains(id) || h.contains(id) || l.contains(id) {
				return false
			}
			seen[id] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

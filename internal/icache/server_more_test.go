package icache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"icache/internal/dataset"
	"icache/internal/sampling"
	"icache/internal/simclock"
	"icache/internal/storage"
)

func TestServerSubstituteNoneGoesToStorage(t *testing.T) {
	back := testBackend(t)
	cfg := DefaultConfig(back.Spec().TotalBytes() / 5)
	cfg.Substitute = SubstituteNone
	srv, err := NewServer(back, cfg, sampling.DefaultIIS(), 42)
	if err != nil {
		t.Fatal(err)
	}
	tr := trainedTracker(t, back.Spec().NumSamples, 3)
	rng := rand.New(rand.NewSource(4))
	var at simclock.Time
	for e := 0; e < 2; e++ {
		sched := srv.BeginEpoch(at, e, tr, rng)
		for _, batch := range sched.Batches(256) {
			end, served := srv.FetchBatch(at, batch)
			for i := range batch {
				if served[i] != batch[i] {
					t.Fatal("SubstituteNone produced a substitution")
				}
			}
			at = end
		}
	}
	if srv.Stats().Substitutions != 0 {
		t.Fatal("substitution counter nonzero under SubstituteNone")
	}
}

func TestServerSubstituteHCacheServesHResidents(t *testing.T) {
	back := testBackend(t)
	cfg := DefaultConfig(back.Spec().TotalBytes() / 5)
	cfg.Substitute = SubstituteHCache
	srv, err := NewServer(back, cfg, sampling.DefaultIIS(), 42)
	if err != nil {
		t.Fatal(err)
	}
	tr := trainedTracker(t, back.Spec().NumSamples, 3)
	rng := rand.New(rand.NewSource(4))
	var at simclock.Time
	subsFromH := 0
	for e := 0; e < 3; e++ {
		sched := srv.BeginEpoch(at, e, tr, rng)
		for _, batch := range sched.Batches(256) {
			end, served := srv.FetchBatch(at, batch)
			for i := range batch {
				if served[i] != batch[i] {
					// The substitute was an H-cache resident at serve time;
					// it may have been evicted by a later miss in the same
					// batch, so assert validity rather than residency.
					if !back.Spec().Contains(served[i]) {
						t.Fatalf("ST_HC substitute %d not a valid sample", served[i])
					}
					subsFromH++
				}
			}
			at = end
		}
	}
	if subsFromH == 0 {
		t.Fatal("ST_HC never substituted")
	}
}

func TestServerRoutedFetchSeparatesRoutingFromManagement(t *testing.T) {
	back := testBackend(t)
	cfg := DefaultConfig(back.Spec().TotalBytes() / 5)
	srv, err := NewServer(back, cfg, sampling.DefaultIIS(), 42)
	if err != nil {
		t.Fatal(err)
	}
	// Management list: ids 0..99 with high AIV.
	var mgmt []sampling.Item
	for id := dataset.SampleID(0); id < 100; id++ {
		mgmt = append(mgmt, sampling.Item{ID: id, IV: 5})
	}
	srv.InstallHList(sampling.NewHList(mgmt))
	// Routing list of a different job: ids 200..299.
	var routing []sampling.Item
	for id := dataset.SampleID(200); id < 300; id++ {
		routing = append(routing, sampling.Item{ID: id, IV: 5})
	}
	rt := sampling.NewHList(routing)

	// A routed request for id 200 takes the H path (no substitution), but
	// its admission value comes from the management list (absent → 0).
	ids := []dataset.SampleID{200}
	_, served := srv.FetchBatchRouted(0, ids, rt)
	if served[0] != 200 {
		t.Fatal("routed H-request was substituted")
	}
	// With an empty cache it is admitted (room exists) despite AIV 0.
	if !srv.h.contains(200) {
		t.Fatal("sample not admitted while cache had room")
	}
	if iv, _ := srv.h.heap.Value(200); iv != 0 {
		t.Fatalf("admitted with management IV %g, want 0 (not on AIV list)", iv)
	}
}

func TestServerPartitionByFrequency(t *testing.T) {
	back := testBackend(t)
	cfg := DefaultConfig(back.Spec().TotalBytes() / 5)
	cfg.Partition = PartitionByFrequency
	srv, err := NewServer(back, cfg, sampling.DefaultIIS(), 42)
	if err != nil {
		t.Fatal(err)
	}
	tr := trainedTracker(t, back.Spec().NumSamples, 3)
	rng := rand.New(rand.NewSource(4))
	initial := srv.HShare()
	var at simclock.Time
	for e := 0; e < 4; e++ {
		sched := srv.BeginEpoch(at, e, tr, rng)
		for _, batch := range sched.Batches(256) {
			at, _ = srv.FetchBatch(at, batch)
		}
	}
	// Trigger one more repartition and check the share moved and stayed sane.
	srv.BeginEpoch(at, 4, tr, rng)
	got := srv.HShare()
	if got == initial {
		t.Fatalf("frequency partition never adjusted the split from %.3f", initial)
	}
	if got <= 0 || got >= 1 {
		t.Fatalf("H share %.3f out of range", got)
	}
	// The L-cache floor: at least one package of space must remain.
	if int64(float64(srv.cfg.CapacityBytes)*(1-got)) < int64(srv.ld.pkgBytes)/2 {
		t.Fatalf("L region shrank below the package floor (share %.3f)", got)
	}
}

func TestServerStaticPartitionStays(t *testing.T) {
	back := testBackend(t)
	srv := testServer(t, back) // PartitionStatic by default
	tr := trainedTracker(t, back.Spec().NumSamples, 3)
	rng := rand.New(rand.NewSource(4))
	initial := srv.HShare()
	var at simclock.Time
	for e := 0; e < 3; e++ {
		sched := srv.BeginEpoch(at, e, tr, rng)
		for _, batch := range sched.Batches(256) {
			at, _ = srv.FetchBatch(at, batch)
		}
	}
	if srv.HShare() != initial {
		t.Fatalf("static partition moved: %.3f → %.3f", initial, srv.HShare())
	}
}

func TestServerEvictObserverFires(t *testing.T) {
	back := testBackend(t)
	cfg := DefaultConfig(8 * 1000) // tiny cache to force evictions
	cfg.EnableLCache = false
	srv, err := NewServer(back, cfg, sampling.DefaultIIS(), 42)
	if err != nil {
		t.Fatal(err)
	}
	evicted := map[dataset.SampleID]bool{}
	srv.SetEvictObserver(func(id dataset.SampleID) { evicted[id] = true })

	var items []sampling.Item
	for id := dataset.SampleID(0); id < 100; id++ {
		items = append(items, sampling.Item{ID: id, IV: float64(id)})
	}
	srv.InstallHList(sampling.NewHList(items))
	var ids []dataset.SampleID
	for id := dataset.SampleID(0); id < 100; id++ {
		ids = append(ids, id)
	}
	srv.FetchBatch(0, ids)
	if len(evicted) == 0 {
		t.Fatal("no eviction observed from a 8-sample cache fed 100 samples")
	}
	for id := range evicted {
		if srv.Resident(id) {
			t.Fatalf("evicted sample %d still resident", id)
		}
	}
}

// Property: after arbitrary routed traffic the server's two regions never
// overlap and never exceed their byte budgets.
func TestServerRegionInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		back, err := storage.NewBackend(testSpec(), storage.OrangeFS())
		if err != nil {
			return false
		}
		srv, err := NewServer(back, DefaultConfig(back.Spec().TotalBytes()/5), sampling.DefaultIIS(), seed)
		if err != nil {
			return false
		}
		tr, err := sampling.NewTracker(back.Spec().NumSamples, 3.0, 0.3)
		if err != nil {
			return false
		}
		spec := testSpec()
		for i := 0; i < tr.Len(); i++ {
			tr.Observe(dataset.SampleID(i), spec.Difficulty(dataset.SampleID(i))*2+rng.Float64()*0.1)
		}
		var at simclock.Time
		for e := 0; e < 2; e++ {
			sched := srv.BeginEpoch(at, e, tr, rand.New(rand.NewSource(seed+int64(e))))
			for _, batch := range sched.Batches(512) {
				at, _ = srv.FetchBatch(at, batch)
			}
		}
		if srv.h.used > srv.h.capBytes || srv.l.used > srv.l.capBytes {
			return false
		}
		for id := range srv.l.items {
			if srv.h.contains(id) {
				return false // a sample in both regions
			}
		}
		// Heap and KV store must agree exactly.
		if srv.h.heap.Len() != len(srv.h.items) {
			return false
		}
		for id := range srv.h.items {
			if !srv.h.heap.Contains(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

package icache

import (
	"errors"
	"fmt"
	"time"

	"icache/internal/dataset"
	"icache/internal/dkv"
	"icache/internal/simclock"
)

// The simulation's partitioned directory: with ClusterConfig.DirReplicas >
// 1 the cluster runs N in-process Directories — shards placed by rendezvous
// hashing, exactly as N icache-dkv replicas would hold them — behind one
// dkv.ShardedDir on the cluster's virtual clock. Each replica sits inside a
// replicaHolder that the chaos suite can crash and restart: a killed
// replica fails every operation (the ShardedDir observes the failure, fails
// the shard over to the survivors, and retries inside the same call, so the
// nodes above never see an error and the degraded count stays untouched); a
// restarted replica comes back EMPTY — a crash loses directory state — and
// is repopulated organically: once the ShardedDir re-probes it after one
// FailoverTTL, its empty membership table rejects the next heartbeat, which
// sends every node down the re-register + reconcile path it already uses
// for lease lapses.

// errDirReplicaDown is what a crashed simulated replica answers.
var errDirReplicaDown = errors.New("icache: directory replica is down")

// replicaHolder wraps one simulated directory replica with a kill switch.
// The cluster drives it single-threaded on the virtual clock, so a plain
// bool suffices.
type replicaHolder struct {
	dir  *dkv.Directory
	down bool
}

func (h *replicaHolder) check() error {
	if h.down {
		return errDirReplicaDown
	}
	return nil
}

func (h *replicaHolder) Lookup(id dataset.SampleID) (dkv.NodeID, bool, error) {
	if err := h.check(); err != nil {
		return 0, false, err
	}
	n, ok := h.dir.Lookup(id)
	return n, ok, nil
}

func (h *replicaHolder) LookupBatch(ids []dataset.SampleID) ([]dkv.Owner, error) {
	if err := h.check(); err != nil {
		return nil, err
	}
	return h.dir.LookupBatch(ids), nil
}

func (h *replicaHolder) Claim(id dataset.SampleID, node dkv.NodeID) (bool, error) {
	if err := h.check(); err != nil {
		return false, err
	}
	return h.dir.Claim(id, node), nil
}

func (h *replicaHolder) Release(id dataset.SampleID, node dkv.NodeID) (bool, error) {
	if err := h.check(); err != nil {
		return false, err
	}
	return h.dir.Release(id, node), nil
}

func (h *replicaHolder) Len() (int, error) {
	if err := h.check(); err != nil {
		return 0, err
	}
	return h.dir.Len(), nil
}

func (h *replicaHolder) Register(node dkv.NodeID, ttl time.Duration) (dkv.NodeInfo, error) {
	if err := h.check(); err != nil {
		return dkv.NodeInfo{}, err
	}
	return h.dir.Register(node, ttl), nil
}

func (h *replicaHolder) Heartbeat(node dkv.NodeID) (bool, error) {
	if err := h.check(); err != nil {
		return false, err
	}
	return h.dir.HeartbeatNode(node), nil
}

func (h *replicaHolder) ListNodes() ([]dkv.NodeInfo, error) {
	if err := h.check(); err != nil {
		return nil, err
	}
	return h.dir.ListNodes(), nil
}

func (h *replicaHolder) OwnedBy(node dkv.NodeID, max int) ([]dataset.SampleID, error) {
	if err := h.check(); err != nil {
		return nil, err
	}
	return h.dir.OwnedBy(node, max), nil
}

func (h *replicaHolder) PurgeDead(max int) (int, error) {
	if err := h.check(); err != nil {
		return 0, err
	}
	return h.dir.PurgeDead(max), nil
}

// newReplicaDir builds one simulated replica directory on the cluster's
// virtual clock.
func (cl *Cluster) newReplicaDir() *dkv.Directory {
	d := dkv.NewDirectory()
	d.SetClock(func() simclock.Time { return cl.vnow })
	d.SetMembershipParams(cl.cfg.LeaseTTL, cl.cfg.SuspectWindow)
	return d
}

// initShardedDir wires the cluster to DirReplicas simulated directory
// replicas behind a ShardedDir (called from NewCluster when DirReplicas >
// 1; cfg defaults are already applied).
func (cl *Cluster) initShardedDir() {
	cl.holders = make([]*replicaHolder, cl.cfg.DirReplicas)
	replicas := make(map[dkv.ReplicaID]dkv.Service, cl.cfg.DirReplicas)
	for r := range cl.holders {
		h := &replicaHolder{dir: cl.newReplicaDir()}
		cl.holders[r] = h
		cl.rawDirs = append(cl.rawDirs, h.dir)
		replicas[dkv.ReplicaID(r)] = h
	}
	cl.sharded = dkv.NewShardedDir(replicas, dkv.ShardedConfig{
		FailoverTTL: cl.cfg.LeaseTTL,
		Clock:       func() simclock.Time { return cl.vnow },
	})
	cl.dir = cl.sharded
}

// DirReplicaAlive reports whether simulated directory replica r is up.
func (cl *Cluster) DirReplicaAlive(r int) bool {
	cl.checkReplica(r)
	return !cl.holders[r].down
}

// KillDirReplica crashes simulated directory replica r at virtual time at:
// every subsequent operation routed to it fails until RestartDirReplica.
// Killing a dead replica is a no-op. Only valid with DirReplicas > 1.
func (cl *Cluster) KillDirReplica(r int, at simclock.Time) {
	cl.checkReplica(r)
	if at > cl.vnow {
		cl.vnow = at
	}
	cl.holders[r].down = true
}

// RestartDirReplica boots crashed replica r at virtual time at with EMPTY
// state — a directory crash loses the shard map and the membership table.
// The ShardedDir re-admits the replica one FailoverTTL after it marked it
// down, and the nodes' own lease machinery repopulates it: the revived
// replica rejects their next heartbeat (no leases), forcing re-register +
// reconcile, which re-claims every resident through the ring — claims for
// this replica's shards land here. Restarting a live replica is an error.
func (cl *Cluster) RestartDirReplica(r int, at simclock.Time) error {
	cl.checkReplica(r)
	h := cl.holders[r]
	if !h.down {
		return fmt.Errorf("icache: RestartDirReplica(%d): replica is already running", r)
	}
	if at > cl.vnow {
		cl.vnow = at
	}
	h.dir = cl.newReplicaDir()
	cl.rawDirs[r] = h.dir
	h.down = false
	return nil
}

// DirRing reports the sharded directory client's ring counters; ok is
// false when the cluster runs a single (unsharded) directory.
func (cl *Cluster) DirRing() (dkv.RingStats, bool) {
	if cl.sharded == nil {
		return dkv.RingStats{}, false
	}
	return cl.sharded.Ring(), true
}

func (cl *Cluster) checkReplica(r int) {
	if cl.sharded == nil {
		panic("icache: directory replica ops need ClusterConfig.DirReplicas > 1")
	}
	if r < 0 || r >= len(cl.holders) {
		panic(fmt.Sprintf("icache: directory replica %d out of range [0,%d)", r, len(cl.holders)))
	}
}

package icache

import (
	"icache/internal/dataset"
)

// Clairvoyant epoch planning (the NoPFS premise applied to iCache): the IIS
// sampler draws an epoch's schedule *before* the epoch begins, so the access
// sequence is known in advance. PlanSchedule ingests that sequence at the
// epoch boundary and splits it by region:
//
//   - Scheduled L-samples that are not resident are queued for priority
//     re-packing, in first-access order, so the dynamic-packaging loader's
//     next packages are composed of exactly the samples the epoch is about
//     to consume instead of random fill. The loader still pays its full
//     virtual-time storage cost, so simulation results stay honest.
//   - Scheduled H-samples that are not resident are returned, in
//     first-access order, for the caller to pre-place. The simulation
//     ignores the list (an H-miss charges its backend read to the
//     foreground request that triggers it, and pre-admitting without
//     charging that time anywhere would falsify the model); the
//     byte-serving RPC layer hands it to its planner, which fetches real
//     bytes under a measured bandwidth budget (see internal/rpc/plan.go).

// PlanSchedule ingests the epoch's known access sequence. It seeds the
// loader's re-pack queue with every scheduled, non-resident L-sample and
// returns the scheduled, non-resident H-list members, both deduplicated and
// in first-access order. Callers must hold whatever lock guards the server
// (the RPC server's policy lock); the simulation owns the server outright.
func (s *Server) PlanSchedule(ids []dataset.SampleID) []dataset.SampleID {
	var needH []dataset.SampleID
	seen := make(map[dataset.SampleID]struct{}, len(ids))
	seedL := s.cfg.EnableLCache && s.cfg.Packaging != PackagingStatic
	for _, id := range ids {
		if !s.spec.Contains(id) {
			continue
		}
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		if s.hlist.Contains(id) {
			if !s.h.contains(id) {
				needH = append(needH, id)
			}
			continue
		}
		if !seedL || s.h.contains(id) || s.l.contains(id) {
			continue
		}
		s.ld.recordMiss(id)
	}
	return needH
}

// PlanAdmitH admits a planned H-sample into the H-cache through the same
// importance-gated admission path a demand miss would use (Algorithm 1's
// offer), without counting a request. It reports whether the sample is
// policy-resident afterwards — false means the plan entry is unfulfillable
// here (not an H-list member, or the heap rejected it as less important
// than every resident) and the planner must not fetch bytes for it.
// Callers hold the policy lock.
func (s *Server) PlanAdmitH(id dataset.SampleID) bool {
	if !s.hlist.Contains(id) {
		return false
	}
	if s.h.contains(id) {
		return true
	}
	iv, _ := s.hlistValue(id)
	return s.h.offer(id, s.spec.SampleBytes(id), iv)
}

// planSchedule is the cluster-mode counterpart of Server.PlanSchedule:
// scheduled L-samples resident on no live node are routed round-robin
// across the live nodes' loaders, so the cluster pre-packs the epoch's
// working set exactly once instead of every node discovering the same
// misses reactively. H pre-placement is a byte-serving concern and has no
// simulation-side effect (see PlanSchedule).
func (cl *Cluster) planSchedule(ids []dataset.SampleID) {
	if !cl.cfg.Cache.EnableLCache || cl.cfg.Cache.Packaging == PackagingStatic {
		return
	}
	var live []*clusterNode
	for _, n := range cl.nodes {
		if n.alive {
			live = append(live, n)
		}
	}
	if len(live) == 0 {
		return
	}
	seen := make(map[dataset.SampleID]struct{}, len(ids))
	next := 0
	for _, id := range ids {
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		if cl.hlist.Contains(id) {
			continue
		}
		resident := false
		for _, n := range cl.nodes {
			if n.alive && (n.h.contains(id) || n.l.contains(id)) {
				resident = true
				break
			}
		}
		if resident {
			continue
		}
		live[next%len(live)].ld.recordMiss(id)
		next++
	}
}

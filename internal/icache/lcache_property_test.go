package icache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"icache/internal/dataset"
)

// lcacheModel is the reference the real lcache is checked against: a plain
// map of residents plus a used set.
type lcacheModel struct {
	resident map[dataset.SampleID]int
	used     map[dataset.SampleID]bool
	capBytes int64
	usedB    int64
}

func (m *lcacheModel) bytes() int64 {
	var b int64
	for _, size := range m.resident {
		b += int64(size)
	}
	return b
}

// TestLCacheModelProperty drives the L-cache with random operation
// sequences and checks every invariant the design depends on:
//
//   - byte budget is never exceeded;
//   - takeExact serves a resident at most once per epoch;
//   - substitute only ever returns unused residents, each at most once;
//   - the unused pool always equals residents minus this epoch's used set.
func TestLCacheModelProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const capBytes = 20_000
		l := newLCache(capBytes)
		model := &lcacheModel{
			resident: map[dataset.SampleID]int{},
			used:     map[dataset.SampleID]bool{},
			capBytes: capBytes,
		}
		for op := 0; op < 2000; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // insert
				id := dataset.SampleID(rng.Intn(100))
				size := 100 + rng.Intn(900)
				if _, dup := model.resident[id]; dup {
					l.insert(id, size) // no-op on the real cache too
					break
				}
				if int64(size) > capBytes {
					if l.insert(id, size) {
						return false // oversized must be rejected
					}
					break
				}
				if !l.insert(id, size) {
					return false
				}
				// Mirror evictions: the real cache evicts used-first then
				// oldest; the model just drops whatever the real cache no
				// longer contains.
				for mid := range model.resident {
					if !l.contains(mid) {
						delete(model.resident, mid)
						delete(model.used, mid)
					}
				}
				model.resident[id] = size
			case 4, 5, 6: // takeExact
				id := dataset.SampleID(rng.Intn(100))
				_, res := model.resident[id]
				want := res && !model.used[id]
				if got := l.takeExact(id); got != want {
					return false
				}
				if want {
					model.used[id] = true
				}
			case 7, 8: // substitute
				sub, ok := l.substitute(rng)
				unusedCount := 0
				for id := range model.resident {
					if !model.used[id] {
						unusedCount++
					}
				}
				if ok != (unusedCount > 0) {
					return false
				}
				if ok {
					if _, res := model.resident[sub]; !res || model.used[sub] {
						return false // substitute must be an unused resident
					}
					model.used[sub] = true
				}
			case 9: // epoch boundary
				l.beginEpoch()
				model.used = map[dataset.SampleID]bool{}
			}

			// Invariants after every step.
			if l.used > capBytes {
				return false
			}
			if l.len() != len(model.resident) {
				return false
			}
			wantUnused := 0
			for id := range model.resident {
				if !model.used[id] {
					wantUnused++
				}
			}
			if l.unusedCount() != wantUnused {
				return false
			}
			if l.unusedBytes() > l.used {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Package retry provides the exponential-backoff-with-jitter policy shared
// by the resilient network clients (internal/rpc, internal/dkv). It is
// deliberately tiny and dependency-free: a Policy describing the schedule,
// a Do loop executing it, and a Permanent marker for errors that must not
// be retried.
//
// Determinism matters here as much as in the simulators: callers own the
// PRNG that drives jitter and may substitute the sleep function, so chaos
// tests replay identically under a fixed seed.
package retry

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Policy describes a bounded exponential-backoff retry schedule.
type Policy struct {
	// MaxAttempts is the total number of tries, including the first.
	// Values < 1 behave as 1 (no retries).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry.
	BaseDelay time.Duration
	// MaxDelay caps an individual backoff.
	MaxDelay time.Duration
	// Multiplier grows the backoff between retries (values <= 1 mean
	// constant backoff).
	Multiplier float64
	// Jitter perturbs each backoff by ±Jitter fraction (0.2 = ±20%),
	// decorrelating clients that fail together.
	Jitter float64
	// Deadline bounds the whole operation: once the cumulative elapsed time
	// plus the next backoff would exceed it, Do gives up. 0 means no bound.
	Deadline time.Duration
}

// Default is the schedule for training-side clients riding through cache
// server restarts: a handful of quick retries, then give up loudly.
func Default() Policy {
	return Policy{
		MaxAttempts: 4,
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    200 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.2,
		Deadline:    2 * time.Second,
	}
}

// Peer is the schedule for node-to-node cache reads. It is much tighter
// than Default: a remote-cache miss must degrade to a backend read, never
// stall the training pipeline behind a sick peer.
func Peer() Policy {
	return Policy{
		MaxAttempts: 2,
		BaseDelay:   2 * time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.2,
		Deadline:    250 * time.Millisecond,
	}
}

// None disables retries (one attempt, no backoff).
func None() Policy { return Policy{MaxAttempts: 1} }

// Backoff returns the delay before retry number retry (1-based), jittered
// by the caller's PRNG (nil rng means no jitter).
func (p Policy) Backoff(retry int, rng *rand.Rand) time.Duration {
	if retry < 1 || p.BaseDelay <= 0 {
		return 0
	}
	d := float64(p.BaseDelay)
	mult := p.Multiplier
	if mult < 1 {
		mult = 1
	}
	for i := 1; i < retry; i++ {
		d *= mult
		if p.MaxDelay > 0 && d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 && rng != nil {
		d *= 1 + p.Jitter*(2*rng.Float64()-1)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (p permanentError) Error() string { return p.err.Error() }
func (p permanentError) Unwrap() error { return p.err }

// Permanent wraps err so Do returns it immediately instead of retrying.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return permanentError{err}
}

// IsPermanent reports whether err carries the Permanent marker.
func IsPermanent(err error) bool {
	var p permanentError
	return errors.As(err, &p)
}

// Do runs op under the policy. op receives the 0-based attempt number. A
// nil error stops the loop; a Permanent error is unwrapped and returned at
// once; any other error is retried after a jittered backoff until attempts
// or the deadline run out. sleep may be nil (time.Sleep) and rng may be nil
// (no jitter). Do returns the last error annotated with the attempt count.
func Do(p Policy, rng *rand.Rand, sleep func(time.Duration), op func(attempt int) error) error {
	if sleep == nil {
		sleep = time.Sleep
	}
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var elapsed time.Duration
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if err = op(attempt); err == nil {
			return nil
		}
		var perm permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		if attempt == attempts-1 {
			break
		}
		d := p.Backoff(attempt+1, rng)
		if p.Deadline > 0 && elapsed+d >= p.Deadline {
			return fmt.Errorf("retry: deadline %v exceeded after %d attempts: %w", p.Deadline, attempt+1, err)
		}
		elapsed += d
		sleep(d)
	}
	if attempts > 1 {
		return fmt.Errorf("retry: %d attempts: %w", attempts, err)
	}
	return err
}

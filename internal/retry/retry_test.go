package retry

import (
	"errors"
	"math/rand"
	"testing"
	"time"
)

func TestDoSucceedsFirstTry(t *testing.T) {
	calls := 0
	err := Do(Default(), nil, func(time.Duration) { t.Fatal("slept without a failure") },
		func(int) error { calls++; return nil })
	if err != nil || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	var slept []time.Duration
	calls := 0
	p := Policy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond, Multiplier: 2}
	err := Do(p, nil, func(d time.Duration) { slept = append(slept, d) }, func(attempt int) error {
		calls++
		if attempt < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 4 {
		t.Fatalf("calls = %d, want 4", calls)
	}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond}
	for i, d := range want {
		if slept[i] != d {
			t.Fatalf("backoff[%d] = %v, want %v (got %v)", i, slept[i], d, slept)
		}
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	base := errors.New("always")
	calls := 0
	p := Policy{MaxAttempts: 3, BaseDelay: time.Microsecond}
	err := Do(p, nil, func(time.Duration) {}, func(int) error { calls++; return base })
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if !errors.Is(err, base) {
		t.Fatalf("err = %v, want wrapped base error", err)
	}
}

func TestPermanentStopsImmediately(t *testing.T) {
	base := errors.New("fatal")
	calls := 0
	err := Do(Default(), nil, func(time.Duration) { t.Fatal("slept on permanent error") },
		func(int) error { calls++; return Permanent(base) })
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if err != base {
		t.Fatalf("err = %v, want unwrapped base", err)
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
}

func TestDeadlineBoundsBackoff(t *testing.T) {
	p := Policy{MaxAttempts: 100, BaseDelay: 10 * time.Millisecond, Multiplier: 1, Deadline: 35 * time.Millisecond}
	calls := 0
	var total time.Duration
	err := Do(p, nil, func(d time.Duration) { total += d }, func(int) error { calls++; return errors.New("x") })
	if err == nil {
		t.Fatal("deadline run succeeded")
	}
	// 3 backoffs of 10ms fit under 35ms; the 4th would push to 40ms.
	if calls != 4 {
		t.Fatalf("calls = %d, want 4", calls)
	}
	if total >= p.Deadline {
		t.Fatalf("slept %v, beyond deadline %v", total, p.Deadline)
	}
}

func TestBackoffCapsAtMaxDelay(t *testing.T) {
	p := Policy{MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Multiplier: 2}
	if d := p.Backoff(1, nil); d != time.Millisecond {
		t.Fatalf("Backoff(1) = %v", d)
	}
	if d := p.Backoff(8, nil); d != 4*time.Millisecond {
		t.Fatalf("Backoff(8) = %v, want cap", d)
	}
}

func TestJitterBoundedAndDeterministic(t *testing.T) {
	p := Policy{MaxAttempts: 2, BaseDelay: 100 * time.Millisecond, Jitter: 0.2}
	for i := 0; i < 50; i++ {
		d := p.Backoff(1, rand.New(rand.NewSource(int64(i))))
		if d < 80*time.Millisecond || d > 120*time.Millisecond {
			t.Fatalf("jittered backoff %v outside ±20%%", d)
		}
	}
	a := p.Backoff(1, rand.New(rand.NewSource(42)))
	b := p.Backoff(1, rand.New(rand.NewSource(42)))
	if a != b {
		t.Fatal("same seed, different jitter")
	}
}

func TestZeroAttemptsBehavesAsOne(t *testing.T) {
	calls := 0
	err := Do(Policy{}, nil, func(time.Duration) {}, func(int) error { calls++; return errors.New("x") })
	if calls != 1 || err == nil {
		t.Fatalf("calls=%d err=%v", calls, err)
	}
}

package experiments

import (
	"fmt"

	"icache/internal/storage"
	"icache/internal/train"
)

func init() {
	register("ext-echo", extEcho)
}

// extEcho compares Google's data echoing (§VII-B related work: reuse
// fetched batches while the next is loading) against iCache on the same
// I/O-bound job. Echoing converts stall time into (repeated) compute, so
// its *epoch* gets no shorter — it spends the waits differently — and the
// replayed gradients cost accuracy; iCache instead removes the I/O.
// The two are orthogonal, and the experiment also shows them combined.
func extEcho(opts Options) (*Report, error) {
	rep := &Report{
		ID:     "ext-echo",
		Title:  "Extension: data echoing vs iCache (ResNet18/CIFAR10)",
		Header: []string{"config", "epoch-time", "stall", "compute", "final-top1"},
	}
	total, warmup := opts.perfEpochs()
	type variant struct {
		name   string
		scheme Scheme
		echo   int
	}
	for _, v := range []variant{
		{"default", SchemeDefault, 0},
		{"default+echo2", SchemeDefault, 2},
		{"icache", SchemeICache, 0},
		{"icache+echo2", SchemeICache, 2},
	} {
		rs, err := runOne(v.scheme, train.ResNet18, opts.cifar(), storage.OrangeFS(), 0.2, total,
			func(c *train.Config) { c.EchoFactor = v.echo }, opts)
		if err != nil {
			return nil, err
		}
		st := steady(rs, warmup)
		rep.AddRow(v.name,
			fmt.Sprintf("%.3fs", st.AvgEpochTime().Seconds()),
			fmt.Sprintf("%.3fs", st.AvgIOStall().Seconds()),
			fmt.Sprintf("%.3fs", avgCompute(st).Seconds()),
			fmtAcc(rs.FinalTop1()))
	}
	rep.Notes = append(rep.Notes,
		"echoing spends stalls on replayed gradients (compute up, stall down, epoch same, accuracy down)",
		"iCache removes the stall instead; the techniques compose")
	return rep, nil
}

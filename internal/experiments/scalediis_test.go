package experiments

import "testing"

func TestScaledIIS(t *testing.T) {
	// At the default 20% cache the H-fraction stays at the paper default.
	base := scaledIIS(0.2, 0.9)
	if base.HFraction != 0.2 {
		t.Fatalf("20%% cache: HFraction = %g, want default 0.2", base.HFraction)
	}
	// Larger caches grow the H-list with the H-region.
	big := scaledIIS(0.6, 0.9)
	if big.HFraction <= base.HFraction {
		t.Fatalf("60%% cache did not grow HFraction: %g", big.HFraction)
	}
	if got, want := big.HFraction, 0.54; got != want {
		t.Fatalf("HFraction = %g, want %g", got, want)
	}
	// The cap keeps H-selection below the per-epoch fetch target.
	huge := scaledIIS(0.95, 1.0)
	if huge.HFraction*huge.HSelectProb >= huge.TargetFraction {
		t.Fatalf("uncapped: %g × %g ≥ target %g",
			huge.HFraction, huge.HSelectProb, huge.TargetFraction)
	}
	// Every scaled config must still validate.
	for _, c := range []float64{0.1, 0.2, 0.4, 0.8, 1.0} {
		if err := scaledIIS(c, 0.9).Validate(); err != nil {
			t.Errorf("capFrac %g: %v", c, err)
		}
	}
}

package experiments

import (
	"fmt"

	"icache/internal/cache"
	"icache/internal/metrics"
	"icache/internal/storage"
	"icache/internal/train"
)

func init() {
	register("ext-policies", extPolicies)
}

// extPolicies generalizes §II-C's argument across classical eviction
// policies under per-epoch reshuffled access. Pure recency (FIFO, LRU)
// collapses to ~2%: every inter-access gap is about one epoch, far beyond
// what a 20% cache retains. CLOCK degenerates into a stable-set cache (all
// residents get referenced exactly once per epoch, so the hand effectively
// freezes a random 20% subset — CoorDL-like behaviour, hit ratio pinned at
// the capacity ratio). LFU lands in between. None approaches iCache: the
// ceiling is lifted by importance awareness, not by a better classical
// policy.
func extPolicies(opts Options) (*Report, error) {
	rep := &Report{
		ID:     "ext-policies",
		Title:  "Classical eviction policies under shuffled access (ShuffleNet/CIFAR10)",
		Header: []string{"policy", "epoch-time", "hit-ratio", "evictions/epoch"},
	}
	spec := opts.cifar()
	total, warmup := opts.perfEpochs()
	capBytes := int64(float64(spec.TotalBytes()) * 0.2)

	runPolicy := func(name string, mk func(*storage.Backend) train.DataService) error {
		back, err := storage.NewBackend(spec, storage.OrangeFS())
		if err != nil {
			return err
		}
		svc := mk(back)
		cfg := train.DefaultConfig(train.ShuffleNet, spec)
		cfg.Epochs = total
		cfg.Seed = 1 + opts.Seed
		job, err := train.NewJob(cfg, svc)
		if err != nil {
			return err
		}
		rs := steady(job.Run(), warmup)
		rep.AddRow(name,
			fmt.Sprintf("%.3fs", rs.AvgEpochTime().Seconds()),
			fmtPct(rs.TotalCache().HitRatio()),
			fmt.Sprintf("%d", perEpochEvictions(rs)))
		return nil
	}

	svcCfg := cache.DefaultServiceConfig()
	for _, p := range []struct {
		name string
		mk   func(*storage.Backend) cache.Policy
	}{
		{"fifo", func(b *storage.Backend) cache.Policy { return cache.NewFIFO(capBytes) }},
		{"lru", func(b *storage.Backend) cache.Policy { return cache.NewLRU(capBytes) }},
		{"clock", func(b *storage.Backend) cache.Policy { return cache.NewClock(capBytes) }},
		{"lfu", func(b *storage.Backend) cache.Policy { return cache.NewLFU(capBytes) }},
	} {
		p := p
		if err := runPolicy(p.name, func(b *storage.Backend) train.DataService {
			return cache.NewWithPolicy(b, p.mk(b), svcCfg)
		}); err != nil {
			return nil, err
		}
	}
	if err := runPolicy("icache", func(b *storage.Backend) train.DataService {
		svc, _, err := newService(SchemeICache, spec, storage.OrangeFS(), 0.2, 42+opts.Seed)
		if err != nil {
			panic(err)
		}
		_ = b
		return svc
	}); err != nil {
		return nil, err
	}
	rep.Notes = append(rep.Notes,
		"recency policies (FIFO/LRU) collapse to ~2%; CLOCK degenerates to a stable-set",
		"cache pinned at the capacity ratio (CoorDL-like); importance awareness lifts the ceiling")
	return rep, nil
}

func perEpochEvictions(rs metrics.RunStats) int64 {
	if len(rs.Epochs) == 0 {
		return 0
	}
	return rs.TotalCache().Evictions / int64(len(rs.Epochs))
}

package experiments

import (
	"math/rand"

	"icache/internal/cache"
	"icache/internal/dataset"
	"icache/internal/metrics"
	"icache/internal/sampling"
	"icache/internal/simclock"
	"icache/internal/storage"
)

// sharedLRUService wraps one Default (LRU) baseline so several jobs can
// share it — the Fig. 14 "Default" multi-job configuration. Handles
// attribute cache-event deltas to their own job, mirroring what the
// icache.Coordinator does for the importance-aware policies.
type sharedLRUService struct {
	base *cache.Baseline
}

func newSharedLRUService(back *storage.Backend, capBytes int64) *sharedLRUService {
	return &sharedLRUService{base: cache.NewDefault(back, capBytes, cache.DefaultServiceConfig())}
}

// sharedLRUHandle is one job's view of the shared LRU.
type sharedLRUHandle struct {
	svc   *sharedLRUService
	stats metrics.CacheStats
}

// Name implements train.DataService.
func (h *sharedLRUHandle) Name() string { return "default-shared" }

// SubstitutionSource implements the accuracy-model contract.
func (h *sharedLRUHandle) SubstitutionSource() string { return "none" }

// Stats implements train.DataService with per-job attribution.
func (h *sharedLRUHandle) Stats() metrics.CacheStats { return h.stats }

// BeginEpoch implements train.DataService: each job reshuffles its own
// schedule; the shared cache itself is stateless across epochs.
func (h *sharedLRUHandle) BeginEpoch(at simclock.Time, epoch int, tr *sampling.Tracker, rng *rand.Rand) sampling.Schedule {
	return h.svc.base.BeginEpoch(at, epoch, tr, rng)
}

// FetchBatch implements train.DataService, attributing the shared cache's
// event delta to this job.
func (h *sharedLRUHandle) FetchBatch(at simclock.Time, ids []dataset.SampleID) (simclock.Time, []dataset.SampleID) {
	before := h.svc.base.Stats()
	end, served := h.svc.base.FetchBatch(at, ids)
	after := h.svc.base.Stats()
	h.stats.Add(metrics.CacheStats{
		Hits:          after.Hits - before.Hits,
		Misses:        after.Misses - before.Misses,
		Substitutions: after.Substitutions - before.Substitutions,
		Inserts:       after.Inserts - before.Inserts,
		Evictions:     after.Evictions - before.Evictions,
		Rejections:    after.Rejections - before.Rejections,
	})
	return end, served
}

package experiments

import (
	"fmt"

	"icache/internal/icache"
	"icache/internal/metrics"
	"icache/internal/sampling"
	"icache/internal/storage"
	"icache/internal/train"
)

func init() {
	register("ext-criteria", extCriteria)
	register("ext-tier", extTier)
}

// extCriteria implements §VI's "other importance sampling methods": the
// same iCache machinery under three importance criteria — the loss-based
// default, a gradient-norm-upper-bound score, and a lightweight proxy model
// that re-scores every sample each epoch (no staleness, more noise).
func extCriteria(opts Options) (*Report, error) {
	rep := &Report{
		ID:     "ext-criteria",
		Title:  "Extension: importance criteria under iCache (ResNet18/CIFAR10)",
		Header: []string{"criterion", "epoch-time", "hit-ratio", "final-top1"},
	}
	spec := opts.cifar()
	total, warmup := opts.perfEpochs()
	for _, crit := range []sampling.Criterion{sampling.CriterionLoss, sampling.CriterionGradUpper, sampling.CriterionProxyModel} {
		crit := crit
		back, err := storage.NewBackend(spec, storage.OrangeFS())
		if err != nil {
			return nil, err
		}
		srv, err := icache.NewServer(back, icache.DefaultConfig(int64(float64(spec.TotalBytes())*0.2)),
			sampling.DefaultIIS(), 42+opts.Seed)
		if err != nil {
			return nil, err
		}
		cfg := train.DefaultConfig(train.ResNet18, spec)
		cfg.Epochs = total
		cfg.Seed = 1 + opts.Seed
		cfg.Criterion = crit
		job, err := train.NewJob(cfg, srv)
		if err != nil {
			return nil, err
		}
		rs := job.Run()
		st := steady(rs, warmup)
		rep.AddRow(crit.String(),
			fmt.Sprintf("%.3fs", st.AvgEpochTime().Seconds()),
			fmtPct(st.TotalCache().HitRatio()),
			fmtAcc(rs.FinalTop1()))
	}
	rep.Notes = append(rep.Notes,
		"the paper ships loss-based IS and names the others as integration candidates (§VI)",
		"proxy scoring removes importance staleness for skipped samples at the cost of estimation noise")
	return rep, nil
}

// extTier implements §VI's local-storage discussion: the DRAM-only iCache
// against one whose H-cache evictions spill to a local NVMe tier that is
// checked before the remote backend.
func extTier(opts Options) (*Report, error) {
	rep := &Report{
		ID:     "ext-tier",
		Title:  "Extension: local-storage spill tier (ResNet18/CIFAR10)",
		Header: []string{"config", "epoch-time", "hit-ratio", "tier2-hits/epoch", "tier2-resident"},
	}
	spec := opts.cifar()
	total, _ := opts.perfEpochs()
	type variant struct {
		name string
		mut  func(*icache.Config)
	}
	for _, v := range []variant{
		{"dram-only", nil},
		{"dram+nvme-tier", func(c *icache.Config) { c.Tier2Bytes = int64(float64(spec.TotalBytes()) * 0.3) }},
	} {
		var rs metrics.RunStats
		var srv *icache.Server
		var err error
		rs, srv, err = runICacheVariant(train.ResNet18, opts, v.mut)
		if err != nil {
			return nil, err
		}
		rep.AddRow(v.name,
			fmt.Sprintf("%.3fs", rs.AvgEpochTime().Seconds()),
			fmtPct(rs.TotalCache().HitRatio()),
			fmt.Sprintf("%d", srv.Tier2Hits()/int64(total)),
			fmt.Sprintf("%d", srv.Tier2Len()))
	}
	rep.Notes = append(rep.Notes,
		"the tier absorbs H-cache churn: demoted-then-re-promoted samples cost ~0.1ms instead of a remote read",
		"the paper leaves PM/local-storage tiers to future work (§VI); this quantifies the headroom")
	return rep, nil
}

package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func quickOpts() Options { return Options{Quick: true} }

// parseX parses a "1.85x" cell.
func parseX(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
	if err != nil {
		t.Fatalf("bad speedup cell %q: %v", cell, err)
	}
	return v
}

// parsePct parses a "32.9%" cell into a ratio.
func parsePct(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("bad percent cell %q: %v", cell, err)
	}
	return v / 100
}

// parseSec parses a "6.194s" cell.
func parseSec(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "s"), 64)
	if err != nil {
		t.Fatalf("bad seconds cell %q: %v", cell, err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig2", "fig3", "tab1", "tab2", "tab3",
		"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16"}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("fig99", quickOpts()); err == nil {
		t.Fatal("unknown experiment ran")
	}
}

func TestReportPrint(t *testing.T) {
	rep := &Report{ID: "x", Title: "t", Header: []string{"a", "b"}}
	rep.AddRow("1", "2")
	rep.Notes = append(rep.Notes, "n")
	var sb strings.Builder
	rep.Print(&sb)
	out := sb.String()
	for _, want := range []string{"== x: t ==", "a", "1", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed report missing %q:\n%s", want, out)
		}
	}
}

// TestFig10AblationShape asserts the paper's monotone technique ladder:
// Base slower than +IIS slower than +HC slower than All, with All ≥ 1.8×.
func TestFig10AblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs take seconds")
	}
	rep, err := Run("fig10", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		base := parseSec(t, row[1])
		iis := parseSec(t, row[2])
		hc := parseSec(t, row[3])
		all := parseSec(t, row[4])
		if !(base > iis && iis > hc && hc > all) {
			t.Errorf("%s: ladder not monotone: %v", row[0], row[1:5])
		}
		if sp := parseX(t, row[7]); sp < 1.8 {
			t.Errorf("%s: All speedup %.2f < 1.8", row[0], sp)
		}
	}
}

// TestFig11HitRatioShape asserts the paper's hit-ratio ladder: ~2% for
// Base, >15% with the H-cache, higher still with the L-cache.
func TestFig11HitRatioShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs take seconds")
	}
	rep, err := Run("fig11", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	byRung := map[string]float64{}
	for _, row := range rep.Rows {
		if row[0] == "shufflenet" {
			byRung[row[1]] = parsePct(t, row[3])
		}
	}
	if byRung["Base"] > 0.06 {
		t.Errorf("Base hit ratio %.3f, want ~2%%", byRung["Base"])
	}
	if byRung["+HC"] < 0.15 {
		t.Errorf("+HC hit ratio %.3f, want >15%%", byRung["+HC"])
	}
	if byRung["All"] <= byRung["+HC"] {
		t.Errorf("L-cache added nothing: All %.3f <= +HC %.3f", byRung["All"], byRung["+HC"])
	}
}

// TestFig16CacheSizeShape asserts iCache keeps a healthy speedup and a
// hit-ratio advantage across cache sizes.
func TestFig16CacheSizeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs take seconds")
	}
	rep, err := Run("fig16", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		if sp := parseX(t, row[3]); sp < 1.3 {
			t.Errorf("cache %s: speedup %.2f < 1.3", row[0], sp)
		}
		if dh, ih := parsePct(t, row[4]), parsePct(t, row[5]); ih <= dh {
			t.Errorf("cache %s: iCache hit %.3f not above Default %.3f", row[0], ih, dh)
		}
	}
}

// TestFig14MultiJobShape asserts the coordination claims: iCache's joint
// time beats Default's, and INDA favours ShuffleNet over INDB.
func TestFig14MultiJobShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs take seconds")
	}
	rep, err := Run("fig14", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	joint := map[string]float64{}
	shufTime := map[string]float64{}
	for _, row := range rep.Rows {
		joint[row[0]] = parseSec(t, row[3])
		shufTime[row[0]] = parseSec(t, row[1])
	}
	if joint["iCache"] >= joint["Default"] {
		t.Errorf("iCache joint %.3f not below Default %.3f", joint["iCache"], joint["Default"])
	}
	if shufTime["INDA"] >= shufTime["INDB"] {
		t.Errorf("INDA did not favour ShuffleNet: %.3f vs INDB %.3f", shufTime["INDA"], shufTime["INDB"])
	}
}

// TestTab3SubstitutionShape asserts ST_LC hurts accuracy less than ST_HC.
func TestTab3SubstitutionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs take seconds")
	}
	rep, err := Run("tab3", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		hcDrop, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		lcDrop, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			t.Fatal(err)
		}
		if lcDrop >= hcDrop {
			t.Errorf("%s: ST_LC drop %.2f not below ST_HC drop %.2f", row[0], lcDrop, hcDrop)
		}
	}
}

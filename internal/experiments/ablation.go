package experiments

import (
	"fmt"

	"icache/internal/icache"
	"icache/internal/metrics"
	"icache/internal/sampling"
	"icache/internal/storage"
	"icache/internal/train"
)

func init() {
	register("abl-packaging", ablPackaging)
	register("abl-partition", ablPartition)
}

// runICacheVariant trains one model under iCache with a mutated config.
func runICacheVariant(model train.ModelProfile, opts Options, mutate func(*icache.Config)) (metrics.RunStats, *icache.Server, error) {
	spec := opts.cifar()
	total, warmup := opts.perfEpochs()
	back, err := storage.NewBackend(spec, storage.OrangeFS())
	if err != nil {
		return metrics.RunStats{}, nil, err
	}
	cfg := icache.DefaultConfig(int64(float64(spec.TotalBytes()) * 0.2))
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := icache.NewServer(back, cfg, sampling.DefaultIIS(), 42+opts.Seed)
	if err != nil {
		return metrics.RunStats{}, nil, err
	}
	tcfg := train.DefaultConfig(model, spec)
	tcfg.Epochs = total
	tcfg.Seed = 1 + opts.Seed
	job, err := train.NewJob(tcfg, srv)
	if err != nil {
		return metrics.RunStats{}, nil, err
	}
	rs := job.Run()
	return steady(rs, warmup), srv, nil
}

// ablPackaging contrasts iCache's dynamic packaging (§III-C) against the
// static pre-packed chunks of prior work (TFRecord/WebDataset-style; §VII-B
// discusses why static packing fights importance sampling): static chunks
// drag in samples that are H-samples or already cached, so the loader moves
// more bytes per useful sample — read amplification — and the L-cache gets
// fewer fresh substitutes per second.
func ablPackaging(opts Options) (*Report, error) {
	rep := &Report{
		ID:     "abl-packaging",
		Title:  "Ablation: dynamic vs static packaging (ShuffleNet/CIFAR10)",
		Header: []string{"packaging", "epoch-time", "hit-ratio", "wasted-byte-share", "wasted-bytes"},
	}
	for _, mode := range []icache.PackagingMode{icache.PackagingDynamic, icache.PackagingStatic} {
		mode := mode
		rs, srv, err := runICacheVariant(train.ShuffleNet, opts, func(c *icache.Config) { c.Packaging = mode })
		if err != nil {
			return nil, err
		}
		waste := fmt.Sprintf("%d%%", pct(srv.LoaderWastedBytes(), srv.LoaderWastedBytes()+srv.LoaderUsefulBytes()))
		rep.AddRow(mode.String(),
			fmt.Sprintf("%.3fs", rs.AvgEpochTime().Seconds()),
			fmtPct(rs.TotalCache().HitRatio()),
			waste,
			fmt.Sprintf("%d MB", srv.LoaderWastedBytes()>>20))
	}
	rep.Notes = append(rep.Notes,
		"dynamic packaging wastes no loader bytes; static chunks pay read amplification",
		"the paper adopts dynamic packaging precisely because IS scatters the useful samples")
	return rep, nil
}

func pct(num, den int64) int64 {
	if den == 0 {
		return 0
	}
	return num * 100 / den
}

// ablPartition contrasts the H/L partition policies: the paper's reported
// 9:1 operating point (static) against the §III-A frequency-adaptive
// formula.
func ablPartition(opts Options) (*Report, error) {
	rep := &Report{
		ID:     "abl-partition",
		Title:  "Ablation: H/L partition policy (ShuffleNet/CIFAR10)",
		Header: []string{"policy", "epoch-time", "hit-ratio", "final-h-share"},
	}
	for _, pol := range []icache.PartitionPolicy{icache.PartitionStatic, icache.PartitionByFrequency} {
		pol := pol
		rs, srv, err := runICacheVariant(train.ShuffleNet, opts, func(c *icache.Config) { c.Partition = pol })
		if err != nil {
			return nil, err
		}
		rep.AddRow(pol.String(),
			fmt.Sprintf("%.3fs", rs.AvgEpochTime().Seconds()),
			fmtPct(rs.TotalCache().HitRatio()),
			fmt.Sprintf("%.2f", srv.HShare()))
	}
	rep.Notes = append(rep.Notes,
		"the frequency formula adapts the split to the observed per-sample access rates;",
		"see DESIGN.md for why the per-sample interpretation of the paper's formula is used")
	return rep, nil
}

package experiments

import (
	"fmt"
	"time"

	"icache/internal/metrics"
	"icache/internal/storage"
	"icache/internal/train"
)

func init() {
	register("ext-tta", extTTA)
}

// extTTA measures time-to-accuracy: the virtual training time until Top-1
// first reaches a target, for Default vs iCache. Per-epoch speed and final
// accuracy trade off against each other (iCache trains fewer samples per
// epoch and substitutes some), so this is the honest end-to-end metric:
// does iCache reach the *same model quality* sooner? The targets are set
// below each model's converged Default accuracy by a safety margin so both
// systems can reach them.
func extTTA(opts Options) (*Report, error) {
	rep := &Report{
		ID:     "ext-tta",
		Title:  "Time-to-accuracy: Default vs iCache",
		Header: []string{"model", "target-top1", "default-tta", "default-epochs", "icache-tta", "icache-epochs", "speedup"},
	}
	epochs := opts.accuracyEpochs()
	for _, model := range []train.ModelProfile{train.ShuffleNet, train.ResNet18} {
		def, err := runOne(SchemeDefault, model, opts.cifar(), storage.OrangeFS(), 0.2, epochs, nil, opts)
		if err != nil {
			return nil, err
		}
		ic, err := runOne(SchemeICache, model, opts.cifar(), storage.OrangeFS(), 0.2, epochs, nil, opts)
		if err != nil {
			return nil, err
		}
		// 97% of what Default actually reaches at this horizon: reachable by
		// both systems at any experiment scale (iCache's loss is under 1
		// point on CIFAR-class datasets).
		target := def.FinalTop1() * 0.97
		dTTA, dEpochs, dOK := timeToAccuracy(def, target)
		iTTA, iEpochs, iOK := timeToAccuracy(ic, target)
		row := []string{model.Name, fmtAcc(target)}
		if dOK {
			row = append(row, fmt.Sprintf("%.1fs", dTTA.Seconds()), fmt.Sprintf("%d", dEpochs))
		} else {
			row = append(row, "not reached", "-")
		}
		if iOK {
			row = append(row, fmt.Sprintf("%.1fs", iTTA.Seconds()), fmt.Sprintf("%d", iEpochs))
		} else {
			row = append(row, "not reached", "-")
		}
		if dOK && iOK {
			row = append(row, fmtX(float64(dTTA)/float64(iTTA)))
		} else {
			row = append(row, "-")
		}
		rep.AddRow(row...)
	}
	rep.Notes = append(rep.Notes,
		"TTA folds the accuracy penalty into the speed claim: iCache may need extra epochs",
		"to offset its sub-1% loss, yet still reaches the target sooner in wall time")
	return rep, nil
}

// timeToAccuracy returns the cumulative training time and epoch count until
// Top-1 first reaches target.
func timeToAccuracy(rs metrics.RunStats, target float64) (time.Duration, int, bool) {
	var total time.Duration
	for i, e := range rs.Epochs {
		total += e.Duration
		if e.Top1 >= target {
			return total, i + 1, true
		}
	}
	return total, len(rs.Epochs), false
}
